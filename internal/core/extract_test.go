package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func lockedInstance(t *testing.T, chainCfg string, seed int64) (*netlist.Circuit, *lock.CASInstance, *netlist.Circuit) {
	t.Helper()
	chain := lock.MustParseChain(chainCfg)
	h, err := synth.Generate(synth.Config{Name: "h", Inputs: chain.NumInputs() + 2, Outputs: 3, Gates: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: chain, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return locked.Circuit, inst, h
}

func TestSATExtractorWidthLimit(t *testing.T) {
	lockedC, _, _ := lockedInstance(t, "2A-O-A", 1)
	layout, err := DiscoverLayout(lockedC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSATExtractor(lockedC, layout); err != nil {
		t.Errorf("5-input block rejected: %v", err)
	}
	wide := &BlockLayout{
		InputPos: make([]int, 31),
		Key1Pos:  make([]int, 31),
		Key2Pos:  make([]int, 31),
	}
	if _, err := NewSATExtractor(lockedC, wide); err == nil {
		t.Error("31-input block accepted by the SAT extractor")
	}
}

func TestExtractorAssignValidation(t *testing.T) {
	lockedC, _, _ := lockedInstance(t, "2A-O-A", 2)
	layout, err := DiscoverLayout(lockedC)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimExtractor(lockedC, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.DIPs(PairAssign{A: []bool{true}, B: []bool{false}}); err == nil {
		t.Error("short key assignment accepted")
	}
	if _, err := sim.Classes(PairAssign{}); err == nil {
		t.Error("empty key assignment accepted")
	}
}

func TestSimExtractorRejectsKeylessCircuit(t *testing.T) {
	h, err := synth.Generate(synth.Config{Name: "h", Inputs: 8, Outputs: 2, Gates: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	layout := &BlockLayout{InputPos: []int{0, 1, 2}, Key1Pos: []int{0, 1, 2}, Key2Pos: []int{3, 4, 5}}
	if _, err := NewSimExtractor(h, layout, 1); err == nil {
		t.Error("key-free circuit accepted")
	}
}

func TestExtractionCounting(t *testing.T) {
	lockedC, _, _ := lockedInstance(t, "2A-O-A", 4)
	layout, err := DiscoverLayout(lockedC)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewSimExtractor(lockedC, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	assign := PairAssign{A: make([]bool, lockedC.NumKeys()), B: make([]bool, lockedC.NumKeys())}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	if _, err := ext.DIPs(assign); err != nil {
		t.Fatal(err)
	}
	if _, err := ext.Classes(assign); err != nil {
		t.Fatal(err)
	}
	if ext.Extractions() != 2 {
		t.Errorf("Extractions = %d, want 2", ext.Extractions())
	}
}

// TestPreparedSharesStaticCone checks the static/dynamic split: with no
// differing keys the two copies collapse and no DIPs exist.
func TestPreparedSharesStaticCone(t *testing.T) {
	lockedC, _, _ := lockedInstance(t, "A-O-2A", 5)
	layout, err := DiscoverLayout(lockedC)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewSimExtractor(lockedC, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	nk := lockedC.NumKeys()
	rng := rand.New(rand.NewSource(6))
	same := make([]bool, nk)
	for i := range same {
		same[i] = rng.Intn(2) == 1
	}
	dips, err := ext.DIPs(PairAssign{A: same, B: append([]bool(nil), same...)})
	if err != nil {
		t.Fatal(err)
	}
	if dips.Count() != 0 {
		t.Errorf("identical keys produced %d DIPs", dips.Count())
	}
}

// errOracle fails after a set number of queries, testing error
// propagation through the attack pipeline.
type errOracle struct {
	inner   oracle.Oracle
	budget  int
	queries int
}

func (e *errOracle) NumInputs() int  { return e.inner.NumInputs() }
func (e *errOracle) NumOutputs() int { return e.inner.NumOutputs() }

func (e *errOracle) Query(in []bool) ([]bool, error) {
	e.queries++
	if e.queries > e.budget {
		return nil, errors.New("oracle budget exhausted")
	}
	return e.inner.Query(in)
}

func (e *errOracle) Query64(in []uint64) ([]uint64, error) {
	e.queries++
	if e.queries > e.budget {
		return nil, errors.New("oracle budget exhausted")
	}
	return e.inner.Query64(in)
}

func TestAttackPropagatesOracleErrors(t *testing.T) {
	lockedC, _, h := lockedInstance(t, "2A-O-A", 7)
	orc := &errOracle{inner: oracle.MustNewSim(h), budget: 3}
	if _, err := Run(Options{Locked: lockedC, Oracle: orc, Seed: 8}); err == nil {
		t.Error("oracle failure not propagated")
	}
}

func TestAttackLogHook(t *testing.T) {
	lockedC, inst, h := lockedInstance(t, "2A-O-A", 9)
	var lines int
	res, err := Run(Options{
		Locked: lockedC, Oracle: oracle.MustNewSim(h), Seed: 10,
		Log: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Fatal("wrong key")
	}
	if lines == 0 {
		t.Error("log hook never invoked")
	}
}
