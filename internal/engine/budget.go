package engine

import (
	"context"
	"math"
	"time"
)

// Slice sizing for deadline-bounded solving.
const (
	// cancelSliceConflicts bounds one Solve slice when a context is
	// attached but carries no deadline (pure cancellation): large enough
	// that slicing overhead vanishes, small enough that cancellation
	// lands within tens of milliseconds on typical encodings.
	cancelSliceConflicts = 1 << 14
	// probeConflicts is the first slice before any rate is known.
	probeConflicts = 1024
	// minSlice floors every grant so the context is still polled at a
	// bounded interval even when a phase has exhausted its share.
	minSlice = 256
	// maxSlice caps a single grant so the deadline is re-examined a few
	// times before it lands.
	maxSlice = 1 << 20
)

// budgeter converts a context deadline into per-Solve conflict budgets.
// The legacy extractor heuristic re-derived the conflict rate from each
// enumeration's own wall clock and granted half the predicted remainder
// per slice, so a long early phase could spend the entire deadline
// before later phases (calibration, verification) ran at all. The
// budgeter instead:
//
//   - anchors on one engine-lifetime clock and keeps a persistent EWMA
//     of the observed conflict rate across every solve session and
//     phase, so early slices of a new phase are sized from real history
//     rather than a cold probe;
//   - caps each phase's total spending at half the conflicts predicted
//     to remain at phase entry, so no phase can starve its successors;
//   - makes the per-slice grant monotonically non-increasing within a
//     phase, so grants shrink as the deadline approaches instead of
//     oscillating with instantaneous rate estimates.
//
// A phase that exhausts its share is not stopped — correctness never
// depends on the budget — it just crawls at minSlice-sized grants, which
// keeps context polls frequent while leaving headroom for later phases.

// Trajectory is an attack-shape summary a smoothing weight can be
// learned from: the per-phase wall-clock histogram plus the aggregate
// solve-session and extraction counts, exactly the fields the committed
// BENCH snapshot records under "telemetry".
type Trajectory struct {
	// PhaseSeconds is wall-clock seconds spent per attack phase.
	PhaseSeconds map[string]float64
	// SolveCalls is the total number of solver sessions observed.
	SolveCalls uint64
	// Extractions is how many enumerate→distinguish→verify cycles the
	// trajectory contains; each cycle revisits the phases, so
	// SolveCalls/Extractions is the sessions-per-visit scale.
	Extractions uint64
}

// Smoothing derivation bounds.
const (
	// rateResidual is how much of a stale regime's rate may survive in
	// the EWMA once the dwell of the tightest phase has elapsed.
	rateResidual = 0.13
	// minSignificantShare: phases below this share of total time are
	// noise (algo2 in the committed trajectory holds 0.01%) and must not
	// drive the weight to its clamp.
	minSignificantShare = 0.02
	minSmoothing        = 0.1
	maxSmoothing        = 0.5
)

// DeriveSmoothing learns the budgeter's EWMA new-observation weight
// from a committed trajectory. The constraint: after a rate-regime
// change (enumeration → distinguish → verification sessions swing the
// conflict rate 2–3×), the stale rate must decay to rateResidual within
// the dwell of the tightest significant phase — the smallest number of
// solve sessions any phase that matters gives the estimator per visit.
// dwell = min-significant-share × SolveCalls/Extractions, floored at 2
// (an EWMA cannot meaningfully converge in fewer observations), giving
// alpha = 1 - rateResidual^(1/dwell), clamped so one outlier session
// never moves the estimate by more than half (maxSmoothing) and the
// estimator is never effectively frozen (minSmoothing). Degenerate
// trajectories (no histogram, no sessions) fall back to maxSmoothing —
// with nothing known about dwell, tracking fast is the safe side
// because the budget only sizes slices, never correctness.
func DeriveSmoothing(tr Trajectory) float64 {
	var total float64
	for _, s := range tr.PhaseSeconds {
		total += s
	}
	if total <= 0 || tr.SolveCalls == 0 || tr.Extractions == 0 {
		return maxSmoothing
	}
	minShare := 1.0
	for _, s := range tr.PhaseSeconds {
		if share := s / total; share >= minSignificantShare && share < minShare {
			minShare = share
		}
	}
	dwell := minShare * float64(tr.SolveCalls) / float64(tr.Extractions)
	if dwell < 2 {
		dwell = 2
	}
	alpha := 1 - math.Pow(rateResidual, 1/dwell)
	if alpha < minSmoothing {
		return minSmoothing
	}
	if alpha > maxSmoothing {
		return maxSmoothing
	}
	return alpha
}

// benchTrajectory is the committed BENCH_core.json "telemetry" section
// (phase_seconds, sat_solve_calls, extractions) — the tablei_k32_c880
// attack shape the budgeter's default weight is learned from. Refreshed
// alongside BENCH_core.json regenerations.
var benchTrajectory = Trajectory{
	PhaseSeconds: map[string]float64{
		"algo1":     0.0642,
		"algo2":     0.0002,
		"calibrate": 0.0401,
		"decode":    0.2812,
		"enumerate": 0.0336,
		"verify":    1.1513,
	},
	SolveCalls:  50116,
	Extractions: 963,
}

// defaultBudgetSmoothing is the EWMA weight of the newest rate
// observation, learned from the committed trajectory instead of
// hand-picked: the tightest significant phase there (enumerate, ~2% of
// wall clock at ~52 sessions per extraction cycle) dwells for about one
// session per visit, so the derivation floors at a 2-session window and
// clamps to maxSmoothing = 0.5 — a stale regime decays to ~25% in two
// observations while one outlier session moves the estimate at most
// half-way. SetBudgetSmoothing remains the per-engine override.
var defaultBudgetSmoothing = DeriveSmoothing(benchTrajectory)

type budgeter struct {
	now func() time.Time // injected for tests; time.Now in production

	// smoothing is the EWMA weight of each new rate observation, in
	// (0,1); zero means defaultBudgetSmoothing (keeps zero-value
	// budgeter literals working).
	smoothing float64

	lastT         time.Time
	lastConflicts uint64
	rate          float64 // EWMA conflicts/second, engine lifetime

	capped     bool   // a per-phase cap is in force
	phaseCap   uint64 // conflicts this phase may still spend
	phaseGrant uint64 // previous grant this phase; the next never exceeds it
}

func newBudgeter() budgeter {
	return budgeter{now: time.Now, smoothing: defaultBudgetSmoothing}
}

// setSmoothing overrides the EWMA weight; values outside (0,1) are
// ignored.
func (b *budgeter) setSmoothing(alpha float64) {
	if alpha > 0 && alpha < 1 {
		b.smoothing = alpha
	}
}

// enterPhase resets the per-phase state: the new phase may spend at most
// half the conflicts predicted to remain before the deadline (no cap
// until a rate has been observed, or without a deadline).
func (b *budgeter) enterPhase(ctx context.Context) {
	b.phaseGrant = 0
	b.capped = false
	b.phaseCap = 0
	if ctx == nil || b.rate == 0 {
		return
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return
	}
	remaining := deadline.Sub(b.now())
	if remaining <= 0 {
		b.capped = true
		return
	}
	cap := uint64(b.rate * remaining.Seconds() / 2)
	if cap < minSlice {
		cap = minSlice
	}
	b.capped = true
	b.phaseCap = cap
}

// observe folds the conflicts spent since the last call into the rate
// estimate and charges them against the phase cap. conflicts is the
// solver's cumulative (monotone) conflict counter.
func (b *budgeter) observe(conflicts uint64, now time.Time) {
	if b.lastT.IsZero() {
		b.lastT = now
		b.lastConflicts = conflicts
		return
	}
	dc := conflicts - b.lastConflicts
	dt := now.Sub(b.lastT).Seconds()
	if b.capped {
		if dc >= b.phaseCap {
			b.phaseCap = 0
		} else {
			b.phaseCap -= dc
		}
	}
	if dc > 0 && dt > 0 {
		inst := float64(dc) / dt
		if b.rate == 0 {
			b.rate = inst
		} else {
			alpha := b.smoothing
			if alpha == 0 {
				alpha = defaultBudgetSmoothing
			}
			b.rate = (1-alpha)*b.rate + alpha*inst
		}
	}
	b.lastT = now
	b.lastConflicts = conflicts
}

// slice returns the conflict budget for the next Solve call: 0 when
// unbudgeted (no context), otherwise a grant derived from the remaining
// deadline, the persistent rate, and the phase's remaining share.
func (b *budgeter) slice(ctx context.Context, conflicts uint64) uint64 {
	if ctx == nil {
		return 0
	}
	now := b.now()
	b.observe(conflicts, now)
	deadline, ok := ctx.Deadline()
	if !ok {
		return cancelSliceConflicts
	}
	remaining := deadline.Sub(now)
	if remaining <= 0 {
		return 1 // expired: the caller's pre-Solve context check fires next
	}
	if b.rate == 0 {
		return probeConflicts
	}
	budget := uint64(b.rate * remaining.Seconds() / 2)
	if budget < minSlice {
		budget = minSlice
	}
	if budget > maxSlice {
		budget = maxSlice
	}
	if b.phaseGrant > 0 && budget > b.phaseGrant {
		budget = b.phaseGrant // monotone within the phase
	}
	if b.capped {
		if b.phaseCap == 0 {
			return minSlice // share exhausted: crawl, poll often
		}
		if budget > b.phaseCap {
			budget = b.phaseCap
		}
	}
	b.phaseGrant = budget
	return budget
}
