package core

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// runPath mounts one full attack on a fresh lock instance and returns
// the result; legacy selects the pre-engine re-encode path.
func runPath(t *testing.T, inputs int, chain string, lockSeed, attackSeed int64, legacy bool) (*Result, *lock.CASInstance) {
	t.Helper()
	h := host(t, inputs)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain(chain), Seed: lockSeed})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Seed: attackSeed, LegacyEncoding: legacy})
	if err != nil {
		t.Fatalf("attack (legacy=%v) failed: %v", legacy, err)
	}
	return res, inst
}

// TestEngineLegacyKeyDifferential proves the persistent incremental
// engine and the legacy per-assignment re-encode path recover
// byte-identical keys (and identical chain structure) across chain
// schemes, terminator cases, and key widths — including instances
// beyond the SAT/simulation extractor boundary, where both paths use
// the structural-hashing prover for distinguishing (the engine only
// engages where SAT enumeration already warmed it).
func TestEngineLegacyKeyDifferential(t *testing.T) {
	cases := []struct {
		name   string
		chain  string
		inputs int
		seeds  []int64
	}{
		{"and-term-n5", "2A-O-A", 8, []int64{1, 2}},
		{"or-term-n5", "A-O-A-O", 8, []int64{1, 2}},
		{"and-heavy-n8", "3A-O-3A", 10, []int64{3}},
		{"or-heavy-n8", "2O-A-2O-2A", 10, []int64{3}},
		{"sim-n13", "6A-O-5A", 14, []int64{5}},
		{"key32-n16", "7A-O-7A", 18, []int64{7}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range tc.seeds {
				engRes, inst := runPath(t, tc.inputs, tc.chain, seed, seed^0xbeef, false)
				legRes, _ := runPath(t, tc.inputs, tc.chain, seed, seed^0xbeef, true)
				if !inst.IsCorrectCASKey(engRes.Key) {
					t.Fatalf("seed %d: engine path recovered a wrong key", seed)
				}
				if len(engRes.Key) != len(legRes.Key) {
					t.Fatalf("seed %d: key lengths differ: %d vs %d", seed, len(engRes.Key), len(legRes.Key))
				}
				for i := range engRes.Key {
					if engRes.Key[i] != legRes.Key[i] {
						t.Fatalf("seed %d: keys diverge at bit %d", seed, i)
					}
				}
				if engRes.Chain.String() != legRes.Chain.String() {
					t.Fatalf("seed %d: chains diverge: %s vs %s", seed, engRes.Chain, legRes.Chain)
				}
				if engRes.Case != legRes.Case {
					t.Fatalf("seed %d: cases diverge: %d vs %d", seed, engRes.Case, legRes.Case)
				}
				if engRes.AlignedDIPs != legRes.AlignedDIPs || engRes.TotalDIPs != legRes.TotalDIPs {
					t.Fatalf("seed %d: DIP accounting diverges: %d/%d vs %d/%d", seed,
						engRes.AlignedDIPs, engRes.TotalDIPs, legRes.AlignedDIPs, legRes.TotalDIPs)
				}
			}
		})
	}
}

// TestEngineEncodesOnceAcrossAttack runs a full SAT-path attack on the
// default (incremental) path and checks the engine contract: exactly one
// Tseitin encoding for the whole attack — both hypotheses, every
// calibration candidate, every verifier query — with every subsequent
// solve session counted as an avoided re-encode, and the legacy
// per-assignment compile path never touched.
func TestEngineEncodesOnceAcrossAttack(t *testing.T) {
	h := host(t, 10)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-2A-O"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	// SATWidthLimit pins the SAT regime: the engine contract under test
	// only applies when the SAT extractor runs the attack.
	res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Telemetry: tel, SATWidthLimit: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Fatal("recovered key incorrect")
	}
	snap := tel.Snapshot()
	if got := snap.Counters["engine_encodings_total"]; got != 1 {
		t.Fatalf("engine_encodings_total = %d, want exactly 1", got)
	}
	if snap.Counters["engine_encodings_avoided_total"] == 0 {
		t.Fatal("no avoided re-encodes counted: the persistent engine is not being reused")
	}
	if got := snap.Counters["sat_encode_cache_misses_total"]; got != 0 {
		t.Fatalf("legacy compile path ran %d times on the incremental path", got)
	}
	if snap.Counters["sat_solve_calls_total"] == 0 {
		t.Fatal("sat_* counter continuity broken on the engine path")
	}
}
