package faults

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func testOracle(t *testing.T) (*netlist.Circuit, *oracle.Sim) {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: 8, Outputs: 4, Gates: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c, oracle.MustNewSim(c)
}

// replay runs a fixed query workload through a fresh injector and
// returns the concatenated responses (transient failures recorded as a
// marker word).
func replay(t *testing.T, inj *Injector, nIn int) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var trace []uint64
	for q := 0; q < 50; q++ {
		in := make([]uint64, nIn)
		for i := range in {
			in[i] = rng.Uint64()
		}
		// Repeat some patterns to exercise the per-occurrence streams.
		for rep := 0; rep < 1+q%3; rep++ {
			out, err := inj.Query64(in)
			if err != nil {
				if !errors.Is(err, oracle.ErrTransient) {
					t.Fatalf("non-transient injected error: %v", err)
				}
				trace = append(trace, 0xdeadbeef)
				continue
			}
			trace = append(trace, out...)
		}
	}
	return trace
}

// TestInjectorReproducible is the satellite property: for a fixed seed
// the injected faults are bit-reproducible across runs.
func TestInjectorReproducible(t *testing.T) {
	c, _ := testOracle(t)
	cfg := Config{FlipRate: 0.01, TransientRate: 0.05, Seed: 123}
	a := replay(t, New(oracle.MustNewSim(c), cfg), c.NumInputs())
	b := replay(t, New(oracle.MustNewSim(c), cfg), c.NumInputs())
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %x vs %x", i, a[i], b[i])
		}
	}
	// A different seed must produce a different fault pattern.
	cfg.Seed = 124
	d := replay(t, New(oracle.MustNewSim(c), cfg), c.NumInputs())
	same := len(a) == len(d)
	if same {
		for i := range a {
			if a[i] != d[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed change did not change the fault stream")
	}
}

// TestRepeatedQueriesSeeFreshNoise: the k-th repeat of a pattern draws
// the k-th cell of its stream, so votes are independent — without this,
// majority voting could never outvote a deterministic flip.
func TestRepeatedQueriesSeeFreshNoise(t *testing.T) {
	c, orc := testOracle(t)
	inj := New(orc, Config{FlipRate: 0.5, Seed: 9})
	in := make([]uint64, c.NumInputs())
	first, err := inj.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for rep := 0; rep < 8 && !differs; rep++ {
		out, err := inj.Query64(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != first[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("9 repeats of one pattern at flip rate 0.5 returned identical noise")
	}
}

// TestFlipRateSanity: the realized flip rate lands near the configured
// probability and zero-rate injectors are transparent.
func TestFlipRateSanity(t *testing.T) {
	c, orc := testOracle(t)
	clean := oracle.MustNewSim(c)
	inj := New(orc, Config{FlipRate: 0.02, Seed: 5})
	rng := rand.New(rand.NewSource(8))
	var bits, flipped uint64
	for q := 0; q < 200; q++ {
		in := make([]uint64, c.NumInputs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		want, err := clean.Query64(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inj.Query64(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			bits += 64
			x := want[i] ^ got[i]
			for x != 0 {
				x &= x - 1
				flipped++
			}
		}
	}
	rate := float64(flipped) / float64(bits)
	if rate < 0.01 || rate > 0.04 {
		t.Fatalf("realized flip rate %.4f, configured 0.02", rate)
	}
	if inj.Flips() != flipped {
		t.Fatalf("Flips() = %d, observed %d", inj.Flips(), flipped)
	}

	passthrough := New(oracle.MustNewSim(c), Config{Seed: 5})
	in := make([]uint64, c.NumInputs())
	want, _ := clean.Query64(in)
	got, err := passthrough.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("zero-rate injector altered the response")
		}
	}
}

// TestTransientTyped: injected failures classify as oracle.ErrTransient
// through errors.Is, and single-pattern Query flips too.
func TestTransientTyped(t *testing.T) {
	c, orc := testOracle(t)
	inj := New(orc, Config{TransientRate: 1, Seed: 3})
	in := make([]bool, c.NumInputs())
	if _, err := inj.Query(in); !errors.Is(err, ErrTransient) {
		t.Fatalf("want transient error, got %v", err)
	}
	if inj.Transients() == 0 {
		t.Fatal("transient counter not incremented")
	}

	flipper := New(oracle.MustNewSim(c), Config{FlipRate: 1, Seed: 3})
	clean := oracle.MustNewSim(c)
	want, err := clean.Query(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flipper.Query(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] == want[i] {
			t.Fatal("FlipRate 1 left a bit unflipped")
		}
	}
}
