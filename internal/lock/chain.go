package lock

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// ChainGate is one gate kind in a CAS-Lock cascade.
type ChainGate uint8

// Cascade gate kinds.
const (
	ChainAnd ChainGate = iota
	ChainOr
)

// String returns "A" or "O".
func (g ChainGate) String() string {
	if g == ChainOr {
		return "O"
	}
	return "A"
}

// ChainConfig describes the cascade of a CAS-Lock block: element i is the
// i-th gate from the input side; the last element is the terminating
// gate. A block over n inputs has n-1 chain gates.
type ChainConfig []ChainGate

// NumInputs returns the block input width implied by the chain (one more
// than the gate count).
func (c ChainConfig) NumInputs() int { return len(c) + 1 }

// ORPositions returns the indices of OR gates in the chain.
func (c ChainConfig) ORPositions() []int {
	var out []int
	for i, g := range c {
		if g == ChainOr {
			out = append(out, i)
		}
	}
	return out
}

// LastOR returns the index of the last OR gate, or -1 if the chain is
// all-AND (the Anti-SAT degenerate case).
func (c ChainConfig) LastOR() int {
	for i := len(c) - 1; i >= 0; i-- {
		if c[i] == ChainOr {
			return i
		}
	}
	return -1
}

// Terminator returns the kind of the terminating (last) gate.
func (c ChainConfig) Terminator() ChainGate {
	if len(c) == 0 {
		return ChainAnd
	}
	return c[len(c)-1]
}

// Equal reports element-wise equality.
func (c ChainConfig) Equal(o ChainConfig) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the chain in the paper's run-length notation, e.g.
// "A-O-2A-O" (repetition groups are expanded).
func (c ChainConfig) String() string {
	if len(c) == 0 {
		return ""
	}
	var parts []string
	i := 0
	for i < len(c) {
		j := i
		for j < len(c) && c[j] == c[i] {
			j++
		}
		run := j - i
		if run == 1 {
			parts = append(parts, c[i].String())
		} else {
			parts = append(parts, fmt.Sprintf("%d%s", run, c[i]))
		}
		i = j
	}
	return strings.Join(parts, "-")
}

// ParseChain parses the paper's chain-configuration notation:
//
//	config := term ('-' term)*
//	term   := [count] ('A' | 'O')          e.g. "A", "14A"
//	        | count '(' config ')'         e.g. "2(4A-O)"
//
// as used in Table I ("A-O-2A-O-2A-O-2A-O-A", "2A-O-2(4A-O)-2(2A-O)-12A").
func ParseChain(s string) (ChainConfig, error) {
	p := &chainParser{src: s}
	cfg, err := p.parseConfig()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("lock: chain %q: trailing input at offset %d", s, p.pos)
	}
	if len(cfg) == 0 {
		return nil, fmt.Errorf("lock: empty chain configuration")
	}
	return cfg, nil
}

// MustParseChain is ParseChain that panics on error.
func MustParseChain(s string) ChainConfig {
	cfg, err := ParseChain(s)
	if err != nil {
		panic(err)
	}
	return cfg
}

type chainParser struct {
	src string
	pos int
}

func (p *chainParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *chainParser) parseConfig() (ChainConfig, error) {
	var out ChainConfig
	for {
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		out = append(out, term...)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '-' {
			p.pos++
			continue
		}
		return out, nil
	}
}

func (p *chainParser) parseTerm() (ChainConfig, error) {
	p.skipSpace()
	count := 1
	hasCount := false
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		if !hasCount {
			count = 0
			hasCount = true
		}
		count = count*10 + int(p.src[p.pos]-'0')
		p.pos++
		if count > 1<<20 {
			return nil, fmt.Errorf("lock: chain %q: absurd repetition count", p.src)
		}
	}
	if hasCount && count == 0 {
		return nil, fmt.Errorf("lock: chain %q: zero repetition at offset %d", p.src, p.pos)
	}
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("lock: chain %q: unexpected end of input", p.src)
	}
	switch p.src[p.pos] {
	case 'A', 'a':
		p.pos++
		return repeatGate(ChainAnd, count), nil
	case 'O', 'o':
		p.pos++
		return repeatGate(ChainOr, count), nil
	case '(':
		if !hasCount {
			return nil, fmt.Errorf("lock: chain %q: group without repetition count at offset %d", p.src, p.pos)
		}
		p.pos++
		inner, err := p.parseConfig()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("lock: chain %q: missing ')'", p.src)
		}
		p.pos++
		var out ChainConfig
		for i := 0; i < count; i++ {
			out = append(out, inner...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("lock: chain %q: unexpected character %q at offset %d", p.src, p.src[p.pos], p.pos)
	}
}

func repeatGate(g ChainGate, n int) ChainConfig {
	out := make(ChainConfig, n)
	for i := range out {
		out[i] = g
	}
	return out
}

// gateTypeFor maps a chain gate kind to the netlist gate type, optionally
// complemented (for the terminating gate of the complementary block).
func (g ChainGate) gateTypeFor(complemented bool) netlist.GateType {
	switch {
	case g == ChainAnd && !complemented:
		return netlist.And
	case g == ChainAnd && complemented:
		return netlist.Nand
	case g == ChainOr && !complemented:
		return netlist.Or
	default:
		return netlist.Nor
	}
}
