package telemetry

import (
	"sort"
	"time"
)

// Span is one timed region of the trace. A span belongs to one
// goroutine: SetArg and End must not race with each other, but distinct
// spans of one registry may start and end concurrently (shard workers
// each hold their own child span). A nil *Span — the disabled state —
// no-ops every method.
type Span struct {
	reg    *Registry
	id     uint64
	parent uint64
	name   string
	lane   int
	start  time.Time
	args   map[string]string
	done   bool
}

// SpanRecord is the immutable form a span takes once ended. Start is
// the offset from the registry's epoch; Lane is the Chrome-trace tid
// (0 = the main pipeline; shard workers get distinct lanes so parallel
// work renders as parallel rows).
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Lane   int               `json:"lane,omitempty"`
	Start  time.Duration     `json:"start_ns"`
	Dur    time.Duration     `json:"dur_ns"`
	Args   map[string]string `json:"args,omitempty"`
}

// StartSpan opens a root span (lane 0, no parent). Returns nil on a
// nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, id: r.nextID.Add(1), name: name, start: time.Now()}
}

// StartSpanLane opens a root span on an explicit lane — long-lived
// subsystems (the incremental SAT engine uses EngineLane) get their own
// trace row so their activity renders beside the attack pipeline instead
// of interleaved with it. Returns nil on a nil registry.
func (r *Registry) StartSpanLane(name string, lane int) *Span {
	s := r.StartSpan(name)
	if s != nil {
		s.lane = lane
	}
	return s
}

// EngineLane is the trace lane reserved for the incremental SAT engine's
// solve-session spans. Shard workers use lanes 1..w; the engine sits far
// above any realistic worker count so the rows never collide.
const EngineLane = 900

// Child opens a nested span inheriting the receiver's lane. Returns nil
// on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.StartSpan(name)
	c.parent = s.id
	c.lane = s.lane
	return c
}

// ChildLane opens a nested span on an explicit lane — shard workers use
// lanes 1.. so their spans render as parallel trace rows. Returns nil
// on a nil span.
func (s *Span) ChildLane(name string, lane int) *Span {
	c := s.Child(name)
	if c != nil {
		c.lane = lane
	}
	return c
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetArg attaches a key/value annotation shown in trace viewers. No-op
// on a nil or already-ended span.
func (s *Span) SetArg(k, v string) {
	if s == nil || s.done {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[k] = v
}

// End closes the span, appends its record to the registry and returns
// the measured duration. Ending twice (or ending nil) returns 0.
func (s *Span) End() time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	r := s.reg
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Lane:   s.lane,
		Start:  s.start.Sub(r.epoch),
		Dur:    d,
		Args:   s.args,
	}
	r.spanMu.Lock()
	r.spans = append(r.spans, rec)
	r.spanMu.Unlock()
	return d
}

// SpanRecords returns a copy of all ended spans, sorted by start time.
// Nil registries return nil.
func (r *Registry) SpanRecords() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	out := append([]SpanRecord(nil), r.spans...)
	r.spanMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SpanDurations sums ended-span durations by name — the per-phase time
// budget of a run. Nil registries return nil.
func (r *Registry) SpanDurations() map[string]time.Duration {
	recs := r.SpanRecords()
	if recs == nil {
		return nil
	}
	out := make(map[string]time.Duration, 8)
	for _, rec := range recs {
		out[rec.Name] += rec.Dur
	}
	return out
}

// ChildrenOf filters recs to the direct children of parent ID, in start
// order (recs as returned by SpanRecords is already start-ordered).
func ChildrenOf(recs []SpanRecord, parent uint64) []SpanRecord {
	var out []SpanRecord
	for _, rec := range recs {
		if rec.Parent == parent && parent != 0 {
			out = append(out, rec)
		}
	}
	return out
}

// FindSpans filters recs to those named name, in start order.
func FindSpans(recs []SpanRecord, name string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range recs {
		if rec.Name == name {
			out = append(out, rec)
		}
	}
	return out
}
