package core

import (
	"fmt"
	"math/bits"

	"repro/internal/lock"
)

// MaxDIPs computes Lemma 2's closed form: the number of DIPs a CAS-Lock
// chain configuration produces under the aligned Lemma-1 miter
// assignment,
//
//	#DIPs = 1 + Σ_{OR gates} 2^{c_i},
//
// where c_i is the chain-input position entering OR gate i directly
// (gate j takes input j+1, so an OR at gate j contributes 2^{j+1}).
// This equals the number of 1-points of an AND-terminated chain function
// (0-points of an OR-terminated one, by duality).
func MaxDIPs(chain lock.ChainConfig) uint64 {
	total := uint64(1)
	for j, g := range chain {
		if g == lock.ChainOr {
			total += 1 << uint(j+1)
		}
	}
	return total
}

// ChainFromDIPCount inverts Lemma 2: given the aligned DIP-set size and
// the block width, it reconstructs the chain configuration (Algorithm 1,
// line 6: "Position of OR gates ← position of 1s in the binary
// representation of |I_l|"). The terminator kind cannot always be read
// from the count (an OR at the last gate shows up as bit n-1; an AND
// leaves it clear), so the full config follows directly.
func ChainFromDIPCount(count uint64, n int) (lock.ChainConfig, error) {
	if n < 2 || n > 63 {
		return nil, fmt.Errorf("core: block width %d out of range", n)
	}
	if count == 0 || count%2 == 0 {
		return nil, fmt.Errorf("core: DIP count %d is not odd and positive", count)
	}
	if count >= 1<<uint(n) {
		return nil, fmt.Errorf("core: DIP count %d too large for a %d-input block", count, n)
	}
	chain := make(lock.ChainConfig, n-1)
	rest := count - 1
	for rest != 0 {
		p := bits.TrailingZeros64(rest)
		rest &^= 1 << uint(p)
		if p == 0 || p > n-1 {
			return nil, fmt.Errorf("core: DIP count %d has no valid chain interpretation", count)
		}
		chain[p-1] = lock.ChainOr
	}
	return chain, nil
}

// NonControllingPattern returns w_nc: the unique chain-input pattern that
// sets every cascade gate to its non-controlling value so the first
// input's value propagates to the block output (the pattern behind the
// paper's DIP_nc). Bit 0 is 1; bit q (q ≥ 1) is the non-controlling
// value of gate q-1 (1 for AND, 0 for OR).
func NonControllingPattern(chain lock.ChainConfig) uint64 {
	w := uint64(1)
	for j, g := range chain {
		if g == lock.ChainAnd {
			w |= 1 << uint(j+1)
		}
	}
	return w
}

// OnePoints enumerates the 1-points of an AND-terminated chain function:
// the disjoint union of one group per OR gate (controlling 1 at its
// input, non-controlling values above, free bits below) plus w_nc. The
// result has exactly MaxDIPs(chain) elements. Used by tests and by the
// structure validation inside the attack; the count must stay below
// 2^28 (the attack guards with MaxOnePoints before calling).
func OnePoints(chain lock.ChainConfig) []uint64 {
	n := len(chain) + 1
	if MaxDIPs(chain) > 1<<28 {
		panic("core: OnePoints would materialize more than 2^28 patterns")
	}
	wnc := NonControllingPattern(chain)
	out := []uint64{wnc}
	// Non-controlling suffix pattern for positions > c.
	for j, g := range chain {
		if g != lock.ChainOr {
			continue
		}
		c := uint(j + 1)
		base := uint64(1) << c // controlling 1 at position c
		for q := j + 1; q < n-1; q++ {
			if chain[q] == lock.ChainAnd {
				base |= 1 << uint(q+1)
			}
		}
		for low := uint64(0); low < 1<<c; low++ {
			out = append(out, base|low)
		}
	}
	return out
}
