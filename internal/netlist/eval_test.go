package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random layered DAG over nIn inputs with nGates
// logic gates, deterministic in the seed. Used by several test files.
func randomCircuit(seed int64, nIn, nGates int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New("rand")
	ids := make([]ID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.MustAddInput(inputName(i)))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < nGates; i++ {
		typ := types[rng.Intn(len(types))]
		var fanin []ID
		if typ == Not || typ == Buf {
			fanin = []ID{ids[rng.Intn(len(ids))]}
		} else {
			k := 2 + rng.Intn(2)
			for j := 0; j < k; j++ {
				fanin = append(fanin, ids[rng.Intn(len(ids))])
			}
		}
		ids = append(ids, c.MustAddGate(typ, gateName(i), fanin...))
	}
	// Expose the last few gates as outputs.
	nOut := 3
	if nOut > len(ids) {
		nOut = len(ids)
	}
	for i := 0; i < nOut; i++ {
		c.MustMarkOutput(ids[len(ids)-1-i])
	}
	return c
}

func inputName(i int) string { return "in" + itoa(i) }
func gateName(i int) string  { return "g" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func TestRun64MatchesScalar(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCircuit(seed, 8, 40)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		sim := MustNewSimulator(c)
		rng := rand.New(rand.NewSource(seed + 100))

		in64 := make([]uint64, c.NumInputs())
		for i := range in64 {
			in64[i] = rng.Uint64()
		}
		out64, err := sim.Run64(in64, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Check several lanes against scalar evaluation.
		scalarSim := MustNewSimulator(c)
		for lane := 0; lane < 64; lane += 7 {
			in := make([]bool, c.NumInputs())
			for i := range in {
				in[i] = in64[i]&(1<<uint(lane)) != 0
			}
			out, err := scalarSim.Run(in, nil)
			if err != nil {
				t.Fatal(err)
			}
			for o := range out {
				if out[o] != (out64[o]&(1<<uint(lane)) != 0) {
					t.Fatalf("seed %d lane %d output %d disagrees", seed, lane, o)
				}
			}
		}
	}
}

func TestRunArgumentValidation(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	k := c.MustAddKey("k")
	g := c.MustAddGate(And, "g", a, k)
	c.MustMarkOutput(g)
	sim := MustNewSimulator(c)

	if _, err := sim.Run64([]uint64{0, 0}, []uint64{0}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := sim.Run64([]uint64{0}, nil); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := sim.Run64([]uint64{0}, []uint64{0}); err != nil {
		t.Errorf("valid call rejected: %v", err)
	}
}

func TestNodeValue(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	n := c.MustAddGate(Not, "n", a)
	c.MustMarkOutput(n)
	sim := MustNewSimulator(c)
	if _, err := sim.Run([]bool{false}, nil); err != nil {
		t.Fatal(err)
	}
	if !sim.NodeValue(n) || sim.NodeValue(a) {
		t.Error("NodeValue wrong after run")
	}
	if sim.NodeValue64(n)&1 != 1 {
		t.Error("NodeValue64 wrong after run")
	}
}

func TestSimulatorRejectsCyclicCircuit(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	g1 := c.MustAddGate(Buf, "g1", a)
	c.Gate(g1).Fanin[0] = g1
	c.topoValid = false
	if _, err := NewSimulator(c); err == nil {
		t.Error("cyclic circuit accepted by NewSimulator")
	}
}

func TestWideFaninGate(t *testing.T) {
	// Gates wider than the stack-allocated fanin buffer (8) must still
	// evaluate correctly.
	c := New("t")
	var ins []ID
	for i := 0; i < 12; i++ {
		ins = append(ins, c.MustAddInput(inputName(i)))
	}
	g := c.MustAddGate(And, "wide", ins...)
	c.MustMarkOutput(g)
	in := make([]bool, 12)
	for i := range in {
		in[i] = true
	}
	out, err := c.Eval(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("12-wide AND of all ones should be 1")
	}
	in[11] = false
	out, _ = c.Eval(in, nil)
	if out[0] {
		t.Error("12-wide AND with a zero should be 0")
	}
}

func BenchmarkRun64(b *testing.B) {
	c := randomCircuit(1, 64, 2000)
	sim := MustNewSimulator(c)
	in := make([]uint64, c.NumInputs())
	rng := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run64(in, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.NumGates()) * 8)
}
