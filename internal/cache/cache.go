// Package cache is the attack service's memoization layer: a generic
// bounded LRU (also backing the SAT extractor's miter-encoding memo), a
// content-addressed result store keyed by SHA-256 digests of canonical
// serializations, and a reference-counted singleflight group that
// collapses identical in-flight computations onto one execution.
//
// Everything here is dependency-free and safe for concurrent use; the
// singleflight Flight additionally carries a cancel hook so that an
// execution is aborted exactly when its last interested party walks
// away — the semantics a job-cancellation API needs.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// SumParts hashes the concatenation of parts with SHA-256 and returns
// the lowercase-hex digest. Each part is length-prefixed (64-bit
// big-endian) before hashing so distinct part boundaries can never
// collide ("ab","c" vs "a","bc").
func SumParts(parts ...[]byte) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := uint64(len(p))
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (56 - 8*i))
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LRU is a bounded least-recently-used map. A capacity of 0 or less
// disables bounding (the LRU grows without eviction). Safe for
// concurrent use.
type LRU[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	m   map[K]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an empty LRU holding at most capacity entries.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{cap: capacity, m: make(map[K]*list.Element), l: list.New()}
}

// Get returns the value stored under k and marks it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		c.l.MoveToFront(e)
		return e.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores v under k, evicting the least recently used entry if the
// capacity is exceeded.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.Value.(*lruEntry[K, V]).val = v
		c.l.MoveToFront(e)
		return
	}
	c.m[k] = c.l.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.cap > 0 && c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Len returns the number of entries currently held.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

// Store is a content-addressed store: a bounded LRU from digest keys
// (as produced by SumParts) to completed values. It is the "have we
// already solved this exact problem" half of the service cache; the
// in-flight half is Group.
type Store[V any] struct {
	lru *LRU[string, V]
}

// NewStore returns a Store holding at most capacity entries.
func NewStore[V any](capacity int) *Store[V] {
	return &Store[V]{lru: NewLRU[string, V](capacity)}
}

// Lookup returns the value stored under the digest key.
func (s *Store[V]) Lookup(key string) (V, bool) { return s.lru.Get(key) }

// Put stores a completed value under the digest key.
func (s *Store[V]) Put(key string, v V) { s.lru.Put(key, v) }

// Len returns the number of cached values.
func (s *Store[V]) Len() int { return s.lru.Len() }

// Group collapses concurrent computations of the same key onto a single
// Flight. Unlike the classic singleflight, joiners are reference
// counted: each Join must be paired with either a wait-for-completion or
// a Leave, and when every joiner has left before the flight finished,
// the flight's cancel hook fires — aborting work nobody wants anymore.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*Flight[V]
}

// NewGroup returns an empty singleflight group.
func NewGroup[V any]() *Group[V] { return &Group[V]{m: make(map[string]*Flight[V])} }

// Flight is one in-progress computation. The leader (the Join call that
// created it) runs the work and calls Finish; followers wait on Done or
// bail out with Leave.
type Flight[V any] struct {
	g   *Group[V]
	key string

	// Done is closed by Finish; afterwards Value and Err are immutable.
	Done chan struct{}

	mu       sync.Mutex
	refs     int
	finished bool
	cancel   func()
	val      V
	err      error
}

// Join returns the flight for key, creating it when none is in
// progress. leader is true for the creating call, which owns running
// the computation and must call Finish exactly once. Every Join
// (leader and follower alike) holds one reference.
func (g *Group[V]) Join(key string) (f *Flight[V], leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		return f, false
	}
	f = &Flight[V]{g: g, key: key, Done: make(chan struct{}), refs: 1}
	g.m[key] = f
	return f, true
}

// SetCancel installs the hook invoked when the last joiner leaves an
// unfinished flight. The leader installs it once the computation's
// context exists. If every reference is already gone the hook fires
// immediately (the joiners left before the leader got started).
func (f *Flight[V]) SetCancel(cancel func()) {
	f.mu.Lock()
	fire := f.refs == 0 && !f.finished
	f.cancel = cancel
	f.mu.Unlock()
	if fire && cancel != nil {
		cancel()
	}
}

// Leave drops one reference without waiting for the result. When the
// last reference leaves an unfinished flight, the cancel hook fires.
// The flight stays joinable until Finish (late joiners resurrect the
// refcount, but the computation may already be winding down — they then
// observe its cancelled result).
func (f *Flight[V]) Leave() {
	f.mu.Lock()
	f.refs--
	fire := f.refs <= 0 && !f.finished
	cancel := f.cancel
	f.mu.Unlock()
	if fire && cancel != nil {
		cancel()
	}
}

// Finish records the computation's outcome, removes the flight from the
// group (so later Joins start fresh) and wakes every waiter. Only the
// leader calls it, exactly once.
func (f *Flight[V]) Finish(v V, err error) {
	f.g.mu.Lock()
	delete(f.g.m, f.key)
	f.g.mu.Unlock()
	f.mu.Lock()
	f.val, f.err = v, err
	f.finished = true
	f.mu.Unlock()
	close(f.Done)
}

// Result returns the outcome recorded by Finish. It must only be called
// after Done is closed.
func (f *Flight[V]) Result() (V, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.err
}

// Refs returns the current reference count (diagnostic).
func (f *Flight[V]) Refs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refs
}
