// Package cnf provides CNF formulas, Tseitin encoding of gate-level
// netlists, and DIMACS serialization. Literals use the DIMACS convention:
// variables are positive integers, a negative literal is the negation of
// its variable, and 0 is reserved as a terminator and never a valid
// literal.
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lit is a DIMACS-style literal: +v or -v for variable v ≥ 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula: a conjunction of clauses over NumVars
// variables (numbered 1..NumVars).
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewVar allocates a fresh variable and returns its positive literal.
func (f *Formula) NewVar() Lit {
	f.NumVars++
	return Lit(f.NumVars)
}

// Add appends a clause. Literals over unseen variables grow NumVars. A
// zero literal is a programming error and panics.
func (f *Formula) Add(lits ...Lit) {
	cl := make(Clause, len(lits))
	for i, l := range lits {
		if l == 0 {
			panic("cnf: zero literal in clause")
		}
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
		cl[i] = l
	}
	f.Clauses = append(f.Clauses, cl)
}

// Eval evaluates the formula under a total assignment. assign[v] is the
// value of variable v (index 0 unused).
func (f *Formula) Eval(assign []bool) (bool, error) {
	if len(assign) < f.NumVars+1 {
		return false, fmt.Errorf("cnf: assignment covers %d vars, formula has %d", len(assign)-1, f.NumVars)
	}
	for _, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			if assign[l.Var()] == l.Sign() {
				sat = true
				break
			}
		}
		if !sat {
			return false, nil
		}
	}
	return true, nil
}

// WriteDIMACS serializes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, cl := range f.Clauses {
		for _, l := range cl {
			bw.WriteString(strconv.Itoa(int(l)))
			bw.WriteByte(' ')
		}
		bw.WriteString("0\n")
	}
	return bw.Flush()
}

// DIMACSString returns the DIMACS serialization as a string.
func (f *Formula) DIMACSString() string {
	var sb strings.Builder
	_ = f.WriteDIMACS(&sb)
	return sb.String()
}

// ParseDIMACS reads a DIMACS CNF file.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	f := &Formula{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	declared := false
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			_, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			f.NumVars = nv
			declared = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			if abs := Lit(v).Var(); abs > f.NumVars {
				f.NumVars = abs
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if !declared {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	return f, nil
}

// Clone returns a deep copy of the formula; useful when a caller wants to
// extend a base encoding with scenario-specific clauses.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, cl := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), cl...)
	}
	return out
}
