package cnf

import (
	"fmt"

	"repro/internal/netlist"
)

// Sink receives an encoding: fresh variables and clauses. *Formula
// implements Sink; so does the CDCL solver in internal/sat, which is what
// makes incremental attack loops possible (new circuit copies are encoded
// straight into a live solver).
type Sink interface {
	// NewVar allocates a fresh variable, returned as its positive literal.
	NewVar() Lit
	// Add appends a clause.
	Add(lits ...Lit)
}

// Encoding is the result of Tseitin-encoding a circuit: the variable
// assigned to every gate.
type Encoding struct {
	// GateVar[id] is the positive literal of the variable carrying gate
	// id's value.
	GateVar []Lit
}

// Var returns the literal for a gate's value.
func (e *Encoding) Var(id netlist.ID) Lit { return e.GateVar[id] }

// InputLits returns the literals of the circuit's primary inputs in order.
func (e *Encoding) InputLits(c *netlist.Circuit) []Lit {
	out := make([]Lit, c.NumInputs())
	for i, id := range c.Inputs() {
		out[i] = e.GateVar[id]
	}
	return out
}

// KeyLits returns the literals of the circuit's key inputs in order.
func (e *Encoding) KeyLits(c *netlist.Circuit) []Lit {
	out := make([]Lit, c.NumKeys())
	for i, id := range c.Keys() {
		out[i] = e.GateVar[id]
	}
	return out
}

// OutputLits returns the literals of the circuit's outputs in order.
func (e *Encoding) OutputLits(c *netlist.Circuit) []Lit {
	out := make([]Lit, c.NumOutputs())
	for i, id := range c.Outputs() {
		out[i] = e.GateVar[id]
	}
	return out
}

// Encode Tseitin-encodes the circuit into a fresh formula. Every gate
// gets a variable; gate semantics are encoded as the standard
// equisatisfiable clause sets (n-ary AND/OR directly, XOR/XNOR as a
// chain of binary constraints with auxiliary variables).
func Encode(c *netlist.Circuit) (*Encoding, *Formula, error) {
	f := &Formula{}
	enc, err := EncodeInto(c, f)
	return enc, f, err
}

// EncodeInto encodes the circuit into an existing sink (allocating fresh
// variables), allowing several circuits to share one formula or one live
// solver instance — the building block for miters and incremental attack
// loops.
func EncodeInto(c *netlist.Circuit, f Sink) (*Encoding, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	enc := &Encoding{GateVar: make([]Lit, c.NumGates())}
	for _, id := range order {
		g := c.Gate(id)
		v := f.NewVar()
		enc.GateVar[id] = v
		switch g.Type {
		case netlist.Input:
			// Free variable.
		case netlist.Const0:
			f.Add(v.Neg())
		case netlist.Const1:
			f.Add(v)
		case netlist.Buf:
			a := enc.GateVar[g.Fanin[0]]
			f.Add(v.Neg(), a)
			f.Add(v, a.Neg())
		case netlist.Not:
			a := enc.GateVar[g.Fanin[0]]
			f.Add(v.Neg(), a.Neg())
			f.Add(v, a)
		case netlist.And, netlist.Nand:
			encodeAnd(f, v, faninLits(enc, g), g.Type == netlist.Nand)
		case netlist.Or, netlist.Nor:
			encodeOr(f, v, faninLits(enc, g), g.Type == netlist.Nor)
		case netlist.Xor, netlist.Xnor:
			encodeXor(f, v, faninLits(enc, g), g.Type == netlist.Xnor)
		default:
			return nil, fmt.Errorf("cnf: cannot encode gate type %s", g.Type)
		}
	}
	return enc, nil
}

func faninLits(enc *Encoding, g *netlist.Gate) []Lit {
	lits := make([]Lit, len(g.Fanin))
	for i, f := range g.Fanin {
		lits[i] = enc.GateVar[f]
	}
	return lits
}

// encodeAnd emits v ↔ AND(in...) (or v ↔ NAND when inverted).
func encodeAnd(f Sink, v Lit, in []Lit, inverted bool) {
	out := v
	if inverted {
		out = v.Neg()
	}
	// out → a for each a ; (a ∧ b ∧ …) → out.
	long := make(Clause, 0, len(in)+1)
	for _, a := range in {
		f.Add(out.Neg(), a)
		long = append(long, a.Neg())
	}
	long = append(long, out)
	f.Add(long...)
}

// encodeOr emits v ↔ OR(in...) (or v ↔ NOR when inverted).
func encodeOr(f Sink, v Lit, in []Lit, inverted bool) {
	out := v
	if inverted {
		out = v.Neg()
	}
	long := make(Clause, 0, len(in)+1)
	for _, a := range in {
		f.Add(out, a.Neg())
		long = append(long, a)
	}
	long = append(long, out.Neg())
	f.Add(long...)
}

// encodeXorPair emits v ↔ a XOR b.
func encodeXorPair(f Sink, v, a, b Lit) {
	f.Add(v.Neg(), a, b)
	f.Add(v.Neg(), a.Neg(), b.Neg())
	f.Add(v, a.Neg(), b)
	f.Add(v, a, b.Neg())
}

// encodeXor emits v ↔ XOR(in...) (parity), or its complement for XNOR,
// chaining binary XORs through auxiliary variables.
func encodeXor(f Sink, v Lit, in []Lit, inverted bool) {
	acc := in[0]
	for i := 1; i < len(in); i++ {
		var next Lit
		if i == len(in)-1 && !inverted {
			next = v
		} else {
			next = f.NewVar()
		}
		encodeXorPair(f, next, acc, in[i])
		acc = next
	}
	if inverted {
		// v ↔ ¬acc
		f.Add(v.Neg(), acc.Neg())
		f.Add(v, acc)
	} else if len(in) == 1 {
		f.Add(v.Neg(), acc)
		f.Add(v, acc.Neg())
	}
}
