#!/bin/sh
# engine-smoke: differential check of the persistent incremental-SAT
# engine against the legacy per-assignment re-encode path.
#
# Locks two CAS instances — a c432-profile host with a 32-bit key
# (simulation-extractor regime) and a narrower SAT-regime instance
# where the engine serves every enumeration and verification query —
# and attacks each twice, once on the default incremental engine and
# once with -legacy-encoding. Both runs must SAT-prove their key and
# print byte-identical key bits: the engine is a pure solving-strategy
# change, so any divergence is a correctness bug, not tuning.
#
# Usage: engine_smoke.sh <workdir>
set -eu

DIR=${1:?usage: engine_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-attack ./cmd/casgen

# c432 I/O profile (36 inputs), 15-gate chain -> width-16 block ->
# 32 key bits. Wide blocks enumerate bit-parallel; the differential
# still covers the shared decode/calibrate/verify pipeline.
"$DIR/bin/casgen" -inputs 36 -gates 160 -scheme cas \
	-chain "7A-O-7A" \
	-out "$DIR/c432_locked.bench" -orig "$DIR/c432_orig.bench"

# 11-gate chain -> width-12 block -> 24 key bits: inside the SAT-
# extractor limit, so the engine carries DIP enumeration, calibration
# probes and the verifier's distinguishing queries on one encoding.
"$DIR/bin/casgen" -inputs 14 -gates 70 -scheme cas \
	-chain "5A-O-5A" \
	-out "$DIR/sat_locked.bench" -orig "$DIR/sat_orig.bench"

for inst in c432 sat; do
	"$DIR/bin/caslock-attack" -locked "$DIR/${inst}_locked.bench" \
		-oracle "$DIR/${inst}_orig.bench" >"$DIR/${inst}_engine.out" 2>&1 || {
		echo "engine-smoke: $inst engine-path attack failed" >&2
		cat "$DIR/${inst}_engine.out" >&2
		exit 1
	}
	"$DIR/bin/caslock-attack" -locked "$DIR/${inst}_locked.bench" \
		-oracle "$DIR/${inst}_orig.bench" \
		-legacy-encoding >"$DIR/${inst}_legacy.out" 2>&1 || {
		echo "engine-smoke: $inst legacy-path attack failed" >&2
		cat "$DIR/${inst}_legacy.out" >&2
		exit 1
	}

	for path in engine legacy; do
		if ! grep -q "SAT-PROVEN equivalent" "$DIR/${inst}_$path.out"; then
			echo "engine-smoke: $inst $path run did not SAT-prove its key" >&2
			cat "$DIR/${inst}_$path.out" >&2
			exit 1
		fi
	done

	ENG_KEY=$(grep "key:" "$DIR/${inst}_engine.out")
	LEG_KEY=$(grep "key:" "$DIR/${inst}_legacy.out")
	if [ -z "$ENG_KEY" ] || [ "$ENG_KEY" != "$LEG_KEY" ]; then
		echo "engine-smoke: $inst keys diverge between engine and legacy paths" >&2
		echo "engine: $ENG_KEY" >&2
		echo "legacy: $LEG_KEY" >&2
		exit 1
	fi
done

echo "engine-smoke: OK (c432/32-bit and SAT-regime keys byte-identical across engine and legacy paths)"
rm -rf "$DIR"
