// Package satattack implements the oracle-guided SAT attack of
// Subramanyan, Ray and Malik (HOST 2015), the baseline every
// SAT-resilient locking scheme (including CAS-Lock) is designed to
// defeat. The attack repeatedly finds distinguishing input patterns with
// a key-differential miter, constrains both key copies to agree with the
// oracle on each DIP, and terminates when no further DIP exists — at
// which point any key satisfying the accumulated constraints is correct.
//
// By default the attack runs on the persistent incremental-SAT engine
// (internal/engine): the miter is encoded once, per-DIP IO constraints
// live in an assumption-guarded scope, and learned clauses persist
// across the whole run (and across runs, when the caller supplies a
// warm Backend). Options.LegacySolver restores the original throwaway
// per-run solver; the differential tests hold the two paths to
// bit-identical keys (both extract the canonical lex-min correct key)
// and identical iteration budgets on SAT-resistant schemes.
package satattack

import (
	"context"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/engine"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// Options bounds the attack.
type Options struct {
	// MaxIterations stops the DIP loop early (0 = unlimited). SAT-hard
	// schemes like CAS-Lock need an exponential number of iterations, so
	// benchmarks set a cap to measure "did not finish".
	MaxIterations int
	// ConflictBudget bounds each individual SAT call (0 = unlimited).
	ConflictBudget uint64
	// LegacySolver rebuilds a throwaway solver for this run instead of
	// driving the persistent engine — the pre-engine behavior, kept as
	// an escape hatch and as the differential-test baseline.
	LegacySolver bool
	// Backend, when non-nil, is the engine the attack drives (a warm
	// pool entry or a portfolio); nil builds a fresh engine for the run.
	// Ignored under LegacySolver.
	Backend engine.Backend
	// Context, when non-nil, bounds the engine path: solves are sliced
	// against the deadline and cancellation is polled between slices.
	Context context.Context
	// Telemetry instruments the run (attack_* span + engine families).
	Telemetry *telemetry.Registry
}

// Result reports the attack outcome.
type Result struct {
	// Key is the recovered key (nil when the attack hit a bound).
	Key []bool
	// Iterations is the number of DIPs used.
	Iterations int
	// Completed is true when the attack proved key correctness (the
	// miter became UNSAT), false when it stopped on a bound.
	Completed bool
	// OracleQueries is the number of oracle patterns consumed.
	OracleQueries uint64
	// SolverStats aggregates the SAT work of this run.
	SolverStats sat.Stats
}

// Run mounts the SAT attack on a locked netlist with black-box oracle
// access.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if locked.NumInputs() != orc.NumInputs() || locked.NumOutputs() != orc.NumOutputs() {
		return nil, fmt.Errorf("satattack: locked netlist I/O (%d/%d) does not match oracle (%d/%d)",
			locked.NumInputs(), locked.NumOutputs(), orc.NumInputs(), orc.NumOutputs())
	}
	sp := opts.Telemetry.StartSpan("attack_satattack")
	defer sp.End()
	if opts.LegacySolver {
		return runLegacy(locked, orc, opts)
	}
	return runEngine(locked, orc, opts)
}

// runEngine drives the attack through a persistent engine session.
func runEngine(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	be := opts.Backend
	if be == nil {
		eng, err := engine.New(locked, nil)
		if err != nil {
			return nil, err
		}
		be = eng
	}
	if opts.Context != nil {
		be.SetContext(opts.Context)
	}
	if opts.Telemetry != nil {
		be.SetTelemetry(opts.Telemetry)
	}
	be.SetPhase("satattack")
	statsBase := be.Stats()

	ses, err := be.OpenSession()
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	ses.SetConflictBudget(opts.ConflictBudget)

	res := &Result{}
	queriesBefore := countQueries(orc)
	finish := func() *Result {
		res.SolverStats = be.Stats().Diff(statsBase)
		res.OracleQueries = countQueries(orc) - queriesBefore
		return res
	}

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			return finish(), nil
		}
		dip, st, err := ses.FindDIP()
		if err != nil {
			return nil, err
		}
		if st == sat.Unknown {
			return finish(), nil
		}
		if st == sat.Unsat {
			break // no more DIPs: constraints pin a correct key
		}
		res.Iterations++
		out, err := orc.Query(dip)
		if err != nil {
			return nil, err
		}
		if err := ses.Constrain(dip, out); err != nil {
			return nil, err
		}
	}

	key, st, err := ses.ExtractKey()
	if err != nil {
		return nil, err
	}
	if st != sat.Sat {
		return nil, fmt.Errorf("satattack: final key extraction returned %v", st)
	}
	res.Key = key
	res.Completed = true
	return finish(), nil
}

// runLegacy is the original throwaway-solver attack, kept bit-compatible
// as the LegacySolver escape hatch and differential baseline.
func runLegacy(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	kd, err := miter.NewKeyDiff(locked)
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	solver.ConflictBudget = opts.ConflictBudget
	enc, err := cnf.EncodeInto(kd.Circuit, solver)
	if err != nil {
		return nil, err
	}

	diffLit := enc.OutputLits(kd.Circuit)[0]
	inputLits := enc.InputLits(kd.Circuit)
	keyLits := enc.KeyLits(kd.Circuit)
	keysA := keyLits[:kd.NKeys]
	keysB := keyLits[kd.NKeys:]

	res := &Result{}
	queriesBefore := countQueries(orc)

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			res.SolverStats = solver.Stats()
			res.OracleQueries = countQueries(orc) - queriesBefore
			return res, nil
		}
		status := solver.Solve(diffLit)
		if status == sat.Unknown {
			res.SolverStats = solver.Stats()
			res.OracleQueries = countQueries(orc) - queriesBefore
			return res, nil
		}
		if status == sat.Unsat {
			break // no more DIPs: constraints pin a correct key
		}
		res.Iterations++

		dip := make([]bool, len(inputLits))
		for i, l := range inputLits {
			dip[i] = solver.ModelValue(l)
		}
		out, err := orc.Query(dip)
		if err != nil {
			return nil, err
		}
		// Constrain both key copies to reproduce the oracle on this DIP.
		for _, keys := range [][]cnf.Lit{keysA, keysB} {
			if err := addIOConstraint(locked, solver, keys, dip, out); err != nil {
				return nil, err
			}
		}
	}

	// Any satisfying assignment of the constraints is a correct key; like
	// the engine path, return the lex-min one so the recovered key is
	// canonical rather than an artifact of the search trajectory.
	key, err := lexMinKey(solver, keysA)
	if err != nil {
		return nil, err
	}
	res.Key = key
	res.Completed = true
	res.SolverStats = solver.Stats()
	res.OracleQueries = countQueries(orc) - queriesBefore
	return res, nil
}

// addIOConstraint encodes a fresh copy of the locked circuit into the
// live solver with inputs fixed to dip, outputs fixed to out, and key
// variables tied to keyVars.
func addIOConstraint(locked *netlist.Circuit, solver *sat.Solver,
	keyVars []cnf.Lit, dip []bool, out []bool) error {

	enc, err := cnf.EncodeInto(locked, solver)
	if err != nil {
		return err
	}
	for i, kl := range enc.KeyLits(locked) {
		solver.Add(kl.Neg(), keyVars[i])
		solver.Add(kl, keyVars[i].Neg())
	}
	for i, il := range enc.InputLits(locked) {
		if dip[i] {
			solver.Add(il)
		} else {
			solver.Add(il.Neg())
		}
	}
	for i, ol := range enc.OutputLits(locked) {
		if out[i] {
			solver.Add(ol)
		} else {
			solver.Add(ol.Neg())
		}
	}
	return nil
}

// lexMinKey extracts the lexicographically smallest key satisfying the
// solver's constraints, one incremental solve per bit: false wins a bit
// whenever some satisfying key has it false. At attack completion the
// satisfying keys are exactly the functionally correct keys, so this is
// a canonical representative independent of the DIP sequence — the
// legacy-path twin of Session.ExtractKey.
func lexMinKey(solver *sat.Solver, keys []cnf.Lit) ([]bool, error) {
	if st := solver.Solve(); st != sat.Sat {
		return nil, fmt.Errorf("satattack: final key extraction returned %v", st)
	}
	key := make([]bool, len(keys))
	assume := make([]cnf.Lit, 0, len(keys)+1)
	for i, l := range keys {
		switch st := solver.Solve(append(assume, l.Neg())...); st {
		case sat.Sat:
			assume = append(assume, l.Neg())
		case sat.Unsat:
			key[i] = true
			assume = append(assume, l)
		default:
			return nil, fmt.Errorf("satattack: key extraction returned %v", st)
		}
	}
	return key, nil
}

func countQueries(orc oracle.Oracle) uint64 {
	if s, ok := orc.(*oracle.Sim); ok {
		return s.Queries()
	}
	return 0
}
