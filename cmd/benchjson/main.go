// Command benchjson runs the repository's tier-1 performance workloads
// in-process (via testing.Benchmark, no go-toolchain exec) and writes
// the results as JSON, so successive PRs accumulate a perf trajectory.
//
//	benchjson              # writes BENCH_core.json in the cwd
//	benchjson -o bench.json
//
// When a baseline report is available (the previous committed
// BENCH_core.json — by default the output path's existing content, or
// an explicit -baseline), the new report carries a "delta" section
// comparing every shared workload and the aggregate SAT and simulation
// times. With -max-regress set, a SAT- or sim-time regression beyond
// that fraction exits nonzero — `make bench-compare` uses this to fail
// loudly on >20% regressions in either engine.
//
//	benchjson -baseline BENCH_core.json -max-regress 0.20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"math"
	"math/rand"

	"repro/internal/attack/satattack"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Result is one benchmark's record in the JSON output.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Extra       float64 `json:"extra,omitempty"` // workload-specific metric (e.g. DIPs)
	ExtraName   string  `json:"extra_name,omitempty"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SpeedupParallel is sim-extraction ns/op at workers=1 divided by
	// ns/op at workers=NumCPU (1.0 on a single-core machine).
	SpeedupParallel float64  `json:"speedup_parallel"`
	Results         []Result `json:"results"`
	// Telemetry condenses the instrumented workloads' registry (the SAT
	// extraction and Table-I attack runs) so the perf trajectory records
	// where the time went, not just how much there was.
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`
	// Delta compares this report against the previous committed one.
	Delta *DeltaReport `json:"delta,omitempty"`
}

// DeltaEntry is one workload's change versus the baseline report.
type DeltaEntry struct {
	Name     string `json:"name"`
	NsBefore int64  `json:"ns_before"`
	NsAfter  int64  `json:"ns_after"`
	// Change is (after-before)/before: negative is an improvement.
	Change float64 `json:"change"`
}

// DeltaReport is the "delta" section: per-workload ns/op changes for
// every workload present in both reports, plus the aggregate SAT solve
// time (the sum of ns/op over sat_* workloads) and the aggregate
// simulation time (sim_* workloads), both of which bench-compare gates
// on.
type DeltaReport struct {
	BaselineTimestamp string       `json:"baseline_timestamp"`
	SATNsBefore       int64        `json:"sat_ns_before"`
	SATNsAfter        int64        `json:"sat_ns_after"`
	SATTimeChange     float64      `json:"sat_time_change"`
	SimNsBefore       int64        `json:"sim_ns_before"`
	SimNsAfter        int64        `json:"sim_ns_after"`
	SimTimeChange     float64      `json:"sim_time_change"`
	Results           []DeltaEntry `json:"results,omitempty"`
}

// computeDelta builds the delta section from a baseline report. Only
// workloads present in both reports are compared — both per-entry and
// in the SAT aggregate — so a renamed or newly added workload never
// fabricates a regression.
func computeDelta(base, rep *Report) *DeltaReport {
	prev := make(map[string]int64, len(base.Results))
	for _, r := range base.Results {
		prev[r.Name] = r.NsPerOp
	}
	d := &DeltaReport{BaselineTimestamp: base.Timestamp}
	for _, r := range rep.Results {
		before, ok := prev[r.Name]
		if !ok || before == 0 {
			continue
		}
		d.Results = append(d.Results, DeltaEntry{
			Name:     r.Name,
			NsBefore: before,
			NsAfter:  r.NsPerOp,
			Change:   float64(r.NsPerOp-before) / float64(before),
		})
		if strings.HasPrefix(r.Name, "sat_") {
			d.SATNsBefore += before
			d.SATNsAfter += r.NsPerOp
		}
		if strings.HasPrefix(r.Name, "sim_") {
			d.SimNsBefore += before
			d.SimNsAfter += r.NsPerOp
		}
	}
	if d.SATNsBefore > 0 {
		d.SATTimeChange = float64(d.SATNsAfter-d.SATNsBefore) / float64(d.SATNsBefore)
	}
	if d.SimNsBefore > 0 {
		d.SimTimeChange = float64(d.SimNsAfter-d.SimNsBefore) / float64(d.SimNsBefore)
	}
	return d
}

// loadBaseline reads a previous report; a missing file is not an error
// (first run of the trajectory), anything else is.
func loadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return &rep, nil
}

// TelemetrySummary is the slice of the telemetry registry a perf
// trajectory cares about: cumulative per-phase attack seconds and the
// oracle/SAT work totals behind them.
type TelemetrySummary struct {
	PhaseSeconds  map[string]float64 `json:"phase_seconds,omitempty"`
	OracleQueries uint64             `json:"oracle_queries"`
	SATConflicts  uint64             `json:"sat_conflicts"`
	SATSolveCalls uint64             `json:"sat_solve_calls"`
	Extractions   uint64             `json:"extractions"`
	// Crossover records the crossover_* family verbatim (probe counts,
	// which engine the self-tuning boundary picked, probe costs in ns),
	// so the trajectory shows calibration drift alongside raw timings.
	Crossover map[string]int64 `json:"crossover,omitempty"`
	// Portfolio records the portfolio_* family verbatim (per-member race
	// wins, learned clauses exported/imported over the sharing channel,
	// disagreements — the latter must stay zero), so the trajectory shows
	// whether the racing members actually cooperate.
	Portfolio map[string]int64 `json:"portfolio,omitempty"`
}

// summarize extracts the summary fields from a registry snapshot. Phase
// names come from the attack_phase_seconds{phase="..."} histogram family.
func summarize(tel *telemetry.Registry) *TelemetrySummary {
	snap := tel.Snapshot()
	ts := &TelemetrySummary{
		OracleQueries: snap.Counters["attack_oracle_queries_total"],
		SATConflicts:  snap.Counters["sat_conflicts_total"],
		SATSolveCalls: snap.Counters["sat_solve_calls_total"],
		Extractions:   snap.Counters["enum_extractions_total"],
	}
	const prefix = `attack_phase_seconds{phase="`
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		phase := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
		if ts.PhaseSeconds == nil {
			ts.PhaseSeconds = make(map[string]float64)
		}
		ts.PhaseSeconds[phase] = h.Sum
	}
	cross := func(name string, v int64) {
		switch {
		case strings.HasPrefix(name, "crossover_"):
			if ts.Crossover == nil {
				ts.Crossover = make(map[string]int64)
			}
			ts.Crossover[name] = v
		case strings.HasPrefix(name, "portfolio_"):
			if ts.Portfolio == nil {
				ts.Portfolio = make(map[string]int64)
			}
			ts.Portfolio[name] = v
		}
	}
	for name, v := range snap.Counters {
		cross(name, int64(v))
	}
	for name, v := range snap.Gauges {
		cross(name, v)
	}
	return ts
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path")
	baseline := flag.String("baseline", "", "previous report to diff against (default: the output path's existing content)")
	maxRegress := flag.Float64("max-regress", 0, "fail (exit 1) when aggregate sat_* time regresses by more than this fraction (0 = report-only)")
	flag.Parse()

	basePath := *baseline
	if basePath == "" {
		basePath = *out
	}
	// Load the baseline before the workloads run (and long before the
	// atomic overwrite of the output path clobbers it).
	base, err := loadBaseline(basePath)
	fatalIf(err)

	rep := &Report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// One registry spans the instrumented workloads (SAT extraction and
	// the Table-I attack); the pure sim-extraction speedup measurements
	// stay uninstrumented so their ns/op series remains comparable
	// across PRs.
	tel := telemetry.New()

	// The overhead pairs run first, on a fresh heap: the armed variants
	// allocate more per op (bank entries, snapshot builds, published
	// events), and a heap inflated by the earlier workloads amplifies
	// that into GC time the <5% gates would misattribute to the armed
	// feature.
	ckRes, ckChange, err := checkpointWorkloads()
	fatalIf(err)
	rep.Results = append(rep.Results, ckRes...)

	evRes, evChange, err := eventsWorkloads()
	fatalIf(err)
	rep.Results = append(rep.Results, evRes...)

	ext, assign, err := extractionWorkload(22)
	var r testing.BenchmarkResult
	fatalIf(err)
	workerCounts := []int{1, 2}
	if nc := runtime.NumCPU(); nc != 1 && nc != 2 {
		workerCounts = append(workerCounts, nc)
	}
	var ns1, nsMax int64
	var wantDIPs uint64
	for _, w := range workerCounts {
		w := w
		ext.SetWorkers(w)
		var dips *core.DIPSet
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				dips, err = ext.DIPs(assign)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if wantDIPs == 0 {
			wantDIPs = dips.Count()
		} else if dips.Count() != wantDIPs {
			fatalIf(fmt.Errorf("workers=%d produced %d DIPs, want %d", w, dips.Count(), wantDIPs))
		}
		res := toResult(fmt.Sprintf("sim_extract_n22_workers_%d", w), r)
		res.Extra, res.ExtraName = float64(dips.Count()), "DIPs"
		rep.Results = append(rep.Results, res)
		if w == 1 {
			ns1 = res.NsPerOp
		}
		nsMax = res.NsPerOp
	}
	if nsMax > 0 {
		rep.SpeedupParallel = float64(ns1) / float64(nsMax)
	}

	// Lane-width pair: the same single-worker extraction pinned to the
	// 64-lane scalar kernel and to the 512-lane wide kernel, so the
	// trajectory records the bit-slicing win in isolation from sharding.
	// The wide entry's extra metric is its speedup over the 64-lane run.
	ext.SetWorkers(1)
	var nsLanes64 int64
	for _, lw := range []struct {
		lanes int
		name  string
	}{{64, "sim_extract_lanes64"}, {512, "sim_extract_wide"}} {
		fatalIf(ext.SetLaneWidth(lw.lanes))
		var dips *core.DIPSet
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				dips, err = ext.DIPs(assign)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if dips.Count() != wantDIPs {
			fatalIf(fmt.Errorf("%s produced %d DIPs, want %d", lw.name, dips.Count(), wantDIPs))
		}
		res := toResult(lw.name, r)
		if lw.lanes == 64 {
			nsLanes64 = res.NsPerOp
		} else if res.NsPerOp > 0 {
			res.Extra, res.ExtraName = float64(nsLanes64)/float64(res.NsPerOp), "speedup_vs_64"
		}
		rep.Results = append(rep.Results, res)
	}
	fatalIf(ext.SetLaneWidth(0))

	// Raw compiled-kernel micro entries on a c7552-profile netlist: one
	// Run at each lane width, no extraction logic around it.
	simRes, err := simRunWorkloads()
	fatalIf(err)
	rep.Results = append(rep.Results, simRes...)

	ext.SetWorkers(0)
	r = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ext.Classes(assign); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, toResult("sim_classes_n22", r))

	satRes, err := satWorkload(tel, false, 0)
	fatalIf(err)
	rep.Results = append(rep.Results, satRes)

	// The same workload on the legacy per-assignment re-encode path, so
	// the trajectory records the incremental engine's win explicitly.
	// It runs uninstrumented: its solver work would otherwise pollute
	// the engine path's telemetry summary.
	legRes, err := satWorkload(nil, true, 0)
	fatalIf(err)
	rep.Results = append(rep.Results, legRes)

	// And once more behind the racing portfolio, instrumented so the
	// portfolio_* win/share counters land in the telemetry summary. The
	// entry joins the gated sat_* aggregate: a portfolio that loses the
	// race against its own single-engine sibling fails bench-compare.
	portRes, err := satWorkload(tel, false, engine.DefaultPortfolioSize)
	fatalIf(err)
	rep.Results = append(rep.Results, portRes)

	// The classic oracle-guided SAT attack on the engine path, capped on
	// the same resistant instance, so the trajectory prices the attack
	// loop itself (encode + enumerate/constrain cycles), not just raw
	// extraction.
	atkRes, err := satAttackWorkload()
	fatalIf(err)
	rep.Results = append(rep.Results, atkRes)

	row := experiments.TableI32[1] // c880, no duplicate-config note
	var last *experiments.TableIResult
	r = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.RunTableIRow(row, experiments.TableIOptions{Seed: 1, MatchPaperRegime: true, Telemetry: tel})
			if err != nil {
				b.Fatal(err)
			}
			if !res.KeyRecovered {
				b.Fatal("key not recovered")
			}
			last = res
		}
	})
	tr := toResult("tablei_k32_"+row.Benchmark, r)
	tr.Extra, tr.ExtraName = float64(last.MeasuredDIPs), "DIPs"
	rep.Results = append(rep.Results, tr)

	rep.Telemetry = summarize(tel)
	if base != nil {
		rep.Delta = computeDelta(base, rep)
	}

	fatalIf(writeReport(*out, rep))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s (NumCPU=%d, speedup=%.2fx)\n",
		len(rep.Results), *out, rep.NumCPU, rep.SpeedupParallel)
	// The checkpoint and event-bus gates compare within this report
	// (armed vs unarmed twin of the same attack), not against the
	// committed baseline — computeDelta's sat_*/sim_* aggregates never
	// see checkpoint_* or events_*.
	fmt.Fprintf(os.Stderr, "benchjson: checkpoint overhead %s (armed vs unarmed attack)\n", pct(ckChange))
	if *maxRegress > 0 && ckChange > maxCheckpointOverhead {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: armed checkpointing costs %s over the unarmed attack (limit %s)\n",
			pct(ckChange), pct(maxCheckpointOverhead))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: event-bus overhead %s (subscribed vs disabled attack)\n", pct(evChange))
	if *maxRegress > 0 && evChange > maxEventOverhead {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: a subscribed event bus costs %s over the bus-disabled attack (limit %s)\n",
			pct(evChange), pct(maxEventOverhead))
		os.Exit(1)
	}
	if rep.Delta != nil {
		fmt.Fprintf(os.Stderr, "benchjson: delta vs %s (%s): SAT time %s, sim time %s\n",
			basePath, rep.Delta.BaselineTimestamp, pct(rep.Delta.SATTimeChange), pct(rep.Delta.SimTimeChange))
		for _, d := range rep.Delta.Results {
			fmt.Fprintf(os.Stderr, "benchjson:   %-28s %12d -> %12d ns/op (%s)\n",
				d.Name, d.NsBefore, d.NsAfter, pct(d.Change))
		}
		failed := false
		if *maxRegress > 0 && rep.Delta.SATTimeChange > *maxRegress {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: SAT time regressed %s against %s (limit %s)\n",
				pct(rep.Delta.SATTimeChange), basePath, pct(*maxRegress))
			failed = true
		}
		if *maxRegress > 0 && rep.Delta.SimTimeChange > *maxRegress {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: sim time regressed %s against %s (limit %s)\n",
				pct(rep.Delta.SimTimeChange), basePath, pct(*maxRegress))
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	} else if *maxRegress > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline at %s; regression gate skipped\n", basePath)
	}
}

// pct renders a fraction as a signed percentage.
func pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// writeReport marshals and writes the report atomically (temp file in
// the destination directory, fsync, then rename, then a best-effort
// directory fsync), so neither an interrupted run nor a post-rename
// power cut leaves a truncated BENCH file for the trajectory tooling
// to choke on.
func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// bench runs fn under the standard testing.Benchmark calibration (1s
// per benchmark), with allocation reporting on.
func bench(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
}

func toResult(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// extractionWorkload mirrors BenchmarkSimExtractorParallel: a 2^n-block
// CAS instance under the Lemma-1 assignment.
func extractionWorkload(n int) (*core.SimExtractor, core.PairAssign, error) {
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: n + 4, Outputs: 4, Gates: 100, Seed: 1})
	if err != nil {
		return nil, core.PairAssign{}, err
	}
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if i%4 == 2 {
			chain[i] = lock.ChainOr
		}
	}
	chain[n-2] = lock.ChainAnd
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 2})
	if err != nil {
		return nil, core.PairAssign{}, err
	}
	layout, err := core.DiscoverLayout(locked.Circuit)
	if err != nil {
		return nil, core.PairAssign{}, err
	}
	ext, err := core.NewSimExtractor(locked.Circuit, layout, 3)
	if err != nil {
		return nil, core.PairAssign{}, err
	}
	assign := core.PairAssign{A: make([]bool, locked.Circuit.NumKeys()), B: make([]bool, locked.Circuit.NumKeys())}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	return ext, assign, nil
}

// simRunWorkloads benchmarks the compiled gate program on a
// c7552-profile synthetic netlist at all three lane widths (one Run64 /
// Run256 / Run512 call per op), the purest view of the bit-sliced
// kernel's throughput.
func simRunWorkloads() ([]Result, error) {
	prof, err := synth.ProfileByName("c7552")
	if err != nil {
		return nil, err
	}
	c, err := synth.Generate(synth.FromProfile(prof, 9))
	if err != nil {
		return nil, err
	}
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(10))
	nIn := c.NumInputs()
	in1 := make([]uint64, nIn)
	in4 := make([][4]uint64, nIn)
	in8 := make([][8]uint64, nIn)
	for i := 0; i < nIn; i++ {
		for j := 0; j < 8; j++ {
			in8[i][j] = rng.Uint64()
		}
		copy(in4[i][:], in8[i][:4])
		in1[i] = in8[i][0]
	}
	var out []Result
	for _, w := range []struct {
		name string
		fn   func() error
	}{
		{"sim_run_c7552_w64", func() error { _, err := sim.Run64(in1, nil); return err }},
		{"sim_run_c7552_w256", func() error { _, err := sim.Run256(in4, nil); return err }},
		{"sim_run_c7552_w512", func() error { _, err := sim.Run512(in8, nil); return err }},
	} {
		w := w
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := w.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, toResult(w.name, r))
	}
	return out, nil
}

// satInstance builds the n=8 CAS instance every sat_* workload shares:
// an 11-input host behind an 8-block mixed AND/OR chain.
func satInstance() (*netlist.Circuit, *lock.Locked, error) {
	host, err := synth.Generate(synth.Config{Name: "bh", Inputs: 11, Outputs: 4, Gates: 80, Seed: 7})
	if err != nil {
		return nil, nil, err
	}
	chain := make(lock.ChainConfig, 7)
	for i := range chain {
		if i%3 == 1 {
			chain[i] = lock.ChainOr
		}
	}
	chain[6] = lock.ChainAnd
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 11})
	if err != nil {
		return nil, nil, err
	}
	return host, locked, nil
}

// satWorkload mirrors BenchmarkDIPExtraction/sat_n8, instrumented so
// the report's telemetry summary carries the SAT solver's work totals.
// With legacy set, the extractor runs the per-assignment re-encode path
// and the result is reported as sat_extract_n8_legacy. With portfolio
// set, a racing portfolio of that many diversified members carries the
// queries instead of the single persistent engine and the result is
// reported as sat_extract_n8_portfolio.
func satWorkload(tel *telemetry.Registry, legacy bool, portfolio int) (Result, error) {
	_, locked, err := satInstance()
	if err != nil {
		return Result{}, err
	}
	layout, err := core.DiscoverLayout(locked.Circuit)
	if err != nil {
		return Result{}, err
	}
	ext, err := core.NewSATExtractor(locked.Circuit, layout)
	if err != nil {
		return Result{}, err
	}
	if tel != nil {
		ext.SetTelemetry(tel)
	}
	ext.SetLegacyEncoding(legacy)
	ext.SetPortfolio(portfolio)
	assign := core.PairAssign{A: make([]bool, locked.Circuit.NumKeys()), B: make([]bool, locked.Circuit.NumKeys())}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	r := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dips, err := ext.DIPs(assign)
			if err != nil {
				b.Fatal(err)
			}
			if dips.Count() == 0 {
				b.Fatal("no DIPs")
			}
		}
	})
	name := "sat_extract_n8"
	if legacy {
		name += "_legacy"
	}
	if portfolio > 0 {
		name += "_portfolio"
	}
	return toResult(name, r), nil
}

// satAttackCap bounds the classic SAT attack's DIP loop on the
// SAT-resistant CAS instance so each op measures a fixed amount of
// work: one miter encode plus 24 enumerate/constrain cycles on the
// persistent engine.
const satAttackCap = 24

// satAttackWorkload benchmarks the oracle-guided SAT attack (the
// registry's "sat" entry) on the engine path against the same n=8 CAS
// instance the extraction workloads share. CAS-Lock resists the attack,
// so the run is capped and must NOT complete — a completion means the
// instance no longer measures the resistant regime. The sat_ prefix
// joins the entry to the gated aggregate that bench-compare holds to
// MAXREGRESS. Uninstrumented: its solver work would skew the telemetry
// summary away from the DIP-learning attack shape the budgeter's
// default smoothing weight is learned from.
func satAttackWorkload() (Result, error) {
	host, locked, err := satInstance()
	if err != nil {
		return Result{}, err
	}
	orc := oracle.MustNewSim(host)
	var last *satattack.Result
	r := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := satattack.Run(locked.Circuit, orc, satattack.Options{MaxIterations: satAttackCap})
			if err != nil {
				b.Fatal(err)
			}
			if res.Completed {
				b.Fatal("capped SAT attack completed on the resistant CAS instance")
			}
			last = res
		}
	})
	res := toResult("sat_attack_n8_engine", r)
	res.Extra, res.ExtraName = float64(last.Iterations), "iterations"
	return res, nil
}

// maxCheckpointOverhead caps what an armed checkpoint writer may add to
// a full attack's wall time: the hot-loop contract is two atomics per
// progress event, so anything past 5% is a broken cadence path.
const maxCheckpointOverhead = 0.05

// checkpointWorkloads runs the same width-12 end-to-end attack without
// and with a checkpoint writer armed, reporting both
// (checkpoint_baseline_n12 / checkpoint_overhead_n12) plus the
// armed-over-unarmed fraction. The gate is about the HOT-PATH cost of
// arming — Tick per progress event, the banked oracle on every query,
// milestone snapshot builds on the attack goroutine — so the workload
// keeps the disk off the measured path the same way production does:
// one writer shared across iterations (snapshot writes drain
// asynchronously; Close and its final flush sit outside the timing),
// a cadence pinned above the per-run event count so only milestone
// snapshots fire, and the snapshot file on /dev/shm when available.
// Disk durability itself is the crash-smoke harness's job; measured
// here it would only gate this machine's fsync latency. Measurement
// is pairedRatio's adjacent-block scheme.
func checkpointWorkloads() ([]Result, float64, error) {
	host, err := synth.Generate(synth.Config{Name: "ch", Inputs: 16, Outputs: 4, Gates: 220, Seed: 5})
	if err != nil {
		return nil, 0, err
	}
	const n = 12
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if i%3 == 1 {
			chain[i] = lock.ChainOr
		}
	}
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 6})
	if err != nil {
		return nil, 0, err
	}
	base := "/dev/shm"
	if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
		base = "" // default temp dir
	}
	dir, err := os.MkdirTemp(base, "ckpt-bench-")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
		Path:        filepath.Join(dir, "snap.ckpt"),
		EveryEvents: 1 << 20, // cadence never due within one n12 run
	})
	if err != nil {
		return nil, 0, err
	}
	defer w.Close()
	attack := func(arm bool) error {
		opts := core.Options{
			Locked: locked.Circuit, Oracle: oracle.MustNewSim(host),
			Seed: 3, Telemetry: telemetry.New(),
		}
		if arm {
			opts.Checkpointer = w
		}
		_, err := core.Run(opts)
		return err
	}
	bestU, bestA, overhead, err := pairedRatio(attack)
	if err != nil {
		return nil, 0, err
	}
	return []Result{
		bestU.result("checkpoint_baseline_n12"),
		bestA.result("checkpoint_overhead_n12"),
	}, overhead, nil
}

// maxEventOverhead caps what an attached, actively draining event
// subscriber may add to a full attack's wall time: publishers batch
// per dipEventBatch/oracleEventBatch and Publish never blocks, so
// anything past 5% means an event found its way onto a per-unit path.
const maxEventOverhead = 0.05

// eventsWorkloads runs the same width-12 end-to-end attack without an
// event bus and with a bus plus one continuously draining subscriber,
// reporting both (events_baseline_n12 / events_overhead_n12) and the
// subscribed-over-disabled fraction that the <5% gate reads. The
// subscriber drains on its own goroutine exactly like the SSE handler
// does, so the measured cost covers publish, ring append, and wakeup —
// the full production path minus the network write.
func eventsWorkloads() ([]Result, float64, error) {
	host, err := synth.Generate(synth.Config{Name: "eh", Inputs: 16, Outputs: 4, Gates: 220, Seed: 5})
	if err != nil {
		return nil, 0, err
	}
	const n = 12
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if i%3 == 1 {
			chain[i] = lock.ChainOr
		}
	}
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 6})
	if err != nil {
		return nil, 0, err
	}
	attack := func(arm bool) error {
		opts := core.Options{
			Locked: locked.Circuit, Oracle: oracle.MustNewSim(host),
			Seed: 3, Telemetry: telemetry.New(),
		}
		var bus *events.Bus
		var drained chan struct{}
		if arm {
			bus = events.New(events.Options{})
			sub := bus.Subscribe(0)
			drained = make(chan struct{})
			go func() {
				defer close(drained)
				for {
					if len(sub.Poll()) > 0 {
						continue
					}
					if sub.Closed() {
						return
					}
					<-sub.Wait()
				}
			}()
			opts.Events = bus
		}
		_, err := core.Run(opts)
		if bus != nil {
			bus.Close()
			<-drained
		}
		return err
	}
	bestU, bestA, overhead, err := pairedRatio(attack)
	if err != nil {
		return nil, 0, err
	}
	return []Result{
		bestU.result("events_baseline_n12"),
		bestA.result("events_overhead_n12"),
	}, overhead, nil
}

// pairedRatio measures run(false) and run(true) in paired adjacent
// fixed-budget blocks (plain then armed, repeated) and returns the
// best-ratio pair's samples plus the armed-over-plain fraction.
// Adjacent blocks share the machine's contention state, so the ratio
// survives load drift that would swamp independently-measured
// minimums on a busy host. Both paths are warmed once first (kernel
// compilation, page faults, first snapshot).
func pairedRatio(run func(arm bool) error) (pairedSample, pairedSample, float64, error) {
	if err := run(false); err != nil {
		return pairedSample{}, pairedSample{}, 0, err
	}
	if err := run(true); err != nil {
		return pairedSample{}, pairedSample{}, 0, err
	}
	var runErr error
	block := func(arm bool) pairedSample {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		iters := 0
		for time.Since(start) < 600*time.Millisecond {
			if err := run(arm); err != nil {
				runErr = err
				return pairedSample{}
			}
			iters++
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return pairedSample{
			nsPerOp:     int64(elapsed) / int64(iters),
			allocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
			bytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
			iters:       iters,
		}
	}
	bestRatio := math.Inf(1)
	var bestU, bestA pairedSample
	for i := 0; i < 4 && runErr == nil; i++ {
		u := block(false)
		a := block(true)
		if runErr != nil {
			break
		}
		if r := float64(a.nsPerOp) / float64(u.nsPerOp); r < bestRatio {
			bestRatio, bestU, bestA = r, u, a
		}
	}
	if runErr != nil {
		return pairedSample{}, pairedSample{}, 0, runErr
	}
	return bestU, bestA, bestRatio - 1, nil
}

// pairedSample is one fixed-budget measurement block of an overhead
// workload pair (manual timing: testing.Benchmark's 1s calibration is
// too coarse for a paired-ratio gate).
type pairedSample struct {
	nsPerOp     int64
	allocsPerOp int64
	bytesPerOp  int64
	iters       int
}

func (s pairedSample) result(name string) Result {
	return Result{
		Name:        name,
		Iterations:  s.iters,
		NsPerOp:     s.nsPerOp,
		AllocsPerOp: s.allocsPerOp,
		BytesPerOp:  s.bytesPerOp,
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
