// Package lock implements the logic-locking schemes this repository
// studies: random XOR/XNOR insertion (RLL/EPIC), Anti-SAT, SARLock,
// SFLL-HD, CAS-Lock (the paper's target, with arbitrary AND/OR chain
// configurations), and Mirrored CAS-Lock. Every scheme returns the locked
// netlist together with a correct key and ground-truth metadata used by
// the test and benchmark harnesses to verify attack results — attacks
// themselves never see the metadata.
package lock

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// KeyInputPrefix is the naming convention for key inputs, matching the
// bench package's default key detection.
const KeyInputPrefix = "keyinput"

// Locked bundles a locked circuit with a correct key.
type Locked struct {
	// Circuit is the locked netlist: the host plus locking logic, with
	// the key exposed as key inputs.
	Circuit *netlist.Circuit
	// Key is a correct key (locking schemes with multiple correct keys
	// return a canonical one).
	Key []bool
}

// keyName returns the conventional name of the i-th key input.
func keyName(i int) string { return fmt.Sprintf("%s%d", KeyInputPrefix, i) }

// rewireFanouts redirects every fanin reference to old (and every output
// marking of old) to point at repl instead, except in the gate named
// exception (the newly inserted gate itself, which must keep old as its
// fanin). Pass exception = netlist.InvalidID for unconditional rewiring.
func rewireFanouts(c *netlist.Circuit, old, repl, exception netlist.ID) {
	for id := 0; id < c.NumGates(); id++ {
		if netlist.ID(id) == exception || netlist.ID(id) == repl {
			continue
		}
		g := c.Gate(netlist.ID(id))
		for i, f := range g.Fanin {
			if f == old {
				g.Fanin[i] = repl
			}
		}
	}
	for i, o := range c.Outputs() {
		if o == old {
			// Ignore error: indices and gate are valid by construction.
			_ = c.ReplaceOutput(i, repl)
		}
	}
}

// integrateFlip XORs a flip signal into the host output at position
// outputIdx, the functional form of the paper's "secure integration":
// whenever the flip signal is 1 the output is corrupted, so corruption is
// externally observable for every input.
func integrateFlip(c *netlist.Circuit, flip netlist.ID, outputIdx int, name string) error {
	if outputIdx < 0 || outputIdx >= c.NumOutputs() {
		return fmt.Errorf("lock: output index %d out of range (%d outputs)", outputIdx, c.NumOutputs())
	}
	orig := c.Outputs()[outputIdx]
	g, err := c.AddGate(netlist.Xor, name, orig, flip)
	if err != nil {
		return err
	}
	return c.ReplaceOutput(outputIdx, g)
}

// randomKeyGateTypes draws a random XOR/XNOR choice per position.
func randomKeyGateTypes(rng *rand.Rand, n int) []netlist.GateType {
	out := make([]netlist.GateType, n)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = netlist.Xor
		} else {
			out[i] = netlist.Xnor
		}
	}
	return out
}

// canonicalKeyFor returns the key bits reducing the given XOR/XNOR key
// gates to buffers: 0 for XOR, 1 for XNOR.
func canonicalKeyFor(keyGates []netlist.GateType) []bool {
	key := make([]bool, len(keyGates))
	for i, t := range keyGates {
		key[i] = t == netlist.Xnor
	}
	return key
}

// validateKeyGates checks a caller-provided key-gate type vector.
func validateKeyGates(kg []netlist.GateType, n int, label string) error {
	if len(kg) != n {
		return fmt.Errorf("lock: %s: %d key gates for %d inputs", label, len(kg), n)
	}
	for i, t := range kg {
		if t != netlist.Xor && t != netlist.Xnor {
			return fmt.Errorf("lock: %s: key gate %d is %s, want XOR or XNOR", label, i, t)
		}
	}
	return nil
}
