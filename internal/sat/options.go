package sat

import (
	"fmt"

	"repro/internal/cnf"
)

// RestartStrategy selects the restart schedule a solver follows.
type RestartStrategy int

const (
	// RestartLuby is the default Luby sequence (unit 100 conflicts).
	RestartLuby RestartStrategy = iota
	// RestartGeometric grows the conflict budget geometrically:
	// 100 × 1.5^restarts, capped at 2^20 conflicts per restart.
	RestartGeometric
)

// Options diversifies a solver's search heuristics without changing what
// it can prove: every configuration explores the same clause set, only in
// a different order. Portfolio members use distinct Options so they race
// down different parts of the search tree. The zero value reproduces
// New() exactly.
type Options struct {
	// VSIDSDecay is the activity decay factor in (0,1); higher values
	// keep old conflict activity relevant longer. 0 means the default
	// 0.95.
	VSIDSDecay float64
	// RestartStrategy picks Luby (default) or geometric restarts.
	RestartStrategy RestartStrategy
	// PolaritySeed, when nonzero, seeds each fresh variable's saved
	// phase from a hash of (seed, var) instead of the default false,
	// steering the first descent into a different region.
	PolaritySeed uint64
	// OrderSeed, when nonzero, adds a deterministic jitter in
	// [0, 1e-6) to each fresh variable's initial activity, shuffling
	// tie-breaks in the VSIDS heap before any conflicts accumulate.
	OrderSeed uint64
}

// NewWithOptions returns an empty solver configured by opts.
// NewWithOptions(Options{}) is behaviorally identical to New().
func NewWithOptions(opts Options) *Solver {
	s := New()
	if opts.VSIDSDecay != 0 {
		if opts.VSIDSDecay <= 0 || opts.VSIDSDecay >= 1 {
			panic(fmt.Sprintf("sat: VSIDSDecay %v outside (0,1)", opts.VSIDSDecay))
		}
		s.varDecay = 1.0 / opts.VSIDSDecay
	}
	s.restart = opts.RestartStrategy
	s.polaritySeed = opts.PolaritySeed
	s.orderSeed = opts.OrderSeed
	return s
}

// SetInterrupt installs a poll function checked every 256 conflicts and
// at every restart boundary; when it returns true the current Solve call
// backtracks to level 0 and returns Unknown. Used by portfolio racing to
// cancel losers promptly without waiting out their conflict budgets. Pass
// nil to clear. The function must be cheap and safe to call from the
// solving goroutine.
func (s *Solver) SetInterrupt(fn func() bool) { s.interrupt = fn }

// SetLearntHook registers fn to receive learnt clauses (including learnt
// units) of at most maxLen literals whose DIMACS variables are all
// ≤ maxVar. The variable bound is the soundness filter for clause
// sharing: a learnt clause over only the first maxVar variables — the
// prefix built by a shared encoding, allocated before any member-local
// activation or auxiliary variables — is derived by resolution from
// clauses over that prefix alone, so it is implied by the shared encoding
// and sound to import into any solver holding the same prefix. Clauses
// touching later variables (blocking-scope activation guards, local
// auxiliaries) never pass the filter. The slice passed to fn is freshly
// allocated and may be retained. Pass a nil fn to clear.
func (s *Solver) SetLearntHook(maxVar, maxLen int, fn func([]cnf.Lit)) {
	s.hookMaxVar = maxVar
	s.hookMaxLen = maxLen
	s.learntHook = fn
}

// exportLearnt fires the learnt hook when the clause passes the
// variable-range and length filters.
func (s *Solver) exportLearnt(learnt []lit) {
	if s.learntHook == nil || len(learnt) > s.hookMaxLen {
		return
	}
	for _, l := range learnt {
		if l.vari() >= s.hookMaxVar {
			return
		}
	}
	out := make([]cnf.Lit, len(learnt))
	for i, l := range learnt {
		out[i] = toCNF(l)
	}
	s.learntHook(out)
}

// ImportClause adds a clause learned by another solver over the shared
// variable prefix (see SetLearntHook for the soundness argument). It is
// an AddClause that additionally counts the import in Stats.Imported.
// Like AddClause it may only be called between Solve calls.
func (s *Solver) ImportClause(lits ...cnf.Lit) bool {
	s.stats.Imported++
	return s.AddClause(lits...)
}

// splitmix64 is the SplitMix64 finalizer; used to derive per-variable
// pseudo-random bits from a seed deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// geometricBudget returns the conflict budget for the given restart count
// under RestartGeometric: 100 × 1.5^restarts, capped at 2^20.
func geometricBudget(restarts uint64) uint64 {
	const cap64 = uint64(1) << 20
	b := 100.0
	for i := uint64(0); i < restarts; i++ {
		b *= 1.5
		if b >= float64(cap64) {
			return cap64
		}
	}
	return uint64(b)
}
