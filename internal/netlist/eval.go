package netlist

import "fmt"

// Simulator evaluates a circuit repeatedly while reusing internal buffers.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c     *Circuit
	order []ID
	vals  []uint64 // bit-parallel node values
	inBuf []uint64
}

// NewSimulator prepares a simulator for the circuit. The circuit must be
// acyclic; structural changes to the circuit after construction
// invalidate the simulator.
func NewSimulator(c *Circuit) (*Simulator, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{
		c:     c,
		order: order,
		vals:  make([]uint64, c.NumGates()),
	}, nil
}

// MustNewSimulator is NewSimulator that panics on error.
func MustNewSimulator(c *Circuit) *Simulator {
	s, err := NewSimulator(c)
	if err != nil {
		panic(err)
	}
	return s
}

// Run64 evaluates 64 packed patterns at once. in and key hold one word per
// primary input / key input (bit i of each word is pattern i); the
// returned slice holds one word per primary output and is owned by the
// simulator (valid until the next Run call).
func (s *Simulator) Run64(in, key []uint64) ([]uint64, error) {
	c := s.c
	if len(in) != c.NumInputs() {
		return nil, fmt.Errorf("netlist: Run64: got %d input words, want %d", len(in), c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("netlist: Run64: got %d key words, want %d", len(key), c.NumKeys())
	}
	for i, id := range c.inputs {
		s.vals[id] = in[i]
	}
	for i, id := range c.keys {
		s.vals[id] = key[i]
	}
	var faninBuf [8]uint64
	for _, id := range s.order {
		g := &c.gates[id]
		if g.Type == Input {
			continue
		}
		fin := faninBuf[:0]
		for _, f := range g.Fanin {
			fin = append(fin, s.vals[f])
		}
		s.vals[id] = g.Type.Eval64(fin)
	}
	if cap(s.inBuf) < c.NumOutputs() {
		s.inBuf = make([]uint64, c.NumOutputs())
	}
	out := s.inBuf[:c.NumOutputs()]
	for i, id := range c.outputs {
		out[i] = s.vals[id]
	}
	return out, nil
}

// Run evaluates a single pattern. The returned slice holds one bool per
// primary output and is freshly allocated.
func (s *Simulator) Run(in, key []bool) ([]bool, error) {
	inW := make([]uint64, len(in))
	keyW := make([]uint64, len(key))
	for i, b := range in {
		if b {
			inW[i] = 1
		}
	}
	for i, b := range key {
		if b {
			keyW[i] = 1
		}
	}
	w, err := s.Run64(inW, keyW)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(w))
	for i := range w {
		out[i] = w[i]&1 != 0
	}
	return out, nil
}

// NodeValue64 returns the bit-parallel value of an arbitrary gate after
// the most recent Run64/Run call.
func (s *Simulator) NodeValue64(id ID) uint64 { return s.vals[id] }

// NodeValue returns the scalar (pattern-0) value of an arbitrary gate
// after the most recent Run64/Run call.
func (s *Simulator) NodeValue(id ID) bool { return s.vals[id]&1 != 0 }

// Eval is a convenience one-shot scalar evaluation of the circuit.
func (c *Circuit) Eval(in, key []bool) ([]bool, error) {
	s, err := NewSimulator(c)
	if err != nil {
		return nil, err
	}
	return s.Run(in, key)
}

// BoolsToWord packs up to 64 bools into a word, bit i = v[i].
func BoolsToWord(v []bool) uint64 {
	var w uint64
	for i, b := range v {
		if b {
			w |= 1 << uint(i)
		}
	}
	return w
}

// WordToBools unpacks the low n bits of w into a bool slice.
func WordToBools(w uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = w&(1<<uint(i)) != 0
	}
	return out
}

// PatternFromUint sets bools from the binary representation of x: element
// i receives bit i of x. It is the canonical mapping between integers and
// input patterns used throughout this repository.
func PatternFromUint(x uint64, n int) []bool { return WordToBools(x, n) }

// UintFromPattern is the inverse of PatternFromUint for n ≤ 64.
func UintFromPattern(p []bool) uint64 { return BoolsToWord(p) }
