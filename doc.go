// Package repro is a from-scratch Go reproduction of "DIP Learning on
// CAS-Lock: Using Distinguishing Input Patterns for Attacking Logic
// Locking" (Saha, Chatterjee, Mukhopadhyay, Chakraborty — DATE 2022).
//
// The library lives under internal/: a gate-level netlist IR, an
// ISCAS-85 bench-format parser, a Tseitin CNF encoder, a CDCL SAT
// solver, the logic-locking schemes the paper discusses (RLL, Anti-SAT,
// SARLock, SFLL-HD, CAS-Lock, Mirrored CAS-Lock), the baseline attacks
// (oracle-guided SAT attack, SPS removal, CAS-Unlock) and, as the
// centrepiece, the paper's DIP-learning attack (internal/core).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every row of the paper's Table I and its
// analytical claims.
package repro
