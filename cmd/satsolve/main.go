// Command satsolve runs the repository's CDCL solver on a DIMACS CNF
// file, printing a standard s/v result — useful for exercising the
// solver outside the locking pipeline.
//
//	satsolve problem.cnf
//	satsolve -stats problem.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func main() {
	stats := flag.Bool("stats", false, "print solver statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [-stats] problem.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(1)
	}
	formula, err := cnf.ParseDIMACS(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(1)
	}
	solver := sat.NewFromFormula(formula)
	status := solver.Solve()
	switch status {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		model := solver.Model()
		fmt.Print("v")
		for v := 1; v <= formula.NumVars; v++ {
			lit := v
			if !model[v] {
				lit = -v
			}
			fmt.Printf(" %d", lit)
		}
		fmt.Println(" 0")
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
	default:
		fmt.Println("s UNKNOWN")
	}
	if *stats {
		st := solver.Stats()
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d restarts=%d learned=%d removed=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Learned, st.Removed)
	}
	if status == sat.Unsat {
		os.Exit(20)
	}
	if status == sat.Sat {
		os.Exit(10)
	}
}
