package engine

import (
	"sync"

	"repro/internal/telemetry"
)

// Pool is an LRU of idle warm backends, keyed by the caller's identity
// string (the attack service keys by canonical-netlist hashes plus the
// portfolio size). A backend parked here keeps its Tseitin encoding,
// learned clauses, variable activity and budgeter rate, so the next
// attack over the same locked netlist skips the encode entirely and
// solves with a head start.
//
// Capacity is counted in parked backends, not keys: every Put over
// capacity evicts the least-recently-parked backend outright (its
// solver memory is the expensive part, so eviction means dropping the
// reference and letting the collector reclaim it — there is no
// half-warm state). Take removes the entry it returns; a backend is
// therefore owned by at most one attack at a time, which is what makes
// handing out stateful engines safe without any locking inside them.
type Pool struct {
	mu   sync.Mutex
	cap  int
	idle []poolEntry // oldest first; eviction pops the head
	tel  *telemetry.Registry
}

type poolEntry struct {
	key string
	b   Backend
}

// NewPool builds a pool holding at most capacity idle backends
// (capacity < 1 is treated as 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{cap: capacity}
}

// SetTelemetry attaches a registry for the engine_pool_* counters.
func (p *Pool) SetTelemetry(r *telemetry.Registry) {
	p.mu.Lock()
	p.tel = r
	p.mu.Unlock()
}

// Take removes and returns the most recently parked backend for key, or
// nil when none is idle. The caller owns the returned backend until it
// is Put back.
func (p *Pool) Take(key string) Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.idle) - 1; i >= 0; i-- {
		if p.idle[i].key == key {
			b := p.idle[i].b
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			p.tel.Counter("engine_pool_hits_total").Inc()
			return b
		}
	}
	p.tel.Counter("engine_pool_misses_total").Inc()
	return nil
}

// Put recycles a backend (detaching the finished attack's context,
// telemetry, events and phase label, while keeping the encoding,
// learned clauses and budgeter rate) and parks it under key, evicting
// the least-recently-parked backend when over capacity. Nil backends
// are ignored.
func (p *Pool) Put(key string, b Backend) {
	if b == nil {
		return
	}
	b.Recycle()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = append(p.idle, poolEntry{key: key, b: b})
	for len(p.idle) > p.cap {
		p.idle = p.idle[1:]
		p.tel.Counter("engine_pool_evictions_total").Inc()
	}
}

// Len reports the number of parked backends.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}
