// Package miter builds the comparison circuits the attacks run SAT on:
// the key-differential miter of the SAT attack, the fixed-key two-copy
// miter of the bypass attack and of the paper's Lemma 1, and plain
// equivalence miters for verification.
package miter

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// KeyDiff is a key-differential miter: one copy of the inputs X feeding
// two copies of a locked circuit with independent key ports; the single
// output is 1 iff the copies' outputs differ.
type KeyDiff struct {
	// Circuit has inputs X (same order as the locked circuit), keys
	// KA || KB (NKeys each), and one output: the difference signal.
	Circuit *netlist.Circuit
	// NKeys is the key width of one copy.
	NKeys int
}

// NewKeyDiff builds the key-differential miter of a locked circuit.
func NewKeyDiff(locked *netlist.Circuit) (*KeyDiff, error) {
	if locked.NumKeys() == 0 {
		return nil, fmt.Errorf("miter: circuit %q has no key inputs", locked.Name)
	}
	m := netlist.New(locked.Name + "_miter")
	inputMap := make([]netlist.ID, locked.NumInputs())
	for i, id := range locked.Inputs() {
		inputMap[i] = m.MustAddInput(locked.Gate(id).Name)
	}
	outsA, err := m.Import(locked, netlist.ImportOptions{Prefix: "A_", InputMap: inputMap, ImportKeysAsKeys: true})
	if err != nil {
		return nil, err
	}
	outsB, err := m.Import(locked, netlist.ImportOptions{Prefix: "B_", InputMap: inputMap, ImportKeysAsKeys: true})
	if err != nil {
		return nil, err
	}
	diff, err := differenceSignal(m, outsA, outsB, "md")
	if err != nil {
		return nil, err
	}
	if err := m.MarkOutput(diff); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &KeyDiff{Circuit: m, NKeys: locked.NumKeys()}, nil
}

// KeysA returns the key inputs of copy A.
func (k *KeyDiff) KeysA() []netlist.ID { return k.Circuit.Keys()[:k.NKeys] }

// KeysB returns the key inputs of copy B.
func (k *KeyDiff) KeysB() []netlist.ID { return k.Circuit.Keys()[k.NKeys:] }

// NewFixedKey builds the two-copy miter with both keys baked in as
// constants — the DIP-set extraction circuit of the bypass attack and of
// the paper's Lemma 1. The result has the locked circuit's inputs and a
// single output that is 1 exactly on the DIPs distinguishing keyA from
// keyB.
func NewFixedKey(locked *netlist.Circuit, keyA, keyB []bool) (*netlist.Circuit, error) {
	kd, err := NewKeyDiff(locked)
	if err != nil {
		return nil, err
	}
	if len(keyA) != kd.NKeys || len(keyB) != kd.NKeys {
		return nil, fmt.Errorf("miter: key lengths %d/%d, want %d", len(keyA), len(keyB), kd.NKeys)
	}
	full := append(append([]bool(nil), keyA...), keyB...)
	fixed, err := oracle.Activate(kd.Circuit, full)
	if err != nil {
		return nil, err
	}
	fixed.Name = locked.Name + "_fkmiter"
	return fixed, nil
}

// NewEquivalence builds a miter over two key-free circuits with
// identical I/O shape; its single output is 1 iff they disagree.
func NewEquivalence(a, b *netlist.Circuit) (*netlist.Circuit, error) {
	if a.NumKeys() != 0 || b.NumKeys() != 0 {
		return nil, fmt.Errorf("miter: equivalence miter needs key-free circuits")
	}
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return nil, fmt.Errorf("miter: shape mismatch: %s vs %s", a, b)
	}
	m := netlist.New("eq_miter")
	inputMap := make([]netlist.ID, a.NumInputs())
	for i, id := range a.Inputs() {
		inputMap[i] = m.MustAddInput(a.Gate(id).Name)
	}
	outsA, err := m.Import(a, netlist.ImportOptions{Prefix: "A_", InputMap: inputMap})
	if err != nil {
		return nil, err
	}
	outsB, err := m.Import(b, netlist.ImportOptions{Prefix: "B_", InputMap: inputMap})
	if err != nil {
		return nil, err
	}
	diff, err := differenceSignal(m, outsA, outsB, "eq")
	if err != nil {
		return nil, err
	}
	if err := m.MarkOutput(diff); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// differenceSignal XORs output pairs and ORs the result into one signal.
func differenceSignal(m *netlist.Circuit, a, b []netlist.ID, prefix string) (netlist.ID, error) {
	if len(a) != len(b) || len(a) == 0 {
		return netlist.InvalidID, fmt.Errorf("miter: output lists %d/%d", len(a), len(b))
	}
	xors := make([]netlist.ID, len(a))
	for i := range a {
		x, err := m.AddGate(netlist.Xor, fmt.Sprintf("%s_x%d", prefix, i), a[i], b[i])
		if err != nil {
			return netlist.InvalidID, err
		}
		xors[i] = x
	}
	acc := xors[0]
	for i := 1; i < len(xors); i++ {
		var err error
		acc, err = m.AddGate(netlist.Or, fmt.Sprintf("%s_o%d", prefix, i), acc, xors[i])
		if err != nil {
			return netlist.InvalidID, err
		}
	}
	return acc, nil
}

// ProveEquivalent decides, by SAT, whether two key-free circuits are
// functionally identical. It returns (true, nil) on proved equivalence
// and (false, witness) with a distinguishing input pattern otherwise.
func ProveEquivalent(a, b *netlist.Circuit) (bool, []bool, error) {
	m, err := NewEquivalence(a, b)
	if err != nil {
		return false, nil, err
	}
	s := sat.New()
	enc, err := cnf.EncodeInto(m, s)
	if err != nil {
		return false, nil, err
	}
	diffLit := enc.OutputLits(m)[0]
	switch s.Solve(diffLit) {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		witness := make([]bool, m.NumInputs())
		for i, l := range enc.InputLits(m) {
			witness[i] = s.ModelValue(l)
		}
		return false, witness, nil
	}
	return false, nil, fmt.Errorf("miter: solver returned UNKNOWN")
}

// ProveUnlocked decides whether a locked circuit under the given key is
// functionally identical to a reference circuit. This is the
// experimenter's ground-truth check for attack results.
func ProveUnlocked(locked *netlist.Circuit, key []bool, reference *netlist.Circuit) (bool, error) {
	act, err := oracle.Activate(locked, key)
	if err != nil {
		return false, err
	}
	eq, _, err := ProveEquivalent(act, reference)
	return eq, err
}
