package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.AddClause(-2)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.ModelValue(1) || s.ModelValue(2) {
		t.Error("model wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	s.AddClause(1)
	if !s.AddClause(-1) {
		// already detected at add time
		if s.Okay() {
			t.Error("Okay() should be false")
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Error("empty clause accepted as ok")
	}
	if st := s.Solve(); st != Unsat {
		t.Error("empty clause should force UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	s.AddClause(1, -1)   // tautology: no-op
	s.AddClause(2, 2, 2) // duplicates collapse to unit
	if st := s.Solve(); st != Sat {
		t.Fatal("should be SAT")
	}
	if !s.ModelValue(2) {
		t.Error("unit 2 not enforced")
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons in n holes — classically
// UNSAT and exercises deep conflict analysis.
func pigeonhole(pigeons, holes int) *cnf.Formula {
	f := &cnf.Formula{}
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		cl := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		f.Add(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Add(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := NewFromFormula(pigeonhole(n+1, n))
		if st := s.Solve(); st != Unsat {
			t.Errorf("PHP(%d,%d) reported %v", n+1, n, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	f := pigeonhole(4, 4) // equal pigeons and holes: satisfiable
	s := NewFromFormula(f)
	if st := s.Solve(); st != Sat {
		t.Fatal("PHP(4,4) should be SAT")
	}
	ok, err := f.Eval(s.Model())
	if err != nil || !ok {
		t.Errorf("model does not satisfy formula (err=%v)", err)
	}
}

func randomFormula(rng *rand.Rand, vars, clauses, width int) *cnf.Formula {
	f := &cnf.Formula{NumVars: vars}
	for i := 0; i < clauses; i++ {
		w := 1 + rng.Intn(width)
		cl := make([]cnf.Lit, w)
		for j := range cl {
			v := cnf.Lit(1 + rng.Intn(vars))
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl[j] = v
		}
		f.Add(cl...)
	}
	return f
}

// TestDifferentialVsDPLL cross-checks CDCL against the independent DPLL
// reference on a large batch of random formulas around the phase
// transition, verifying SAT models against the formula directly.
func TestDifferentialVsDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		vars := 4 + rng.Intn(10)
		clauses := 2 + rng.Intn(vars*5)
		f := randomFormula(rng, vars, clauses, 3)
		want, _ := SolveDPLL(f)
		s := NewFromFormula(f)
		got := s.Solve()
		if got != want {
			t.Fatalf("trial %d: CDCL=%v DPLL=%v\n%s", trial, got, want, f.DIMACSString())
		}
		if got == Sat {
			ok, err := f.Eval(s.Model())
			if err != nil || !ok {
				t.Fatalf("trial %d: CDCL model invalid (err=%v)\n%s", trial, err, f.DIMACSString())
			}
		}
	}
}

// TestDifferentialWideClauses stresses the watched-literal machinery with
// wider clauses.
func TestDifferentialWideClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		vars := 5 + rng.Intn(8)
		f := randomFormula(rng, vars, 3+rng.Intn(40), 6)
		want, _ := SolveDPLL(f)
		s := NewFromFormula(f)
		if got := s.Solve(); got != want {
			t.Fatalf("trial %d: CDCL=%v DPLL=%v\n%s", trial, got, want, f.DIMACSString())
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 3)

	if st := s.Solve(-2); st != Sat {
		t.Fatal("¬2 should be satisfiable")
	}
	if !s.ModelValue(1) || !s.ModelValue(3) {
		t.Error("¬2 forces 1 and 3")
	}
	// Incremental: same solver, contradictory assumptions.
	if st := s.Solve(-1, -2); st != Unsat {
		t.Fatal("assuming ¬1∧¬2 must be UNSAT")
	}
	if s.Okay() != true {
		t.Error("assumption UNSAT must not poison the solver")
	}
	// And satisfiable again afterwards.
	if st := s.Solve(); st != Sat {
		t.Fatal("solver unusable after assumption UNSAT")
	}
}

func TestFailedAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2) // 1 → 2
	s.AddClause(-2, 3) // 2 → 3
	if st := s.Solve(1, -3); st != Unsat {
		t.Fatal("1 ∧ ¬3 must be UNSAT")
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("no failed assumptions reported")
	}
	// Each reported literal must be one of the assumptions.
	for _, l := range failed {
		if l != 1 && l != -3 {
			t.Errorf("unexpected failed assumption %d", l)
		}
	}
}

// TestAssumptionsDifferential compares Solve(assumps) against solving a
// copy with assumptions added as unit clauses.
func TestAssumptionsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		vars := 5 + rng.Intn(8)
		f := randomFormula(rng, vars, 3+rng.Intn(25), 3)
		nAssume := 1 + rng.Intn(3)
		assumps := make([]cnf.Lit, 0, nAssume)
		used := map[int]bool{}
		for len(assumps) < nAssume {
			v := 1 + rng.Intn(vars)
			if used[v] {
				continue
			}
			used[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumps = append(assumps, l)
		}
		g := f.Clone()
		for _, a := range assumps {
			g.Add(a)
		}
		want, _ := SolveDPLL(g)
		s := NewFromFormula(f)
		if got := s.Solve(assumps...); got != want {
			t.Fatalf("trial %d: assumptions=%v CDCL=%v DPLL=%v\n%s",
				trial, assumps, got, want, f.DIMACSString())
		}
	}
}

// TestIncrementalBlockingClauses drives the solver the way DIP extraction
// does: enumerate all models of a small formula by adding blocking
// clauses, and compare the model count against brute force.
func TestIncrementalBlockingClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		vars := 4 + rng.Intn(6)
		f := randomFormula(rng, vars, 2+rng.Intn(12), 3)
		want := CountModels(f)
		s := NewFromFormula(f)
		var got uint64
		for s.Solve() == Sat {
			got++
			if got > want {
				t.Fatalf("trial %d: enumerated more models than exist (%d > %d)", trial, got, want)
			}
			model := s.Model()
			block := make([]cnf.Lit, vars)
			for v := 1; v <= vars; v++ {
				if model[v] {
					block[v-1] = cnf.Lit(-v)
				} else {
					block[v-1] = cnf.Lit(v)
				}
			}
			s.AddClause(block...)
		}
		if got != want {
			t.Fatalf("trial %d: enumerated %d models, brute force says %d\n%s",
				trial, got, want, f.DIMACSString())
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := NewFromFormula(pigeonhole(9, 8))
	s.ConflictBudget = 10
	if st := s.Solve(); st != Unknown {
		t.Skipf("PHP(9,8) solved within 10 conflicts (status %v) — budget untestable here", st)
	}
	s.ConflictBudget = 0
	if st := s.Solve(); st != Unsat {
		t.Error("unbounded solve should finish UNSAT")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := NewFromFormula(pigeonhole(6, 5))
	s.Solve()
	st := s.Stats()
	if st.SolveCalls != 1 || st.Conflicts == 0 || st.Propagations == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
}

func TestXorChainForcesUniqueModel(t *testing.T) {
	// x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, ..., plus x1 = 1: unique model with
	// alternating values.
	const n = 20
	f := &cnf.Formula{NumVars: n}
	for i := 1; i < n; i++ {
		a, b := cnf.Lit(i), cnf.Lit(i+1)
		f.Add(a, b)
		f.Add(-a, -b)
	}
	f.Add(1)
	s := NewFromFormula(f)
	if st := s.Solve(); st != Sat {
		t.Fatal("xor chain should be SAT")
	}
	for i := 1; i <= n; i++ {
		want := i%2 == 1
		if s.ModelValue(cnf.Lit(i)) != want {
			t.Fatalf("var %d = %v, want %v", i, !want, want)
		}
	}
}

func TestModelValueNegativeLiteral(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.Solve()
	if s.ModelValue(-1) {
		t.Error("ModelValue(-1) should be false when 1 is true")
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(pigeonhole(8, 7))
		if s.Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := randomFormula(rng, 120, 480, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewFromFormula(f)
		s.Solve()
	}
}
