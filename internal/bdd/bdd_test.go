package bdd

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestTerminalAndVarBasics(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	if m.Eval(x, []bool{true, false, false}) != true {
		t.Error("Var eval broken")
	}
	if m.Eval(m.NVar(0), []bool{true, false, false}) != false {
		t.Error("NVar eval broken")
	}
	if m.Const(true) != True || m.Const(false) != False {
		t.Error("Const broken")
	}
	// Hash consing: same node built twice is the same ref.
	if m.Var(1) != m.Var(1) {
		t.Error("unique table broken")
	}
}

func TestBooleanIdentities(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if m.And(a, m.Not(a)) != False {
		t.Error("a ∧ ¬a ≠ 0")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("a ∨ ¬a ≠ 1")
	}
	if m.Xor(a, a) != False || m.Xnor(a, a) != True {
		t.Error("xor identities broken")
	}
	// De Morgan as canonical-form equality.
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan violated")
	}
	// Commutativity gives identical refs (canonicity).
	if m.And(a, b) != m.And(b, a) {
		t.Error("AND not canonical")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		f    Ref
		want int64
	}{
		{True, 8}, {False, 0},
		{a, 4},
		{m.And(a, b), 2},
		{m.Or(a, b), 6},
		{m.Xor(a, c), 4},
		{m.And(m.And(a, b), c), 1},
	}
	for i, cse := range cases {
		if got := m.SatCount(cse.f); got.Cmp(big.NewInt(cse.want)) != 0 {
			t.Errorf("case %d: SatCount = %v, want %d", i, got, cse.want)
		}
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	f := m.And(m.NVar(1), m.Var(3))
	assign, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, assign) {
		t.Error("AnySat witness does not satisfy f")
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("False reported satisfiable")
	}
}

// TestCompileMatchesSimulation cross-checks the netlist compiler against
// the bit-parallel simulator on random circuits, exhaustively.
func TestCompileMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(rng, 7, 40)
		m := New(c.NumInputs())
		outs, err := Compile(m, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 1<<uint(c.NumInputs()); x++ {
			in := netlist.PatternFromUint(x, c.NumInputs())
			want, _ := sim.Run(in, nil)
			for i, f := range outs {
				if m.Eval(f, in) != want[i] {
					t.Fatalf("trial %d x=%d output %d differs", trial, x, i)
				}
			}
		}
	}
}

// TestSatCountMatchesBruteForce checks counting on random circuits.
func TestSatCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 8, 30)
		m := New(c.NumInputs())
		outs, err := Compile(m, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, _ := netlist.NewSimulator(c)
		want := int64(0)
		for x := uint64(0); x < 256; x++ {
			out, _ := sim.Run(netlist.PatternFromUint(x, 8), nil)
			if out[0] {
				want++
			}
		}
		if got := m.SatCount(outs[0]); got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("trial %d: SatCount %v, brute force %d", trial, got, want)
		}
	}
}

func TestCompileWithKeys(t *testing.T) {
	c := netlist.New("locked")
	a := c.MustAddInput("a")
	k := c.MustAddKey("k")
	g := c.MustAddGate(netlist.Xor, "g", a, k)
	c.MustMarkOutput(g)
	m := New(1)
	outs, err := Compile(m, c, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	// a XOR 1 = ¬a.
	if outs[0] != m.NVar(0) {
		t.Error("key constant not folded")
	}
	if _, err := Compile(m, c, nil); err == nil {
		t.Error("missing key accepted")
	}
}

func TestChainBDDIsLinear(t *testing.T) {
	// Cascade functions have linear-size BDDs — the reason this engine
	// scales to wide chains.
	m := New(24)
	acc := m.Var(0)
	for i := 1; i < 24; i++ {
		if i%3 == 0 {
			acc = m.Or(acc, m.Var(i))
		} else {
			acc = m.And(acc, m.Var(i))
		}
	}
	// NumNodes counts every node ever interned, including intermediate
	// accumulator steps — still linear in the chain length.
	if m.NumNodes() > 24*24 {
		t.Errorf("chain BDD has %d nodes — not linear", m.NumNodes())
	}
	if m.SatCount(acc).Sign() <= 0 {
		t.Error("chain count not positive")
	}
}

func randomCircuit(rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	c := netlist.New("rand")
	ids := make([]netlist.ID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.MustAddInput("in"+string(rune('a'+i))))
	}
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not}
	for i := 0; i < nGates; i++ {
		typ := types[rng.Intn(len(types))]
		var fanin []netlist.ID
		if typ == netlist.Not {
			fanin = []netlist.ID{ids[rng.Intn(len(ids))]}
		} else {
			k := 2 + rng.Intn(2)
			for j := 0; j < k; j++ {
				fanin = append(fanin, ids[rng.Intn(len(ids))])
			}
		}
		ids = append(ids, c.MustAddGate(typ, "g"+string(rune('0'+i/10))+string(rune('0'+i%10)), fanin...))
	}
	c.MustMarkOutput(ids[len(ids)-1])
	c.MustMarkOutput(ids[len(ids)-2])
	return c
}
