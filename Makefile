# Tier-1 flow: `make ci` is what a PR must keep green.
#
#   make build      compile everything
#   make test       unit + integration tests
#   make test-race  the test suite under the race detector (the
#                   enumeration engine and experiment runners are
#                   concurrent; data races are correctness bugs here)
#   make vet        go vet
#   make ci         build + vet + test + test-race
#   make bench      tier-1 benchmarks with allocation reporting
#   make benchjson  refresh BENCH_core.json (the perf trajectory file)

GO ?= go

.PHONY: build test test-race vet ci bench benchjson

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci: build vet test test-race

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/core/ .

benchjson:
	$(GO) run ./cmd/benchjson -o BENCH_core.json
