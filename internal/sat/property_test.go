package sat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

// Property: any model the CDCL solver returns satisfies the formula.
func TestModelSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	trials := 0
	f := func(seed int64) bool {
		trials++
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		form := randomFormula(r, 4+r.Intn(10), 3+r.Intn(30), 3)
		s := NewFromFormula(form)
		if s.Solve() != Sat {
			return true // UNSAT answers are checked differentially elsewhere
		}
		ok, err := form.Eval(s.Model())
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adding a model's negation as a clause makes that exact model
// infeasible but keeps every other model (count drops by exactly one).
func TestBlockingClauseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		form := randomFormula(rng, 4+rng.Intn(5), 2+rng.Intn(10), 3)
		before := CountModels(form)
		if before == 0 {
			continue
		}
		s := NewFromFormula(form)
		if s.Solve() != Sat {
			t.Fatal("solver disagrees with brute force")
		}
		model := s.Model()
		blocked := form.Clone()
		var cl []cnf.Lit
		for v := 1; v <= form.NumVars; v++ {
			l := cnf.Lit(v)
			if model[v] {
				l = -l
			}
			cl = append(cl, l)
		}
		blocked.Add(cl...)
		if after := CountModels(blocked); after != before-1 {
			t.Fatalf("trial %d: blocking removed %d models", trial, before-after)
		}
	}
}

// Property: solving under assumption a then ¬a partitions the model
// count.
func TestAssumptionPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	for trial := 0; trial < 40; trial++ {
		vars := 4 + rng.Intn(5)
		form := randomFormula(rng, vars, 2+rng.Intn(12), 3)
		v := cnf.Lit(1 + rng.Intn(vars))
		pos := form.Clone()
		pos.Add(v)
		neg := form.Clone()
		neg.Add(-v)
		if CountModels(pos)+CountModels(neg) != CountModels(form) {
			t.Fatalf("trial %d: partition violated", trial)
		}
		// And the solver agrees with each side's satisfiability.
		s := NewFromFormula(form)
		wantPos := Sat
		if CountModels(pos) == 0 {
			wantPos = Unsat
		}
		if got := s.Solve(v); got != wantPos {
			t.Fatalf("trial %d: Solve(+v) = %v, want %v", trial, got, wantPos)
		}
		wantNeg := Sat
		if CountModels(neg) == 0 {
			wantNeg = Unsat
		}
		if got := s.Solve(-v); got != wantNeg {
			t.Fatalf("trial %d: Solve(-v) = %v, want %v", trial, got, wantNeg)
		}
	}
}

// Property: permuting clause order never changes the verdict.
func TestClauseOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 60; trial++ {
		form := randomFormula(rng, 5+rng.Intn(8), 4+rng.Intn(25), 3)
		s1 := NewFromFormula(form)
		verdict := s1.Solve()
		shuffled := form.Clone()
		rng.Shuffle(len(shuffled.Clauses), func(i, j int) {
			shuffled.Clauses[i], shuffled.Clauses[j] = shuffled.Clauses[j], shuffled.Clauses[i]
		})
		s2 := NewFromFormula(shuffled)
		if s2.Solve() != verdict {
			t.Fatalf("trial %d: clause order changed the verdict", trial)
		}
	}
}

// TestReduceDBKeepsSoundness drives the solver far enough to trigger
// learned-clause reduction and checks the answer is still right.
func TestReduceDBKeepsSoundness(t *testing.T) {
	// PHP(9,8) generates tens of thousands of conflicts, well past the
	// 3000-clause reduction threshold.
	s := NewFromFormula(pigeonhole(9, 8))
	s.maxLearnts = 200 // force frequent reductions
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(9,8) = %v", st)
	}
	if s.Stats().Removed == 0 {
		t.Error("reduceDB never ran despite the tiny limit")
	}
}
