package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// History samples a registry's counters and gauges on a fixed interval
// into bounded rings, giving the debug endpoints a short time-series
// view (rates, trends) without any external metrics stack. Histograms
// and spans are not sampled — they carry their own time dimension.
//
// All series stay aligned with the shared timestamp ring: a series that
// first appears mid-flight is backfilled with zeros, and once the ring
// is full the oldest column of every series is evicted together. A nil
// *History (telemetry disabled) is a no-op on every method.
type History struct {
	reg      *Registry
	interval time.Duration
	size     int

	mu       sync.Mutex
	times    []int64 // unix milliseconds, len ≤ size
	counters map[string][]uint64
	gauges   map[string][]int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Default sampling shape for the debug server: one sample per second,
// ten minutes retained.
const (
	DefaultHistoryInterval = time.Second
	DefaultHistorySamples  = 600
)

// NewHistory starts sampling r every interval, retaining the most
// recent samples columns. It takes one sample immediately so the first
// scrape never sees an empty document. A nil registry returns a nil
// (no-op) History. Callers own the sampler's lifecycle: Close it to
// stop the background goroutine.
func NewHistory(r *Registry, interval time.Duration, samples int) *History {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	if samples <= 0 {
		samples = DefaultHistorySamples
	}
	h := &History{
		reg:      r,
		interval: interval,
		size:     samples,
		counters: make(map[string][]uint64),
		gauges:   make(map[string][]int64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	h.Sample()
	go h.run()
	return h
}

func (h *History) run() {
	defer close(h.done)
	tick := time.NewTicker(h.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			h.Sample()
		case <-h.stop:
			return
		}
	}
}

// Sample appends one column: the current value of every counter and
// gauge in the registry. Exported so tests (and callers with their own
// cadence) can drive the ring deterministically.
func (h *History) Sample() {
	if h == nil {
		return
	}
	counters, gauges := h.reg.scalarSnapshot()
	now := time.Now().UnixMilli()

	h.mu.Lock()
	defer h.mu.Unlock()
	prev := len(h.times)
	h.times = append(h.times, now)
	for name, v := range counters {
		s, ok := h.counters[name]
		if !ok {
			s = make([]uint64, prev) // zero backfill keeps columns aligned
		}
		h.counters[name] = append(s, v)
	}
	for name, v := range gauges {
		s, ok := h.gauges[name]
		if !ok {
			s = make([]int64, prev)
		}
		h.gauges[name] = append(s, v)
	}
	if len(h.times) > h.size {
		drop := len(h.times) - h.size
		h.times = h.times[drop:]
		for name, s := range h.counters {
			h.counters[name] = s[drop:]
		}
		for name, s := range h.gauges {
			h.gauges[name] = s[drop:]
		}
	}
}

// scalarSnapshot copies only the counter and gauge values — the
// sampler runs every second, so it must not pay Snapshot's histogram
// and span copies.
func (r *Registry) scalarSnapshot() (map[string]uint64, map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	return counters, gauges
}

// historyDoc is the JSON shape served at /metrics/history.json.
type historyDoc struct {
	IntervalMS int64               `json:"interval_ms"`
	T          []int64             `json:"t"`
	Counters   map[string][]uint64 `json:"counters"`
	Gauges     map[string][]int64  `json:"gauges"`
}

// WriteJSON writes the retained time series as one JSON document:
//
//	{"interval_ms":1000,"t":[...],"counters":{name:[...]},"gauges":{...}}
//
// Every array under counters/gauges has the same length as t. A nil
// History writes an empty document.
func (h *History) WriteJSON(w io.Writer) error {
	doc := historyDoc{T: []int64{}, Counters: map[string][]uint64{}, Gauges: map[string][]int64{}}
	if h != nil {
		h.mu.Lock()
		doc.IntervalMS = h.interval.Milliseconds()
		doc.T = append(doc.T, h.times...)
		for name, s := range h.counters {
			doc.Counters[name] = append([]uint64(nil), s...)
		}
		for name, s := range h.gauges {
			doc.Gauges[name] = append([]int64(nil), s...)
		}
		h.mu.Unlock()
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Close stops the sampling goroutine and waits for it to exit.
// Idempotent and nil-safe.
func (h *History) Close() {
	if h == nil {
		return
	}
	h.once.Do(func() { close(h.stop) })
	<-h.done
}
