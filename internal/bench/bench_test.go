package bench

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/netlist"
)

const c17 = `
# c17 from ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestReadC17(t *testing.T) {
	c, err := ReadString("c17", c17)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumKeys() != 0 {
		t.Fatalf("shape: %s", c)
	}
	stats, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.GatesByType[netlist.Nand] != 6 {
		t.Errorf("NAND count = %d, want 6", stats.GatesByType[netlist.Nand])
	}
	// Spot check: all inputs 1 → 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1,
	// 19=NAND(0,1)=1, 22=NAND(0,1)=1, 23=NAND(1,1)=0.
	out, err := c.Eval([]bool{true, true, true, true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] || out[1] {
		t.Errorf("c17(11111) = %v,%v, want 1,0", out[0], out[1])
	}
}

func TestReadOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
z = AND(m, a)
m = NOT(a)
`
	c, err := ReadString("ooo", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval([]bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] {
		t.Error("NOT(a) AND a must be 0")
	}
}

func TestReadKeyInputs(t *testing.T) {
	src := `
INPUT(a)
INPUT(keyinput0)
INPUT(keyinput1)
OUTPUT(z)
t = XOR(a, keyinput0)
z = XNOR(t, keyinput1)
`
	c, err := ReadString("locked", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 1 || c.NumKeys() != 2 {
		t.Fatalf("inputs=%d keys=%d", c.NumInputs(), c.NumKeys())
	}
	// With no key prefix everything is a primary input.
	c2, err := Read(strings.NewReader(src), ReadOptions{Name: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumInputs() != 3 || c2.NumKeys() != 0 {
		t.Fatalf("flat: inputs=%d keys=%d", c2.NumInputs(), c2.NumKeys())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown type":     "INPUT(a)\nz = FROB(a, a)\nOUTPUT(z)\n",
		"dff":              "INPUT(a)\nz = DFF(a)\nOUTPUT(z)\n",
		"undefined signal": "INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)\n",
		"undefined output": "INPUT(a)\nOUTPUT(ghost)\n",
		"duplicate":        "INPUT(a)\nz = NOT(a)\nz = BUF(a)\nOUTPUT(z)\n",
		"cycle":            "INPUT(a)\np = AND(a, q)\nq = AND(a, p)\nOUTPUT(p)\n",
		"malformed decl":   "INPUT a\n",
		"malformed gate":   "INPUT(a)\nz = AND a, a\nOUTPUT(z)\n",
		"garbage":          "hello world\n",
		"empty fanin":      "INPUT(a)\nz = AND(a, )\nOUTPUT(z)\n",
	}
	for label, src := range cases {
		if _, err := ReadString("bad", src); err == nil {
			t.Errorf("%s: error not reported", label)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	src := `
# full line comment
input(a)  # trailing comment
OUTPUT(z)
z = nand(a, a)   # lower-case mnemonic
`
	c, err := ReadString("cmt", src)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Eval([]bool{true}, nil)
	if out[0] {
		t.Error("NAND(1,1) must be 0")
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ReadString("c17", c17)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString("c17rt", text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() {
		t.Fatal("round-trip changed I/O counts")
	}
	// Exhaustive functional equivalence over the 5-bit input space.
	s1 := netlist.MustNewSimulator(orig)
	s2 := netlist.MustNewSimulator(back)
	for x := uint64(0); x < 32; x++ {
		in := netlist.PatternFromUint(x, 5)
		o1, _ := s1.Run(in, nil)
		o2, _ := s2.Run(in, nil)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("pattern %d output %d differs", x, i)
			}
		}
	}
}

func TestRoundTripWithKeys(t *testing.T) {
	c := netlist.New("locked")
	a := c.MustAddInput("a")
	k := c.MustAddKey("keyinput0")
	g := c.MustAddGate(Xorish(), "g", a, k)
	c.MustMarkOutput(g)
	text, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString("rt", text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumKeys() != 1 || back.NumInputs() != 1 {
		t.Fatalf("keys lost in round trip: %s", back)
	}
}

// Xorish exists to keep the test above independent of gate-type constant
// renames.
func Xorish() netlist.GateType { return netlist.Xor }

func TestWriteConstants(t *testing.T) {
	c := netlist.New("const")
	a := c.MustAddInput("a")
	one := c.MustAddGate(netlist.Const1, "one")
	g := c.MustAddGate(netlist.And, "g", a, one)
	c.MustMarkOutput(g)
	text, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString("rt", text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	out, err := back.Eval([]bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("a AND 1 lowering broken")
	}
}

func TestRandomCircuitRoundTrip(t *testing.T) {
	// Build random circuits, serialize, re-parse, compare on random
	// patterns — a structural fuzz of the writer/parser pair.
	for seed := int64(0); seed < 4; seed++ {
		c := randomCircuit(seed, 10, 60)
		text, err := WriteString(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(text), ReadOptions{Name: "rt"})
		if err != nil {
			t.Fatal(err)
		}
		s1 := netlist.MustNewSimulator(c)
		s2 := netlist.MustNewSimulator(back)
		rng := rand.New(rand.NewSource(seed))
		in := make([]uint64, c.NumInputs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		o1, _ := s1.Run64(in, nil)
		o2, _ := s2.Run64(in, nil)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("seed %d: output %d differs after round trip", seed, i)
			}
		}
	}
}

// randomCircuit mirrors the helper in package netlist's tests (kept local
// to avoid exporting test-only API).
func randomCircuit(seed int64, nIn, nGates int) *netlist.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := netlist.New("rand")
	ids := make([]netlist.ID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.MustAddInput("in"+itoa(i)))
	}
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf}
	for i := 0; i < nGates; i++ {
		typ := types[rng.Intn(len(types))]
		var fanin []netlist.ID
		if typ == netlist.Not || typ == netlist.Buf {
			fanin = []netlist.ID{ids[rng.Intn(len(ids))]}
		} else {
			k := 2 + rng.Intn(2)
			for j := 0; j < k; j++ {
				fanin = append(fanin, ids[rng.Intn(len(ids))])
			}
		}
		ids = append(ids, c.MustAddGate(typ, "g"+itoa(i), fanin...))
	}
	for i := 0; i < 3 && i < len(ids); i++ {
		c.MustMarkOutput(ids[len(ids)-1-i])
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
