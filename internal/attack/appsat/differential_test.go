package appsat

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TestEngineLegacyDifferential holds the engine-backed AppSAT and the
// legacy throwaway-solver AppSAT to the same observable results across
// every registered scheme. Both paths extract canonical lex-min
// candidate keys, so when the attack terminates exactly (miter UNSAT)
// the recovered key is a function of the terminal key set — identical
// for both paths — and must agree bit-for-bit. Approximate outcomes
// (low-corruptibility schemes settling at a sampling round) must agree
// on the verdict, the round they settle at, and the error estimate:
// the two paths consume the identical sampling sequence, and on
// one-point-corruption schemes the sampled estimate is robust to the
// paths' differing DIP trajectories.
func TestEngineLegacyDifferential(t *testing.T) {
	h, err := synth.Generate(synth.Config{Name: "ah", Inputs: 12, Outputs: 3, Gates: 60, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	for _, sch := range lock.Schemes() {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			locked, _, err := sch.Apply(h.Clone(), 11)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{MaxIterations: 64, Seed: 5}
			legacyOpts := opts
			legacyOpts.LegacySolver = true
			legacy, err := Run(locked.Circuit, oracle.MustNewSim(h), legacyOpts)
			if err != nil {
				t.Fatal(err)
			}
			tel := telemetry.New()
			engOpts := opts
			engOpts.Telemetry = tel
			eng, err := Run(locked.Circuit, oracle.MustNewSim(h), engOpts)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Exact != legacy.Exact {
				t.Fatalf("exact: engine %v, legacy %v", eng.Exact, legacy.Exact)
			}
			if eng.ErrorEstimate != legacy.ErrorEstimate {
				t.Fatalf("error estimate: engine %v, legacy %v", eng.ErrorEstimate, legacy.ErrorEstimate)
			}
			if eng.Exact {
				if len(eng.Key) != len(legacy.Key) {
					t.Fatalf("key widths: engine %d, legacy %d", len(eng.Key), len(legacy.Key))
				}
				for i := range eng.Key {
					if eng.Key[i] != legacy.Key[i] {
						t.Fatalf("key bit %d: engine %v, legacy %v (lex-min keys must agree)", i, eng.Key[i], legacy.Key[i])
					}
				}
				ok, err := miter.ProveUnlockedHashed(locked.Circuit, eng.Key, h)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("exact key is not functionally correct")
				}
			} else {
				// Approximate settlement: same round, same query count —
				// the sampling schedule is the observable behavior here.
				if eng.Iterations != legacy.Iterations {
					t.Fatalf("iterations: engine %d, legacy %d", eng.Iterations, legacy.Iterations)
				}
				if eng.OracleQueries != legacy.OracleQueries {
					t.Fatalf("oracle queries: engine %d, legacy %d", eng.OracleQueries, legacy.OracleQueries)
				}
			}
			if got := tel.Counter("engine_encodings_total").Value(); got != 1 {
				t.Fatalf("engine_encodings_total = %d, want 1", got)
			}
		})
	}
}
