package sps

import (
	"math"
	"testing"

	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func host(t *testing.T, inputs int) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: inputs, Outputs: 3, Gates: 40, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProbabilitiesBasics(t *testing.T) {
	c := netlist.New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	and := c.MustAddGate(netlist.And, "and", a, b)
	or := c.MustAddGate(netlist.Or, "or", a, b)
	xor := c.MustAddGate(netlist.Xor, "xor", a, b)
	not := c.MustAddGate(netlist.Not, "not", and)
	zero := c.MustAddGate(netlist.Const0, "zero")
	c.MustMarkOutput(xor)
	c.MustMarkOutput(not)
	c.MustMarkOutput(or)
	c.MustMarkOutput(zero)

	p, err := Probabilities(c)
	if err != nil {
		t.Fatal(err)
	}
	want := map[netlist.ID]float64{a: 0.5, and: 0.25, or: 0.75, xor: 0.5, not: 0.75, zero: 0}
	for id, w := range want {
		if math.Abs(p[id]-w) > 1e-9 {
			t.Errorf("p(%s) = %v, want %v", c.Gate(id).Name, p[id], w)
		}
	}
}

func TestProbabilitiesMatchSimulation(t *testing.T) {
	// The independence approximation is exact on fanout-free logic; on a
	// random DAG it should still track the empirical estimate loosely.
	// Use a tree circuit for the exact check.
	c := netlist.New("tree")
	var leaves []netlist.ID
	for i := 0; i < 8; i++ {
		leaves = append(leaves, c.MustAddInput("in"+string(rune('a'+i))))
	}
	l1a := c.MustAddGate(netlist.And, "l1a", leaves[0], leaves[1])
	l1b := c.MustAddGate(netlist.Or, "l1b", leaves[2], leaves[3])
	l1c := c.MustAddGate(netlist.Xor, "l1c", leaves[4], leaves[5])
	l1d := c.MustAddGate(netlist.Nand, "l1d", leaves[6], leaves[7])
	l2a := c.MustAddGate(netlist.Or, "l2a", l1a, l1b)
	l2b := c.MustAddGate(netlist.And, "l2b", l1c, l1d)
	top := c.MustAddGate(netlist.Xor, "top", l2a, l2b)
	c.MustMarkOutput(top)

	analytic, err := Probabilities(c)
	if err != nil {
		t.Fatal(err)
	}
	empirical, err := EstimateProbabilitiesSim(c, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumGates(); id++ {
		if math.Abs(analytic[id]-empirical[id]) > 0.02 {
			t.Errorf("gate %s: analytic %v vs empirical %v", c.Gate(netlist.ID(id)).Name, analytic[id], empirical[id])
		}
	}
}

func TestSkew(t *testing.T) {
	if Skew(0.5) != 0 || Skew(0) != 0.5 || Skew(1) != 0.5 || Skew(0.75) != 0.25 {
		t.Error("Skew broken")
	}
}

func TestFindFlipCandidatesOnCAS(t *testing.T) {
	h := host(t, 12)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("5A-O-A"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := FindFlipCandidates(locked.Circuit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no flip candidates on a CAS-locked circuit")
	}
	found := false
	for _, cand := range cands {
		if cand.Flip == inst.FlipGate {
			found = true
		}
	}
	if !found {
		t.Errorf("true flip gate %d not among candidates %+v", inst.FlipGate, cands)
	}
}

func TestRemoveOuterFlipUnlocksPlainCAS(t *testing.T) {
	// On plain (unmirrored) CAS-Lock, removal alone defeats the scheme —
	// the motivation for M-CAS.
	h := host(t, 12)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("3A-O-2A"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RemoveOuterFlip(locked.Circuit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumKeys() != 0 {
		t.Fatalf("keys remain after removing the only flip: %d", res.Circuit.NumKeys())
	}
	// The cleaned circuit must equal the host.
	sim1 := netlist.MustNewSimulator(res.Circuit)
	sim2 := netlist.MustNewSimulator(h)
	for x := uint64(0); x < 1<<12; x += 7 {
		in := netlist.PatternFromUint(x, 12)
		o1, _ := sim1.Run(in, nil)
		o2, _ := sim2.Run(in, nil)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("cleaned circuit differs from host at %d", x)
			}
		}
	}
}

func TestRemoveOuterFlipOnMCAS(t *testing.T) {
	// On M-CAS, removal strips the outer instance; the inner keys
	// survive and the circuit is NOT yet functional — exactly the state
	// the DIP-learning attack is then mounted on.
	h := host(t, 12)
	locked, inst, err := lock.ApplyMCAS(h, lock.CASOptions{Chain: lock.MustParseChain("3A-O-A"), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n2 := 2 * inst.Inner.N
	res, err := RemoveOuterFlip(locked.Circuit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumKeys() != n2 {
		t.Fatalf("surviving keys = %d, want %d (inner instance)", res.Circuit.NumKeys(), n2)
	}
	for i, orig := range res.SurvivingKeys {
		if orig != i {
			t.Fatalf("surviving key %d maps to original %d; inner keys should be 0..%d", i, orig, n2-1)
		}
	}
	// With the correct inner key, the stripped circuit equals the host.
	act, err := oracle.Activate(res.Circuit, inst.Inner.CorrectKey)
	if err != nil {
		t.Fatal(err)
	}
	simA := netlist.MustNewSimulator(act)
	simH := netlist.MustNewSimulator(h)
	for x := uint64(0); x < 1<<12; x += 5 {
		in := netlist.PatternFromUint(x, 12)
		oa, _ := simA.Run(in, nil)
		oh, _ := simH.Run(in, nil)
		for i := range oa {
			if oa[i] != oh[i] {
				t.Fatalf("stripped M-CAS with correct inner key differs at %d", x)
			}
		}
	}
	// With a wrong inner key it must NOT equal the host (the defense's
	// point: removal alone is not enough).
	wrong := append([]bool(nil), inst.Inner.CorrectKey...)
	wrong[0] = !wrong[0]
	actW, err := oracle.Activate(res.Circuit, wrong)
	if err != nil {
		t.Fatal(err)
	}
	simW := netlist.MustNewSimulator(actW)
	differs := false
	for x := uint64(0); x < 1<<12; x++ {
		in := netlist.PatternFromUint(x, 12)
		ow, _ := simW.Run(in, nil)
		oh, _ := simH.Run(in, nil)
		for i := range ow {
			if ow[i] != oh[i] {
				differs = true
				break
			}
		}
		if differs {
			break
		}
	}
	if !differs {
		t.Error("stripped M-CAS functional under a wrong inner key")
	}
}

func TestFindFlipCandidatesErrors(t *testing.T) {
	h := host(t, 8)
	if _, err := FindFlipCandidates(h, 0.05); err == nil {
		t.Error("key-free circuit accepted")
	}
	locked, _, _ := lock.ApplyRLL(h, 4, 1)
	if _, err := RemoveOuterFlip(locked.Circuit, 1e-9); err == nil {
		t.Error("RLL circuit (no skewed flip) produced a removal")
	}
}

func TestNullifyFlipSignal(t *testing.T) {
	// IFS-style nullification: the result behaves like the original for
	// ANY key value, but no key is learned.
	h := host(t, 12)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("4A-O-A"), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fixed, cand, err := NullifyFlipSignal(locked.Circuit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil || fixed.NumKeys() != locked.Circuit.NumKeys() {
		t.Fatal("candidate or key port lost")
	}
	simF := netlist.MustNewSimulator(fixed)
	simH := netlist.MustNewSimulator(h)
	key := make([]bool, fixed.NumKeys())
	for i := range key {
		key[i] = i%2 == 0 // an arbitrary (wrong) key
	}
	for x := uint64(0); x < 1<<12; x += 3 {
		in := netlist.PatternFromUint(x, 12)
		of, _ := simF.Run(in, key)
		oh, _ := simH.Run(in, nil)
		for i := range of {
			if of[i] != oh[i] {
				t.Fatalf("nullified circuit differs from host at %d", x)
			}
		}
	}
}

func TestNullifyFlipSignalOnMCAS(t *testing.T) {
	// With both nested flips pinned, even M-CAS becomes functional —
	// matching IFS-SAT's premise that the structural pathway defeats
	// M-CAS too when both instances are visible.
	h := host(t, 12)
	locked, _, err := lock.ApplyMCAS(h, lock.CASOptions{Chain: lock.MustParseChain("3A-O-A"), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fixed, _, err := NullifyFlipSignal(locked.Circuit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	simF := netlist.MustNewSimulator(fixed)
	simH := netlist.MustNewSimulator(h)
	key := make([]bool, fixed.NumKeys())
	for x := uint64(0); x < 1<<12; x += 5 {
		in := netlist.PatternFromUint(x, 12)
		of, _ := simF.Run(in, key)
		oh, _ := simH.Run(in, nil)
		for i := range of {
			if of[i] != oh[i] {
				t.Fatalf("nullified M-CAS differs from host at %d", x)
			}
		}
	}
}
