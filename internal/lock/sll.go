package lock

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// SLLInstance records a strong-logic-locking insertion.
type SLLInstance struct {
	// PathGates are the host gates along whose input edges the key gates
	// were inserted, in order from the inside out.
	PathGates  []string
	KeyGates   []netlist.GateType
	CorrectKey []bool
}

// ApplySLL locks a copy of the host with strong logic locking (Yasin et
// al., "On improving the security of logic encryption algorithms"): key
// gates are inserted consecutively along one logic path, so every pair
// interferes — sensitizing one key bit to an output requires controlling
// the others, which defeats the key-sensitization attack that breaks
// random insertion. (Like all pre-SAT schemes it still falls to the SAT
// attack; the matrix experiment shows both facts.)
func ApplySLL(host *netlist.Circuit, nKeys int, seed int64) (*Locked, *SLLInstance, error) {
	if host.NumKeys() != 0 {
		return nil, nil, fmt.Errorf("lock: host %q already has key inputs", host.Name)
	}
	if nKeys < 1 {
		return nil, nil, fmt.Errorf("lock: need at least 1 key bit")
	}
	c := host.Clone()
	c.Name = host.Name + "_sll"
	rng := rand.New(rand.NewSource(seed))

	// Find a deep path ending at an output: walk backward from the
	// deepest output, always stepping to the deepest fanin.
	levels, err := c.Levels()
	if err != nil {
		return nil, nil, err
	}
	var start netlist.ID = netlist.InvalidID
	best := -1
	for _, o := range c.Outputs() {
		if levels[o] > best {
			best = levels[o]
			start = o
		}
	}
	if start == netlist.InvalidID {
		return nil, nil, fmt.Errorf("lock: host has no outputs")
	}
	type edge struct {
		gate netlist.ID // consumer whose fanin slot is rewired
		slot int
	}
	var path []edge
	cur := start
	for {
		g := c.Gate(cur)
		if g.Type == netlist.Input || len(g.Fanin) == 0 {
			break
		}
		slot := 0
		for i, f := range g.Fanin {
			if levels[f] > levels[g.Fanin[slot]] {
				slot = i
			}
		}
		path = append(path, edge{gate: cur, slot: slot})
		cur = g.Fanin[slot]
	}
	if len(path) < nKeys {
		return nil, nil, fmt.Errorf("lock: deepest path has %d edges, cannot chain %d interfering key gates",
			len(path), nKeys)
	}

	inst := &SLLInstance{
		KeyGates:   make([]netlist.GateType, nKeys),
		CorrectKey: make([]bool, nKeys),
		PathGates:  make([]string, nKeys),
	}
	for i := 0; i < nKeys; i++ {
		e := path[i]
		typ := netlist.Xor
		if rng.Intn(2) == 1 {
			typ = netlist.Xnor
		}
		k, err := c.AddKey(keyName(i))
		if err != nil {
			return nil, nil, err
		}
		src := c.Gate(e.gate).Fanin[e.slot]
		kg, err := c.AddGate(typ, fmt.Sprintf("sll_kg%d", i), src, k)
		if err != nil {
			return nil, nil, err
		}
		c.Gate(e.gate).Fanin[e.slot] = kg
		inst.KeyGates[i] = typ
		inst.CorrectKey[i] = typ == netlist.Xnor
		inst.PathGates[i] = c.Gate(e.gate).Name
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	return &Locked{Circuit: c, Key: append([]bool(nil), inst.CorrectKey...)}, inst, nil
}
