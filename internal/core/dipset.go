package core

import (
	"fmt"
	"math/bits"
)

// maxDenseBits caps the block width a DIPSet will represent densely. At
// the cap the word array is 2 GiB; beyond it exhaustive enumeration is
// out of reach anyway (the sim extractor walks every pattern), so wider
// requests indicate a logic error rather than a real workload.
const maxDenseBits = 34

// MaxBlockWidth is the widest CAS block this package can attack: the
// dense DIPSet cap. Admission boundaries validate against it (with
// ErrBlockWidth) instead of letting a malformed instance trip internal
// panics deep inside a shared process.
const MaxBlockWidth = maxDenseBits

// DIPSet is a packed bitset over the 2^n block-input patterns of an
// n-input CAS block: bit p is set iff pattern p is a DIP. It replaces
// the former map[uint64]struct{} representation — 2^n bits instead of
// ~50 bytes per entry, so the paper's 8.5M-DIP instances cost 512 MiB
// worst case at n = 32 instead of map overhead proportional to the DIP
// count, membership is one shift+mask, iteration is ascending (and
// therefore deterministic), and merging shard results is a word-wise OR.
//
// The word layout is the same as the extractor's 64-lane batches: word
// b holds patterns b·64 … b·64+63, so a shard worker deposits a whole
// disagreement mask with one setWord call.
type DIPSet struct {
	n     int
	words []uint64
}

// NewDIPSet returns an empty DIP set over n-bit block patterns.
func NewDIPSet(n int) (*DIPSet, error) {
	if n < 1 || n > maxDenseBits {
		return nil, fmt.Errorf("%w: DIPSet width %d outside [1, %d]", ErrBlockWidth, n, maxDenseBits)
	}
	nw := 1
	if n > 6 {
		nw = 1 << uint(n-6)
	}
	return &DIPSet{n: n, words: make([]uint64, nw)}, nil
}

// BlockWidth returns n, the pattern width.
func (s *DIPSet) BlockWidth() int { return s.n }

// NumWords returns the number of 64-pattern words backing the set.
func (s *DIPSet) NumWords() int { return len(s.words) }

// Universe returns 2^n, the number of representable patterns.
func (s *DIPSet) Universe() uint64 { return uint64(1) << uint(s.n) }

// Add inserts pattern p. Patterns outside the universe panic: they can
// only come from a bookkeeping bug.
func (s *DIPSet) Add(p uint64) {
	if p >= s.Universe() {
		panic(fmt.Sprintf("core: pattern %d outside the %d-bit DIPSet universe", p, s.n))
	}
	s.words[p>>6] |= 1 << (p & 63)
}

// Contains reports membership of p; out-of-universe patterns are absent.
func (s *DIPSet) Contains(p uint64) bool {
	if p >= s.Universe() {
		return false
	}
	return s.words[p>>6]&(1<<(p&63)) != 0
}

// setWord deposits a whole 64-pattern membership mask at word index b
// (patterns b·64 … b·64+63). Shard workers own disjoint word ranges, so
// concurrent setWord calls on distinct indices need no synchronization.
func (s *DIPSet) setWord(b uint64, w uint64) {
	s.words[b] = w
}

// setWords deposits a word-aligned run of 64-pattern membership masks
// starting at word index b — the wide-lane (256/512) counterpart of
// setWord, landing a whole simulation group in one copy. The same
// disjoint-ownership rule applies per word.
func (s *DIPSet) setWords(b uint64, ws []uint64) {
	copy(s.words[b:], ws)
}

// word returns the membership mask of word index b.
func (s *DIPSet) word(b uint64) uint64 { return s.words[b] }

// laneMask returns the valid-lane mask of a single word: all-ones except
// for n < 6, where only the low 2^n lanes exist.
func (s *DIPSet) laneMask() uint64 {
	if s.n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (uint64(1) << uint(s.n))) - 1
}

// Count returns the number of patterns in the set.
func (s *DIPSet) Count() uint64 {
	var c uint64
	for _, w := range s.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// CountRange returns the number of set patterns in [lo, hi).
func (s *DIPSet) CountRange(lo, hi uint64) uint64 {
	if u := s.Universe(); hi > u {
		hi = u
	}
	if lo >= hi {
		return 0
	}
	var c uint64
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		return uint64(bits.OnesCount64(s.words[loW] & loMask & hiMask))
	}
	c += uint64(bits.OnesCount64(s.words[loW] & loMask))
	for w := loW + 1; w < hiW; w++ {
		c += uint64(bits.OnesCount64(s.words[w]))
	}
	c += uint64(bits.OnesCount64(s.words[hiW] & hiMask))
	return c
}

// ForEach visits every set pattern in ascending order; returning false
// from f stops the walk.
func (s *DIPSet) ForEach(f func(p uint64) bool) {
	s.ForEachRange(0, s.Universe(), f)
}

// ForEachRange visits the set patterns in [lo, hi) in ascending order;
// returning false from f stops the walk.
func (s *DIPSet) ForEachRange(lo, hi uint64, f func(p uint64) bool) {
	if u := s.Universe(); hi > u {
		hi = u
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	for b := loW; b <= hiW; b++ {
		w := s.words[b]
		if b == loW {
			w &= ^uint64(0) << (lo & 63)
		}
		if b == hiW {
			w &= ^uint64(0) >> (63 - (hi-1)&63)
		}
		for w != 0 {
			l := bits.TrailingZeros64(w)
			w &^= 1 << uint(l)
			if !f(b<<6 + uint64(l)) {
				return
			}
		}
	}
}

// Or merges o into s (s ∪= o). The widths must match.
func (s *DIPSet) Or(o *DIPSet) error {
	if s.n != o.n {
		return fmt.Errorf("core: DIPSet width mismatch %d vs %d", s.n, o.n)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
	return nil
}

// Equal reports whether the two sets hold exactly the same patterns.
func (s *DIPSet) Equal(o *DIPSet) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// CloneWords returns a copy of the packed membership words (word b =
// patterns b·64 … b·64+63) — the serialization a checkpoint snapshot
// stores. The copy decouples the snapshot from the live set, which the
// attack keeps mutating after the writer goroutine takes over.
func (s *DIPSet) CloneWords() []uint64 {
	return append([]uint64(nil), s.words...)
}

// NewDIPSetFromWords reconstructs a set from snapshot words. The word
// count must match the width exactly (the same layout CloneWords
// produced); anything else is a corrupt or mismatched snapshot.
func NewDIPSetFromWords(n int, words []uint64) (*DIPSet, error) {
	s, err := NewDIPSet(n)
	if err != nil {
		return nil, err
	}
	if len(words) != len(s.words) {
		return nil, fmt.Errorf("%w: %d snapshot words for width %d, want %d", ErrBlockWidth, len(words), n, len(s.words))
	}
	copy(s.words, words)
	return s, nil
}

// Elements materializes the set as an ascending slice — convenience for
// tests and small sets; the attack itself iterates in place.
func (s *DIPSet) Elements() []uint64 {
	out := make([]uint64, 0, s.Count())
	s.ForEach(func(p uint64) bool {
		out = append(out, p)
		return true
	})
	return out
}
