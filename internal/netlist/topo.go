package netlist

import "fmt"

// TopoOrder returns a topological ordering of all gates (fanins before
// fanouts). The result is cached and invalidated by AddGate. An error is
// returned if the gate graph contains a combinational cycle.
func (c *Circuit) TopoOrder() ([]ID, error) {
	if c.topoValid {
		return c.topo, nil
	}
	n := len(c.gates)
	indeg := make([]int, n)
	fanout := make([][]ID, n)
	for id := range c.gates {
		for _, f := range c.gates[id].Fanin {
			indeg[id]++
			fanout[f] = append(fanout[f], ID(id))
		}
	}
	order := make([]ID, 0, n)
	queue := make([]ID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, ID(id))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, out := range fanout[id] {
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("netlist: circuit %q contains a combinational cycle", c.Name)
	}
	c.topo = order
	c.topoValid = true
	return order, nil
}

// Levels returns, for each gate, its logic level: inputs and constants are
// level 0, every other gate is 1 + max(level of fanins).
func (c *Circuit) Levels() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]int, len(c.gates))
	for _, id := range order {
		g := &c.gates[id]
		lv := 0
		for _, f := range g.Fanin {
			if levels[f]+1 > lv {
				lv = levels[f] + 1
			}
		}
		levels[id] = lv
	}
	return levels, nil
}

// Depth returns the maximum logic level over all outputs (0 for circuits
// with no logic).
func (c *Circuit) Depth() (int, error) {
	levels, err := c.Levels()
	if err != nil {
		return 0, err
	}
	d := 0
	for _, o := range c.outputs {
		if levels[o] > d {
			d = levels[o]
		}
	}
	return d, nil
}

// TransitiveFanin returns the set of gate IDs in the transitive fanin cone
// of the given roots (inclusive of the roots), as a boolean mask indexed
// by gate ID.
func (c *Circuit) TransitiveFanin(roots ...ID) []bool {
	mask := make([]bool, len(c.gates))
	stack := make([]ID, 0, len(roots))
	for _, r := range roots {
		if r >= 0 && int(r) < len(c.gates) && !mask[r] {
			mask[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.gates[id].Fanin {
			if !mask[f] {
				mask[f] = true
				stack = append(stack, f)
			}
		}
	}
	return mask
}

// TransitiveFanout returns the set of gate IDs in the transitive fanout
// cone of the given roots (inclusive), as a boolean mask indexed by ID.
func (c *Circuit) TransitiveFanout(roots ...ID) []bool {
	fanout := make([][]ID, len(c.gates))
	for id := range c.gates {
		for _, f := range c.gates[id].Fanin {
			fanout[f] = append(fanout[f], ID(id))
		}
	}
	mask := make([]bool, len(c.gates))
	stack := make([]ID, 0, len(roots))
	for _, r := range roots {
		if r >= 0 && int(r) < len(c.gates) && !mask[r] {
			mask[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, out := range fanout[id] {
			if !mask[out] {
				mask[out] = true
				stack = append(stack, out)
			}
		}
	}
	return mask
}
