package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// evalInterpreted is an independent reference for the compiled program:
// it walks the topological order calling the per-gate interpreted Eval64
// (the pre-compilation simulation semantics) with a fanin gather per
// gate. Every lane width of the compiled kernel must agree with it
// bit-for-bit.
func evalInterpreted(t testing.TB, c *Circuit, in, key []uint64) []uint64 {
	t.Helper()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	vals := make([]uint64, c.NumGates())
	for i, id := range c.Inputs() {
		vals[id] = in[i]
	}
	for i, id := range c.Keys() {
		vals[id] = key[i]
	}
	var fan []uint64
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == Input {
			continue
		}
		fan = fan[:0]
		for _, f := range g.Fanin {
			fan = append(fan, vals[f])
		}
		vals[id] = g.Type.Eval64(fan)
	}
	out := make([]uint64, c.NumOutputs())
	for i, id := range c.Outputs() {
		out[i] = vals[id]
	}
	return out
}

// randomProgramCircuit builds a random DAG exercising every gate type,
// n-ary fanin decomposition, and multi-output gather. Small nIn values
// (< 6) exercise the partial-lane edge of the wide enumeration callers.
func randomProgramCircuit(rng *rand.Rand, nIn, nKey, nGates int) *Circuit {
	c := New("rand")
	var pool []ID
	for i := 0; i < nIn; i++ {
		pool = append(pool, c.MustAddInput(fmt.Sprintf("in%d", i)))
	}
	for i := 0; i < nKey; i++ {
		pool = append(pool, c.MustAddKey(fmt.Sprintf("k%d", i)))
	}
	types := []GateType{Const0, Const1, Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		var fanin []ID
		switch t.MinFanin() {
		case 0:
		case 1:
			fanin = []ID{pool[rng.Intn(len(pool))]}
		default:
			k := 2 + rng.Intn(4) // 2..5 fanins: exercises the n-ary chain
			for j := 0; j < k; j++ {
				fanin = append(fanin, pool[rng.Intn(len(pool))])
			}
		}
		pool = append(pool, c.MustAddGate(t, fmt.Sprintf("g%d", i), fanin...))
	}
	// Mark the last few gates (and at least one) as outputs.
	nOut := 1 + rng.Intn(4)
	for i := 0; i < nOut; i++ {
		c.MustMarkOutput(pool[len(pool)-1-i])
	}
	return c
}

// TestProgramWidthsAgree is the lane-agreement property test: for random
// circuits and random packed patterns, Run64, Run256, Run512, scalar
// Run, and EvalBool all agree with the interpreted reference.
func TestProgramWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nIn := 1 + rng.Intn(10) // includes n < 6 edge widths
		nKey := rng.Intn(5)
		nGates := 1 + rng.Intn(40)
		c := randomProgramCircuit(rng, nIn, nKey, nGates)
		sim := MustNewSimulator(c)

		// 8 word groups of random patterns: group g is one Run64 batch,
		// groups 0..3 a Run256 batch, groups 0..7 a Run512 batch.
		in8 := make([][8]uint64, nIn)
		key8 := make([][8]uint64, nKey)
		for i := range in8 {
			for j := range in8[i] {
				in8[i][j] = rng.Uint64()
			}
		}
		for i := range key8 {
			for j := range key8[i] {
				key8[i][j] = rng.Uint64()
			}
		}
		want := make([][]uint64, 8)
		in1 := make([]uint64, nIn)
		key1 := make([]uint64, nKey)
		for g := 0; g < 8; g++ {
			for i := range in8 {
				in1[i] = in8[i][g]
			}
			for i := range key8 {
				key1[i] = key8[i][g]
			}
			want[g] = evalInterpreted(t, c, in1, key1)

			got, err := sim.Run64(in1, key1)
			if err != nil {
				t.Fatalf("trial %d: Run64: %v", trial, err)
			}
			for o := range got {
				if got[o] != want[g][o] {
					t.Fatalf("trial %d group %d: Run64 out[%d] = %#x, want %#x", trial, g, o, got[o], want[g][o])
				}
			}

			// Scalar Run vs pattern 0 of the group, and EvalBool per gate
			// semantics via the circuit's one-shot Eval.
			inB := make([]bool, nIn)
			keyB := make([]bool, nKey)
			for i := range inB {
				inB[i] = in1[i]&1 != 0
			}
			for i := range keyB {
				keyB[i] = key1[i]&1 != 0
			}
			outB, err := sim.Run(inB, keyB)
			if err != nil {
				t.Fatalf("trial %d: Run: %v", trial, err)
			}
			for o := range outB {
				if outB[o] != (want[g][o]&1 != 0) {
					t.Fatalf("trial %d group %d: scalar Run out[%d] = %v, want %v", trial, g, o, outB[o], want[g][o]&1 != 0)
				}
			}
		}

		in4 := make([][4]uint64, nIn)
		key4 := make([][4]uint64, nKey)
		for i := range in4 {
			copy(in4[i][:], in8[i][:4])
		}
		for i := range key4 {
			copy(key4[i][:], key8[i][:4])
		}
		got4, err := sim.Run256(in4, key4)
		if err != nil {
			t.Fatalf("trial %d: Run256: %v", trial, err)
		}
		for o := range got4 {
			for g := 0; g < 4; g++ {
				if got4[o][g] != want[g][o] {
					t.Fatalf("trial %d: Run256 out[%d] word %d = %#x, want %#x", trial, o, g, got4[o][g], want[g][o])
				}
			}
		}

		got8, err := sim.Run512(in8, key8)
		if err != nil {
			t.Fatalf("trial %d: Run512: %v", trial, err)
		}
		for o := range got8 {
			for g := 0; g < 8; g++ {
				if got8[o][g] != want[g][o] {
					t.Fatalf("trial %d: Run512 out[%d] word %d = %#x, want %#x", trial, o, g, got8[o][g], want[g][o])
				}
			}
		}
	}
}

// TestProgramEmitRejectsAliasing locks the compile-time invariant the
// n-ary accumulate-into-dst decomposition depends on.
func TestProgramEmitRejectsAliasing(t *testing.T) {
	p := NewProgram(4)
	if err := p.Emit(And, 2, []int32{0, 2, 1}); err == nil {
		t.Fatal("Emit accepted dst aliasing an argument")
	}
	if err := p.Emit(And, -1, []int32{0, 1}); err == nil {
		t.Fatal("Emit accepted a negative dst")
	}
	if err := p.Emit(Not, 2, []int32{-3}); err == nil {
		t.Fatal("Emit accepted a negative arg")
	}
	if err := p.Emit(And, 2, []int32{0}); err == nil {
		t.Fatal("Emit accepted a 1-fanin AND")
	}
	if err := p.Emit(Input, 2, []int32{0}); err != nil {
		t.Fatalf("Emit rejected Input-as-Buf: %v", err)
	}
}

// TestSimulatorRunsDoNotAllocate asserts the hot paths are
// allocation-free once the lazily-created banks exist.
func TestSimulatorRunsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomProgramCircuit(rng, 8, 4, 64)
	sim := MustNewSimulator(c)
	in1 := make([]uint64, 8)
	key1 := make([]uint64, 4)
	in4 := make([][4]uint64, 8)
	key4 := make([][4]uint64, 4)
	in8 := make([][8]uint64, 8)
	key8 := make([][8]uint64, 4)
	inB := make([]bool, 8)
	keyB := make([]bool, 4)
	// Warm every lazily-allocated buffer.
	if _, err := sim.Run64(in1, key1); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run256(in4, key4); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run512(in8, key8); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(inB, keyB); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Run64", func() { sim.Run64(in1, key1) }},
		{"Run256", func() { sim.Run256(in4, key4) }},
		{"Run512", func() { sim.Run512(in8, key8) }},
		{"Run", func() { sim.Run(inB, keyB) }},
	} {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkRunWidths measures the compiled kernel at each lane width on
// a mid-size random circuit; see the root bench_test.go for the ISCAS85
// profile variants. ns/pattern is the comparable figure across widths.
func BenchmarkRunWidths(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := randomProgramCircuit(rng, 24, 8, 400)
	sim := MustNewSimulator(c)
	in1 := make([]uint64, 24)
	key1 := make([]uint64, 8)
	in4 := make([][4]uint64, 24)
	key4 := make([][4]uint64, 8)
	in8 := make([][8]uint64, 24)
	key8 := make([][8]uint64, 8)
	for i := range in1 {
		in1[i] = rng.Uint64()
		for j := 0; j < 8; j++ {
			in8[i][j] = rng.Uint64()
		}
		copy(in4[i][:], in8[i][:4])
	}
	b.Run("w64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Run64(in1, key1)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/pattern")
	})
	b.Run("w256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Run256(in4, key4)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/256, "ns/pattern")
	})
	b.Run("w512", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Run512(in8, key8)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/512, "ns/pattern")
	})
}

// FuzzProgramVsEval64 decodes the fuzz input into a small DAG and checks
// the compiled program against the interpreted per-gate Eval64 at every
// lane width. The decoder is total: any byte string yields a valid
// circuit, so the fuzzer explores structure rather than parser errors.
func FuzzProgramVsEval64(f *testing.F) {
	f.Add([]byte{3, 1, 5, 0x11, 0x22, 0x33, 0x44})
	f.Add([]byte{1, 0, 9, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77})
	f.Add([]byte{6, 2, 20, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		nIn := 1 + int(next())%8
		nKey := int(next()) % 4
		nGates := 1 + int(next())%24

		c := New("fuzz")
		var pool []ID
		for i := 0; i < nIn; i++ {
			pool = append(pool, c.MustAddInput(fmt.Sprintf("in%d", i)))
		}
		for i := 0; i < nKey; i++ {
			pool = append(pool, c.MustAddKey(fmt.Sprintf("k%d", i)))
		}
		types := []GateType{Const0, Const1, Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
		for i := 0; i < nGates; i++ {
			gt := types[int(next())%len(types)]
			var fanin []ID
			switch gt.MinFanin() {
			case 0:
			case 1:
				fanin = []ID{pool[int(next())%len(pool)]}
			default:
				k := 2 + int(next())%3
				for j := 0; j < k; j++ {
					fanin = append(fanin, pool[int(next())%len(pool)])
				}
			}
			pool = append(pool, c.MustAddGate(gt, fmt.Sprintf("g%d", i), fanin...))
		}
		c.MustMarkOutput(pool[len(pool)-1])

		// Patterns derived from the remaining bytes, deterministically.
		rng := rand.New(rand.NewSource(int64(nIn)<<16 ^ int64(nGates) ^ int64(next())<<8))
		in8 := make([][8]uint64, nIn)
		key8 := make([][8]uint64, nKey)
		for i := range in8 {
			for j := range in8[i] {
				in8[i][j] = rng.Uint64()
			}
		}
		for i := range key8 {
			for j := range key8[i] {
				key8[i][j] = rng.Uint64()
			}
		}

		sim, err := NewSimulator(c)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		in1 := make([]uint64, nIn)
		key1 := make([]uint64, nKey)
		want := make([][]uint64, 8)
		for g := 0; g < 8; g++ {
			for i := range in8 {
				in1[i] = in8[i][g]
			}
			for i := range key8 {
				key1[i] = key8[i][g]
			}
			want[g] = evalInterpreted(t, c, in1, key1)
			got, err := sim.Run64(in1, key1)
			if err != nil {
				t.Fatalf("Run64: %v", err)
			}
			for o := range got {
				if got[o] != want[g][o] {
					t.Fatalf("Run64 group %d out[%d] = %#x, want %#x", g, o, got[o], want[g][o])
				}
			}
		}
		got8, err := sim.Run512(in8, key8)
		if err != nil {
			t.Fatalf("Run512: %v", err)
		}
		for o := range got8 {
			for g := 0; g < 8; g++ {
				if got8[o][g] != want[g][o] {
					t.Fatalf("Run512 out[%d] word %d = %#x, want %#x", o, g, got8[o][g], want[g][o])
				}
			}
		}
	})
}
