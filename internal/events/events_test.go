package events

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func collect(t *testing.T, s *Subscription, want int) []Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	var out []Event
	for len(out) < want {
		out = append(out, s.Poll()...)
		if len(out) >= want {
			break
		}
		if s.Closed() {
			if rest := s.Poll(); len(rest) > 0 {
				out = append(out, rest...)
				continue
			}
			break
		}
		select {
		case <-s.Wait():
		case <-deadline:
			t.Fatalf("timed out with %d/%d events", len(out), want)
		}
	}
	return out
}

func TestBusDeliversInOrder(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe(0)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: TypeOracleBatch, Count: uint64(i)})
	}
	got := collect(t, sub, 10)
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Count != uint64(i) {
			t.Fatalf("event %d has count %d, want %d", i, ev.Count, i)
		}
		if ev.TS == 0 {
			t.Fatalf("event %d missing timestamp", i)
		}
	}
}

func TestNilBusIsNoOp(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: TypeDone}) // must not panic
	b.Close()
	if got := b.History(0); got != nil {
		t.Fatalf("nil bus history = %v, want nil", got)
	}
	if b.LastSeq() != 0 {
		t.Fatal("nil bus has a sequence")
	}
	s := b.Subscribe(0)
	if !s.Closed() {
		t.Fatal("nil-bus subscription should be pre-closed")
	}
	if evs := s.Poll(); len(evs) != 0 {
		t.Fatalf("nil-bus subscription has %d events", len(evs))
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	reg := telemetry.New()
	b := New(Options{Subscriber: 4, Telemetry: reg})
	sub := b.Subscribe(0)
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: TypeDIPProgress, Count: uint64(i)})
	}
	got := sub.Poll()
	if len(got) != 4 {
		t.Fatalf("got %d buffered events, want ring capacity 4", len(got))
	}
	// Oldest were evicted: the survivors are the newest four, in order.
	for i, ev := range got {
		if want := uint64(7 + i); ev.Count != want {
			t.Fatalf("survivor %d has count %d, want %d", i, ev.Count, want)
		}
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("subscription dropped %d, want 6", d)
	}
	if c := reg.Counter("events_dropped_total").Value(); c != 6 {
		t.Fatalf("events_dropped_total = %d, want 6", c)
	}
}

func TestSubscribeReplaysHistoryAfterSeq(t *testing.T) {
	b := New(Options{})
	for i := 1; i <= 8; i++ {
		b.Publish(Event{Type: TypeOracleBatch, Count: uint64(i)})
	}
	sub := b.Subscribe(5) // Last-Event-ID: 5 → replay 6,7,8
	got := sub.Poll()
	if len(got) != 3 {
		t.Fatalf("replayed %d events, want 3", len(got))
	}
	for i, ev := range got {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("replay %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	// Live events continue after the replayed tail.
	b.Publish(Event{Type: TypeDone})
	live := collect(t, sub, 1)
	if len(live) != 1 || live[0].Seq != 9 {
		t.Fatalf("live after replay = %+v, want seq 9", live)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	b := New(Options{History: 8})
	for i := 1; i <= 20; i++ {
		b.Publish(Event{Type: TypeOracleBatch})
	}
	all := b.History(0)
	if len(all) != 8 {
		t.Fatalf("history retains %d, want 8", len(all))
	}
	if all[0].Seq != 13 || all[7].Seq != 20 {
		t.Fatalf("history window [%d, %d], want [13, 20]", all[0].Seq, all[7].Seq)
	}
	if got := b.History(18); len(got) != 2 {
		t.Fatalf("History(18) = %d events, want 2", len(got))
	}
}

func TestCloseEndsSubscriptionsAfterDrain(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe(0)
	b.Publish(Event{Type: TypePhaseEnter, Phase: "enumerate"})
	b.Publish(Event{Type: TypeDone})
	b.Close()
	b.Close()                               // idempotent
	b.Publish(Event{Type: TypeOracleBatch}) // dropped after close
	got := collect(t, sub, 2)
	if len(got) != 2 {
		t.Fatalf("drained %d events, want 2", len(got))
	}
	if !sub.Closed() {
		t.Fatal("subscription should be closed")
	}
	if b.LastSeq() != 2 {
		t.Fatalf("post-close publish advanced seq to %d", b.LastSeq())
	}
	// History stays readable after close, and late subscribers get the
	// retained tail on a pre-closed subscription.
	late := b.Subscribe(0)
	if !late.Closed() {
		t.Fatal("late subscription should arrive closed")
	}
	if got := late.Poll(); len(got) != 2 {
		t.Fatalf("late subscriber replayed %d, want 2", len(got))
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(Options{Subscriber: 64})
	const (
		publishers = 4
		perPub     = 500
		readers    = 3
	)
	var wg sync.WaitGroup
	seen := make([]uint64, readers) // highest seq observed per reader
	for r := 0; r < readers; r++ {
		sub := b.Subscribe(0)
		wg.Add(1)
		go func(r int, sub *Subscription) {
			defer wg.Done()
			var last uint64
			for {
				for _, ev := range sub.Poll() {
					if ev.Seq <= last {
						t.Errorf("reader %d saw seq %d after %d", r, ev.Seq, last)
						return
					}
					last = ev.Seq
				}
				if sub.Closed() && len(sub.Poll()) == 0 {
					seen[r] = last
					return
				}
				<-sub.Wait()
			}
		}(r, sub)
	}
	var pwg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Event{Type: TypeDIPProgress})
			}
		}()
	}
	pwg.Wait()
	b.Close()
	wg.Wait()
	for r, last := range seen {
		if last == 0 {
			t.Fatalf("reader %d saw nothing", r)
		}
	}
	if b.LastSeq() != publishers*perPub {
		t.Fatalf("published %d events, want %d", b.LastSeq(), publishers*perPub)
	}
}

func TestMarshalNDJSONRoundTrips(t *testing.T) {
	ev := Event{
		Seq: 7, TS: 1700000000000, Type: TypeCrossover, Phase: "calibrate",
		Fields: map[string]string{"engine": "sim"},
	}
	line := string(ev.MarshalNDJSON())
	for _, want := range []string{`"seq":7`, `"type":"crossover"`, `"engine":"sim"`} {
		if !contains(line, want) {
			t.Fatalf("NDJSON %q missing %q", line, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
