package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunIndexedPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := RunIndexed(nil, 40, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 40 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunIndexedPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := RunIndexed(nil, 64, 4, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// After the failure surfaces, remaining indices are skipped, so the
	// pool must not have run everything (first-error short circuit). A
	// scheduling race can legitimately run a few extra jobs, but not the
	// whole input.
	if ran.Load() == 64 {
		t.Log("note: all jobs ran before the error surfaced (slow machine?)")
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	got, err := RunIndexed(nil, 0, 8, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("empty run: %v, %v", got, err)
	}
}

// TestRunIndexedCancelsInFlightWorkers proves the first error does not
// just skip unstarted indices — it cancels the context handed to
// already-running workers, so long jobs that honor ctx return within a
// bounded latency instead of running to completion.
func TestRunIndexedCancelsInFlightWorkers(t *testing.T) {
	boom := errors.New("boom")
	const workers = 4
	started := make(chan struct{}, workers)
	var interrupted atomic.Int64
	begin := time.Now()
	_, err := RunIndexed(nil, workers, workers, func(ctx context.Context, i int) (int, error) {
		started <- struct{}{}
		if i == 0 {
			// Fail only after every worker holds a long-running job, so
			// the old drain-only short circuit would have to wait out all
			// of them.
			for j := 0; j < workers; j++ {
				<-started
			}
			return 0, boom
		}
		select {
		case <-ctx.Done():
			interrupted.Add(1)
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return i, nil // would blow the test deadline
		}
	})
	elapsed := time.Since(begin)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := interrupted.Load(); got != workers-1 {
		t.Fatalf("%d in-flight workers saw the cancellation, want %d", got, workers-1)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v; in-flight work was not cancelled", elapsed)
	}
}

// TestRunIndexedHonorsCallerContext checks that cancelling the caller's
// context stops the pool and surfaces ctx.Err().
func TestRunIndexedHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunIndexed(ctx, 100, 4, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunTableIRowsMatchesSequential checks the parallel row runner
// returns exactly what per-row sequential calls return, in row order.
func TestRunTableIRowsMatchesSequential(t *testing.T) {
	rows := TableI32[:2]
	opts := TableIOptions{Seed: 1, MatchPaperRegime: true}
	want := make([]*TableIResult, len(rows))
	for i, row := range rows {
		r, err := RunTableIRow(row, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	opts.Workers = 4
	got, err := RunTableIRows(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if got[i].Row.Benchmark != want[i].Row.Benchmark ||
			got[i].MeasuredDIPs != want[i].MeasuredDIPs ||
			got[i].AlignedDIPs != want[i].AlignedDIPs ||
			got[i].KeyRecovered != want[i].KeyRecovered ||
			got[i].ChainOK != want[i].ChainOK {
			t.Errorf("row %d: parallel %+v != sequential %+v", i, got[i], want[i])
		}
	}
}
