package experiments

import (
	"runtime"
	"sync"
)

// DefaultWorkers resolves a worker-count knob: values ≤ 0 mean
// GOMAXPROCS.
func DefaultWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// RunIndexed evaluates fn(0) … fn(n-1) on a bounded pool of worker
// goroutines and returns the results in index order, so output ordering
// is deterministic no matter how the pool schedules the work. The first
// error encountered is returned (after in-flight work drains) and the
// partial results are discarded; remaining unstarted indices are
// skipped.
func RunIndexed[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue // drain without running more work
				}
				r, err := fn(i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunTableIRows runs Table I rows concurrently on a bounded pool
// (opts.Workers; ≤ 0 means GOMAXPROCS) and returns the results in row
// order. Rows are independent — each generates its own host — so this
// is safe parallelism with deterministic output.
func RunTableIRows(rows []TableIRow, opts TableIOptions) ([]*TableIResult, error) {
	return RunIndexed(len(rows), opts.Workers, func(i int) (*TableIResult, error) {
		return RunTableIRow(rows[i], opts)
	})
}
