package miter

import (
	"fmt"
	"sort"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// hashedEncoder Tseitin-encodes circuits into a shared solver with
// structural hashing: gates with the same function over the same literal
// operands receive the same variable, so identical subcircuits collapse.
// This is the lightweight SAT-sweeping that makes equivalence checking of
// "host + small difference" circuit pairs (the common case when checking
// recovered keys) essentially free.
type hashedEncoder struct {
	solver *sat.Solver
	sigs   map[string]cnf.Lit
	zero   cnf.Lit // a literal fixed to false, for constants
}

func newHashedEncoder(solver *sat.Solver) *hashedEncoder {
	z := solver.NewVar()
	solver.Add(z.Neg())
	return &hashedEncoder{solver: solver, sigs: make(map[string]cnf.Lit), zero: z}
}

func commutative(t netlist.GateType) bool {
	switch t {
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
		return true
	}
	return false
}

func (h *hashedEncoder) signature(t netlist.GateType, fanin []cnf.Lit) string {
	lits := append([]cnf.Lit(nil), fanin...)
	if commutative(t) {
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	}
	sig := make([]byte, 0, 4+8*len(lits))
	sig = append(sig, byte(t))
	for _, l := range lits {
		v := uint32(int32(l))
		sig = append(sig, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(sig)
}

// encode returns the output literals of the circuit, mapping its primary
// inputs to the given literals. The circuit must be key-free.
func (h *hashedEncoder) encode(c *netlist.Circuit, inputLits []cnf.Lit) ([]cnf.Lit, error) {
	if c.NumKeys() != 0 {
		return nil, fmt.Errorf("miter: hashed encoding requires a key-free circuit")
	}
	if len(inputLits) != c.NumInputs() {
		return nil, fmt.Errorf("miter: %d input literals for %d inputs", len(inputLits), c.NumInputs())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	lit := make([]cnf.Lit, c.NumGates())
	for i, id := range c.Inputs() {
		lit[id] = inputLits[i]
	}
	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0:
			lit[id] = h.zero
			continue
		case netlist.Const1:
			lit[id] = h.zero.Neg()
			continue
		case netlist.Buf:
			lit[id] = lit[g.Fanin[0]]
			continue
		case netlist.Not:
			lit[id] = lit[g.Fanin[0]].Neg()
			continue
		}
		fanin := make([]cnf.Lit, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = lit[f]
		}
		// Complemented gates hash as their base function, negated, so
		// AND/NAND over the same operands share one variable.
		base, inverted := g.Type, false
		switch g.Type {
		case netlist.Nand:
			base, inverted = netlist.And, true
		case netlist.Nor:
			base, inverted = netlist.Or, true
		case netlist.Xnor:
			base, inverted = netlist.Xor, true
		}
		sig := h.signature(base, fanin)
		v, ok := h.sigs[sig]
		if !ok {
			v = h.solver.NewVar()
			h.emit(base, v, fanin)
			h.sigs[sig] = v
		}
		if inverted {
			v = v.Neg()
		}
		lit[id] = v
	}
	outs := make([]cnf.Lit, c.NumOutputs())
	for i, o := range c.Outputs() {
		outs[i] = lit[o]
	}
	return outs, nil
}

func (h *hashedEncoder) emit(t netlist.GateType, v cnf.Lit, in []cnf.Lit) {
	s := h.solver
	switch t {
	case netlist.And:
		long := make([]cnf.Lit, 0, len(in)+1)
		for _, a := range in {
			s.Add(v.Neg(), a)
			long = append(long, a.Neg())
		}
		s.Add(append(long, v)...)
	case netlist.Or:
		long := make([]cnf.Lit, 0, len(in)+1)
		for _, a := range in {
			s.Add(v, a.Neg())
			long = append(long, a)
		}
		s.Add(append(long, v.Neg())...)
	case netlist.Xor:
		acc := in[0]
		for i := 1; i < len(in); i++ {
			var next cnf.Lit
			if i == len(in)-1 {
				next = v
			} else {
				next = s.NewVar()
			}
			s.Add(next.Neg(), acc, in[i])
			s.Add(next.Neg(), acc.Neg(), in[i].Neg())
			s.Add(next, acc.Neg(), in[i])
			s.Add(next, acc, in[i].Neg())
			acc = next
		}
		if len(in) == 1 {
			s.Add(v.Neg(), acc)
			s.Add(v, acc.Neg())
		}
	default:
		panic("miter: emit: unexpected base gate " + t.String())
	}
}

// ProveEquivalentHashed decides functional equivalence of two key-free
// circuits using structural hashing before SAT. Semantically identical to
// ProveEquivalent, but fast when the circuits share most of their logic.
func ProveEquivalentHashed(a, b *netlist.Circuit) (bool, []bool, error) {
	return ProveEquivalentHashedBudget(a, b, 0)
}

// ProveEquivalentHashedBudget is ProveEquivalentHashed with a SAT
// conflict budget: when the budget (0 = unlimited) is exhausted the pair
// is reported equivalent=true with a nil witness and no error — callers
// that need certainty must pass 0.
func ProveEquivalentHashedBudget(a, b *netlist.Circuit, conflictBudget uint64) (bool, []bool, error) {
	if a.NumKeys() != 0 || b.NumKeys() != 0 {
		return false, nil, fmt.Errorf("miter: equivalence check needs key-free circuits")
	}
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false, nil, fmt.Errorf("miter: shape mismatch: %s vs %s", a, b)
	}
	solver := sat.New()
	solver.ConflictBudget = conflictBudget
	h := newHashedEncoder(solver)
	inputLits := make([]cnf.Lit, a.NumInputs())
	for i := range inputLits {
		inputLits[i] = solver.NewVar()
	}
	outsA, err := h.encode(a, inputLits)
	if err != nil {
		return false, nil, err
	}
	outsB, err := h.encode(b, inputLits)
	if err != nil {
		return false, nil, err
	}
	// diff = OR of output XORs; assume it true.
	diffs := make([]cnf.Lit, 0, len(outsA))
	allSame := true
	for i := range outsA {
		if outsA[i] == outsB[i] {
			continue // hashed to the same literal: provably equal
		}
		allSame = false
		x := solver.NewVar()
		solver.Add(x.Neg(), outsA[i], outsB[i])
		solver.Add(x.Neg(), outsA[i].Neg(), outsB[i].Neg())
		solver.Add(x, outsA[i].Neg(), outsB[i])
		solver.Add(x, outsA[i], outsB[i].Neg())
		diffs = append(diffs, x)
	}
	if allSame {
		return true, nil, nil
	}
	diff := solver.NewVar()
	cl := make([]cnf.Lit, 0, len(diffs)+1)
	for _, d := range diffs {
		solver.Add(diff, d.Neg())
		cl = append(cl, d)
	}
	solver.Add(append(cl, diff.Neg())...)
	switch solver.Solve(diff) {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		witness := make([]bool, len(inputLits))
		for i, l := range inputLits {
			witness[i] = solver.ModelValue(l)
		}
		return false, witness, nil
	}
	if conflictBudget > 0 {
		return true, nil, nil // budget exhausted: treated as "no difference found"
	}
	return false, nil, fmt.Errorf("miter: solver returned UNKNOWN")
}

// ProveUnlockedHashed is ProveUnlocked using the hashed encoder.
func ProveUnlockedHashed(locked *netlist.Circuit, key []bool, reference *netlist.Circuit) (bool, error) {
	act, err := oracle.Activate(locked, key)
	if err != nil {
		return false, err
	}
	eq, _, err := ProveEquivalentHashed(act, reference)
	return eq, err
}
