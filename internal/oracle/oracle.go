// Package oracle models the attacker's black-box access to an activated
// chip. Every attack in this repository consults the design exclusively
// through the Oracle interface, which makes the "no structural analysis"
// property of the DIP-learning attack auditable: the oracle counts
// queries and exposes nothing but input/output behaviour.
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
)

// Oracle is black-box input/output access to a functional chip.
type Oracle interface {
	// NumInputs returns the width of the chip's input port.
	NumInputs() int
	// NumOutputs returns the width of the chip's output port.
	NumOutputs() int
	// Query evaluates one input pattern.
	Query(in []bool) ([]bool, error)
	// Query64 evaluates 64 packed patterns at once (bit i of each word
	// is pattern i); it exists because simulation-heavy attacks would
	// otherwise be dominated by per-pattern overhead.
	Query64(in []uint64) ([]uint64, error)
}

// BatchOracle is the optional batched extension of Oracle. Callers with
// many independent Query64 batches in hand (parallel attack loops, DIP
// replay) should type-assert for it and submit the batches in one call:
// implementations evaluate them without taking a per-call lock, so the
// batches proceed concurrently instead of serializing on the oracle.
type BatchOracle interface {
	Oracle
	// EvalMany evaluates many packed 64-pattern batches. The result has
	// one output slice per input batch, in input order.
	EvalMany(ins [][]uint64) ([][]uint64, error)
}

// Sim is an Oracle backed by simulating the original (unlocked) netlist,
// standing in for the activated chip of the paper's threat model. It
// counts queries and is safe for concurrent use: each in-flight query
// draws a private simulator from an internal pool (netlist simulators
// are single-goroutine objects), and the query counters are atomics, so
// concurrent callers never contend on a global lock.
type Sim struct {
	circuit *netlist.Circuit
	pool    sync.Pool
	inputs  int
	outputs int
	queries atomic.Uint64 // single patterns evaluated (64 per Query64 call)
	calls   atomic.Uint64
}

// NewSim wraps an original circuit as an oracle. The circuit must not
// have key inputs — an activated chip has its key burned in.
func NewSim(original *netlist.Circuit) (*Sim, error) {
	if original.NumKeys() != 0 {
		return nil, fmt.Errorf("oracle: circuit %q still has %d key inputs; activate it first",
			original.Name, original.NumKeys())
	}
	// Build the first simulator eagerly: it surfaces construction errors
	// (cycles, invalid gates) at wrap time and warms the circuit's
	// topological-order cache before any concurrent use.
	first, err := netlist.NewSimulator(original)
	if err != nil {
		return nil, err
	}
	o := &Sim{circuit: original, inputs: original.NumInputs(), outputs: original.NumOutputs()}
	o.pool.New = func() any {
		s, err := netlist.NewSimulator(o.circuit)
		if err != nil {
			// Construction succeeded once in NewSim and the circuit is
			// not mutated afterwards, so this cannot fail.
			panic(fmt.Sprintf("oracle: simulator construction failed after successful warm-up: %v", err))
		}
		return s
	}
	o.pool.Put(first)
	return o, nil
}

// MustNewSim is NewSim that panics on error.
func MustNewSim(original *netlist.Circuit) *Sim {
	o, err := NewSim(original)
	if err != nil {
		panic(err)
	}
	return o
}

// NumInputs implements Oracle.
func (o *Sim) NumInputs() int { return o.inputs }

// NumOutputs implements Oracle.
func (o *Sim) NumOutputs() int { return o.outputs }

// Query implements Oracle.
func (o *Sim) Query(in []bool) ([]bool, error) {
	o.queries.Add(1)
	o.calls.Add(1)
	sim := o.pool.Get().(*netlist.Simulator)
	out, err := sim.Run(in, nil)
	if err != nil {
		o.pool.Put(sim)
		return nil, err
	}
	// Copy: the simulator owns its output buffer, and it goes back into
	// the pool where another goroutine may overwrite it.
	res := append([]bool(nil), out...)
	o.pool.Put(sim)
	return res, nil
}

// Query64 implements Oracle.
func (o *Sim) Query64(in []uint64) ([]uint64, error) {
	o.queries.Add(64)
	o.calls.Add(1)
	sim := o.pool.Get().(*netlist.Simulator)
	out, err := sim.Run64(in, nil)
	if err != nil {
		o.pool.Put(sim)
		return nil, err
	}
	res := append([]uint64(nil), out...)
	o.pool.Put(sim)
	return res, nil
}

// EvalMany implements BatchOracle: every batch is evaluated on the
// caller's goroutine with one pooled simulator, but because nothing here
// locks, many goroutines can be inside EvalMany (or Query/Query64)
// simultaneously — the pool hands each a distinct simulator. Batches are
// packed eight at a time through the simulator's 512-lane kernel; a
// remainder of fewer than eight runs the 64-lane path.
func (o *Sim) EvalMany(ins [][]uint64) ([][]uint64, error) {
	o.queries.Add(64 * uint64(len(ins)))
	o.calls.Add(uint64(len(ins)))
	for _, in := range ins {
		if len(in) != o.inputs {
			return nil, fmt.Errorf("oracle: EvalMany: got %d input words, want %d", len(in), o.inputs)
		}
	}
	sim := o.pool.Get().(*netlist.Simulator)
	defer o.pool.Put(sim)
	outs := make([][]uint64, len(ins))
	i := 0
	if len(ins) >= 8 {
		in8 := make([][8]uint64, o.inputs)
		for ; i+8 <= len(ins); i += 8 {
			for k := 0; k < o.inputs; k++ {
				for j := 0; j < 8; j++ {
					in8[k][j] = ins[i+j][k]
				}
			}
			out8, err := sim.Run512(in8, nil)
			if err != nil {
				return nil, err
			}
			for j := 0; j < 8; j++ {
				out := make([]uint64, o.outputs)
				for k := 0; k < o.outputs; k++ {
					out[k] = out8[k][j]
				}
				outs[i+j] = out
			}
		}
	}
	for ; i < len(ins); i++ {
		out, err := sim.Run64(ins[i], nil)
		if err != nil {
			return nil, err
		}
		outs[i] = append([]uint64(nil), out...)
	}
	return outs, nil
}

// Queries returns the number of input patterns evaluated so far.
func (o *Sim) Queries() uint64 { return o.queries.Load() }

// Calls returns the number of Query/Query64 invocations so far.
func (o *Sim) Calls() uint64 { return o.calls.Load() }

// Activate bakes a key into a locked circuit, producing the functional
// circuit an oracle would simulate: key inputs become constants. It is
// the bridge between "locked netlist + correct key" and "activated chip".
func Activate(locked *netlist.Circuit, key []bool) (*netlist.Circuit, error) {
	if len(key) != locked.NumKeys() {
		return nil, fmt.Errorf("oracle: key length %d, circuit has %d key inputs", len(key), locked.NumKeys())
	}
	out := netlist.New(locked.Name + "_activated")
	inputMap := make([]netlist.ID, locked.NumInputs())
	for i, id := range locked.Inputs() {
		inputMap[i] = out.MustAddInput(locked.Gate(id).Name)
	}
	// Rebuild with keys replaced by constants: import cannot be used
	// directly (it would re-declare keys), so walk gates manually.
	order, err := locked.TopoOrder()
	if err != nil {
		return nil, err
	}
	remap := make([]netlist.ID, locked.NumGates())
	for i := range remap {
		remap[i] = netlist.InvalidID
	}
	for i, id := range locked.Inputs() {
		remap[id] = inputMap[i]
	}
	for i, id := range locked.Keys() {
		typ := netlist.Const0
		if key[i] {
			typ = netlist.Const1
		}
		kid, err := out.AddGate(typ, locked.Gate(id).Name)
		if err != nil {
			return nil, err
		}
		remap[id] = kid
	}
	for _, id := range order {
		g := locked.Gate(id)
		if g.Type == netlist.Input {
			if remap[id] == netlist.InvalidID {
				return nil, fmt.Errorf("oracle: unregistered input %q", g.Name)
			}
			continue
		}
		fanin := make([]netlist.ID, len(g.Fanin))
		for j, f := range g.Fanin {
			fanin[j] = remap[f]
		}
		nid, err := out.AddGate(g.Type, g.Name, fanin...)
		if err != nil {
			return nil, err
		}
		remap[id] = nid
	}
	for _, o := range locked.Outputs() {
		if err := out.MarkOutput(remap[o]); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
