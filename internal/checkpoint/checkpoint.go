// Package checkpoint makes attack progress durable: a versioned,
// length-prefixed binary snapshot of everything an interrupted DIP
// attack cannot afford to lose — the accumulated DIP set, the oracle's
// answers (the only irreplaceable state: SAT work can be re-derived,
// silicon queries cannot), the hypothesis/phase position, and the
// engine budgeter's learned conflict rate. Snapshots are written
// atomically (temp + rename) with a SHA-256 self-checksum, so a crash
// mid-write leaves either the previous snapshot or none, never a torn
// one, and bit rot is detected on load instead of corrupting a resumed
// run.
//
// The codec is deliberately paranoid: every read is bounds-checked,
// every count capped, and every failure is one of the typed errors
// below — a fuzzer feeding truncated or bit-flipped snapshots must
// never panic the decoder.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Typed decode failures. Decode and Load never panic on hostile input;
// they return an error wrapping one of these.
var (
	// ErrTruncated: the input ends before the declared structure does.
	ErrTruncated = errors.New("checkpoint: snapshot truncated")
	// ErrFormat: the input is not a checkpoint snapshot, or a field
	// violates the format's invariants.
	ErrFormat = errors.New("checkpoint: malformed snapshot")
	// ErrVersion: the snapshot's version byte is newer than this decoder.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrChecksum: the SHA-256 trailer does not match the payload.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
)

// magic opens every snapshot; the final byte is the format version.
var magic = [8]byte{'C', 'A', 'S', 'C', 'K', 'P', 'T', 1}

// Decoder sanity caps: far above anything a real attack produces, low
// enough that a hostile length prefix cannot balloon allocations.
const (
	maxStringLen   = 1 << 12
	maxDIPWords    = 1 << 28 // 2 GiB of DIP words = the core DIPSet cap (n = 34)
	maxResponses   = 1 << 22
	maxPatternLen  = 1 << 16
	maxDIPWidth    = 34
	checksumLen    = sha256.Size
	minSnapshotLen = len(magic) + checksumLen
)

// Response is one banked 64-lane oracle answer: the packed input words
// passed to Query64 and the packed output words it returned.
type Response struct {
	In  []uint64
	Out []uint64
}

// ScalarResponse is one banked single-pattern oracle answer, with the
// input and output bool vectors packed 8 per byte.
type ScalarResponse struct {
	In  []byte
	Out []byte
}

// Snapshot is the durable state of one attack in flight. Identity
// fields pin the snapshot to a specific (netlist, oracle, options)
// triple so a resume against the wrong instance is refused; progress
// fields let the resumed run skip or seed work instead of redoing it.
type Snapshot struct {
	// LockedHash is the content hash of the attacked netlist's canonical
	// serialization (for MCAS runs, of the SPS-stripped inner instance).
	LockedHash string
	// OracleHash is the content hash of the oracle netlist's canonical
	// serialization; core cannot see through the Oracle interface, so
	// the boundary that owns the netlist (CLI, service) validates it.
	OracleHash string
	// OptionsSig fingerprints the semantics-affecting attack options.
	OptionsSig string

	// Active is the Lemma-1 hypothesis (1 or 2) in progress at snapshot
	// time; earlier hypotheses have already failed deterministically.
	Active int
	// Calib is the calibration candidate whose extraction produced
	// DIPWords (0 = the main, uncalibrated extraction).
	Calib uint64
	// Phase is the attack phase at snapshot time (informational).
	Phase string
	// EnumComplete records whether the (Active, Calib) enumeration had
	// finished: a complete set is restored wholesale, a partial one is
	// replayed as blocking clauses and enumeration continues.
	EnumComplete bool

	// DIPWidth/DIPWords are the accumulated DIP set for (Active, Calib):
	// the packed bitset words of a core.DIPSet over DIPWidth-bit block
	// patterns.
	DIPWidth int
	DIPWords []uint64

	// OracleQueries is the attack's logical query tally at snapshot time
	// (informational; the resumed run re-derives its own tally).
	OracleQueries uint64
	// BudgetRate is the engine budgeter's persistent EWMA conflict rate
	// (0 = none observed).
	BudgetRate float64

	// Responses and Scalar bank the oracle's answers so the resumed
	// run's replay of the (deterministic) probe/verify query stream is
	// served locally instead of re-querying the chip.
	Responses []Response
	Scalar    []ScalarResponse
}

// Encode serializes the snapshot: magic+version, length-prefixed
// fields, SHA-256 trailer over everything preceding it.
func (s *Snapshot) Encode() []byte {
	var b []byte
	b = append(b, magic[:]...)
	b = putString(b, s.LockedHash)
	b = putString(b, s.OracleHash)
	b = putString(b, s.OptionsSig)
	b = putU64(b, uint64(s.Active))
	b = putU64(b, s.Calib)
	b = putString(b, s.Phase)
	b = putBool(b, s.EnumComplete)
	b = putU64(b, uint64(s.DIPWidth))
	b = putWords(b, s.DIPWords)
	b = putU64(b, s.OracleQueries)
	b = putU64(b, math.Float64bits(s.BudgetRate))
	b = putU64(b, uint64(len(s.Responses)))
	for _, r := range s.Responses {
		b = putWords(b, r.In)
		b = putWords(b, r.Out)
	}
	b = putU64(b, uint64(len(s.Scalar)))
	for _, r := range s.Scalar {
		b = putBytes(b, r.In)
		b = putBytes(b, r.Out)
	}
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// Decode parses and validates a snapshot. All failures wrap one of the
// package's typed errors.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < minSnapshotLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(data), minSnapshotLen)
	}
	if string(data[:len(magic)-1]) != string(magic[:len(magic)-1]) {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if data[len(magic)-1] != magic[len(magic)-1] {
		return nil, fmt.Errorf("%w: version %d, decoder supports %d", ErrVersion, data[len(magic)-1], magic[len(magic)-1])
	}
	payload, trailer := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("%w", ErrChecksum)
	}
	r := reader{buf: payload[len(magic):]}
	s := &Snapshot{}
	s.LockedHash = r.str()
	s.OracleHash = r.str()
	s.OptionsSig = r.str()
	active := r.u64()
	s.Calib = r.u64()
	s.Phase = r.str()
	s.EnumComplete = r.boolean()
	width := r.u64()
	s.DIPWords = r.words(maxDIPWords)
	s.OracleQueries = r.u64()
	s.BudgetRate = math.Float64frombits(r.u64())
	nResp := r.u64()
	if r.err == nil && nResp > maxResponses {
		r.fail("response count %d exceeds cap", nResp)
	}
	for i := uint64(0); i < nResp && r.err == nil; i++ {
		s.Responses = append(s.Responses, Response{In: r.words(maxPatternLen), Out: r.words(maxPatternLen)})
	}
	nScalar := r.u64()
	if r.err == nil && nScalar > maxResponses {
		r.fail("scalar response count %d exceeds cap", nScalar)
	}
	for i := uint64(0); i < nScalar && r.err == nil; i++ {
		s.Scalar = append(s.Scalar, ScalarResponse{In: r.bytes(maxPatternLen), Out: r.bytes(maxPatternLen)})
	}
	if r.err == nil && len(r.buf) != 0 {
		r.fail("%d trailing bytes", len(r.buf))
	}
	if r.err != nil {
		return nil, r.err
	}
	if active != 1 && active != 2 {
		return nil, fmt.Errorf("%w: active hypothesis %d", ErrFormat, active)
	}
	s.Active = int(active)
	if width < 1 || width > maxDIPWidth {
		return nil, fmt.Errorf("%w: DIP width %d outside [1, %d]", ErrFormat, width, maxDIPWidth)
	}
	s.DIPWidth = int(width)
	wantWords := 1
	if width > 6 {
		wantWords = 1 << (width - 6)
	}
	if len(s.DIPWords) != wantWords {
		return nil, fmt.Errorf("%w: %d DIP words for width %d, want %d", ErrFormat, len(s.DIPWords), width, wantWords)
	}
	if s.BudgetRate < 0 || math.IsNaN(s.BudgetRate) || math.IsInf(s.BudgetRate, 0) {
		return nil, fmt.Errorf("%w: budget rate %v", ErrFormat, s.BudgetRate)
	}
	return s, nil
}

// WriteFile atomically persists the snapshot: encoded into a temp file
// in the destination directory, fsync'd, then renamed over path.
func (s *Snapshot) WriteFile(path string) error {
	data := s.Encode()
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// reader is a bounds-checked cursor over the payload; the first failure
// sticks and every subsequent read returns zero values.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrFormat}, args...)...)
	}
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("%w: field header past end", ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) boolean() bool {
	switch r.u64() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("boolean out of range")
		return false
	}
}

func (r *reader) bytes(max uint64) []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail("length %d exceeds cap %d", n, max)
		return nil
	}
	if uint64(len(r.buf)) < n {
		r.err = fmt.Errorf("%w: %d declared bytes, %d remain", ErrTruncated, n, len(r.buf))
		return nil
	}
	out := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return out
}

func (r *reader) str() string {
	return string(r.bytes(maxStringLen))
}

func (r *reader) words(max uint64) []uint64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail("word count %d exceeds cap %d", n, max)
		return nil
	}
	if uint64(len(r.buf)) < n*8 {
		r.err = fmt.Errorf("%w: %d declared words, %d bytes remain", ErrTruncated, n, len(r.buf))
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.buf[i*8:])
	}
	r.buf = r.buf[n*8:]
	return out
}

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return putU64(b, 1)
	}
	return putU64(b, 0)
}

func putBytes(b, v []byte) []byte {
	b = putU64(b, uint64(len(v)))
	return append(b, v...)
}

func putString(b []byte, v string) []byte {
	b = putU64(b, uint64(len(v)))
	return append(b, v...)
}

func putWords(b []byte, ws []uint64) []byte {
	b = putU64(b, uint64(len(ws)))
	for _, w := range ws {
		b = putU64(b, w)
	}
	return b
}
