// Command tracecheck validates a Chrome-trace JSON emitted by
// caslock-attack/lockbench -trace: the file must parse, contain every
// required span name, and the attack's phase spans must cover its
// wall-clock within a tolerance — catching both a broken writer and a
// phase that silently stopped being instrumented.
//
//	tracecheck -in out.json
//	tracecheck -in out.json -require attack,enumerate,decode,algo1,algo2,verify
//	tracecheck -events run.ndjson
//
// -events validates a caslock-attack -events-out NDJSON stream instead
// of (or alongside) a trace: every line must parse as one event,
// sequence numbers must be strictly increasing, no phase may exit
// before entering, DIP counts must be monotone non-decreasing, and the
// stream must end with a terminal done event at fraction 1.
//
// Coverage: for each "attack" span, the durations of the other required
// spans that fall inside its window must sum to at least
// attackDur − max(tolerance·attackDur, slack). Nested re-decodes can
// push the sum past 100%; the check is a lower bound only. Names in
// -coverage-extra (default "calibrate") also count toward the sum when
// present, but are not required — they only appear on configurations
// that run those phases — and never enable the check on their own:
// `-require attack` alone asserts presence of the root span without a
// coverage bound (interrupted runs flush spans for whatever phases ran).
//
// Exit codes: 0 — trace valid; 1 — validation failed; 2 — usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// event mirrors the fields of a Chrome-trace "X" event that the checks
// read; ts and dur are microseconds from the trace epoch.
type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

func main() {
	var (
		in        = flag.String("in", "", "Chrome-trace JSON file to validate")
		eventsIn  = flag.String("events", "", "caslock-attack -events-out NDJSON file to validate (usable alone or together with -in)")
		require   = flag.String("require", "attack,enumerate,decode,algo1,algo2,verify", "comma-separated span names that must appear")
		extra     = flag.String("coverage-extra", "calibrate", "comma-separated span names that count toward attack coverage when present but are not required (conditional phases like the crossover calibration probe)")
		tolerance = flag.Float64("tolerance", 0.05, "allowed uncovered fraction of each attack span")
		slack     = flag.Duration("slack", 25*time.Millisecond, "absolute floor of the coverage allowance (dominates on fast attacks)")
	)
	flag.Parse()
	if (*in == "" && *eventsIn == "") || *tolerance < 0 || *tolerance >= 1 || *slack < 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *eventsIn != "" {
		checkEvents(*eventsIn)
	}
	if *in == "" {
		return
	}
	data, err := os.ReadFile(*in)
	failIf(err)
	var events []event
	failIf(json.Unmarshal(data, &events))
	if len(events) == 0 {
		fail(fmt.Errorf("%s: trace is empty", *in))
	}

	required := strings.Split(*require, ",")
	seen := make(map[string]int)
	for _, ev := range events {
		seen[ev.Name]++
	}
	var missing []string
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name != "" && seen[name] == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail(fmt.Errorf("%s: missing required spans: %s", *in, strings.Join(missing, ", ")))
	}

	// Coverage: only meaningful when the root "attack" span is among the
	// required names; the remaining required names are its phases.
	// Coverage-extra names join the phase set without being required —
	// they only run on some configurations (e.g. "calibrate" appears only
	// when the SAT/sim crossover auto-calibrates), but when present their
	// time is attack time and must count.
	phases := make(map[string]bool)
	var wantAttack bool
	requiredPhases := 0
	for _, name := range required {
		switch name = strings.TrimSpace(name); name {
		case "":
		case "attack":
			wantAttack = true
		default:
			phases[name] = true
			requiredPhases++
		}
	}
	for _, name := range strings.Split(*extra, ",") {
		if name = strings.TrimSpace(name); name != "" && name != "attack" {
			phases[name] = true
		}
	}
	minCoverage := 1.0
	// Coverage is enforced only when the caller required at least one
	// phase alongside "attack": extras widen the covering set but must
	// never switch the check on by themselves — `-require attack` alone
	// (the interrupted-run smoke) would otherwise demand that the
	// conditional calibrate span cover the whole attack.
	if wantAttack && requiredPhases > 0 {
		for _, root := range events {
			if root.Name != "attack" || root.Ph != "X" || root.Dur <= 0 {
				continue
			}
			var covered float64
			end := root.Ts + root.Dur
			for _, ev := range events {
				if phases[ev.Name] && ev.Ts >= root.Ts && ev.Ts+ev.Dur <= end+1 {
					covered += ev.Dur
				}
			}
			allowance := *tolerance * root.Dur
			if s := float64(*slack) / float64(time.Microsecond); s > allowance {
				allowance = s
			}
			if covered < root.Dur-allowance {
				fail(fmt.Errorf("%s: attack span at ts=%.0fµs lasts %.0fµs but its phases cover only %.0fµs (allowance %.0fµs)",
					*in, root.Ts, root.Dur, covered, allowance))
			}
			if c := covered / root.Dur; c < minCoverage {
				minCoverage = c
			}
		}
	}

	fmt.Printf("tracecheck: OK — %d events, %d required spans present, phase coverage ≥ %.1f%%\n",
		len(events), len(required), minCoverage*100)
}

// busEvent mirrors the fields of one internal/events NDJSON line that
// the checks read.
type busEvent struct {
	Seq      uint64            `json:"seq"`
	TS       int64             `json:"ts_ms"`
	Type     string            `json:"type"`
	Phase    string            `json:"phase"`
	Count    uint64            `json:"count"`
	Fraction float64           `json:"fraction"`
	Fields   map[string]string `json:"fields"`
}

// checkEvents validates an -events-out NDJSON stream's structural
// invariants: parseable lines, strictly increasing seq, phase enters
// before exits, monotone DIP counts within each enumeration round
// (a hypothesis restart starts a fresh round with a fresh set, so the
// baseline resets when the event's round field changes), and a
// terminal done event.
func checkEvents(path string) {
	data, err := os.ReadFile(path)
	failIf(err)
	var (
		evs      []busEvent
		lastSeq  uint64
		lastDIPs uint64
		dipRound string
		entered  = make(map[string]int)
	)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var ev busEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			fail(fmt.Errorf("%s:%d: bad event line: %v", path, i+1, err))
		}
		if ev.Type == "" || ev.Seq == 0 || ev.TS == 0 {
			fail(fmt.Errorf("%s:%d: event missing type/seq/ts_ms: %s", path, i+1, line))
		}
		if ev.Seq <= lastSeq {
			fail(fmt.Errorf("%s:%d: seq %d does not increase past %d", path, i+1, ev.Seq, lastSeq))
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "phase_enter":
			entered[ev.Phase]++
		case "phase_exit":
			entered[ev.Phase]--
			if entered[ev.Phase] < 0 {
				fail(fmt.Errorf("%s:%d: phase %q exits before entering", path, i+1, ev.Phase))
			}
		case "dip_progress":
			if round := ev.Fields["round"]; round != dipRound {
				dipRound, lastDIPs = round, 0
			}
			if ev.Count > 0 {
				if ev.Count < lastDIPs {
					fail(fmt.Errorf("%s:%d: DIP count regressed %d → %d within round %q", path, i+1, lastDIPs, ev.Count, dipRound))
				}
				lastDIPs = ev.Count
			}
		}
		evs = append(evs, ev)
	}
	if len(evs) == 0 {
		fail(fmt.Errorf("%s: event stream is empty", path))
	}
	last := evs[len(evs)-1]
	if last.Type != "done" {
		fail(fmt.Errorf("%s: stream ends with %q, want a terminal done event", path, last.Type))
	}
	if last.Fraction != 1 {
		fail(fmt.Errorf("%s: done event fraction %v, want 1", path, last.Fraction))
	}
	fmt.Printf("tracecheck: OK — %d events, seq monotone, phases balanced, terminal done\n", len(evs))
}

func failIf(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
