package engine

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// This file generalizes the engine beyond the CAS block enumeration: a
// Session is a scoped free-key query window over the persistent miter —
// the shape the classic SAT attack and AppSAT need (find a DIP with both
// keys free, constrain both key copies to the oracle's answer, extract a
// key when the DIPs run out) — and EnumerateWitnesses /
// EnumerateSensitizations cover the bypass and key-sensitization
// attacks. All of them fix structure purely with assumptions and scoped
// clauses, so one warm engine serves any mix of attacks back to back:
// the encoding is paid once and learned clauses survive every phase.

// guardedSink feeds a Tseitin encoding into the solver's open blocking
// scope: auxiliary variables are ordinary fresh variables, but every
// clause is guarded by the scope's activation literal, so the whole
// encoded copy is retracted when the scope retires. This is what lets a
// session add per-DIP IO-constraint copies of the locked circuit without
// poisoning the engine for the next attack.
type guardedSink struct{ s *sat.Solver }

func (g guardedSink) NewVar() cnf.Lit     { return g.s.NewVar() }
func (g guardedSink) Add(lits ...cnf.Lit) { g.s.PushBlocking(lits...) }

// Session is an assumption-scoped query window for oracle-guided
// attacks that treat both key copies as free variables. All constraints
// added through the session live in one blocking scope and are retired
// by Close, so the engine survives the session unmodified except for
// learned clauses (which is the point). At most one session — or one
// enumeration call — may hold the engine's blocking scope at a time.
type Session struct {
	e      *Engine
	act    cnf.Lit
	flush  func()
	budget uint64 // per-solve conflict cap; 0 = unbudgeted (or deadline-sliced)
	closed bool
}

// OpenSession opens a scoped free-key session. The caller must Close it
// (idempotent) before issuing any other engine query.
func (e *Engine) OpenSession() (*Session, error) {
	if err := e.ensure(); err != nil {
		return nil, err
	}
	if err := e.acquireScope(); err != nil {
		return nil, err
	}
	flush := e.beginSession("engine_session")
	e.tel.Counter("engine_sessions_total").Inc()
	return &Session{e: e, act: e.solver.BlockingLit(), flush: flush}, nil
}

// SetConflictBudget caps each individual solve of this session (0 =
// unlimited), mirroring the legacy attacks' per-call ConflictBudget.
func (s *Session) SetConflictBudget(n uint64) { s.budget = n }

// solve runs one session query. With an explicit per-solve budget the
// call is a single budgeted Solve whose Unknown is surfaced to the
// caller; otherwise the budgeter slices the solve against the context
// deadline and Unknown only escapes as a context error.
func (s *Session) solve(assume []cnf.Lit) (sat.Status, error) {
	e := s.e
	if s.budget > 0 {
		if e.preSolve != nil {
			e.preSolve()
		}
		e.solver.ConflictBudget = s.budget
		defer func() { e.solver.ConflictBudget = 0 }()
		return e.solver.Solve(assume...), nil
	}
	return e.solveSliced(assume)
}

// FindDIP searches for a distinguishing input pattern: an assignment of
// the primary inputs on which the two free-key copies can be made to
// disagree. It returns the full input vector and sat.Sat, or (nil,
// sat.Unsat) when no further DIP exists under the accumulated
// constraints, or (nil, sat.Unknown) when the session's conflict budget
// expired first.
func (s *Session) FindDIP() ([]bool, sat.Status, error) {
	if s.closed {
		return nil, sat.Unknown, fmt.Errorf("engine: session is closed")
	}
	e := s.e
	assume := append(e.assume[:0], s.act, e.diff)
	e.assume = assume
	st, err := s.solve(assume)
	if err != nil || st != sat.Sat {
		return nil, st, err
	}
	dip := make([]bool, len(e.inputs))
	for i, l := range e.inputs {
		dip[i] = e.solver.ModelValue(l)
	}
	return dip, sat.Sat, nil
}

// Constrain encodes two fresh copies of the locked circuit — one tied to
// each key copy — with inputs fixed to in and outputs fixed to out: the
// classic SAT-attack IO constraint, forcing both hypothesis keys to
// reproduce the oracle on this pattern. All clauses (including the
// key-tie and IO units) are scope-guarded, so Close retracts them.
func (s *Session) Constrain(in, out []bool) error {
	if s.closed {
		return fmt.Errorf("engine: session is closed")
	}
	e := s.e
	if len(in) != len(e.inputs) {
		return fmt.Errorf("engine: constraint input width %d, circuit has %d inputs", len(in), len(e.inputs))
	}
	sink := guardedSink{e.solver}
	for _, keys := range [][]cnf.Lit{e.keysA, e.keysB} {
		enc, err := cnf.EncodeInto(e.locked, sink)
		if err != nil {
			return err
		}
		for i, kl := range enc.KeyLits(e.locked) {
			sink.Add(kl.Neg(), keys[i])
			sink.Add(kl, keys[i].Neg())
		}
		for i, il := range enc.InputLits(e.locked) {
			sink.Add(signLit(il, in[i]))
		}
		for i, ol := range enc.OutputLits(e.locked) {
			sink.Add(signLit(ol, out[i]))
		}
	}
	e.tel.Counter("engine_session_constraints_total").Inc()
	return nil
}

// ExtractKey returns the lexicographically smallest key satisfying the
// accumulated constraints: once FindDIP returns Unsat, the satisfying
// keys are exactly the functionally correct keys, so the lex-min one is
// a canonical representative — independent of solver configuration,
// clause persistence, portfolio membership, and of which DIP sequence
// produced the constraints. This is what lets the engine and legacy
// paths return bit-identical keys even though their CDCL trajectories
// differ. Each bit costs one incremental solve on the already-solved
// formula. Returns sat.Unknown when the budget expired mid-extraction.
func (s *Session) ExtractKey() ([]bool, sat.Status, error) {
	if s.closed {
		return nil, sat.Unknown, fmt.Errorf("engine: session is closed")
	}
	e := s.e
	assume := append(e.assume[:0], s.act)
	st, err := s.solve(assume)
	if err != nil || st != sat.Sat {
		e.assume = assume
		return nil, st, err
	}
	key := make([]bool, e.nKeys)
	for i, l := range e.keysA {
		st, err := s.solve(append(assume, l.Neg()))
		if err != nil || st == sat.Unknown {
			e.assume = assume
			return nil, st, err
		}
		if st == sat.Sat {
			assume = append(assume, l.Neg())
		} else {
			key[i] = true
			assume = append(assume, l)
		}
	}
	e.assume = assume
	return key, sat.Sat, nil
}

// Close retires the session's blocking scope (retracting every
// constraint) and folds its solver work into the engine's telemetry.
// Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.e.solver.ConflictBudget = 0
	s.e.retireScope()
	s.e.releaseScope()
	s.flush()
}

// acquireScope reserves the engine's single blocking scope for a
// session, so a forgotten Close cannot silently corrupt a later
// enumeration (the solver has exactly one open scope at a time).
func (e *Engine) acquireScope() error {
	if e.scopeHeld {
		return fmt.Errorf("engine: blocking scope already held by an open session")
	}
	e.scopeHeld = true
	return nil
}

func (e *Engine) releaseScope() { e.scopeHeld = false }

// solveSliced runs one assumption query to a verdict under the
// budgeter: with no context it is a single unbudgeted Solve; with one,
// conflict-budgeted slices poll cancellation between expiries.
func (e *Engine) solveSliced(assume []cnf.Lit) (sat.Status, error) {
	defer func() { e.solver.ConflictBudget = 0 }()
	for {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return sat.Unknown, err
			}
		}
		if e.preSolve != nil {
			e.preSolve()
		}
		e.solver.ConflictBudget = e.bud.slice(e.ctx, e.solver.Stats().Conflicts)
		st := e.solver.Solve(assume...)
		if st == sat.Unknown {
			continue // slice expired; the context check above decides
		}
		return st, nil
	}
}

// EnumerateWitnesses enumerates every full primary-input pattern on
// which the locked circuit disagrees under keyA versus keyB — the
// bypass attack's correction set. Both keys are fixed by assumptions
// and found witnesses are excluded with scope-guarded blocking clauses;
// visit returning false stops early. The witness set is determined by
// the circuit and the key pair, so enumeration order is the only thing
// solver heuristics can change.
func (e *Engine) EnumerateWitnesses(keyA, keyB []bool, visit func(pattern []bool) bool) error {
	if err := e.ensure(); err != nil {
		return err
	}
	if err := e.checkKeys(keyA, keyB); err != nil {
		return err
	}
	if err := e.acquireScope(); err != nil {
		return err
	}
	defer e.releaseScope()
	flush := e.beginSession("engine_witnesses")
	defer flush()
	defer e.retireScope()

	act := e.solver.BlockingLit()
	assume := e.keyAssumptions(e.assume[:0], keyA, keyB)
	assume = append(assume, act, e.diff)
	e.assume = assume

	pat := make([]bool, len(e.inputs))
	for {
		st, err := e.solveSliced(assume)
		if err != nil {
			return err
		}
		if st == sat.Unsat {
			return nil
		}
		blocking := e.blocking[:0]
		for i, l := range e.inputs {
			pat[i] = e.solver.ModelValue(l)
			blocking = append(blocking, signLit(l, !pat[i]))
		}
		e.blocking = blocking
		e.tel.Counter("engine_witnesses_total").Inc()
		if !visit(pat) {
			return nil
		}
		e.solver.PushBlocking(blocking...)
	}
}

// ensureKeyEq lazily allocates one guard literal per key bit with the
// permanent clauses eq_i → (keyA_i = keyB_i). Assuming a subset of the
// guards equates exactly those bits across the copies — the
// sensitization attack's "all background bits shared" constraint —
// while leaving the clauses inert for every other query.
func (e *Engine) ensureKeyEq() {
	if e.keyEq != nil {
		return
	}
	e.keyEq = make([]cnf.Lit, e.nKeys)
	for i := range e.keyEq {
		eq := e.solver.NewAuxVar()
		e.keyEq[i] = eq
		e.solver.Add(eq.Neg(), e.keysA[i].Neg(), e.keysB[i])
		e.solver.Add(eq.Neg(), e.keysA[i], e.keysB[i].Neg())
	}
}

// EnumerateSensitizations proposes input patterns that can expose key
// bit `bit`: assignments where the two copies — sharing every key bit
// except the target, which is 0 in copy A and 1 in copy B — disagree at
// an output. Each candidate is blocked within the call's scope; visit
// returning false stops the proposal stream (the caller verifies the
// muting property by simulation and stops when satisfied).
func (e *Engine) EnumerateSensitizations(bit int, visit func(pattern []bool) bool) error {
	if err := e.ensure(); err != nil {
		return err
	}
	if bit < 0 || bit >= e.nKeys {
		return fmt.Errorf("engine: key bit %d outside width %d", bit, e.nKeys)
	}
	if err := e.acquireScope(); err != nil {
		return err
	}
	defer e.releaseScope()
	e.ensureKeyEq()
	flush := e.beginSession("engine_sensitize")
	defer flush()
	defer e.retireScope()

	act := e.solver.BlockingLit()
	assume := e.assume[:0]
	for i, eq := range e.keyEq {
		if i == bit {
			continue
		}
		assume = append(assume, eq)
	}
	assume = append(assume, e.keysA[bit].Neg(), e.keysB[bit], act, e.diff)
	e.assume = assume

	pat := make([]bool, len(e.inputs))
	for {
		st, err := e.solveSliced(assume)
		if err != nil {
			return err
		}
		if st == sat.Unsat {
			return nil
		}
		blocking := e.blocking[:0]
		for i, l := range e.inputs {
			pat[i] = e.solver.ModelValue(l)
			blocking = append(blocking, signLit(l, !pat[i]))
		}
		e.blocking = blocking
		e.tel.Counter("engine_sensitize_candidates_total").Inc()
		if !visit(pat) {
			return nil
		}
		e.solver.PushBlocking(blocking...)
	}
}
