package satattack

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func host(t *testing.T, inputs int) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: inputs, Outputs: 3, Gates: 45, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSATAttackBreaksRLL(t *testing.T) {
	h := host(t, 10)
	locked, _, err := lock.ApplyRLL(h, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.MustNewSim(h)
	res, err := Run(locked.Circuit, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("attack did not complete on RLL")
	}
	ok, err := miter.ProveUnlocked(locked.Circuit, res.Key, h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("recovered key %v is not correct", res.Key)
	}
	if res.Iterations > 1<<10 {
		t.Errorf("suspiciously many iterations: %d", res.Iterations)
	}
}

func TestSATAttackBreaksSmallCAS(t *testing.T) {
	// CAS-Lock with a tiny block is still brute-forceable by the SAT
	// attack; the point of the scheme is the exponential blow-up, which
	// TestSATAttackIterationGrowth demonstrates.
	h := host(t, 10)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.MustNewSim(h)
	res, err := Run(locked.Circuit, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("attack did not complete on 4-input CAS")
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Errorf("recovered key %v not a correct CAS key", res.Key)
	}
}

func TestSATAttackIterationGrowth(t *testing.T) {
	// The number of DIP iterations on Anti-SAT/CAS style locking grows
	// exponentially with the block width: that is the defense's design
	// point and the reason the paper's attack matters.
	h := host(t, 12)
	iters := make(map[int]int)
	for _, n := range []int{3, 5, 7} {
		locked, _, err := lock.ApplyAntiSAT(h, n, 9)
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.MustNewSim(h)
		res, err := Run(locked.Circuit, orc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("n=%d: did not complete", n)
		}
		iters[n] = res.Iterations
	}
	if !(iters[3] < iters[5] && iters[5] < iters[7]) {
		t.Errorf("iterations not growing: %v", iters)
	}
	// Anti-SAT guarantees ≥ 2^(n-1)-ish DIPs; check the trend is
	// at least superlinear.
	if iters[7] < 4*iters[3] {
		t.Errorf("growth too shallow: %v", iters)
	}
}

func TestSATAttackRespectsIterationCap(t *testing.T) {
	h := host(t, 12)
	locked, _, err := lock.ApplyAntiSAT(h, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.MustNewSim(h)
	res, err := Run(locked.Circuit, orc, Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("10-input Anti-SAT cracked in 5 iterations — should be impossible")
	}
	if res.Iterations != 5 || res.Key != nil {
		t.Errorf("cap not honored: %d iterations, key %v", res.Iterations, res.Key)
	}
}

func TestSATAttackShapeMismatch(t *testing.T) {
	h := host(t, 10)
	locked, _, err := lock.ApplyRLL(h, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := host(t, 10)
	small, err := synth.Generate(synth.Config{Name: "s", Inputs: 4, Outputs: 1, Gates: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	if _, err := Run(locked.Circuit, oracle.MustNewSim(small), Options{}); err == nil {
		t.Error("oracle shape mismatch accepted")
	}
}

func TestSATAttackOracleQueryAccounting(t *testing.T) {
	h := host(t, 10)
	locked, _, err := lock.ApplyRLL(h, 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.MustNewSim(h)
	res, err := Run(locked.Circuit, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleQueries != uint64(res.Iterations) {
		t.Errorf("oracle queries %d != iterations %d", res.OracleQueries, res.Iterations)
	}
}
