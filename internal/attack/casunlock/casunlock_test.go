package casunlock

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func host(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: 10, Outputs: 2, Gates: 35, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allSame(typ netlist.GateType, n int) []netlist.GateType {
	out := make([]netlist.GateType, n)
	for i := range out {
		out[i] = typ
	}
	return out
}

func TestCASUnlockSucceedsOnDegenerateInstance(t *testing.T) {
	// All-XOR key gates in both blocks: the misinterpretation CAS-Unlock
	// was built on. Uniform all-0 keys unlock this instance.
	h := host(t)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain:     lock.MustParseChain("A-O-2A"),
		KeyGates1: allSame(netlist.Xor, 5),
		KeyGates2: allSame(netlist.Xor, 5),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(locked.Circuit, oracle.MustNewSim(h), 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatal("CAS-Unlock failed on the all-XOR instance it is supposed to break")
	}
	ok, err := miter.ProveUnlocked(locked.Circuit, res.Key, h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("probe-matched key is not actually correct")
	}
}

func TestCASUnlockFailsInGeneral(t *testing.T) {
	// Mixed key-gate polarities (the real CAS-Lock construction): none
	// of the four uniform keys can work, as shown in "Defeating
	// CAS-Unlock". We verify over several seeds; any uniform key that
	// happens to probe-match must fail the exact equivalence check.
	h := host(t)
	kg1 := []netlist.GateType{netlist.Xor, netlist.Xnor, netlist.Xor, netlist.Xnor, netlist.Xor}
	kg2 := []netlist.GateType{netlist.Xnor, netlist.Xor, netlist.Xor, netlist.Xor, netlist.Xnor}
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain:     lock.MustParseChain("A-O-2A"),
		KeyGates1: kg1,
		KeyGates2: kg2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(locked.Circuit, oracle.MustNewSim(h), 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		ok, err := miter.ProveUnlocked(locked.Circuit, res.Key, h)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("uniform key exactly unlocked a mixed-polarity CAS instance")
		}
	}
	if len(res.Tried) != 4 {
		t.Errorf("tried %d candidates, want 4", len(res.Tried))
	}
}

func TestCASUnlockValidation(t *testing.T) {
	h := host(t)
	if _, err := Run(h, oracle.MustNewSim(h), 10, 1); err == nil {
		t.Error("key-free circuit accepted")
	}
}
