package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/attack/appsat"
	"repro/internal/attack/casunlock"
	"repro/internal/attack/satattack"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// ComparisonResult contrasts the baseline SAT attack, CAS-Unlock and the
// paper's DIP-learning attack on one CAS-Lock instance.
type ComparisonResult struct {
	BlockWidth int
	Chain      string

	SATCompleted  bool
	SATIterations int
	SATTime       time.Duration

	CASUnlockSucceeded bool

	// AppSATExact is true when AppSAT terminated with a proven key;
	// AppSATKeyCorrect whether its (possibly approximate) key actually
	// unlocks the design.
	AppSATExact      bool
	AppSATKeyCorrect bool
	AppSATError      float64

	DIPKeyRecovered bool
	DIPCount        uint64
	DIPTime         time.Duration
	DIPQueries      uint64
}

// RunComparison locks one host and mounts all three attacks. satCap
// bounds the SAT attack's iterations so the experiment terminates on
// SAT-resilient instances (the point of CAS-Lock).
func RunComparison(hostInputs int, chainCfg string, satCap int, seed int64) (*ComparisonResult, error) {
	return RunComparisonT(nil, hostInputs, chainCfg, satCap, seed)
}

// RunComparisonT is RunComparison with an explicit telemetry registry.
// Per-attack wall times (SATTime, DIPTime) are span durations, so the
// reported numbers and any exported trace come from the same clock; a
// nil registry gets a private one, keeping the timing path identical.
func RunComparisonT(tel *telemetry.Registry, hostInputs int, chainCfg string, satCap int, seed int64) (*ComparisonResult, error) {
	if tel == nil {
		tel = telemetry.New()
	}
	chain, err := lock.ParseChain(chainCfg)
	if err != nil {
		return nil, err
	}
	host, err := synth.Generate(synth.Config{
		Name: "cmp", Inputs: hostInputs, Outputs: 4, Gates: 60, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	locked, inst, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	res := &ComparisonResult{BlockWidth: chain.NumInputs(), Chain: chainCfg}

	// Baseline 1: oracle-guided SAT attack.
	sp := tel.StartSpan("sat_attack")
	satRes, err := satattack.Run(locked.Circuit, oracle.MustNewSim(host), satattack.Options{MaxIterations: satCap})
	res.SATTime = sp.End()
	if err != nil {
		return nil, err
	}
	res.SATCompleted = satRes.Completed
	res.SATIterations = satRes.Iterations

	// Baseline 2: CAS-Unlock's uniform keys.
	cuRes, err := casunlock.Run(locked.Circuit, oracle.MustNewSim(host), 300, seed+2)
	if err != nil {
		return nil, err
	}
	if cuRes.Succeeded {
		ok, err := miter.ProveUnlockedHashed(locked.Circuit, cuRes.Key, host)
		if err != nil {
			return nil, err
		}
		res.CASUnlockSucceeded = ok
	}

	// Baseline 3: AppSAT settles for an approximate key on
	// low-corruptibility locking.
	asRes, err := appsat.Run(locked.Circuit, oracle.MustNewSim(host), appsat.Options{
		Seed: seed + 4, MaxIterations: satCap,
	})
	if err != nil {
		return nil, err
	}
	res.AppSATExact = asRes.Exact
	res.AppSATError = asRes.ErrorEstimate
	res.AppSATKeyCorrect = inst.IsCorrectCASKey(asRes.Key)

	// The paper's attack.
	sp = tel.StartSpan("dip_attack")
	dipRes, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(host), Seed: seed + 3, Telemetry: tel})
	res.DIPTime = sp.End()
	if err != nil {
		return nil, err
	}
	res.DIPCount = dipRes.TotalDIPs
	res.DIPQueries = dipRes.OracleQueries
	res.DIPKeyRecovered = inst.IsCorrectCASKey(dipRes.Key)
	return res, nil
}

// Lemma2Result records one empirical verification of the closed form.
type Lemma2Result struct {
	Chain       string
	Predicted   uint64
	Measured    uint64 // aligned DIP-set size |A| from a real extraction
	TotalDIPs   uint64
	KeyGateMode string // "aligned" or "independent"
	Match       bool
}

// VerifyLemma2 locks random instances over random chains and compares
// the structured DIP-class size against the closed form. Both key-gate
// regimes are exercised: aligned polarities reproduce the paper's exact
// |I_l| counts; independent polarities still satisfy the class-size law
// the attack relies on.
func VerifyLemma2(trials, maxWidth int, seed int64) ([]Lemma2Result, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []Lemma2Result
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(maxWidth-3)
		chain := make(lock.ChainConfig, n-1)
		for i := range chain {
			if rng.Intn(2) == 0 {
				chain[i] = lock.ChainOr
			}
		}
		host, err := synth.Generate(synth.Config{
			Name: "l2", Inputs: n + 2, Outputs: 3, Gates: 40, Seed: rng.Int63(),
		})
		if err != nil {
			return nil, err
		}
		aligned := trial%2 == 0
		opts := lock.CASOptions{Chain: chain, Seed: rng.Int63()}
		mode := "independent"
		if aligned {
			kg := randomKeyGates(n, rng.Int63())
			opts.KeyGates1 = kg
			opts.KeyGates2 = append([]netlist.GateType(nil), kg...)
			mode = "aligned"
		}
		locked, _, err := lock.ApplyCAS(host, opts)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(host), Seed: rng.Int63()})
		if err != nil {
			return nil, err
		}
		// The structured class size equals the closed form evaluated on
		// the AND-terminated member of the {chain, dual} description pair
		// (Case 1 reports the primal chain, Case 2 the dual's primal).
		h := res.Chain
		if res.Case == 2 {
			h = dual(h)
		}
		predicted := core.MaxDIPs(h)
		out = append(out, Lemma2Result{
			Chain:       chain.String(),
			Predicted:   predicted,
			Measured:    res.AlignedDIPs,
			TotalDIPs:   res.TotalDIPs,
			KeyGateMode: mode,
			Match:       res.AlignedDIPs == predicted,
		})
	}
	return out, nil
}

// ScalingPoint measures attack cost against the DIP-set size.
type ScalingPoint struct {
	Chain         string
	DIPs          uint64
	OracleQueries uint64
	Time          time.Duration
}

// RunScaling sweeps chain configurations with growing DIP counts on one
// host, demonstrating the O(m) complexity claim.
func RunScaling(hostInputs int, chains []string, seed int64) ([]ScalingPoint, error) {
	return RunScalingT(nil, hostInputs, chains, seed)
}

// RunScalingT is RunScaling with an explicit telemetry registry; each
// sweep point's Time is the duration of its "scaling_point" span.
func RunScalingT(tel *telemetry.Registry, hostInputs int, chains []string, seed int64) ([]ScalingPoint, error) {
	if tel == nil {
		tel = telemetry.New()
	}
	host, err := synth.Generate(synth.Config{
		Name: "scale", Inputs: hostInputs, Outputs: 4, Gates: 60, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, cfg := range chains {
		chain, err := lock.ParseChain(cfg)
		if err != nil {
			return nil, err
		}
		// Aligned key-gate polarities keep |I_l| equal to the closed form
		// so the sweep is exactly the Lemma-2 series.
		kg := randomKeyGates(chain.NumInputs(), seed)
		locked, inst, err := lock.ApplyCAS(host, lock.CASOptions{
			Chain: chain, Seed: seed + 1,
			KeyGates1: kg, KeyGates2: append([]netlist.GateType(nil), kg...),
		})
		if err != nil {
			return nil, err
		}
		sp := tel.StartSpan("scaling_point")
		sp.SetArg("chain", cfg)
		res, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(host), Seed: seed + 2, Telemetry: tel})
		elapsed := sp.End()
		if err != nil {
			return nil, err
		}
		if !inst.IsCorrectCASKey(res.Key) {
			return nil, fmt.Errorf("experiments: scaling run on %s recovered a wrong key", cfg)
		}
		out = append(out, ScalingPoint{
			Chain:         cfg,
			DIPs:          res.TotalDIPs,
			OracleQueries: res.OracleQueries,
			Time:          elapsed,
		})
	}
	return out, nil
}

// MCASResult reports the Mirrored CAS-Lock experiment.
type MCASExperimentResult struct {
	Chain       string
	InnerKeyOK  bool
	FullKeyOK   bool
	KeyProven   bool
	RemovedProb float64
	InnerDIPs   uint64
	Time        time.Duration
}

// RunMCASExperiment locks a host with M-CAS, strips the outer instance
// with the SPS removal attack and recovers the inner key with the
// DIP-learning attack, then proves the mirrored key unlocks the original
// circuit.
func RunMCASExperiment(hostInputs int, chainCfg string, seed int64) (*MCASExperimentResult, error) {
	return RunMCASExperimentT(nil, hostInputs, chainCfg, seed)
}

// RunMCASExperimentT is RunMCASExperiment with an explicit telemetry
// registry; Time is the duration of the "mcas_attack" span.
func RunMCASExperimentT(tel *telemetry.Registry, hostInputs int, chainCfg string, seed int64) (*MCASExperimentResult, error) {
	if tel == nil {
		tel = telemetry.New()
	}
	chain, err := lock.ParseChain(chainCfg)
	if err != nil {
		return nil, err
	}
	host, err := synth.Generate(synth.Config{
		Name: "mcas", Inputs: hostInputs, Outputs: 4, Gates: 60, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	locked, inst, err := lock.ApplyMCAS(host, lock.CASOptions{Chain: chain, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	sp := tel.StartSpan("mcas_attack")
	res, err := core.RunMCAS(locked.Circuit, oracle.MustNewSim(host), core.Options{Seed: seed + 2, Telemetry: tel})
	elapsed := sp.End()
	if err != nil {
		return nil, err
	}
	proven, err := miter.ProveUnlockedHashed(locked.Circuit, res.Key, host)
	if err != nil {
		return nil, err
	}
	return &MCASExperimentResult{
		Chain:       chainCfg,
		InnerKeyOK:  inst.Inner.IsCorrectCASKey(res.Inner.Key),
		FullKeyOK:   inst.IsCorrectMCASKey(res.Key),
		KeyProven:   proven,
		RemovedProb: res.RemovedFlipProb,
		InnerDIPs:   res.Inner.TotalDIPs,
		Time:        elapsed,
	}, nil
}
