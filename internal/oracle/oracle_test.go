package oracle

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/netlist"
)

func buildPlain() *netlist.Circuit {
	c := netlist.New("plain")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	g := c.MustAddGate(And, "g", a, b)
	c.MustMarkOutput(g)
	return c
}

// And aliases keep tests short.
const And = netlist.And

func buildLocked() *netlist.Circuit {
	c := netlist.New("locked")
	a := c.MustAddInput("a")
	k := c.MustAddKey("keyinput0")
	g := c.MustAddGate(netlist.Xor, "g", a, k)
	c.MustMarkOutput(g)
	return c
}

func TestNewSimRejectsLocked(t *testing.T) {
	if _, err := NewSim(buildLocked()); err == nil {
		t.Error("locked circuit accepted as oracle")
	}
}

func TestQueryAndCounting(t *testing.T) {
	o := MustNewSim(buildPlain())
	if o.NumInputs() != 2 || o.NumOutputs() != 1 {
		t.Fatal("port widths wrong")
	}
	out, err := o.Query([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("AND(1,1) = 0")
	}
	if _, err := o.Query64([]uint64{0xF0, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if o.Queries() != 65 || o.Calls() != 2 {
		t.Errorf("queries=%d calls=%d", o.Queries(), o.Calls())
	}
}

func TestQuery64CopiesBuffer(t *testing.T) {
	o := MustNewSim(buildPlain())
	a, _ := o.Query64([]uint64{^uint64(0), ^uint64(0)})
	b, _ := o.Query64([]uint64{0, 0})
	if a[0] != ^uint64(0) || b[0] != 0 {
		t.Error("Query64 results alias an internal buffer")
	}
}

func TestEvalMany(t *testing.T) {
	o := MustNewSim(buildPlain())
	outs, err := o.EvalMany([][]uint64{
		{^uint64(0), ^uint64(0)},
		{0xF0, 0xFF},
		{0, ^uint64(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{^uint64(0), 0xF0, 0}
	for i, w := range want {
		if outs[i][0] != w {
			t.Errorf("batch %d: got %x, want %x", i, outs[i][0], w)
		}
	}
	if o.Queries() != 3*64 || o.Calls() != 3 {
		t.Errorf("queries=%d calls=%d", o.Queries(), o.Calls())
	}
}

// TestConcurrentQueries hammers one Sim from many goroutines mixing all
// three query paths; run under -race this certifies the pool keeps the
// single-goroutine simulators private and the counters atomic.
func TestConcurrentQueries(t *testing.T) {
	o := MustNewSim(buildPlain())
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				out, err := o.Query([]bool{true, true})
				if err != nil || !out[0] {
					t.Error("Query under concurrency")
					return
				}
				o64, err := o.Query64([]uint64{^uint64(0), 0xFF})
				if err != nil || o64[0] != 0xFF {
					t.Error("Query64 under concurrency")
					return
				}
				outs, err := o.EvalMany([][]uint64{{^uint64(0), ^uint64(0)}, {0, 0}})
				if err != nil || outs[0][0] != ^uint64(0) || outs[1][0] != 0 {
					t.Error("EvalMany under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := o.Queries(); got != workers*50*(1+64+128) {
		t.Errorf("queries = %d, want %d", got, workers*50*(1+64+128))
	}
}

func TestActivate(t *testing.T) {
	locked := buildLocked()
	// key=0 makes g = a XOR 0 = a.
	act, err := Activate(locked, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if act.NumKeys() != 0 {
		t.Fatal("activated circuit still has keys")
	}
	for _, v := range []bool{false, true} {
		out, err := act.Eval([]bool{v}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != v {
			t.Errorf("activated(key=0)(%v) = %v", v, out[0])
		}
	}
	// key=1 makes g = NOT a.
	act1, err := Activate(locked, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := act1.Eval([]bool{false}, nil)
	if !out[0] {
		t.Error("activated(key=1)(0) should be 1")
	}
}

func TestActivateKeyLengthMismatch(t *testing.T) {
	if _, err := Activate(buildLocked(), nil); err == nil {
		t.Error("short key accepted")
	}
	if _, err := Activate(buildLocked(), []bool{true, false}); err == nil {
		t.Error("long key accepted")
	}
}

func TestActivatePreservesOutputOrder(t *testing.T) {
	c := netlist.New("multi")
	a := c.MustAddInput("a")
	k := c.MustAddKey("keyinput0")
	g1 := c.MustAddGate(netlist.Xor, "g1", a, k)
	g2 := c.MustAddGate(netlist.Xnor, "g2", a, k)
	c.MustMarkOutput(g1)
	c.MustMarkOutput(g2)
	act, err := Activate(c, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := act.Eval([]bool{true}, nil)
	if !out[0] || out[1] {
		t.Error("output order scrambled by Activate")
	}
}

// TestEvalManyMatchesQuery64 drives the grouped 512-lane batch path with
// a batch count that is not a multiple of 8, so both the wide groups and
// the Run64 tail execute, and checks every word against per-batch
// Query64 on a second oracle.
func TestEvalManyMatchesQuery64(t *testing.T) {
	c := buildWide(t)
	batch := MustNewSim(c)
	single := MustNewSim(c)
	rng := rand.New(rand.NewSource(5))
	const nBatches = 19 // 2 full groups of 8 + a 3-batch tail
	ins := make([][]uint64, nBatches)
	for i := range ins {
		ins[i] = make([]uint64, c.NumInputs())
		for j := range ins[i] {
			ins[i][j] = rng.Uint64()
		}
	}
	outs, err := batch.EvalMany(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != nBatches {
		t.Fatalf("got %d output batches, want %d", len(outs), nBatches)
	}
	for i := range ins {
		want, err := single.Query64(ins[i])
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if outs[i][o] != want[o] {
				t.Errorf("batch %d out[%d] = %#x, want %#x", i, o, outs[i][o], want[o])
			}
		}
	}
	if batch.Queries() != nBatches*64 {
		t.Errorf("Queries = %d, want %d", batch.Queries(), nBatches*64)
	}
	// A short row anywhere in the group must fail loudly, not crash the
	// transpose.
	bad := append(append([][]uint64(nil), ins[:3]...), []uint64{1})
	if _, err := batch.EvalMany(bad); err == nil {
		t.Error("EvalMany accepted a short input row")
	}
}

// buildWide returns a multi-input multi-output circuit exercising more
// than one word per port in the grouped transpose.
func buildWide(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("wide")
	var ids []netlist.ID
	for i := 0; i < 9; i++ {
		ids = append(ids, c.MustAddInput(fmt.Sprintf("i%d", i)))
	}
	g1 := c.MustAddGate(netlist.And, "g1", ids[0], ids[1], ids[2])
	g2 := c.MustAddGate(netlist.Xor, "g2", ids[3], ids[4])
	g3 := c.MustAddGate(netlist.Nor, "g3", ids[5], ids[6], ids[7], ids[8])
	g4 := c.MustAddGate(netlist.Xnor, "g4", g1, g2)
	c.MustMarkOutput(g4)
	c.MustMarkOutput(g3)
	c.MustMarkOutput(g2)
	return c
}
