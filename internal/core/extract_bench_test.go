package core

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/synth"
)

// BenchmarkPreparedDiff measures the extraction hot loop on a 64-bit-key
// CAS cone (the kernel behind the paper's 2^32-pattern enumerations).
func BenchmarkPreparedDiff(b *testing.B) {
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: 40, Outputs: 4, Gates: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	chain := lock.MustParseChain("2A-O-2(4A-O)-2(2A-O)-12A")
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	ext, err := NewSimExtractor(locked.Circuit, layout, 3)
	if err != nil {
		b.Fatal(err)
	}
	assign := PairAssign{A: make([]bool, 64), B: make([]bool, 64)}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	p, err := ext.prepare(assign)
	if err != nil {
		b.Fatal(err)
	}
	block := make([]uint64, 32)
	for i := 0; i < 32 && i < 6; i++ {
		block[i] = lanePattern(i)
	}
	b.ReportMetric(float64(len(p.ops)), "ops")
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		block[7] = ^block[7]
		sink ^= p.diff(block)
	}
	_ = sink
	b.SetBytes(64 * 8)
}
