package netlist

import (
	"fmt"
	"sort"
)

// Circuit is a combinational gate-level netlist. Gates form a DAG; primary
// inputs and key inputs are both Input-type gates tracked in separate
// ordered lists so that locked circuits can distinguish the functional
// inputs from the key port. Outputs name the observable signals.
//
// The zero Circuit is empty and ready to use.
type Circuit struct {
	Name string

	gates   []Gate
	names   map[string]ID
	inputs  []ID // primary inputs, in declaration order
	keys    []ID // key inputs, in declaration order
	outputs []ID // primary outputs, in declaration order

	topo      []ID // cached topological order; nil when stale
	topoValid bool
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, names: make(map[string]ID)}
}

// NumGates returns the total number of gates (including inputs and keys).
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumKeys returns the number of key inputs.
func (c *Circuit) NumKeys() int { return len(c.keys) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// Inputs returns the primary-input gate IDs in declaration order. The
// returned slice is owned by the circuit and must not be modified.
func (c *Circuit) Inputs() []ID { return c.inputs }

// Keys returns the key-input gate IDs in declaration order. The returned
// slice is owned by the circuit and must not be modified.
func (c *Circuit) Keys() []ID { return c.keys }

// Outputs returns the primary-output gate IDs in declaration order. The
// returned slice is owned by the circuit and must not be modified.
func (c *Circuit) Outputs() []ID { return c.outputs }

// Gate returns the gate with the given ID. The returned pointer stays
// valid until the next AddGate call.
func (c *Circuit) Gate(id ID) *Gate {
	return &c.gates[id]
}

// Lookup returns the ID of the gate with the given name, or InvalidID.
func (c *Circuit) Lookup(name string) ID {
	if id, ok := c.names[name]; ok {
		return id
	}
	return InvalidID
}

// HasName reports whether a gate with the given name exists.
func (c *Circuit) HasName(name string) bool {
	_, ok := c.names[name]
	return ok
}

// AddGate appends a gate and returns its ID. The name must be unique and
// non-empty, all fanin IDs must already exist, and the fanin count must be
// legal for the type.
func (c *Circuit) AddGate(t GateType, name string, fanin ...ID) (ID, error) {
	if !t.Valid() {
		return InvalidID, fmt.Errorf("netlist: invalid gate type %d", uint8(t))
	}
	if name == "" {
		return InvalidID, fmt.Errorf("netlist: empty gate name")
	}
	if _, dup := c.names[name]; dup {
		return InvalidID, fmt.Errorf("netlist: duplicate gate name %q", name)
	}
	if n := len(fanin); n < t.MinFanin() || (t.MaxFanin() >= 0 && n > t.MaxFanin()) {
		return InvalidID, fmt.Errorf("netlist: gate %q: %s cannot take %d fanins", name, t, n)
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(c.gates) {
			return InvalidID, fmt.Errorf("netlist: gate %q: fanin %d does not exist", name, f)
		}
	}
	id := ID(len(c.gates))
	c.gates = append(c.gates, Gate{Type: t, Name: name, Fanin: append([]ID(nil), fanin...)})
	if c.names == nil {
		c.names = make(map[string]ID)
	}
	c.names[name] = id
	c.topoValid = false
	return id, nil
}

// MustAddGate is AddGate that panics on error; it is intended for
// programmatic construction where the inputs are known to be valid.
func (c *Circuit) MustAddGate(t GateType, name string, fanin ...ID) ID {
	id, err := c.AddGate(t, name, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddInput declares a new primary input and returns its ID.
func (c *Circuit) AddInput(name string) (ID, error) {
	id, err := c.AddGate(Input, name)
	if err != nil {
		return InvalidID, err
	}
	c.inputs = append(c.inputs, id)
	return id, nil
}

// MustAddInput is AddInput that panics on error.
func (c *Circuit) MustAddInput(name string) ID {
	id, err := c.AddInput(name)
	if err != nil {
		panic(err)
	}
	return id
}

// AddKey declares a new key input and returns its ID.
func (c *Circuit) AddKey(name string) (ID, error) {
	id, err := c.AddGate(Input, name)
	if err != nil {
		return InvalidID, err
	}
	c.keys = append(c.keys, id)
	return id, nil
}

// MustAddKey is AddKey that panics on error.
func (c *Circuit) MustAddKey(name string) ID {
	id, err := c.AddKey(name)
	if err != nil {
		panic(err)
	}
	return id
}

// MarkOutput appends an existing gate to the output list. A gate may be
// marked as output at most once.
func (c *Circuit) MarkOutput(id ID) error {
	if id < 0 || int(id) >= len(c.gates) {
		return fmt.Errorf("netlist: MarkOutput: gate %d does not exist", id)
	}
	for _, o := range c.outputs {
		if o == id {
			return fmt.Errorf("netlist: gate %q already marked as output", c.gates[id].Name)
		}
	}
	c.outputs = append(c.outputs, id)
	return nil
}

// MustMarkOutput is MarkOutput that panics on error.
func (c *Circuit) MustMarkOutput(id ID) {
	if err := c.MarkOutput(id); err != nil {
		panic(err)
	}
}

// ReplaceOutput swaps the output at position idx to refer to a different
// gate, preserving output ordering. Used when a locking scheme re-drives
// an output through new logic.
func (c *Circuit) ReplaceOutput(idx int, id ID) error {
	if idx < 0 || idx >= len(c.outputs) {
		return fmt.Errorf("netlist: ReplaceOutput: index %d out of range", idx)
	}
	if id < 0 || int(id) >= len(c.gates) {
		return fmt.Errorf("netlist: ReplaceOutput: gate %d does not exist", id)
	}
	c.outputs[idx] = id
	return nil
}

// Validate performs a full structural check: names resolve, fanin counts
// are legal, input/key/output lists reference existing gates of the right
// type, and the gate graph is acyclic.
func (c *Circuit) Validate() error {
	for id := range c.gates {
		g := &c.gates[id]
		if !g.Type.Valid() {
			return fmt.Errorf("netlist: gate %d has invalid type", id)
		}
		if g.Name == "" {
			return fmt.Errorf("netlist: gate %d has empty name", id)
		}
		if got, ok := c.names[g.Name]; !ok || got != ID(id) {
			return fmt.Errorf("netlist: gate %q name table mismatch", g.Name)
		}
		if n := len(g.Fanin); n < g.Type.MinFanin() || (g.Type.MaxFanin() >= 0 && n > g.Type.MaxFanin()) {
			return fmt.Errorf("netlist: gate %q: %s with %d fanins", g.Name, g.Type, n)
		}
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= len(c.gates) {
				return fmt.Errorf("netlist: gate %q: dangling fanin %d", g.Name, f)
			}
		}
	}
	seen := make(map[ID]bool, len(c.inputs)+len(c.keys))
	for _, id := range c.inputs {
		if c.gates[id].Type != Input {
			return fmt.Errorf("netlist: primary input %q is not an Input gate", c.gates[id].Name)
		}
		if seen[id] {
			return fmt.Errorf("netlist: input %q listed twice", c.gates[id].Name)
		}
		seen[id] = true
	}
	for _, id := range c.keys {
		if c.gates[id].Type != Input {
			return fmt.Errorf("netlist: key input %q is not an Input gate", c.gates[id].Name)
		}
		if seen[id] {
			return fmt.Errorf("netlist: key input %q listed twice (or clashes with a primary input)", c.gates[id].Name)
		}
		seen[id] = true
	}
	// Every Input-type gate must be registered as either a primary input
	// or a key input; otherwise evaluation would leave it undefined.
	for id := range c.gates {
		if c.gates[id].Type == Input && !seen[ID(id)] {
			return fmt.Errorf("netlist: input gate %q not registered as input or key", c.gates[id].Name)
		}
	}
	for _, id := range c.outputs {
		if id < 0 || int(id) >= len(c.gates) {
			return fmt.Errorf("netlist: output references missing gate %d", id)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// GateNames returns all gate names sorted lexicographically. Primarily a
// debugging and test aid.
func (c *Circuit) GateNames() []string {
	out := make([]string, 0, len(c.gates))
	for _, g := range c.gates {
		out = append(out, g.Name)
	}
	sort.Strings(out)
	return out
}

// FanoutCounts returns, for each gate, the number of gates that list it as
// a fanin (output markings do not count).
func (c *Circuit) FanoutCounts() []int {
	counts := make([]int, len(c.gates))
	for id := range c.gates {
		for _, f := range c.gates[id].Fanin {
			counts[f]++
		}
	}
	return counts
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit %q: %d inputs, %d keys, %d outputs, %d gates",
		c.Name, len(c.inputs), len(c.keys), len(c.outputs), len(c.gates))
}
