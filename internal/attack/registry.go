// Package attack is the attack registry: every attack this repository
// mounts against a locked netlist, addressable by a flag-friendly name,
// with a uniform Run contract over a shared mount Context. The
// experiment matrix, the CLIs and the service column-enumerate this
// registry instead of hard-coding attack switches, so adding an attack
// is one RegisterAttack call — the registry twin of the scheme registry
// in internal/lock.
//
// Verification semantics: an Outcome is Broken only when the attack's
// product is proven functionally — a recovered key must SAT-prove the
// unlocked circuit equivalent to the reference design, and a rebuilt
// circuit must SAT-prove equivalent outright. Golden-key comparison is
// deliberately absent: CAS-Lock admits 2^N correct keys and even RLL
// instances can admit several functional keys, so "is it the key we
// inserted" is the wrong question (see PAPERS.md, "On the One-Key
// Premise of Logic Locking"). The scheme's KeyCheck predicate serves as
// a cross-check annotation, not a veto — see Context.Verified.
package attack

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/attack/appsat"
	"repro/internal/attack/bypass"
	"repro/internal/attack/casunlock"
	"repro/internal/attack/satattack"
	"repro/internal/attack/sps"
	"repro/internal/core"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// Context is one attack mount: the locked instance, oracle access, the
// reference design for equivalence proofs, and the shared budget /
// plumbing knobs. Attacks read what they need and ignore the rest.
type Context struct {
	// Ctx bounds the mount; nil means context.Background().
	Ctx context.Context
	// Locked is the locked netlist under attack.
	Locked *netlist.Circuit
	// Host is the original design, used only to SAT-prove breaks.
	Host *netlist.Circuit
	// KeyCheck, when non-nil, is the scheme's ground-truth predicate
	// accepting any functional key (see lock.Scheme). It sharpens the
	// break verdict; equivalence proving still runs either way.
	KeyCheck func(key []bool) bool
	// MCAS routes the DIP-learning attack through its Mirrored-CAS
	// pipeline.
	MCAS bool
	// NewOracle builds a fresh oracle for the mount (decorated with
	// faults/resilience by the caller as desired).
	NewOracle func() oracle.Oracle
	// SATCap bounds SAT/AppSAT DIP iterations.
	SATCap int
	// Seed drives the attack's own sampling.
	Seed int64
	// Retries is the mismatch re-query budget for noisy oracles.
	Retries int
	// Telemetry instruments the mount (attack_*/engine_* families).
	Telemetry *telemetry.Registry
	// LegacySolver routes the classic attacks through their throwaway
	// per-run solvers instead of the persistent engine.
	LegacySolver bool
	// LegacyEncoding disables the persistent engine inside the
	// DIP-learning attack (see core.Options.LegacyEncoding).
	LegacyEncoding bool
	// SATWidthLimit pins the DIP-learning SAT/sim regime boundary.
	SATWidthLimit int
	// Portfolio, when > 0, races that many diversified engines in the
	// DIP-learning attack.
	Portfolio int
}

func (c *Context) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Prove SAT-proves that key unlocks the locked circuit into the host.
func (c *Context) Prove(key []bool) bool {
	ok, err := miter.ProveUnlockedHashed(c.Locked, key, c.Host)
	return err == nil && ok
}

// Verified is the break criterion for a recovered key: the SAT
// equivalence proof, which is sound and complete, is the sole judge.
// The scheme's KeyCheck deliberately does not get a veto — for schemes
// carrying a golden-equality check, attacks routinely recover a
// *different* functional key (lex-min extraction makes this the common
// case), and rejecting a proven break over key identity would repeat
// the one-key fallacy the scheme registry documents.
func (c *Context) Verified(key []bool) bool {
	return c.Prove(key)
}

// KeyNote annotates a proven break with the KeyCheck cross-check: empty
// when the scheme predicate agrees, a marker when the recovered key is
// functional but not one the predicate recognizes (a multi-key datum).
func (c *Context) KeyNote(key []bool) string {
	if c.KeyCheck != nil && !c.KeyCheck(key) {
		return ", non-golden key"
	}
	return ""
}

// Outcome is one attack mount's result. Attack errors are folded into
// Detail (an attack failing is a matrix datum, not an infrastructure
// error).
type Outcome struct {
	// Broken means the attack produced a proven functional break.
	Broken bool
	// Detail is a short human-readable outcome.
	Detail string
	// Key is the recovered key, when the attack produces one.
	Key []bool
}

// Attack is one registered attack.
type Attack struct {
	// Name is the stable flag/API identifier (lower-case, no spaces).
	Name string
	// Label is the display name used as a matrix column header.
	Label string
	// Description is a one-line summary for -list output.
	Description string
	// Servable marks attacks the long-running service accepts as jobs
	// (currently the checkpointable DIP-learning pipeline only).
	Servable bool
	// Run mounts the attack.
	Run func(c *Context) Outcome
}

var attackReg = struct {
	sync.RWMutex
	order  []string
	byName map[string]Attack
}{byName: make(map[string]Attack)}

// RegisterAttack adds an attack to the registry. Names and labels are
// matched case-insensitively by AttackByName; duplicates are rejected.
func RegisterAttack(a Attack) error {
	if a.Name == "" || a.Run == nil {
		return fmt.Errorf("attack: an attack needs a name and a Run function")
	}
	if a.Label == "" {
		a.Label = a.Name
	}
	key := strings.ToLower(a.Name)
	attackReg.Lock()
	defer attackReg.Unlock()
	if _, dup := attackReg.byName[key]; dup {
		return fmt.Errorf("attack: attack %q already registered", a.Name)
	}
	attackReg.byName[key] = a
	attackReg.order = append(attackReg.order, key)
	return nil
}

// MustRegisterAttack is RegisterAttack, panicking on error — for
// package-init registration of built-ins.
func MustRegisterAttack(a Attack) {
	if err := RegisterAttack(a); err != nil {
		panic(err)
	}
}

// Attacks returns every registered attack in registration order.
func Attacks() []Attack {
	attackReg.RLock()
	defer attackReg.RUnlock()
	out := make([]Attack, 0, len(attackReg.order))
	for _, k := range attackReg.order {
		out = append(out, attackReg.byName[k])
	}
	return out
}

// Labels returns the display labels in registration order — the matrix
// column order.
func Labels() []string {
	as := Attacks()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Label
	}
	return out
}

// Names returns the stable flag names in registration order.
func Names() []string {
	as := Attacks()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// AttackByName resolves an attack by Name or Label, case-insensitively.
func AttackByName(name string) (Attack, bool) {
	key := strings.ToLower(name)
	attackReg.RLock()
	defer attackReg.RUnlock()
	if a, ok := attackReg.byName[key]; ok {
		return a, true
	}
	for _, a := range attackReg.byName {
		if strings.EqualFold(a.Label, name) {
			return a, true
		}
	}
	return Attack{}, false
}

// Universe renders the valid attack names for error messages, sorted.
func Universe() string {
	names := Names()
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func trimErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func init() {
	MustRegisterAttack(Attack{
		Name:        "sat",
		Label:       "SAT",
		Description: "oracle-guided SAT attack (Subramanyan et al., HOST 2015)",
		Run: func(c *Context) Outcome {
			res, err := satattack.Run(c.Locked, c.NewOracle(), satattack.Options{
				MaxIterations: c.SATCap, LegacySolver: c.LegacySolver,
				Context: c.Ctx, Telemetry: c.Telemetry,
			})
			if err != nil {
				return Outcome{Detail: "error: " + trimErr(err)}
			}
			if res.Completed && c.Verified(res.Key) {
				return Outcome{Broken: true, Key: res.Key,
					Detail: fmt.Sprintf("exact key, %d iters%s", res.Iterations, c.KeyNote(res.Key))}
			}
			return Outcome{Detail: fmt.Sprintf("capped at %d iters", res.Iterations)}
		},
	})
	MustRegisterAttack(Attack{
		Name:        "appsat",
		Label:       "AppSAT",
		Description: "approximate SAT attack with sampling rounds (Shamsi et al., HOST 2017)",
		Run: func(c *Context) Outcome {
			res, err := appsat.Run(c.Locked, c.NewOracle(), appsat.Options{
				Seed: c.Seed, MaxIterations: c.SATCap, LegacySolver: c.LegacySolver,
				Context: c.Ctx, Telemetry: c.Telemetry,
			})
			if err != nil {
				return Outcome{Detail: "error: " + trimErr(err)}
			}
			if c.Verified(res.Key) {
				return Outcome{Broken: true, Key: res.Key,
					Detail: fmt.Sprintf("exact key, %d iters%s", res.Iterations, c.KeyNote(res.Key))}
			}
			return Outcome{Detail: fmt.Sprintf("approximate key (err≈%.3f)", res.ErrorEstimate)}
		},
	})
	MustRegisterAttack(Attack{
		Name:        "casunlock",
		Label:       "CAS-Unlock",
		Description: "uniform-key probing (CAS-Unlock); breaks mirrored nests, fails on mixed polarities",
		Run: func(c *Context) Outcome {
			res, err := casunlock.Run(c.Locked, c.NewOracle(), 300, c.Seed)
			if err != nil {
				return Outcome{Detail: "n/a: " + trimErr(err)}
			}
			if res.Succeeded && c.Verified(res.Key) {
				return Outcome{Broken: true, Key: res.Key, Detail: "uniform key works" + c.KeyNote(res.Key)}
			}
			return Outcome{Detail: "uniform keys fail"}
		},
	})
	MustRegisterAttack(Attack{
		Name:        "sps-removal",
		Label:       "SPS-removal",
		Description: "signal-probability-skew flip-gate removal (SPS/AppSAT-removal family)",
		Run: func(c *Context) Outcome {
			res, err := sps.RemoveOuterFlip(c.Locked, 0.05)
			if err != nil {
				return Outcome{Detail: "no skewed flip target"}
			}
			if res.Circuit.NumKeys() == 0 {
				eq, _, err := miter.ProveEquivalentHashed(res.Circuit, c.Host)
				if err == nil && eq {
					return Outcome{Broken: true, Detail: "flip removed, design recovered"}
				}
				return Outcome{Detail: "removal left a faulty circuit"}
			}
			return Outcome{Detail: fmt.Sprintf("outer stripped, %d keys remain locked", res.Circuit.NumKeys())}
		},
	})
	MustRegisterAttack(Attack{
		Name:        "bypass",
		Label:       "bypass",
		Description: "wrong-key bypass synthesis (Xu et al., CHES 2017) under a comparator budget",
		Run: func(c *Context) Outcome {
			// An area budget of 192 comparator fixes models the published
			// attack's practicality envelope: plenty for one-point
			// functions, far below CAS-Lock's DIP count. The CAS-aware
			// extractor is tried first; other schemes go through the
			// generic SAT-miter form of the attack.
			const fixBudget = 192
			res, err := bypass.Run(c.Locked, c.NewOracle(), bypass.Options{MaxFixes: fixBudget})
			if err != nil {
				res, err = bypass.RunGenericOpts(c.Locked, c.NewOracle(), bypass.GenericOptions{
					MaxFixes: fixBudget, Seed: c.Seed, LegacySolver: c.LegacySolver,
					Context: c.Ctx, Telemetry: c.Telemetry,
				})
			}
			if err != nil {
				return Outcome{Detail: "infeasible: " + trimErr(err)}
			}
			eq, _, perr := miter.ProveEquivalentHashed(res.Circuit, c.Host)
			if perr == nil && eq {
				return Outcome{Broken: true,
					Detail: fmt.Sprintf("%d fixes, +%d gates", res.Fixes, res.OverheadGates)}
			}
			return Outcome{Detail: "bypass circuit incorrect"}
		},
	})
	MustRegisterAttack(Attack{
		Name:        "dip",
		Label:       "DIP-learning",
		Description: "the paper's DIP-learning attack on CAS-Lock / Mirrored CAS",
		Servable:    true,
		Run: func(c *Context) Outcome {
			opts := core.Options{
				Context: c.context(), Seed: c.Seed, MismatchRetries: c.Retries,
				Telemetry: c.Telemetry, LegacyEncoding: c.LegacyEncoding,
				SATWidthLimit: c.SATWidthLimit, Portfolio: c.Portfolio,
			}
			if c.MCAS {
				res, err := core.RunMCAS(c.Locked, c.NewOracle(), opts)
				if err != nil {
					return Outcome{Detail: "failed: " + trimErr(err)}
				}
				if c.Verified(res.Key) {
					return Outcome{Broken: true, Key: res.Key,
						Detail: fmt.Sprintf("exact key, %d DIPs%s", res.Inner.TotalDIPs, c.KeyNote(res.Key))}
				}
				return Outcome{Detail: "wrong key"}
			}
			opts.Locked = c.Locked
			opts.Oracle = c.NewOracle()
			res, err := core.Run(opts)
			if err != nil {
				return Outcome{Detail: "n/a: " + trimErr(err)}
			}
			if c.Verified(res.Key) {
				return Outcome{Broken: true, Key: res.Key,
					Detail: fmt.Sprintf("exact key, %d DIPs%s", res.TotalDIPs, c.KeyNote(res.Key))}
			}
			return Outcome{Detail: "wrong key"}
		},
	})
}
