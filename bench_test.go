package repro

// The benchmark harness regenerates the paper's evaluation. One bench per
// experiment (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTableI_K32          — Table I, |K| = 32 half (all 5 distinct configs)
//	BenchmarkTableI_K64          — Table I, |K| = 64 half (2^32 enumeration per
//	                               row; the two larger configs only run with
//	                               REPRO_FULL_TABLEI=1)
//	BenchmarkLemma2Verify        — Lemma 2 closed form vs measured class size
//	BenchmarkDIPExtraction       — Lemma 1 miter DIP-set extraction, SAT vs sim engine
//	BenchmarkDIPLearnAttack      — the paper's attack end to end
//	BenchmarkSATAttackOnCASLock  — baseline SAT attack on the same instance (capped)
//	BenchmarkSATAttackIterations — SAT-attack iteration blow-up vs block width
//	BenchmarkCASUnlock           — CAS-Unlock baseline (fails on real instances)
//	BenchmarkMCASAttack          — M-CAS pipeline (SPS removal + inner attack)
//	BenchmarkAttackScaling       — O(m) cost sweep over growing DIP sets
//	BenchmarkRunWidths           — compiled gate-program kernel at 64/256/512
//	                               lanes on ISCAS85-profile netlists
//
// Reported custom metrics: DIPs (measured |I_l|), oracle_queries, and for
// the SAT attack the DIP-loop iteration count.

import (
	"os"
	"testing"

	"repro/internal/attack/appsat"
	"repro/internal/attack/bypass"
	"repro/internal/attack/casunlock"
	"repro/internal/attack/satattack"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// benchHost builds the shared medium-sized host used by the non-Table-I
// benches.
func benchHost(b *testing.B, inputs int) *netlist.Circuit {
	b.Helper()
	h, err := synth.Generate(synth.Config{Name: "bh", Inputs: inputs, Outputs: 4, Gates: 80, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkTableI_K32(b *testing.B) {
	seen := map[string]bool{}
	for _, row := range experiments.TableI32 {
		if seen[row.Chain] {
			continue // identical configuration, identical numbers
		}
		seen[row.Chain] = true
		row := row
		b.Run(row.Benchmark+"_"+row.Chain, func(b *testing.B) {
			var last *experiments.TableIResult
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunTableIRow(row, experiments.TableIOptions{
					Seed: 1, MatchPaperRegime: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.KeyRecovered {
					b.Fatal("key not recovered")
				}
				last = res
			}
			b.ReportMetric(float64(last.MeasuredDIPs), "DIPs")
			b.ReportMetric(float64(last.OracleQueries), "oracle_queries")
		})
	}
}

func BenchmarkTableI_K64(b *testing.B) {
	full := os.Getenv("REPRO_FULL_TABLEI") == "1"
	seen := map[string]bool{}
	for _, row := range experiments.TableI64 {
		if seen[row.Chain] {
			continue
		}
		seen[row.Chain] = true
		if !full && row.PaperDIPs > 1_000_000 {
			// The 2.4M- and 8.5M-DIP rows take several minutes each on
			// one core; EXPERIMENTS.md records a full run.
			continue
		}
		row := row
		b.Run(row.Benchmark+"_"+row.Chain, func(b *testing.B) {
			var last *experiments.TableIResult
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunTableIRow(row, experiments.TableIOptions{
					Seed: 1, MatchPaperRegime: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.KeyRecovered {
					b.Fatal("key not recovered")
				}
				last = res
			}
			b.ReportMetric(float64(last.MeasuredDIPs), "DIPs")
			b.ReportMetric(float64(last.OracleQueries), "oracle_queries")
		})
	}
}

func BenchmarkLemma2Verify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.VerifyLemma2(6, 9, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Match {
				b.Fatalf("closed form violated: %+v", r)
			}
		}
	}
}

// extractionInstance locks a fixed instance and returns what the
// extraction benches need.
func extractionInstance(b *testing.B, n int) (*netlist.Circuit, *core.BlockLayout) {
	b.Helper()
	h := benchHost(b, n+3)
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if i%3 == 1 {
			chain[i] = lock.ChainOr
		}
	}
	chain[n-2] = lock.ChainAnd
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: chain, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	layout, err := core.DiscoverLayout(locked.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	return locked.Circuit, layout
}

func lemma1Assign(lockedKeys int, layout *core.BlockLayout) core.PairAssign {
	assign := core.PairAssign{A: make([]bool, lockedKeys), B: make([]bool, lockedKeys)}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	return assign
}

func BenchmarkDIPExtraction(b *testing.B) {
	b.Run("sat_n8", func(b *testing.B) {
		lockedC, layout := extractionInstance(b, 8)
		ext, err := core.NewSATExtractor(lockedC, layout)
		if err != nil {
			b.Fatal(err)
		}
		assign := lemma1Assign(lockedC.NumKeys(), layout)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dips, err := ext.DIPs(assign)
			if err != nil {
				b.Fatal(err)
			}
			if dips.Count() == 0 {
				b.Fatal("no DIPs")
			}
		}
	})
	b.Run("sim_n16", func(b *testing.B) {
		lockedC, layout := extractionInstance(b, 16)
		ext, err := core.NewSimExtractor(lockedC, layout, 1)
		if err != nil {
			b.Fatal(err)
		}
		assign := lemma1Assign(lockedC.NumKeys(), layout)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dips, err := ext.DIPs(assign)
			if err != nil {
				b.Fatal(err)
			}
			if dips.Count() == 0 {
				b.Fatal("no DIPs")
			}
		}
	})
	b.Run("sim_n24", func(b *testing.B) {
		lockedC, layout := extractionInstance(b, 24)
		ext, err := core.NewSimExtractor(lockedC, layout, 1)
		if err != nil {
			b.Fatal(err)
		}
		assign := lemma1Assign(lockedC.NumKeys(), layout)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ext.DIPs(assign); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDIPLearnAttack(b *testing.B) {
	h := benchHost(b, 14)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O-3A-O-A"), Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !inst.IsCorrectCASKey(res.Key) {
			b.Fatal("wrong key")
		}
		last = res
	}
	b.ReportMetric(float64(last.TotalDIPs), "DIPs")
	b.ReportMetric(float64(last.OracleQueries), "oracle_queries")
}

func BenchmarkSATAttackOnCASLock(b *testing.B) {
	// Same configuration as BenchmarkDIPLearnAttack; the cap keeps the
	// bench finite — CAS-Lock forces the SAT attack through (nearly) the
	// whole block space.
	h := benchHost(b, 14)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O-3A-O-A"), Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *satattack.Result
	for i := 0; i < b.N; i++ {
		res, err := satattack.Run(locked.Circuit, oracle.MustNewSim(h), satattack.Options{MaxIterations: 300})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Iterations), "iterations")
	if last.Completed {
		b.Log("note: SAT attack completed within the cap on this instance")
	}
}

func BenchmarkSATAttackIterations(b *testing.B) {
	h := benchHost(b, 14)
	for _, n := range []int{4, 6, 8} {
		n := n
		b.Run(map[int]string{4: "antisat_n4", 6: "antisat_n6", 8: "antisat_n8"}[n], func(b *testing.B) {
			locked, _, err := lock.ApplyAntiSAT(h, n, 17)
			if err != nil {
				b.Fatal(err)
			}
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := satattack.Run(locked.Circuit, oracle.MustNewSim(h), satattack.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("baseline did not complete")
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

func BenchmarkCASUnlock(b *testing.B) {
	h := benchHost(b, 14)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O-3A-O-A"), Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := casunlock.Run(locked.Circuit, oracle.MustNewSim(h), 300, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Succeeded {
			// Probe matching can false-positive on sparse-corruption
			// instances; only an exact SAT proof counts as a real break.
			ok, err := miter.ProveUnlockedHashed(locked.Circuit, res.Key, h)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				b.Fatal("CAS-Unlock exactly unlocked a mixed-polarity instance")
			}
		}
	}
}

func BenchmarkMCASAttack(b *testing.B) {
	h := benchHost(b, 14)
	locked, inst, err := lock.ApplyMCAS(h, lock.CASOptions{Chain: lock.MustParseChain("3A-O-2A"), Seed: 19})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunMCAS(locked.Circuit, oracle.MustNewSim(h), core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !inst.IsCorrectMCASKey(res.Key) {
			b.Fatal("wrong M-CAS key")
		}
	}
}

func BenchmarkAttackScaling(b *testing.B) {
	// Lemma-2 series 65, 145, 265, 529: attack cost should track the DIP
	// count (O(m)), not the key space.
	for _, cfg := range []string{"5A-O-A", "3A-O-2A-O-A", "2A-O-4A-O-A", "A-O-5A-O-A-A"} {
		cfg := cfg
		b.Run(cfg, func(b *testing.B) {
			var points []experiments.ScalingPoint
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.RunScaling(14, []string{cfg}, 23)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(points[0].DIPs), "DIPs")
			b.ReportMetric(float64(points[0].OracleQueries), "oracle_queries")
		})
	}
}

func BenchmarkBypassOverhead(b *testing.B) {
	// Bypass-attack cost per Lemma-2 DIP count: the paper's argument for
	// why bypass fails on CAS-Lock.
	h := benchHost(b, 14)
	for _, cfg := range []string{"6A", "3A-O-2A", "A-O-2A-O-A"} {
		cfg := cfg
		b.Run(cfg, func(b *testing.B) {
			locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain(cfg), Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			var overhead int
			for i := 0; i < b.N; i++ {
				res, err := bypass.Run(locked.Circuit, oracle.MustNewSim(h), bypass.Options{})
				if err != nil {
					b.Fatal(err)
				}
				overhead = res.OverheadGates
			}
			b.ReportMetric(float64(overhead), "overhead_gates")
		})
	}
}

func BenchmarkAppSATOnCASLock(b *testing.B) {
	h := benchHost(b, 14)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("8A-O-A"), Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := appsat.Run(locked.Circuit, oracle.MustNewSim(h), appsat.Options{Seed: int64(i), MaxIterations: 256})
		if err != nil {
			b.Fatal(err)
		}
		last = res.ErrorEstimate
	}
	b.ReportMetric(last, "error_estimate")
}

func BenchmarkCorruptibility(b *testing.B) {
	// The security-corruptibility ablation: corruption per chain shape.
	for _, cfg := range []string{"9A", "4A-O-4A", "8A-O"} {
		cfg := cfg
		b.Run(cfg, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.MeasureCorruptibility(cfg, 8, 3)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Mean
			}
			b.ReportMetric(mean, "mean_corruption")
		})
	}
}

func BenchmarkBDDDIPCount(b *testing.B) {
	// Symbolic counting of the paper's largest Table I configuration —
	// milliseconds versus the minutes of exhaustive enumeration.
	chain := lock.MustParseChain("4A-O-3(5A-O)-8A")
	n := chain.NumInputs()
	kg := make([]netlist.GateType, n)
	for i := range kg {
		kg[i] = netlist.Xor
	}
	k1A, k2A, k1B, k2B := experiments.BDDLemma1Assignment(chain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count, err := experiments.BDDDIPCount(chain, kg, kg, k1A, k2A, k1B, k2B)
		if err != nil {
			b.Fatal(err)
		}
		if count.Uint64() != 8521761 {
			b.Fatalf("count %v", count)
		}
	}
}

func BenchmarkTelemetryOverhead(b *testing.B) {
	// Guards the acceptance criterion that a nil registry (the default)
	// adds no measurable overhead to the enumeration hot path, and shows
	// what an armed registry costs (per-shard bookkeeping only — the
	// 64-pattern batch loop itself is never instrumented). Compare:
	//
	//	go test -run XXX -bench TelemetryOverhead -count 10 . | benchstat
	lockedC, layout := extractionInstance(b, 16)
	assign := lemma1Assign(lockedC.NumKeys(), layout)
	for _, tc := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"disabled", nil},
		{"enabled", telemetry.New()},
	} {
		reg := tc.reg
		b.Run(tc.name, func(b *testing.B) {
			ext, err := core.NewSimExtractor(lockedC, layout, 1)
			if err != nil {
				b.Fatal(err)
			}
			ext.SetTelemetry(reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dips, err := ext.DIPs(assign)
				if err != nil {
					b.Fatal(err)
				}
				if dips.Count() == 0 {
					b.Fatal("no DIPs")
				}
			}
		})
	}
}

// BenchmarkEventOverhead guards the event-bus acceptance criterion:
// running the full attack with a bus and an actively draining
// subscriber attached must stay within 5% of the bus-disabled
// baseline (publishers batch per dipEventBatch/oracleEventBatch, and
// Publish never blocks on a slow reader). bench-compare gates the
// disabled/subscribed pair; compare locally with
//
//	go test -run XXX -bench EventOverhead -count 10 . | benchstat
func BenchmarkEventOverhead(b *testing.B) {
	h := benchHost(b, 14)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O-3A-O-A"), Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, withBus bool) {
		orc := oracle.MustNewSim(h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var bus *events.Bus
			var drained chan struct{}
			if withBus {
				bus = events.New(events.Options{})
				sub := bus.Subscribe(0)
				drained = make(chan struct{})
				go func() {
					defer close(drained)
					for {
						if len(sub.Poll()) > 0 {
							continue
						}
						if sub.Closed() {
							return
						}
						<-sub.Wait()
					}
				}()
			}
			res, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: orc, Seed: int64(i), Events: bus})
			if err != nil {
				b.Fatal(err)
			}
			if !inst.IsCorrectCASKey(res.Key) {
				b.Fatal("wrong key")
			}
			if withBus {
				bus.Close()
				<-drained
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("subscribed", func(b *testing.B) { run(b, true) })
}

func BenchmarkSFLLLeakage(b *testing.B) {
	// The future-work extension: learn SFLL-HD's parameter h from one
	// DIP-set count.
	var learned int
	for i := 0; i < b.N; i++ {
		res, err := experiments.LeakSFLLH(10, 8, 2, 11)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatal("h not recovered")
		}
		learned = res.LearnedH
	}
	b.ReportMetric(float64(learned), "learned_h")
}

// BenchmarkRunWidths measures the compiled gate-program kernel at 64,
// 256, and 512 bit-parallel lanes on ISCAS85-profile synthetic
// netlists. ns/pattern is the cross-width comparable metric; the wide
// variants should show a clear per-pattern win on the larger circuit.
func BenchmarkRunWidths(b *testing.B) {
	for _, name := range []string{"c432", "c7552"} {
		prof, err := synth.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := synth.Generate(synth.FromProfile(prof, 17))
		if err != nil {
			b.Fatal(err)
		}
		sim, err := netlist.NewSimulator(c)
		if err != nil {
			b.Fatal(err)
		}
		nIn := c.NumInputs()
		in1 := make([]uint64, nIn)
		in4 := make([][4]uint64, nIn)
		in8 := make([][8]uint64, nIn)
		for i := 0; i < nIn; i++ {
			for j := 0; j < 8; j++ {
				in8[i][j] = 0x9e3779b97f4a7c15 * uint64(i*8+j+1)
			}
			copy(in4[i][:], in8[i][:4])
			in1[i] = in8[i][0]
		}
		run := func(patterns int, fn func() error) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := fn(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(patterns), "ns/pattern")
			}
		}
		b.Run(name+"/w64", run(64, func() error { _, err := sim.Run64(in1, nil); return err }))
		b.Run(name+"/w256", run(256, func() error { _, err := sim.Run256(in4, nil); return err }))
		b.Run(name+"/w512", run(512, func() error { _, err := sim.Run512(in8, nil); return err }))
	}
}
