package cnf

import "repro/internal/netlist"

// Incremental is a reusable gate→CNF encoder over one live sink
// (typically a solver): each circuit is Tseitin-encoded at most once,
// and the resulting Encoding — the stable gate→variable map — is
// memoized, so later phases look literals up instead of re-encoding.
// Clauses that are not gate semantics (blocking clauses, unit
// constraints) are appended through the same sink without disturbing
// the var maps, which is what lets an attack add per-model blocking
// clauses to a persistent encoding without re-Tseitin-ing anything.
type Incremental struct {
	sink Sink
	encs map[*netlist.Circuit]*Encoding
}

// NewIncremental wraps a sink in a memoizing encoder.
func NewIncremental(sink Sink) *Incremental {
	return &Incremental{sink: sink, encs: make(map[*netlist.Circuit]*Encoding)}
}

// Encode returns the circuit's encoding in the underlying sink, encoding
// it on first use. The returned Encoding is stable: repeated calls for
// the same circuit return the identical variable map.
func (inc *Incremental) Encode(c *netlist.Circuit) (*Encoding, error) {
	if enc, ok := inc.encs[c]; ok {
		return enc, nil
	}
	enc, err := EncodeInto(c, inc.sink)
	if err != nil {
		return nil, err
	}
	inc.encs[c] = enc
	return enc, nil
}

// Encoded reports whether the circuit has already been encoded.
func (inc *Incremental) Encoded(c *netlist.Circuit) bool {
	_, ok := inc.encs[c]
	return ok
}

// Append adds a clause over already-allocated variables (blocking
// clauses, output constraints) to the underlying sink.
func (inc *Incremental) Append(lits ...Lit) { inc.sink.Add(lits...) }
