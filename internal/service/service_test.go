package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// fixture is one locked/oracle bench-text pair with its ground truth.
type fixture struct {
	locked, orig string
	inst         *lock.CASInstance
	wantKey      string
}

func makeFixture(t *testing.T, inputs, n int, seed int64) fixture {
	t.Helper()
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: inputs, Outputs: 3, Gates: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if (seed+int64(i))%2 == 0 {
			chain[i] = lock.ChainOr
		}
	}
	sel := make([]int, n)
	for i := range sel {
		sel[i] = (i*3 + int(seed)) % inputs
		// keep selections distinct
	}
	seen := map[int]bool{}
	next := 0
	for i, p := range sel {
		for seen[p] {
			p = next
			next++
		}
		seen[p] = true
		sel[i] = p
	}
	locked, inst, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, InputSel: sel, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	lockedText, err := bench.WriteString(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	origText, err := bench.WriteString(host)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{locked: lockedText, orig: origText, inst: inst, wantKey: bitString(inst.CorrectKey)}
}

func newTestService(t *testing.T, cfg Config) (*Service, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s did not finish: %v", j.ID(), err)
	}
	return *st
}

// TestHammerConcurrentSubmissions is the -race hammer: 32 concurrent
// submissions over 4 distinct problems. The cache plus singleflight
// must collapse the duplicates — the attack-run counter ends exactly at
// the number of distinct jobs — and every recovered key must be
// bit-identical to what a direct core.Run on the same inputs yields.
func TestHammerConcurrentSubmissions(t *testing.T) {
	fixtures := []fixture{
		makeFixture(t, 8, 4, 1),
		makeFixture(t, 9, 4, 2),
		makeFixture(t, 8, 5, 3),
		makeFixture(t, 10, 5, 4),
	}
	// Ground truth: run the attack directly through core for each fixture.
	direct := make([]string, len(fixtures))
	for i, f := range fixtures {
		locked, err := bench.ReadString("locked", f.locked)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := bench.ReadString("orig", f.orig)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := oracle.NewSim(orig)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Options{Locked: locked, Oracle: sim, Seed: 7})
		if err != nil {
			t.Fatalf("direct run %d: %v", i, err)
		}
		direct[i] = bitString(res.Key)
	}

	s, reg := newTestService(t, Config{Workers: 4, QueueDepth: 64})
	const submitters = 32
	var wg sync.WaitGroup
	jobs := make([]*Job, submitters)
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := fixtures[i%len(fixtures)]
			jobs[i], errs[i] = s.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig, Seed: 7})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, j := range jobs {
		st := waitJob(t, j)
		if st.State != StateDone {
			t.Fatalf("job %d (%s): state %s, error %q", i, j.ID(), st.State, st.Error)
		}
		_, res, finished, err := s.Outcome(j.ID())
		if err != nil || !finished || res == nil {
			t.Fatalf("job %d outcome: finished=%t res=%v err=%v", i, finished, res, err)
		}
		f := fixtures[i%len(fixtures)]
		if res.Key != direct[i%len(fixtures)] {
			t.Errorf("job %d: key %s differs from direct core run %s", i, res.Key, direct[i%len(fixtures)])
		}
		keyBits := make([]bool, len(res.Key))
		for k, c := range res.Key {
			keyBits[k] = c == '1'
		}
		if !f.inst.IsCorrectCASKey(keyBits) {
			t.Errorf("job %d: recovered key %s is not correct for the instance", i, res.Key)
		}
	}
	if runs := reg.Counter("service_attack_runs_total").Value(); runs != uint64(len(fixtures)) {
		t.Errorf("attack ran %d times for %d distinct problems (dedup failed)", runs, len(fixtures))
	}
	wantShared := uint64(submitters - len(fixtures))
	if hits := reg.Counter("service_cache_hits_total").Value() +
		reg.Counter("service_singleflight_joins_total").Value(); hits != wantShared {
		t.Errorf("cache hits + singleflight joins = %d, want %d", hits, wantShared)
	}
}

// TestResubmitUsesCacheZeroQueries is the acceptance criterion:
// resubmitting a byte-identical job must come back from the cache with
// zero additional oracle queries and zero additional attack runs, and
// the cached key must still be the ground-truth key.
func TestResubmitUsesCacheZeroQueries(t *testing.T) {
	f := makeFixture(t, 8, 4, 11)
	s, reg := newTestService(t, Config{Workers: 1})
	req := AttackRequest{Locked: f.locked, Oracle: f.orig, Seed: 3}
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != StateDone {
		t.Fatalf("first run: %s (%s)", st.State, st.Error)
	}
	runsBefore := reg.Counter("service_attack_runs_total").Value()
	queriesBefore := reg.Counter("service_oracle_queries_total").Value()

	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if !st2.Cached {
		t.Fatal("resubmission was not served from the cache")
	}
	if st2.State != StateDone {
		t.Fatalf("cached job state %s", st2.State)
	}
	if runs := reg.Counter("service_attack_runs_total").Value(); runs != runsBefore {
		t.Errorf("resubmission ran the attack again (%d → %d runs)", runsBefore, runs)
	}
	if q := reg.Counter("service_oracle_queries_total").Value(); q != queriesBefore {
		t.Errorf("resubmission spent %d additional oracle queries", q-queriesBefore)
	}
	_, res, finished, err := s.Outcome(j2.ID())
	if err != nil || !finished {
		t.Fatalf("cached outcome: %v", err)
	}
	keyBits := make([]bool, len(res.Key))
	for i, c := range res.Key {
		keyBits[i] = c == '1'
	}
	if !f.inst.IsCorrectCASKey(keyBits) {
		t.Fatalf("cached key %s is not a correct key", res.Key)
	}
	// The two jobs share the content address, and the trace served for
	// the cached job is the sealed trace of the original execution.
	if j1.Hash() != j2.Hash() {
		t.Fatalf("hashes differ: %s vs %s", j1.Hash(), j2.Hash())
	}
	tr, err := s.Trace(j2.ID())
	if err != nil || len(tr) == 0 {
		t.Fatalf("cached job trace: %v (%d bytes)", err, len(tr))
	}
	if !strings.Contains(string(tr), "attack") {
		t.Fatalf("cached trace has no attack span: %s", tr)
	}
}

// TestCancelMidRunYieldsPartial drives the DELETE path: the job is
// held at the worker's beforeRun seam until the cancel lands, so the
// attack starts with an already-cancelled context and winds down into
// the canceled/partial family of terminal states rather than "done".
func TestCancelMidRunYieldsPartial(t *testing.T) {
	f := makeFixture(t, 8, 4, 21)
	s, _ := newTestService(t, Config{Workers: 1})
	started := make(chan struct{})
	s.beforeRun = func(ctx context.Context, _ string) error {
		close(started)
		<-ctx.Done()
		// Hand the cancelled context to the attack: core.Run surfaces the
		// interruption as a PartialError at its first checkpoint.
		return nil
	}
	j, err := s.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	st, err := s.Cancel(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !st.CancelRequested {
		t.Fatal("cancel not recorded on the job")
	}
	final := waitJob(t, j)
	if final.State != StatePartial && final.State != StateCanceled {
		t.Fatalf("cancelled job ended %s, want partial or canceled", final.State)
	}
	if final.State == StatePartial {
		if final.Partial == nil || final.Partial.Stage == "" {
			t.Fatalf("partial outcome has no stage: %+v", final.Partial)
		}
	}
	// Cancelled outcomes must not poison the cache: a resubmission runs
	// fresh and succeeds.
	s.beforeRun = nil
	j2, err := s.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := waitJob(t, j2); st2.State != StateDone {
		t.Fatalf("post-cancel resubmission: %s (%s)", st2.State, st2.Error)
	}
}

// TestWorkerPanicBecomesJobError: a panic on the worker goroutine (here
// injected through the beforeRun seam) must surface as a typed
// KindPanic failure on the job, not kill the daemon.
func TestWorkerPanicBecomesJobError(t *testing.T) {
	f := makeFixture(t, 8, 4, 31)
	s, reg := newTestService(t, Config{Workers: 1})
	s.beforeRun = func(context.Context, string) error {
		panic("injected worker fault")
	}
	j, err := s.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateFailed || st.ErrorKind != KindPanic {
		t.Fatalf("state %s kind %s, want failed/panic", st.State, st.ErrorKind)
	}
	if reg.Counter("service_worker_panics_total").Value() == 0 {
		t.Error("panic counter not incremented")
	}
	// The daemon survives: the same service still completes real work.
	s.beforeRun = nil
	j2, err := s.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := waitJob(t, j2); st2.State != StateDone {
		t.Fatalf("post-panic job: %s (%s)", st2.State, st2.Error)
	}
}

// TestAdmissionValidation exercises the boundary checks of satellite 3:
// garbage netlists, arity mismatches, keyed oracles and out-of-range
// block widths are all rejected before anything is queued.
func TestAdmissionValidation(t *testing.T) {
	f := makeFixture(t, 8, 4, 41)
	s, _ := newTestService(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  AttackRequest
		want ErrorKind
	}{
		{"empty", AttackRequest{}, KindInvalid},
		{"garbage locked", AttackRequest{Locked: "not a bench file (", Oracle: f.orig}, KindInvalid},
		{"oracle with keys", AttackRequest{Locked: f.locked, Oracle: f.locked}, KindInvalid},
		{"unlocked locked", AttackRequest{Locked: f.orig, Oracle: f.orig}, KindInvalid},
		{"negative seeds ok, negative retries not", AttackRequest{Locked: f.locked, Oracle: f.orig, Retries: -1}, KindInvalid},
		{"unknown attack", AttackRequest{Locked: f.locked, Oracle: f.orig, Attack: "frobnicate"}, KindInvalid},
		{"registered but non-servable attack", AttackRequest{Locked: f.locked, Oracle: f.orig, Attack: "sat"}, KindInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.req)
			var je *JobError
			if !errors.As(err, &je) || je.Kind != tc.want {
				t.Fatalf("got %v, want kind %s", err, tc.want)
			}
		})
	}
	t.Run("width over service limit", func(t *testing.T) {
		narrow, _ := newTestService(t, Config{Workers: 1, MaxBlockWidth: 3})
		_, err := narrow.Submit(AttackRequest{Locked: f.locked, Oracle: f.orig})
		var je *JobError
		if !errors.As(err, &je) || je.Kind != KindInvalid {
			t.Fatalf("got %v, want invalid", err)
		}
		if !errors.Is(err, core.ErrBlockWidth) {
			t.Fatalf("width rejection does not wrap core.ErrBlockWidth: %v", err)
		}
	})
}

// TestQueueFullRejects fills the single-slot queue behind a blocked
// worker and checks that the next distinct submission is turned away
// with KindQueueFull (HTTP 429 at the API layer).
func TestQueueFullRejects(t *testing.T) {
	fixtures := []fixture{
		makeFixture(t, 8, 4, 51),
		makeFixture(t, 9, 4, 52),
		makeFixture(t, 10, 4, 53),
	}
	s, _ := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var hold sync.Once
	s.beforeRun = func(ctx context.Context, _ string) error {
		hold.Do(func() { <-release })
		return nil
	}
	defer close(release)
	// First job occupies the worker, second fills the queue.
	j1, err := s.Submit(AttackRequest{Locked: fixtures[0].locked, Oracle: fixtures[0].orig})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, j1.ID())
	if _, err := s.Submit(AttackRequest{Locked: fixtures[1].locked, Oracle: fixtures[1].orig}); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	_, err = s.Submit(AttackRequest{Locked: fixtures[2].locked, Oracle: fixtures[2].orig})
	var je *JobError
	if !errors.As(err, &je) || je.Kind != KindQueueFull {
		t.Fatalf("overflow submit: got %v, want queue_full", err)
	}
	// A duplicate of an admitted job still joins despite the full queue.
	dup, err := s.Submit(AttackRequest{Locked: fixtures[1].locked, Oracle: fixtures[1].orig})
	if err != nil {
		t.Fatalf("duplicate join during full queue: %v", err)
	}
	if dup.Hash() == "" {
		t.Fatal("dup job has no hash")
	}
}

func waitRunning(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning || st.State.Terminal() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestHashExcludesBudgetKnobs: Workers and TimeoutMS are execution
// budget, not problem identity — two requests differing only there must
// share a content address, while any attack-semantics change must not.
func TestHashExcludesBudgetKnobs(t *testing.T) {
	f := makeFixture(t, 8, 4, 61)
	s, _ := newTestService(t, Config{Workers: 1})
	base := AttackRequest{Locked: f.locked, Oracle: f.orig, Seed: 5}
	h := func(req AttackRequest) string {
		p, err := s.validate(req)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := hashRequest(p)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := h(base)
	budget := base
	budget.Workers = 7
	budget.TimeoutMS = 12345
	if h(budget) != want {
		t.Error("budget knobs changed the content address")
	}
	seeded := base
	seeded.Seed = 6
	if h(seeded) == want {
		t.Error("seed change did not change the content address")
	}
	retried := base
	retried.Retries = 2
	if h(retried) == want {
		t.Error("retry change did not change the content address")
	}
	// Attack-name spellings normalize: "", "dip" and the display label
	// are the same job and must share one cache entry.
	for _, spelling := range []string{"dip", "DIP-learning"} {
		named := base
		named.Attack = spelling
		if h(named) != want {
			t.Errorf("attack spelling %q changed the content address", spelling)
		}
	}
	legacy := base
	legacy.LegacyEncoding = true
	if h(legacy) == want {
		t.Error("legacy-encoding change did not change the content address")
	}
}

// TestAutoCalibrationCacheKey pins the content-address contract of the
// self-tuning crossover: an auto-calibrated request (SATWidthLimit = 0)
// is keyed on the requested value, never on which engine the calibration
// probe happened to pick — so a resubmission is a pure cache hit with no
// second attack run, while pinning a width is a different address.
func TestAutoCalibrationCacheKey(t *testing.T) {
	f := makeFixture(t, 8, 4, 17)
	s, reg := newTestService(t, Config{Workers: 1})
	req := AttackRequest{Locked: f.locked, Oracle: f.orig, Seed: 5} // SATWidthLimit 0 = auto
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != StateDone {
		t.Fatalf("first auto-calibrated run: %s (%s)", st.State, st.Error)
	}
	runsBefore := reg.Counter("service_attack_runs_total").Value()

	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("auto-calibrated resubmission not served from cache: cached=%t state=%s",
			st2.Cached, st2.State)
	}
	if runs := reg.Counter("service_attack_runs_total").Value(); runs != runsBefore {
		t.Errorf("resubmission re-ran the attack (%d → %d runs) — probe outcome leaked into the cache key", runsBefore, runs)
	}
	if j1.Hash() != j2.Hash() {
		t.Fatalf("auto-calibrated hashes differ: %s vs %s", j1.Hash(), j2.Hash())
	}

	pinned := req
	pinned.SATWidthLimit = 12
	j3, err := s.Submit(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j3); st.State != StateDone {
		t.Fatalf("pinned run: %s (%s)", st.State, st.Error)
	}
	if j3.Hash() == j1.Hash() {
		t.Error("pinned SATWidthLimit shares the auto-calibrated content address")
	}
}
