// WAL-backed job journal: the durability layer that lets the attack
// daemon survive a crash or restart without losing its job ledger.
//
// Every admission-visible transition appends one fsync'd record to an
// append-only write-ahead log (<journal-dir>/journal.wal):
//
//	submit  id, hash, request-JSON   — a job was admitted
//	start   hash                     — its execution began on a worker
//	ckptref hash, relative-path      — a checkpoint writer was armed
//	done    hash, state              — the execution sealed an outcome
//	cancel  id                       — a submitter withdrew the job
//
// Each record is framed u32 payload length | u32 CRC-32 (IEEE) |
// payload, payload = type byte followed by u32-length-prefixed fields.
// A torn tail (crash mid-append) is tolerated silently — the file is
// truncated back to the last whole record — while a CRC mismatch in the
// interior is real corruption and fails the boot with ErrJournalCorrupt.
//
// Large state lives beside the log in a content-addressed directory
// (<journal-dir>/cas/): attack checkpoints at ck-<hash>.bin (written by
// the checkpoint.Writer the worker arms) and sealed outcomes at
// out-<hash>.json. On boot the replayed ledger re-creates terminal jobs
// from their outcome blobs and re-admits unfinished ones, resuming from
// their latest checkpoint, so GET /v1/attacks/{id} survives a daemon
// restart.
package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/events"
)

// ErrJournalCorrupt reports interior journal damage: a record whose CRC
// does not match (and which is not the torn final append) or whose
// framing is malformed. Boot refuses to proceed on it — silently
// skipping interior records would resurrect or lose jobs arbitrarily.
var ErrJournalCorrupt = errors.New("service: journal corrupt")

// Journal record types.
const (
	recSubmit        byte = 1
	recStart         byte = 2
	recCheckpointRef byte = 3
	recDone          byte = 4
	recCancel        byte = 5
)

// maxJournalRecord bounds one record's payload; a length prefix beyond
// it is corruption, not a real record.
const maxJournalRecord = 16 << 20

// journalFile is the WAL file name inside Config.JournalDir.
const journalFile = "journal.wal"

// record is one decoded journal entry.
type record struct {
	typ    byte
	fields [][]byte
}

// field returns field i or nil.
func (r record) field(i int) []byte {
	if i < len(r.fields) {
		return r.fields[i]
	}
	return nil
}

// encodeRecord frames a record for appending.
func encodeRecord(typ byte, fields ...[]byte) []byte {
	payload := []byte{typ}
	var lenBuf [4]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(f)))
		payload = append(payload, lenBuf[:]...)
		payload = append(payload, f...)
	}
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// parseJournal decodes a WAL byte stream. It returns the whole records,
// the number of bytes they occupy (so a torn tail can be truncated
// away), and ErrJournalCorrupt on interior damage. It never panics on
// hostile input.
func parseJournal(data []byte) ([]record, int, error) {
	var recs []record
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn tail: header cut short
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxJournalRecord {
			return nil, 0, fmt.Errorf("%w: record length %d at offset %d", ErrJournalCorrupt, n, off)
		}
		end := off + 8 + int(n)
		if end > len(data) {
			break // torn tail: payload cut short
		}
		payload := data[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == len(data) {
				break // torn final append that still wrote its full length
			}
			return nil, 0, fmt.Errorf("%w: CRC mismatch at offset %d", ErrJournalCorrupt, off)
		}
		r, err := decodePayload(payload)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, r)
		off = end
	}
	return recs, off, nil
}

// decodePayload splits a CRC-validated payload into type + fields.
func decodePayload(p []byte) (record, error) {
	r := record{typ: p[0]}
	rest := p[1:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return record{}, fmt.Errorf("%w: field header cut short", ErrJournalCorrupt)
		}
		n := binary.LittleEndian.Uint32(rest)
		if uint64(n) > uint64(len(rest)-4) {
			return record{}, fmt.Errorf("%w: field length %d exceeds payload", ErrJournalCorrupt, n)
		}
		r.fields = append(r.fields, append([]byte(nil), rest[4:4+n]...))
		rest = rest[4+n:]
	}
	return r, nil
}

// journal owns the WAL file handle and the content-addressed blob dir.
type journal struct {
	dir string
	mu  sync.Mutex
	f   *os.File
}

// openJournal prepares the journal directory, replays the existing WAL
// (truncating a torn tail), and opens the log for appending.
func openJournal(dir string) (*journal, []record, error) {
	if err := os.MkdirAll(filepath.Join(dir, "cas"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("service: reading journal: %w", err)
	}
	recs, consumed, err := parseJournal(data)
	if err != nil {
		return nil, nil, err
	}
	if consumed < len(data) {
		if err := os.Truncate(path, int64(consumed)); err != nil {
			return nil, nil, fmt.Errorf("service: truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	return &journal{dir: dir, f: f}, recs, nil
}

// append frames, writes and fsyncs one record.
func (j *journal) append(typ byte, fields ...[]byte) error {
	buf := encodeRecord(typ, fields...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// checkpointPath is where a job's attack checkpoint lives, beside the
// cached outcomes, keyed by the job's content address.
func (j *journal) checkpointPath(hash string) string {
	return filepath.Join(j.dir, "cas", "ck-"+hash+".bin")
}

func (j *journal) outcomePath(hash string) string {
	return filepath.Join(j.dir, "cas", "out-"+hash+".json")
}

// persistedOutcome is the JSON shape of a sealed outcome blob.
type persistedOutcome struct {
	Result    *JobResult      `json:"result,omitempty"`
	Partial   *PartialInfo    `json:"partial,omitempty"`
	ErrorKind ErrorKind       `json:"error_kind,omitempty"`
	Error     string          `json:"error,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
	Events    []events.Event  `json:"events,omitempty"`
}

// writeOutcome persists a sealed outcome blob (temp + rename, so a
// crash mid-write never leaves a half blob behind a done record).
func (j *journal) writeOutcome(hash string, out *outcome) error {
	po := persistedOutcome{Result: out.result, Partial: out.partial, Events: out.events}
	if out.jobErr != nil {
		po.ErrorKind = out.jobErr.Kind
		if out.jobErr.Err != nil {
			po.Error = out.jobErr.Err.Error()
		}
	}
	if len(out.trace) > 0 {
		po.Trace = out.trace
	}
	data, err := json.Marshal(po)
	if err != nil {
		return err
	}
	path := j.outcomePath(hash)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".out-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		os.Remove(name)
	}
	return err
}

// loadOutcome reads a sealed outcome blob back.
func (j *journal) loadOutcome(hash string) (*outcome, error) {
	data, err := os.ReadFile(j.outcomePath(hash))
	if err != nil {
		return nil, err
	}
	var po persistedOutcome
	if err := json.Unmarshal(data, &po); err != nil {
		return nil, err
	}
	out := &outcome{result: po.Result, partial: po.Partial, trace: po.Trace, events: po.Events}
	if po.ErrorKind != "" {
		out.jobErr = &JobError{Kind: po.ErrorKind, Err: errors.New(po.Error)}
	}
	return out, nil
}

// removeCheckpoint discards a job's checkpoint blob once its outcome is
// sealed; a done record always wins over a leftover checkpoint anyway.
func (j *journal) removeCheckpoint(hash string) {
	os.Remove(j.checkpointPath(hash))
}

// replayJob is one ledger entry reconstructed from the journal.
type replayJob struct {
	id       string
	hash     string
	reqJSON  []byte
	started  bool
	canceled bool
}

// buildReplay folds the record stream into the job ledger: the jobs in
// submission order plus the set of hashes whose execution sealed an
// outcome (value = terminal state name). A job whose hash has a done
// record is terminal; a canceled job is terminal; everything else is
// pending and must be re-admitted. Unknown record types are skipped so
// an old binary can replay a newer journal's ledger subset.
func buildReplay(recs []record) ([]*replayJob, map[string]string) {
	var jobs []*replayJob
	byID := make(map[string]*replayJob)
	byHash := make(map[string][]*replayJob)
	doneHashes := make(map[string]string)
	for _, r := range recs {
		switch r.typ {
		case recSubmit:
			id, hash := string(r.field(0)), string(r.field(1))
			if id == "" || hash == "" || byID[id] != nil {
				continue
			}
			j := &replayJob{id: id, hash: hash, reqJSON: append([]byte(nil), r.field(2)...)}
			jobs = append(jobs, j)
			byID[id] = j
			byHash[hash] = append(byHash[hash], j)
		case recStart:
			for _, j := range byHash[string(r.field(0))] {
				j.started = true
			}
		case recDone:
			doneHashes[string(r.field(0))] = string(r.field(1))
		case recCancel:
			if j := byID[string(r.field(0))]; j != nil {
				j.canceled = true
			}
		}
	}
	return jobs, doneHashes
}
