// Command tablei regenerates the paper's Table I: it locks synthetic
// hosts with the ISCAS-85 I/O profiles using the paper's chain
// configurations, mounts the DIP-learning attack on each, and prints the
// measured DIP counts next to the published ones.
//
//	tablei              # the 32-bit half (seconds)
//	tablei -rows 64     # the 64-bit half (minutes: 2^32 enumeration per row)
//	tablei -rows all
//	tablei -workers 8   # bound the row/shard worker pools (0 = all cores)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		rows    = flag.String("rows", "32", "which half of Table I to run: 32, 64 or all")
		seed    = flag.Int64("seed", 1, "experiment seed")
		prove   = flag.Bool("prove", true, "SAT-prove every recovered key")
		workers = flag.Int("workers", 0, "row/shard worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var selected []experiments.TableIRow
	switch *rows {
	case "32":
		selected = experiments.TableI32
	case "64":
		selected = experiments.TableI64
	case "all":
		selected = append(append([]experiments.TableIRow(nil), experiments.TableI32...), experiments.TableI64...)
	default:
		fatalIf(fmt.Errorf("unknown -rows value %q", *rows))
	}

	fmt.Fprintf(os.Stderr, "running %d rows on %d workers ...\n",
		len(selected), experiments.DefaultWorkers(*workers))
	results, err := experiments.RunTableIRows(selected, experiments.TableIOptions{
		Seed: *seed, Prove: *prove, MatchPaperRegime: true, Workers: *workers,
	})
	fatalIf(err)
	experiments.PrintTableI(os.Stdout, results)
	for _, r := range results {
		if r.Row.Note != "" {
			fmt.Printf("note (%s, %s): %s\n", r.Row.Benchmark, r.Row.Chain, r.Row.Note)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
}
