// Package appsat implements AppSAT (Shamsi et al., HOST 2017), the
// approximate variant of the SAT attack: the DIP loop is interleaved
// with random oracle sampling, and the attack settles for a key whose
// estimated error rate falls below a threshold. Against
// low-corruptibility schemes like Anti-SAT and CAS-Lock this terminates
// quickly with an *approximate* key — the design goal of those schemes —
// whereas on traditional locking it converges to an exact key. It is the
// third baseline the DIP-learning attack is contrasted with: AppSAT
// trades exactness for termination, the paper's attack gets both.
package appsat

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Options tunes the attack.
type Options struct {
	// RoundInterval is the number of DIP iterations between sampling
	// rounds (default 8).
	RoundInterval int
	// SamplesPerRound is the number of random oracle queries per
	// sampling round (default 64).
	SamplesPerRound int
	// ErrorThreshold is the estimated error rate below which the
	// current candidate is accepted as the approximate key (default:
	// accept only a perfect sample, i.e. < 1/SamplesPerRound).
	ErrorThreshold float64
	// MaxIterations bounds the DIP loop (0 = 4096).
	MaxIterations int
	// Seed drives sampling.
	Seed int64
}

// Result reports the attack outcome.
type Result struct {
	// Key is the recovered (possibly approximate) key.
	Key []bool
	// Exact is true when the miter became UNSAT (the SAT attack's own
	// termination), i.e. the key is provably correct.
	Exact bool
	// ErrorEstimate is the sampled disagreement rate of Key at
	// termination (0 for exact keys).
	ErrorEstimate float64
	// Iterations is the number of DIPs consumed.
	Iterations int
	// OracleQueries counts oracle patterns consumed.
	OracleQueries uint64
}

// Run mounts AppSAT on a locked netlist with oracle access.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if opts.RoundInterval <= 0 {
		opts.RoundInterval = 8
	}
	if opts.SamplesPerRound <= 0 {
		opts.SamplesPerRound = 64
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 4096
	}
	if locked.NumInputs() != orc.NumInputs() || locked.NumOutputs() != orc.NumOutputs() {
		return nil, fmt.Errorf("appsat: locked netlist I/O does not match oracle")
	}
	kd, err := miter.NewKeyDiff(locked)
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	enc, err := cnf.EncodeInto(kd.Circuit, solver)
	if err != nil {
		return nil, err
	}
	diffLit := enc.OutputLits(kd.Circuit)[0]
	inputLits := enc.InputLits(kd.Circuit)
	keyLits := enc.KeyLits(kd.Circuit)
	keysA := keyLits[:kd.NKeys]
	keysB := keyLits[kd.NKeys:]

	rng := rand.New(rand.NewSource(opts.Seed))
	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	addIO := func(keys []cnf.Lit, in, out []bool) error {
		e, err := cnf.EncodeInto(locked, solver)
		if err != nil {
			return err
		}
		for i, kl := range e.KeyLits(locked) {
			solver.Add(kl.Neg(), keys[i])
			solver.Add(kl, keys[i].Neg())
		}
		for i, il := range e.InputLits(locked) {
			if in[i] {
				solver.Add(il)
			} else {
				solver.Add(il.Neg())
			}
		}
		for i, ol := range e.OutputLits(locked) {
			if out[i] {
				solver.Add(ol)
			} else {
				solver.Add(ol.Neg())
			}
		}
		return nil
	}

	extractKey := func() ([]bool, error) {
		if st := solver.Solve(); st != sat.Sat {
			return nil, fmt.Errorf("appsat: key extraction returned %v", st)
		}
		key := make([]bool, kd.NKeys)
		for i, l := range keysA {
			key[i] = solver.ModelValue(l)
		}
		return key, nil
	}

	for {
		// Sampling round.
		if res.Iterations > 0 && res.Iterations%opts.RoundInterval == 0 {
			key, err := extractKey()
			if err != nil {
				return nil, err
			}
			disagree := 0
			var failIn []bool
			var failOut []bool
			for s := 0; s < opts.SamplesPerRound; s++ {
				in := make([]bool, locked.NumInputs())
				for i := range in {
					in[i] = rng.Intn(2) == 1
				}
				want, err := orc.Query(in)
				if err != nil {
					return nil, err
				}
				res.OracleQueries++
				got, err := sim.Run(in, key)
				if err != nil {
					return nil, err
				}
				for i := range want {
					if want[i] != got[i] {
						disagree++
						failIn = append([]bool(nil), in...)
						failOut = append([]bool(nil), want...)
						break
					}
				}
			}
			errRate := float64(disagree) / float64(opts.SamplesPerRound)
			if errRate <= opts.ErrorThreshold {
				res.Key = key
				res.ErrorEstimate = errRate
				return res, nil
			}
			// Reinforce: the worst sampled disagreement becomes an IO
			// constraint for both key copies (AppSAT's amendment step).
			if failIn != nil {
				if err := addIO(keysA, failIn, failOut); err != nil {
					return nil, err
				}
				if err := addIO(keysB, failIn, failOut); err != nil {
					return nil, err
				}
			}
		}
		if res.Iterations >= opts.MaxIterations {
			key, err := extractKey()
			if err != nil {
				return nil, err
			}
			res.Key = key
			res.ErrorEstimate = 1
			return res, nil
		}
		// One DIP iteration.
		switch solver.Solve(diffLit) {
		case sat.Unsat:
			key, err := extractKey()
			if err != nil {
				return nil, err
			}
			res.Key = key
			res.Exact = true
			return res, nil
		case sat.Unknown:
			return nil, fmt.Errorf("appsat: solver returned UNKNOWN")
		}
		res.Iterations++
		dip := make([]bool, len(inputLits))
		for i, l := range inputLits {
			dip[i] = solver.ModelValue(l)
		}
		out, err := orc.Query(dip)
		if err != nil {
			return nil, err
		}
		res.OracleQueries++
		if err := addIO(keysA, dip, out); err != nil {
			return nil, err
		}
		if err := addIO(keysB, dip, out); err != nil {
			return nil, err
		}
	}
}
