package experiments

import "testing"

func TestSFLLLeakCount(t *testing.T) {
	// 2·C(8,2) = 56, 2·C(8,0) = 2, 2·C(6,3) = 40.
	for _, c := range []struct {
		n, h int
		want uint64
	}{
		{8, 2, 56}, {8, 0, 2}, {6, 3, 40}, {8, 9, 0}, {8, -1, 0},
	} {
		if got := SFLLLeakCount(c.n, c.h); got != c.want {
			t.Errorf("SFLLLeakCount(%d,%d) = %d, want %d", c.n, c.h, got, c.want)
		}
	}
}

// TestLeakSFLLH carries out the paper's future-work extension: the
// secret Hamming-distance parameter of SFLL-HD leaks from a single
// DIP-set count.
func TestLeakSFLLH(t *testing.T) {
	for _, h := range []int{0, 1, 2, 3} {
		res, err := LeakSFLLH(10, 8, h, int64(40+h))
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if res.DIPCount != res.Predicted {
			t.Errorf("h=%d: measured %d DIPs, closed form %d", h, res.DIPCount, res.Predicted)
		}
		if !res.Success {
			t.Errorf("h=%d: learned %d", h, res.LearnedH)
		}
	}
}
