// Package faults provides deterministic, seeded fault injectors for the
// oracle interface: the adversarial test harness behind the repository's
// noisy-oracle resilience work. On real silicon the "activated chip" is
// a scan-chain interface that can return bit-flipped responses or fail
// transiently (the regime of ATPG-guided fault-injection attacks), while
// the paper's attack assumes a perfect oracle. Wrapping an oracle in an
// Injector reproduces that gap on demand:
//
//   - per-output-bit flip noise with configurable probability,
//   - transient typed errors (wrapping oracle.ErrTransient),
//   - injected latency per call.
//
// Determinism: every fault decision is a pure function of (seed, input
// pattern, per-pattern occurrence index). Re-running a workload with the
// same seed reproduces the exact fault pattern bit for bit, regardless
// of how calls interleave across goroutines — distinct input patterns
// draw from independent streams, and the k-th repeat of the same pattern
// always sees the k-th draw of its stream. Repeated queries of one
// pattern therefore see fresh noise each time, which is exactly what
// majority-vote denoising needs.
package faults

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// Config parameterizes an Injector.
type Config struct {
	// FlipRate is the independent per-output-bit probability of a flip
	// in a successful response. 0 disables flip noise.
	FlipRate float64
	// TransientRate is the per-call probability that the query fails
	// with a transient error instead of answering. 0 disables.
	// Query64 and each EvalMany batch count as one call.
	TransientRate float64
	// Latency is added to every call (after the transient decision), to
	// model a slow scan interface. 0 disables.
	Latency time.Duration
	// Seed fixes the fault stream. Equal seeds reproduce equal faults.
	Seed int64
	// Telemetry, when non-nil, mirrors the injector's counters into the
	// registry as faults_calls_total, faults_flips_total and
	// faults_transients_total.
	Telemetry *telemetry.Registry
}

// Injector wraps an Oracle with seeded faults. It implements both
// oracle.Oracle and oracle.BatchOracle (batches are forwarded per-batch
// when the inner oracle is not batched).
type Injector struct {
	inner oracle.Oracle
	cfg   Config

	mu   sync.Mutex
	seen map[uint64]uint64 // pattern hash → occurrences so far

	queries    atomic.Uint64 // calls attempted (including transient failures)
	flips      atomic.Uint64 // output bits flipped
	transients atomic.Uint64 // transient errors injected

	// Registry mirrors of the counters above (nil-safe no-ops when no
	// registry is configured).
	cCalls      *telemetry.Counter
	cFlips      *telemetry.Counter
	cTransients *telemetry.Counter
}

// New wraps inner with the configured fault model.
func New(inner oracle.Oracle, cfg Config) *Injector {
	f := &Injector{inner: inner, cfg: cfg, seen: make(map[uint64]uint64)}
	f.cCalls = cfg.Telemetry.Counter("faults_calls_total")
	f.cFlips = cfg.Telemetry.Counter("faults_flips_total")
	f.cTransients = cfg.Telemetry.Counter("faults_transients_total")
	return f
}

// NumInputs implements oracle.Oracle.
func (f *Injector) NumInputs() int { return f.inner.NumInputs() }

// NumOutputs implements oracle.Oracle.
func (f *Injector) NumOutputs() int { return f.inner.NumOutputs() }

// Flips returns the number of output bits flipped so far.
func (f *Injector) Flips() uint64 { return f.flips.Load() }

// Transients returns the number of transient errors injected so far.
func (f *Injector) Transients() uint64 { return f.transients.Load() }

// Calls returns the number of oracle calls seen (including failed ones).
func (f *Injector) Calls() uint64 { return f.queries.Load() }

// occurrence returns the per-pattern occurrence index for hash h,
// incrementing it. The map is the only shared mutable state; it is tiny
// (one counter per distinct pattern) and guarded by a mutex.
func (f *Injector) occurrence(h uint64) uint64 {
	f.mu.Lock()
	k := f.seen[h]
	f.seen[h] = k + 1
	f.mu.Unlock()
	return k
}

// stream builds the SplitMix64 state for one (pattern, occurrence) cell.
func (f *Injector) stream(h, occ uint64) uint64 {
	s := uint64(f.cfg.Seed) ^ 0x9e3779b97f4a7c15
	s = mix(s ^ h)
	s = mix(s ^ (occ+1)*0xbf58476d1ce4e5b9)
	return s
}

// threshold converts a probability into a uint64 comparison threshold.
func threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	return uint64(p * float64(1<<63) * 2)
}

// faultGate handles the shared per-call bookkeeping: latency, transient
// decision, counters. It returns the noise stream state and true when
// the call should proceed.
func (f *Injector) faultGate(h uint64) (uint64, error) {
	f.queries.Add(1)
	f.cCalls.Inc()
	occ := f.occurrence(h)
	state := f.stream(h, occ)
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	if t := threshold(f.cfg.TransientRate); t != 0 && splitmix(&state) < t {
		f.transients.Add(1)
		f.cTransients.Inc()
		return 0, &transientError{}
	}
	return state, nil
}

// Query implements oracle.Oracle.
func (f *Injector) Query(in []bool) ([]bool, error) {
	state, err := f.faultGate(hashBools(in))
	if err != nil {
		return nil, err
	}
	out, err := f.inner.Query(in)
	if err != nil {
		return nil, err
	}
	if t := threshold(f.cfg.FlipRate); t != 0 {
		for i := range out {
			if splitmix(&state) < t {
				out[i] = !out[i]
				f.flips.Add(1)
				f.cFlips.Inc()
			}
		}
	}
	return out, nil
}

// Query64 implements oracle.Oracle. Flip decisions are drawn per output
// bit per lane, so a 64-pattern batch sees the same per-bit flip rate a
// pattern-at-a-time caller would.
func (f *Injector) Query64(in []uint64) ([]uint64, error) {
	state, err := f.faultGate(hashWords(in))
	if err != nil {
		return nil, err
	}
	out, err := f.inner.Query64(in)
	if err != nil {
		return nil, err
	}
	f.flipWords(out, &state)
	return out, nil
}

// EvalMany implements oracle.BatchOracle. Each batch draws its own
// fault stream and transient decision, mirroring per-batch Query64.
func (f *Injector) EvalMany(ins [][]uint64) ([][]uint64, error) {
	outs := make([][]uint64, len(ins))
	for i, in := range ins {
		out, err := f.Query64(in)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

func (f *Injector) flipWords(out []uint64, state *uint64) {
	t := threshold(f.cfg.FlipRate)
	if t == 0 {
		return
	}
	for i := range out {
		var mask uint64
		for b := 0; b < 64; b++ {
			if splitmix(state) < t {
				mask |= 1 << uint(b)
			}
		}
		if mask != 0 {
			out[i] ^= mask
			f.flips.Add(uint64(bits.OnesCount64(mask)))
			f.cFlips.Add(uint64(bits.OnesCount64(mask)))
		}
	}
}

// transientError is the typed transient failure the injector raises; it
// unwraps to oracle.ErrTransient so retry layers classify it without
// importing this package.
type transientError struct{}

func (*transientError) Error() string { return "faults: injected transient oracle failure" }

func (*transientError) Unwrap() error { return oracle.ErrTransient }

// ErrTransient re-exports the classification sentinel for convenience:
// errors.Is(err, faults.ErrTransient) and errors.Is(err,
// oracle.ErrTransient) are equivalent.
var ErrTransient = oracle.ErrTransient

// ---- hashing / PRNG --------------------------------------------------

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix(*state)
}

func hashBools(in []bool) uint64 {
	h := uint64(len(in)) * 0x100000001b3
	var w uint64
	for i, b := range in {
		if b {
			w |= 1 << uint(i%64)
		}
		if i%64 == 63 {
			h = mix(h ^ w)
			w = 0
		}
	}
	return mix(h ^ w)
}

func hashWords(in []uint64) uint64 {
	h := uint64(len(in)) * 0xcbf29ce484222325
	for _, w := range in {
		h = mix(h ^ w)
	}
	return h
}
