package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// journalService is newTestService with durability armed in dir.
func journalService(t *testing.T, dir string, cfg Config) (*Service, *telemetry.Registry) {
	t.Helper()
	cfg.JournalDir = dir
	return newTestService(t, cfg)
}

// hashFixture computes the content address the service would assign to
// req, without running a service.
func hashFixture(t *testing.T, req AttackRequest) (string, *parsedRequest) {
	t.Helper()
	probe := &Service{cfg: Config{MaxBlockWidth: core.MaxBlockWidth}}
	parsed, err := probe.validate(req)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := hashRequest(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return hash, parsed
}

// TestJournalRestartRestoresJobs is the tentpole service property: a
// daemon restart rebuilds the job ledger from the WAL — finished jobs
// answer by ID with their sealed outcome (and re-seed the result
// cache), unfinished ones are re-admitted and run to completion.
func TestJournalRestartRestoresJobs(t *testing.T) {
	dir := t.TempDir()
	fx := makeFixture(t, 8, 3, 3)
	req := AttackRequest{Locked: fx.locked, Oracle: fx.orig, Seed: 5}

	s1, _ := journalService(t, dir, Config{Workers: 1})
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j1)
	if st.State != StateDone {
		t.Fatalf("job finished as %s: %s", st.State, st.Error)
	}
	s1.Close()

	// Journal a submission the first daemon never got to run: a fresh
	// WAL entry with no start/done records, exactly what a crash between
	// admission and execution leaves behind.
	fx2 := makeFixture(t, 8, 3, 9)
	req2 := AttackRequest{Locked: fx2.locked, Oracle: fx2.orig, Seed: 6}
	hash2, _ := hashFixture(t, req2)
	jnl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	req2JSON := mustMarshal(t, req2)
	if err := jnl.append(recSubmit, []byte("j-000077"), []byte(hash2), req2JSON); err != nil {
		t.Fatal(err)
	}
	jnl.close()

	s2, reg := journalService(t, dir, Config{Workers: 1})
	// The finished job answers by its original ID, from the blob.
	st2, err := s2.Get(j1.ID())
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", j1.ID(), err)
	}
	if st2.State != StateDone {
		t.Fatalf("replayed job state = %s, want done", st2.State)
	}
	_, res, finished, err := s2.Outcome(j1.ID())
	if err != nil || !finished || res == nil {
		t.Fatalf("replayed outcome: res=%v finished=%t err=%v", res, finished, err)
	}
	assertCorrectKey(t, fx, res.Key)
	// The pending job re-admitted under its journaled ID and completes.
	pj, err := s2.lookup("j-000077")
	if err != nil {
		t.Fatal(err)
	}
	pst := waitJob(t, pj)
	if pst.State != StateDone {
		t.Fatalf("re-admitted job finished as %s: %s", pst.State, pst.Error)
	}
	if got := reg.Counter(telemetry.Label("journal_replayed_total", "state", "done")).Value(); got != 1 {
		t.Errorf("journal_replayed_total{state=done} = %d, want 1", got)
	}
	if got := reg.Counter(telemetry.Label("journal_replayed_total", "state", "pending")).Value(); got != 1 {
		t.Errorf("journal_replayed_total{state=pending} = %d, want 1", got)
	}
	// Replayed results re-seed the content cache: resubmitting the
	// finished request is a hit, not a re-run.
	j3, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st3 := waitJob(t, j3); !st3.Cached {
		t.Error("resubmission after restart missed the replay-seeded cache")
	}
	// New submissions never collide with replayed IDs.
	j4, err := s2.Submit(AttackRequest{Locked: fx.locked, Oracle: fx.orig, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if idSuffix(j4.ID()) <= 77 {
		t.Fatalf("post-replay ID %s not past journaled maximum", j4.ID())
	}
}

// TestJournalResumeFromCheckpoint pins the crash-resume path: a job
// whose previous execution left a checkpoint blob in the journal's
// blob store picks the attack up from the snapshot instead of starting
// over, and still recovers the correct key.
func TestJournalResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fx := makeFixture(t, 8, 3, 13)
	req := AttackRequest{Locked: fx.locked, Oracle: fx.orig, Seed: 21}
	hash, parsed := hashFixture(t, req)

	// Fabricate the crashed execution: run the attack directly with a
	// checkpoint writer aimed at the journal's slot for this hash, and
	// cancel it after a few oracle calls.
	if err := os.MkdirAll(filepath.Join(dir, "cas"), 0o755); err != nil {
		t.Fatal(err)
	}
	origBytes, err := bench.Canonical(parsed.orig)
	if err != nil {
		t.Fatal(err)
	}
	w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
		Path:        filepath.Join(dir, "cas", "ck-"+hash+".bin"),
		OracleHash:  cache.SumParts(origBytes),
		EveryEvents: 1,
		Interval:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, runErr := core.Run(core.Options{
		Locked: parsed.locked,
		Oracle: &tickingOracle{inner: oracle.MustNewSim(parsed.orig), left: 4, cancel: cancel},
		Seed:   req.Seed, Telemetry: telemetry.New(),
		Context: ctx, Checkpointer: w,
	})
	if runErr == nil {
		t.Fatal("fabricated crash run succeeded")
	}
	w.Close()
	if w.Writes() == 0 {
		t.Fatal("fabricated crash left no checkpoint")
	}

	jnl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recSubmit, []byte("j-000003"), []byte(hash), mustMarshal(t, req)); err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recStart, []byte(hash)); err != nil {
		t.Fatal(err)
	}
	jnl.close()

	s, reg := journalService(t, dir, Config{Workers: 1})
	j, err := s.lookup("j-000003")
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("resumed job finished as %s: %s", st.State, st.Error)
	}
	_, res, _, err := s.Outcome("j-000003")
	if err != nil || res == nil {
		t.Fatalf("resumed outcome: %v, %v", res, err)
	}
	assertCorrectKey(t, fx, res.Key)
	if got := reg.Counter("journal_resumed_from_checkpoint_total").Value(); got != 1 {
		t.Errorf("journal_resumed_from_checkpoint_total = %d, want 1", got)
	}
	// The sealed job discards its checkpoint blob.
	if _, err := os.Stat(filepath.Join(dir, "cas", "ck-"+hash+".bin")); !os.IsNotExist(err) {
		t.Errorf("checkpoint blob still present after outcome sealed (stat err: %v)", err)
	}
}

// TestJournalCancelSurvivesRestart: a cancel record replays the job as
// canceled without re-running anything.
func TestJournalCancelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fx := makeFixture(t, 8, 3, 17)
	req := AttackRequest{Locked: fx.locked, Oracle: fx.orig, Seed: 31}
	hash, _ := hashFixture(t, req)
	jnl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recSubmit, []byte("j-000009"), []byte(hash), mustMarshal(t, req)); err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recCancel, []byte("j-000009")); err != nil {
		t.Fatal(err)
	}
	jnl.close()

	s, reg := journalService(t, dir, Config{Workers: 1})
	st, err := s.Get("j-000009")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("replayed canceled job state = %s", st.State)
	}
	if got := reg.Counter("service_attack_runs_total").Value(); got != 0 {
		t.Errorf("canceled replay ran %d attacks, want 0", got)
	}
}

// TestJournalTornTailTolerated: a crash mid-append leaves a partial
// final record; boot truncates it and keeps everything before it.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recDone, []byte("h1"), []byte("done")); err != nil {
		t.Fatal(err)
	}
	jnl.close()
	path := filepath.Join(dir, journalFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), whole...), encodeRecord(recDone, []byte("h2"), []byte("done"))[:11]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	jnl2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer jnl2.close()
	if len(recs) != 1 || recs[0].typ != recDone || string(recs[0].field(0)) != "h1" {
		t.Fatalf("replayed %d records %+v, want the one whole record", len(recs), recs)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(whole)) {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), len(whole))
	}
}

// TestJournalInteriorCorruptionRefused: damage before the final record
// is a typed boot failure, never a silent skip.
func TestJournalInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recDone, []byte("h1"), []byte("done")); err != nil {
		t.Fatal(err)
	}
	if err := jnl.append(recDone, []byte("h2"), []byte("done")); err != nil {
		t.Fatal(err)
	}
	jnl.close()
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 1 // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{JournalDir: dir, Registry: telemetry.New()}); err == nil {
		t.Fatal("corrupt journal accepted")
	} else if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("got %v, want ErrJournalCorrupt", err)
	}
}

// assertCorrectKey checks a recovered key against the fixture's ground
// truth, accepting any key in the instance's equivalence class.
func assertCorrectKey(t *testing.T, fx fixture, key string) {
	t.Helper()
	bits := make([]bool, len(key))
	for i, c := range key {
		bits[i] = c == '1'
	}
	if !fx.inst.IsCorrectCASKey(bits) {
		t.Fatalf("recovered key %s is not correct for the instance", key)
	}
}

func mustMarshal(t *testing.T, req AttackRequest) []byte {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// tickingOracle cancels the attack's context after a fixed number of
// oracle calls — a deterministic stand-in for a crash mid-attack.
type tickingOracle struct {
	inner  oracle.Oracle
	left   int
	cancel context.CancelFunc
}

func (o *tickingOracle) tick() {
	o.left--
	if o.left == 0 {
		o.cancel()
	}
}
func (o *tickingOracle) NumInputs() int  { return o.inner.NumInputs() }
func (o *tickingOracle) NumOutputs() int { return o.inner.NumOutputs() }
func (o *tickingOracle) Query(in []bool) ([]bool, error) {
	o.tick()
	return o.inner.Query(in)
}
func (o *tickingOracle) Query64(in []uint64) ([]uint64, error) {
	o.tick()
	return o.inner.Query64(in)
}
