package sat

import "repro/internal/cnf"

// SolveDPLL decides a formula with a plain recursive DPLL procedure
// (unit propagation + first-unassigned-variable branching). It exists as
// an independent correctness reference for the CDCL solver and is only
// suitable for small instances.
func SolveDPLL(f *cnf.Formula) (Status, []bool) {
	assign := make([]lbool, f.NumVars+1)
	if dpll(f.Clauses, assign) {
		model := make([]bool, f.NumVars+1)
		for v := 1; v <= f.NumVars; v++ {
			model[v] = assign[v] == lTrue
		}
		return Sat, model
	}
	return Unsat, nil
}

func dpll(clauses []cnf.Clause, assign []lbool) bool {
	// Unit propagation to fixpoint; track trail for undo.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = lUndef
		}
	}
	for {
		unitFound := false
		for _, cl := range clauses {
			unassigned := 0
			var unit cnf.Lit
			sat := false
			for _, l := range cl {
				switch assign[l.Var()] {
				case lUndef:
					unassigned++
					unit = l
				case lTrue:
					if l.Sign() {
						sat = true
					}
				case lFalse:
					if !l.Sign() {
						sat = true
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				undo()
				return false
			}
			if unassigned == 1 {
				v := unit.Var()
				assign[v] = boolToLbool(unit.Sign())
				trail = append(trail, v)
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}
	// Branch on the first unassigned variable.
	branch := 0
	for v := 1; v < len(assign); v++ {
		if assign[v] == lUndef {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true // total assignment, all clauses satisfied
	}
	for _, val := range []lbool{lTrue, lFalse} {
		assign[branch] = val
		if dpll(clauses, assign) {
			return true
		}
		assign[branch] = lUndef
	}
	undo()
	return false
}

// CountModels exhaustively counts satisfying assignments of a formula
// over its declared variables; for testing only (exponential).
func CountModels(f *cnf.Formula) uint64 {
	n := f.NumVars
	if n > 24 {
		panic("sat: CountModels limited to 24 variables")
	}
	assign := make([]bool, n+1)
	var count uint64
	for x := uint64(0); x < 1<<uint(n); x++ {
		for v := 1; v <= n; v++ {
			assign[v] = x&(1<<uint(v-1)) != 0
		}
		ok, _ := f.Eval(assign)
		if ok {
			count++
		}
	}
	return count
}
