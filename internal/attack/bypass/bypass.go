// Package bypass implements the bypass attack of Xu, Shakya, Tehranipoor
// and Forte (CHES 2017): instead of recovering the key, apply an
// arbitrary wrong key and attach corrective circuitry ("bypass") that
// flips the outputs back on exactly the input patterns the wrong key
// corrupts. Against one-point-function schemes (SARLock, Anti-SAT) a
// single comparator suffices; against CAS-Lock the number of corrupted
// patterns — the DIP count the paper's Lemma 2 quantifies — makes the
// bypass circuitry blow up, which is the paper's motivation for
// attacking CAS-Lock through DIP *learning* instead.
package bypass

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// Options configures the attack.
type Options struct {
	// Layout is the CAS key-port layout (nil: discovered automatically).
	Layout *core.BlockLayout
	// MaxFixes aborts when the bypass would need more corrections than
	// this (0 = 1<<16), modeling the practical area budget that makes
	// the attack infeasible on high-corruptibility schemes.
	MaxFixes int
}

// Result is the corrected circuit and its cost.
type Result struct {
	// Circuit behaves like the original design: the locked netlist under
	// the chosen wrong key plus the bypass network.
	Circuit *netlist.Circuit
	// AppliedKey is the (wrong) key the bypass corrects.
	AppliedKey []bool
	// Fixes is the number of corrected block patterns (the DIP count).
	Fixes int
	// OverheadGates is the gate count added by the bypass network.
	OverheadGates int
}

// Run mounts the bypass attack on a CAS-locked netlist. It uses the
// Lemma-1 key pair for DIP enumeration (so every corruption of the
// chosen key is caught), queries the oracle on each DIP to learn the
// correct outputs, and synthesizes a comparator-plus-XOR bypass.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	layout := opts.Layout
	if layout == nil {
		var err error
		layout, err = core.DiscoverLayout(locked)
		if err != nil {
			return nil, err
		}
	}
	maxFixes := opts.MaxFixes
	if maxFixes == 0 {
		maxFixes = 1 << 16
	}
	n := layout.N()
	nk := locked.NumKeys()

	// Lemma-1 pair: copy A (the key we will bypass) has the active block
	// all-1; copy B all-0. Every pattern copy A corrupts is a miter DIP.
	assign := core.PairAssign{A: make([]bool, nk), B: make([]bool, nk)}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	var ext core.Extractor
	var err error
	if n <= 12 {
		ext, err = core.NewSATExtractor(locked, layout)
	} else {
		ext, err = core.NewSimExtractor(locked, layout, 1)
	}
	if err != nil {
		return nil, err
	}
	dips, err := ext.DIPs(assign)
	if err != nil {
		return nil, err
	}
	if dips.Count() > uint64(maxFixes) {
		return nil, fmt.Errorf("bypass: %d DIPs exceed the fix budget %d — bypass impractical on this instance",
			dips.Count(), maxFixes)
	}

	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	// For each DIP (a block pattern), decide whether copy A is the wrong
	// one there and on which outputs, then wire a comparator.
	out := locked.Clone()
	out.Name = locked.Name + "_bypassed"
	// Bake the applied key in: replace key inputs by constants, keeping
	// the clone's gate IDs aligned with the original circuit's.
	applied, err := oracle.Activate(out, assign.A)
	if err != nil {
		return nil, err
	}
	baseGates := applied.NumGates()

	// flipAccum[o] accumulates the OR of all comparators that must flip
	// output o.
	flipAccum := make([]netlist.ID, applied.NumOutputs())
	for i := range flipAccum {
		flipAccum[i] = netlist.InvalidID
	}
	fixes := 0
	fullIn := make([]bool, locked.NumInputs())
	for _, pat := range dips.Elements() {
		// Learn the correct outputs: block inputs set to the DIP, other
		// inputs zero (the CAS flip depends only on block inputs, so the
		// correction condition is a block-pattern comparator; output
		// differences elsewhere would contradict the extractor's cone
		// self-check).
		for i := range fullIn {
			fullIn[i] = false
		}
		for i, pos := range layout.InputPos {
			fullIn[pos] = pat&(1<<uint(i)) != 0
		}
		want, err := orc.Query(fullIn)
		if err != nil {
			return nil, err
		}
		got, err := sim.Run(fullIn, assign.A)
		if err != nil {
			return nil, err
		}
		wrongOutputs := make([]int, 0, 1)
		for o := range want {
			if want[o] != got[o] {
				wrongOutputs = append(wrongOutputs, o)
			}
		}
		if len(wrongOutputs) == 0 {
			continue // this DIP corrupts copy B, not our key
		}
		fixes++
		cmp, err := blockComparator(applied, layout, pat, fixes)
		if err != nil {
			return nil, err
		}
		for _, o := range wrongOutputs {
			if flipAccum[o] == netlist.InvalidID {
				flipAccum[o] = cmp
				continue
			}
			acc, err := applied.AddGate(netlist.Or, fmt.Sprintf("byp_or_%d_%d", o, fixes), flipAccum[o], cmp)
			if err != nil {
				return nil, err
			}
			flipAccum[o] = acc
		}
	}
	for o, acc := range flipAccum {
		if acc == netlist.InvalidID {
			continue
		}
		orig := applied.Outputs()[o]
		g, err := applied.AddGate(netlist.Xor, fmt.Sprintf("byp_fix_%d", o), orig, acc)
		if err != nil {
			return nil, err
		}
		if err := applied.ReplaceOutput(o, g); err != nil {
			return nil, err
		}
	}
	if err := applied.Validate(); err != nil {
		return nil, err
	}
	return &Result{
		Circuit:       applied,
		AppliedKey:    assign.A,
		Fixes:         fixes,
		OverheadGates: applied.NumGates() - baseGates,
	}, nil
}

// GenericOptions configures RunGenericOpts.
type GenericOptions struct {
	// MaxFixes aborts when the bypass would need more corrections than
	// this (0 = 1<<12).
	MaxFixes int
	// Seed draws the two wrong keys.
	Seed int64
	// LegacySolver enumerates witnesses with a throwaway solver instead
	// of the persistent engine — the pre-engine behavior, kept as an
	// escape hatch and as the differential-test baseline.
	LegacySolver bool
	// Backend, when non-nil, is the engine the attack drives; nil builds
	// a fresh engine for the run. Ignored under LegacySolver.
	Backend engine.Backend
	// Context, when non-nil, bounds the engine path.
	Context context.Context
	// Telemetry instruments the run (attack_* span + engine families).
	Telemetry *telemetry.Registry
}

// RunGeneric mounts the scheme-agnostic form of the bypass attack with
// default options; see RunGenericOpts.
func RunGeneric(locked *netlist.Circuit, orc oracle.Oracle, maxFixes int, seed int64) (*Result, error) {
	return RunGenericOpts(locked, orc, GenericOptions{MaxFixes: maxFixes, Seed: seed})
}

// RunGenericOpts mounts the scheme-agnostic form of the bypass attack:
// pick two arbitrary wrong keys, enumerate the full-input DIPs of their
// miter by SAT (up to the fix budget), learn the correct outputs from
// the oracle, and attach full-width comparators correcting the applied
// key. This is the published attack's shape for one-point-function
// schemes (SARLock, Anti-SAT): the applied key's corruption set is
// inside the miter's DIP set, so correcting those patterns yields an
// exact circuit (verified by the caller). On high-corruptibility
// schemes the fix budget blows up, which is the point.
//
// By default witnesses come from the persistent engine
// (Backend.EnumerateWitnesses); the witness *set* is determined by the
// circuit and the key pair, so the bypass network is the same on either
// path up to enumeration order (the differential tests prove the fix
// count, overhead and functional behavior identical).
func RunGenericOpts(locked *netlist.Circuit, orc oracle.Oracle, opts GenericOptions) (*Result, error) {
	maxFixes := opts.MaxFixes
	if maxFixes <= 0 {
		maxFixes = 1 << 12
	}
	nk := locked.NumKeys()
	if nk == 0 {
		return nil, fmt.Errorf("bypass: circuit has no key inputs")
	}
	sp := opts.Telemetry.StartSpan("attack_bypass")
	defer sp.End()
	rng := rand.New(rand.NewSource(opts.Seed))
	keyA := make([]bool, nk)
	keyB := make([]bool, nk)
	for i := range keyA {
		keyA[i] = rng.Intn(2) == 1
		keyB[i] = rng.Intn(2) == 1
	}

	b, err := newBuilder(locked, orc, keyA, maxFixes)
	if err != nil {
		return nil, err
	}
	if opts.LegacySolver {
		err = enumerateLegacy(locked, keyA, keyB, b.correct)
	} else {
		err = enumerateEngine(locked, keyA, keyB, opts, b.correct)
	}
	if err != nil {
		return nil, err
	}
	return b.finish()
}

// enumerateEngine streams miter witnesses from the persistent engine.
func enumerateEngine(locked *netlist.Circuit, keyA, keyB []bool, opts GenericOptions, visit func(pat []bool) error) error {
	be := opts.Backend
	if be == nil {
		eng, err := engine.New(locked, nil)
		if err != nil {
			return err
		}
		be = eng
	}
	if opts.Context != nil {
		be.SetContext(opts.Context)
	}
	if opts.Telemetry != nil {
		be.SetTelemetry(opts.Telemetry)
	}
	be.SetPhase("bypass")
	var visitErr error
	err := be.EnumerateWitnesses(keyA, keyB, func(pat []bool) bool {
		visitErr = visit(pat)
		return visitErr == nil
	})
	if visitErr != nil {
		return visitErr
	}
	return err
}

// enumerateLegacy streams miter witnesses from a throwaway solver with
// permanent blocking clauses — the original implementation.
func enumerateLegacy(locked *netlist.Circuit, keyA, keyB []bool, visit func(pat []bool) error) error {
	m, err := miter.NewFixedKey(locked, keyA, keyB)
	if err != nil {
		return err
	}
	solver := sat.New()
	enc, err := cnf.EncodeInto(m, solver)
	if err != nil {
		return err
	}
	solver.Add(enc.OutputLits(m)[0])
	inLits := enc.InputLits(m)
	for solver.Solve() == sat.Sat {
		pat := make([]bool, len(inLits))
		blocking := make([]cnf.Lit, len(inLits))
		for i, l := range inLits {
			pat[i] = solver.ModelValue(l)
			if pat[i] {
				blocking[i] = l.Neg()
			} else {
				blocking[i] = l
			}
		}
		solver.Add(blocking...)
		if err := visit(pat); err != nil {
			return err
		}
	}
	return nil
}

// builder accumulates the bypass network over a witness stream. The
// result depends only on the witness *set* (gate tags aside), so the
// engine and legacy enumerations converge to the same circuit.
type builder struct {
	applied   *netlist.Circuit
	sim       *netlist.Simulator
	orc       oracle.Oracle
	keyA      []bool
	maxFixes  int
	baseGates int
	flipAccum []netlist.ID
	fixes     int
}

func newBuilder(locked *netlist.Circuit, orc oracle.Oracle, keyA []bool, maxFixes int) (*builder, error) {
	applied, err := oracle.Activate(locked, keyA)
	if err != nil {
		return nil, err
	}
	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	flipAccum := make([]netlist.ID, applied.NumOutputs())
	for i := range flipAccum {
		flipAccum[i] = netlist.InvalidID
	}
	return &builder{
		applied:   applied,
		sim:       sim,
		orc:       orc,
		keyA:      keyA,
		maxFixes:  maxFixes,
		baseGates: applied.NumGates(),
		flipAccum: flipAccum,
	}, nil
}

// correct learns the oracle's outputs on one witness and, when the
// applied key is the corrupted one there, wires a comparator correction.
func (b *builder) correct(pat []bool) error {
	want, err := b.orc.Query(pat)
	if err != nil {
		return err
	}
	got, err := b.sim.Run(pat, b.keyA)
	if err != nil {
		return err
	}
	var wrong []int
	for o := range want {
		if want[o] != got[o] {
			wrong = append(wrong, o)
		}
	}
	if len(wrong) == 0 {
		return nil // this DIP corrupts key B only
	}
	b.fixes++
	if b.fixes > b.maxFixes {
		return fmt.Errorf("bypass: fix budget %d exceeded — bypass impractical on this instance", b.maxFixes)
	}
	cmp, err := inputComparator(b.applied, pat, b.fixes)
	if err != nil {
		return err
	}
	for _, o := range wrong {
		if b.flipAccum[o] == netlist.InvalidID {
			b.flipAccum[o] = cmp
			continue
		}
		acc, err := b.applied.AddGate(netlist.Or, fmt.Sprintf("bypg_or_%d_%d", o, b.fixes), b.flipAccum[o], cmp)
		if err != nil {
			return err
		}
		b.flipAccum[o] = acc
	}
	return nil
}

// finish XORs the accumulated flip conditions into the outputs.
func (b *builder) finish() (*Result, error) {
	for o, acc := range b.flipAccum {
		if acc == netlist.InvalidID {
			continue
		}
		orig := b.applied.Outputs()[o]
		g, err := b.applied.AddGate(netlist.Xor, fmt.Sprintf("bypg_fix_%d", o), orig, acc)
		if err != nil {
			return nil, err
		}
		if err := b.applied.ReplaceOutput(o, g); err != nil {
			return nil, err
		}
	}
	if err := b.applied.Validate(); err != nil {
		return nil, err
	}
	return &Result{
		Circuit:       b.applied,
		AppliedKey:    b.keyA,
		Fixes:         b.fixes,
		OverheadGates: b.applied.NumGates() - b.baseGates,
	}, nil
}

// inputComparator builds AND(all primary inputs == pat) inside c.
func inputComparator(c *netlist.Circuit, pat []bool, tag int) (netlist.ID, error) {
	bits := make([]netlist.ID, len(pat))
	for i, in := range c.Inputs() {
		if pat[i] {
			bits[i] = in
		} else {
			inv, err := c.AddGate(netlist.Not, fmt.Sprintf("bypg_n%d_%d", tag, i), in)
			if err != nil {
				return netlist.InvalidID, err
			}
			bits[i] = inv
		}
	}
	acc := bits[0]
	for i := 1; i < len(bits); i++ {
		var err error
		acc, err = c.AddGate(netlist.And, fmt.Sprintf("bypg_a%d_%d", tag, i), acc, bits[i])
		if err != nil {
			return netlist.InvalidID, err
		}
	}
	return acc, nil
}

// blockComparator builds AND(block inputs == pat) inside c.
func blockComparator(c *netlist.Circuit, layout *core.BlockLayout, pat uint64, tag int) (netlist.ID, error) {
	bits := make([]netlist.ID, layout.N())
	for i, pos := range layout.InputPos {
		in := c.Inputs()[pos]
		if pat&(1<<uint(i)) != 0 {
			bits[i] = in
		} else {
			inv, err := c.AddGate(netlist.Not, fmt.Sprintf("byp_n%d_%d", tag, i), in)
			if err != nil {
				return netlist.InvalidID, err
			}
			bits[i] = inv
		}
	}
	acc := bits[0]
	for i := 1; i < len(bits); i++ {
		var err error
		acc, err = c.AddGate(netlist.And, fmt.Sprintf("byp_a%d_%d", tag, i), acc, bits[i])
		if err != nil {
			return netlist.InvalidID, err
		}
	}
	return acc, nil
}
