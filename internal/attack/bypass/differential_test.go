package bypass

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TestEngineLegacyDifferential holds the engine-backed generic bypass
// and the legacy throwaway-solver bypass to identical results on the
// one-point-function schemes the attack targets. The witness set of the
// two wrong keys' miter is determined by the circuit and the key pair,
// so even though the engine may enumerate it in a different order, the
// fix count, the applied key, the gate overhead and the corrected
// circuit's function must all coincide.
func TestEngineLegacyDifferential(t *testing.T) {
	h, err := synth.Generate(synth.Config{Name: "bh", Inputs: 11, Outputs: 3, Gates: 55, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"antisat", "sarlock"} {
		sch, ok := lock.SchemeByName(name)
		if !ok {
			t.Fatalf("scheme %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			locked, _, err := sch.Apply(h.Clone(), 3)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := RunGenericOpts(locked.Circuit, oracle.MustNewSim(h),
				GenericOptions{MaxFixes: 64, Seed: 9, LegacySolver: true})
			if err != nil {
				t.Fatal(err)
			}
			tel := telemetry.New()
			eng, err := RunGenericOpts(locked.Circuit, oracle.MustNewSim(h),
				GenericOptions{MaxFixes: 64, Seed: 9, Telemetry: tel})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Fixes != legacy.Fixes {
				t.Fatalf("fixes: engine %d, legacy %d", eng.Fixes, legacy.Fixes)
			}
			if eng.OverheadGates != legacy.OverheadGates {
				t.Fatalf("overhead gates: engine %d, legacy %d", eng.OverheadGates, legacy.OverheadGates)
			}
			for i := range eng.AppliedKey {
				if eng.AppliedKey[i] != legacy.AppliedKey[i] {
					t.Fatalf("applied key bit %d differs", i)
				}
			}
			// Both corrected circuits must implement the original design.
			for _, res := range []*Result{eng, legacy} {
				ok, cex, err := miter.ProveEquivalentHashed(res.Circuit, h)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("bypassed circuit is not equivalent to the host (cex %v)", cex)
				}
			}
			if got := tel.Counter("engine_encodings_total").Value(); got != 1 {
				t.Fatalf("engine_encodings_total = %d, want 1", got)
			}
			if got := tel.Counter("engine_witnesses_total").Value(); got == 0 {
				t.Fatal("engine path enumerated no witnesses")
			}
		})
	}
}
