// Package bench reads and writes combinational netlists in the ISCAS-85
// "bench" format, the lingua franca of the logic-locking literature:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//
// Following the convention used by published locking tools, primary
// inputs whose name begins with a configurable prefix (default
// "keyinput") are treated as key inputs rather than functional inputs,
// so locked benchmarks round-trip with their key port intact.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// DefaultKeyPrefix is the input-name prefix identifying key inputs.
const DefaultKeyPrefix = "keyinput"

// ReadOptions configures parsing.
type ReadOptions struct {
	// Name is the circuit name to assign (bench files carry none).
	Name string
	// KeyPrefix marks inputs that are key inputs. Empty means "no key
	// detection": every INPUT is a primary input.
	KeyPrefix string
}

// Read parses a bench-format netlist.
func Read(r io.Reader, opts ReadOptions) (*netlist.Circuit, error) {
	type protoGate struct {
		name   string
		typ    netlist.GateType
		fanin  []string
		lineNo int
	}
	var (
		inputs  []string
		outputs []string
		gates   []protoGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			name, err := parseDecl(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, name)
		case hasPrefixFold(line, "OUTPUT"):
			name, err := parseDecl(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, name)
		default:
			g, err := parseAssign(line, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, protoGate{g.name, g.typ, g.fanin, lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	c := netlist.New(opts.Name)
	for _, name := range inputs {
		isKey := opts.KeyPrefix != "" && strings.HasPrefix(name, opts.KeyPrefix)
		var err error
		if isKey {
			_, err = c.AddKey(name)
		} else {
			_, err = c.AddInput(name)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	// Gates may be declared in any order in a bench file; add them in
	// dependency order.
	pending := make(map[string]protoGate, len(gates))
	for _, g := range gates {
		if _, dup := pending[g.name]; dup || c.HasName(g.name) {
			return nil, fmt.Errorf("bench: line %d: duplicate definition of %q", g.lineNo, g.name)
		}
		pending[g.name] = g
	}
	for len(pending) > 0 {
		progress := false
		// Deterministic iteration keeps gate IDs stable across runs.
		names := make([]string, 0, len(pending))
		for n := range pending {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := pending[n]
			ready := true
			fanin := make([]netlist.ID, len(g.fanin))
			for i, f := range g.fanin {
				id := c.Lookup(f)
				if id == netlist.InvalidID {
					ready = false
					break
				}
				fanin[i] = id
			}
			if !ready {
				continue
			}
			if _, err := c.AddGate(g.typ, g.name, fanin...); err != nil {
				return nil, fmt.Errorf("bench: line %d: %w", g.lineNo, err)
			}
			delete(pending, n)
			progress = true
		}
		if !progress {
			for n := range pending {
				g := pending[n]
				for _, f := range g.fanin {
					if c.Lookup(f) == netlist.InvalidID {
						if _, isPending := pending[f]; !isPending {
							return nil, fmt.Errorf("bench: line %d: gate %q references undefined signal %q", g.lineNo, g.name, f)
						}
					}
				}
			}
			return nil, fmt.Errorf("bench: circuit contains a combinational cycle")
		}
	}
	for _, name := range outputs {
		id := c.Lookup(name)
		if id == netlist.InvalidID {
			return nil, fmt.Errorf("bench: OUTPUT(%s) references undefined signal", name)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: parsed circuit invalid: %w", err)
	}
	return c, nil
}

// ReadString parses a bench-format netlist from a string with the default
// key prefix.
func ReadString(name, s string) (*netlist.Circuit, error) {
	return Read(strings.NewReader(s), ReadOptions{Name: name, KeyPrefix: DefaultKeyPrefix})
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

func parseDecl(line, kw string, lineNo int) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("bench: line %d: malformed %s declaration %q", lineNo, kw, line)
	}
	name := strings.TrimSpace(rest[1 : len(rest)-1])
	if name == "" {
		return "", fmt.Errorf("bench: line %d: empty %s name", lineNo, kw)
	}
	return name, nil
}

type assign struct {
	name  string
	typ   netlist.GateType
	fanin []string
}

var typeByMnemonic = map[string]netlist.GateType{
	"AND": netlist.And, "NAND": netlist.Nand,
	"OR": netlist.Or, "NOR": netlist.Nor,
	"XOR": netlist.Xor, "XNOR": netlist.Xnor,
	"NOT": netlist.Not, "INV": netlist.Not,
	"BUF": netlist.Buf, "BUFF": netlist.Buf,
}

func parseAssign(line string, lineNo int) (assign, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return assign{}, fmt.Errorf("bench: line %d: unrecognized statement %q", lineNo, line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return assign{}, fmt.Errorf("bench: line %d: malformed gate expression %q", lineNo, rhs)
	}
	mnemonic := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	typ, ok := typeByMnemonic[mnemonic]
	if !ok {
		if mnemonic == "DFF" {
			return assign{}, fmt.Errorf("bench: line %d: sequential element DFF unsupported (combinational circuits only)", lineNo)
		}
		return assign{}, fmt.Errorf("bench: line %d: unknown gate type %q", lineNo, mnemonic)
	}
	var fanin []string
	for _, f := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return assign{}, fmt.Errorf("bench: line %d: empty fanin in %q", lineNo, line)
		}
		fanin = append(fanin, f)
	}
	return assign{name: name, typ: typ, fanin: fanin}, nil
}

// Write serializes a circuit in bench format. Key inputs are emitted as
// ordinary INPUT declarations (their names carry the key prefix by
// convention); constants are lowered to gates over a synthesized
// tautology, since the format has no constant literal.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d key inputs, %d outputs\n", c.NumInputs(), c.NumKeys(), c.NumOutputs())
	for _, id := range c.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gate(id).Name)
	}
	for _, id := range c.Keys() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gate(id).Name)
	}
	for _, id := range c.Outputs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gate(id).Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0, netlist.Const1:
			// Lower constants through an arbitrary input: x XOR x = 0.
			if c.NumInputs()+c.NumKeys() == 0 {
				return fmt.Errorf("bench: cannot serialize constant %q in a circuit with no inputs", g.Name)
			}
			var ref string
			if c.NumInputs() > 0 {
				ref = c.Gate(c.Inputs()[0]).Name
			} else {
				ref = c.Gate(c.Keys()[0]).Name
			}
			op := "XOR"
			if g.Type == netlist.Const1 {
				op = "XNOR"
			}
			fmt.Fprintf(bw, "%s = %s(%s, %s)\n", g.Name, op, ref, ref)
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gate(f).Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, mnemonicFor(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func mnemonicFor(t netlist.GateType) string {
	switch t {
	case netlist.Buf:
		return "BUFF"
	case netlist.Not:
		return "NOT"
	default:
		return t.String()
	}
}

// WriteString serializes a circuit to a bench-format string.
func WriteString(c *netlist.Circuit) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}
