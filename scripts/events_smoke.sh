#!/bin/sh
# events-smoke: end-to-end check of the live-observability surfaces.
#
# CLI side: runs caslock-attack with -events-out and -progress, then
# validates the NDJSON event stream with tracecheck -events (seq
# monotone, phases balanced, per-round DIP monotonicity, terminal
# done). Daemon side: starts caslock-served, submits a job, consumes
# GET /v1/attacks/{id}/events live over SSE until the server closes
# the stream, asserts the final frame is the terminal done event,
# re-reads the stream with Last-Event-ID from a mid-stream frame and
# asserts the replay starts past it and still ends in done, and checks
# that the debug server serves /dashboard (self-contained HTML) and
# /metrics/history.json (parseable, carrying sampled series).
#
# Usage: events_smoke.sh <workdir>
set -eu

DIR=${1:?usage: events_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-served ./cmd/caslock-attack ./cmd/casgen ./cmd/tracecheck

"$DIR/bin/casgen" -inputs 12 -gates 60 -scheme cas -chain "2A-O-3A" \
	-out "$DIR/locked.bench" -orig "$DIR/orig.bench"

# --- CLI: -events-out NDJSON + estimator-driven -progress ------------
"$DIR/bin/caslock-attack" -locked "$DIR/locked.bench" -oracle "$DIR/orig.bench" \
	-progress -events-out "$DIR/events.ndjson" >"$DIR/attack.out" 2>"$DIR/attack.err"
"$DIR/bin/tracecheck" -events "$DIR/events.ndjson"
if ! grep -q 'eta' "$DIR/attack.err"; then
	echo "events-smoke: -progress printed no estimator digests" >&2
	cat "$DIR/attack.err" >&2
	exit 1
fi

# --- daemon: SSE stream, resume, dashboard ---------------------------
"$DIR/bin/caslock-served" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -workers 2 \
	>"$DIR/served.out" 2>"$DIR/served.err" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

base=""
dbg=""
for _ in $(seq 1 100); do
	base=$(sed -n 's/^listening on \(http:[^ ]*\)$/\1/p' "$DIR/served.out" || true)
	dbg=$(sed -n 's/.*debug server listening on \(http:[^ ]*\) .*/\1/p' "$DIR/served.err" || true)
	[ -n "$base" ] && [ -n "$dbg" ] && break
	sleep 0.1
done
if [ -z "$base" ] || [ -z "$dbg" ]; then
	echo "events-smoke: daemon never announced its ports" >&2
	cat "$DIR/served.err" >&2
	exit 1
fi

jq -n --rawfile locked "$DIR/locked.bench" --rawfile oracle "$DIR/orig.bench" \
	'{locked: $locked, oracle: $oracle, seed: 7}' >"$DIR/req.json"

# Submit, then immediately attach to the live stream: the server holds
# the connection open and closes it after the terminal done event, so
# a bounded curl that exits 0 proves both delivery and stream close.
curl -fsS -X POST "$base/v1/attacks" --data-binary @"$DIR/req.json" >"$DIR/submit.json"
id=$(jq -r .id "$DIR/submit.json")
curl -fsSN --max-time 120 "$base/v1/attacks/$id/events" >"$DIR/stream.sse"

# The SSE data lines are exactly the NDJSON event encoding; tracecheck
# re-validates the full invariant set on what actually went over HTTP.
sed -n 's/^data: //p' "$DIR/stream.sse" >"$DIR/stream.ndjson"
"$DIR/bin/tracecheck" -events "$DIR/stream.ndjson"
last_type=$(sed -n 's/^event: //p' "$DIR/stream.sse" | tail -1)
if [ "$last_type" != done ]; then
	echo "events-smoke: stream ended with \"$last_type\", want done" >&2
	exit 1
fi

# Last-Event-ID resume: replay from a mid-stream frame must start
# strictly past it and still end in done.
nframes=$(sed -n 's/^id: //p' "$DIR/stream.sse" | wc -l)
mid=$(sed -n 's/^id: //p' "$DIR/stream.sse" | sed -n "$((nframes / 2))p")
curl -fsSN --max-time 60 -H "Last-Event-ID: $mid" \
	"$base/v1/attacks/$id/events" >"$DIR/resume.sse"
first=$(sed -n 's/^id: //p' "$DIR/resume.sse" | head -1)
if [ -z "$first" ] || [ "$first" -le "$mid" ]; then
	echo "events-smoke: resume after id $mid replayed id \"$first\"" >&2
	exit 1
fi
last_type=$(sed -n 's/^event: //p' "$DIR/resume.sse" | tail -1)
if [ "$last_type" != done ]; then
	echo "events-smoke: resumed stream ended with \"$last_type\", want done" >&2
	exit 1
fi

# Dashboard: one self-contained page, no external fetches; history:
# parseable JSON whose series arrays align with the time column.
curl -fsS "$dbg/dashboard" >"$DIR/dashboard.html"
grep -q '<!DOCTYPE html>' "$DIR/dashboard.html"
if grep -Eq 'src=|https?://' "$DIR/dashboard.html"; then
	echo "events-smoke: dashboard references external resources" >&2
	exit 1
fi
curl -fsS "$dbg/metrics/history.json" >"$DIR/history.json"
jq -e '(.t | length) > 0' "$DIR/history.json" >/dev/null
tlen=$(jq '.t | length' "$DIR/history.json")
bad=$(jq --argjson n "$tlen" '[(.counters // {})[], (.gauges // {})[] | select(length != $n)] | length' "$DIR/history.json")
if [ "$bad" != 0 ]; then
	echo "events-smoke: $bad history series misaligned with the time column" >&2
	exit 1
fi

kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
if [ "$rc" != 0 ]; then
	echo "events-smoke: daemon exited $rc on graceful shutdown" >&2
	cat "$DIR/served.err" >&2
	exit 1
fi

echo "events-smoke: OK (job $id streamed to done, resume past id $mid, dashboard self-contained, history aligned)"
rm -rf "$DIR"
