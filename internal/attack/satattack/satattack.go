// Package satattack implements the oracle-guided SAT attack of
// Subramanyan, Ray and Malik (HOST 2015), the baseline every
// SAT-resilient locking scheme (including CAS-Lock) is designed to
// defeat. The attack repeatedly finds distinguishing input patterns with
// a key-differential miter, constrains both key copies to agree with the
// oracle on each DIP, and terminates when no further DIP exists — at
// which point any key satisfying the accumulated constraints is correct.
package satattack

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Options bounds the attack.
type Options struct {
	// MaxIterations stops the DIP loop early (0 = unlimited). SAT-hard
	// schemes like CAS-Lock need an exponential number of iterations, so
	// benchmarks set a cap to measure "did not finish".
	MaxIterations int
	// ConflictBudget bounds each individual SAT call (0 = unlimited).
	ConflictBudget uint64
}

// Result reports the attack outcome.
type Result struct {
	// Key is the recovered key (nil when the attack hit a bound).
	Key []bool
	// Iterations is the number of DIPs used.
	Iterations int
	// Completed is true when the attack proved key correctness (the
	// miter became UNSAT), false when it stopped on a bound.
	Completed bool
	// OracleQueries is the number of oracle patterns consumed.
	OracleQueries uint64
	// SolverStats aggregates SAT work.
	SolverStats sat.Stats
}

// Run mounts the SAT attack on a locked netlist with black-box oracle
// access.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if locked.NumInputs() != orc.NumInputs() || locked.NumOutputs() != orc.NumOutputs() {
		return nil, fmt.Errorf("satattack: locked netlist I/O (%d/%d) does not match oracle (%d/%d)",
			locked.NumInputs(), locked.NumOutputs(), orc.NumInputs(), orc.NumOutputs())
	}
	kd, err := miter.NewKeyDiff(locked)
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	solver.ConflictBudget = opts.ConflictBudget
	enc, err := cnf.EncodeInto(kd.Circuit, solver)
	if err != nil {
		return nil, err
	}

	diffLit := enc.OutputLits(kd.Circuit)[0]
	inputLits := enc.InputLits(kd.Circuit)
	keyLits := enc.KeyLits(kd.Circuit)
	keysA := keyLits[:kd.NKeys]
	keysB := keyLits[kd.NKeys:]

	res := &Result{}
	queriesBefore := countQueries(orc)

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			res.SolverStats = solver.Stats()
			res.OracleQueries = countQueries(orc) - queriesBefore
			return res, nil
		}
		status := solver.Solve(diffLit)
		if status == sat.Unknown {
			res.SolverStats = solver.Stats()
			res.OracleQueries = countQueries(orc) - queriesBefore
			return res, nil
		}
		if status == sat.Unsat {
			break // no more DIPs: constraints pin a correct key
		}
		res.Iterations++

		dip := make([]bool, len(inputLits))
		for i, l := range inputLits {
			dip[i] = solver.ModelValue(l)
		}
		out, err := orc.Query(dip)
		if err != nil {
			return nil, err
		}
		// Constrain both key copies to reproduce the oracle on this DIP.
		for _, keys := range [][]cnf.Lit{keysA, keysB} {
			if err := addIOConstraint(locked, solver, keys, dip, out); err != nil {
				return nil, err
			}
		}
	}

	// Any satisfying assignment of the constraints is a correct key.
	if st := solver.Solve(); st != sat.Sat {
		return nil, fmt.Errorf("satattack: final key extraction returned %v", st)
	}
	key := make([]bool, kd.NKeys)
	for i, l := range keysA {
		key[i] = solver.ModelValue(l)
	}
	res.Key = key
	res.Completed = true
	res.SolverStats = solver.Stats()
	res.OracleQueries = countQueries(orc) - queriesBefore
	return res, nil
}

// addIOConstraint encodes a fresh copy of the locked circuit into the
// live solver with inputs fixed to dip, outputs fixed to out, and key
// variables tied to keyVars.
func addIOConstraint(locked *netlist.Circuit, solver *sat.Solver,
	keyVars []cnf.Lit, dip []bool, out []bool) error {

	enc, err := cnf.EncodeInto(locked, solver)
	if err != nil {
		return err
	}
	for i, kl := range enc.KeyLits(locked) {
		solver.Add(kl.Neg(), keyVars[i])
		solver.Add(kl, keyVars[i].Neg())
	}
	for i, il := range enc.InputLits(locked) {
		if dip[i] {
			solver.Add(il)
		} else {
			solver.Add(il.Neg())
		}
	}
	for i, ol := range enc.OutputLits(locked) {
		if out[i] {
			solver.Add(ol)
		} else {
			solver.Add(ol.Neg())
		}
	}
	return nil
}

func countQueries(orc oracle.Oracle) uint64 {
	if s, ok := orc.(*oracle.Sim); ok {
		return s.Queries()
	}
	return 0
}
