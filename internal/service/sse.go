package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/events"
)

// defaultSSEHeartbeat is the idle keep-alive cadence on event streams:
// a comment frame every 15s defeats proxy idle timeouts without waking
// clients for nothing. Tests shorten Service.sseHeartbeat directly.
const defaultSSEHeartbeat = 15 * time.Second

// parseLastEventID reads the SSE resume position: the standard
// Last-Event-ID header a reconnecting EventSource sends, or an
// explicit ?after=N for curl-driven resumes. Unparseable values mean
// "from the beginning".
func parseLastEventID(r *http.Request) uint64 {
	s := r.Header.Get("Last-Event-ID")
	if s == "" {
		s = r.URL.Query().Get("after")
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// handleEvents streams a job's lifecycle events as Server-Sent Events:
//
//	id: <seq>
//	event: <type>
//	data: <event JSON>
//
// A live job streams from its execution's bus (replaying retained
// history after Last-Event-ID first); a finished or cache-hit job
// replays its sealed history and closes. The stream always ends with a
// terminal done event, then the connection closes — an EventSource
// client that wants to stop should close on done rather than
// reconnect.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "response writer cannot stream", Kind: KindUnavailable})
		return
	}
	after := parseLastEventID(r)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	if j.exec != nil && j.exec.bus != nil {
		// Live execution — or one that just sealed: a closed bus hands
		// out a pre-closed subscription that still replays the retained
		// tail, so this path serves both without racing the worker.
		s.streamBus(w, r, fl, j.exec.bus, after)
		return
	}
	out := j.outcome()
	if out == nil && j.exec != nil {
		// Bus-less fallback execution (the submission raced a finishing
		// flight): wait for the outcome it is about to publish.
		select {
		case <-j.exec.flight.Done:
			out = j.outcome()
		case <-r.Context().Done():
			return
		}
	}
	if out == nil {
		return
	}
	replaySealed(w, fl, out, after)
}

// writeSSE renders one event frame. The id line carries the bus
// sequence number, which is exactly what a resume echoes back.
func writeSSE(w http.ResponseWriter, ev events.Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.MarshalNDJSON())
}

// streamBus pumps a subscription until the bus closes (job sealed) or
// the client disconnects, with heartbeat comments while idle.
func (s *Service) streamBus(w http.ResponseWriter, r *http.Request, fl http.Flusher, bus *events.Bus, after uint64) {
	sub := bus.Subscribe(after)
	defer sub.Close()
	hb := s.sseHeartbeat
	if hb <= 0 {
		hb = defaultSSEHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		evs := sub.Poll()
		for _, ev := range evs {
			writeSSE(w, ev)
		}
		if len(evs) > 0 {
			fl.Flush()
			continue // drain fully before blocking
		}
		if sub.Closed() {
			return // sealed and drained: the done event was the last write
		}
		select {
		case <-sub.Wait():
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// replaySealed serves a terminal job's sealed history. Outcomes sealed
// by older builds carry no events; those get a synthesized done frame
// so every stream still terminates the same way.
func replaySealed(w http.ResponseWriter, fl http.Flusher, out *outcome, after uint64) {
	lastSeq := after
	sawDone := false
	for _, ev := range out.events {
		if ev.Seq <= after {
			continue
		}
		writeSSE(w, ev)
		lastSeq = ev.Seq
		sawDone = sawDone || ev.Type == events.TypeDone
	}
	if !sawDone {
		writeSSE(w, events.Event{
			Seq:      lastSeq + 1,
			TS:       time.Now().UnixMilli(),
			Type:     events.TypeDone,
			Fraction: 1,
			Fields:   map[string]string{"state": string(out.state())},
		})
	}
	fl.Flush()
}
