package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/lock"
	"repro/internal/synth"
)

// BenchmarkPreparedDiff measures the extraction hot loop on a 64-bit-key
// CAS cone (the kernel behind the paper's 2^32-pattern enumerations).
func BenchmarkPreparedDiff(b *testing.B) {
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: 40, Outputs: 4, Gates: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	chain := lock.MustParseChain("2A-O-2(4A-O)-2(2A-O)-12A")
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	ext, err := NewSimExtractor(locked.Circuit, layout, 3)
	if err != nil {
		b.Fatal(err)
	}
	assign := PairAssign{A: make([]bool, 64), B: make([]bool, 64)}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	p, err := ext.prepare(assign)
	if err != nil {
		b.Fatal(err)
	}
	block := make([]uint64, 32)
	for i := 0; i < 32 && i < 6; i++ {
		block[i] = lanePattern(i)
	}
	b.ReportMetric(float64(p.prog.Len()), "ops")
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		block[7] = ^block[7]
		sink ^= p.diff(block)
	}
	_ = sink
	b.SetBytes(64 * 8)
}

// parallelBenchInstance locks a wide-chain instance sized so a full
// enumeration is substantial (2^22 patterns) but fits a benchmark
// iteration.
func parallelBenchInstance(b *testing.B) (*SimExtractor, PairAssign) {
	b.Helper()
	const n = 22
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: n + 4, Outputs: 4, Gates: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if i%4 == 2 {
			chain[i] = lock.ChainOr
		}
	}
	chain[n-2] = lock.ChainAnd
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{Chain: chain, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	ext, err := NewSimExtractor(locked.Circuit, layout, 3)
	if err != nil {
		b.Fatal(err)
	}
	assign := PairAssign{A: make([]bool, locked.Circuit.NumKeys()), B: make([]bool, locked.Circuit.NumKeys())}
	for _, pos := range layout.Key1Pos {
		assign.A[pos] = true
	}
	return ext, assign
}

// BenchmarkSimExtractorParallel sweeps the shard worker count over a
// full 2^22-pattern DIP extraction — the speedup criterion workload.
// Run with -benchmem to see the per-extraction allocation cost of the
// worker pool.
func BenchmarkSimExtractorParallel(b *testing.B) {
	ext, assign := parallelBenchInstance(b)
	counts := []int{1, 2}
	if nc := runtime.NumCPU(); nc != 1 && nc != 2 {
		counts = append(counts, nc)
	}
	var want uint64
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			ext.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			var dips *DIPSet
			for i := 0; i < b.N; i++ {
				var err error
				dips, err = ext.DIPs(assign)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Bit-identical results regardless of worker count.
			if want == 0 {
				want = dips.Count()
			} else if got := dips.Count(); got != want {
				b.Fatalf("workers=%d: %d DIPs, want %d", workers, got, want)
			}
			b.ReportMetric(float64(dips.Count()), "DIPs")
		})
	}
}
