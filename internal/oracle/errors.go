package oracle

import (
	"errors"
	"fmt"
)

// ErrTransient marks an oracle failure that may succeed on retry: a
// scan-chain handshake glitch, a dropped response, a momentary power
// event on the activated chip. Fault injectors wrap it and the resilient
// decorator retries on it; every other error is treated as permanent.
var ErrTransient = errors.New("oracle: transient failure")

// ErrPermanent marks an oracle failure that retrying cannot fix — either
// the underlying error was not transient, or the retry budget ran out.
// PermanentError wraps it, so errors.Is(err, ErrPermanent) classifies.
var ErrPermanent = errors.New("oracle: permanent failure")

// PermanentError reports that the resilient oracle gave up on a query.
type PermanentError struct {
	// Attempts is how many times the query was tried before giving up.
	Attempts int
	// Err is the last underlying failure.
	Err error
}

// Error implements error.
func (e *PermanentError) Error() string {
	return fmt.Sprintf("oracle: query failed permanently after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes both ErrPermanent (classification) and the underlying
// cause to errors.Is/As.
func (e *PermanentError) Unwrap() []error { return []error{ErrPermanent, e.Err} }
