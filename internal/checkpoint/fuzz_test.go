package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode asserts the decoder's contract on arbitrary
// input: it never panics, every failure is one of the package's typed
// errors, and every accepted snapshot re-encodes to the exact input
// bytes (the format is canonical, so decode∘encode is the identity).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(fullSnapshot().Encode())
	f.Add((&Snapshot{Active: 1, DIPWidth: 1, DIPWords: []uint64{2}}).Encode())
	f.Add((&Snapshot{
		Active: 2, DIPWidth: 7, DIPWords: []uint64{1, 0},
		Responses: []Response{{In: []uint64{3}, Out: []uint64{4}}},
		Scalar:    []ScalarResponse{{In: []byte{1}, Out: []byte{0}}},
	}).Encode())
	f.Add([]byte("CASCKPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatal("accepted snapshot does not re-encode to its input")
		}
	})
}
