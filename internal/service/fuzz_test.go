package service

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzJournalReplay asserts the WAL decoder's contract on arbitrary
// bytes: it never panics, every rejection is typed ErrJournalCorrupt,
// accepted records re-encode to the consumed prefix byte-for-byte, and
// the ledger fold (buildReplay) digests whatever survives decoding.
func FuzzJournalReplay(f *testing.F) {
	var wal []byte
	wal = append(wal, encodeRecord(recSubmit, []byte("j-000001"), []byte("hash-a"), []byte(`{"locked":"x"}`))...)
	wal = append(wal, encodeRecord(recStart, []byte("hash-a"))...)
	wal = append(wal, encodeRecord(recCheckpointRef, []byte("hash-a"), []byte("cas/ck-hash-a.bin"))...)
	wal = append(wal, encodeRecord(recDone, []byte("hash-a"), []byte("done"))...)
	wal = append(wal, encodeRecord(recCancel, []byte("j-000001"))...)
	f.Add(wal)
	f.Add(wal[:len(wal)-3]) // torn tail
	f.Add(encodeRecord(recSubmit))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, err := parseJournal(data)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = append(re, encodeRecord(r.typ, r.fields...)...)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatal("accepted records do not re-encode to the consumed prefix")
		}
		jobs, doneHashes := buildReplay(recs)
		for _, j := range jobs {
			if j.id == "" || j.hash == "" {
				t.Fatal("replay admitted a job without id or hash")
			}
		}
		_ = doneHashes
	})
}
