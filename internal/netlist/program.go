package netlist

import "fmt"

// This file implements compiled gate programs: a circuit's topological
// order flattened into a flat instruction stream of fused two-input
// operations over a dense register file. Compiling once removes the
// per-gate dynamic dispatch (fanin gather + Eval64 type switch) from the
// simulation hot loop, and the same program executes unchanged at word
// widths 1, 4, and 8 (64/256/512 bit-parallel lanes) — the wide kernels
// just stride the register file.

// Program opcodes. Every op is at most two-input: n-ary gates are
// decomposed at compile time into a chain of accumulating two-input ops
// (see Emit), with the inverted variant fused into the final op.
const (
	opConst0 uint8 = iota
	opConst1
	opBuf
	opNot
	opAnd2
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
)

// progOp is one instruction: regs[dst] = code(regs[a], regs[b]).
// Unary ops set b = a; constant ops set a = b = dst, so every operand of
// every op is a valid register and the wide kernels can form their
// array pointers unconditionally.
type progOp struct {
	code uint8
	a    int32
	b    int32
	dst  int32
}

// Program is a compiled gate program. Build one with NewProgram + Emit
// (in topological order), then execute it with Exec/Exec256/Exec512
// over a caller-owned register file. Programs are immutable after
// construction and safe for concurrent execution over distinct register
// files.
type Program struct {
	ops  []progOp
	regs int // register-file size in words (width 1)
}

// NewProgram returns an empty program whose register file holds at
// least numRegs registers. Emit grows the file as needed.
func NewProgram(numRegs int) *Program {
	if numRegs < 0 {
		numRegs = 0
	}
	return &Program{regs: numRegs}
}

// NumRegs returns the register-file size in registers. Exec needs a
// slice of NumRegs() words; Exec256 and Exec512 need 4× and 8× that.
func (p *Program) NumRegs() int { return p.regs }

// Len returns the number of compiled instructions.
func (p *Program) Len() int { return len(p.ops) }

func (p *Program) grow(r int32) {
	if int(r) >= p.regs {
		p.regs = int(r) + 1
	}
}

// Emit appends the instructions computing gate type t over the argument
// registers into dst. n-ary gates decompose into an accumulate-into-dst
// chain, which requires dst to not appear among args (always true when
// compiling an acyclic circuit with fresh destination registers); Emit
// rejects the aliasing rather than miscompute.
func (p *Program) Emit(t GateType, dst int32, args []int32) error {
	if dst < 0 {
		return fmt.Errorf("netlist: Emit %s: negative dst register %d", t, dst)
	}
	for _, a := range args {
		if a < 0 {
			return fmt.Errorf("netlist: Emit %s: negative arg register %d", t, a)
		}
		if a == dst {
			return fmt.Errorf("netlist: Emit %s: dst register %d aliases an argument", t, dst)
		}
		p.grow(a)
	}
	p.grow(dst)

	switch t {
	case Const0:
		if len(args) != 0 {
			return fmt.Errorf("netlist: Emit CONST0: got %d args, want 0", len(args))
		}
		p.ops = append(p.ops, progOp{code: opConst0, a: dst, b: dst, dst: dst})
		return nil
	case Const1:
		if len(args) != 0 {
			return fmt.Errorf("netlist: Emit CONST1: got %d args, want 0", len(args))
		}
		p.ops = append(p.ops, progOp{code: opConst1, a: dst, b: dst, dst: dst})
		return nil
	case Buf, Input:
		if len(args) != 1 {
			return fmt.Errorf("netlist: Emit %s: got %d args, want 1", t, len(args))
		}
		p.ops = append(p.ops, progOp{code: opBuf, a: args[0], b: args[0], dst: dst})
		return nil
	case Not:
		if len(args) != 1 {
			return fmt.Errorf("netlist: Emit NOT: got %d args, want 1", len(args))
		}
		p.ops = append(p.ops, progOp{code: opNot, a: args[0], b: args[0], dst: dst})
		return nil
	}

	var base, inv uint8
	switch t {
	case And:
		base, inv = opAnd2, opAnd2
	case Nand:
		base, inv = opAnd2, opNand2
	case Or:
		base, inv = opOr2, opOr2
	case Nor:
		base, inv = opOr2, opNor2
	case Xor:
		base, inv = opXor2, opXor2
	case Xnor:
		base, inv = opXor2, opXnor2
	default:
		return fmt.Errorf("netlist: Emit on invalid gate type %s", t)
	}
	if len(args) < 2 {
		return fmt.Errorf("netlist: Emit %s: got %d args, want ≥ 2", t, len(args))
	}
	if len(args) == 2 {
		// Fused two-input fast path: one op, inversion included.
		p.ops = append(p.ops, progOp{code: inv, a: args[0], b: args[1], dst: dst})
		return nil
	}
	// n-ary: accumulate into dst; the final op carries the inversion.
	p.ops = append(p.ops, progOp{code: base, a: args[0], b: args[1], dst: dst})
	for _, a := range args[2 : len(args)-1] {
		p.ops = append(p.ops, progOp{code: base, a: dst, b: a, dst: dst})
	}
	p.ops = append(p.ops, progOp{code: inv, a: dst, b: args[len(args)-1], dst: dst})
	return nil
}

// Exec runs the program over a width-1 register file (64 bit-parallel
// lanes). len(regs) must be at least NumRegs().
func (p *Program) Exec(regs []uint64) {
	if p.regs == 0 {
		return
	}
	regs = regs[:p.regs]
	for i := range p.ops {
		op := &p.ops[i]
		switch op.code {
		case opConst0:
			regs[op.dst] = 0
		case opConst1:
			regs[op.dst] = ^uint64(0)
		case opBuf:
			regs[op.dst] = regs[op.a]
		case opNot:
			regs[op.dst] = ^regs[op.a]
		case opAnd2:
			regs[op.dst] = regs[op.a] & regs[op.b]
		case opNand2:
			regs[op.dst] = ^(regs[op.a] & regs[op.b])
		case opOr2:
			regs[op.dst] = regs[op.a] | regs[op.b]
		case opNor2:
			regs[op.dst] = ^(regs[op.a] | regs[op.b])
		case opXor2:
			regs[op.dst] = regs[op.a] ^ regs[op.b]
		case opXnor2:
			regs[op.dst] = ^(regs[op.a] ^ regs[op.b])
		}
	}
}

// Exec256 runs the program over a stride-4 register file (256 lanes):
// register r occupies regs[4r : 4r+4]. len(regs) must be at least
// 4 × NumRegs(). The per-op bodies are hand-unrolled over array
// pointers so the compiler emits one bounds check per operand, not one
// per word.
func (p *Program) Exec256(regs []uint64) {
	if p.regs == 0 {
		return
	}
	regs = regs[:p.regs*4]
	for i := range p.ops {
		op := &p.ops[i]
		a := (*[4]uint64)(regs[int(op.a)*4:])
		b := (*[4]uint64)(regs[int(op.b)*4:])
		d := (*[4]uint64)(regs[int(op.dst)*4:])
		switch op.code {
		case opConst0:
			d[0], d[1], d[2], d[3] = 0, 0, 0, 0
		case opConst1:
			d[0], d[1], d[2], d[3] = ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
		case opBuf:
			d[0], d[1], d[2], d[3] = a[0], a[1], a[2], a[3]
		case opNot:
			d[0], d[1], d[2], d[3] = ^a[0], ^a[1], ^a[2], ^a[3]
		case opAnd2:
			d[0], d[1], d[2], d[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
		case opNand2:
			d[0], d[1], d[2], d[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
		case opOr2:
			d[0], d[1], d[2], d[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
		case opNor2:
			d[0], d[1], d[2], d[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
		case opXor2:
			d[0], d[1], d[2], d[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
		case opXnor2:
			d[0], d[1], d[2], d[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
		}
	}
}

// Exec512 runs the program over a stride-8 register file (512 lanes):
// register r occupies regs[8r : 8r+8]. len(regs) must be at least
// 8 × NumRegs().
func (p *Program) Exec512(regs []uint64) {
	if p.regs == 0 {
		return
	}
	regs = regs[:p.regs*8]
	for i := range p.ops {
		op := &p.ops[i]
		a := (*[8]uint64)(regs[int(op.a)*8:])
		b := (*[8]uint64)(regs[int(op.b)*8:])
		d := (*[8]uint64)(regs[int(op.dst)*8:])
		switch op.code {
		case opConst0:
			d[0], d[1], d[2], d[3] = 0, 0, 0, 0
			d[4], d[5], d[6], d[7] = 0, 0, 0, 0
		case opConst1:
			d[0], d[1], d[2], d[3] = ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
			d[4], d[5], d[6], d[7] = ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
		case opBuf:
			d[0], d[1], d[2], d[3] = a[0], a[1], a[2], a[3]
			d[4], d[5], d[6], d[7] = a[4], a[5], a[6], a[7]
		case opNot:
			d[0], d[1], d[2], d[3] = ^a[0], ^a[1], ^a[2], ^a[3]
			d[4], d[5], d[6], d[7] = ^a[4], ^a[5], ^a[6], ^a[7]
		case opAnd2:
			d[0], d[1], d[2], d[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
			d[4], d[5], d[6], d[7] = a[4]&b[4], a[5]&b[5], a[6]&b[6], a[7]&b[7]
		case opNand2:
			d[0], d[1], d[2], d[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
			d[4], d[5], d[6], d[7] = ^(a[4] & b[4]), ^(a[5] & b[5]), ^(a[6] & b[6]), ^(a[7] & b[7])
		case opOr2:
			d[0], d[1], d[2], d[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
			d[4], d[5], d[6], d[7] = a[4]|b[4], a[5]|b[5], a[6]|b[6], a[7]|b[7]
		case opNor2:
			d[0], d[1], d[2], d[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
			d[4], d[5], d[6], d[7] = ^(a[4] | b[4]), ^(a[5] | b[5]), ^(a[6] | b[6]), ^(a[7] | b[7])
		case opXor2:
			d[0], d[1], d[2], d[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
			d[4], d[5], d[6], d[7] = a[4]^b[4], a[5]^b[5], a[6]^b[6], a[7]^b[7]
		case opXnor2:
			d[0], d[1], d[2], d[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
			d[4], d[5], d[6], d[7] = ^(a[4] ^ b[4]), ^(a[5] ^ b[5]), ^(a[6] ^ b[6]), ^(a[7] ^ b[7])
		}
	}
}

// CompileCircuit compiles the circuit's gate logic into a Program whose
// register file is indexed by gate ID (register i holds gate i's
// value). Input-type gates (primary inputs and keys) emit no
// instructions — callers load their registers before executing.
func CompileCircuit(c *Circuit) (*Program, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := NewProgram(c.NumGates())
	var args []int32
	for _, id := range order {
		g := &c.gates[id]
		if g.Type == Input {
			continue
		}
		args = args[:0]
		for _, f := range g.Fanin {
			args = append(args, int32(f))
		}
		if err := p.Emit(g.Type, int32(id), args); err != nil {
			return nil, fmt.Errorf("netlist: compiling gate %q: %w", g.Name, err)
		}
	}
	return p, nil
}
