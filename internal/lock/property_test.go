package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// Property: ChainConfig String/Parse round-trips for arbitrary chains.
func TestChainStringParseProperty(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 {
			return true
		}
		if len(bits) > 64 {
			bits = bits[:64]
		}
		chain := make(ChainConfig, len(bits))
		for i, b := range bits {
			if b {
				chain[i] = ChainOr
			}
		}
		back, err := ParseChain(chain.String())
		return err == nil && back.Equal(chain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the effective mask composed with the key recovers the
// identity — EffectiveMask(kg, k) ⊕ k depends only on kg.
func TestEffectiveMaskProperty(t *testing.T) {
	f := func(kgBits, k1, k2 []bool) bool {
		n := len(kgBits)
		if n == 0 {
			return true
		}
		if len(k1) < n || len(k2) < n {
			return true
		}
		kg := make([]netlist.GateType, n)
		for i, b := range kgBits {
			kg[i] = netlist.Xor
			if b {
				kg[i] = netlist.Xnor
			}
		}
		m1 := EffectiveMask(kg, k1[:n])
		m2 := EffectiveMask(kg, k2[:n])
		for i := 0; i < n; i++ {
			// m ⊕ k = polarity of the key gate, independent of k.
			if (m1[i] != k1[i]) != (m2[i] != k2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: EvalCASPair with the canonical key produces complementary
// blocks on every input — the defining invariant of the scheme.
func TestCASPairComplementarityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(10)
		chain := make(ChainConfig, n-1)
		for i := range chain {
			if rng.Intn(2) == 0 {
				chain[i] = ChainOr
			}
		}
		kg1 := randomKeyGateTypes(rng, n)
		kg2 := randomKeyGateTypes(rng, n)
		k1 := canonicalKeyFor(kg1)
		k2 := canonicalKeyFor(kg2)
		x := make([]uint64, n)
		for i := range x {
			x[i] = rng.Uint64()
		}
		g, gb := EvalCASPair(chain, kg1, kg2, k1, k2, x)
		if g&gb != 0 {
			t.Fatalf("trial %d: flip fires under canonical key (chain %s)", trial, chain)
		}
		if g|gb != ^uint64(0) {
			t.Fatalf("trial %d: blocks not complementary (chain %s)", trial, chain)
		}
	}
}

// Property: for ANY keys, the flip fires exactly where the two blocks'
// effective masks disagree as functions — i.e. Y(x) = f(x⊕m1) ∧ ¬f(x⊕m2).
func TestCASPairMaskSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		chain := make(ChainConfig, n-1)
		for i := range chain {
			if rng.Intn(2) == 0 {
				chain[i] = ChainOr
			}
		}
		kg1 := randomKeyGateTypes(rng, n)
		kg2 := randomKeyGateTypes(rng, n)
		k1 := make([]bool, n)
		k2 := make([]bool, n)
		for i := range k1 {
			k1[i] = rng.Intn(2) == 1
			k2[i] = rng.Intn(2) == 1
		}
		m1 := EffectiveMask(kg1, k1)
		m2 := EffectiveMask(kg2, k2)
		for x := uint64(0); x < 1<<uint(n); x++ {
			xs := make([]uint64, n)
			for i := range xs {
				if x&(1<<uint(i)) != 0 {
					xs[i] = 1
				}
			}
			g, gb := EvalCASPair(chain, kg1, kg2, k1, k2, xs)
			want := evalPlainChain(chain, x, m1) && !evalPlainChain(chain, x, m2)
			if (g&gb&1 != 0) != want {
				t.Fatalf("trial %d x=%d: flip semantics violated", trial, x)
			}
		}
	}
}

func evalPlainChain(chain ChainConfig, x uint64, mask []bool) bool {
	bit := func(i int) bool {
		v := x&(1<<uint(i)) != 0
		return v != mask[i]
	}
	acc := bit(0)
	for j, g := range chain {
		in := bit(j + 1)
		if g == ChainAnd {
			acc = acc && in
		} else {
			acc = acc || in
		}
	}
	return acc
}
