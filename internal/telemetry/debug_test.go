package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebugListenErrorPropagates(t *testing.T) {
	first, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Binding the same port again must fail loudly, not silently.
	if _, err := ServeDebug(first.Addr(), nil); err == nil {
		t.Fatal("second listen on an occupied port reported no error")
	}
}

func TestServeDebugCloseGraceful(t *testing.T) {
	r := New()
	r.Counter("x_total").Inc()
	d, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(d.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x_total") {
		t.Fatalf("metrics missing counter: %s", body)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err() while serving: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}
	// The listener must be gone promptly after Close.
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := client.Get(d.URL() + "/healthz"); err == nil {
		t.Fatal("server still accepting after Close")
	}
}

func TestServeDebugCloseNil(t *testing.T) {
	var d *DebugServer
	if err := d.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
}
