package oracle

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// flaky is a scripted inner oracle: it answers a fixed pattern, fails
// transiently for the first `transients` calls of each query, and can
// flip scripted bits on scripted attempts.
type flaky struct {
	inputs, outputs int
	calls           int
	transientFirst  int  // the first k calls fail transiently
	transientEvery  int  // every k-th call fails transiently (0 = never)
	hardFail        bool // non-transient failure on every call
	flipOnCall      map[int]uint64
}

func (f *flaky) NumInputs() int  { return f.inputs }
func (f *flaky) NumOutputs() int { return f.outputs }

func (f *flaky) Query(in []bool) ([]bool, error) {
	out, err := f.Query64(make([]uint64, f.inputs))
	if err != nil {
		return nil, err
	}
	res := make([]bool, f.outputs)
	for i := range res {
		res[i] = out[i]&1 != 0
	}
	return res, nil
}

func (f *flaky) Query64(in []uint64) ([]uint64, error) {
	f.calls++
	if f.hardFail {
		return nil, errors.New("scan chain burned out")
	}
	if f.calls <= f.transientFirst || (f.transientEvery > 0 && f.calls%f.transientEvery == 0) {
		return nil, fmt.Errorf("blip: %w", ErrTransient)
	}
	out := make([]uint64, f.outputs)
	for i := range out {
		out[i] = 0xAAAA5555AAAA5555
	}
	if m, ok := f.flipOnCall[f.calls]; ok {
		out[0] ^= m
	}
	return out, nil
}

func noSleep(time.Duration) {}

func TestResilientRetriesTransients(t *testing.T) {
	inner := &flaky{inputs: 4, outputs: 2, transientFirst: 2}
	r := NewResilient(inner, ResilientOptions{Retries: 3, Sleep: noSleep})
	out, err := r.Query64(make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAAAA5555AAAA5555 {
		t.Fatalf("wrong answer %x", out[0])
	}
	if st := r.Stats(); st.Retries == 0 || st.SubQueries < 2 {
		t.Fatalf("stats did not record the retry: %+v", st)
	}
}

func TestResilientPermanentFailure(t *testing.T) {
	r := NewResilient(&flaky{inputs: 4, outputs: 1, hardFail: true},
		ResilientOptions{Retries: 3, Sleep: noSleep})
	_, err := r.Query64(make([]uint64, 4))
	var perm *PermanentError
	if !errors.As(err, &perm) || !errors.Is(err, ErrPermanent) {
		t.Fatalf("want PermanentError, got %v", err)
	}
	if perm.Attempts != 1 {
		t.Fatalf("non-transient failure retried: %d attempts", perm.Attempts)
	}

	// All-transient inner: the budget runs out and Attempts reflects it.
	r = NewResilient(&flaky{inputs: 4, outputs: 1, transientEvery: 1},
		ResilientOptions{Retries: 3, Sleep: noSleep})
	_, err = r.Query64(make([]uint64, 4))
	if !errors.As(err, &perm) {
		t.Fatalf("want PermanentError, got %v", err)
	}
	if perm.Attempts != 4 || !errors.Is(perm.Err, ErrTransient) {
		t.Fatalf("budget accounting wrong: %+v", perm)
	}
}

func TestResilientMajorityOutvotesFlips(t *testing.T) {
	// One of three votes carries flipped bits: the majority removes them.
	inner := &flaky{inputs: 4, outputs: 2, flipOnCall: map[int]uint64{2: 0x00FF}}
	r := NewResilient(inner, ResilientOptions{Votes: 3, Sleep: noSleep})
	out, err := r.Query64(make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAAAA5555AAAA5555 || out[1] != 0xAAAA5555AAAA5555 {
		t.Fatalf("majority failed to denoise: %x %x", out[0], out[1])
	}
	if st := r.Stats(); st.VotesOverruled == 0 {
		t.Fatalf("overruled counter not incremented: %+v", st)
	}
}

func TestResilientVotesRoundedOdd(t *testing.T) {
	r := NewResilient(&flaky{inputs: 1, outputs: 1}, ResilientOptions{Votes: 4, Sleep: noSleep})
	if r.opts.Votes != 5 {
		t.Fatalf("Votes = %d, want 5", r.opts.Votes)
	}
}

func TestResilientBoolQueryMajority(t *testing.T) {
	inner := &flaky{inputs: 4, outputs: 2, flipOnCall: map[int]uint64{1: 1}}
	r := NewResilient(inner, ResilientOptions{Votes: 3, Sleep: noSleep})
	out, err := r.Query(make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Bit 0 of word 0 is 1 in the clean answer; the call-1 flip cleared
	// it once, and the majority must restore it.
	if !out[0] {
		t.Fatal("majority lost the true bit")
	}
}

func TestResilientBackoffBounds(t *testing.T) {
	r := NewResilient(&flaky{inputs: 1, outputs: 1},
		ResilientOptions{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Sleep: noSleep})
	for attempt := 1; attempt <= 12; attempt++ {
		d := r.backoff(attempt)
		if d < time.Millisecond/2 || d > 12*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside [0.5ms, 12ms]", attempt, d)
		}
	}
}

// TestResilientAgainstSim wires the decorator over the real simulator
// oracle and checks transparency (no faults → identical answers).
func TestResilientAgainstSim(t *testing.T) {
	c := buildPlain()
	clean := MustNewSim(c)
	r := NewResilient(MustNewSim(c), ResilientOptions{Votes: 3, Sleep: noSleep})
	in := make([]uint64, c.NumInputs())
	for i := range in {
		in[i] = 0x123456789abcdef0 * uint64(i+1)
	}
	want, err := clean.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resilient wrapper altered a clean oracle's answer at %d", i)
		}
	}
	outs, err := r.EvalMany([][]uint64{in, in})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		for i := range want {
			if out[i] != want[i] {
				t.Fatal("EvalMany answer differs")
			}
		}
	}
}
