// Package synth generates seeded pseudo-random combinational circuits.
//
// The DIP-learning attack never consults the host circuit's function —
// the host is common to both miter copies, so DIPs are decided entirely
// by the CAS blocks. What matters for a faithful reproduction is the
// benchmark's I/O profile (so the key/input sizes of the paper's Table I
// apply) and that the generated circuit is a well-formed DAG every tool
// in the pipeline can process. This package provides both an arbitrary
// generator and the ISCAS-85 profiles used by the paper.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netlist"
)

// Config describes the circuit to generate.
type Config struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int   // number of logic gates (excluding inputs)
	Seed    int64 // generation is fully deterministic in the seed
}

// Profile is the I/O and size profile of a published benchmark circuit.
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int
}

// ISCAS85 holds the profiles of the ISCAS-85 circuits used in the paper's
// Table I (inputs/outputs as printed there; gate counts from the
// benchmark suite).
var ISCAS85 = []Profile{
	{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160},
	{Name: "c880", Inputs: 60, Outputs: 26, Gates: 383},
	{Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880},
	{Name: "c2670", Inputs: 233, Outputs: 140, Gates: 1193},
	{Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669},
	{Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307},
	{Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2416},
	{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512},
}

// ProfileByName returns the ISCAS-85 profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range ISCAS85 {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown benchmark profile %q", name)
}

// FromProfile builds a Config matching a profile.
func FromProfile(p Profile, seed int64) Config {
	return Config{Name: p.Name, Inputs: p.Inputs, Outputs: p.Outputs, Gates: p.Gates, Seed: seed}
}

// Generate builds a random combinational circuit. Guarantees:
//
//   - the result validates (acyclic, well-formed);
//   - every primary input is in the transitive fanin of some output;
//   - every output is driven by a distinct gate;
//   - generation is deterministic in Config.Seed.
func Generate(cfg Config) (*netlist.Circuit, error) {
	if cfg.Inputs < 1 {
		return nil, fmt.Errorf("synth: need at least 1 input, got %d", cfg.Inputs)
	}
	if cfg.Outputs < 1 {
		return nil, fmt.Errorf("synth: need at least 1 output, got %d", cfg.Outputs)
	}
	minGates := cfg.Outputs
	if need := (cfg.Inputs + 1) / 2; need > minGates {
		minGates = need
	}
	if cfg.Gates < minGates {
		return nil, fmt.Errorf("synth: %d gates cannot cover %d inputs and drive %d outputs (need ≥ %d)",
			cfg.Gates, cfg.Inputs, cfg.Outputs, minGates)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	c := netlist.New(cfg.Name)
	inputs := make([]netlist.ID, cfg.Inputs)
	for i := range inputs {
		inputs[i] = c.MustAddInput(fmt.Sprintf("I%d", i))
	}

	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not,
	}
	signals := append([]netlist.ID(nil), inputs...)
	unused := append([]netlist.ID(nil), inputs...) // inputs not yet consumed
	rng.Shuffle(len(unused), func(i, j int) { unused[i], unused[j] = unused[j], unused[i] })

	pick := func() netlist.ID {
		// Recency bias: half the time pick among the most recent quarter,
		// building depth instead of a flat two-level circuit.
		if n := len(signals); rng.Intn(2) == 0 && n > 8 {
			lo := n - n/4
			return signals[lo+rng.Intn(n-lo)]
		}
		return signals[rng.Intn(len(signals))]
	}

	for i := 0; i < cfg.Gates; i++ {
		typ := types[rng.Intn(len(types))]
		var fanin []netlist.ID
		arity := 1
		if typ != netlist.Not {
			arity = 2
			if rng.Intn(4) == 0 {
				arity = 3
			}
		}
		for j := 0; j < arity; j++ {
			// Drain the unused-input pool first so every input is consumed.
			if len(unused) > 0 {
				fanin = append(fanin, unused[len(unused)-1])
				unused = unused[:len(unused)-1]
				continue
			}
			fanin = append(fanin, pick())
		}
		id := c.MustAddGate(typ, fmt.Sprintf("N%d", i), fanin...)
		signals = append(signals, id)
	}

	// Outputs: the last cfg.Outputs distinct gates, which by construction
	// sit late in the topological order and (transitively) cover the
	// earlier logic.
	gateCount := len(signals) - len(inputs)
	if gateCount < cfg.Outputs {
		return nil, fmt.Errorf("synth: internal: %d gates for %d outputs", gateCount, cfg.Outputs)
	}
	outs := signals[len(signals)-cfg.Outputs:]
	for _, id := range outs {
		c.MustMarkOutput(id)
	}

	// Any input (or intermediate gate) not in the fanin of the chosen
	// outputs gets folded in through extra XOR taps on the first output,
	// preserving the output count while guaranteeing full input coverage.
	mask := c.TransitiveFanin(outs...)
	var uncovered []netlist.ID
	for _, id := range inputs {
		if !mask[id] {
			uncovered = append(uncovered, id)
		}
	}
	if len(uncovered) > 0 {
		sort.Slice(uncovered, func(i, j int) bool { return uncovered[i] < uncovered[j] })
		acc := outs[0]
		for i, id := range uncovered {
			acc = c.MustAddGate(netlist.Xor, fmt.Sprintf("COV%d", i), acc, id)
		}
		if err := c.ReplaceOutput(0, acc); err != nil {
			return nil, err
		}
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated circuit invalid: %w", err)
	}
	return c, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *netlist.Circuit {
	c, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return c
}
