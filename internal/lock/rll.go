package lock

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// RLLInstance records where random key gates were inserted.
type RLLInstance struct {
	// WireNames are the nets each key gate was inserted on, in key order.
	WireNames []string
	// KeyGates are the inserted gate types (XOR or XNOR), in key order.
	KeyGates []netlist.GateType
	// CorrectKey reduces every inserted gate to a buffer.
	CorrectKey []bool
}

// ApplyRLL locks a copy of the host with random logic locking (EPIC
// style): nKeys XOR/XNOR key gates inserted on distinct randomly chosen
// internal nets. It is the classic pre-SAT-attack baseline scheme.
func ApplyRLL(host *netlist.Circuit, nKeys int, seed int64) (*Locked, *RLLInstance, error) {
	if host.NumKeys() != 0 {
		return nil, nil, fmt.Errorf("lock: host %q already has key inputs", host.Name)
	}
	if nKeys < 1 {
		return nil, nil, fmt.Errorf("lock: need at least 1 key bit, got %d", nKeys)
	}
	c := host.Clone()
	c.Name = host.Name + "_rll"
	rng := rand.New(rand.NewSource(seed))

	// Candidate wires: every gate (including inputs). Inserting on a
	// wire w means all of w's fanouts (and output markings) read the key
	// gate instead.
	candidates := make([]netlist.ID, 0, c.NumGates())
	for id := 0; id < c.NumGates(); id++ {
		candidates = append(candidates, netlist.ID(id))
	}
	if len(candidates) < nKeys {
		return nil, nil, fmt.Errorf("lock: host has %d nets, cannot insert %d key gates", len(candidates), nKeys)
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	targets := candidates[:nKeys]

	inst := &RLLInstance{
		WireNames:  make([]string, nKeys),
		KeyGates:   make([]netlist.GateType, nKeys),
		CorrectKey: make([]bool, nKeys),
	}
	for i, w := range targets {
		typ := netlist.Xor
		if rng.Intn(2) == 1 {
			typ = netlist.Xnor
		}
		k, err := c.AddKey(keyName(i))
		if err != nil {
			return nil, nil, err
		}
		kg, err := c.AddGate(typ, fmt.Sprintf("rll_kg%d", i), w, k)
		if err != nil {
			return nil, nil, err
		}
		rewireFanouts(c, w, kg, kg)
		inst.WireNames[i] = c.Gate(w).Name
		inst.KeyGates[i] = typ
		inst.CorrectKey[i] = typ == netlist.Xnor
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	return &Locked{Circuit: c, Key: append([]bool(nil), inst.CorrectKey...)}, inst, nil
}
