package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the live-observation endpoint behind the CLIs'
// -debug-addr flag. It serves, on its own mux (never the default one):
//
//	/metrics               Prometheus text exposition of the registry
//	/metrics.json          JSON snapshot (metrics + ended spans)
//	/metrics/history.json  sampled counter/gauge time series (last 10 min)
//	/dashboard             self-contained live HTML dashboard
//	/trace.json            Chrome-trace JSON of the spans ended so far
//	/healthz               {"status":"ok","uptime":"..."}
//	/debug/vars            expvar (memstats, cmdline)
//	/debug/pprof/          the net/http/pprof suite (profile, heap, trace, ...)
type DebugServer struct {
	srv      *http.Server
	ln       net.Listener
	start    time.Time
	hist     *History   // owned sampler; stopped first on Close (nil when no registry)
	serveErr chan error // buffered; receives Serve's return exactly once
}

// shutdownTimeout bounds Close's graceful drain: in-flight scrapes get
// this long to finish before the connections are torn down.
const shutdownTimeout = 2 * time.Second

// expvarOnce guards the process-global expvar publication: expvar.Publish
// panics on duplicate names, and tests start several servers.
var expvarOnce sync.Once

// ServeDebug binds addr (e.g. ":6060", or ":0" for an ephemeral port)
// and serves the debug endpoints for r in a background goroutine until
// Close. The registry may be nil: endpoints then serve empty documents,
// and pprof still works — profiling needs no metrics.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, start: time.Now(), serveErr: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"status": "ok",
			"uptime": time.Since(d.start).Round(time.Millisecond).String(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	d.hist = NewHistory(r, DefaultHistoryInterval, DefaultHistorySamples)
	mux.HandleFunc("/metrics/history.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := d.hist.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, dashboardHTML)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux}
	go func() { d.serveErr <- d.srv.Serve(ln) }()
	return d, nil
}

// Err reports a Serve failure, if one has occurred, without blocking.
// The normal shutdown sentinel (http.ErrServerClosed) is filtered out;
// after Close has consumed the serve result, Err returns nil.
func (d *DebugServer) Err() error {
	if d == nil {
		return nil
	}
	select {
	case err := <-d.serveErr:
		d.serveErr <- err // keep it available for Close
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	default:
		return nil
	}
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// URL returns the http base URL of the server.
func (d *DebugServer) URL() string {
	if d == nil {
		return ""
	}
	return fmt.Sprintf("http://%s", d.ln.Addr())
}

// Close stops the server gracefully: no new connections are accepted
// and in-flight handlers get shutdownTimeout to drain before being cut
// off. It returns any lifecycle error the background Serve goroutine
// hit (a crashed accept loop was previously silent); the normal
// http.ErrServerClosed sentinel is not an error.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	// Stop the sampler before the listener: once Close returns, no
	// goroutine of this server is left running.
	d.hist.Close()
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	shutdownErr := d.srv.Shutdown(ctx)
	if shutdownErr != nil {
		// Drain exceeded the deadline (or the context machinery failed):
		// fall back to the hard close so no connection outlives us.
		d.srv.Close()
	}
	serveErr := <-d.serveErr
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	return serveErr
}
