package core

import (
	"errors"
	"testing"

	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// panicExtractor blows up inside the attack, standing in for an
// internal invariant tripped by hostile input.
type panicExtractor struct{ n int }

func (p *panicExtractor) BlockWidth() int                        { return p.n }
func (p *panicExtractor) DIPs(PairAssign) (*DIPSet, error)       { panic("extractor invariant violated") }
func (p *panicExtractor) Classes(PairAssign) (ClassSizes, error) { panic("unreachable") }
func (p *panicExtractor) Extractions() int                       { return 0 }

func TestRunSafeRecoversPanic(t *testing.T) {
	h := host(t, 10)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-2A"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSafe(Options{Locked: locked.Circuit, Oracle: orc, Extractor: &panicExtractor{n: 5}})
	if res != nil {
		t.Fatal("panicking attack returned a result")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "extractor invariant violated" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError carries %v / %d stack bytes", pe.Value, len(pe.Stack))
	}
}

func TestNewDIPSetWidthSentinel(t *testing.T) {
	for _, n := range []int{0, -1, maxDenseBits + 1} {
		if _, err := NewDIPSet(n); !errors.Is(err, ErrBlockWidth) {
			t.Errorf("NewDIPSet(%d) = %v, want ErrBlockWidth", n, err)
		}
	}
	if _, err := NewDIPSet(1); err != nil {
		t.Errorf("NewDIPSet(1) = %v", err)
	}
}

// TestSATEncodingCacheAcrossHypotheses runs a full attack through the
// legacy SAT-extractor path and checks the miter encoding was reused:
// the attack extracts under both Lemma-1 hypothesis assignments (and
// possibly a calibration sweep), and every repeated visit to an
// assignment must hit the LRU instead of re-encoding. (The default
// incremental-engine path never re-encodes at all — see
// TestEngineEncodesOnceAcrossAttack.)
func TestSATEncodingCacheAcrossHypotheses(t *testing.T) {
	h := host(t, 10)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-2A-O"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewSATExtractor(locked.Circuit, layout)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Extractor: ext,
		Telemetry: tel, LegacyEncoding: true})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Fatal("recovered key incorrect")
	}
	hits := tel.Counter("sat_encode_cache_hits_total").Value()
	misses := tel.Counter("sat_encode_cache_misses_total").Value()
	if int(misses+hits) != ext.Extractions() {
		t.Fatalf("hits %d + misses %d != %d extractions", hits, misses, ext.Extractions())
	}
	// Re-running an extraction under a previously seen assignment must
	// hit: replay the first hypothesis assignment once more.
	before := tel.Counter("sat_encode_cache_misses_total").Value()
	nk := locked.Circuit.NumKeys()
	assign := PairAssign{A: make([]bool, nk), B: make([]bool, nk)}
	for i := 0; i < layout.N(); i++ {
		assign.A[layout.Key1Pos[i]] = true
	}
	if _, err := ext.DIPs(assign); err != nil {
		t.Fatal(err)
	}
	if after := tel.Counter("sat_encode_cache_misses_total").Value(); after != before {
		t.Fatalf("repeat extraction re-encoded the miter (misses %d -> %d)", before, after)
	}
}
