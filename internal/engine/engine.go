// Package engine hosts the persistent incremental-SAT layer of the
// attack: the key-differential miter of the locked circuit is Tseitin
// encoded exactly once into one long-lived CDCL instance, with the key
// bits of both copies left as free variables. Every SAT phase of the
// attack — the Lemma-1 hypothesis extractions, each blocking-clause
// enumeration step, the calibration sweep's re-extractions, and the
// pairwise candidate distinguishing of the verifier — is then an
// assumption-driven query against that single solver, so learned clauses
// and variable activity accumulated in one phase keep paying off in the
// next instead of dying with a per-assignment re-encode.
//
// Enumeration sessions use blocking scopes (internal/sat): per-model
// blocking clauses are guarded by an activation literal and retired as a
// group when the session ends, which retracts them soundly (clauses are
// never deleted, only permanently satisfied) and lets the next session
// start from the unblocked formula. Retired scopes are compacted away
// with Simplify once enough of them accumulate.
package engine

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/cnf"
	"repro/internal/events"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// defaultCompactBytes is the estimated volume of retired blocking-scope
// clauses that triggers a Simplify pass over the clause database. A
// bytes threshold tracks the real memory held hostage by retired scopes
// — wide blocking clauses (one literal per chain input) reach it in
// proportionally fewer clauses than narrow ones, where the old fixed
// clause-count trigger compacted far too late on c7552-profile miters.
const defaultCompactBytes = 1 << 20

// Engine owns the persistent encoding and solver. It is not safe for
// concurrent use; the attack drives it from one goroutine (service jobs
// each build their own engine, so no state crosses job boundaries).
type Engine struct {
	locked   *netlist.Circuit
	blockPos []int

	solver *sat.Solver
	inc    *cnf.Incremental
	keysA  []cnf.Lit // copy A's key bits, in the locked circuit's key order
	keysB  []cnf.Lit // copy B's key bits
	inputs []cnf.Lit // primary inputs, in the locked circuit's input order
	block  []cnf.Lit // chain-input literals, in chain order
	diff   cnf.Lit   // the miter's disagreement output
	nKeys  int

	ctx   context.Context     // nil = never cancelled
	tel   *telemetry.Registry // nil = uninstrumented
	bus   *events.Bus         // nil = no lifecycle events
	phase string
	lane  int // trace lane for this engine's spans (portfolio members get their own)

	// preSolve, when set, runs before every Solve call at decision
	// level 0 — the portfolio drains shared-clause imports here, so
	// foreign clauses only ever enter between solves.
	preSolve func()

	bud        budgeter
	phaseStats map[string]sat.Stats

	sessions     uint64 // completed solve sessions, for encodings-avoided accounting
	compactBytes uint64 // retired-bytes threshold that triggers Simplify
	dbHighWater  uint64 // largest clause-DB size observed, mirrored as a gauge

	keyEq     []cnf.Lit // lazily built per-bit key-equality guards (sensitization)
	scopeHeld bool      // the single blocking scope is reserved by a Session/enumeration

	assume   []cnf.Lit // scratch: assumption vector
	blocking []cnf.Lit // scratch: per-model blocking clause
}

// New prepares an engine for the locked circuit; blockPos gives the
// primary-input positions of the n chain inputs, in chain order (bit i
// of a reported pattern is chain input i). The miter is built and
// encoded lazily on first use, so constructing an engine that is never
// queried costs nothing.
func New(locked *netlist.Circuit, blockPos []int) (*Engine, error) {
	if locked == nil {
		return nil, fmt.Errorf("engine: locked circuit is required")
	}
	if locked.NumKeys() == 0 {
		return nil, fmt.Errorf("engine: circuit %q has no key inputs", locked.Name)
	}
	for _, pos := range blockPos {
		if pos < 0 || pos >= locked.NumInputs() {
			return nil, fmt.Errorf("engine: block position %d outside %d inputs", pos, locked.NumInputs())
		}
	}
	return &Engine{
		locked:       locked,
		blockPos:     append([]int(nil), blockPos...),
		nKeys:        locked.NumKeys(),
		bud:          newBudgeter(),
		compactBytes: defaultCompactBytes,
		lane:         telemetry.EngineLane,
	}, nil
}

// SetContext bounds subsequent queries: enumeration slices its Solve
// calls with conflict budgets sized from the remaining deadline and
// checks cancellation between slices.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetTelemetry attaches a metrics registry: solver statistics fold into
// the sat_* counters (continuing the legacy families) plus the engine_*
// families, and solve sessions trace as spans on telemetry.EngineLane.
func (e *Engine) SetTelemetry(r *telemetry.Registry) { e.tel = r }

// SetEvents attaches a lifecycle event bus: each budgeted Solve slice
// that expires without a verdict publishes a budget_slice event carrying
// the expired grant and the budgeter's EWMA conflict rate — the signal
// the progress estimator uses to tell "solving hard" from "deadline
// crawling". Nil (the default) publishes nothing.
func (e *Engine) SetEvents(b *events.Bus) { e.bus = b }

// SetPhase labels subsequent solver work for per-phase attribution and
// resets the budgeter's per-phase spending cap, so a long phase cannot
// starve its successors of the remaining deadline.
func (e *Engine) SetPhase(name string) {
	if name == e.phase {
		return
	}
	e.phase = name
	e.bud.enterPhase(e.ctx)
}

// Recycle detaches the engine from a finished attack so it can be
// parked in a Pool and handed to the next one: the context, telemetry
// registry, event bus and phase label are cleared (they belong to the
// finished job), while the encoding, learned clauses, variable
// activity and the budgeter's EWMA conflict rate — the warmth the pool
// exists to preserve — are kept.
func (e *Engine) Recycle() {
	e.ctx = nil
	e.tel = nil
	e.bus = nil
	e.SetPhase("")
	if e.solver != nil {
		e.solver.SetInterrupt(nil)
	}
}

// NumKeys returns the key width of one miter copy.
func (e *Engine) NumKeys() int { return e.nKeys }

// BlockWidth returns the chain width n.
func (e *Engine) BlockWidth() int { return len(e.blockPos) }

// Stats returns the persistent solver's cumulative counters (zero before
// the first query).
func (e *Engine) Stats() sat.Stats {
	if e.solver == nil {
		return sat.Stats{}
	}
	return e.solver.Stats()
}

// PhaseStats returns a copy of the per-phase work attribution. Work done
// before any SetPhase call is keyed under "unphased".
func (e *Engine) PhaseStats() map[string]sat.Stats {
	out := make(map[string]sat.Stats, len(e.phaseStats))
	for k, v := range e.phaseStats {
		out[k] = v
	}
	return out
}

// ensure builds the key-differential miter and encodes it into a fresh
// persistent solver on first use.
func (e *Engine) ensure() error {
	if e.solver != nil {
		return nil
	}
	sp := e.tel.StartSpanLane("engine_encode", e.lane)
	defer sp.End()
	kd, err := miter.NewKeyDiff(e.locked)
	if err != nil {
		return err
	}
	solver := sat.New()
	inc := cnf.NewIncremental(solver)
	enc, err := inc.Encode(kd.Circuit)
	if err != nil {
		return err
	}
	keyLits := enc.KeyLits(kd.Circuit)
	e.solver = solver
	e.inc = inc
	e.keysA = keyLits[:kd.NKeys]
	e.keysB = keyLits[kd.NKeys:]
	e.inputs = enc.InputLits(kd.Circuit)
	e.block = make([]cnf.Lit, len(e.blockPos))
	for i, pos := range e.blockPos {
		e.block[i] = e.inputs[pos]
	}
	e.diff = enc.OutputLits(kd.Circuit)[0]
	sp.SetArg("vars", strconv.Itoa(solver.NumVars()))
	sp.SetArg("clauses", strconv.Itoa(solver.NumClauses()))
	e.tel.Counter("engine_encodings_total").Inc()
	return nil
}

// phaseName returns the attribution key for the current phase.
func (e *Engine) phaseName() string {
	if e.phase == "" {
		return "unphased"
	}
	return e.phase
}

// beginSession opens a traced solve session and snapshots the solver
// counters; the returned func folds the interval into the per-phase map
// and the telemetry counter families.
func (e *Engine) beginSession(kind string) func() {
	if e.sessions > 0 {
		// Every session after the first would have been a miter build +
		// re-encode (or at best an LRU replay) on the legacy path.
		e.tel.Counter("engine_encodings_avoided_total").Inc()
	}
	e.sessions++
	sp := e.tel.StartSpanLane(kind, e.lane)
	sp.SetArg("phase", e.phaseName())
	base := e.solver.Stats()
	return func() {
		d := e.solver.Stats().Diff(base)
		name := e.phaseName()
		if e.phaseStats == nil {
			e.phaseStats = make(map[string]sat.Stats)
		}
		ps := e.phaseStats[name]
		e.phaseStats[name] = sat.Stats{
			Decisions:       ps.Decisions + d.Decisions,
			Propagations:    ps.Propagations + d.Propagations,
			Conflicts:       ps.Conflicts + d.Conflicts,
			Restarts:        ps.Restarts + d.Restarts,
			Learned:         ps.Learned + d.Learned,
			Removed:         ps.Removed + d.Removed,
			SolveCalls:      ps.SolveCalls + d.SolveCalls,
			BlockingPushed:  ps.BlockingPushed + d.BlockingPushed,
			BlockingRetired: ps.BlockingRetired + d.BlockingRetired,
			Simplified:      ps.Simplified + d.Simplified,
			Imported:        ps.Imported + d.Imported,
		}
		if e.tel != nil {
			e.tel.Counter("sat_conflicts_total").Add(d.Conflicts)
			e.tel.Counter("sat_decisions_total").Add(d.Decisions)
			e.tel.Counter("sat_propagations_total").Add(d.Propagations)
			e.tel.Counter("sat_restarts_total").Add(d.Restarts)
			e.tel.Counter("sat_solve_calls_total").Add(d.SolveCalls)
			e.tel.Counter("engine_assumption_solves_total").Add(d.SolveCalls)
			e.tel.Counter("engine_blocking_pushed_total").Add(d.BlockingPushed)
			e.tel.Counter("engine_blocking_retired_total").Add(d.BlockingRetired)
			e.tel.Counter(telemetry.Label("engine_phase_conflicts_total", "phase", name)).Add(d.Conflicts)
			e.tel.Counter(telemetry.Label("engine_phase_solves_total", "phase", name)).Add(d.SolveCalls)
			e.tel.Gauge("engine_clauses_retained").Set(int64(e.solver.NumClauses()))
			e.tel.Gauge("engine_learnts_retained").Set(int64(e.solver.NumLearnts()))
		}
		sp.End()
	}
}

// signLit orients a positive literal by a boolean.
func signLit(l cnf.Lit, v bool) cnf.Lit {
	if v {
		return l
	}
	return l.Neg()
}

// keyAssumptions appends the assumption literals fixing copy A to a and
// copy B to b.
func (e *Engine) keyAssumptions(dst []cnf.Lit, a, b []bool) []cnf.Lit {
	for i, v := range a {
		dst = append(dst, signLit(e.keysA[i], v))
	}
	for i, v := range b {
		dst = append(dst, signLit(e.keysB[i], v))
	}
	return dst
}

func (e *Engine) checkKeys(a, b []bool) error {
	if len(a) != e.nKeys || len(b) != e.nKeys {
		return fmt.Errorf("engine: key assignment lengths %d/%d, circuit has %d keys", len(a), len(b), e.nKeys)
	}
	return nil
}

// EnumerateDIPs enumerates every block-input pattern on which the locked
// circuit under key A disagrees with the circuit under key B, invoking
// visit once per pattern (bit i = chain input i, at most once per
// pattern); visit returning false stops the enumeration early. The keys
// are fixed purely by assumptions and found patterns are excluded with
// scope-guarded blocking clauses, so the session leaves no trace in the
// formula beyond (retractable, eventually compacted) satisfied clauses
// and the learned clauses that speed up the next session.
//
// With a context attached, Solve calls run in conflict-budgeted slices
// sized by the engine's per-phase budgeter; on expiry the enumeration
// stops and the context's error is returned (patterns already visited
// remain valid — the set is simply incomplete).
func (e *Engine) EnumerateDIPs(A, B []bool, visit func(pat uint64) bool) error {
	return e.EnumerateDIPsSeeded(A, B, nil, visit)
}

// EnumerateDIPsSeeded is EnumerateDIPs with the session's blocking scope
// pre-charged: before solving, every pattern yielded by seed is pushed
// as a blocking clause, exactly as if it had just been enumerated — the
// mechanism a resumed attack uses to replay a checkpoint's accumulated
// DIPs into a fresh engine so enumeration continues where the crashed
// process stopped. Seeded patterns are not re-visited; only patterns
// found by the solver reach visit. A nil seed degenerates to
// EnumerateDIPs.
func (e *Engine) EnumerateDIPsSeeded(A, B []bool, seed func(yield func(pat uint64) bool), visit func(pat uint64) bool) error {
	if err := e.ensure(); err != nil {
		return err
	}
	if err := e.checkKeys(A, B); err != nil {
		return err
	}
	if err := e.acquireScope(); err != nil {
		return err
	}
	defer e.releaseScope()
	flush := e.beginSession("engine_enumerate")
	defer flush()
	defer e.retireScope()
	defer func() { e.solver.ConflictBudget = 0 }()

	act := e.solver.BlockingLit()
	assume := e.keyAssumptions(e.assume[:0], A, B)
	assume = append(assume, act, e.diff)
	e.assume = assume

	if seed != nil {
		var replayed uint64
		seed(func(pat uint64) bool {
			blocking := e.blocking[:0]
			for i, l := range e.block {
				if pat&(1<<uint(i)) != 0 {
					blocking = append(blocking, l.Neg())
				} else {
					blocking = append(blocking, l)
				}
			}
			e.blocking = blocking
			replayed++
			return e.solver.PushBlocking(blocking...)
		})
		e.tel.Counter("engine_seeded_dips_total").Add(replayed)
	}

	for {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		if e.preSolve != nil {
			e.preSolve()
		}
		e.solver.ConflictBudget = e.bud.slice(e.ctx, e.solver.Stats().Conflicts)
		switch e.solver.Solve(assume...) {
		case sat.Unknown:
			// Budget slice exhausted: recheck the context. Slices expire
			// at a bounded wall-clock rate (each one is sized to run for
			// a meaningful fraction of the remaining deadline), so
			// publishing per expiry cannot flood the bus.
			if e.bus != nil {
				e.bus.Publish(events.Event{
					Type:  events.TypeBudgetSlice,
					Phase: e.phase,
					Fields: map[string]string{
						"grant":     strconv.FormatUint(e.solver.ConflictBudget, 10),
						"rate":      strconv.FormatFloat(e.bud.rate, 'g', 6, 64),
						"exhausted": strconv.FormatBool(e.bud.capped && e.bud.phaseCap == 0),
					},
				})
			}
			continue
		case sat.Unsat:
			return nil
		}
		blocking := e.blocking[:0]
		var pat uint64
		for i, l := range e.block {
			if e.solver.ModelValue(l) {
				pat |= 1 << uint(i)
				blocking = append(blocking, l.Neg())
			} else {
				blocking = append(blocking, l)
			}
		}
		e.blocking = blocking
		if !visit(pat) {
			return nil
		}
		e.solver.PushBlocking(blocking...)
	}
}

// DistinguishReason types how a distinguish verdict was reached, so
// budget-starved "equivalent" answers are observable instead of silently
// identical to proofs.
type DistinguishReason string

const (
	// ReasonWitness: a concrete disagreement input was found.
	ReasonWitness DistinguishReason = "witness"
	// ReasonProved: the solver proved the keys equivalent (Unsat).
	ReasonProved DistinguishReason = "proved"
	// ReasonUnknownBudget: the conflict budget ran out; the pair is
	// reported equivalent without a proof.
	ReasonUnknownBudget DistinguishReason = "unknown_budget"
	// ReasonUnknownCanceled: the solve was interrupted by context
	// cancellation (e.g. a portfolio race already has a winner); the
	// verdict carries no information.
	ReasonUnknownCanceled DistinguishReason = "unknown_canceled"
)

// Definitive reports whether the reason carries a real verdict (witness
// or proof) rather than a budget/cancellation artifact.
func (r DistinguishReason) Definitive() bool {
	return r == ReasonWitness || r == ReasonProved
}

// DistinguishOutcome is the full result of a distinguish query.
type DistinguishOutcome struct {
	// Witness is the full primary-input vector of a disagreement, nil
	// when none was found.
	Witness []bool
	// Equivalent is true when no disagreement was found — by proof
	// (ReasonProved) or by running out of budget (see Reason).
	Equivalent bool
	// Reason types the verdict.
	Reason DistinguishReason
	// Member is the portfolio member that produced the verdict
	// (0 outside a portfolio).
	Member int
	// Disagreed is true when another portfolio member returned a
	// conflicting definitive verdict — a soundness alarm, also counted
	// in portfolio_disagreements_total.
	Disagreed bool
}

// Distinguish searches for a primary-input pattern on which the locked
// circuit behaves differently under keyA and keyB: the same persistent
// miter answers with KA/KB fixed by assumptions and the disagreement
// output assumed true. It returns (witness, false, nil) with the full
// input vector of a disagreement, or (nil, true, nil) when the keys are
// proved equivalent — or when the conflict budget runs out first, which
// callers must treat as "no difference found" exactly as with
// miter.ProveEquivalentHashedBudget (safe when candidates are only ever
// eliminated on concrete oracle disagreements). budget 0 is unbounded.
// Use DistinguishEx to tell those two "equivalent" answers apart.
func (e *Engine) Distinguish(keyA, keyB []bool, budget uint64) (witness []bool, equivalent bool, err error) {
	out, err := e.DistinguishEx(keyA, keyB, budget)
	if err != nil {
		return nil, false, err
	}
	return out.Witness, out.Equivalent, nil
}

// DistinguishEx is Distinguish with a typed outcome: budget-starved
// verdicts are marked ReasonUnknownBudget, counted in
// engine_distinguish_unknown_total, and published as a distinguish
// event, so they can no longer masquerade as proofs.
func (e *Engine) DistinguishEx(keyA, keyB []bool, budget uint64) (DistinguishOutcome, error) {
	if err := e.ensure(); err != nil {
		return DistinguishOutcome{}, err
	}
	if err := e.checkKeys(keyA, keyB); err != nil {
		return DistinguishOutcome{}, err
	}
	flush := e.beginSession("engine_distinguish")
	defer flush()
	defer func() { e.solver.ConflictBudget = 0 }()

	if e.preSolve != nil {
		e.preSolve()
	}
	assume := e.keyAssumptions(e.assume[:0], keyA, keyB)
	assume = append(assume, e.diff)
	e.assume = assume

	e.solver.ConflictBudget = budget
	switch e.solver.Solve(assume...) {
	case sat.Unknown:
		if e.ctx != nil && e.ctx.Err() != nil {
			// Canceled mid-solve (portfolio loser or deadline): not a
			// budget starvation, don't alarm on it.
			return DistinguishOutcome{Equivalent: true, Reason: ReasonUnknownCanceled}, nil
		}
		e.tel.Counter("engine_distinguish_unknown_total").Inc()
		if e.bus != nil {
			e.bus.Publish(events.Event{
				Type:  events.TypeDistinguish,
				Phase: e.phase,
				Fields: map[string]string{
					"reason": string(ReasonUnknownBudget),
					"budget": strconv.FormatUint(budget, 10),
				},
			})
		}
		return DistinguishOutcome{Equivalent: true, Reason: ReasonUnknownBudget}, nil
	case sat.Unsat:
		return DistinguishOutcome{Equivalent: true, Reason: ReasonProved}, nil
	}
	w := make([]bool, len(e.inputs))
	for i, l := range e.inputs {
		w[i] = e.solver.ModelValue(l)
	}
	return DistinguishOutcome{Witness: w, Reason: ReasonWitness}, nil
}

// retireScope closes the enumeration's blocking scope and compacts the
// clause database once the retired scopes hold enough bytes hostage.
// The trigger thresholds on estimated clause-database bytes rather than
// a retired-clause count, so compaction cadence adapts to clause width;
// the observed database size feeds a pair of gauges (current +
// high-water mark) for capacity planning on big miters.
func (e *Engine) retireScope() {
	e.solver.ResetBlocking()
	db := e.solver.ClauseBytes()
	e.tel.Gauge("sat_clause_db_bytes").Set(int64(db))
	if db > e.dbHighWater {
		e.dbHighWater = db
		e.tel.Gauge("sat_clause_db_bytes_hwm").Set(int64(db))
	}
	if e.solver.RetiredBytes() < e.compactBytes {
		return
	}
	sp := e.tel.StartSpanLane("engine_compact", e.lane)
	removedBefore := e.solver.Stats().Simplified
	e.solver.Simplify()
	e.tel.Counter("engine_simplify_runs_total").Inc()
	e.tel.Counter("engine_simplify_removed_total").Add(e.solver.Stats().Simplified - removedBefore)
	e.tel.Gauge("sat_clause_db_bytes").Set(int64(e.solver.ClauseBytes()))
	sp.End()
}

// SetCompactBytes overrides the retired-bytes Simplify threshold (tests
// use a tiny value to force compaction on small formulas). Non-positive
// values are ignored.
func (e *Engine) SetCompactBytes(n uint64) {
	if n > 0 {
		e.compactBytes = n
	}
}

// BudgetRate exposes the budgeter's persistent EWMA conflict rate so a
// checkpoint can carry the deadline-slicing history across a restart.
// Zero means no rate has been observed yet.
func (e *Engine) BudgetRate() float64 { return e.bud.rate }

// SetBudgetRate restores a previously observed conflict rate into the
// budgeter, so a resumed attack sizes its first slices from real history
// instead of a cold probe. Non-positive rates are ignored.
func (e *Engine) SetBudgetRate(rate float64) {
	if rate > 0 {
		e.bud.rate = rate
	}
}

// SetBudgetSmoothing overrides the budgeter's EWMA new-observation
// weight; values outside (0,1) are ignored (the default is derived from
// the committed phase-histogram trajectory, see defaultBudgetSmoothing).
func (e *Engine) SetBudgetSmoothing(alpha float64) { e.bud.setSmoothing(alpha) }
