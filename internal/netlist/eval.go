package netlist

import "fmt"

// Simulator evaluates a circuit repeatedly while reusing internal buffers.
// Construction compiles the circuit once into a flat instruction stream
// (see Program); every run then executes the compiled program with no
// per-gate dispatch or allocation, at 64, 256, or 512 bit-parallel lanes.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c      *Circuit
	prog   *Program
	vals   []uint64 // width-1 register file, indexed by gate ID
	outBuf []uint64 // Run64 output buffer (one word per primary output)

	// Wide register banks, allocated on first use. Register i occupies
	// words [i*stride, (i+1)*stride).
	vals4 []uint64
	out4  [][4]uint64
	vals8 []uint64
	out8  [][8]uint64

	// Scalar Run pack/unpack scratch.
	inW  []uint64
	keyW []uint64
	outB []bool
}

// NewSimulator prepares a simulator for the circuit. The circuit must be
// acyclic; structural changes to the circuit after construction
// invalidate the simulator.
func NewSimulator(c *Circuit) (*Simulator, error) {
	prog, err := CompileCircuit(c)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		c:    c,
		prog: prog,
		vals: make([]uint64, c.NumGates()),
	}, nil
}

// MustNewSimulator is NewSimulator that panics on error.
func MustNewSimulator(c *Circuit) *Simulator {
	s, err := NewSimulator(c)
	if err != nil {
		panic(err)
	}
	return s
}

// Run64 evaluates 64 packed patterns at once. in and key hold one word per
// primary input / key input (bit i of each word is pattern i); the
// returned slice holds one word per primary output and is owned by the
// simulator (valid until the next Run call).
func (s *Simulator) Run64(in, key []uint64) ([]uint64, error) {
	c := s.c
	if len(in) != c.NumInputs() {
		return nil, fmt.Errorf("netlist: Run64: got %d input words, want %d", len(in), c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("netlist: Run64: got %d key words, want %d", len(key), c.NumKeys())
	}
	for i, id := range c.inputs {
		s.vals[id] = in[i]
	}
	for i, id := range c.keys {
		s.vals[id] = key[i]
	}
	s.prog.Exec(s.vals)
	if cap(s.outBuf) < c.NumOutputs() {
		s.outBuf = make([]uint64, c.NumOutputs())
	}
	out := s.outBuf[:c.NumOutputs()]
	for i, id := range c.outputs {
		out[i] = s.vals[id]
	}
	return out, nil
}

// Run256 evaluates 256 packed patterns at once: element [j] of each
// 4-word bank holds patterns 64j .. 64j+63. The returned slice holds one
// bank per primary output and is owned by the simulator (valid until the
// next Run256 call). NodeValue64 reflects only Run64/Run executions.
func (s *Simulator) Run256(in, key [][4]uint64) ([][4]uint64, error) {
	c := s.c
	if len(in) != c.NumInputs() {
		return nil, fmt.Errorf("netlist: Run256: got %d input banks, want %d", len(in), c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("netlist: Run256: got %d key banks, want %d", len(key), c.NumKeys())
	}
	if s.vals4 == nil {
		s.vals4 = make([]uint64, c.NumGates()*4)
		s.out4 = make([][4]uint64, c.NumOutputs())
	}
	for i, id := range c.inputs {
		copy(s.vals4[int(id)*4:], in[i][:])
	}
	for i, id := range c.keys {
		copy(s.vals4[int(id)*4:], key[i][:])
	}
	s.prog.Exec256(s.vals4)
	for i, id := range c.outputs {
		copy(s.out4[i][:], s.vals4[int(id)*4:])
	}
	return s.out4, nil
}

// Run512 evaluates 512 packed patterns at once: element [j] of each
// 8-word bank holds patterns 64j .. 64j+63. The returned slice holds one
// bank per primary output and is owned by the simulator (valid until the
// next Run512 call). NodeValue64 reflects only Run64/Run executions.
func (s *Simulator) Run512(in, key [][8]uint64) ([][8]uint64, error) {
	c := s.c
	if len(in) != c.NumInputs() {
		return nil, fmt.Errorf("netlist: Run512: got %d input banks, want %d", len(in), c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("netlist: Run512: got %d key banks, want %d", len(key), c.NumKeys())
	}
	if s.vals8 == nil {
		s.vals8 = make([]uint64, c.NumGates()*8)
		s.out8 = make([][8]uint64, c.NumOutputs())
	}
	for i, id := range c.inputs {
		copy(s.vals8[int(id)*8:], in[i][:])
	}
	for i, id := range c.keys {
		copy(s.vals8[int(id)*8:], key[i][:])
	}
	s.prog.Exec512(s.vals8)
	for i, id := range c.outputs {
		copy(s.out8[i][:], s.vals8[int(id)*8:])
	}
	return s.out8, nil
}

// Program returns the simulator's compiled gate program. The register
// file is indexed by gate ID; Input-type gates have no instructions.
func (s *Simulator) Program() *Program { return s.prog }

// Run evaluates a single pattern. The returned slice holds one bool per
// primary output and is owned by the simulator (valid until the next
// Run call) — copy it before running the simulator again.
func (s *Simulator) Run(in, key []bool) ([]bool, error) {
	if cap(s.inW) < len(in) {
		s.inW = make([]uint64, len(in))
	}
	if cap(s.keyW) < len(key) {
		s.keyW = make([]uint64, len(key))
	}
	inW := s.inW[:len(in)]
	keyW := s.keyW[:len(key)]
	for i, b := range in {
		if b {
			inW[i] = 1
		} else {
			inW[i] = 0
		}
	}
	for i, b := range key {
		if b {
			keyW[i] = 1
		} else {
			keyW[i] = 0
		}
	}
	w, err := s.Run64(inW, keyW)
	if err != nil {
		return nil, err
	}
	if cap(s.outB) < len(w) {
		s.outB = make([]bool, len(w))
	}
	out := s.outB[:len(w)]
	for i := range w {
		out[i] = w[i]&1 != 0
	}
	return out, nil
}

// NodeValue64 returns the bit-parallel value of an arbitrary gate after
// the most recent Run64/Run call.
func (s *Simulator) NodeValue64(id ID) uint64 { return s.vals[id] }

// NodeValue returns the scalar (pattern-0) value of an arbitrary gate
// after the most recent Run64/Run call.
func (s *Simulator) NodeValue(id ID) bool { return s.vals[id]&1 != 0 }

// Eval is a convenience one-shot scalar evaluation of the circuit.
func (c *Circuit) Eval(in, key []bool) ([]bool, error) {
	s, err := NewSimulator(c)
	if err != nil {
		return nil, err
	}
	return s.Run(in, key)
}

// BoolsToWord packs up to 64 bools into a word, bit i = v[i].
func BoolsToWord(v []bool) uint64 {
	var w uint64
	for i, b := range v {
		if b {
			w |= 1 << uint(i)
		}
	}
	return w
}

// WordToBools unpacks the low n bits of w into a bool slice.
func WordToBools(w uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = w&(1<<uint(i)) != 0
	}
	return out
}

// PatternFromUint sets bools from the binary representation of x: element
// i receives bit i of x. It is the canonical mapping between integers and
// input patterns used throughout this repository.
func PatternFromUint(x uint64, n int) []bool { return WordToBools(x, n) }

// UintFromPattern is the inverse of PatternFromUint for n ≤ 64.
func UintFromPattern(p []bool) uint64 { return BoolsToWord(p) }
