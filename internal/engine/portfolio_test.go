package engine

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/telemetry"
)

func collectBackend(t *testing.T, b Backend, keyA, keyB []bool) map[uint64]bool {
	t.Helper()
	got := make(map[uint64]bool)
	err := b.EnumerateDIPs(keyA, keyB, func(pat uint64) bool {
		if got[pat] {
			t.Fatalf("duplicate pattern %b", pat)
		}
		got[pat] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestPortfolioEnumerateMatchesEngine races the portfolio against a
// single engine and brute force across key pairs on one shared
// portfolio instance, so later sessions run with accumulated learnt
// state and possibly imported clauses.
func TestPortfolioEnumerateMatchesEngine(t *testing.T) {
	locked := lockedInstance(t, 6, "2A-O-A", 7)
	single, err := New(locked, allInputs(locked))
	if err != nil {
		t.Fatal(err)
	}
	port, err := NewPortfolio(locked, allInputs(locked), 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	nk := locked.NumKeys()
	for trial := 0; trial < 10; trial++ {
		keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
		want := bruteDIPs(t, locked, keyA, keyB)
		gotSingle := collectBackend(t, single, keyA, keyB)
		gotPort := collectBackend(t, port, keyA, keyB)
		if len(gotPort) != len(want) || len(gotSingle) != len(want) {
			t.Fatalf("trial %d: portfolio %d, single %d, brute %d DIPs",
				trial, len(gotPort), len(gotSingle), len(want))
		}
		for p := range want {
			if !gotPort[p] {
				t.Fatalf("trial %d: portfolio missing DIP %b", trial, p)
			}
		}
	}
}

// TestPortfolioSeededEnumeration checks seeded patterns are blocked in
// every member: none is re-visited, and the remainder is complete.
func TestPortfolioSeededEnumeration(t *testing.T) {
	locked := lockedInstance(t, 6, "A-O-2A", 3)
	port, err := NewPortfolio(locked, allInputs(locked), 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	nk := locked.NumKeys()
	for trial := 0; trial < 6; trial++ {
		keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
		want := bruteDIPs(t, locked, keyA, keyB)
		if len(want) < 2 {
			continue
		}
		// Seed half the true DIP set.
		seeded := make(map[uint64]bool)
		for p := range want {
			if len(seeded) >= len(want)/2 {
				break
			}
			seeded[p] = true
		}
		seedFn := func(yield func(pat uint64) bool) {
			for p := range seeded {
				if !yield(p) {
					return
				}
			}
		}
		got := make(map[uint64]bool)
		err := port.EnumerateDIPsSeeded(keyA, keyB, seedFn, func(pat uint64) bool {
			if seeded[pat] {
				t.Fatalf("trial %d: seeded pattern %b re-visited", trial, pat)
			}
			if got[pat] {
				t.Fatalf("trial %d: duplicate pattern %b", trial, pat)
			}
			got[pat] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got)+len(seeded) != len(want) {
			t.Fatalf("trial %d: %d found + %d seeded != %d true DIPs", trial, len(got), len(seeded), len(want))
		}
	}
}

// TestPortfolioDistinguishAgreesWithEngine compares racing verdicts
// with single-engine verdicts and validates witnesses by evaluation.
func TestPortfolioDistinguishAgreesWithEngine(t *testing.T) {
	locked := lockedInstance(t, 7, "2A-O-2A", 11)
	single, err := New(locked, allInputs(locked))
	if err != nil {
		t.Fatal(err)
	}
	port, err := NewPortfolio(locked, allInputs(locked), 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	nk := locked.NumKeys()
	for trial := 0; trial < 8; trial++ {
		keyA := randomKey(rng, nk)
		keyB := keyA
		if trial%2 == 0 {
			keyB = randomKey(rng, nk)
		}
		_, wantEq, err := single.Distinguish(keyA, keyB, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := port.DistinguishEx(keyA, keyB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Equivalent != wantEq {
			t.Fatalf("trial %d: portfolio equivalent=%v, single=%v", trial, out.Equivalent, wantEq)
		}
		if out.Disagreed {
			t.Fatalf("trial %d: members disagreed", trial)
		}
		if !out.Reason.Definitive() {
			t.Fatalf("trial %d: unbudgeted race returned %q", trial, out.Reason)
		}
		if out.Equivalent {
			continue
		}
		a, err := locked.Eval(out.Witness, keyA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := locked.Eval(out.Witness, keyB)
		if err != nil {
			t.Fatal(err)
		}
		differs := false
		for i := range a {
			if a[i] != b[i] {
				differs = true
			}
		}
		if !differs {
			t.Fatalf("trial %d: witness does not distinguish", trial)
		}
	}
}

// TestDistinguishUnknownObservable pins the budget-starvation path: a
// one-conflict budget must produce ReasonUnknownBudget (never a silent
// "proved"), increment engine_distinguish_unknown_total, and publish a
// distinguish event with the reason.
func TestDistinguishUnknownObservable(t *testing.T) {
	locked := lockedInstance(t, 7, "2A-O-2A", 11)
	eng, err := New(locked, allInputs(locked))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	bus := events.New(events.Options{})
	eng.SetTelemetry(reg)
	eng.SetEvents(bus)
	rng := rand.New(rand.NewSource(53))
	nk := locked.NumKeys()
	var unknowns uint64
	for trial := 0; trial < 6; trial++ {
		keyA := randomKey(rng, nk)
		out, err := eng.DistinguishEx(keyA, keyA, 1)
		if err != nil {
			t.Fatal(err)
		}
		switch out.Reason {
		case ReasonUnknownBudget:
			unknowns++
			if !out.Equivalent {
				t.Fatal("unknown_budget must still report equivalent (legacy contract)")
			}
		case ReasonProved:
		default:
			t.Fatalf("trial %d: unexpected reason %q", trial, out.Reason)
		}
	}
	if unknowns == 0 {
		t.Skip("every 1-conflict solve completed; nothing to observe on this host")
	}
	if got := reg.Snapshot().Counters["engine_distinguish_unknown_total"]; got != unknowns {
		t.Fatalf("engine_distinguish_unknown_total = %d, want %d", got, unknowns)
	}
	found := false
	for _, ev := range bus.History(0) {
		if ev.Type == events.TypeDistinguish && ev.Fields["reason"] == string(ReasonUnknownBudget) {
			found = true
		}
	}
	if !found {
		t.Fatal("no distinguish event with reason=unknown_budget on the bus")
	}
}

// TestPortfolioTelemetry checks the portfolio counter families: exactly
// one encoding despite three members, a win recorded per completed
// race, and clause-sharing counters consistent with the members'
// Imported stats.
func TestPortfolioTelemetry(t *testing.T) {
	locked := lockedInstance(t, 7, "2A-O-2A", 11)
	port, err := NewPortfolio(locked, allInputs(locked), 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	port.SetTelemetry(reg)
	rng := rand.New(rand.NewSource(59))
	nk := locked.NumKeys()
	races := 0
	for trial := 0; trial < 6; trial++ {
		collectBackend(t, port, randomKey(rng, nk), randomKey(rng, nk))
		races++
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine_encodings_total"]; got != 1 {
		t.Fatalf("engine_encodings_total = %d, want 1 (one shared encode)", got)
	}
	var wins uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "portfolio_wins_total") {
			wins += v
		}
	}
	if wins != uint64(races) {
		t.Fatalf("portfolio_wins_total sums to %d, want %d races", wins, races)
	}
	if snap.Counters["portfolio_disagreements_total"] != 0 {
		t.Fatal("soundness alarm: members disagreed")
	}
	// Sharing is workload-dependent, but accounting must be coherent:
	// clauses can only be imported if some were shared.
	if port.Stats().Imported > 0 && snap.Counters["portfolio_clauses_shared_total"] == 0 {
		t.Fatal("members imported clauses that were never counted as shared")
	}
	// Per-member span lanes must not collide.
	lanes := make(map[int]bool)
	for _, m := range port.members {
		if lanes[m.lane] {
			t.Fatalf("duplicate member lane %d", m.lane)
		}
		lanes[m.lane] = true
	}
}

// TestPortfolioRaceHammer drives enumerate/distinguish races back to
// back — including under a tight deadline, which exercises loser
// cancellation, the solver interrupt, and the clause exchange — and is
// the test the -race run leans on.
func TestPortfolioRaceHammer(t *testing.T) {
	locked := lockedInstance(t, 7, "2A-O-2A", 13)
	port, err := NewPortfolio(locked, allInputs(locked), 4)
	if err != nil {
		t.Fatal(err)
	}
	port.SetTelemetry(telemetry.New())
	port.SetEvents(events.New(events.Options{}))
	rng := rand.New(rand.NewSource(61))
	nk := locked.NumKeys()
	port.SetPhase("hammer")
	for trial := 0; trial < 12; trial++ {
		keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
		collectBackend(t, port, keyA, keyB)
		if _, _, err := port.Distinguish(keyA, keyB, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Deadline pressure: a context that expires mid-run must surface
	// the deadline error (or complete first) without racing.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	port.SetContext(ctx)
	for trial := 0; trial < 6; trial++ {
		err := port.EnumerateDIPs(randomKey(rng, nk), randomKey(rng, nk), func(uint64) bool { return true })
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	port.SetContext(nil)
	// The portfolio must still answer correctly after cancellations.
	keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
	want := bruteDIPs(t, locked, keyA, keyB)
	got := collectBackend(t, port, keyA, keyB)
	if len(got) != len(want) {
		t.Fatalf("post-cancel enumeration found %d DIPs, want %d", len(got), len(want))
	}
}

// TestPortfolioAdaptiveShrink pins the adaptive-sizing contract: the
// race fan-out shrinks to the streak winner only after shrinkAfter
// CONSECUTIVE wins (a broken streak restarts the count), the shrink is
// counted once in portfolio_resized_total, post-shrink races still
// enumerate the complete DIP set, and delegated session queries keep
// running on the baseline member.
func TestPortfolioAdaptiveShrink(t *testing.T) {
	locked := lockedInstance(t, 6, "2A-O-A", 7)
	port, err := NewPortfolio(locked, allInputs(locked), 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	port.SetTelemetry(reg)
	port.SetShrinkAfter(4)
	if err := port.ensure(); err != nil {
		t.Fatal(err)
	}
	// Three wins for member 1: below the threshold, no shrink.
	for i := 0; i < 3; i++ {
		port.recordWin(1)
	}
	if port.ActiveSize() != 3 {
		t.Fatalf("shrank after %d wins, threshold is 4", 3)
	}
	// A win for member 2 breaks the streak…
	port.recordWin(2)
	if port.ActiveSize() != 3 {
		t.Fatal("shrank on a broken streak")
	}
	// …and four more consecutive wins for member 2 trigger the shrink.
	for i := 0; i < 4; i++ {
		port.recordWin(2)
	}
	if port.ActiveSize() != 1 {
		t.Fatalf("ActiveSize = %d after a 4-win streak, want 1", port.ActiveSize())
	}
	if port.active[0] != 2 {
		t.Fatalf("active member = %d, want the streak winner 2", port.active[0])
	}
	if got := reg.Snapshot().Counters["portfolio_resized_total"]; got != 1 {
		t.Fatalf("portfolio_resized_total = %d, want 1", got)
	}
	// Further wins cannot shrink (or count) again.
	for i := 0; i < 8; i++ {
		port.recordWin(2)
	}
	if got := reg.Snapshot().Counters["portfolio_resized_total"]; got != 1 {
		t.Fatalf("portfolio_resized_total = %d after extra wins, want 1", got)
	}
	// Post-shrink races remain complete and correct.
	rng := rand.New(rand.NewSource(71))
	nk := locked.NumKeys()
	for trial := 0; trial < 4; trial++ {
		keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
		want := bruteDIPs(t, locked, keyA, keyB)
		if got := collectBackend(t, port, keyA, keyB); len(got) != len(want) {
			t.Fatalf("trial %d: post-shrink race found %d DIPs, want %d", trial, len(got), len(want))
		}
	}
	// Delegated sessions still run on the baseline member 0.
	ses, err := port.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ses.FindDIP(); err != nil {
		t.Fatal(err)
	}
	ses.Close()
	// SetShrinkAfter(0) disables adaptivity entirely.
	fixed, err := NewPortfolio(locked, allInputs(locked), 2)
	if err != nil {
		t.Fatal(err)
	}
	fixed.SetTelemetry(reg)
	fixed.SetShrinkAfter(0)
	if err := fixed.ensure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		fixed.recordWin(0)
	}
	if fixed.ActiveSize() != 2 {
		t.Fatal("SetShrinkAfter(0) did not disable adaptive sizing")
	}
}

// TestPortfolioSizeDefaults covers the sizing contract.
func TestPortfolioSizeDefaults(t *testing.T) {
	locked := lockedInstance(t, 6, "2A-O-A", 7)
	p, err := NewPortfolio(locked, allInputs(locked), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != DefaultPortfolioSize {
		t.Fatalf("default size = %d, want %d", p.Size(), DefaultPortfolioSize)
	}
	one, err := NewPortfolio(locked, allInputs(locked), 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Size() != 1 {
		t.Fatalf("size = %d, want 1", one.Size())
	}
	rng := rand.New(rand.NewSource(67))
	nk := locked.NumKeys()
	keyA, keyB := randomKey(rng, nk), randomKey(rng, nk)
	want := bruteDIPs(t, locked, keyA, keyB)
	if got := collectBackend(t, one, keyA, keyB); len(got) != len(want) {
		t.Fatalf("1-member portfolio found %d DIPs, want %d", len(got), len(want))
	}
}
