package sensitization

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func host(t *testing.T, inputs, gates int, seed int64) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: inputs, Outputs: 4, Gates: gates, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// wideHost has enough independent output cones for isolated key gates
// to exist — the setting the published sensitization attack targets.
func wideHost(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: 16, Outputs: 12, Gates: 90, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSensitizationResolvesRLLBits(t *testing.T) {
	// Random insertion: isolated key gates leak through sensitization,
	// and every resolved bit must be correct.
	total := 0
	for _, seed := range []int64{5, 6, 7, 8} {
		h := wideHost(t, seed)
		locked, _, err := lock.ApplyRLL(h, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(locked.Circuit, oracle.MustNewSim(h), Options{Seed: 1, CandidatesPerBit: 24})
		if err != nil {
			t.Fatal(err)
		}
		total += res.Resolved
		for i, known := range res.Known {
			if known && res.Key[i] != locked.Key[i] {
				t.Errorf("seed %d bit %d resolved to %v, truth %v", seed, i, res.Key[i], locked.Key[i])
			}
		}
	}
	if total < 8 {
		t.Errorf("only %d/16 RLL key bits resolved across seeds", total)
	}
}

func TestSLLResistsSensitization(t *testing.T) {
	// Interfering insertion along one path blocks muting: summed over
	// seeds, SLL leaks strictly fewer bits than RLL on the same hosts.
	rllTotal, sllTotal := 0, 0
	for _, seed := range []int64{5, 6, 7, 8} {
		h := wideHost(t, seed)
		rll, _, err := lock.ApplyRLL(h, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		sll, _, err := lock.ApplySLL(h, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		rllRes, err := Run(rll.Circuit, oracle.MustNewSim(h), Options{Seed: 1, CandidatesPerBit: 24})
		if err != nil {
			t.Fatal(err)
		}
		sllRes, err := Run(sll.Circuit, oracle.MustNewSim(h), Options{Seed: 1, CandidatesPerBit: 24})
		if err != nil {
			t.Fatal(err)
		}
		rllTotal += rllRes.Resolved
		sllTotal += sllRes.Resolved
		for i, known := range sllRes.Known {
			if known && sllRes.Key[i] != sll.Key[i] {
				t.Errorf("seed %d: SLL bit %d resolved wrongly", seed, i)
			}
		}
	}
	if sllTotal >= rllTotal {
		t.Errorf("SLL leaked %d bits, RLL %d — interference should reduce leakage", sllTotal, rllTotal)
	}
}

func TestSLLCorrectKey(t *testing.T) {
	h := host(t, 12, 70, 9)
	locked, inst, err := lock.ApplySLL(h, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.PathGates) != 5 {
		t.Fatal("instance metadata incomplete")
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	simA := netlist.MustNewSimulator(act)
	simH := netlist.MustNewSimulator(h)
	for x := uint64(0); x < 1<<12; x += 3 {
		in := netlist.PatternFromUint(x, 12)
		oa, _ := simA.Run(in, nil)
		oh, _ := simH.Run(in, nil)
		for i := range oa {
			if oa[i] != oh[i] {
				t.Fatalf("correct SLL key differs from host at %d", x)
			}
		}
	}
	wrong := append([]bool(nil), locked.Key...)
	wrong[0] = !wrong[0]
	actW, _ := oracle.Activate(locked.Circuit, wrong)
	simW := netlist.MustNewSimulator(actW)
	differs := false
	for x := uint64(0); x < 1<<12 && !differs; x++ {
		in := netlist.PatternFromUint(x, 12)
		ow, _ := simW.Run(in, nil)
		oh, _ := simH.Run(in, nil)
		for i := range ow {
			if ow[i] != oh[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("wrong SLL key corrupts nothing")
	}
}

func TestSensitizationValidation(t *testing.T) {
	h := host(t, 10, 40, 1)
	if _, err := Run(h, oracle.MustNewSim(h), Options{}); err == nil {
		t.Error("key-free circuit accepted")
	}
}
