package attack

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

func TestRegistryMechanics(t *testing.T) {
	want := []string{"sat", "appsat", "casunlock", "sps-removal", "bypass", "dip"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registered %d attacks, want %d (%v)", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registration order: got %v, want %v", names, want)
		}
	}
	if len(Labels()) != len(want) {
		t.Fatal("Labels/Names length mismatch")
	}
	// Resolution by name, by label, case-insensitively.
	for _, q := range []string{"sat", "SAT", "dip", "DIP-learning", "Bypass", "SPS-REMOVAL"} {
		if _, ok := AttackByName(q); !ok {
			t.Fatalf("AttackByName(%q) failed", q)
		}
	}
	if _, ok := AttackByName("no-such-attack"); ok {
		t.Fatal("AttackByName resolved a bogus name")
	}
	// Only the checkpointable DIP-learning pipeline is servable.
	for _, a := range Attacks() {
		if a.Servable != (a.Name == "dip") {
			t.Fatalf("attack %q Servable=%v", a.Name, a.Servable)
		}
	}
	if err := RegisterAttack(Attack{Name: "SAT", Run: func(*Context) Outcome { return Outcome{} }}); err == nil {
		t.Fatal("duplicate registration (case-folded) was accepted")
	}
	if err := RegisterAttack(Attack{Name: "anon"}); err == nil {
		t.Fatal("registration without Run was accepted")
	}
	if u := Universe(); u == "" {
		t.Fatal("empty universe")
	}
}

// TestRegistryEndToEnd mounts registry attacks the way the experiment
// matrix does — scheme registry supplies the instance and KeyCheck, the
// attack registry supplies the mount — and checks the two canonical
// verdicts: the SAT attack breaks RLL exactly, and the same attack
// capped on CAS-Lock reports a capped non-break.
func TestRegistryEndToEnd(t *testing.T) {
	h, err := synth.Generate(synth.Config{Name: "rg", Inputs: 12, Outputs: 3, Gates: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	atk, ok := AttackByName("sat")
	if !ok {
		t.Fatal("sat attack not registered")
	}
	mount := func(scheme string, cap int) (Outcome, []bool) {
		sch, ok := lock.SchemeByName(scheme)
		if !ok {
			t.Fatalf("scheme %q not registered", scheme)
		}
		locked, kc, err := sch.Apply(h.Clone(), 7)
		if err != nil {
			t.Fatal(err)
		}
		tel := telemetry.New()
		out := atk.Run(&Context{
			Locked: locked.Circuit, Host: h, KeyCheck: kc,
			NewOracle: func() oracle.Oracle { return oracle.MustNewSim(h) },
			SATCap:    cap, Seed: 1, Telemetry: tel,
		})
		if got := tel.Counter("engine_encodings_total").Value(); got != 1 {
			t.Fatalf("engine_encodings_total = %d, want 1", got)
		}
		return out, locked.Key
	}
	if out, _ := mount("rll", 200); !out.Broken {
		t.Fatalf("SAT attack failed to break RLL: %s", out.Detail)
	} else if out.Key == nil {
		t.Fatal("break reported without a key")
	}
	if out, _ := mount("cas", 24); out.Broken {
		t.Fatalf("capped SAT attack claimed to break CAS-Lock: %s", out.Detail)
	}
}

// TestMultiCorrectKeyVerification pins the registry's break criterion to
// functional correctness rather than golden-key equality. CAS-Lock's
// effective mask for half h is m_i = k_i XOR (gate_i == XNOR), and a key
// is correct iff the two halves apply equal masks — so flipping bit i in
// BOTH halves flips both masks at position i and preserves their
// equality. The resulting key differs from the inserted one yet must
// pass the scheme KeyCheck, the SAT unlock proof, and Context.Verified.
func TestMultiCorrectKeyVerification(t *testing.T) {
	h, err := synth.Generate(synth.Config{Name: "mk", Inputs: 12, Outputs: 3, Gates: 60, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	sch, ok := lock.SchemeByName("cas")
	if !ok {
		t.Fatal("cas not registered")
	}
	locked, kc, err := sch.Apply(h.Clone(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if kc == nil {
		t.Fatal("cas scheme returned no KeyCheck")
	}
	golden := locked.Key
	half := len(golden) / 2
	alt := append([]bool(nil), golden...)
	alt[0] = !alt[0]
	alt[half] = !alt[half]

	if !kc(golden) {
		t.Fatal("KeyCheck rejected the inserted key")
	}
	if !kc(alt) {
		t.Fatal("KeyCheck rejected a functionally correct non-golden key")
	}
	same := true
	for i := range alt {
		if alt[i] != golden[i] {
			same = false
		}
	}
	if same {
		t.Fatal("alt key construction did not produce a distinct key")
	}
	ok, err = miter.ProveUnlockedHashed(locked.Circuit, alt, h)
	if err != nil || !ok {
		t.Fatalf("non-golden correct key failed the unlock proof (ok=%v err=%v)", ok, err)
	}
	c := &Context{Locked: locked.Circuit, Host: h, KeyCheck: kc}
	if !c.Verified(alt) {
		t.Fatal("Context.Verified rejected a functionally correct key")
	}
	// A genuinely wrong key (one half flipped only) must fail KeyCheck.
	bad := append([]bool(nil), golden...)
	bad[0] = !bad[0]
	if kc(bad) {
		t.Fatal("KeyCheck accepted a key with unequal effective masks")
	}
	if c.Verified(bad) {
		t.Fatal("Context.Verified accepted a wrong key")
	}
}
