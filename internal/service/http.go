package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestBytes bounds one submission body. Netlists in this repo's
// universe are tens of kilobytes; 8 MiB leaves generous headroom while
// keeping a hostile client from ballooning the daemon.
const maxRequestBytes = 8 << 20

// Handler returns the service's HTTP API on a fresh mux:
//
//	POST   /v1/attacks             submit a job (202, or 200 on a cache hit)
//	GET    /v1/attacks             list known jobs
//	GET    /v1/attacks/{id}        job status
//	GET    /v1/attacks/{id}/result recovered key + stats (404 until terminal)
//	GET    /v1/attacks/{id}/trace  per-job Chrome-trace span tree
//	GET    /v1/attacks/{id}/events live SSE lifecycle/progress stream
//	                               (Last-Event-ID resume; ends after done)
//	DELETE /v1/attacks/{id}        withdraw the job (cancels the execution
//	                               when it was the last interested job)
//	GET    /healthz                liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/attacks", s.handleSubmit)
	mux.HandleFunc("GET /v1/attacks", s.handleList)
	mux.HandleFunc("GET /v1/attacks/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/attacks/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/attacks/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/attacks/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/attacks/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// httpStatus maps a JobError's kind to its canonical HTTP status.
func httpStatus(kind ErrorKind) int {
	switch kind {
	case KindInvalid:
		return http.StatusBadRequest
	case KindQueueFull:
		return http.StatusTooManyRequests
	case KindUnavailable:
		return http.StatusServiceUnavailable
	case KindNotFound:
		return http.StatusNotFound
	case KindPanic:
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

type errorBody struct {
	Error string    `json:"error"`
	Kind  ErrorKind `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var je *JobError
	if errors.As(err, &je) {
		writeJSON(w, httpStatus(je.Kind), errorBody{Error: je.Error(), Kind: je.Kind})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req AttackRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, errInvalid("decoding request body: %v", err))
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	st := job.snapshot()
	// A cache hit is already terminal: answer 200 with the final state so
	// the client can fetch the result without polling. Fresh admissions
	// are 202 Accepted.
	status := http.StatusAccepted
	if st.State.Terminal() {
		status = http.StatusOK
	}
	w.Header().Set("Location", "/v1/attacks/"+job.ID())
	writeJSON(w, status, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	st, res, finished, err := s.Outcome(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !finished {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "job " + st.ID + " is " + string(st.State) + "; result not available yet",
			Kind:  "not_finished",
		})
		return
	}
	if res == nil {
		// Terminal without a full result: partial, failed or canceled.
		// Surface the status document with an error-ish code so scripted
		// clients notice, but keep the structure readable.
		status := http.StatusUnprocessableEntity
		if st.ErrorKind != "" {
			status = httpStatus(st.ErrorKind)
		}
		writeJSON(w, status, st)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	trace, err := s.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(trace)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
