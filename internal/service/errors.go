package service

import "fmt"

// ErrorKind classifies service failures for API mapping: each kind has
// a stable wire name and a canonical HTTP status.
type ErrorKind string

const (
	// KindInvalid: the request failed admission validation (unparseable
	// netlist, mismatched oracle, block width out of range). HTTP 400.
	KindInvalid ErrorKind = "invalid_request"
	// KindQueueFull: admission control rejected the job because the
	// bounded queue is at capacity. HTTP 429.
	KindQueueFull ErrorKind = "queue_full"
	// KindUnavailable: the service is shutting down. HTTP 503.
	KindUnavailable ErrorKind = "unavailable"
	// KindPanic: the attack panicked and the worker recovered it — the
	// daemon survives, the job reports this kind. HTTP 500 on result.
	KindPanic ErrorKind = "panic"
	// KindAttackFailed: the attack ran to completion but failed (not a
	// CAS instance, inconsistent oracle, ...).
	KindAttackFailed ErrorKind = "attack_failed"
	// KindCanceled: every interested submitter walked away before the
	// attack started, so it was never run.
	KindCanceled ErrorKind = "canceled"
	// KindNotFound: no job with the requested ID. HTTP 404.
	KindNotFound ErrorKind = "not_found"
)

// JobError is the service's typed failure: validation rejections at the
// admission boundary and recovered worker faults both surface as one of
// these instead of a panic or a bare string, so a shared daemon can
// classify, count and report them per job.
type JobError struct {
	Kind ErrorKind
	Err  error
}

// Error implements error.
func (e *JobError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("service: %s", e.Kind)
	}
	return fmt.Sprintf("service: %s: %v", e.Kind, e.Err)
}

// Unwrap exposes the cause.
func (e *JobError) Unwrap() error { return e.Err }

func errInvalid(format string, args ...any) *JobError {
	return &JobError{Kind: KindInvalid, Err: fmt.Errorf(format, args...)}
}
