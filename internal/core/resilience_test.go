package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lock"
	"repro/internal/oracle"
)

func noSleep(time.Duration) {}

// TestAttackRecoversUnderNoise is the headline robustness property:
// with a per-output-bit flip rate of 1e-3 and a transient-failure rate
// of 1e-2, the attack behind the resilient decorator (majority voting +
// retries + targeted mismatch re-queries) still recovers the exact key
// that a clean seed run recovers.
func TestAttackRecoversUnderNoise(t *testing.T) {
	for _, flipRate := range []float64{1e-4, 1e-3} {
		h := host(t, 8)
		locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{
			Chain: lock.MustParseChain("2A-O-2A"), Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}

		clean, err := Run(Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: 3})
		if err != nil {
			t.Fatal(err)
		}

		inj := faults.New(oracle.MustNewSim(h), faults.Config{
			FlipRate: flipRate, TransientRate: 1e-2, Seed: 11,
		})
		res := oracle.NewResilient(inj, oracle.ResilientOptions{
			Votes: 5, Retries: 6, Seed: 11, Sleep: noSleep,
		})
		noisy, err := Run(Options{
			Locked:          locked.Circuit,
			Oracle:          res,
			Seed:            3,
			MismatchRetries: 3,
		})
		if err != nil {
			t.Fatalf("flip=%g: resilient attack failed: %v", flipRate, err)
		}
		if !inst.IsCorrectCASKey(noisy.Key) {
			t.Fatalf("flip=%g: resilient attack recovered a wrong key", flipRate)
		}
		for i := range clean.Key {
			if clean.Key[i] != noisy.Key[i] {
				t.Fatalf("flip=%g: noisy run recovered a different (even if correct) key at bit %d", flipRate, i)
			}
		}
		if inj.Transients() == 0 {
			t.Fatalf("flip=%g: transient rate 1e-2 never fired across %d calls — test exercised nothing", flipRate, inj.Calls())
		}
		if flipRate >= 1e-3 && inj.Flips() == 0 {
			t.Fatalf("flip=%g: no bits were flipped across %d calls — test exercised nothing", flipRate, inj.Calls())
		}
	}
}

// TestNoisyAttackDeterministic re-runs the noisy attack with identical
// seeds and demands bit-identical outcomes: the fault stream is a pure
// function of (seed, pattern, occurrence), so the whole pipeline is
// reproducible.
func TestNoisyAttackDeterministic(t *testing.T) {
	h := host(t, 8)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain: lock.MustParseChain("A-O-3A"), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		inj := faults.New(oracle.MustNewSim(h), faults.Config{
			FlipRate: 1e-3, TransientRate: 1e-2, Seed: 21,
		})
		res := oracle.NewResilient(inj, oracle.ResilientOptions{
			Votes: 3, Retries: 6, Seed: 21, Sleep: noSleep,
		})
		out, err := Run(Options{Locked: locked.Circuit, Oracle: res, Seed: 9, MismatchRetries: 2})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.TotalDIPs != b.TotalDIPs || a.AlignedDIPs != b.AlignedDIPs || a.Case != b.Case {
		t.Fatalf("noisy runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			t.Fatalf("noisy runs recovered different keys at bit %d", i)
		}
	}
}

// TestNaiveAttackFailsLoudlyUnderNoise pins down the diagnosis path:
// without any denoising, a flip-prone oracle must NOT yield a silently
// wrong key — the attack's consistency checks have to convert the
// corruption into a typed failure (oracle-inconsistency or Lemma-2).
func TestNaiveAttackFailsLoudlyUnderNoise(t *testing.T) {
	failures := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		h := host(t, 8)
		locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{
			Chain: lock.MustParseChain("2A-O-2A"), Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Aggressive flips, no transients: every corruption is silent, so
		// only the attack's own consistency checks can catch it.
		inj := faults.New(oracle.MustNewSim(h), faults.Config{
			FlipRate: 0.02, Seed: int64(100 + trial),
		})
		res, err := Run(Options{Locked: locked.Circuit, Oracle: inj, Seed: 3})
		if err == nil {
			if !inst.IsCorrectCASKey(res.Key) {
				t.Fatalf("trial %d: naive attack emitted a WRONG key without any error", trial)
			}
			continue // noise happened to miss the decisive queries
		}
		failures++
		if !errors.Is(err, ErrOracleInconsistent) && !errors.Is(err, ErrLemma2) && !errors.Is(err, ErrPartial) {
			t.Fatalf("trial %d: naive failure has no typed classification: %v", trial, err)
		}
	}
	if failures == 0 {
		t.Fatalf("flip rate 0.02 never disturbed the attack across %d trials — test exercised nothing", trials)
	}
}

// TestDeadlineReturnsPartial drives a deliberately huge enumeration
// (a 20-input block ⇒ 2^20-point block space through the simulation
// extractor) against a 1ms deadline: the attack must come back with
// ErrPartial — not a hang and not a wrong key — within a small multiple
// of the deadline.
func TestDeadlineReturnsPartial(t *testing.T) {
	h := host(t, 22)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain: lock.MustParseChain("4A-O-14A-O"), Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	const deadline = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err = Run(Options{
		Context: ctx,
		Locked:  locked.Circuit,
		Oracle:  oracle.MustNewSim(h),
		Seed:    3,
		Workers: 2,
	})
	elapsed := time.Since(start)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("deadline run returned %v, want *PartialError", err)
	}
	if !errors.Is(err, ErrPartial) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partial error lost its classification: %v", err)
	}
	if pe.Stage == "" {
		t.Fatalf("partial error does not name the interrupted stage: %+v", pe)
	}
	// "Bounded" means a small multiple of the deadline, not a fraction of
	// the full multi-second enumeration. Allow generous CI jitter.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("deadline %v but Run held on for %v", deadline, elapsed)
	}
}

// TestCancelReturnsPartialMidExtraction cancels (rather than times out)
// a large extraction and checks the same contract holds for manual
// cancellation.
func TestCancelReturnsPartialMidExtraction(t *testing.T) {
	h := host(t, 22)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain: lock.MustParseChain("4A-O-14A-O"), Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Run(Options{Context: ctx, Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: 3, Workers: 2})
	if !errors.Is(err, ErrPartial) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
}

// TestPermanentOracleFailureIsPartial wires an oracle whose transient
// failures outlive any retry budget and checks the attack surfaces a
// PartialError wrapping the permanent-failure classification instead of
// an opaque error.
func TestPermanentOracleFailureIsPartial(t *testing.T) {
	h := host(t, 8)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain: lock.MustParseChain("2A-O-2A"), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(oracle.MustNewSim(h), faults.Config{TransientRate: 1, Seed: 1})
	res := oracle.NewResilient(inj, oracle.ResilientOptions{Retries: 2, Seed: 1, Sleep: noSleep})
	_, err = Run(Options{Locked: locked.Circuit, Oracle: res, Seed: 3})
	if err == nil {
		t.Fatal("attack succeeded against an always-failing oracle")
	}
	if !errors.Is(err, oracle.ErrPermanent) {
		t.Fatalf("error does not carry the permanent-failure classification: %v", err)
	}
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("permanent oracle failure did not degrade gracefully: %v", err)
	}
}

// TestCancelUnwindsDecodePromptly cancels the attack the moment
// extraction hands its DIP set to the decoder: the Algorithm-1 class
// walks and the δ-candidate scan must notice the cancellation through
// their pollers instead of grinding through a >8k-element structured
// class, and the partial error must name "decode" as the interrupted
// stage. Before the pollers existed, this instance held the wind-down
// hostage for the full scan (minutes at signal-smoke widths).
func TestCancelUnwindsDecodePromptly(t *testing.T) {
	h := host(t, 20)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain: lock.MustParseChain("3A-O-14A-O"), Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelled time.Time
	_, err = Run(Options{
		Context: ctx,
		Locked:  locked.Circuit,
		Oracle:  oracle.MustNewSim(h),
		Seed:    3,
		Log: func(format string, args ...any) {
			if strings.HasPrefix(format, "extracted |I_l|") && cancelled.IsZero() {
				cancelled = time.Now()
				cancel()
			}
		},
	})
	if cancelled.IsZero() {
		t.Fatalf("extraction never reported a DIP set (err=%v)", err)
	}
	elapsed := time.Since(cancelled)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("cancelled decode returned %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("partial error lost the cancellation cause: %v", err)
	}
	if pe.Stage != "decode" {
		t.Fatalf("interrupted stage = %q, want decode", pe.Stage)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("decode held the cancellation for %v", elapsed)
	}
}

// TestDeltaCandidatesPollsContext drives the δ scan directly with a
// cancelled context and a structured class big enough to cross the
// poll stride, checking the scan aborts with the context error rather
// than completing (or worse, returning a truncated candidate list that
// looks like a legitimate "needs calibration" answer).
func TestDeltaCandidatesPollsContext(t *testing.T) {
	const n = 18
	dips, err := NewDIPSet(n)
	if err != nil {
		t.Fatal(err)
	}
	half := uint64(1) << (n - 1)
	st := &structured{dips: dips, bigTop: true, s: 0}
	st.wSet = make(map[uint64]struct{}, half)
	for p := half; p < 2*half; p++ {
		dips.Add(p)
		st.wList = append(st.wList, p)
		st.wSet[p] = struct{}{}
	}
	// One suppressed element: small = {w0 ⊕ ¬s} with w0 the first
	// one-point, so V = W ∖ {w0} and the exact quadratic verification
	// path is reachable.
	mask := blockMask(n)
	dips.Add(half ^ mask)
	st.total = dips.Count()
	st.nBig = half

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := &attack{ctx: ctx, layout: &BlockLayout{
		InputPos: make([]int, n), Key1Pos: make([]int, n), Key2Pos: make([]int, n),
	}}
	start := time.Now()
	out, err := a.deltaCandidates(st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("deltaCandidates under cancelled ctx returned (%v, %v), want context.Canceled", out, err)
	}
	if out != nil {
		t.Fatalf("cancelled scan still produced candidates: %v", out)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled scan ran for %v", elapsed)
	}
}
