# Tier-1 flow: `make ci` is what a PR must keep green.
#
#   make build      compile everything
#   make test       unit + integration tests
#   make test-race  the test suite under the race detector (the
#                   enumeration engine and experiment runners are
#                   concurrent; data races are correctness bugs here)
#   make vet        go vet
#   make fuzz-smoke short coverage-guided fuzz of the bench parser
#   make ci         build + vet + test + test-race + fuzz-smoke
#   make bench      tier-1 benchmarks with allocation reporting
#   make benchjson  refresh BENCH_core.json (the perf trajectory file)

GO ?= go
FUZZTIME ?= 5s

.PHONY: build test test-race vet fuzz-smoke ci bench benchjson

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBenchRead -fuzztime $(FUZZTIME) ./internal/bench/

ci: build vet test test-race fuzz-smoke

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/core/ .

benchjson:
	$(GO) run ./cmd/benchjson -o BENCH_core.json
