package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/attack/appsat"
	"repro/internal/attack/bypass"
	"repro/internal/attack/casunlock"
	"repro/internal/attack/satattack"
	"repro/internal/attack/sps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// The scheme-versus-attack matrix: every locking scheme in this
// repository against every attack, one fresh instance per cell. It is
// the executable version of the survey table the paper's introduction
// walks through (SAT breaks RLL; Anti-SAT/SARLock stop SAT but fall to
// bypass/removal; SFLL resists bypass; CAS-Lock stops all of the above
// and falls to DIP learning).

// MatrixCell is one scheme/attack outcome.
type MatrixCell struct {
	Scheme, Attack string
	// Broken means the attack produced an exact functional break
	// (SAT-proven equivalent circuit or correct key).
	Broken bool
	// Detail is a short human-readable outcome.
	Detail string
	Time   time.Duration
}

// MatrixSchemes lists the scheme labels in row order.
var MatrixSchemes = []string{"RLL", "Anti-SAT", "SARLock", "SFLL-HD", "CAS-Lock", "M-CAS"}

// MatrixAttacks lists the attack labels in column order.
var MatrixAttacks = []string{"SAT", "AppSAT", "CAS-Unlock", "SPS-removal", "bypass", "DIP-learning"}

// lockScheme builds one locked instance of the named scheme.
func lockScheme(scheme string, host *netlist.Circuit, seed int64) (*lock.Locked, func([]bool) bool, error) {
	switch scheme {
	case "RLL":
		l, _, err := lock.ApplyRLL(host, 10, seed)
		return l, nil, err
	case "Anti-SAT":
		l, inst, err := lock.ApplyAntiSAT(host, 10, seed)
		if err != nil {
			return nil, nil, err
		}
		return l, inst.IsCorrectCASKey, nil
	case "SARLock":
		l, _, err := lock.ApplySARLock(host, 10, seed)
		return l, nil, err
	case "SFLL-HD":
		l, _, err := lock.ApplySFLLHD(host, 8, 2, seed)
		return l, nil, err
	case "CAS-Lock":
		l, inst, err := lock.ApplyCAS(host, lock.CASOptions{Chain: lock.MustParseChain("2A-O-4A-O-2A"), Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return l, inst.IsCorrectCASKey, nil
	case "M-CAS":
		l, inst, err := lock.ApplyMCAS(host, lock.CASOptions{Chain: lock.MustParseChain("3A-O-A"), Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return l, inst.IsCorrectMCASKey, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
}

// MatrixOptions tunes a matrix run.
type MatrixOptions struct {
	// Context bounds the whole grid; a deadline or cancellation
	// propagates into the DIP-learning cells and stops the pool. Nil
	// means context.Background().
	Context context.Context
	// HostInputs is the shared host's primary-input count.
	HostInputs int
	// SATCap bounds SAT/AppSAT iterations per cell.
	SATCap int
	// Seed fixes host generation, locking and attack sampling.
	Seed int64
	// Workers bounds the cell pool (≤ 0 means GOMAXPROCS).
	Workers int
	// Noise is a per-output-bit flip rate injected into every cell's
	// oracle (0 = clean oracle). Positive noise also arms the resilient
	// decorator's majority voting so the attacks see denoised answers.
	Noise float64
	// Retries is the resilient decorator's transient-retry budget and
	// the attack's mismatch re-query count (0 = library defaults).
	Retries int
	// Telemetry, when non-nil, instruments every cell: the DIP-learning
	// attacks' phase spans, the fault injectors' and resilient
	// decorators' counters. Cells run concurrently; the registry is
	// race-safe, so one registry aggregates the whole grid.
	Telemetry *telemetry.Registry
	// LegacyEncoding disables the persistent incremental-SAT engine in
	// the DIP-learning cells (see core.Options.LegacyEncoding).
	LegacyEncoding bool
	// SATWidthLimit pins the SAT/sim regime boundary in the DIP-learning
	// cells; 0 auto-calibrates per instance (see
	// core.Options.SATWidthLimit).
	SATWidthLimit int
	// Portfolio, when > 0, races a portfolio of that many diversified
	// SAT engines in each cell (see core.Options.Portfolio).
	Portfolio int
}

// newOracle builds one cell's oracle: the clean simulator, optionally
// behind a deterministic fault injector and the resilient decorator.
func (o MatrixOptions) newOracle(host *netlist.Circuit, seed int64) oracle.Oracle {
	var orc oracle.Oracle = oracle.MustNewSim(host)
	if o.Noise <= 0 && o.Retries <= 0 {
		return orc
	}
	if o.Noise > 0 {
		orc = faults.New(orc, faults.Config{FlipRate: o.Noise, Seed: seed, Telemetry: o.Telemetry})
	}
	votes := 1
	if o.Noise > 0 {
		votes = 5
	}
	return oracle.NewResilient(orc, oracle.ResilientOptions{Retries: o.Retries, Votes: votes, Seed: seed, Telemetry: o.Telemetry})
}

// RunMatrix evaluates every attack against every scheme with the
// default worker pool (GOMAXPROCS) and no deadline.
func RunMatrix(hostInputs, satCap int, seed int64) ([]MatrixCell, error) {
	return RunMatrixWorkers(context.Background(), hostInputs, satCap, seed, 0)
}

// RunMatrixWorkers evaluates the matrix on a bounded pool of workers
// with a clean oracle; see RunMatrixOptions for the full knob set.
func RunMatrixWorkers(ctx context.Context, hostInputs, satCap int, seed int64, workers int) ([]MatrixCell, error) {
	return RunMatrixOptions(MatrixOptions{
		Context: ctx, HostInputs: hostInputs, SATCap: satCap, Seed: seed, Workers: workers,
	})
}

// RunMatrixOptions evaluates the matrix on a bounded pool of workers
// (≤ 0 means GOMAXPROCS). Cells are independent: every cell locks and
// attacks its own clone of the shared host (netlist circuits cache
// their topological order lazily and simulators are single-goroutine
// objects, so sharing one host across concurrent cells would race).
// Cell order — and every cell's outcome, which is fixed by the seeds —
// is independent of the worker count.
func RunMatrixOptions(mo MatrixOptions) ([]MatrixCell, error) {
	host, err := synth.Generate(synth.Config{
		Name: "mx", Inputs: mo.HostInputs, Outputs: 4, Gates: 70, Seed: mo.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Warm the lazy topo-order cache before the clones fan out.
	if _, err := host.TopoOrder(); err != nil {
		return nil, err
	}
	nCols := len(MatrixAttacks)
	return RunIndexed(mo.Context, len(MatrixSchemes)*nCols, mo.Workers, func(ctx context.Context, idx int) (MatrixCell, error) {
		si, ai := idx/nCols, idx%nCols
		h := host.Clone()
		locked, keyCheck, err := lockScheme(MatrixSchemes[si], h, mo.Seed+int64(si))
		if err != nil {
			return MatrixCell{}, err
		}
		start := time.Now()
		cell := runMatrixCell(ctx, mo, MatrixSchemes[si], MatrixAttacks[ai], h, locked, keyCheck, int64(idx))
		cell.Time = time.Since(start)
		return cell, nil
	})
}

func runMatrixCell(ctx context.Context, mo MatrixOptions, scheme, attackName string, host *netlist.Circuit,
	locked *lock.Locked, keyCheck func([]bool) bool, cellIdx int64) MatrixCell {

	satCap, seed := mo.SATCap, mo.Seed
	newOrc := func() oracle.Oracle { return mo.newOracle(host, seed^cellIdx<<20) }
	cell := MatrixCell{Scheme: scheme, Attack: attackName}
	prove := func(key []bool) bool {
		ok, err := miter.ProveUnlockedHashed(locked.Circuit, key, host)
		return err == nil && ok
	}
	fail := func(detail string) MatrixCell {
		cell.Broken = false
		cell.Detail = detail
		return cell
	}
	switch attackName {
	case "SAT":
		res, err := satattack.Run(locked.Circuit, newOrc(), satattack.Options{MaxIterations: satCap})
		if err != nil {
			return fail("error: " + err.Error())
		}
		if res.Completed && prove(res.Key) {
			cell.Broken = true
			cell.Detail = fmt.Sprintf("exact key, %d iters", res.Iterations)
			return cell
		}
		return fail(fmt.Sprintf("capped at %d iters", res.Iterations))
	case "AppSAT":
		res, err := appsat.Run(locked.Circuit, newOrc(), appsat.Options{Seed: seed, MaxIterations: satCap})
		if err != nil {
			return fail("error: " + err.Error())
		}
		if prove(res.Key) {
			cell.Broken = true
			cell.Detail = fmt.Sprintf("exact key, %d iters", res.Iterations)
			return cell
		}
		return fail(fmt.Sprintf("approximate key (err≈%.3f)", res.ErrorEstimate))
	case "CAS-Unlock":
		res, err := casunlock.Run(locked.Circuit, newOrc(), 300, seed)
		if err != nil {
			return fail("n/a: " + err.Error())
		}
		if res.Succeeded && prove(res.Key) {
			cell.Broken = true
			cell.Detail = "uniform key works"
			return cell
		}
		return fail("uniform keys fail")
	case "SPS-removal":
		res, err := sps.RemoveOuterFlip(locked.Circuit, 0.05)
		if err != nil {
			return fail("no skewed flip target")
		}
		if res.Circuit.NumKeys() == 0 {
			eq, _, err := miter.ProveEquivalentHashed(res.Circuit, host)
			if err == nil && eq {
				cell.Broken = true
				cell.Detail = "flip removed, design recovered"
				return cell
			}
			return fail("removal left a faulty circuit")
		}
		return fail(fmt.Sprintf("outer stripped, %d keys remain locked", res.Circuit.NumKeys()))
	case "bypass":
		// An area budget of 192 comparator fixes models the published
		// attack's practicality envelope: plenty for one-point functions,
		// far below CAS-Lock's DIP count. The CAS-aware extractor is
		// tried first; other schemes go through the generic SAT-miter
		// form of the attack.
		const fixBudget = 192
		res, err := bypass.Run(locked.Circuit, newOrc(), bypass.Options{MaxFixes: fixBudget})
		if err != nil {
			res, err = bypass.RunGeneric(locked.Circuit, newOrc(), fixBudget, seed)
		}
		if err != nil {
			return fail("infeasible: " + trimErr(err))
		}
		eq, _, perr := miter.ProveEquivalentHashed(res.Circuit, host)
		if perr == nil && eq {
			cell.Broken = true
			cell.Detail = fmt.Sprintf("%d fixes, +%d gates", res.Fixes, res.OverheadGates)
			return cell
		}
		return fail("bypass circuit incorrect")
	case "DIP-learning":
		if scheme == "M-CAS" {
			res, err := core.RunMCAS(locked.Circuit, newOrc(), core.Options{Context: ctx, Seed: seed, MismatchRetries: mo.Retries, Telemetry: mo.Telemetry, LegacyEncoding: mo.LegacyEncoding, SATWidthLimit: mo.SATWidthLimit, Portfolio: mo.Portfolio})
			if err != nil {
				return fail("failed: " + trimErr(err))
			}
			if (keyCheck == nil || keyCheck(res.Key)) && prove(res.Key) {
				cell.Broken = true
				cell.Detail = fmt.Sprintf("exact key, %d DIPs", res.Inner.TotalDIPs)
				return cell
			}
			return fail("wrong key")
		}
		res, err := core.Run(core.Options{Context: ctx, Locked: locked.Circuit, Oracle: newOrc(), Seed: seed, MismatchRetries: mo.Retries, Telemetry: mo.Telemetry, LegacyEncoding: mo.LegacyEncoding, SATWidthLimit: mo.SATWidthLimit, Portfolio: mo.Portfolio})
		if err != nil {
			return fail("n/a: " + trimErr(err))
		}
		if (keyCheck == nil || keyCheck(res.Key)) && prove(res.Key) {
			cell.Broken = true
			cell.Detail = fmt.Sprintf("exact key, %d DIPs", res.TotalDIPs)
			return cell
		}
		return fail("wrong key")
	}
	return fail("unknown attack")
}

func trimErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// PrintMatrix renders the matrix with schemes as rows.
func PrintMatrix(w io.Writer, cells []MatrixCell) {
	byKey := map[string]MatrixCell{}
	for _, c := range cells {
		byKey[c.Scheme+"/"+c.Attack] = c
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "scheme")
	for _, a := range MatrixAttacks {
		fmt.Fprintf(tw, "\t%s", a)
	}
	fmt.Fprintln(tw)
	for _, s := range MatrixSchemes {
		fmt.Fprint(tw, s)
		for _, a := range MatrixAttacks {
			c := byKey[s+"/"+a]
			mark := "✗"
			if c.Broken {
				mark = "BROKEN"
			}
			fmt.Fprintf(tw, "\t%s", mark)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
	for _, s := range MatrixSchemes {
		for _, a := range MatrixAttacks {
			c := byKey[s+"/"+a]
			fmt.Fprintf(w, "%-9s × %-13s %s\n", s, a, c.Detail)
		}
	}
}
