// Package appsat implements AppSAT (Shamsi et al., HOST 2017), the
// approximate variant of the SAT attack: the DIP loop is interleaved
// with random oracle sampling, and the attack settles for a key whose
// estimated error rate falls below a threshold. Against
// low-corruptibility schemes like Anti-SAT and CAS-Lock this terminates
// quickly with an *approximate* key — the design goal of those schemes —
// whereas on traditional locking it converges to an exact key. It is the
// third baseline the DIP-learning attack is contrasted with: AppSAT
// trades exactness for termination, the paper's attack gets both.
//
// By default the attack runs on the persistent incremental-SAT engine
// (internal/engine): the key-differential miter is encoded once, DIP and
// reinforcement constraints live in an assumption-guarded session scope,
// and learned clauses persist across the run (and across runs with a
// warm Backend). Options.LegacySolver restores the original throwaway
// per-run solver. Both paths extract canonical lex-min candidate keys,
// so exact outcomes are bit-identical across the two paths.
package appsat

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/engine"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// Options tunes the attack.
type Options struct {
	// RoundInterval is the number of DIP iterations between sampling
	// rounds (default 8).
	RoundInterval int
	// SamplesPerRound is the number of random oracle queries per
	// sampling round (default 64).
	SamplesPerRound int
	// ErrorThreshold is the estimated error rate below which the
	// current candidate is accepted as the approximate key (default:
	// accept only a perfect sample, i.e. < 1/SamplesPerRound).
	ErrorThreshold float64
	// MaxIterations bounds the DIP loop (0 = 4096).
	MaxIterations int
	// Seed drives sampling.
	Seed int64
	// LegacySolver rebuilds a throwaway solver for this run instead of
	// driving the persistent engine — the pre-engine behavior, kept as
	// an escape hatch and as the differential-test baseline.
	LegacySolver bool
	// Backend, when non-nil, is the engine the attack drives (a warm
	// pool entry or a portfolio); nil builds a fresh engine for the run.
	// Ignored under LegacySolver.
	Backend engine.Backend
	// Context, when non-nil, bounds the engine path: solves are sliced
	// against the deadline and cancellation is polled between slices.
	Context context.Context
	// Telemetry instruments the run (attack_* span + engine families).
	Telemetry *telemetry.Registry
}

// Result reports the attack outcome.
type Result struct {
	// Key is the recovered (possibly approximate) key.
	Key []bool
	// Exact is true when the miter became UNSAT (the SAT attack's own
	// termination), i.e. the key is provably correct.
	Exact bool
	// ErrorEstimate is the sampled disagreement rate of Key at
	// termination (0 for exact keys).
	ErrorEstimate float64
	// Iterations is the number of DIPs consumed.
	Iterations int
	// OracleQueries counts oracle patterns consumed.
	OracleQueries uint64
}

// Run mounts AppSAT on a locked netlist with oracle access.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if opts.RoundInterval <= 0 {
		opts.RoundInterval = 8
	}
	if opts.SamplesPerRound <= 0 {
		opts.SamplesPerRound = 64
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 4096
	}
	if locked.NumInputs() != orc.NumInputs() || locked.NumOutputs() != orc.NumOutputs() {
		return nil, fmt.Errorf("appsat: locked netlist I/O does not match oracle")
	}
	sp := opts.Telemetry.StartSpan("attack_appsat")
	defer sp.End()
	if opts.LegacySolver {
		return runLegacy(locked, orc, opts)
	}
	return runEngine(locked, orc, opts)
}

// loop is the solver-independent AppSAT protocol: the DIP iteration
// interleaved with sampling rounds, parameterized over the three solver
// touchpoints so the engine-session and legacy paths share one
// control flow (and therefore one oracle/rng consumption order).
type loop struct {
	findDIP    func() ([]bool, sat.Status, error)
	constrain  func(in, out []bool) error
	extractKey func() ([]bool, error)
}

func (l *loop) run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for {
		// Sampling round.
		if res.Iterations > 0 && res.Iterations%opts.RoundInterval == 0 {
			key, err := l.extractKey()
			if err != nil {
				return nil, err
			}
			disagree := 0
			var failIn []bool
			var failOut []bool
			for s := 0; s < opts.SamplesPerRound; s++ {
				in := make([]bool, locked.NumInputs())
				for i := range in {
					in[i] = rng.Intn(2) == 1
				}
				want, err := orc.Query(in)
				if err != nil {
					return nil, err
				}
				res.OracleQueries++
				got, err := sim.Run(in, key)
				if err != nil {
					return nil, err
				}
				for i := range want {
					if want[i] != got[i] {
						disagree++
						failIn = append([]bool(nil), in...)
						failOut = append([]bool(nil), want...)
						break
					}
				}
			}
			errRate := float64(disagree) / float64(opts.SamplesPerRound)
			if errRate <= opts.ErrorThreshold {
				res.Key = key
				res.ErrorEstimate = errRate
				return res, nil
			}
			// Reinforce: the worst sampled disagreement becomes an IO
			// constraint for both key copies (AppSAT's amendment step).
			if failIn != nil {
				if err := l.constrain(failIn, failOut); err != nil {
					return nil, err
				}
			}
		}
		if res.Iterations >= opts.MaxIterations {
			key, err := l.extractKey()
			if err != nil {
				return nil, err
			}
			res.Key = key
			res.ErrorEstimate = 1
			return res, nil
		}
		// One DIP iteration.
		dip, st, err := l.findDIP()
		if err != nil {
			return nil, err
		}
		switch st {
		case sat.Unsat:
			key, err := l.extractKey()
			if err != nil {
				return nil, err
			}
			res.Key = key
			res.Exact = true
			return res, nil
		case sat.Unknown:
			return nil, fmt.Errorf("appsat: solver returned UNKNOWN")
		}
		res.Iterations++
		out, err := orc.Query(dip)
		if err != nil {
			return nil, err
		}
		res.OracleQueries++
		if err := l.constrain(dip, out); err != nil {
			return nil, err
		}
	}
}

// runEngine drives the protocol through a persistent engine session.
func runEngine(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	be := opts.Backend
	if be == nil {
		eng, err := engine.New(locked, nil)
		if err != nil {
			return nil, err
		}
		be = eng
	}
	if opts.Context != nil {
		be.SetContext(opts.Context)
	}
	if opts.Telemetry != nil {
		be.SetTelemetry(opts.Telemetry)
	}
	be.SetPhase("appsat")

	ses, err := be.OpenSession()
	if err != nil {
		return nil, err
	}
	defer ses.Close()

	l := &loop{
		findDIP:   ses.FindDIP,
		constrain: ses.Constrain,
		extractKey: func() ([]bool, error) {
			key, st, err := ses.ExtractKey()
			if err != nil {
				return nil, err
			}
			if st != sat.Sat {
				return nil, fmt.Errorf("appsat: key extraction returned %v", st)
			}
			return key, nil
		},
	}
	return l.run(locked, orc, opts)
}

// runLegacy is the original throwaway-solver attack, kept as the
// LegacySolver escape hatch and differential baseline.
func runLegacy(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	kd, err := miter.NewKeyDiff(locked)
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	enc, err := cnf.EncodeInto(kd.Circuit, solver)
	if err != nil {
		return nil, err
	}
	diffLit := enc.OutputLits(kd.Circuit)[0]
	inputLits := enc.InputLits(kd.Circuit)
	keyLits := enc.KeyLits(kd.Circuit)
	keysA := keyLits[:kd.NKeys]
	keysB := keyLits[kd.NKeys:]

	addIO := func(keys []cnf.Lit, in, out []bool) error {
		e, err := cnf.EncodeInto(locked, solver)
		if err != nil {
			return err
		}
		for i, kl := range e.KeyLits(locked) {
			solver.Add(kl.Neg(), keys[i])
			solver.Add(kl, keys[i].Neg())
		}
		for i, il := range e.InputLits(locked) {
			if in[i] {
				solver.Add(il)
			} else {
				solver.Add(il.Neg())
			}
		}
		for i, ol := range e.OutputLits(locked) {
			if out[i] {
				solver.Add(ol)
			} else {
				solver.Add(ol.Neg())
			}
		}
		return nil
	}

	l := &loop{
		findDIP: func() ([]bool, sat.Status, error) {
			st := solver.Solve(diffLit)
			if st != sat.Sat {
				return nil, st, nil
			}
			dip := make([]bool, len(inputLits))
			for i, lt := range inputLits {
				dip[i] = solver.ModelValue(lt)
			}
			return dip, sat.Sat, nil
		},
		constrain: func(in, out []bool) error {
			if err := addIO(keysA, in, out); err != nil {
				return err
			}
			return addIO(keysB, in, out)
		},
		// Canonical lex-min extraction, matching the engine session: the
		// candidate key is a function of the constraint set alone, not of
		// the solver's model choice.
		extractKey: func() ([]bool, error) {
			if st := solver.Solve(); st != sat.Sat {
				return nil, fmt.Errorf("appsat: key extraction returned %v", st)
			}
			key := make([]bool, kd.NKeys)
			assume := make([]cnf.Lit, 0, kd.NKeys)
			for i, lt := range keysA {
				switch st := solver.Solve(append(assume, lt.Neg())...); st {
				case sat.Sat:
					assume = append(assume, lt.Neg())
				case sat.Unsat:
					key[i] = true
					assume = append(assume, lt)
				default:
					return nil, fmt.Errorf("appsat: key extraction returned %v", st)
				}
			}
			return key, nil
		},
	}
	return l.run(locked, orc, opts)
}
