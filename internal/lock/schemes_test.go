package lock

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/oracle"
)

func TestRLLCorrectKey(t *testing.T) {
	host := testHost(t, 10)
	locked, inst, err := ApplyRLL(host, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	if locked.Circuit.NumKeys() != 8 || len(inst.WireNames) != 8 {
		t.Fatal("key bookkeeping wrong")
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Error("correct RLL key does not restore function")
	}
}

func TestRLLWrongKeyCorrupts(t *testing.T) {
	host := testHost(t, 10)
	locked, _, err := ApplyRLL(host, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single key bit inverts a net; at least one flip must
	// corrupt observable behaviour (all of them usually do).
	anyCorrupt := false
	for i := range locked.Key {
		wrong := append([]bool(nil), locked.Key...)
		wrong[i] = !wrong[i]
		if countCorruptedPatterns(t, locked.Circuit, wrong, host) > 0 {
			anyCorrupt = true
			break
		}
	}
	if !anyCorrupt {
		t.Error("no single-bit wrong key corrupts anything")
	}
}

func TestRLLValidation(t *testing.T) {
	host := testHost(t, 6)
	if _, _, err := ApplyRLL(host, 0, 1); err == nil {
		t.Error("zero keys accepted")
	}
	if _, _, err := ApplyRLL(host, 100000, 1); err == nil {
		t.Error("more keys than nets accepted")
	}
	locked, _, _ := ApplyRLL(host, 2, 1)
	if _, _, err := ApplyRLL(locked.Circuit, 2, 1); err == nil {
		t.Error("already-locked host accepted")
	}
}

func TestSARLockExactlyOneCorruptionPerWrongKey(t *testing.T) {
	host := testHost(t, 8)
	locked, inst, err := ApplySARLock(host, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Fatal("correct SARLock key broken")
	}
	// Wrong key: the flip fires exactly when X_sel == K, i.e. on
	// 2^(inputs-n) full patterns sharing one block value.
	wrong := append([]bool(nil), locked.Key...)
	wrong[1] = !wrong[1]
	corrupted := countCorruptedPatterns(t, locked.Circuit, wrong, host)
	wantAtMost := 1 << uint(host.NumInputs()-inst.N)
	if corrupted == 0 || corrupted > wantAtMost {
		t.Errorf("wrong key corrupts %d patterns, want in (0,%d]", corrupted, wantAtMost)
	}
}

func TestSARLockValidation(t *testing.T) {
	host := testHost(t, 6)
	if _, _, err := ApplySARLock(host, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := ApplySARLock(host, 7, 1); err == nil {
		t.Error("n>inputs accepted")
	}
}

func TestSFLLCorrectKey(t *testing.T) {
	host := testHost(t, 9)
	locked, inst, err := ApplySFLLHD(host, 6, 2, 37)
	if err != nil {
		t.Fatal(err)
	}
	if inst.H != 2 || inst.N != 6 {
		t.Fatal("instance metadata wrong")
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Error("correct SFLL key does not restore function")
	}
}

func TestSFLLWrongKeyCorruption(t *testing.T) {
	host := testHost(t, 9)
	locked, inst, err := ApplySFLLHD(host, 6, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), locked.Key...)
	wrong[0] = !wrong[0]
	corrupted := countCorruptedPatterns(t, locked.Circuit, wrong, host)
	if corrupted == 0 {
		t.Error("wrong SFLL key corrupts nothing")
	}
	// SFLL-HD's signature property vs SARLock: corruption spans MANY
	// block patterns (h-distance spheres), not a single one.
	single := 1 << uint(host.NumInputs()-inst.N)
	if corrupted <= single {
		t.Errorf("SFLL corruption (%d patterns) not higher than a one-point function (%d)", corrupted, single)
	}
}

func TestSFLLHDZero(t *testing.T) {
	// h = 0 degenerates to a TTLock-style point function; still must be
	// correct under the right key.
	host := testHost(t, 8)
	locked, _, err := ApplySFLLHD(host, 5, 0, 43)
	if err != nil {
		t.Fatal(err)
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Error("h=0 correct key broken")
	}
}

func TestSFLLValidation(t *testing.T) {
	host := testHost(t, 6)
	if _, _, err := ApplySFLLHD(host, 4, 5, 1); err == nil {
		t.Error("h>n accepted")
	}
	if _, _, err := ApplySFLLHD(host, 9, 1, 1); err == nil {
		t.Error("n>inputs accepted")
	}
}

func TestMCASCorrectKey(t *testing.T) {
	host := testHost(t, 8)
	locked, _, err := ApplyMCAS(host, CASOptions{Chain: MustParseChain("A-O-A"), Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if locked.Circuit.NumKeys() != 16 {
		t.Fatalf("keys = %d, want 16", locked.Circuit.NumKeys())
	}
	act, err := oracle.Activate(locked.Circuit, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Error("canonical M-CAS key broken")
	}
}

func TestMCASMirroredWrongKeysCancel(t *testing.T) {
	// The M-CAS property: ANY K_inner = K_outer functions correctly,
	// because the identical flips cancel.
	host := testHost(t, 8)
	locked, inst, err := ApplyMCAS(host, CASOptions{Chain: MustParseChain("A-O-A"), Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	n2 := 2 * inst.Inner.N
	// A deliberately wrong block key, mirrored.
	blockKey := append([]bool(nil), inst.Inner.CorrectKey...)
	blockKey[0] = !blockKey[0] // wrong as a CAS key (mask mismatch)
	if inst.Inner.IsCorrectCASKey(blockKey) {
		t.Fatal("test setup: expected a wrong block key")
	}
	key := append(append([]bool(nil), blockKey...), blockKey...)
	if !inst.IsCorrectMCASKey(key) {
		t.Error("mirrored key not recognized as correct")
	}
	act, err := oracle.Activate(locked.Circuit, key)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalentExhaustive(t, act, host) {
		t.Error("mirrored wrong keys do not cancel")
	}
	// Non-mirrored wrong key corrupts.
	bad := append([]bool(nil), key...)
	bad[n2] = !bad[n2] // outer differs from inner in one bit
	if inst.IsCorrectMCASKey(bad) {
		t.Error("non-mirrored key accepted by IsCorrectMCASKey")
	}
	if countCorruptedPatterns(t, locked.Circuit, bad, host) == 0 {
		t.Error("non-mirrored wrong key corrupts nothing")
	}
}

func TestEffectiveMask(t *testing.T) {
	kg := []netlist.GateType{netlist.Xor, netlist.Xnor, netlist.Xor}
	m := EffectiveMask(kg, []bool{true, true, false})
	if !m[0] || m[1] || m[2] {
		t.Errorf("mask = %v", m)
	}
}
