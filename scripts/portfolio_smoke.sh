#!/bin/sh
# portfolio-smoke: differential check of the racing SAT portfolio
# against the single persistent engine.
#
# Attacks one SAT-regime CAS instance (width-12 block, 24 key bits —
# the portfolio carries every enumeration, calibration and verification
# query) and one wide 32-bit-key instance (simulation regime, where the
# portfolio only serves distinguishing), each twice: default single
# engine versus -portfolio. The portfolio is a pure solving-strategy
# change — diversified members race on one shared encoding and exchange
# learned clauses — so both runs must SAT-prove their key and print
# byte-identical key bits; any divergence is a clause-sharing soundness
# bug, not tuning.
#
# Usage: portfolio_smoke.sh <workdir>
set -eu

DIR=${1:?usage: portfolio_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-attack ./cmd/casgen

# Width-12 block -> 24 key bits: inside the SAT-extractor limit.
"$DIR/bin/casgen" -inputs 14 -gates 70 -scheme cas \
	-chain "5A-O-5A" \
	-out "$DIR/sat_locked.bench" -orig "$DIR/sat_orig.bench"

# Width-16 block -> 32 key bits: simulation regime; the portfolio backs
# the verifier's distinguishing queries only.
"$DIR/bin/casgen" -inputs 36 -gates 160 -scheme cas \
	-chain "7A-O-7A" \
	-out "$DIR/wide_locked.bench" -orig "$DIR/wide_orig.bench"

for inst in sat wide; do
	"$DIR/bin/caslock-attack" -locked "$DIR/${inst}_locked.bench" \
		-oracle "$DIR/${inst}_orig.bench" >"$DIR/${inst}_single.out" 2>&1 || {
		echo "portfolio-smoke: $inst single-engine attack failed" >&2
		cat "$DIR/${inst}_single.out" >&2
		exit 1
	}
	"$DIR/bin/caslock-attack" -locked "$DIR/${inst}_locked.bench" \
		-oracle "$DIR/${inst}_orig.bench" \
		-portfolio >"$DIR/${inst}_portfolio.out" 2>&1 || {
		echo "portfolio-smoke: $inst portfolio attack failed" >&2
		cat "$DIR/${inst}_portfolio.out" >&2
		exit 1
	}

	for path in single portfolio; do
		if ! grep -q "SAT-PROVEN equivalent" "$DIR/${inst}_$path.out"; then
			echo "portfolio-smoke: $inst $path run did not SAT-prove its key" >&2
			cat "$DIR/${inst}_$path.out" >&2
			exit 1
		fi
	done

	ONE_KEY=$(grep "key:" "$DIR/${inst}_single.out")
	PORT_KEY=$(grep "key:" "$DIR/${inst}_portfolio.out")
	if [ -z "$ONE_KEY" ] || [ "$ONE_KEY" != "$PORT_KEY" ]; then
		echo "portfolio-smoke: $inst keys diverge between single-engine and portfolio runs" >&2
		echo "single:    $ONE_KEY" >&2
		echo "portfolio: $PORT_KEY" >&2
		exit 1
	fi
done

echo "portfolio-smoke: OK (SAT-regime and 32-bit keys byte-identical across single-engine and portfolio runs)"
rm -rf "$DIR"
