package core

import (
	"strconv"
	"testing"

	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// runInstrumented mounts the attack on a small instance with a live
// registry and returns both.
func runInstrumented(t *testing.T, chain string, seed int64) (*Result, *telemetry.Registry) {
	t.Helper()
	h := host(t, 8)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain:    lock.MustParseChain(chain),
		InputSel: []int{0, 2, 4, 5, 7},
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	res, err := Run(Options{
		Locked:    locked.Circuit,
		Oracle:    oracle.MustNewSim(h),
		Seed:      seed,
		Telemetry: reg,
		// Pin the historic regime rule: these tests assert SAT-extractor
		// telemetry on a width-5 block, which the calibration probe would
		// otherwise route to the (cheaper) simulation engine.
		SATWidthLimit: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, reg
}

// TestAttackSpanTree asserts the instrumented pipeline shape: one
// "attack" root, "hypothesis" children carrying the case argument, and
// under the successful hypothesis the five phases enumerate → decode →
// algo1 → algo2 → verify, in start order.
func TestAttackSpanTree(t *testing.T) {
	res, reg := runInstrumented(t, "A-O-2A", 42)
	recs := reg.SpanRecords()
	roots := telemetry.FindSpans(recs, "attack")
	if len(roots) != 1 || roots[0].Parent != 0 {
		t.Fatalf("want exactly one parentless attack span, got %+v", roots)
	}
	hyps := telemetry.ChildrenOf(recs, roots[0].ID)
	if len(hyps) == 0 {
		t.Fatal("attack span has no hypothesis children")
	}
	// The last hypothesis is the successful one.
	last := hyps[len(hyps)-1]
	if last.Name != "hypothesis" {
		t.Fatalf("attack child %q, want hypothesis", last.Name)
	}
	if last.Args["case"] != strconv.Itoa(res.Case) {
		t.Fatalf("hypothesis case arg %q, result case %d", last.Args["case"], res.Case)
	}
	var phases []string
	for _, kid := range telemetry.ChildrenOf(recs, last.ID) {
		phases = append(phases, kid.Name)
	}
	want := []string{"enumerate", "decode", "algo1", "algo2", "verify"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i, name := range want {
		if phases[i] != name {
			t.Fatalf("phase %d = %q, want %q (%v)", i, phases[i], name, phases)
		}
	}
	// Phase durations nest inside the hypothesis, which nests inside the
	// attack.
	var phaseSum int64
	for _, kid := range telemetry.ChildrenOf(recs, last.ID) {
		phaseSum += int64(kid.Dur)
	}
	if phaseSum > int64(last.Dur) {
		t.Fatalf("phase durations %d exceed hypothesis duration %d", phaseSum, last.Dur)
	}
	if int64(last.Dur) > int64(roots[0].Dur) {
		t.Fatal("hypothesis outlasts the attack root span")
	}
}

// TestAttackTelemetryCounters asserts the registry agrees with the
// attack's own accounting and that the extractor folded in its metrics.
func TestAttackTelemetryCounters(t *testing.T) {
	res, reg := runInstrumented(t, "2A-O-A", 7)
	snap := reg.Snapshot()
	if got := snap.Counters["attack_oracle_queries_total"]; got != res.OracleQueries {
		t.Fatalf("attack_oracle_queries_total = %d, result says %d", got, res.OracleQueries)
	}
	if got := snap.Counters["attack_candidates_total"]; got != uint64(res.CandidatesTried) {
		t.Fatalf("attack_candidates_total = %d, result says %d", got, res.CandidatesTried)
	}
	if got := snap.Counters["enum_extractions_total"]; got != uint64(res.Extractions) {
		t.Fatalf("enum_extractions_total = %d, result says %d", got, res.Extractions)
	}
	// n = 5 uses the SAT extractor, whose solver stats fold into sat_*.
	if snap.Counters["sat_solve_calls_total"] == 0 {
		t.Fatal("sat_solve_calls_total not recorded")
	}
	for _, phase := range []string{"enumerate", "decode", "algo1", "algo2", "verify"} {
		name := telemetry.Label("attack_phase_seconds", "phase", phase)
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("phase histogram %s missing or empty", name)
		}
	}
	if len(telemetry.FindSpans(snap.Spans, "extract")) == 0 {
		t.Fatal("no extract spans recorded")
	}
}

// TestSimExtractorShardTelemetry drives the simulation extractor with a
// registry attached and checks the per-shard accounting: every shard's
// batch counter sums to the full batch count, and the shard spans sit on
// lanes 1..w under the extract span.
func TestSimExtractorShardTelemetry(t *testing.T) {
	h := host(t, 10)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain:    lock.MustParseChain("3A-O-5A"),
		InputSel: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSimExtractor(locked.Circuit, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(4)
	reg := telemetry.New()
	e.SetTelemetry(reg)
	dips, err := e.DIPs(PairAssign{
		A: onesThenC(locked.Circuit.NumKeys(), layout),
		B: make([]bool, locked.Circuit.NumKeys()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dips.Count() == 0 {
		t.Fatal("no DIPs extracted")
	}
	snap := reg.Snapshot()
	w := int(snap.Gauges["enum_workers"])
	if w < 1 {
		t.Fatalf("enum_workers = %d", w)
	}
	var batches uint64
	for s := 0; s < w; s++ {
		batches += snap.Counters[telemetry.Label("enum_shard_batches_total", "shard", strconv.Itoa(s))]
	}
	// n = 10 → 2^(10-6) = 16 batches over the whole space.
	if batches != 16 {
		t.Fatalf("shard batch counters sum to %d, want 16", batches)
	}
	ext := telemetry.FindSpans(snap.Spans, "extract")
	if len(ext) != 1 {
		t.Fatalf("%d extract spans, want 1", len(ext))
	}
	shardSpans := telemetry.ChildrenOf(snap.Spans, ext[0].ID)
	if len(shardSpans) == 0 {
		t.Fatal("no shard spans under extract")
	}
	for _, s := range shardSpans {
		if s.Name != "shard" || s.Lane < 1 {
			t.Fatalf("shard span wrong: %+v", s)
		}
	}
}

// onesThenC builds the Lemma-1 assignment for block 1 active at c = 0.
func onesThenC(nKeys int, layout *BlockLayout) []bool {
	a := make([]bool, nKeys)
	for _, pos := range layout.Key1Pos {
		a[pos] = true
	}
	return a
}
