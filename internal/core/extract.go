package core

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cnf"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// PairAssign fixes the full key vectors of the two miter copies (indexed
// like the locked circuit's key list).
type PairAssign struct {
	A, B []bool
}

// ClassSizes reports the two bit-(n-1) classes of a DIP set: Big ≥ Small.
// Exact is false when the sizes were estimated by sampling (and then they
// are scaled to the full block space).
type ClassSizes struct {
	Big, Small float64
	Exact      bool
}

// Extractor enumerates the DIP set of a fixed-key two-copy miter of the
// locked circuit, reported as patterns over the n chain inputs (bit i of
// a pattern = chain input i). Implementations must return each block
// pattern at most once.
//
// Extractors honoring cancellation additionally implement
// SetContext(context.Context); when the context expires mid-enumeration
// DIPs returns the partially filled set alongside the context's error,
// so callers can report progress.
type Extractor interface {
	// BlockWidth returns n, the chain width.
	BlockWidth() int
	// DIPs exactly enumerates the block-input patterns on which the two
	// copies disagree, as a packed bitset over the 2^n pattern space.
	DIPs(assign PairAssign) (*DIPSet, error)
	// Classes returns the sizes of the DIP set's two bit-(n-1) classes,
	// possibly by sampling.
	Classes(assign PairAssign) (ClassSizes, error)
	// Extractions returns how many DIP-set extractions (DIPs or Classes
	// calls) have been performed, for cost accounting.
	Extractions() int
}

// ---------------------------------------------------------------------
// SAT-based extractor: the faithful implementation of the paper's DIP-set
// extraction (bypass-attack style: miter + blocking clauses), run on the
// full locked netlist.
// ---------------------------------------------------------------------

// encodeCacheSize bounds the SAT extractor's per-assignment encoding
// cache: large enough to hold both Lemma-1 hypothesis assignments plus
// the calibration sweep's working set (whose Classes→DIPs pairs and
// re-decode extractions revisit recent assignments), small enough that
// a long sweep cannot accumulate formulas without bound.
const encodeCacheSize = 8

// simEventStride is how many 64-pattern batches a simulation shard
// walks between dip_progress events: rare enough that the shared
// atomic and the bus mutex stay off the kernel's critical path, fine
// enough that a multi-second walk reports progress many times a second.
const simEventStride = 1024

// satEncoding is one memoized fixed-key miter compilation: the Tseitin
// clauses, the disagreement literal and the block-input literals in
// chain order. Immutable once built — enumeration replays the clauses
// into a fresh solver, so cached encodings are safely shared.
type satEncoding struct {
	form  *cnf.Formula
	diff  cnf.Lit
	block []cnf.Lit
}

// SATExtractor enumerates DIPs with a SAT solver over the full locked
// netlist, exactly as the paper does (CryptoMiniSat in the original).
//
// The default path runs on the persistent incremental engine
// (internal/engine): the key-differential miter is Tseitin encoded once
// into one long-lived solver, key assignments become assumption
// literals, and every extraction across every attack phase reuses the
// same clause database, so learned clauses and variable activity carry
// over between hypotheses and calibration candidates.
//
// SetLegacyEncoding(true) restores the pre-engine path: the fixed-key
// miter and its Tseitin encoding are memoized per key assignment in a
// small LRU and replayed into a fresh solver per enumeration.
type SATExtractor struct {
	locked *netlist.Circuit
	layout *BlockLayout
	count  int
	ctx    context.Context     // nil = never cancelled
	tel    *telemetry.Registry // nil = uninstrumented

	legacy    bool
	portfolio int            // >0 = race a portfolio of this many engines
	eng       engine.Backend // lazily built persistent backend (non-legacy path)
	phase     string         // pending phase label, applied when eng is built
	bus       *events.Bus    // nil = no lifecycle events

	progress func(set *DIPSet, complete bool) // checkpoint hook; nil = disabled
	seed     *DIPSet                          // resume seed, consumed by the next DIPs call

	// Legacy encoding cache, keyed by the packed (A,B) assignment bits.
	encodings *cache.LRU[string, *satEncoding]
}

// NewSATExtractor builds a SAT-based extractor.
func NewSATExtractor(locked *netlist.Circuit, layout *BlockLayout) (*SATExtractor, error) {
	if err := layout.Validate(locked); err != nil {
		return nil, err
	}
	if layout.N() > 30 {
		return nil, fmt.Errorf("core: SAT extractor limited to 30 chain inputs (full enumeration); use the simulation extractor")
	}
	return &SATExtractor{locked: locked, layout: layout,
		encodings: cache.NewLRU[string, *satEncoding](encodeCacheSize)}, nil
}

// BlockWidth implements Extractor.
func (e *SATExtractor) BlockWidth() int { return e.layout.N() }

// Extractions implements Extractor.
func (e *SATExtractor) Extractions() int { return e.count }

// SetContext bounds subsequent enumerations: the model loop slices its
// Solve calls with conflict budgets sized from the remaining deadline
// and checks cancellation between slices.
func (e *SATExtractor) SetContext(ctx context.Context) {
	e.ctx = ctx
	if e.eng != nil {
		e.eng.SetContext(ctx)
	}
}

// SetTelemetry attaches a metrics registry: extractions trace as
// "extract" spans and the solver's conflict/decision/propagation
// statistics fold into sat_* counters (plus the engine_* families on the
// incremental path). Nil disables instrumentation.
func (e *SATExtractor) SetTelemetry(r *telemetry.Registry) {
	e.tel = r
	if e.eng != nil {
		e.eng.SetTelemetry(r)
	}
}

// SetLegacyEncoding selects the pre-engine per-assignment re-encode path
// (the -legacy-encoding escape hatch). Must be chosen before the first
// extraction; flipping it afterwards only affects subsequent calls.
func (e *SATExtractor) SetLegacyEncoding(v bool) { e.legacy = v }

// SetPortfolio selects the racing-portfolio backend with n members
// (0 = single engine). Must be chosen before the first extraction: once
// the backend is built the setting is fixed for the extractor's
// lifetime, so a late call is ignored.
func (e *SATExtractor) SetPortfolio(n int) {
	if e.eng == nil {
		e.portfolio = n
	}
}

// SetBackend injects a pre-built engine backend — the attack service's
// warm pool hands back an already-encoded engine or portfolio for a
// previously seen netlist, skipping the Tseitin encode entirely. The
// injected backend must have been built for the identical canonical
// netlist and layout; the pool keys guarantee that. Ignored in legacy
// mode and after the extractor has built its own backend.
func (e *SATExtractor) SetBackend(b engine.Backend) {
	if e.eng == nil && !e.legacy {
		e.eng = b
		e.eng.SetContext(e.ctx)
		e.eng.SetTelemetry(e.tel)
		e.eng.SetEvents(e.bus)
		if e.phase != "" {
			e.eng.SetPhase(e.phase)
		}
	}
}

// SetEvents attaches a lifecycle event bus, forwarded to the persistent
// engine (which publishes budget_slice events from its deadline-sliced
// solve loop). Nil disables event publishing.
func (e *SATExtractor) SetEvents(b *events.Bus) {
	e.bus = b
	if e.eng != nil {
		e.eng.SetEvents(b)
	}
}

// SetPhase labels subsequent engine work for per-phase stats attribution
// and deadline budgeting; a no-op on the legacy path.
func (e *SATExtractor) SetPhase(name string) {
	e.phase = name
	if e.eng != nil {
		e.eng.SetPhase(name)
	}
}

// SetProgress installs a checkpoint hook: it is invoked on the
// enumerating goroutine after every accepted DIP with the (still
// mutating) output set and complete=false, and once more with
// complete=true when an enumeration finishes. The per-DIP cost when no
// hook is installed is a single nil check.
func (e *SATExtractor) SetProgress(fn func(set *DIPSet, complete bool)) { e.progress = fn }

// SeedDIPs arms the next DIPs call with a checkpoint's partial set: the
// seeded patterns are replayed into the enumeration as blocking clauses
// (engine path) or permanent clauses (legacy path) before solving, so
// enumeration continues where the snapshot stopped instead of
// re-deriving every pattern. Consumed by exactly one extraction.
func (e *SATExtractor) SeedDIPs(set *DIPSet) { e.seed = set }

// takeSeed consumes the pending resume seed if it matches the width.
func (e *SATExtractor) takeSeed() *DIPSet {
	s := e.seed
	e.seed = nil
	if s != nil && s.BlockWidth() != e.layout.N() {
		return nil
	}
	return s
}

// Engine returns the persistent incremental backend — a single engine,
// or a racing portfolio when SetPortfolio armed one — building it on
// first use, or nil when the extractor runs in legacy mode. The attack
// shares this backend for its SAT-based candidate distinguishing, so
// verifier queries profit from the clauses the enumeration phases
// learned.
func (e *SATExtractor) Engine() (engine.Backend, error) {
	if e.legacy {
		return nil, nil
	}
	if e.eng == nil {
		var eng engine.Backend
		var err error
		if e.portfolio > 0 {
			eng, err = engine.NewPortfolio(e.locked, e.layout.InputPos, e.portfolio)
		} else {
			eng, err = engine.New(e.locked, e.layout.InputPos)
		}
		if err != nil {
			return nil, err
		}
		eng.SetContext(e.ctx)
		eng.SetTelemetry(e.tel)
		eng.SetEvents(e.bus)
		if e.phase != "" {
			eng.SetPhase(e.phase)
		}
		e.eng = eng
	}
	return e.eng, nil
}

// Backend returns the already-built backend, or nil. Unlike Engine it
// never triggers a build: the warm-pool put-back path uses it so an
// attack that never touched SAT does not construct an engine just to
// park it.
func (e *SATExtractor) Backend() engine.Backend { return e.eng }

// assignKey packs a pair assignment into the encoding cache's string
// key: one byte per 8 key bits, copy A then copy B.
func assignKey(assign PairAssign) string {
	buf := make([]byte, 0, (len(assign.A)+len(assign.B)+7)/8+1)
	pack := func(bits []bool) {
		var b byte
		for i, v := range bits {
			if v {
				b |= 1 << uint(i&7)
			}
			if i&7 == 7 {
				buf = append(buf, b)
				b = 0
			}
		}
		buf = append(buf, b)
	}
	pack(assign.A)
	pack(assign.B)
	return string(buf)
}

// compile returns the fixed-key miter encoding for assign, building and
// caching it on first use: the Tseitin clauses, the disagreement
// literal and the block-input literals in chain order. The cache spans
// assignments, so the attack's second hypothesis case and the
// calibration sweep's Classes→DIPs pairs hit it instead of re-encoding.
func (e *SATExtractor) compile(assign PairAssign) (*satEncoding, error) {
	key := assignKey(assign)
	if enc, ok := e.encodings.Get(key); ok {
		e.tel.Counter("sat_encode_cache_hits_total").Inc()
		return enc, nil
	}
	e.tel.Counter("sat_encode_cache_misses_total").Inc()
	sp := e.tel.StartSpan("miter")
	defer sp.End()
	m, err := miter.NewFixedKey(e.locked, assign.A, assign.B)
	if err != nil {
		return nil, err
	}
	form := &cnf.Formula{}
	enc, err := cnf.EncodeInto(m, form)
	if err != nil {
		return nil, err
	}
	inLits := enc.InputLits(m)
	blockLits := make([]cnf.Lit, e.layout.N())
	for i, pos := range e.layout.InputPos {
		blockLits[i] = inLits[pos]
	}
	out := &satEncoding{form: form, diff: enc.OutputLits(m)[0], block: blockLits}
	e.encodings.Put(key, out)
	return out, nil
}

// satSliceConflicts bounds one Solve slice when a context is attached
// but carries no deadline (pure cancellation): large enough that the
// slicing overhead vanishes, small enough that cancellation lands
// within tens of milliseconds on typical encodings.
const satSliceConflicts = 1 << 14

// sliceBudget maps the remaining deadline onto a per-Solve conflict
// budget. The first slice is a small fixed probe; afterwards the
// observed conflict rate converts time-remaining into
// conflicts-remaining, and half of that is granted per slice so the
// deadline is re-examined a few times before it lands. 0 means
// unbudgeted (no context).
func (e *SATExtractor) sliceBudget(start time.Time, conflicts uint64) uint64 {
	if e.ctx == nil {
		return 0
	}
	deadline, ok := e.ctx.Deadline()
	if !ok {
		return satSliceConflicts
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return 1 // expired: the pre-Solve ctx check fires next iteration
	}
	elapsed := time.Since(start)
	if conflicts == 0 || elapsed <= 0 {
		return 1024
	}
	rate := float64(conflicts) / elapsed.Seconds() // conflicts per second
	budget := uint64(rate * remaining.Seconds() / 2)
	if budget < 256 {
		budget = 256
	}
	if budget > 1<<20 {
		budget = 1 << 20
	}
	return budget
}

// DIPs implements Extractor. On the default incremental path it runs an
// assumption-driven enumeration session against the persistent engine:
// the key assignment becomes assumption literals, found patterns are
// excluded with scope-guarded blocking clauses that are retired when the
// session ends, and nothing is re-encoded. On the legacy path it replays
// the (memoized) fixed-key miter encoding into a fresh solver. Both
// honor a context: on expiry the partially enumerated set is returned
// with the context's error.
func (e *SATExtractor) DIPs(assign PairAssign) (*DIPSet, error) {
	if e.legacy {
		return e.dipsLegacy(assign)
	}
	eng, err := e.Engine()
	if err != nil {
		return nil, err
	}
	e.count++
	e.tel.Counter("enum_extractions_total").Inc()
	out, err := NewDIPSet(e.layout.N())
	if err != nil {
		return nil, err
	}
	sp := e.tel.StartSpan("extract")
	sp.SetArg("engine", "sat-incremental")
	var seedFn func(yield func(pat uint64) bool)
	if s := e.takeSeed(); s != nil {
		s.ForEach(func(pat uint64) bool {
			out.Add(pat)
			return true
		})
		seedFn = s.ForEach
		sp.SetArg("seeded", strconv.FormatUint(s.Count(), 10))
	}
	var dup error
	enumErr := eng.EnumerateDIPsSeeded(assign.A, assign.B, seedFn, func(pat uint64) bool {
		if out.Contains(pat) {
			dup = fmt.Errorf("core: SAT enumeration returned duplicate pattern %b", pat)
			return false
		}
		out.Add(pat)
		if e.progress != nil {
			e.progress(out, false)
		}
		return true
	})
	if e.tel != nil {
		sp.SetArg("dips", strconv.FormatUint(out.Count(), 10))
	}
	sp.End()
	if dup != nil {
		return nil, dup
	}
	if enumErr != nil {
		if e.ctx != nil && e.ctx.Err() != nil {
			return out, enumErr // partially enumerated: valid up to the cancel point
		}
		return nil, enumErr
	}
	if e.progress != nil {
		e.progress(out, true)
	}
	return out, nil
}

// dipsLegacy is the pre-engine enumeration: compile (or LRU-replay) the
// fixed-key miter for this assignment into a fresh solver and enumerate
// models with permanent blocking clauses.
func (e *SATExtractor) dipsLegacy(assign PairAssign) (*DIPSet, error) {
	e.count++
	e.tel.Counter("enum_extractions_total").Inc()
	enc, err := e.compile(assign)
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	solver.EnsureVars(enc.form.NumVars)
	solver.AddFormula(enc.form)
	solver.Add(enc.diff) // only interested in disagreement witnesses
	out, err := NewDIPSet(e.layout.N())
	if err != nil {
		return nil, err
	}
	sp := e.tel.StartSpan("extract")
	sp.SetArg("engine", "sat")
	defer func() {
		if e.tel != nil {
			st := solver.Stats()
			e.tel.Counter("sat_conflicts_total").Add(st.Conflicts)
			e.tel.Counter("sat_decisions_total").Add(st.Decisions)
			e.tel.Counter("sat_propagations_total").Add(st.Propagations)
			e.tel.Counter("sat_restarts_total").Add(st.Restarts)
			e.tel.Counter("sat_solve_calls_total").Add(st.SolveCalls)
			sp.SetArg("dips", strconv.FormatUint(out.Count(), 10))
		}
		sp.End()
	}()
	blocking := make([]cnf.Lit, len(enc.block))
	if s := e.takeSeed(); s != nil {
		// Resume seed: the snapshot's patterns are re-blocked permanently
		// (this path owns a throwaway solver, so no scopes are needed) and
		// enumeration continues past them.
		s.ForEach(func(pat uint64) bool {
			for i, l := range enc.block {
				if pat&(1<<uint(i)) != 0 {
					blocking[i] = l.Neg()
				} else {
					blocking[i] = l
				}
			}
			out.Add(pat)
			solver.Add(blocking...)
			return true
		})
	}
	start := time.Now()
	for {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return out, err
			}
		}
		solver.ConflictBudget = e.sliceBudget(start, solver.Stats().Conflicts)
		st := solver.Solve()
		if st == sat.Unknown {
			continue // budget slice exhausted: recheck the context
		}
		if st == sat.Unsat {
			if e.progress != nil {
				e.progress(out, true)
			}
			return out, nil
		}
		var pat uint64
		for i, l := range enc.block {
			if solver.ModelValue(l) {
				pat |= 1 << uint(i)
				blocking[i] = l.Neg()
			} else {
				blocking[i] = l
			}
		}
		if out.Contains(pat) {
			return nil, fmt.Errorf("core: SAT enumeration returned duplicate pattern %b", pat)
		}
		out.Add(pat)
		solver.Add(blocking...)
		if e.progress != nil {
			e.progress(out, false)
		}
	}
}

// Classes implements Extractor (exact, via DIPs).
func (e *SATExtractor) Classes(assign PairAssign) (ClassSizes, error) {
	dips, err := e.DIPs(assign)
	if err != nil {
		return ClassSizes{}, err
	}
	return classSizesOf(dips), nil
}

// classSizesOf splits a DIP set by its top bit — with the packed
// representation the two classes are the two halves of the bitset, so
// the split is two popcount scans.
func classSizesOf(dips *DIPSet) ClassSizes {
	half := dips.Universe() / 2
	c1 := dips.CountRange(half, dips.Universe())
	c0 := dips.Count() - c1
	big, small := float64(c0), float64(c1)
	if big < small {
		big, small = small, big
	}
	return ClassSizes{Big: big, Small: small, Exact: true}
}

// ---------------------------------------------------------------------
// Simulation-based extractor: sharded multi-core bit-parallel exhaustive
// enumeration over the key-dependent subcircuit. Functionally identical
// to the SAT path (verified by a construction-time self-check against
// full-netlist simulation and by cross-engine tests), but fast enough
// for the paper's 64-bit-key instances, whose DIP sets reach 8.5M
// patterns over a 2^32 block space.
// ---------------------------------------------------------------------

// simOp is one gate of the compiled key-cone program. Source operands
// are register indices; the first BlockWidth registers hold the chain
// inputs and the next NumKeys hold the key bits; negative operands are
// cone side inputs held at constant 0.
type simOp struct {
	typ  netlist.GateType
	args []int
	dst  int
}

// SimExtractor enumerates DIPs by exhaustive bit-parallel simulation of
// the key-dependent cone of the locked netlist, with all other cone side
// inputs held constant. Constructing one runs a randomized self-check
// that the cone's disagreement signal matches full-netlist disagreement.
//
// Enumeration is sharded across worker goroutines: the 2^n pattern space
// is partitioned into contiguous word-aligned shards, one worker per
// shard. Each worker evaluates a private clone of the compiled program
// (the register file is mutated per batch and is not concurrency-safe;
// clones are recycled through a sync.Pool) and deposits its 64-pattern
// disagreement masks into the word range of the result bitset it alone
// owns, so the merge is free and the result is bit-identical for every
// worker count.
type SimExtractor struct {
	layout    *BlockLayout
	n         int
	nKeys     int
	ops       []simOp
	outRegs   []int
	regs      int // register count of the compiled cone (excluding copies)
	count     int
	workers   int                 // 0 = GOMAXPROCS
	laneWords int                 // words per batch group: 0 = auto (8), 1/4/8 = 64/256/512 lanes
	ctx       context.Context     // nil = never cancelled
	tel       *telemetry.Registry // nil = uninstrumented
	bus       *events.Bus         // nil = no lifecycle events

	progress func(set *DIPSet, complete bool) // checkpoint hook; nil = disabled
}

// SetEvents attaches a lifecycle event bus: the sharded walk publishes
// throttled dip_progress events carrying batches-walked / total-batches
// — the exact enumerated fraction of the block universe. Nil disables
// publishing; the per-batch cost with a bus attached is one local
// increment, flushed into a shared atomic every simEventStride batches.
func (e *SimExtractor) SetEvents(b *events.Bus) { e.bus = b }

// SetProgress installs a checkpoint hook. The sharded walk deposits
// words concurrently, so the hook fires only at enumeration completion
// (with complete=true): a complete exhaustive set is the only state a
// snapshot can restore without racing the shard workers, and the walk
// itself is pure recomputation — nothing irreplaceable is lost by not
// checkpointing mid-walk.
func (e *SimExtractor) SetProgress(fn func(set *DIPSet, complete bool)) { e.progress = fn }

// NewSimExtractor compiles the key cone of the locked circuit and
// self-checks it against full-netlist simulation on random patterns.
func NewSimExtractor(locked *netlist.Circuit, layout *BlockLayout, seed int64) (*SimExtractor, error) {
	if err := layout.Validate(locked); err != nil {
		return nil, err
	}
	n := layout.N()
	if n > maxDenseBits {
		return nil, fmt.Errorf("%w: %d chain inputs beyond exhaustive enumeration", ErrBlockWidth, n)
	}
	mask := locked.TransitiveFanout(locked.Keys()...)
	order, err := locked.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &SimExtractor{layout: layout, n: n, nKeys: locked.NumKeys()}
	reg := make([]int, locked.NumGates())
	for i := range reg {
		reg[i] = -1
	}
	// Registers 0..n-1: chain inputs; n..n+nKeys-1: keys; then temps.
	for i, pos := range layout.InputPos {
		reg[locked.Inputs()[pos]] = i
	}
	for i, id := range locked.Keys() {
		reg[id] = n + i
	}
	next := n + e.nKeys
	for _, id := range order {
		if !mask[id] {
			continue
		}
		g := locked.Gate(id)
		if g.Type == netlist.Input {
			continue // key inputs already assigned registers
		}
		args := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			if mask[f] {
				args[i] = reg[f]
			} else if r := reg[f]; r >= 0 {
				args[i] = r // a chain input feeding the cone directly
			} else {
				args[i] = -1 // side input held at 0
			}
		}
		reg[id] = next
		e.ops = append(e.ops, simOp{typ: g.Type, args: args, dst: next})
		next++
	}
	e.regs = next
	for _, o := range locked.Outputs() {
		if mask[o] {
			e.outRegs = append(e.outRegs, reg[o])
		}
	}
	if len(e.outRegs) == 0 {
		return nil, fmt.Errorf("core: no output depends on the key inputs")
	}
	if err := e.selfCheck(locked, seed); err != nil {
		return nil, err
	}
	return e, nil
}

// BlockWidth implements Extractor.
func (e *SimExtractor) BlockWidth() int { return e.n }

// Extractions implements Extractor.
func (e *SimExtractor) Extractions() int { return e.count }

// SetWorkers sets the number of shard workers used per enumeration.
// 0 (the default) resolves to GOMAXPROCS at enumeration time; 1 forces
// the single-goroutine path. The result is bit-identical regardless of
// the worker count.
func (e *SimExtractor) SetWorkers(k int) { e.workers = k }

// SetLaneWidth pins the bit-parallel lane width of subsequent
// enumerations: 64 (one word per batch), 256, or 512 (stride-4/8
// register banks executing 4/8 batches per program pass). 0 — the
// default — auto-selects the widest kernel (512). The result is
// bit-identical for every width.
func (e *SimExtractor) SetLaneWidth(lanes int) error {
	switch lanes {
	case 0:
		e.laneWords = 0
	case 64:
		e.laneWords = 1
	case 256:
		e.laneWords = 4
	case 512:
		e.laneWords = 8
	default:
		return fmt.Errorf("core: lane width %d not one of 0 (auto), 64, 256, 512", lanes)
	}
	return nil
}

// LaneWidth reports the configured lane width in bit-parallel patterns
// (0 = auto, currently 512).
func (e *SimExtractor) LaneWidth() int {
	if e.laneWords == 0 {
		return 0
	}
	return e.laneWords * 64
}

// resolveLaneWords maps the configured lane width to words per group.
func (e *SimExtractor) resolveLaneWords() int {
	if e.laneWords == 0 {
		return 8
	}
	return e.laneWords
}

// Workers reports the configured worker count (0 = GOMAXPROCS).
func (e *SimExtractor) Workers() int { return e.workers }

// SetContext bounds subsequent enumerations: shard workers poll the
// context between batch blocks and stop early when it expires, after
// which DIPs/Classes return the context's error (DIPs alongside the
// partially filled set).
func (e *SimExtractor) SetContext(ctx context.Context) { e.ctx = ctx }

// SetTelemetry attaches a metrics registry: each enumeration traces as
// an "extract" span with one child span per shard worker (on trace
// lanes 1..w, so Perfetto renders the parallelism), and per-shard batch
// counts and wall times land in enum_shard_* metrics. Nil (the default)
// disables instrumentation; the 64-pattern batch hot loop is never
// touched either way — shard accounting happens once per shard, outside
// it.
func (e *SimExtractor) SetTelemetry(r *telemetry.Registry) { e.tel = r }

// minBatchesPerWorker keeps tiny enumerations on one goroutine: below
// this many 64-pattern batches per shard the spawn overhead dominates.
const minBatchesPerWorker = 256

// shardPlan resolves the effective worker count for nBatches batches.
func (e *SimExtractor) shardPlan(nBatches uint64) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := nBatches / minBatchesPerWorker; uint64(w) > max {
		w = int(max)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// prepared is a per-assignment compiled program: registers carry the key
// constants of copy A (and, for keys whose two copies differ, a second
// register with copy B's value); gates untouched by differing keys are
// evaluated once and shared, the rest are duplicated. The instruction
// stream is a netlist.Program, so the same compiled assignment executes
// at 64, 256, or 512 lanes (see enumerateShard).
//
// prog and outs are immutable after prepare; regs (and the lazily built
// wide bank) are the mutable register files the hot loop writes, so a
// prepared program serves ONE goroutine — shard workers run on clones
// (see clone).
type prepared struct {
	n     int
	width int // words per batch group (1, 4, or 8)
	prog  *netlist.Program
	regs  []uint64   // width-1 template: key constants baked in, inputs written per batch
	outs  [][2]int32 // (A,B) register pairs whose XOR is the disagreement
	wide  []uint64   // stride-`width` bank, materialized from regs on first wide use
}

// clone returns a copy with a private register bank; the compiled
// program and output pairs are shared read-only.
func (p *prepared) clone() *prepared {
	q := *p
	q.regs = append([]uint64(nil), p.regs...)
	q.wide = nil
	return &q
}

// bank returns the stride-`width` register bank, replicating the
// width-1 template (key constants, zero register) into every word slot
// on first use. Chain-input registers are overwritten per group by the
// enumeration loop.
func (p *prepared) bank() []uint64 {
	if p.wide == nil {
		w := p.width
		p.wide = make([]uint64, len(p.regs)*w)
		for r, v := range p.regs {
			if v == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				p.wide[r*w+j] = v
			}
		}
	}
	return p.wide
}

// prepare compiles the cone for one key-pair assignment.
func (e *SimExtractor) prepare(assign PairAssign) (*prepared, error) {
	if err := e.checkAssign(assign); err != nil {
		return nil, err
	}
	zero := int32(e.regs) // dedicated always-0 register
	next := e.regs + 1
	bReg := make([]int32, e.regs)
	dyn := make([]bool, e.regs)
	for i := range bReg {
		bReg[i] = int32(i)
	}
	type kv struct {
		reg int32
		val bool
	}
	var keyVals []kv
	for i := 0; i < e.nKeys; i++ {
		r := e.n + i
		keyVals = append(keyVals, kv{int32(r), assign.A[i]})
		if assign.A[i] != assign.B[i] {
			dyn[r] = true
			bReg[r] = int32(next)
			next++
			keyVals = append(keyVals, kv{bReg[r], assign.B[i]})
		}
	}
	p := &prepared{n: e.n, width: e.resolveLaneWords(), prog: netlist.NewProgram(0)}
	for _, op := range e.ops {
		isDyn := false
		argsA := make([]int32, len(op.args))
		for i, a := range op.args {
			if a < 0 {
				argsA[i] = zero
				continue
			}
			argsA[i] = int32(a)
			if dyn[a] {
				isDyn = true
			}
		}
		if err := p.prog.Emit(op.typ, int32(op.dst), argsA); err != nil {
			return nil, err
		}
		if isDyn {
			dyn[op.dst] = true
			bReg[op.dst] = int32(next)
			next++
			argsB := make([]int32, len(op.args))
			for i, a := range op.args {
				if a < 0 {
					argsB[i] = zero
				} else {
					argsB[i] = bReg[a]
				}
			}
			if err := p.prog.Emit(op.typ, bReg[op.dst], argsB); err != nil {
				return nil, err
			}
		}
	}
	p.regs = make([]uint64, next)
	for _, k := range keyVals {
		if k.val {
			p.regs[k.reg] = ^uint64(0)
		}
	}
	for _, r := range e.outRegs {
		if dyn[r] {
			p.outs = append(p.outs, [2]int32{int32(r), bReg[r]})
		}
	}
	return p, nil
}

// diff evaluates 64 packed block patterns and returns the per-lane
// disagreement mask: the width-1 execution of the compiled program,
// used by the sampling/self-check paths and the wide loop's tail.
func (p *prepared) diff(block []uint64) uint64 {
	regs := p.regs
	copy(regs[:p.n], block)
	p.prog.Exec(regs)
	var d uint64
	for _, o := range p.outs {
		d |= regs[o[0]] ^ regs[o[1]]
	}
	return d
}

// laneMask returns the valid-lane mask of one 64-pattern batch: all-ones
// except for n < 6 blocks, whose single batch has only 2^n live lanes.
func (p *prepared) laneMask() uint64 {
	if p.n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (uint64(1) << uint(p.n))) - 1
}

// numBatches returns the number of 64-pattern batches covering the
// block space.
func (p *prepared) numBatches() uint64 {
	if p.n <= 6 {
		return 1
	}
	return uint64(1) << uint(p.n-6)
}

// ctxPollMask controls how often shard workers poll for cancellation:
// every (ctxPollMask+1) batches, i.e. every 16K patterns — frequent
// enough that a 1ms deadline lands in well under a millisecond of
// overshoot per worker, rare enough that the check is free.
const ctxPollMask = 255

// enumerateShard walks batches [startB, endB) of the block space,
// invoking visit with a starting batch index b and the (lane-masked)
// disagreement masks of the batches b, b+1, …, b+len(diffs)-1 — batch b
// covers patterns [b·64, b·64+64). With a wide lane width the main loop
// executes the compiled program once per 4/8-batch group over a strided
// register bank, so visit receives word-aligned runs ready for direct
// bitset deposit; the remainder (and every width-64 walk) runs the
// scalar kernel one batch at a time. A non-nil ctx is polled every
// ctxPollMask+1 batches; on expiry the walk stops early and the
// context's error is returned. Callers running shards concurrently must
// give each shard its own prepared clone.
func (p *prepared) enumerateShard(ctx context.Context, startB, endB uint64, visit func(b uint64, diffs []uint64)) error {
	n := p.n
	b := startB
	if w := uint64(p.width); w > 1 && n > 6 && b+w <= endB {
		bank := p.bank()
		W := p.width
		for i := 0; i < 6; i++ {
			pat := lanePattern(i)
			for j := 0; j < W; j++ {
				bank[i*W+j] = pat
			}
		}
		diffs := make([]uint64, W)
		for ; b+w <= endB; b += w {
			if ctx != nil && b&ctxPollMask < w {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			for i := 6; i < n; i++ {
				bit := uint64(1) << uint(i-6)
				row := bank[i*W : i*W+W]
				for j := range row {
					if (b+uint64(j))&bit != 0 {
						row[j] = ^uint64(0)
					} else {
						row[j] = 0
					}
				}
			}
			if W == 8 {
				p.prog.Exec512(bank)
			} else {
				p.prog.Exec256(bank)
			}
			for j := range diffs {
				diffs[j] = 0
			}
			for _, o := range p.outs {
				oa := bank[int(o[0])*W : int(o[0])*W+W]
				ob := bank[int(o[1])*W : int(o[1])*W+W]
				for j := 0; j < W; j++ {
					diffs[j] |= oa[j] ^ ob[j]
				}
			}
			visit(b, diffs)
		}
	}
	// Scalar kernel: width-64 walks, n ≤ 6 single-batch spaces, and the
	// tail of a wide walk.
	mask := p.laneMask()
	block := make([]uint64, n)
	for i := 0; i < n && i < 6; i++ {
		block[i] = lanePattern(i)
	}
	var one [1]uint64
	for ; b < endB; b++ {
		if ctx != nil && b&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		base := b << 6
		for i := 6; i < n; i++ {
			if base&(1<<uint(i)) != 0 {
				block[i] = ^uint64(0)
			} else {
				block[i] = 0
			}
		}
		one[0] = p.diff(block) & mask
		visit(b, one[:])
	}
	return nil
}

// shardBounds partitions [0, nBatches) into w contiguous ranges.
func shardBounds(nBatches uint64, w int) []uint64 {
	bounds := make([]uint64, w+1)
	for i := 0; i <= w; i++ {
		bounds[i] = nBatches * uint64(i) / uint64(w)
	}
	return bounds
}

// runSharded executes fn(worker, startB, endB, clone) for every shard on
// its own goroutine, each with a private prepared clone drawn from a
// sync.Pool. The template is only ever a clone source here — handing it
// to a worker too would let one goroutine mutate its register bank while
// another clones it. The single-shard case runs inline on the template.
func runSharded(tpl *prepared, nBatches uint64, w int, fn func(shard int, startB, endB uint64, pr *prepared)) {
	if w <= 1 {
		fn(0, 0, nBatches, tpl)
		return
	}
	pool := sync.Pool{New: func() any { return tpl.clone() }}
	bounds := shardBounds(nBatches, w)
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		if bounds[s] == bounds[s+1] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			pr := pool.Get().(*prepared)
			fn(s, bounds[s], bounds[s+1], pr)
			pool.Put(pr)
		}(s)
	}
	wg.Wait()
}

// lanePattern gives input i (i < 6) its within-word enumeration pattern:
// lane l carries pattern base+l, so bit i of (base+l) is bit i of l.
func lanePattern(i int) uint64 {
	switch i {
	case 0:
		return 0xAAAAAAAAAAAAAAAA
	case 1:
		return 0xCCCCCCCCCCCCCCCC
	case 2:
		return 0xF0F0F0F0F0F0F0F0
	case 3:
		return 0xFF00FF00FF00FF00
	case 4:
		return 0xFFFF0000FFFF0000
	case 5:
		return 0xFFFFFFFF00000000
	}
	panic("lanePattern: index out of range")
}

// DIPs implements Extractor: the sharded exhaustive walk. Every shard
// deposits its disagreement masks directly into the word range of the
// result bitset it owns — per-batch word indices are disjoint across
// shards, so the workers are lock-free and the "merge" is the identity.
func (e *SimExtractor) DIPs(assign PairAssign) (*DIPSet, error) {
	p, err := e.prepare(assign)
	if err != nil {
		return nil, err
	}
	e.count++
	out, err := NewDIPSet(e.n)
	if err != nil {
		return nil, err
	}
	nBatches := p.numBatches()
	w := e.shardPlan(nBatches)
	var sp *telemetry.Span
	if e.tel != nil {
		e.tel.Counter("enum_extractions_total").Inc()
		e.tel.Gauge("enum_workers").Set(int64(w))
		sp = e.tel.StartSpan("extract")
		sp.SetArg("engine", "sim")
		sp.SetArg("workers", strconv.Itoa(w))
	}
	bus := e.bus
	var batchesDone atomic.Uint64
	runSharded(p, nBatches, w, func(shard int, startB, endB uint64, pr *prepared) {
		ssp := sp.ChildLane("shard", shard+1)
		var local uint64
		pr.enumerateShard(e.ctx, startB, endB, func(b uint64, diffs []uint64) {
			out.setWords(b, diffs)
			if bus != nil {
				if local++; local >= simEventStride {
					done := batchesDone.Add(local)
					local = 0
					bus.Publish(events.Event{Type: events.TypeDIPProgress,
						Phase: "enumerate", Done: done, Total: nBatches})
				}
			}
		})
		if e.tel != nil {
			ssp.SetArg("shard", strconv.Itoa(shard))
			ssp.SetArg("batches", strconv.FormatUint(endB-startB, 10))
			e.tel.Counter(telemetry.Label("enum_shard_batches_total",
				"shard", strconv.Itoa(shard))).Add(endB - startB)
			e.tel.Histogram("enum_shard_seconds", telemetry.DurationBuckets).
				ObserveDuration(ssp.End())
		}
	})
	if sp != nil {
		sp.SetArg("dips", strconv.FormatUint(out.Count(), 10))
		sp.End()
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return out, err // partially enumerated: words up to the cancel point
		}
	}
	if e.progress != nil {
		e.progress(out, true)
	}
	return out, nil
}

// exactClassBits is the largest block width for which Classes is exact;
// wider blocks are sampled.
const exactClassBits = 26

// sampleBatches is the number of random 64-pattern batches used when
// sampling class sizes.
const sampleBatches = 1 << 14

// Classes implements Extractor: exact for small blocks, sampled above
// exactClassBits. Both paths are sharded across workers, and both
// accumulate integer counts per shard before converting, so the result
// is bit-identical for every worker count.
func (e *SimExtractor) Classes(assign PairAssign) (ClassSizes, error) {
	p, err := e.prepare(assign)
	if err != nil {
		return ClassSizes{}, err
	}
	e.count++
	e.tel.Counter("enum_extractions_total").Inc()
	if e.n <= exactClassBits {
		return e.classesExact(p)
	}
	return e.classesSampled(p)
}

// classesExact walks the whole block space, counting the two top-bit
// classes per shard.
func (e *SimExtractor) classesExact(p *prepared) (ClassSizes, error) {
	top := uint64(1) << uint(e.n-1)
	var topMaskInWord uint64 // for n ≤ 6 the top bit varies within a word
	if e.n <= 6 {
		topMaskInWord = lanePattern(e.n - 1)
	}
	nBatches := p.numBatches()
	w := e.shardPlan(nBatches)
	counts := make([][2]uint64, w) // per-shard accumulators: no sharing, no locks
	topB := top >> 6               // batch-index form of the top bit for n > 6
	runSharded(p, nBatches, w, func(shard int, startB, endB uint64, pr *prepared) {
		var c0, c1 uint64
		pr.enumerateShard(e.ctx, startB, endB, func(b uint64, diffs []uint64) {
			if e.n <= 6 {
				c1 += uint64(popcount64(diffs[0] & topMaskInWord))
				c0 += uint64(popcount64(diffs[0] &^ topMaskInWord))
				return
			}
			for j, d := range diffs {
				if (b+uint64(j))&topB != 0 {
					c1 += uint64(popcount64(d))
				} else {
					c0 += uint64(popcount64(d))
				}
			}
		})
		counts[shard] = [2]uint64{c0, c1}
	})
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return ClassSizes{}, err
		}
	}
	var c0, c1 uint64
	for _, c := range counts {
		c0 += c[0]
		c1 += c[1]
	}
	if c0 < c1 {
		c0, c1 = c1, c0
	}
	return ClassSizes{Big: float64(c0), Small: float64(c1), Exact: true}, nil
}

// classesSampled estimates the class sizes from random batches, scaled
// to the full space. Each batch's patterns derive from a splitmix64
// stream seeded by (extraction count, batch index), so the estimate does
// not depend on how batches are distributed over workers.
func (e *SimExtractor) classesSampled(p *prepared) (ClassSizes, error) {
	seedBase := uint64(e.count) * 0x9e3779b97f4a7c15
	w := e.shardPlan(sampleBatches)
	counts := make([][2]uint64, w)
	runSharded(p, sampleBatches, w, func(shard int, startB, endB uint64, pr *prepared) {
		var c0, c1 uint64
		block := make([]uint64, e.n)
		for b := startB; b < endB; b++ {
			if e.ctx != nil && b&ctxPollMask == 0 && e.ctx.Err() != nil {
				break
			}
			state := seedBase ^ (b+1)*0xbf58476d1ce4e5b9
			for i := range block {
				block[i] = splitmix64(&state)
			}
			diff := pr.diff(block)
			topMask := block[e.n-1]
			c1 += uint64(popcount64(diff & topMask))
			c0 += uint64(popcount64(diff &^ topMask))
		}
		counts[shard] = [2]uint64{c0, c1}
	})
	var c0, c1 uint64
	for _, c := range counts {
		c0 += c[0]
		c1 += c[1]
	}
	scale := float64(uint64(1)<<uint(e.n)) / float64(sampleBatches*64)
	b, s := float64(c0)*scale, float64(c1)*scale
	if b < s {
		b, s = s, b
	}
	return ClassSizes{Big: b, Small: s, Exact: false}, nil
}

// splitmix64 advances the state and returns the next output of the
// SplitMix64 stream — a tiny, seedable, allocation-free generator for
// the sampling path.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (e *SimExtractor) checkAssign(assign PairAssign) error {
	if len(assign.A) != e.nKeys || len(assign.B) != e.nKeys {
		return fmt.Errorf("core: key assignment lengths %d/%d, circuit has %d keys",
			len(assign.A), len(assign.B), e.nKeys)
	}
	return nil
}

// selfCheck verifies cone disagreement equals full-netlist disagreement
// on random patterns under a few representative key assignments, which
// certifies that holding cone side inputs at 0 is sound for this netlist
// (true whenever the flip is injected through XORs).
func (e *SimExtractor) selfCheck(locked *netlist.Circuit, seed int64) error {
	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	nk := e.nKeys
	assigns := make([]PairAssign, 0, 3)
	mk := func(f func(i int) (bool, bool)) PairAssign {
		a := PairAssign{A: make([]bool, nk), B: make([]bool, nk)}
		for i := 0; i < nk; i++ {
			a.A[i], a.B[i] = f(i)
		}
		return a
	}
	assigns = append(assigns,
		mk(func(i int) (bool, bool) { return i%2 == 0, false }),
		mk(func(i int) (bool, bool) { return rng.Intn(2) == 1, rng.Intn(2) == 1 }),
		mk(func(i int) (bool, bool) { return true, i%3 == 0 }),
	)
	in := make([]uint64, locked.NumInputs())
	block := make([]uint64, e.n)
	keyA := make([]uint64, nk)
	keyB := make([]uint64, nk)
	for _, assign := range assigns {
		p, err := e.prepare(assign)
		if err != nil {
			return err
		}
		for i := 0; i < nk; i++ {
			keyA[i], keyB[i] = 0, 0
			if assign.A[i] {
				keyA[i] = ^uint64(0)
			}
			if assign.B[i] {
				keyB[i] = ^uint64(0)
			}
		}
		for round := 0; round < 4; round++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			for i, pos := range e.layout.InputPos {
				block[i] = in[pos]
			}
			outA, err := sim.Run64(in, keyA)
			if err != nil {
				return err
			}
			outACopy := append([]uint64(nil), outA...)
			outB, err := sim.Run64(in, keyB)
			if err != nil {
				return err
			}
			var fullDiff uint64
			for i := range outB {
				fullDiff |= outACopy[i] ^ outB[i]
			}
			if p.diff(block) != fullDiff {
				return fmt.Errorf("core: key-cone extraction unsound for this netlist (side inputs are not transparent)")
			}
		}
	}
	return nil
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func popcount64(x uint64) int { return bits.OnesCount64(x) }
