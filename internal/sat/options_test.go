package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// TestZeroOptionsMatchesNew verifies NewWithOptions(Options{}) is
// behaviorally identical to New(): same answers AND same work counters
// on a batch of random formulas (any heuristic divergence would show up
// in decisions/conflicts).
func TestZeroOptionsMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		vars := 5 + rng.Intn(10)
		f := randomFormula(rng, vars, 3+rng.Intn(vars*5), 3)
		a := New()
		a.AddFormula(f)
		b := NewWithOptions(Options{})
		b.AddFormula(f)
		stA, stB := a.Solve(), b.Solve()
		if stA != stB {
			t.Fatalf("trial %d: New=%v NewWithOptions(zero)=%v", trial, stA, stB)
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("trial %d: stats diverge: %+v vs %+v", trial, a.Stats(), b.Stats())
		}
	}
}

// TestDiversifiedConfigsAgree checks that every diversification knob
// preserves answers against the DPLL reference.
func TestDiversifiedConfigsAgree(t *testing.T) {
	configs := []Options{
		{VSIDSDecay: 0.85},
		{RestartStrategy: RestartGeometric},
		{PolaritySeed: 0xfeed},
		{OrderSeed: 0xbeef},
		{VSIDSDecay: 0.99, RestartStrategy: RestartGeometric, PolaritySeed: 7, OrderSeed: 9},
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		vars := 4 + rng.Intn(10)
		f := randomFormula(rng, vars, 2+rng.Intn(vars*5), 3)
		want, _ := SolveDPLL(f)
		for ci, o := range configs {
			s := NewWithOptions(o)
			s.AddFormula(f)
			got := s.Solve()
			if got != want {
				t.Fatalf("trial %d config %d: got %v want %v\n%s", trial, ci, got, want, f.DIMACSString())
			}
			if got == Sat {
				ok, err := f.Eval(s.Model())
				if err != nil || !ok {
					t.Fatalf("trial %d config %d: invalid model (err=%v)", trial, ci, err)
				}
			}
		}
	}
}

func TestGeometricBudget(t *testing.T) {
	if got := geometricBudget(0); got != 100 {
		t.Fatalf("geometricBudget(0) = %d, want 100", got)
	}
	if got := geometricBudget(2); got != 225 {
		t.Fatalf("geometricBudget(2) = %d, want 225", got)
	}
	if got := geometricBudget(1000); got != 1<<20 {
		t.Fatalf("geometricBudget(1000) = %d, want %d (cap)", got, 1<<20)
	}
	last := uint64(0)
	for r := uint64(0); r < 40; r++ {
		b := geometricBudget(r)
		if b < last {
			t.Fatalf("geometricBudget not monotone at %d: %d < %d", r, b, last)
		}
		last = b
	}
}

// TestInterruptAborts proves an interrupt stops a hard solve with
// Unknown and leaves the solver reusable.
func TestInterruptAborts(t *testing.T) {
	s := NewFromFormula(pigeonhole(8, 7))
	fired := false
	s.SetInterrupt(func() bool { fired = true; return true })
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted solve = %v, want Unknown", st)
	}
	if !fired {
		t.Fatal("interrupt was never polled")
	}
	s.SetInterrupt(nil)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("resumed solve = %v, want Unsat", st)
	}
}

// TestLearntHookFilter verifies the export filter: every exported clause
// respects the length and variable bounds, and exported clauses are
// sound (implied by the formula: adding them to a fresh solver cannot
// change any answer under any assumption set).
func TestLearntHookFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		vars := 6 + rng.Intn(8)
		f := randomFormula(rng, vars, 4+rng.Intn(vars*5), 3)
		maxVar, maxLen := vars/2, 4
		var exported [][]cnf.Lit
		s := New()
		s.SetLearntHook(maxVar, maxLen, func(cl []cnf.Lit) {
			exported = append(exported, cl)
		})
		s.AddFormula(f)
		s.Solve()
		for _, cl := range exported {
			if len(cl) > maxLen {
				t.Fatalf("exported clause too long: %v", cl)
			}
			for _, l := range cl {
				if l.Var() > maxVar {
					t.Fatalf("exported clause crosses var bound %d: %v", maxVar, cl)
				}
			}
		}
		// Soundness: an importer with the same formula plus every
		// exported clause must agree with DPLL on the original formula.
		want, _ := SolveDPLL(f)
		imp := New()
		imp.AddFormula(f)
		for _, cl := range exported {
			imp.ImportClause(cl...)
		}
		if got := imp.Solve(); got != want {
			t.Fatalf("trial %d: importer=%v DPLL=%v after %d imports", trial, got, want, len(exported))
		}
		if len(exported) > 0 && imp.Stats().Imported != uint64(len(exported)) {
			t.Fatalf("Imported stat = %d, want %d", imp.Stats().Imported, len(exported))
		}
	}
}

// TestLearntHookExcludesBlockingScopes proves the variable-range filter
// keeps activation-guarded clauses private: every clause learnt while a
// blocking scope is active either mentions the activation variable
// (blocked by the filter) or is implied by the pre-scope formula alone.
func TestLearntHookExcludesBlockingScopes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		vars := 6 + rng.Intn(6)
		f := randomFormula(rng, vars, 4+rng.Intn(vars*4), 3)
		s := New()
		s.AddFormula(f)
		shared := s.NumVars() // the "shared prefix": everything before blocking vars
		var exported [][]cnf.Lit
		s.SetLearntHook(shared, 8, func(cl []cnf.Lit) { exported = append(exported, cl) })
		act := s.BlockingLit()
		// Push random blocking clauses, then solve under the scope.
		for i := 0; i < 5; i++ {
			a := cnf.Lit(1 + rng.Intn(vars))
			b := cnf.Lit(1 + rng.Intn(vars))
			if rng.Intn(2) == 0 {
				a = -a
			}
			if rng.Intn(2) == 0 {
				b = -b
			}
			s.PushBlocking(a, b)
		}
		s.Solve(act)
		want, _ := SolveDPLL(f)
		imp := New()
		imp.AddFormula(f)
		for _, cl := range exported {
			for _, l := range cl {
				if l.Var() > shared {
					t.Fatalf("exported clause leaks scope var: %v (shared=%d)", cl, shared)
				}
			}
			imp.ImportClause(cl...)
		}
		if got := imp.Solve(); got != want {
			t.Fatalf("trial %d: shared-clause import changed answer: importer=%v DPLL=%v", trial, got, want)
		}
	}
}
