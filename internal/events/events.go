// Package events is the live-observability substrate of the attack
// pipeline: a race-safe, backpressure-tolerant structured event bus.
//
// Producers in core, engine, and checkpoint publish typed lifecycle
// events (phase enter/exit, DIP progress with running counts, crossover
// decisions, checkpoint writes, oracle batches, budgeter slices, resume
// replays). The bus fans each event out to bounded per-subscriber ring
// buffers that drop their oldest entries — with an events_dropped_total
// counter — rather than ever blocking the publisher: the enumeration
// hot path must not stall because an SSE client stopped reading.
//
// Every event carries a monotonically increasing sequence number, and
// the bus retains a fixed-size history ring so a reconnecting consumer
// (SSE Last-Event-ID) can replay what it missed, as long as the gap
// still fits in the ring. Like the telemetry package, a nil *Bus is a
// valid no-op publisher, so instrumented code pays one nil check when
// observability is disabled.
package events

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Type enumerates the event taxonomy. The strings are the wire format
// (SSE event: field, NDJSON "type" field) and must stay stable.
type Type string

const (
	// TypePhaseEnter / TypePhaseExit bracket an attack phase. Exit
	// carries the phase duration in Fields["seconds"].
	TypePhaseEnter Type = "phase_enter"
	TypePhaseExit  Type = "phase_exit"
	// TypeDIPProgress reports enumeration progress: Count is the
	// running DIP total; Done/Total, when nonzero, are enumerated
	// units of the DIP space (patterns or sim batches).
	TypeDIPProgress Type = "dip_progress"
	// TypeCrossover records a SAT/sim crossover decision with the
	// probe evidence in Fields.
	TypeCrossover Type = "crossover"
	// TypeCheckpoint marks a durable checkpoint write; Count is the
	// writer's cumulative write total.
	TypeCheckpoint Type = "checkpoint"
	// TypeOracleBatch reports oracle consumption; Count is the
	// cumulative query total.
	TypeOracleBatch Type = "oracle_batch"
	// TypeBudgetSlice fires when a budgeted Solve slice expires
	// without a verdict; Fields carry the grant and the EWMA rate.
	TypeBudgetSlice Type = "budget_slice"
	// TypeResume records a checkpoint resume: banked oracle rows and
	// replayed DIPs, before any fresh work.
	TypeResume Type = "resume"
	// TypeDistinguish reports a distinguish verdict that is not a
	// proof: Fields["reason"] is "unknown_budget" when the conflict
	// budget ran out (the caller will treat the pair as equivalent
	// without one), and "disagreement" when portfolio members returned
	// conflicting definitive answers (a soundness alarm).
	TypeDistinguish Type = "distinguish"
	// TypeProgress is the estimator's digest: Fraction, Phase, and
	// ETAMillis are authoritative on this event type.
	TypeProgress Type = "progress"
	// TypeDone is terminal. Publishers close the attack's stream with
	// exactly one done event; Fields["status"] says how it ended.
	TypeDone Type = "done"
)

// Event is one bus record. The zero value of every optional field is
// omitted on the wire, so a marshaled event stays close to its
// information content.
type Event struct {
	// Seq is assigned by the bus at publish: 1, 2, 3, … per bus.
	Seq uint64 `json:"seq"`
	// TS is the publish wall-clock in Unix milliseconds.
	TS int64 `json:"ts_ms"`
	// Type tags the record; see the Type constants.
	Type Type `json:"type"`
	// Phase names the attack phase the event belongs to, when one is
	// in scope (enumerate, decode, algo1, algo2, verify, calibrate).
	Phase string `json:"phase,omitempty"`
	// Count is a running total whose meaning depends on Type: DIPs
	// for dip_progress, queries for oracle_batch, writes for
	// checkpoint.
	Count uint64 `json:"count,omitempty"`
	// Done/Total, when Total > 0, express enumerated units of a known
	// universe (sim batches walked, patterns visited).
	Done  uint64 `json:"done,omitempty"`
	Total uint64 `json:"total,omitempty"`
	// Fraction and ETAMillis are set on progress events only.
	Fraction  float64 `json:"fraction,omitempty"`
	ETAMillis int64   `json:"eta_ms,omitempty"`
	// Fields carries small type-specific strings (engine, reason,
	// status, …). Values must be short: events are copied per
	// subscriber.
	Fields map[string]string `json:"fields,omitempty"`
}

// MarshalNDJSON renders the event as one JSON line (no trailing
// newline). It never fails for events built from the constants above.
func (e Event) MarshalNDJSON() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// Fields is map[string]string and everything else is a scalar;
		// an error here is a programming bug, not an input condition.
		panic(fmt.Sprintf("events: marshal: %v", err))
	}
	return b
}

// Default ring capacities. The history ring bounds how far back a
// Last-Event-ID resume can reach; the subscriber ring bounds how far a
// slow reader may lag before losing its oldest events.
const (
	DefaultHistory    = 1024
	DefaultSubscriber = 256
)

// Bus fans published events out to subscribers. All methods are safe
// for concurrent use, and all are no-ops on a nil receiver.
type Bus struct {
	mu      sync.Mutex
	seq     uint64
	hist    ring
	subs    map[*Subscription]struct{}
	closed  bool
	subCap  int
	dropped *telemetry.Counter // nil-safe; events_dropped_total
	now     func() time.Time   // injected for tests
}

// Options configures a Bus. The zero value selects the defaults.
type Options struct {
	// History is the replay ring capacity (DefaultHistory if <= 0).
	History int
	// Subscriber is the per-subscriber ring capacity
	// (DefaultSubscriber if <= 0).
	Subscriber int
	// Telemetry, when non-nil, hosts the events_dropped_total counter
	// that tallies ring evictions across all subscribers.
	Telemetry *telemetry.Registry
}

// New returns a Bus with the given options.
func New(opts Options) *Bus {
	h := opts.History
	if h <= 0 {
		h = DefaultHistory
	}
	s := opts.Subscriber
	if s <= 0 {
		s = DefaultSubscriber
	}
	return &Bus{
		hist:    newRing(h),
		subs:    make(map[*Subscription]struct{}),
		subCap:  s,
		dropped: opts.Telemetry.Counter("events_dropped_total"),
		now:     time.Now,
	}
}

// Publish stamps ev with the next sequence number and the current time,
// records it in the history ring, and offers it to every subscriber.
// It never blocks: a subscriber whose ring is full loses its oldest
// event instead. Publishing on a nil or closed bus is a no-op.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	if ev.TS == 0 {
		ev.TS = b.now().UnixMilli()
	}
	b.hist.push(ev)
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		if s.offer(ev) {
			b.dropped.Add(1)
		}
	}
}

// Subscribe registers a consumer. Events already in the history ring
// with Seq > after are replayed into the subscription first (subject to
// the subscription's own capacity), then live events follow. after = 0
// replays the whole retained history. On a closed bus the subscription
// is returned pre-closed with the matching history replayed, so a late
// consumer still observes the retained tail and then sees the end of
// the stream.
func (b *Bus) Subscribe(after uint64) *Subscription {
	if b == nil {
		s := newSubscription(nil, 1)
		s.Close()
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := newSubscription(b, b.subCap)
	for _, ev := range b.hist.since(after) {
		if s.offer(ev) {
			b.dropped.Add(1)
		}
	}
	if b.closed {
		s.markClosed()
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// History returns the retained events with Seq > after, oldest first.
// It is how non-streaming consumers (sealed jobs, tests) read the tail.
func (b *Bus) History(after uint64) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hist.since(after)
}

// LastSeq returns the sequence number of the most recent publish.
func (b *Bus) LastSeq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close marks the end of the stream: every subscription is closed (its
// readers drain what is buffered, then see ok=false) and later
// publishes are dropped. History remains readable. Close is idempotent.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscription]struct{})
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscription is one consumer's bounded view of the stream. Reads and
// the bus's writes may race freely; the ring drops oldest on overflow.
type Subscription struct {
	bus *Bus

	mu     sync.Mutex
	buf    ring
	drops  uint64
	closed bool
	notify chan struct{} // 1-buffered wake-up edge
}

func newSubscription(b *Bus, capacity int) *Subscription {
	return &Subscription{
		bus:    b,
		buf:    newRing(capacity),
		notify: make(chan struct{}, 1),
	}
}

// offer appends ev, evicting the oldest event when full. It reports
// whether an eviction happened, and never blocks.
func (s *Subscription) offer(ev Event) (droppedOne bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	droppedOne = s.buf.full()
	if droppedOne {
		s.drops++
	}
	s.buf.push(ev)
	s.mu.Unlock()
	s.wake()
	return droppedOne
}

func (s *Subscription) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Poll drains and returns every buffered event, oldest first. It never
// blocks; an empty slice means nothing is pending right now.
func (s *Subscription) Poll() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.drain()
}

// Dropped returns how many events this subscription has evicted.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Wait returns a channel that receives (or is readable) when new events
// may be available or the subscription has closed. After a wake-up the
// caller drains with Poll and, on an empty result, checks Closed.
func (s *Subscription) Wait() <-chan struct{} { return s.notify }

// Closed reports whether the stream has ended. Buffered events remain
// pollable after close; Closed with an empty Poll means fully drained.
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close detaches from the bus and ends the subscription. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	b := s.bus
	s.mu.Unlock()
	if b != nil {
		b.unsubscribe(s)
	}
	s.wake()
}

// markClosed ends the subscription without touching the bus map (the
// bus already removed it).
func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wake()
}

// ring is a fixed-capacity FIFO of events that overwrites its oldest
// entry when full. Not self-synchronized; callers hold their own lock.
type ring struct {
	buf   []Event
	start int // index of the oldest event
	n     int // live count
}

func newRing(capacity int) ring {
	if capacity < 1 {
		capacity = 1
	}
	return ring{buf: make([]Event, capacity)}
}

func (r *ring) full() bool { return r.n == len(r.buf) }

func (r *ring) push(ev Event) {
	if r.full() {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++
}

// drain removes and returns all events, oldest first.
func (r *ring) drain() []Event {
	if r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.start, r.n = 0, 0
	return out
}

// since returns a copy of the events with Seq > after, oldest first,
// without consuming them.
func (r *ring) since(after uint64) []Event {
	var out []Event
	for i := 0; i < r.n; i++ {
		ev := r.buf[(r.start+i)%len(r.buf)]
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out
}
