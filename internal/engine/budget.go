package engine

import (
	"context"
	"time"
)

// Slice sizing for deadline-bounded solving.
const (
	// cancelSliceConflicts bounds one Solve slice when a context is
	// attached but carries no deadline (pure cancellation): large enough
	// that slicing overhead vanishes, small enough that cancellation
	// lands within tens of milliseconds on typical encodings.
	cancelSliceConflicts = 1 << 14
	// probeConflicts is the first slice before any rate is known.
	probeConflicts = 1024
	// minSlice floors every grant so the context is still polled at a
	// bounded interval even when a phase has exhausted its share.
	minSlice = 256
	// maxSlice caps a single grant so the deadline is re-examined a few
	// times before it lands.
	maxSlice = 1 << 20
)

// budgeter converts a context deadline into per-Solve conflict budgets.
// The legacy extractor heuristic re-derived the conflict rate from each
// enumeration's own wall clock and granted half the predicted remainder
// per slice, so a long early phase could spend the entire deadline
// before later phases (calibration, verification) ran at all. The
// budgeter instead:
//
//   - anchors on one engine-lifetime clock and keeps a persistent EWMA
//     of the observed conflict rate across every solve session and
//     phase, so early slices of a new phase are sized from real history
//     rather than a cold probe;
//   - caps each phase's total spending at half the conflicts predicted
//     to remain at phase entry, so no phase can starve its successors;
//   - makes the per-slice grant monotonically non-increasing within a
//     phase, so grants shrink as the deadline approaches instead of
//     oscillating with instantaneous rate estimates.
//
// A phase that exhausts its share is not stopped — correctness never
// depends on the budget — it just crawls at minSlice-sized grants, which
// keeps context polls frequent while leaving headroom for later phases.
// defaultBudgetSmoothing is the EWMA weight of the newest rate
// observation. The committed BENCH phase histograms show per-phase
// conflict rates swinging 2–3× between enumeration and distinguish
// sessions while stabilizing within ~4 sessions of a regime change;
// a 0.4 new-observation weight tracks such a step to within 13% in four
// observations ((1-0.4)^4 ≈ 0.13) without letting a single outlier
// session move the estimate by more than 40%. The old hard-coded 0.3
// weight needed six sessions for the same convergence, which on short
// deadlines meant the first post-transition phase was budgeted from a
// stale rate.
const defaultBudgetSmoothing = 0.4

type budgeter struct {
	now func() time.Time // injected for tests; time.Now in production

	// smoothing is the EWMA weight of each new rate observation, in
	// (0,1); zero means defaultBudgetSmoothing (keeps zero-value
	// budgeter literals working).
	smoothing float64

	lastT         time.Time
	lastConflicts uint64
	rate          float64 // EWMA conflicts/second, engine lifetime

	capped     bool   // a per-phase cap is in force
	phaseCap   uint64 // conflicts this phase may still spend
	phaseGrant uint64 // previous grant this phase; the next never exceeds it
}

func newBudgeter() budgeter {
	return budgeter{now: time.Now, smoothing: defaultBudgetSmoothing}
}

// setSmoothing overrides the EWMA weight; values outside (0,1) are
// ignored.
func (b *budgeter) setSmoothing(alpha float64) {
	if alpha > 0 && alpha < 1 {
		b.smoothing = alpha
	}
}

// enterPhase resets the per-phase state: the new phase may spend at most
// half the conflicts predicted to remain before the deadline (no cap
// until a rate has been observed, or without a deadline).
func (b *budgeter) enterPhase(ctx context.Context) {
	b.phaseGrant = 0
	b.capped = false
	b.phaseCap = 0
	if ctx == nil || b.rate == 0 {
		return
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return
	}
	remaining := deadline.Sub(b.now())
	if remaining <= 0 {
		b.capped = true
		return
	}
	cap := uint64(b.rate * remaining.Seconds() / 2)
	if cap < minSlice {
		cap = minSlice
	}
	b.capped = true
	b.phaseCap = cap
}

// observe folds the conflicts spent since the last call into the rate
// estimate and charges them against the phase cap. conflicts is the
// solver's cumulative (monotone) conflict counter.
func (b *budgeter) observe(conflicts uint64, now time.Time) {
	if b.lastT.IsZero() {
		b.lastT = now
		b.lastConflicts = conflicts
		return
	}
	dc := conflicts - b.lastConflicts
	dt := now.Sub(b.lastT).Seconds()
	if b.capped {
		if dc >= b.phaseCap {
			b.phaseCap = 0
		} else {
			b.phaseCap -= dc
		}
	}
	if dc > 0 && dt > 0 {
		inst := float64(dc) / dt
		if b.rate == 0 {
			b.rate = inst
		} else {
			alpha := b.smoothing
			if alpha == 0 {
				alpha = defaultBudgetSmoothing
			}
			b.rate = (1-alpha)*b.rate + alpha*inst
		}
	}
	b.lastT = now
	b.lastConflicts = conflicts
}

// slice returns the conflict budget for the next Solve call: 0 when
// unbudgeted (no context), otherwise a grant derived from the remaining
// deadline, the persistent rate, and the phase's remaining share.
func (b *budgeter) slice(ctx context.Context, conflicts uint64) uint64 {
	if ctx == nil {
		return 0
	}
	now := b.now()
	b.observe(conflicts, now)
	deadline, ok := ctx.Deadline()
	if !ok {
		return cancelSliceConflicts
	}
	remaining := deadline.Sub(now)
	if remaining <= 0 {
		return 1 // expired: the caller's pre-Solve context check fires next
	}
	if b.rate == 0 {
		return probeConflicts
	}
	budget := uint64(b.rate * remaining.Seconds() / 2)
	if budget < minSlice {
		budget = minSlice
	}
	if budget > maxSlice {
		budget = maxSlice
	}
	if b.phaseGrant > 0 && budget > b.phaseGrant {
		budget = b.phaseGrant // monotone within the phase
	}
	if b.capped {
		if b.phaseCap == 0 {
			return minSlice // share exhausted: crawl, poll often
		}
		if budget > b.phaseCap {
			budget = b.phaseCap
		}
	}
	b.phaseGrant = budget
	return budget
}
