package bench

import (
	"strings"
	"testing"
)

// FuzzBenchRead throws arbitrary text at the bench parser. The parser
// must never panic, and any netlist it does accept must satisfy the
// round-trip property: Write serializes it to text that Read accepts
// again with identical port and gate counts.
func FuzzBenchRead(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("# comment\nINPUT(G1)\nINPUT(G2)\nOUTPUT(G3)\nG3 = NAND(G1, G2)\n")
	f.Add("INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n")
	f.Add("input(a)\noutput(y)\ny = and(a, a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")
	f.Add("OUTPUT(y)\ny = NOT(y)\n")
	f.Add("INPUT(a)\n\n\nOUTPUT(a)\n")
	f.Add("G3 = DFF(G1)\n")
	f.Add(strings.Repeat("INPUT(x)\n", 40))

	f.Fuzz(func(t *testing.T, data string) {
		c, err := Read(strings.NewReader(data), ReadOptions{Name: "fuzz", KeyPrefix: DefaultKeyPrefix})
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		text, err := WriteString(c)
		if err != nil {
			t.Fatalf("accepted netlist failed to serialize: %v", err)
		}
		c2, err := ReadString("fuzz2", text)
		if err != nil {
			t.Fatalf("serialized form rejected: %v\n%s", err, text)
		}
		if c2.NumInputs() != c.NumInputs() || c2.NumKeys() != c.NumKeys() ||
			c2.NumOutputs() != c.NumOutputs() || c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed shape: %d/%d/%d/%d → %d/%d/%d/%d",
				c.NumInputs(), c.NumKeys(), c.NumOutputs(), c.NumGates(),
				c2.NumInputs(), c2.NumKeys(), c2.NumOutputs(), c2.NumGates())
		}
	})
}
