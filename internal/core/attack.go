package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// Options configures the DIP-learning attack.
type Options struct {
	// Locked is the reverse-engineered CAS-locked netlist (black box to
	// the attack: it is only simulated / SAT-queried).
	Locked *netlist.Circuit
	// Oracle is the activated chip.
	Oracle oracle.Oracle
	// Layout is the key-port layout; nil runs DiscoverLayout.
	Layout *BlockLayout
	// Extractor overrides the DIP-set engine; nil picks between the SAT
	// engine and the exhaustive simulation engine per SATWidthLimit.
	Extractor Extractor
	// SATWidthLimit controls the SAT/sim regime boundary when Extractor
	// is nil. 0 — the default — runs a per-instance calibration probe
	// (timed simulation batches vs. a deadline-budgeted engine probe)
	// and picks the cheaper engine empirically; a positive value pins
	// the historical rule: SAT for blocks up to that many inputs,
	// simulation above. LegacyEncoding also pins the rule (at width 12),
	// since probe timings against the persistent engine would not
	// transfer to the re-encode path.
	SATWidthLimit int
	// LegacyEncoding disables the persistent incremental-SAT engine and
	// restores the per-assignment re-encode path: each SAT extraction
	// compiles (or LRU-replays) a fixed-key miter into a fresh solver,
	// and candidate distinguishing builds throwaway hashed miters. An
	// escape hatch — results are identical, the engine is just faster.
	LegacyEncoding bool
	// Portfolio, when > 0, replaces the single persistent engine with a
	// racing portfolio of that many diversified members (distinct VSIDS
	// decay, restart strategy, phase-saving polarity and decision-order
	// seeds) sharing one miter encoding and exchanging short learned
	// clauses. Every query races all members and the first definitive
	// answer wins, so wall-clock tracks the luckiest configuration while
	// results stay bit-identical to a single engine (enforced by the
	// differential tests; see DESIGN.md §13). Ignored under
	// LegacyEncoding and in the simulation regime, which have no
	// persistent engine. engine.DefaultPortfolioSize is the conventional
	// size for callers that only expose an on/off switch.
	Portfolio int
	// EnginePool, when non-nil together with EngineKey, reuses warm
	// persistent backends across attacks: before building an engine the
	// SAT extractor asks the pool for an idle backend parked under
	// EngineKey, and when the attack finishes its backend is recycled
	// back into the pool — encoding, learned clauses and budgeter rate
	// intact. EngineKey must uniquely identify the attacked netlist;
	// canonical-serialization hashes (bench.Canonical) qualify, since
	// equal canonical bytes pin the input/key orderings the engine's
	// literal layout depends on. The pool key is additionally scoped by
	// Portfolio, so differently sized configurations never exchange
	// backends. Ignored under LegacyEncoding and in the simulation
	// regime.
	EnginePool *engine.Pool
	// EngineKey scopes this attack's entries in EnginePool; empty
	// disables pooling.
	EngineKey string
	// MaxCalibrations caps the Algorithm-2 brute-force loop over the
	// calibration block's upper key bits (default 1<<20).
	MaxCalibrations uint64
	// MaxOnePoints caps the aligned DIP-set size the attack will
	// materialize (default 1<<27).
	MaxOnePoints uint64
	// Workers is the shard worker count for the simulation extractor
	// (0 = GOMAXPROCS). Ignored when Extractor is supplied: configure
	// the supplied extractor directly.
	Workers int
	// Context bounds the whole attack: cancellation and deadlines are
	// honored inside extraction shards, sliced SAT runs, the
	// calibration sweep and the oracle-verification loops. On
	// expiration the attack returns a *PartialError carrying whatever
	// structure it had recovered. Nil means context.Background().
	Context context.Context
	// MismatchRetries enables targeted re-querying for noisy oracles:
	// when a candidate key disagrees with the oracle on a pattern, the
	// pattern is re-queried 2·MismatchRetries+1 times and the
	// disagreement only counts if the per-bit majority confirms it.
	// 0 trusts every answer (the perfect-oracle model of the paper).
	MismatchRetries int
	// Seed drives probe sampling.
	Seed int64
	// Log, when non-nil, receives progress messages (stage boundaries,
	// extraction sizes, calibration sweeps) — useful for the minutes-long
	// 64-bit-key runs.
	Log func(format string, args ...any)
	// Telemetry, when non-nil, receives the attack's metrics and phase
	// spans: the attack/hypothesis/enumerate/decode/algo1/algo2/verify
	// span tree, oracle-query and candidate counters, DIP-set sizes, and
	// (through extractors that implement SetTelemetry) SAT-solver and
	// per-shard enumeration statistics. Nil — the default — disables
	// instrumentation at no measurable cost to the enumeration hot path;
	// see internal/telemetry and DESIGN.md §7.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the attack's lifecycle events:
	// phase enter/exit, DIP progress with running counts, crossover
	// decisions, oracle batches, budget slices, checkpoint writes and
	// resume replays. Publishing never blocks — slow consumers lose
	// their oldest events (see internal/events) — and the disabled
	// path costs one nil check per hook. The attack does not publish
	// the terminal done event; the owner of the run (CLI, service)
	// does, because only it knows the final disposition.
	Events *events.Bus
	// Checkpointer, when non-nil, makes attack progress durable: the
	// attack hands it snapshots (accumulated DIPs, banked oracle
	// answers, phase + budgeter state) on the writer's cadence, and the
	// writer persists them atomically off the hot path. See
	// internal/checkpoint and DESIGN.md §11.
	Checkpointer *checkpoint.Writer
	// ResumeFrom, when non-nil, continues an interrupted attack from a
	// snapshot: it is validated against this instance's canonical netlist
	// hash and options signature (refused with ErrResumeMismatch on any
	// mismatch), its banked oracle answers are replayed locally, its
	// complete DIP sets are restored outright and partial ones are
	// re-seeded into the SAT engine as blocking clauses. The final key is
	// bit-identical to an uninterrupted run's.
	ResumeFrom *checkpoint.Snapshot
}

// Result reports a successful key recovery.
type Result struct {
	// Key is a correct key for the locked circuit, in its key-input
	// order.
	Key []bool
	// Chain is the recovered cascade configuration (under the convention
	// that block 1 of the layout is g_cas).
	Chain lock.ChainConfig
	// KeyGates1/KeyGates2 are the recovered XOR/XNOR key-gate types of
	// the two blocks, exact up to the inherent joint complement (both
	// blocks' polarities flipped together with the key, which yields an
	// indistinguishable circuit).
	KeyGates1, KeyGates2 []netlist.GateType
	// Case is 1 for AND/NAND-terminated instances, 2 for OR/NOR.
	Case int
	// AlignedDIPs is |A|, the structured class size — the quantity
	// Lemma 2's closed form predicts (1 + Σ 2^{c_i}).
	AlignedDIPs uint64
	// TotalDIPs is the full miter DIP-set size |I_l| of the successful
	// extraction.
	TotalDIPs uint64
	// Extractions counts DIP-set extractions (including the calibration
	// sweep); Calibrations counts brute-forced calibration candidates;
	// CandidatesTried counts key candidates submitted to oracle probes.
	Extractions, Calibrations, CandidatesTried int
	// OracleQueries counts oracle pattern evaluations spent by the
	// attack (probing and final verification).
	OracleQueries uint64
}

// Run mounts the DIP-learning attack. It tries both block-role
// hypotheses (Lemma 1's Case 1 and Case 2) and returns the first
// oracle-verified key.
func Run(opts Options) (*Result, error) {
	if opts.Locked == nil || opts.Oracle == nil {
		return nil, fmt.Errorf("core: Locked and Oracle are required")
	}
	if opts.MaxCalibrations == 0 {
		opts.MaxCalibrations = 1 << 20
	}
	if opts.MaxOnePoints == 0 {
		opts.MaxOnePoints = 1 << 27
	}
	layout := opts.Layout
	if layout == nil {
		var err error
		layout, err = DiscoverLayout(opts.Locked)
		if err != nil {
			return nil, err
		}
	}
	if err := layout.Validate(opts.Locked); err != nil {
		return nil, err
	}
	if layout.N()*2 != opts.Locked.NumKeys() {
		return nil, fmt.Errorf("core: layout covers %d key bits, circuit has %d", layout.N()*2, opts.Locked.NumKeys())
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	root := opts.Telemetry.StartSpan("attack")
	defer root.End()

	ext := opts.Extractor
	if ext == nil {
		var err error
		ext, err = chooseExtractor(ctx, &opts, layout, root)
		if err != nil {
			return nil, err
		}
		// Park the warm backend when the attack ends, however it ends —
		// except through a panic, whose mid-solve state must not poison
		// the next job. Only extractors this attack built are parked: a
		// caller-supplied extractor still belongs to the caller.
		if key := enginePoolKey(&opts); key != "" {
			defer func() {
				if r := recover(); r != nil {
					panic(r)
				}
				if sx, ok := ext.(*SATExtractor); ok {
					if b := sx.Backend(); b != nil {
						opts.EnginePool.Put(key, b)
					}
				}
			}()
		}
	}

	// Extractors that understand cancellation get the attack's context;
	// a caller-supplied extractor may opt in by implementing the same
	// SetContext method. Telemetry is wired the same way. (For an
	// extractor the calibration probe selected this also replaces the
	// probe's deadline context with the attack's.)
	if ca, ok := ext.(interface{ SetContext(context.Context) }); ok {
		ca.SetContext(ctx)
	}
	if ta, ok := ext.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
		ta.SetTelemetry(opts.Telemetry)
	}
	if la, ok := ext.(interface{ SetLegacyEncoding(bool) }); ok {
		la.SetLegacyEncoding(opts.LegacyEncoding)
	}
	if pa, ok := ext.(interface{ SetPortfolio(int) }); ok {
		pa.SetPortfolio(opts.Portfolio)
	}
	if ea, ok := ext.(interface{ SetEvents(*events.Bus) }); ok {
		ea.SetEvents(opts.Events)
	}
	a := &attack{opts: opts, layout: layout, ext: ext, ctx: ctx,
		tel: opts.Telemetry, root: root, bus: opts.Events,
		rng: rand.New(rand.NewSource(opts.Seed ^ 0x5eed))}
	a.cQueries = opts.Telemetry.Counter("attack_oracle_queries_total")
	a.cCandidates = opts.Telemetry.Counter("attack_candidates_total")
	a.cCalibrations = opts.Telemetry.Counter("attack_calibrations_total")
	if err := a.armDurability(); err != nil {
		return nil, err
	}
	a.installProgress()
	var firstErr error
	for _, active := range []int{1, 2} {
		if a.resumeSkip(active) {
			continue
		}
		res, err := a.runWithActive(active)
		if err == nil {
			res.Extractions = ext.Extractions()
			return res, nil
		}
		// An interrupted hypothesis ends the attack: the deadline or
		// oracle is gone, so trying the other hypothesis would only
		// discard the partial structure already recovered.
		if errors.Is(err, ErrPartial) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("core: attack failed under both terminator hypotheses: %w", firstErr)
}

type attack struct {
	opts   Options
	layout *BlockLayout
	ext    Extractor
	ctx    context.Context
	rng    *rand.Rand

	tel           *telemetry.Registry
	root          *telemetry.Span
	cQueries      *telemetry.Counter
	cCandidates   *telemetry.Counter
	cCalibrations *telemetry.Counter

	bus       *events.Bus      // nil = lifecycle events disabled
	phaseAt   map[string]int64 // phase → enter timestamp (ms), event durations
	evQueries uint64           // oracle queries since the last oracle_batch event

	eng      engine.Backend // persistent engine/portfolio for SAT distinguishing
	engTried bool

	ck     *ckptState           // non-nil when a Checkpointer is armed
	resume *checkpoint.Snapshot // pending resume state, consumed one-shot
	bank   *bankedOracle        // response bank, non-nil when durability is armed

	queries      uint64
	calibrations int
	candidates   int
}

// engine returns the persistent incremental engine shared with the
// extractor, when it offers one. In the simulation-extractor regime
// (wide blocks) no engine exists and callers fall back to the
// structural-hashing prover — deliberately: a distinguishing query
// there is almost always an equivalence proof of two activated copies
// of the whole netlist, which hashing collapses in milliseconds while
// a cold CDCL instance pays an encoding plus a full UNSAT search
// (measured 20x slower on the c880-profile Table-I row). The engine
// only wins where it is already warm from SAT enumeration. Nil under
// LegacyEncoding.
func (a *attack) engine() engine.Backend {
	if a.engTried {
		return a.eng
	}
	a.engTried = true
	if a.opts.LegacyEncoding {
		return nil
	}
	if ea, ok := a.ext.(interface {
		Engine() (engine.Backend, error)
	}); ok {
		eng, err := ea.Engine()
		if err == nil {
			a.eng = eng
		} else {
			a.logf("incremental engine unavailable (%v): falling back to throwaway miters", err)
		}
	}
	return a.eng
}

// setPhase labels the current pipeline phase on every engine-aware
// component: the extractor (which forwards to its engine) and any
// attack-owned engine. Per-phase budgeting and stats attribution key off
// these labels.
func (a *attack) setPhase(name string) {
	if pa, ok := a.ext.(interface{ SetPhase(string) }); ok {
		pa.SetPhase(name)
	}
	if a.eng != nil {
		a.eng.SetPhase(name)
	}
	a.ckptPhase(name)
}

// oracleEventBatch and dipEventBatch throttle the hot-path event
// publishers: one oracle_batch event per this many queries, one
// dip_progress event per this many enumerated DIPs. The batch sizes
// keep the stream informative (hundreds of events on a long run) while
// the per-unit cost stays at one nil check plus an increment.
const (
	oracleEventBatch = 256
	dipEventBatch    = 256
)

// countQueries accounts oracle pattern evaluations in both the local
// tally and the registry, and advances the checkpoint cadence — query
// batches are progress worth persisting just like enumerated DIPs.
// Every oracleEventBatch queries it also publishes an oracle_batch
// event with the cumulative total.
func (a *attack) countQueries(n uint64) {
	a.queries += n
	a.cQueries.Add(n)
	a.ckptPump(n)
	if a.bus != nil {
		a.evQueries += n
		if a.evQueries >= oracleEventBatch {
			a.evQueries = 0
			a.bus.Publish(events.Event{Type: events.TypeOracleBatch, Count: a.queries})
		}
	}
}

// nowMillis is the wall-clock read behind event phase durations.
func nowMillis() int64 { return time.Now().UnixMilli() }

// installProgress wires the extractor's per-DIP progress hook into
// whichever consumers are armed: the checkpoint cadence (exactly the
// hook armDurability used to install) and the event bus, which gets a
// throttled dip_progress event — running count plus the enumerated
// fraction of the block universe — every dipEventBatch DIPs and at
// every enumeration completion. With neither armed, no hook is
// installed and the extractor's per-DIP cost is a single nil check.
//
// An attack can enumerate more than once: a hypothesis misalignment
// makes algo2 restart extraction with a fresh (typically smaller)
// DIPSet, so counts are monotone only within one enumeration round.
// Each run builds its set with NewDIPSet, so a changed set pointer
// marks a new round; the round number rides in the event's fields and
// consumers reset their monotonicity baseline when it changes.
func (a *attack) installProgress() {
	if a.ck == nil && a.bus == nil {
		return
	}
	pa, ok := a.ext.(interface {
		SetProgress(func(set *DIPSet, complete bool))
	})
	if !ok {
		return
	}
	var sinceEvent uint64
	var curSet *DIPSet
	var round uint64
	gDIPs := a.tel.Gauge("attack_dips_found")
	pa.SetProgress(func(set *DIPSet, complete bool) {
		if set != curSet {
			curSet = set
			round++
			sinceEvent = 0
		}
		sinceEvent++
		if complete || sinceEvent >= dipEventBatch {
			sinceEvent = 0
			count := set.Count()
			gDIPs.Set(int64(count))
			if a.bus != nil {
				a.bus.Publish(events.Event{
					Type:   events.TypeDIPProgress,
					Phase:  "enumerate",
					Count:  count,
					Done:   count,
					Total:  set.Universe(),
					Fields: map[string]string{"round": strconv.FormatUint(round, 10)},
				})
			}
		}
		if a.ck == nil {
			return
		}
		a.ck.set, a.ck.complete = set, complete
		if complete {
			a.ck.w.Offer(a.buildSnapshot())
			return
		}
		a.ckptPump(1)
	})
}

// startPhase opens a pipeline phase: it announces the phase on the
// event bus, remembers the enter time for the exit event's duration,
// and returns the phase span (nil when telemetry is off — phase events
// do not depend on spans).
func (a *attack) startPhase(parent *telemetry.Span, name string) *telemetry.Span {
	if a.bus != nil {
		ev := events.Event{Type: events.TypePhaseEnter, Phase: name}
		a.bus.Publish(ev)
		if a.phaseAt == nil {
			a.phaseAt = make(map[string]int64)
		}
		a.phaseAt[name] = nowMillis()
	}
	return parent.Child(name)
}

// endPhase closes a phase: the span's duration feeds the per-phase
// latency histogram, and a phase_exit event mirrors it on the bus.
// Nil-safe in both directions (telemetry or events disabled).
func (a *attack) endPhase(sp *telemetry.Span, name string) {
	if sp != nil {
		d := sp.End()
		a.tel.Histogram(telemetry.Label("attack_phase_seconds", "phase", name),
			telemetry.DurationBuckets).Observe(d.Seconds())
	}
	if a.bus != nil {
		ev := events.Event{Type: events.TypePhaseExit, Phase: name}
		if at, ok := a.phaseAt[name]; ok {
			ev.Fields = map[string]string{
				"seconds": strconv.FormatFloat(float64(nowMillis()-at)/1e3, 'g', 4, 64),
			}
		}
		a.bus.Publish(ev)
	}
}

// assign builds the miter key vectors: the active block's keys are all-1
// in copy A and all-0 in copy B (Lemma 1); the other ("calibration")
// block gets the bits of c in both copies.
func (a *attack) assign(active int, c uint64) PairAssign {
	nk := a.opts.Locked.NumKeys()
	n := a.layout.N()
	out := PairAssign{A: make([]bool, nk), B: make([]bool, nk)}
	actPos, calPos := a.layout.Key1Pos, a.layout.Key2Pos
	if active == 2 {
		actPos, calPos = calPos, actPos
	}
	for i := 0; i < n; i++ {
		out.A[actPos[i]] = true
		cb := c&(1<<uint(i)) != 0
		out.A[calPos[i]] = cb
		out.B[calPos[i]] = cb
	}
	return out
}

// structured holds the decoded structure of one extraction. The DIP set
// stays in its packed bitset form; the two top-bit classes are read out
// of it as half-universe ranges (bigTop selects which half is the
// structured class), so no per-class copies are materialized.
type structured struct {
	chainH  lock.ChainConfig
	wSet    map[uint64]struct{}
	wList   []uint64
	s       uint64 // shift: A = W ⊕ s
	dipNC   uint64 // the non-repeating DIP (w_nc ⊕ s)
	dips    *DIPSet
	bigTop  bool // structured class lives in the top half of the universe
	total   uint64
	nBig    uint64
	deltas  []uint64 // effective-misalignment candidates (empty: need calibration)
	classOK bool
}

func (st *structured) nSmall() uint64 { return st.total - st.nBig }

// halfRanges returns the [lo, hi) pattern ranges of the big and small
// classes.
func (st *structured) halfRanges() (bigLo, bigHi, smallLo, smallHi uint64) {
	half := st.dips.Universe() / 2
	if st.bigTop {
		return half, 2 * half, 0, half
	}
	return 0, half, half, 2 * half
}

// inBig reports membership of x in the structured (big) class.
func (st *structured) inBig(x uint64) bool {
	bigLo, bigHi, _, _ := st.halfRanges()
	return x >= bigLo && x < bigHi && st.dips.Contains(x)
}

// forEachBig visits the structured class in ascending order; returning
// false stops the walk.
func (st *structured) forEachBig(f func(p uint64) bool) {
	bigLo, bigHi, _, _ := st.halfRanges()
	st.dips.ForEachRange(bigLo, bigHi, f)
}

// forEachSmall visits the suppressed class in ascending order; returning
// false stops the walk.
func (st *structured) forEachSmall(f func(p uint64) bool) {
	_, _, smallLo, smallHi := st.halfRanges()
	st.dips.ForEachRange(smallLo, smallHi, f)
}

// decode runs the structural recovery on an extracted DIP set, as two
// traced phases: "decode" (Lemma 2 inverted: class split and chain
// recovery from the structured class size) and "algo1" (Algorithm 1's
// key-gate recovery: DIP_nc by the bit-flip membership rule, the shift,
// full structural validation A == W(chain) ⊕ s, and the misalignment
// candidates). parent scopes the phase spans (the hypothesis span, or
// the algo2 span for calibration re-decodes); nil disables tracing.
func (a *attack) decode(parent *telemetry.Span, dips *DIPSet) (*structured, error) {
	st, err := a.decodeChain(parent, dips)
	if err != nil {
		return nil, err
	}
	if err := a.recoverKeyGates(parent, st); err != nil {
		return nil, err
	}
	return st, nil
}

// decodeChain is the Lemma-2 half of decode: split the DIP set by its
// top bit and invert the closed form |A| = 1 + Σ 2^{c_i} into the chain
// configuration.
func (a *attack) decodeChain(parent *telemetry.Span, dips *DIPSet) (st *structured, err error) {
	sp := a.startPhase(parent, "decode")
	defer a.endPhase(sp, "decode")
	total := dips.Count()
	if total == 0 {
		return nil, fmt.Errorf("core: miter produced no DIPs (keys behave identically)")
	}
	half := dips.Universe() / 2
	c1 := dips.CountRange(half, dips.Universe())
	c0 := total - c1
	// The top half is the structured class unless the bottom half is
	// strictly larger (preserving the former map-based tie behavior).
	bigTop := c0 <= c1
	nBig := c1
	if !bigTop {
		nBig = c0
	}
	st = &structured{dips: dips, bigTop: bigTop, total: total, nBig: nBig}

	chainH, err := ChainFromDIPCount(st.nBig, a.layout.N())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLemma2, err)
	}
	if chainH.Terminator() != lock.ChainAnd {
		return nil, fmt.Errorf("core: structured class implies an OR-terminated chain in reduced space; wrong hypothesis")
	}
	if st.nBig > a.opts.MaxOnePoints {
		return nil, fmt.Errorf("core: structured class has %d patterns, beyond MaxOnePoints", st.nBig)
	}
	st.chainH = chainH
	st.wList = OnePoints(chainH)
	st.wSet = make(map[uint64]struct{}, len(st.wList))
	for _, w := range st.wList {
		st.wSet[w] = struct{}{}
	}
	sp.SetArg("chain", chainH.String())
	sp.SetArg("aligned_dips", strconv.FormatUint(st.nBig, 10))
	return st, nil
}

// recoverKeyGates is the Algorithm-1 half of decode: DIP_nc, the shift
// s (which IS the active block's key-gate polarity vector), structural
// validation, and the δ candidates. The class walks and the δ scan are
// the attack's only unbounded CPU loops outside the extractor, so they
// poll the context — a SIGINT must unwind in milliseconds even at
// block widths where the scan would otherwise run for minutes.
func (a *attack) recoverKeyGates(parent *telemetry.Span, st *structured) error {
	sp := a.startPhase(parent, "algo1")
	defer a.endPhase(sp, "algo1")
	// DIP_nc: the unique member of the structured class that leaves it
	// when bit 0 is flipped (Algorithm 1, line 9).
	var dipNC uint64
	found := 0
	poll := ctxPoller{a: a}
	st.forEachBig(func(p uint64) bool {
		if poll.hit() {
			return false
		}
		if !st.inBig(p ^ 1) {
			dipNC = p
			found++
		}
		return true
	})
	if err := poll.err; err != nil {
		return err
	}
	if found != 1 {
		return fmt.Errorf("%w: %d non-repeating DIP candidates, want exactly 1", ErrLemma2, found)
	}
	st.dipNC = dipNC
	st.s = dipNC ^ NonControllingPattern(st.chainH)

	// Structural validation: big == W ⊕ s.
	for _, w := range st.wList {
		if poll.hit() {
			return poll.err
		}
		if !st.inBig(w ^ st.s) {
			return fmt.Errorf("%w: structured class does not match the recovered chain", ErrLemma2)
		}
	}
	if uint64(len(st.wList)) != st.nBig {
		return fmt.Errorf("%w: class size %d does not match chain one-point count %d", ErrLemma2, st.nBig, len(st.wList))
	}
	st.classOK = true
	deltas, err := a.deltaCandidates(st)
	if err != nil {
		return err
	}
	st.deltas = deltas
	sp.SetArg("deltas", strconv.Itoa(len(st.deltas)))
	return nil
}

// ctxPoller amortizes context checks over tight loops: hit() reports
// cancellation, consulting the context only every pollStride calls so
// the fast path stays a counter increment.
type ctxPoller struct {
	a    *attack
	n    uint32
	err  error
	done bool
}

const pollStride = 8192

func (p *ctxPoller) hit() bool {
	if p.done {
		return true
	}
	if p.n++; p.n%pollStride == 0 {
		if err := p.a.ctxErr(); err != nil {
			p.err, p.done = err, true
			return true
		}
	}
	return false
}

// deltaCandidates recovers the effective misalignment δ between the two
// blocks' masks from the suppressed part of the small class:
// small = (W ∖ V) ⊕ ¬s with V = {w ∈ W : w⊕δ ∈ W}. Candidates are found
// by intersecting pivot translates of W and verified exactly. A nil
// candidate slice (with nil error) means the calibration sweep is
// needed; a non-nil error is always the attack context's cancellation.
func (a *attack) deltaCandidates(st *structured) ([]uint64, error) {
	n := a.layout.N()
	mask := blockMask(n)
	if st.nSmall() == 0 {
		// No suppression at all: the blocks are perfectly aligned (δ = 0).
		return []uint64{0}, nil
	}
	poll := ctxPoller{a: a}
	sSmall := ^st.s & mask
	// The theory gives small = (W ∖ V) ⊕ ¬s with V = {w : w⊕δ ∈ W}; any
	// element outside W ⊕ ¬s disproves the current hypothesis.
	present := make(map[uint64]struct{}, st.nSmall())
	mismatch := false
	st.forEachSmall(func(p uint64) bool {
		if poll.hit() {
			return false
		}
		w := p ^ sSmall
		if _, in := st.wSet[w]; !in {
			mismatch = true
			return false
		}
		present[w] = struct{}{}
		return true
	})
	if poll.err != nil {
		return nil, poll.err
	}
	if mismatch {
		return nil, nil
	}
	var v []uint64
	for _, w := range st.wList {
		if _, in := present[w]; !in {
			v = append(v, w)
		}
	}
	if len(v) == 0 {
		return nil, nil // OVL = 0: calibration sweep needed
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	vSet := make(map[uint64]struct{}, len(v))
	for _, w := range v {
		vSet[w] = struct{}{}
	}
	// δ satisfies: w ∈ V ⇒ w⊕δ ∈ W and w ∉ V ⇒ w⊕δ ∉ W. Candidates are
	// translates of a pivot from V; a two-sided pivot prefilter (pivots
	// drawn from both V and its complement) discriminates sharply, so
	// only a handful of candidates reach the exact O(N) verification —
	// essential when V = W and the translate set would otherwise make
	// the scan quadratic in the DIP count.
	inPivots := pickPivots(v, 6)
	var outPivots []uint64
	if len(v) < len(st.wList) {
		var rest []uint64
		for w := range present {
			rest = append(rest, w)
			if len(rest) >= 64 {
				break
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		outPivots = pickPivots(rest, 6)
	}
	var out []uint64
	verified, capped := 0, false
	for _, w := range st.wList {
		if poll.hit() {
			return nil, poll.err
		}
		cand := v[0] ^ w
		ok := true
		for _, p := range inPivots {
			if _, in := st.wSet[p^cand]; !in {
				ok = false
				break
			}
		}
		for i := 0; ok && i < len(outPivots); i++ {
			if _, in := st.wSet[outPivots[i]^cand]; in {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Exact verification of V(cand) == V.
		verified++
		if verified > 4096 {
			// Degenerate symmetry: stop enumerating rather than go
			// quadratic.
			capped = true
			break
		}
		match := true
		count := 0
		for _, x := range st.wList {
			if poll.hit() {
				return nil, poll.err
			}
			_, in := st.wSet[x^cand]
			if in {
				count++
			}
			if in != containsU64(vSet, x) {
				match = false
				break
			}
		}
		if match && count == len(v) {
			out = append(out, cand)
		}
	}
	if capped && len(out) == 0 {
		return nil, nil // fall back to the calibration sweep
	}
	return dedupeU64(out), nil
}

// pickPivots selects up to k elements spread across a sorted slice.
func pickPivots(xs []uint64, k int) []uint64 {
	if len(xs) <= k {
		return xs
	}
	out := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, xs[i*(len(xs)-1)/(k-1)])
	}
	return out
}

func containsU64(m map[uint64]struct{}, x uint64) bool {
	_, in := m[x]
	return in
}

func dedupeU64(xs []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(xs))
	var out []uint64
	for _, x := range xs {
		if _, in := seen[x]; !in {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func blockMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

func (a *attack) logf(format string, args ...any) {
	if a.opts.Log != nil {
		a.opts.Log(format, args...)
	}
}

// ctxErr reports the attack context's cancellation state.
func (a *attack) ctxErr() error {
	if a.ctx == nil {
		return nil
	}
	return a.ctx.Err()
}

// runWithActive executes the full pipeline under one block-role
// hypothesis. Each stage runs under its own phase span (enumerate →
// decode → algo1 → algo2 → verify, children of the hypothesis span);
// the algo2 span is emitted even when the δ witness made calibration
// unnecessary, with the arg skipped=true, so traces always show the
// complete pipeline shape.
func (a *attack) runWithActive(active int) (*Result, error) {
	hyp := a.root.Child("hypothesis")
	hyp.SetArg("case", strconv.Itoa(active))
	defer hyp.End()
	if err := a.ctxErr(); err != nil {
		return nil, a.partial("extract", active, nil, err)
	}
	a.logf("hypothesis active=%d: extracting DIP set (Lemma-1 assignment)", active)
	a.setPhase("enumerate")
	enum := a.startPhase(hyp, "enumerate")
	dips, err := a.extractDIPs(active, 0)
	if err != nil {
		a.endPhase(enum, "enumerate")
		if cerr := a.ctxErr(); cerr != nil {
			pe := a.partial("extract", active, nil, cerr)
			if dips != nil {
				pe.DIPs = dips.Count() // partially enumerated set
			}
			return nil, pe
		}
		return nil, err
	}
	enum.SetArg("dips", strconv.FormatUint(dips.Count(), 10))
	a.endPhase(enum, "enumerate")
	a.tel.Histogram("attack_dip_set_size", telemetry.SizeBuckets).
		Observe(float64(dips.Count()))
	a.logf("extracted |I_l| = %d", dips.Count())
	st, err := a.decode(hyp, dips)
	if err != nil {
		if cerr := a.ctxErr(); cerr != nil {
			pe := a.partial("decode", active, nil, cerr)
			pe.DIPs = dips.Count()
			return nil, pe
		}
		return nil, err
	}
	a.logf("decoded: chain_h=%s |A|=%d deltas=%d", st.chainH, st.nBig, len(st.deltas))
	calib := uint64(0)
	algo2 := a.startPhase(hyp, "algo2")
	if len(st.deltas) == 0 {
		a.setPhase("algo2")
		a.logf("no misalignment witness: starting calibration sweep")
		// Algorithm 2's brute force: sweep the calibration block's key
		// bits from the last OR gate's input position upward until the
		// small class shrinks (suppression appears), then re-extract and
		// decode at that calibration.
		prev := st
		calib, st, err = a.calibrate(algo2, active, st)
		if err != nil {
			a.endPhase(algo2, "algo2")
			if cerr := a.ctxErr(); cerr != nil {
				return nil, a.partial("calibrate", active, prev, cerr)
			}
			if errors.Is(err, errCalibrationBudget) {
				return nil, a.partial("calibrate", active, prev, err)
			}
			return nil, err
		}
	} else {
		algo2.SetArg("skipped", "true")
	}
	a.endPhase(algo2, "algo2")
	a.setPhase("verify")
	verify := a.startPhase(hyp, "verify")
	res, err := a.verifyCandidates(active, calib, st)
	a.endPhase(verify, "verify")
	return res, err
}

// verifyCandidates builds the candidate key family from a decoded
// structure and adjudicates it against the oracle: cheap probes, then
// pairwise SAT distinguishing inputs, then the O(m) DIP replay.
func (a *attack) verifyCandidates(active int, calib uint64, st *structured) (*Result, error) {
	n := a.layout.N()
	// Key candidates: the active block's polarity is s or its complement
	// (inherent ambiguity), the inter-block offset is δ⊕c or its
	// complement (branch ambiguity of the class split).
	mask := blockMask(n)
	type cand struct{ aActive, aCalib uint64 }
	var cands []cand
	for _, delta := range st.deltas {
		for _, d := range []uint64{delta ^ calib, (^delta & mask) ^ calib} {
			for _, aAct := range []uint64{st.s & mask, ^st.s & mask} {
				cands = append(cands, cand{aAct, aAct ^ d})
			}
		}
	}
	// Cheap oracle probes weed out grossly wrong candidates; the
	// survivors then face the sound discriminator: pairwise SAT
	// distinguishing inputs adjudicated by the oracle (the paper's
	// "SAT-based key verification" from [6]). A candidate is only ever
	// eliminated on a concrete disagreement with the oracle, so the true
	// key always survives.
	type scored struct {
		cd  cand
		key []bool
	}
	var survivors []scored
	for _, cd := range cands {
		if err := a.ctxErr(); err != nil {
			return nil, a.partial("verify", active, st, err)
		}
		a.candidates++
		a.cCandidates.Inc()
		key := a.buildKey(active, cd.aActive, cd.aCalib)
		ok, err := a.probeKey(key, st)
		if err != nil {
			return nil, a.verifyErr(active, st, err)
		}
		if ok {
			survivors = append(survivors, scored{cd, key})
		}
	}
	a.logf("%d candidates, %d survived probing", len(cands), len(survivors))
	for i := 0; i < len(survivors); i++ {
		alive := true
		for j := 0; j < len(survivors) && alive; j++ {
			if i == j {
				continue
			}
			if err := a.ctxErr(); err != nil {
				return nil, a.partial("verify", active, st, err)
			}
			witness, equivalent, err := a.distinguish(survivors[i].key, survivors[j].key, st)
			if err != nil {
				return nil, a.verifyErr(active, st, err)
			}
			if equivalent {
				continue
			}
			iOK, err := a.agreesWithOracle(witness, survivors[i].key)
			if err != nil {
				return nil, a.verifyErr(active, st, err)
			}
			if !iOK {
				alive = false
			}
		}
		if !alive {
			continue
		}
		key := survivors[i].key
		a.logf("candidate %d: replaying all %d DIPs against the oracle", i, st.total)
		if err := a.verifyKeyOnDIPs(key, st); err != nil {
			if cerr := a.ctxErr(); cerr != nil {
				return nil, a.partial("verify", active, st, cerr)
			}
			if errors.Is(err, oracle.ErrPermanent) {
				return nil, a.verifyErr(active, st, err)
			}
			continue
		}
		a.logf("candidate %d verified on every DIP", i)
		return a.report(active, calib, st, survivors[i].cd.aActive, survivors[i].cd.aCalib, key), nil
	}
	// Every candidate of a decode that passed the Lemma-2 structural
	// checks was killed by a concrete oracle disagreement. On a correct
	// oracle that is impossible (the true key is always a candidate and
	// never disagrees), so diagnose the oracle instead of guessing.
	return nil, fmt.Errorf("%w: %d candidates eliminated", ErrOracleInconsistent, len(cands))
}

// verifyErr classifies an error raised while consulting the oracle
// during candidate verification: cancellation and permanent oracle
// failures become PartialError (the structure is already decoded; only
// the adjudication is missing), anything else passes through.
func (a *attack) verifyErr(active int, st *structured, err error) error {
	if cerr := a.ctxErr(); cerr != nil {
		return a.partial("verify", active, st, cerr)
	}
	if errors.Is(err, oracle.ErrPermanent) {
		return a.partial("verify", active, st, err)
	}
	return err
}

// distinguishConflictBudget bounds one SAT distinguishing query; an
// exhausted budget is treated as "no difference found", which is safe
// because candidates are only ever eliminated on a concrete oracle
// disagreement and the winner is still replayed against every DIP.
const distinguishConflictBudget = 200000

// distinguish finds an input on which the locked circuit behaves
// differently under the two keys, or reports that none was found. It
// first sweeps the extracted block space by bit-parallel simulation
// (wrong candidate pairs differ on block patterns, and this finds the
// witness in milliseconds); only if the sweep is clean does it fall to
// SAT — normally an assumption query against the persistent engine,
// whose learned clauses from the enumeration phases make repeated
// pairwise probes cheap, or a throwaway structurally-hashed miter under
// LegacyEncoding. Both run under distinguishConflictBudget with the same
// Unknown-means-equivalent contract.
func (a *attack) distinguish(keyA, keyB []bool, st *structured) (witness []bool, equivalent bool, err error) {
	if w, found, err := a.simDistinguish(keyA, keyB, st); err != nil {
		return nil, false, err
	} else if found {
		return w, false, nil
	}
	if eng := a.engine(); eng != nil {
		out, err := eng.DistinguishEx(keyA, keyB, distinguishConflictBudget)
		if err != nil {
			return nil, false, err
		}
		if !out.Reason.Definitive() {
			// The Unknown-means-equivalent contract stands (candidates die
			// only on oracle disagreement), but a starved verdict is worth
			// a trace: the engine already counted and published it, the log
			// line ties it to this candidate pair.
			a.logf("distinguish verdict %s (budget %d): treating candidates as equivalent", out.Reason, uint64(distinguishConflictBudget))
		}
		return out.Witness, out.Equivalent, nil
	}
	actA, err := oracle.Activate(a.opts.Locked, keyA)
	if err != nil {
		return nil, false, err
	}
	actB, err := oracle.Activate(a.opts.Locked, keyB)
	if err != nil {
		return nil, false, err
	}
	eq, w, err := miter.ProveEquivalentHashedBudget(actA, actB, distinguishConflictBudget)
	if err != nil {
		return nil, false, err
	}
	return w, eq, nil
}

// simDistinguish searches for a distinguishing input by simulating both
// keys over the block space: the extracted DIP patterns, the candidate
// corruption anchors, and a random sweep.
func (a *attack) simDistinguish(keyA, keyB []bool, st *structured) ([]bool, bool, error) {
	sim, err := netlist.NewSimulator(a.opts.Locked)
	if err != nil {
		return nil, false, err
	}
	nIn := a.opts.Locked.NumInputs()
	wordsA := make([]uint64, len(keyA))
	wordsB := make([]uint64, len(keyB))
	for i := range keyA {
		if keyA[i] {
			wordsA[i] = ^uint64(0)
		}
		if keyB[i] {
			wordsB[i] = ^uint64(0)
		}
	}
	mask := blockMask(a.layout.N())
	wnc := NonControllingPattern(st.chainH)
	patterns := []uint64{wnc, ^wnc & mask, st.dipNC, ^st.dipNC & mask}
	budget := 4096
	st.forEachBig(func(p uint64) bool {
		if len(patterns) >= budget/2 {
			return false
		}
		patterns = append(patterns, p)
		return true
	})
	st.forEachSmall(func(p uint64) bool {
		if len(patterns) >= 3*budget/4 {
			return false
		}
		patterns = append(patterns, p)
		return true
	})
	for len(patterns) < budget {
		patterns = append(patterns, a.rng.Uint64()&mask)
	}
	in := make([]uint64, nIn)
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		chunk := patterns[base:end]
		for i := range in {
			in[i] = a.rng.Uint64()
		}
		for i, pos := range a.layout.InputPos {
			var w uint64
			for l, p := range chunk {
				if p&(1<<uint(i)) != 0 {
					w |= 1 << uint(l)
				}
			}
			in[pos] = w
		}
		outA, err := sim.Run64(in, wordsA)
		if err != nil {
			return nil, false, err
		}
		outACopy := append([]uint64(nil), outA...)
		outB, err := sim.Run64(in, wordsB)
		if err != nil {
			return nil, false, err
		}
		var diff uint64
		for i := range outB {
			diff |= outACopy[i] ^ outB[i]
		}
		if len(chunk) < 64 {
			diff &= (uint64(1) << uint(len(chunk))) - 1
		}
		if diff != 0 {
			lane := trailingZeros(diff)
			witness := make([]bool, nIn)
			for i := range witness {
				witness[i] = in[i]&(1<<uint(lane)) != 0
			}
			return witness, true, nil
		}
	}
	return nil, false, nil
}

// agreesWithOracle checks the locked circuit under key against the
// oracle on one input.
func (a *attack) agreesWithOracle(in []bool, key []bool) (bool, error) {
	want, err := a.opts.Oracle.Query(in)
	if err != nil {
		return false, err
	}
	a.countQueries(1)
	got, err := a.opts.Locked.Eval(in, key)
	if err != nil {
		return false, err
	}
	for i := range want {
		if want[i] != got[i] {
			confirmed, err := a.confirmDisagreement(in, key)
			if err != nil {
				return false, err
			}
			return !confirmed, nil
		}
	}
	return true, nil
}

// confirmDisagreement re-adjudicates one oracle/candidate disagreement
// for unreliable oracles: the pattern is re-queried 2·MismatchRetries+1
// times, each output bit takes its majority value, and the disagreement
// only stands if the denoised answer still differs from the candidate's
// — Algorithm 1's targeted re-query for a noise-corrupted observation.
// With MismatchRetries == 0 (the paper's perfect-oracle model) the
// first answer is final.
func (a *attack) confirmDisagreement(in []bool, key []bool) (bool, error) {
	k := a.opts.MismatchRetries
	if k <= 0 {
		return true, nil
	}
	votes := 2*k + 1
	counts := make([]int, a.opts.Oracle.NumOutputs())
	for v := 0; v < votes; v++ {
		out, err := a.opts.Oracle.Query(in)
		if err != nil {
			return false, err
		}
		a.countQueries(1)
		for i, b := range out {
			if b {
				counts[i]++
			}
		}
	}
	got, err := a.opts.Locked.Eval(in, key)
	if err != nil {
		return false, err
	}
	for i := range got {
		if (2*counts[i] > votes) != got[i] {
			return true, nil
		}
	}
	return false, nil
}

// errCalibrationBudget marks Algorithm-2 budget exhaustion, which the
// caller reports as a PartialError (the chain is already decoded; only
// the inter-block offset is missing).
var errCalibrationBudget = errors.New("core: calibration budget exhausted")

// calibrate is the paper's Algorithm-2 loop: brute force the calibration
// block's key bits at positions OR_last .. n-2 (bit n-1 is redundant up
// to complement) until the DIP set shows suppression. span is the open
// algo2 phase span; re-extractions and re-decodes during the sweep trace
// as its children.
func (a *attack) calibrate(span *telemetry.Span, active int, st0 *structured) (uint64, *structured, error) {
	n := a.layout.N()
	orLast := st0.chainH.LastOR() + 1 // chain-input position of the last OR, 0 if none
	width := n - 1 - orLast
	if width < 0 {
		width = 0
	}
	limit := uint64(1) << uint(width)
	if limit > a.opts.MaxCalibrations {
		return 0, nil, fmt.Errorf("%w: calibration space 2^%d exceeds MaxCalibrations", errCalibrationBudget, width)
	}
	bigN := float64(st0.nBig)
	for cand := uint64(1); cand < limit; cand++ {
		if err := a.ctxErr(); err != nil {
			return 0, nil, err
		}
		a.calibrations++
		a.cCalibrations.Inc()
		c := cand << uint(orLast)
		sizes, err := a.ext.Classes(a.assign(active, c))
		if err != nil {
			return 0, nil, err
		}
		shrunk := false
		if sizes.Exact {
			shrunk = sizes.Small < bigN && sizes.Big == bigN
		} else {
			shrunk = sizes.Small < 0.8*bigN && sizes.Big > 0.8*bigN && sizes.Big < 1.2*bigN
		}
		if !shrunk {
			continue
		}
		dips, err := a.extractDIPs(active, c)
		if err != nil {
			return 0, nil, err
		}
		st, err := a.decode(span, dips)
		if err != nil {
			continue // sampling false positive; keep sweeping
		}
		if len(st.deltas) == 0 {
			continue
		}
		return c, st, nil
	}
	return 0, nil, fmt.Errorf("core: calibration sweep found no suppressing assignment")
}

// buildKey maps block polarities to a canonical key vector for the locked
// circuit: under Case 1 (active = block 1) a1 = aActive, a2 = aCalib;
// under Case 2 the active block is ḡ and the reduction flips the
// calibration block's polarity.
func (a *attack) buildKey(active int, aActive, aCalib uint64) []bool {
	n := a.layout.N()
	mask := blockMask(n)
	var a1, a2 uint64
	if active == 1 {
		a1, a2 = aActive, aCalib
	} else {
		a2 = aActive
		a1 = ^aCalib & mask
	}
	key := make([]bool, a.opts.Locked.NumKeys())
	for i := 0; i < n; i++ {
		key[a.layout.Key1Pos[i]] = a1&(1<<uint(i)) != 0
		key[a.layout.Key2Pos[i]] = a2&(1<<uint(i)) != 0
	}
	return key
}

// probeKey checks a candidate key against the oracle on a probe set
// drawn from the extracted DIPs (where wrong keys are most likely to
// disagree) plus random patterns.
func (a *attack) probeKey(key []bool, st *structured) (bool, error) {
	sim, err := netlist.NewSimulator(a.opts.Locked)
	if err != nil {
		return false, err
	}
	probes := a.probePatterns(st, 96)
	for _, block := range probes {
		if err := a.ctxErr(); err != nil {
			return false, err
		}
		in := a.embedBlockPattern(block)
		want, err := a.opts.Oracle.Query(in)
		if err != nil {
			return false, err
		}
		a.countQueries(1)
		got, err := sim.Run(in, key)
		if err != nil {
			return false, err
		}
		for i := range want {
			if want[i] != got[i] {
				confirmed, err := a.confirmDisagreement(in, key)
				if err != nil {
					return false, err
				}
				if confirmed {
					return false, nil
				}
				break // noise: this probe is inconclusive, move on
			}
		}
	}
	return true, nil
}

// probePatterns samples block patterns, leading with the two patterns
// every residual-misalignment candidate provably corrupts (DIP_nc and
// its complement: in the candidate's own coordinates they sit on w_nc,
// which any surviving δ-error maps outside the one-point set), followed
// by class samples and random patterns. probeKey stops on the first
// disagreement, so wrong candidates typically cost O(1) oracle queries.
func (a *attack) probePatterns(st *structured, budget int) []uint64 {
	mask := blockMask(a.layout.N())
	// A candidate whose only error is a residual inter-block offset m
	// corrupts exactly the patterns X with X ∈ W, X⊕m ∉ W (its canonical
	// key cancels the key-gate masks), and w_nc is such a pattern for
	// every low-bit offset; the joint-complement candidate family
	// corrupts ¬w_nc instead.
	wnc := NonControllingPattern(st.chainH)
	out := []uint64{wnc, ^wnc & mask, st.dipNC, ^st.dipNC & mask}
	take := func(walk func(func(uint64) bool), k int) {
		walk(func(p uint64) bool {
			if k == 0 {
				return false
			}
			out = append(out, p)
			k--
			return true
		})
	}
	take(st.forEachBig, budget/2)
	take(st.forEachSmall, budget/4)
	for i := 0; i < budget/4+1; i++ {
		out = append(out, a.rng.Uint64()&mask)
	}
	return out
}

// embedBlockPattern places a block pattern on the chain inputs and fills
// the remaining primary inputs randomly.
func (a *attack) embedBlockPattern(block uint64) []bool {
	in := make([]bool, a.opts.Locked.NumInputs())
	for i := range in {
		in[i] = a.rng.Intn(2) == 1
	}
	for i, pos := range a.layout.InputPos {
		in[pos] = block&(1<<uint(i)) != 0
	}
	return in
}

// verifyKeyOnDIPs replays every extracted DIP against the oracle under
// the candidate key — the O(m) final check. Batches of 64 patterns are
// buffered eight at a time: the oracle side drains a whole group through
// BatchOracle.EvalMany when the oracle offers it, and the locked-netlist
// side replays the group in one 512-lane simulator pass.
func (a *attack) verifyKeyOnDIPs(key []bool, st *structured) error {
	sim, err := netlist.NewSimulator(a.opts.Locked)
	if err != nil {
		return err
	}
	nIn := a.opts.Locked.NumInputs()
	key8 := make([][8]uint64, len(key))
	for i, b := range key {
		if b {
			for j := range key8[i] {
				key8[i][j] = ^uint64(0)
			}
		}
	}
	all := st.dips.Elements()

	const group = 8
	ins := make([][]uint64, group)
	for g := range ins {
		ins[g] = make([]uint64, nIn)
	}
	lens := make([]int, group)
	in8 := make([][8]uint64, nIn)
	batchOrc, _ := a.opts.Oracle.(oracle.BatchOracle)

	// checkBatch compares one 64-pattern batch, falling back to the
	// targeted per-lane re-query protocol on mismatch.
	checkBatch := func(in, want []uint64, got func(o int) uint64, lanes int) error {
		laneMask := ^uint64(0)
		if lanes < 64 {
			laneMask = (uint64(1) << uint(lanes)) - 1
		}
		var badLanes uint64
		for i := range want {
			badLanes |= (want[i] ^ got(i)) & laneMask
		}
		if badLanes == 0 {
			return nil
		}
		if a.opts.MismatchRetries <= 0 {
			return fmt.Errorf("core: candidate key disagrees with the oracle on an extracted DIP")
		}
		// Targeted re-query: adjudicate each disagreeing lane alone
		// before letting it sink the candidate.
		for badLanes != 0 {
			lane := trailingZeros(badLanes)
			badLanes &^= 1 << uint(lane)
			inB := make([]bool, nIn)
			for i := range inB {
				inB[i] = in[i]&(1<<uint(lane)) != 0
			}
			confirmed, err := a.confirmDisagreement(inB, key)
			if err != nil {
				return err
			}
			if confirmed {
				return fmt.Errorf("core: candidate key disagrees with the oracle on an extracted DIP")
			}
		}
		return nil
	}

	flush := func(gN int) error {
		if gN == 0 {
			return nil
		}
		// Oracle side: one EvalMany for the whole group when available.
		var wants [][]uint64
		if batchOrc != nil && gN > 1 {
			var err error
			wants, err = batchOrc.EvalMany(ins[:gN])
			if err != nil {
				return err
			}
		} else {
			wants = make([][]uint64, gN)
			for g := 0; g < gN; g++ {
				w, err := a.opts.Oracle.Query64(ins[g])
				if err != nil {
					return err
				}
				wants[g] = append([]uint64(nil), w...)
			}
		}
		for g := 0; g < gN; g++ {
			a.countQueries(uint64(lens[g]))
		}
		// Candidate side: a full group replays through the 512-lane
		// kernel; a short tail group runs batch by batch.
		if gN == group {
			for i := 0; i < nIn; i++ {
				for g := 0; g < group; g++ {
					in8[i][g] = ins[g][i]
				}
			}
			got8, err := sim.Run512(in8, key8)
			if err != nil {
				return err
			}
			for g := 0; g < group; g++ {
				g := g
				if err := checkBatch(ins[g], wants[g], func(o int) uint64 { return got8[o][g] }, lens[g]); err != nil {
					return err
				}
			}
			return nil
		}
		keyWords := make([]uint64, len(key))
		for i := range key8 {
			keyWords[i] = key8[i][0]
		}
		for g := 0; g < gN; g++ {
			got, err := sim.Run64(ins[g], keyWords)
			if err != nil {
				return err
			}
			if err := checkBatch(ins[g], wants[g], func(o int) uint64 { return got[o] }, lens[g]); err != nil {
				return err
			}
		}
		return nil
	}

	gN := 0
	for base := 0; base < len(all); base += 64 {
		if err := a.ctxErr(); err != nil {
			return err
		}
		end := base + 64
		if end > len(all) {
			end = len(all)
		}
		chunk := all[base:end]
		in := ins[gN]
		for i := range in {
			in[i] = a.rng.Uint64()
		}
		for i, pos := range a.layout.InputPos {
			var w uint64
			for l, p := range chunk {
				if p&(1<<uint(i)) != 0 {
					w |= 1 << uint(l)
				}
			}
			in[pos] = w
		}
		lens[gN] = len(chunk)
		gN++
		if gN == group {
			if err := flush(group); err != nil {
				return err
			}
			gN = 0
		}
	}
	return flush(gN)
}

func (a *attack) report(active int, calib uint64, st *structured, aActive, aCalib uint64, key []bool) *Result {
	n := a.layout.N()
	mask := blockMask(n)
	var a1, a2 uint64
	chain := st.chainH
	cas := 1
	if active == 1 {
		a1, a2 = aActive, aCalib
	} else {
		cas = 2
		chain = dualChain(st.chainH)
		a2 = aActive
		a1 = ^aCalib & mask
	}
	return &Result{
		Key:             key,
		Chain:           chain,
		KeyGates1:       kgFromMask(a1, n),
		KeyGates2:       kgFromMask(a2, n),
		Case:            cas,
		AlignedDIPs:     st.nBig,
		TotalDIPs:       st.total,
		Calibrations:    a.calibrations,
		CandidatesTried: a.candidates,
		OracleQueries:   a.queries,
	}
}

func kgFromMask(m uint64, n int) []netlist.GateType {
	out := make([]netlist.GateType, n)
	for i := 0; i < n; i++ {
		if m&(1<<uint(i)) != 0 {
			out[i] = netlist.Xnor
		} else {
			out[i] = netlist.Xor
		}
	}
	return out
}

// dualChain swaps AND and OR at every position (De Morgan dual), which
// maps the Case-2 reduced-space chain back to the physical one.
func dualChain(c lock.ChainConfig) lock.ChainConfig {
	out := make(lock.ChainConfig, len(c))
	for i, g := range c {
		if g == lock.ChainAnd {
			out[i] = lock.ChainOr
		} else {
			out[i] = lock.ChainAnd
		}
	}
	return out
}
