// Package experiments wires the library into the paper's evaluation: it
// regenerates Table I and the analytical claims (Lemma 1, Lemma 2,
// attack complexity, baseline contrasts), producing the rows the paper
// reports. The benchmark harness (bench_test.go), the CLI tools and the
// examples all run experiments through this package so every surface
// reports identical numbers.
package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	// Benchmark names the ISCAS-85 host profile.
	Benchmark string
	// KeyBits is the total key length (two blocks of KeyBits/2).
	KeyBits int
	// Chain is the g_cas chain configuration string.
	Chain string
	// PaperDIPs is the DIP count printed in the paper.
	PaperDIPs uint64
	// Note records a known discrepancy between the printed row and what
	// the configuration mathematically produces (see DESIGN.md).
	Note string
}

// TableI32 reproduces the |K| = 32-bit half of Table I. The paper's c432
// row prints a 12-gate config next to the 18 725 count that requires the
// 15-gate config of the c880 row, so both rows use the latter.
var TableI32 = []TableIRow{
	{Benchmark: "c432", KeyBits: 32, Chain: "A-O-2A-O-2A-O-2A-O-2A-O-A", PaperDIPs: 18725,
		Note: "paper prints a 12-gate config; the 15-gate config shown matches the printed count"},
	{Benchmark: "c880", KeyBits: 32, Chain: "A-O-2A-O-2A-O-2A-O-2A-O-A", PaperDIPs: 18725},
	{Benchmark: "c1908", KeyBits: 32, Chain: "2A-O-5A-O-2A-2O-2A", PaperDIPs: 12089,
		Note: "config yields 12 809; the printed 12 089 is a digit transposition"},
	{Benchmark: "c2670", KeyBits: 32, Chain: "O-6A-O-5A-O-A", PaperDIPs: 16643},
	{Benchmark: "c3540", KeyBits: 32, Chain: "2A-O-5A-O-2A-2O-2A", PaperDIPs: 12089,
		Note: "config yields 12 809; the printed 12 089 is a digit transposition"},
	{Benchmark: "c5315", KeyBits: 32, Chain: "14A-O", PaperDIPs: 32769,
		Note: "OR-terminated: the miter-visible count is 32 767; the paper prints Lemma 2's primal-chain value"},
	{Benchmark: "c6288", KeyBits: 32, Chain: "3A-2O-3A-2O-3A-O-A", PaperDIPs: 17969},
	{Benchmark: "c7552", KeyBits: 32, Chain: "3A-2O-3A-2O-3A-O-A", PaperDIPs: 17969},
}

// TableI64 reproduces the |K| = 64-bit half of Table I (only hosts with
// more than 64 inputs are locked, as in the paper).
var TableI64 = []TableIRow{
	{Benchmark: "c2670", KeyBits: 64, Chain: "2A-O-2(4A-O)-2(2A-O)-12A", PaperDIPs: 598281},
	{Benchmark: "c5315", KeyBits: 64, Chain: "4A-O-3(5A-O)-8A", PaperDIPs: 8521761},
	{Benchmark: "c7552", KeyBits: 64, Chain: "2A-O-9A-O-4A-O-2A-O-10A", PaperDIPs: 2367497,
		Note: "paper prints 2A-O-9A-O-4A-O-3A-O-9A, which yields 4 464 649; this chain matches the printed count"},
	{Benchmark: "c5315", KeyBits: 64, Chain: "2A-O-2(4A-O)-2(2A-O)-12A", PaperDIPs: 598281},
	{Benchmark: "c2670", KeyBits: 64, Chain: "4A-O-3(5A-O)-8A", PaperDIPs: 8521761},
	{Benchmark: "c7552", KeyBits: 64, Chain: "2A-O-2(4A-O)-2(2A-O)-12A", PaperDIPs: 598281},
	{Benchmark: "c2670", KeyBits: 64, Chain: "2A-O-9A-O-4A-O-2A-O-10A", PaperDIPs: 2367497,
		Note: "chain adjusted to match the printed count (see c7552 row)"},
	{Benchmark: "c5315", KeyBits: 64, Chain: "2A-O-9A-O-4A-O-2A-O-10A", PaperDIPs: 2367497,
		Note: "chain adjusted to match the printed count (see c7552 row)"},
}

// TableIResult is the measured counterpart of a TableIRow.
type TableIResult struct {
	Row           TableIRow
	MeasuredDIPs  uint64 // |I_l| of the successful extraction
	AlignedDIPs   uint64 // |A|, the Lemma-2 quantity
	ChainOK       bool   // recovered chain matches the instance (or its dual)
	KeyRecovered  bool   // attack returned a key the instance accepts
	KeyProven     bool   // SAT-proved equivalent to the original (if requested)
	AttackTime    time.Duration
	OracleQueries uint64
	HostGates     int
}

// TableIOptions tunes a row run.
type TableIOptions struct {
	// Context bounds the run: a deadline or cancellation propagates into
	// the attack pipeline, which returns core.ErrPartial with whatever
	// structure it had recovered. Nil means context.Background().
	Context context.Context
	// Seed drives host generation, key-gate choice and attack sampling.
	Seed int64
	// Prove runs the SAT equivalence proof of the recovered key.
	Prove bool
	// MatchPaperRegime locks with equal key-gate polarities in both
	// blocks — the aligned regime whose DIP counts Table I prints. When
	// false the polarities are independent random, exercising the
	// general attack path.
	MatchPaperRegime bool
	// Workers bounds both the row pool of RunTableIRows and the shard
	// workers of each row's simulation extractor (≤ 0 means GOMAXPROCS).
	Workers int
	// Telemetry, when non-nil, instruments the row's attack (phase spans,
	// oracle/SAT/enumeration counters) and times AttackTime from a
	// "tablei_row" span on the same clock.
	Telemetry *telemetry.Registry
	// LegacyEncoding disables the persistent incremental-SAT engine
	// (see core.Options.LegacyEncoding).
	LegacyEncoding bool
}

// RunTableIRow locks a synthetic host with the row's configuration and
// mounts the DIP-learning attack.
func RunTableIRow(row TableIRow, opts TableIOptions) (*TableIResult, error) {
	chain, err := lock.ParseChain(row.Chain)
	if err != nil {
		return nil, err
	}
	n := chain.NumInputs()
	if n*2 != row.KeyBits {
		return nil, fmt.Errorf("experiments: chain %q implies %d key bits, row says %d", row.Chain, 2*n, row.KeyBits)
	}
	profile, err := synth.ProfileByName(row.Benchmark)
	if err != nil {
		return nil, err
	}
	host, err := synth.Generate(synth.FromProfile(profile, opts.Seed))
	if err != nil {
		return nil, err
	}
	casOpts := lock.CASOptions{Chain: chain, Seed: opts.Seed + 1}
	if opts.MatchPaperRegime {
		kg := randomKeyGates(n, opts.Seed+2)
		casOpts.KeyGates1 = kg
		casOpts.KeyGates2 = append([]netlist.GateType(nil), kg...)
	}
	locked, inst, err := lock.ApplyCAS(host, casOpts)
	if err != nil {
		return nil, err
	}
	orc, err := oracle.NewSim(host)
	if err != nil {
		return nil, err
	}

	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	sp := tel.StartSpan("tablei_row")
	sp.SetArg("benchmark", row.Benchmark)
	sp.SetArg("chain", row.Chain)
	res, err := core.Run(core.Options{
		Context:        opts.Context,
		Locked:         locked.Circuit,
		Oracle:         orc,
		Seed:           opts.Seed + 3,
		Workers:        opts.Workers,
		Telemetry:      tel,
		LegacyEncoding: opts.LegacyEncoding,
	})
	elapsed := sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: attack on %s/%s failed: %w", row.Benchmark, row.Chain, err)
	}
	out := &TableIResult{
		Row:           row,
		MeasuredDIPs:  res.TotalDIPs,
		AlignedDIPs:   res.AlignedDIPs,
		AttackTime:    elapsed,
		OracleQueries: res.OracleQueries,
		KeyRecovered:  inst.IsCorrectCASKey(res.Key),
		ChainOK:       res.Chain.Equal(chain) || res.Chain.Equal(dual(chain)),
	}
	stats, err := host.ComputeStats()
	if err != nil {
		return nil, err
	}
	out.HostGates = stats.LogicGates
	if opts.Prove {
		ok, err := miter.ProveUnlockedHashed(locked.Circuit, res.Key, host)
		if err != nil {
			return nil, err
		}
		out.KeyProven = ok
	}
	return out, nil
}

func randomKeyGates(n int, seed int64) []netlist.GateType {
	out := make([]netlist.GateType, n)
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if state&1 == 0 {
			out[i] = netlist.Xor
		} else {
			out[i] = netlist.Xnor
		}
	}
	return out
}

func dual(c lock.ChainConfig) lock.ChainConfig {
	out := make(lock.ChainConfig, len(c))
	for i, g := range c {
		if g == lock.ChainAnd {
			out[i] = lock.ChainOr
		} else {
			out[i] = lock.ChainAnd
		}
	}
	return out
}

// PrintTableI writes results in the paper's row format.
func PrintTableI(w io.Writer, results []*TableIResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\t|K|\tg_cas chain\tpaper #DIPs\tmeasured #DIPs\tkey recovered\ttime")
	for _, r := range results {
		recovered := "no"
		if r.KeyRecovered {
			recovered = "yes"
			if r.KeyProven {
				recovered = "yes (SAT-proven)"
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%s\t%v\n",
			r.Row.Benchmark, r.Row.KeyBits, r.Row.Chain, r.Row.PaperDIPs,
			r.MeasuredDIPs, recovered, r.AttackTime.Round(time.Millisecond))
	}
	tw.Flush()
}
