package sat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

// Property: any model the CDCL solver returns satisfies the formula.
func TestModelSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	trials := 0
	f := func(seed int64) bool {
		trials++
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		form := randomFormula(r, 4+r.Intn(10), 3+r.Intn(30), 3)
		s := NewFromFormula(form)
		if s.Solve() != Sat {
			return true // UNSAT answers are checked differentially elsewhere
		}
		ok, err := form.Eval(s.Model())
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adding a model's negation as a clause makes that exact model
// infeasible but keeps every other model (count drops by exactly one).
func TestBlockingClauseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		form := randomFormula(rng, 4+rng.Intn(5), 2+rng.Intn(10), 3)
		before := CountModels(form)
		if before == 0 {
			continue
		}
		s := NewFromFormula(form)
		if s.Solve() != Sat {
			t.Fatal("solver disagrees with brute force")
		}
		model := s.Model()
		blocked := form.Clone()
		var cl []cnf.Lit
		for v := 1; v <= form.NumVars; v++ {
			l := cnf.Lit(v)
			if model[v] {
				l = -l
			}
			cl = append(cl, l)
		}
		blocked.Add(cl...)
		if after := CountModels(blocked); after != before-1 {
			t.Fatalf("trial %d: blocking removed %d models", trial, before-after)
		}
	}
}

// Property: solving under assumption a then ¬a partitions the model
// count.
func TestAssumptionPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	for trial := 0; trial < 40; trial++ {
		vars := 4 + rng.Intn(5)
		form := randomFormula(rng, vars, 2+rng.Intn(12), 3)
		v := cnf.Lit(1 + rng.Intn(vars))
		pos := form.Clone()
		pos.Add(v)
		neg := form.Clone()
		neg.Add(-v)
		if CountModels(pos)+CountModels(neg) != CountModels(form) {
			t.Fatalf("trial %d: partition violated", trial)
		}
		// And the solver agrees with each side's satisfiability.
		s := NewFromFormula(form)
		wantPos := Sat
		if CountModels(pos) == 0 {
			wantPos = Unsat
		}
		if got := s.Solve(v); got != wantPos {
			t.Fatalf("trial %d: Solve(+v) = %v, want %v", trial, got, wantPos)
		}
		wantNeg := Sat
		if CountModels(neg) == 0 {
			wantNeg = Unsat
		}
		if got := s.Solve(-v); got != wantNeg {
			t.Fatalf("trial %d: Solve(-v) = %v, want %v", trial, got, wantNeg)
		}
	}
}

// Property: permuting clause order never changes the verdict.
func TestClauseOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 60; trial++ {
		form := randomFormula(rng, 5+rng.Intn(8), 4+rng.Intn(25), 3)
		s1 := NewFromFormula(form)
		verdict := s1.Solve()
		shuffled := form.Clone()
		rng.Shuffle(len(shuffled.Clauses), func(i, j int) {
			shuffled.Clauses[i], shuffled.Clauses[j] = shuffled.Clauses[j], shuffled.Clauses[i]
		})
		s2 := NewFromFormula(shuffled)
		if s2.Solve() != verdict {
			t.Fatalf("trial %d: clause order changed the verdict", trial)
		}
	}
}

// Property: after Unsat under assumptions, FailedAssumptions is a valid
// (minimal-ish) core — a subset of the assumptions that is Unsat on its
// own, and whose negation flips the result back to Sat whenever the
// formula itself is satisfiable. The engine's probe loop depends on this
// contract, so each leg is checked differentially against brute force.
func TestFailedAssumptionsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	cores := 0
	for trial := 0; trial < 200; trial++ {
		vars := 4 + rng.Intn(8)
		form := randomFormula(rng, vars, 3+rng.Intn(20), 3)
		nAssume := 1 + rng.Intn(vars)
		seen := make(map[int]bool)
		var assumptions []cnf.Lit
		for len(assumptions) < nAssume {
			v := 1 + rng.Intn(vars)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumptions = append(assumptions, l)
		}
		s := NewFromFormula(form)
		if s.Solve(assumptions...) != Unsat {
			continue
		}
		failed := s.FailedAssumptions()
		if !s.Okay() {
			// Unsat was derived at level 0: the formula alone is
			// unsatisfiable and the core is allowed to be empty.
			if CountModels(form) != 0 {
				t.Fatalf("trial %d: solver died at level 0 on a satisfiable formula", trial)
			}
			continue
		}
		cores++
		// Subset: every core literal is one of the assumptions, sign
		// included.
		inAssumptions := make(map[cnf.Lit]bool, len(assumptions))
		for _, a := range assumptions {
			inAssumptions[a] = true
		}
		if len(failed) == 0 {
			t.Fatalf("trial %d: Unsat under assumptions but empty core while Okay()", trial)
		}
		for _, l := range failed {
			if !inAssumptions[l] {
				t.Fatalf("trial %d: core literal %d is not an assumption", trial, l)
			}
		}
		// Validity: the core alone is already unsatisfiable — checked by
		// brute force and by a fresh solver.
		cored := form.Clone()
		for _, l := range failed {
			cored.Add(l)
		}
		if CountModels(cored) != 0 {
			t.Fatalf("trial %d: core %v is satisfiable with the formula (not a valid core)", trial, failed)
		}
		if NewFromFormula(form).Solve(failed...) != Unsat {
			t.Fatalf("trial %d: fresh solver accepts the core %v", trial, failed)
		}
		// Negation flips the result: every model of the formula falsifies
		// some core literal, so adding the core's negation (as a clause)
		// preserves exactly the formula's models.
		if CountModels(form) > 0 {
			flipped := form.Clone()
			neg := make([]cnf.Lit, len(failed))
			for i, l := range failed {
				neg[i] = -l
			}
			flipped.Add(neg...)
			if CountModels(flipped) != CountModels(form) {
				t.Fatalf("trial %d: negated core changed the model count", trial)
			}
			if NewFromFormula(flipped).Solve() != Sat {
				t.Fatalf("trial %d: negated core did not flip the result to Sat", trial)
			}
		}
	}
	if cores < 20 {
		t.Fatalf("only %d trials produced assumption cores — test exercised too little", cores)
	}
}

// TestReduceDBKeepsSoundness drives the solver far enough to trigger
// learned-clause reduction and checks the answer is still right.
func TestReduceDBKeepsSoundness(t *testing.T) {
	// PHP(9,8) generates tens of thousands of conflicts, well past the
	// 3000-clause reduction threshold.
	s := NewFromFormula(pigeonhole(9, 8))
	s.maxLearnts = 200 // force frequent reductions
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(9,8) = %v", st)
	}
	if s.Stats().Removed == 0 {
		t.Error("reduceDB never ran despite the tiny limit")
	}
}
