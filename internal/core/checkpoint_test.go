package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// cancelOracle cancels the attack's context after a fixed number of
// oracle calls — a deterministic stand-in for a crash mid-attack.
type cancelOracle struct {
	inner  oracle.Oracle
	left   int
	cancel context.CancelFunc
}

func (o *cancelOracle) tick() {
	o.left--
	if o.left == 0 {
		o.cancel()
	}
}
func (o *cancelOracle) NumInputs() int  { return o.inner.NumInputs() }
func (o *cancelOracle) NumOutputs() int { return o.inner.NumOutputs() }
func (o *cancelOracle) Query(in []bool) ([]bool, error) {
	o.tick()
	return o.inner.Query(in)
}
func (o *cancelOracle) Query64(in []uint64) ([]uint64, error) {
	o.tick()
	return o.inner.Query64(in)
}

// TestCheckpointResumeBitIdentical is the tentpole acceptance property:
// an attack interrupted mid-run and resumed from its last snapshot
// recovers the exact key of an uninterrupted run, and the resumed run
// asks the chip strictly fewer questions because the snapshot's
// response bank replays the answers the crashed run already paid for.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	lockedC, inst, h := lockedInstance(t, "2A-O-A", 41)
	const seed = 42

	// Reference: uninterrupted run.
	simRef := oracle.MustNewSim(h)
	ref, err := Run(Options{Locked: lockedC, Oracle: simRef, Seed: seed, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(ref.Key) {
		t.Fatal("reference attack recovered a wrong key")
	}
	refQueries := simRef.Queries()

	// Crashed run: checkpoint on every progress event, die after five
	// oracle calls.
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	telCrash := telemetry.New()
	w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
		Path: path, EveryEvents: 1, Interval: time.Hour, Telemetry: telCrash,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co := &cancelOracle{inner: oracle.MustNewSim(h), left: 5, cancel: cancel}
	_, err = Run(Options{
		Locked: lockedC, Oracle: co, Seed: seed, Telemetry: telCrash,
		Context: ctx, Checkpointer: w,
	})
	if err == nil {
		t.Fatal("interrupted attack reported success")
	}
	w.Close()
	if w.Writes() == 0 {
		t.Fatal("crashed run persisted no snapshot")
	}

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Responses)+len(snap.Scalar) == 0 {
		t.Fatal("snapshot banked no oracle responses")
	}

	// Resumed run: fresh process, fresh oracle, snapshot in hand.
	simRes := oracle.MustNewSim(h)
	telRes := telemetry.New()
	res, err := Run(Options{
		Locked: lockedC, Oracle: simRes, Seed: seed, Telemetry: telRes,
		ResumeFrom: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Key, ref.Key) {
		t.Fatalf("resumed key differs from uninterrupted key:\n resumed %v\n scratch %v", res.Key, ref.Key)
	}
	if got := simRes.Queries(); got >= refQueries {
		t.Fatalf("resumed run asked the chip %d patterns, scratch asked %d — resume saved nothing", got, refQueries)
	}
	if got := telRes.Counter("resume_loads_total").Value(); got != 1 {
		t.Errorf("resume_loads_total = %d, want 1", got)
	}
	if got := telRes.Counter("resume_oracle_hits_total").Value(); got == 0 {
		t.Error("resume_oracle_hits_total = 0, want banked replay hits")
	}
	if got := telRes.Counter("resume_dips_restored_total").Value(); got == 0 {
		t.Error("resume_dips_restored_total = 0, want restored DIPs")
	}
}

// TestResumeMismatchRefused pins the typed refusal: a snapshot resumed
// against a different netlist or different attack options must fail
// with ErrResumeMismatch before any oracle traffic.
func TestResumeMismatchRefused(t *testing.T) {
	lockedC, _, h := lockedInstance(t, "2A-O-A", 51)
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
		Path: path, EveryEvents: 1, Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{
		Locked: lockedC, Oracle: oracle.MustNewSim(h), Seed: 7,
		Telemetry: telemetry.New(), Checkpointer: w,
	}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	otherC, _, otherH := lockedInstance(t, "2A-O-A", 52)
	if _, err := Run(Options{
		Locked: otherC, Oracle: oracle.MustNewSim(otherH), Seed: 7,
		Telemetry: telemetry.New(), ResumeFrom: snap,
	}); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("foreign netlist: got %v, want ErrResumeMismatch", err)
	}

	if _, err := Run(Options{
		Locked: lockedC, Oracle: oracle.MustNewSim(h), Seed: 8,
		Telemetry: telemetry.New(), ResumeFrom: snap,
	}); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("different options: got %v, want ErrResumeMismatch", err)
	}
}

func TestBankedOracle(t *testing.T) {
	_, _, h := lockedInstance(t, "2A-O-A", 61)
	sim := oracle.MustNewSim(h)
	tel := telemetry.New()
	b := newBankedOracle(sim, tel)

	in := make([]uint64, b.NumInputs())
	in[0] = 0xAAAA
	out1, err := b.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	chip := sim.Queries()
	out2, err := b.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Queries() != chip {
		t.Fatal("banked repeat query reached the chip")
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatal("banked answer differs from the original")
	}
	if b.Hits() != 1 || tel.Counter("resume_oracle_hits_total").Value() != 1 {
		t.Fatalf("hits = %d, counter = %d, want 1/1", b.Hits(), tel.Counter("resume_oracle_hits_total").Value())
	}

	// Scalar path.
	sIn := make([]bool, b.NumInputs())
	sIn[1] = true
	sOut1, err := b.Query(sIn)
	if err != nil {
		t.Fatal(err)
	}
	chip = sim.Queries()
	sOut2, err := b.Query(sIn)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Queries() != chip || !reflect.DeepEqual(sOut1, sOut2) {
		t.Fatal("scalar bank miss or answer drift")
	}

	// Export → load into a fresh bank: the replayed bank serves the same
	// answers with zero chip traffic.
	resp, scalar := b.export()
	b2 := newBankedOracle(sim, tel)
	b2.load(resp, scalar)
	chip = sim.Queries()
	out3, err := b2.Query64(in)
	if err != nil {
		t.Fatal(err)
	}
	sOut3, err := b2.Query(sIn)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Queries() != chip {
		t.Fatal("loaded bank reached the chip")
	}
	if !reflect.DeepEqual(out3, out1) || !reflect.DeepEqual(sOut3, sOut1) {
		t.Fatal("loaded bank serves different answers")
	}

	// EvalMany with a partial hit: the banked batch is served locally,
	// only the miss reaches the chip, order preserved.
	miss := make([]uint64, b.NumInputs())
	miss[0] = 0x5555
	wantMiss, err := sim.Query64(append([]uint64(nil), miss...))
	if err != nil {
		t.Fatal(err)
	}
	chip = sim.Queries()
	outs, err := b.EvalMany([][]uint64{in, miss})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Queries() - chip; got != 64 {
		t.Fatalf("partial-hit batch cost %d chip patterns, want 64", got)
	}
	if !reflect.DeepEqual(outs[0], out1) || !reflect.DeepEqual(outs[1], wantMiss) {
		t.Fatal("EvalMany scrambled banked/missed answers")
	}
}

// BenchmarkCheckpointOverhead guards the enumerate hot loop: with
// checkpointing disabled the per-event cost is one nil check, and with
// a writer armed but no snapshot due it is two atomic operations.
func BenchmarkCheckpointOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		a := &attack{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.ckptPump(1)
		}
	})
	b.Run("armed-idle", func(b *testing.B) {
		w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
			Path:        filepath.Join(b.TempDir(), "snap.ckpt"),
			EveryEvents: math.MaxInt64, Interval: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		a := &attack{ck: &ckptState{w: w}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.ckptPump(1)
		}
	})
}
