// Command caslock-served runs the DIP-learning attack as a service: a
// long-lived HTTP daemon that accepts locked-netlist jobs, executes
// them on a bounded worker pool, and answers repeated submissions from
// a content-addressed result cache (identical in-flight jobs run once;
// a byte-identical resubmission of a finished job costs zero oracle or
// SAT queries).
//
//	caslock-served -addr :8080
//	caslock-served -addr :8080 -workers 4 -queue 32 -debug-addr :6060
//
//	curl -X POST :8080/v1/attacks -d '{"locked":"...","oracle":"..."}'
//	curl :8080/v1/attacks/j-000001            # status
//	curl :8080/v1/attacks/j-000001/result     # recovered key + stats
//	curl :8080/v1/attacks/j-000001/trace      # per-job span tree (Perfetto)
//	curl -X DELETE :8080/v1/attacks/j-000001  # cancel
//
// The first SIGINT/SIGTERM drains gracefully (stop accepting, cancel
// running attacks, flush); a second signal force-exits. Exit codes:
// 0 — clean shutdown; 1 — serve error; 2 — usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// drainTimeout bounds the graceful HTTP drain after the first signal.
const drainTimeout = 5 * time.Second

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address for the job API")
		workers    = flag.Int("workers", 2, "concurrent attack executions")
		queueDepth = flag.Int("queue", 16, "admitted-but-not-started job bound (full queue → 429)")
		cacheSize  = flag.Int("cache", 128, "content-addressed result cache capacity, in jobs")
		maxWidth   = flag.Int("max-width", core.MaxBlockWidth, "largest admitted CAS block width")
		maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "cap (and default) for per-job attack deadlines (0 = none)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof/ on this address (e.g. :6060)")
		journalDir = flag.String("journal-dir", "", "durability directory: WAL-journal every job and replay it on boot (empty = in-memory only)")
		warmEng    = flag.Int("warm-engines", 0, "keep up to this many idle SAT backends warm across jobs over the same netlists (0 = off)")
		quiet      = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()
	if *workers < 1 || *queueDepth < 1 || *maxTimeout < 0 || *warmEng < 0 || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "caslock-served: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	reg := telemetry.New()
	svc, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		MaxBlockWidth:  *maxWidth,
		MaxTimeout:     *maxTimeout,
		DefaultTimeout: *maxTimeout,
		Registry:       reg,
		Log:            logf,
		JournalDir:     *journalDir,
		WarmEngines:    *warmEng,
	})
	if err != nil {
		logger.Fatalf("service: %v", err)
	}

	var dbg *telemetry.DebugServer
	if *debugAddr != "" {
		var err error
		dbg, err = telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			logger.Fatalf("debug server: %v", err)
		}
		logger.Printf("debug server listening on %s (/metrics, /healthz, /debug/pprof/)", dbg.URL())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Printf("attack service listening on http://%s (POST /v1/attacks)", ln.Addr())
	fmt.Printf("listening on http://%s\n", ln.Addr())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	exitCode := 0
	select {
	case sig := <-sigCh:
		logger.Printf("received %v: draining (send the signal again to force-exit)", sig)
		go func() {
			s := <-sigCh
			logger.Printf("received %v again: forcing exit", s)
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain: %v (closing hard)", err)
			srv.Close()
		}
		cancel()
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exitCode = 1
		}
	}
	// Cancel every queued and running attack, wait for the workers.
	svc.Close()
	if dbg != nil {
		if err := dbg.Close(); err != nil {
			logger.Printf("debug server close: %v", err)
		}
	}
	logger.Printf("shut down cleanly")
	os.Exit(exitCode)
}
