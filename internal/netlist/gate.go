// Package netlist provides a gate-level intermediate representation for
// combinational circuits, together with construction, validation,
// evaluation (single-pattern and 64-way bit-parallel), and structural
// transformation utilities. It is the substrate every locking scheme and
// attack in this repository is built on.
package netlist

import "fmt"

// ID identifies a gate within a Circuit. IDs are dense indices into the
// circuit's gate table; the zero circuit has no valid IDs.
type ID int

// InvalidID is returned by lookups that fail to resolve a name.
const InvalidID ID = -1

// GateType enumerates the supported combinational gate functions.
type GateType uint8

// Supported gate types. Input gates have no fanin; Const0/Const1 are
// constant drivers; Buf/Not are unary; the remaining types accept two or
// more fanins (evaluated as their n-ary extensions, with XOR/XNOR meaning
// odd/even parity).
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor

	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
}

// String returns the canonical upper-case mnemonic for the gate type.
func (t GateType) String() string {
	if t < numGateTypes {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Valid reports whether t is one of the defined gate types.
func (t GateType) Valid() bool { return t < numGateTypes }

// MinFanin returns the smallest legal number of fanins for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the largest legal number of fanins for the type, with
// -1 meaning unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Inverted reports whether the type is the complemented form of a base
// function (NAND, NOR, XNOR, NOT).
func (t GateType) Inverted() bool {
	switch t {
	case Nand, Nor, Xnor, Not:
		return true
	}
	return false
}

// Complement returns the gate type computing the negation of t's function
// (AND↔NAND, OR↔NOR, XOR↔XNOR, BUF↔NOT, CONST0↔CONST1). It panics for
// Input, which has no functional complement.
func (t GateType) Complement() GateType {
	switch t {
	case And:
		return Nand
	case Nand:
		return And
	case Or:
		return Nor
	case Nor:
		return Or
	case Xor:
		return Xnor
	case Xnor:
		return Xor
	case Buf:
		return Not
	case Not:
		return Buf
	case Const0:
		return Const1
	case Const1:
		return Const0
	}
	panic("netlist: no complement for " + t.String())
}

// ControllingValue returns the input value that forces the output of an
// AND/NAND/OR/NOR gate regardless of its other inputs, and whether such a
// value exists for the type (XOR-family and unary gates have none).
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// EvalBool evaluates the gate function over the given fanin values. It is
// the scalar reference semantics; Eval64 in this package is the
// bit-parallel counterpart and must agree with it.
func (t GateType) EvalBool(in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf, Input:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	}
	panic("netlist: EvalBool on invalid gate type")
}

// Eval64 evaluates the gate function bit-parallel over 64 patterns packed
// into uint64 words (bit i of each word belongs to pattern i).
func (t GateType) Eval64(in []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf, Input:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range in {
			v |= x
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		if t == Xnor {
			return ^v
		}
		return v
	}
	panic("netlist: Eval64 on invalid gate type")
}

// Gate is a single node of the circuit DAG.
type Gate struct {
	Type  GateType
	Name  string // unique within the circuit; never empty after AddGate
	Fanin []ID   // driver gates, in order
}
