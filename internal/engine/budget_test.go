package engine

import (
	"context"
	"testing"
	"time"
)

// fakeClock drives the budgeter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBudgeter() (*budgeter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b := &budgeter{now: clk.now}
	return b, clk
}

func deadlineCtx(clk *fakeClock, d time.Duration) (context.Context, context.CancelFunc) {
	// context deadlines use the real clock; anchor them far in the future
	// relative to real time is unnecessary — we only read ctx.Deadline(),
	// never wait on it, so build the deadline from the fake clock's epoch.
	return context.WithDeadline(context.Background(), clk.t.Add(d))
}

func TestSliceNilContextUnbudgeted(t *testing.T) {
	b, _ := testBudgeter()
	if got := b.slice(nil, 0); got != 0 {
		t.Fatalf("nil ctx slice = %d, want 0 (unbudgeted)", got)
	}
}

func TestSliceNoDeadlineUsesCancelSlice(t *testing.T) {
	b, _ := testBudgeter()
	if got := b.slice(context.Background(), 0); got != cancelSliceConflicts {
		t.Fatalf("no-deadline slice = %d, want %d", got, cancelSliceConflicts)
	}
}

func TestSliceExpiredDeadline(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, time.Second)
	defer cancel()
	clk.advance(2 * time.Second)
	if got := b.slice(ctx, 0); got != 1 {
		t.Fatalf("expired slice = %d, want 1", got)
	}
}

func TestSliceColdStartProbes(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, time.Minute)
	defer cancel()
	if got := b.slice(ctx, 0); got != probeConflicts {
		t.Fatalf("cold slice = %d, want %d", got, probeConflicts)
	}
}

func TestSliceDerivesFromRateAndClamps(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, time.Hour)
	defer cancel()
	b.slice(ctx, 0) // anchor the clock
	clk.advance(time.Second)
	// 10k conflicts/second observed; an hour remains → raw grant ~18M,
	// must clamp to maxSlice.
	if got := b.slice(ctx, 10_000); got != maxSlice {
		t.Fatalf("slice = %d, want clamp to %d", got, maxSlice)
	}
}

func TestSliceFloorsAtMinSlice(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, 90*time.Second)
	defer cancel()
	b.slice(ctx, 0)
	clk.advance(time.Second)
	b.slice(ctx, 10) // ~10 conflicts/second: tiny rate
	clk.advance(88 * time.Second)
	// ~1s remains at ~10 c/s → raw grant ~5, floored.
	if got := b.slice(ctx, 20); got != minSlice {
		t.Fatalf("slice = %d, want floor %d", got, minSlice)
	}
}

func TestSliceMonotoneWithinPhase(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, 10*time.Second)
	defer cancel()
	b.enterPhase(ctx)
	b.slice(ctx, 0)
	clk.advance(time.Second)
	prev := b.slice(ctx, 5000)
	conflicts := uint64(5000)
	for i := 0; i < 6; i++ {
		clk.advance(time.Second)
		conflicts += 3000 // rate wobbles upward
		got := b.slice(ctx, conflicts)
		if got > prev {
			t.Fatalf("grant grew within a phase: %d after %d", got, prev)
		}
		prev = got
	}
}

func TestPhaseCapPreservesLaterPhases(t *testing.T) {
	b, clk := testBudgeter()
	ctx, cancel := deadlineCtx(clk, 20*time.Second)
	defer cancel()
	// Establish a rate of ~1000 conflicts/second.
	b.slice(ctx, 0)
	clk.advance(time.Second)
	b.slice(ctx, 1000)

	// Phase 1 entered with ~19s left → cap ≈ 9500 conflicts.
	b.enterPhase(ctx)
	if !b.capped || b.phaseCap == 0 {
		t.Fatalf("phase cap not armed: capped=%v cap=%d", b.capped, b.phaseCap)
	}
	cap1 := b.phaseCap
	// Burn far past the cap while barely advancing the clock: a greedy
	// phase that solves much faster than the deadline requires.
	conflicts := uint64(1000)
	var crawls int
	for i := 0; i < 40; i++ {
		clk.advance(100 * time.Millisecond)
		conflicts += 2000
		if got := b.slice(ctx, conflicts); got == minSlice && b.phaseCap == 0 {
			crawls++
		}
	}
	if crawls == 0 {
		t.Fatalf("phase never hit its cap (cap was %d)", cap1)
	}

	// Phase 2 must get fresh headroom even though phase 1 overspent.
	b.enterPhase(ctx)
	if b.phaseCap == 0 {
		t.Fatal("later phase entered with zero cap: starvation not fixed")
	}
	if got := b.slice(ctx, conflicts); got <= minSlice {
		t.Fatalf("later phase crawling from the start: slice = %d", got)
	}
}

func TestEnterPhaseWithoutDeadlineUncapped(t *testing.T) {
	b, _ := testBudgeter()
	b.rate = 5000
	b.enterPhase(context.Background())
	if b.capped {
		t.Fatal("capped without a deadline")
	}
	b.enterPhase(nil)
	if b.capped {
		t.Fatal("capped with a nil context")
	}
}

// TestSmoothingFactors drives the budgeter through an identical rate
// step under two smoothing factors on the fake clock: each must follow
// the exact EWMA recurrence for its factor, and the heavier factor must
// converge on the new rate faster.
func TestSmoothingFactors(t *testing.T) {
	rates := map[float64]float64{}
	for _, alpha := range []float64{0.1, 0.8} {
		b, clk := testBudgeter()
		b.setSmoothing(alpha)
		b.observe(0, clk.t) // anchor
		clk.advance(time.Second)
		b.observe(1000, clk.t) // first observation sets rate = 1000
		// Step the true rate to 5000 c/s for four observations.
		want, conflicts := 1000.0, uint64(1000)
		for i := 0; i < 4; i++ {
			clk.advance(time.Second)
			conflicts += 5000
			b.observe(conflicts, clk.t)
			want = (1-alpha)*want + alpha*5000
			if b.rate != want {
				t.Fatalf("alpha=%v step %d: rate = %v, want %v", alpha, i, b.rate, want)
			}
		}
		rates[alpha] = b.rate
	}
	if rates[0.8] <= rates[0.1] {
		t.Fatalf("alpha=0.8 should converge faster toward 5000: got %v vs %v", rates[0.8], rates[0.1])
	}
}

// TestDeriveSmoothing pins the learned-weight derivation: the default
// weight is exactly what DeriveSmoothing computes from the committed
// trajectory, a spacious trajectory (long phase dwells) learns a
// lighter weight than a tight one, sub-significant phases cannot drive
// the weight, the result always lands in the clamp range, and
// degenerate trajectories fall back to the fast-tracking end.
func TestDeriveSmoothing(t *testing.T) {
	if got := DeriveSmoothing(benchTrajectory); got != defaultBudgetSmoothing {
		t.Fatalf("default weight %v is not DeriveSmoothing(benchTrajectory) = %v", defaultBudgetSmoothing, got)
	}
	if defaultBudgetSmoothing < minSmoothing || defaultBudgetSmoothing > maxSmoothing {
		t.Fatalf("default weight %v outside [%v, %v]", defaultBudgetSmoothing, minSmoothing, maxSmoothing)
	}
	// The committed trajectory's tightest phase dwells ~1 session per
	// visit, flooring the window at 2 → the weight clamps at the
	// fast-tracking end.
	if defaultBudgetSmoothing != maxSmoothing {
		t.Fatalf("committed trajectory should clamp to maxSmoothing, got %v", defaultBudgetSmoothing)
	}
	spacious := Trajectory{
		PhaseSeconds: map[string]float64{"enumerate": 1, "verify": 1},
		SolveCalls:   10000, Extractions: 100, // 50 sessions per phase visit
	}
	if a := DeriveSmoothing(spacious); a >= defaultBudgetSmoothing {
		t.Fatalf("long dwells should learn a lighter weight, got %v", a)
	} else if a < minSmoothing || a > maxSmoothing {
		t.Fatalf("derived weight %v outside clamp range", a)
	}
	// A vanishing phase (below minSignificantShare) must not tighten the
	// dwell estimate.
	withNoise := spacious
	withNoise.PhaseSeconds = map[string]float64{"enumerate": 1, "verify": 1, "algo2": 0.001}
	if DeriveSmoothing(withNoise) != DeriveSmoothing(spacious) {
		t.Fatal("a sub-significant phase changed the learned weight")
	}
	for _, degenerate := range []Trajectory{
		{},
		{PhaseSeconds: map[string]float64{"verify": 1}},
		{SolveCalls: 100, Extractions: 10},
	} {
		if a := DeriveSmoothing(degenerate); a != maxSmoothing {
			t.Fatalf("degenerate trajectory learned %v, want fallback %v", a, maxSmoothing)
		}
	}
}

// TestSetSmoothingRejectsOutOfRange confirms invalid factors are ignored
// and the zero-value budgeter falls back to the default weight.
func TestSetSmoothingRejectsOutOfRange(t *testing.T) {
	b, clk := testBudgeter()
	for _, bad := range []float64{-1, 0, 1, 2} {
		b.setSmoothing(bad)
		if b.smoothing != 0 {
			t.Fatalf("setSmoothing(%v) accepted", bad)
		}
	}
	// Zero-value smoothing must behave as the default factor.
	b.observe(0, clk.t)
	clk.advance(time.Second)
	b.observe(1000, clk.t)
	clk.advance(time.Second)
	b.observe(3000, clk.t)
	want := (1-defaultBudgetSmoothing)*1000 + defaultBudgetSmoothing*2000
	if b.rate != want {
		t.Fatalf("zero-value smoothing rate = %v, want default-weight %v", b.rate, want)
	}
}

func TestObserveChargesCapAndUpdatesRate(t *testing.T) {
	b, clk := testBudgeter()
	b.observe(0, clk.t) // anchor
	clk.advance(time.Second)
	b.observe(1000, clk.t)
	if b.rate != 1000 {
		t.Fatalf("first rate = %v, want 1000", b.rate)
	}
	clk.advance(time.Second)
	b.observe(3000, clk.t) // instantaneous 2000 c/s
	want := (1-defaultBudgetSmoothing)*1000 + defaultBudgetSmoothing*2000
	if b.rate != want {
		t.Fatalf("EWMA rate = %v, want %v", b.rate, want)
	}
	b.capped, b.phaseCap = true, 500
	clk.advance(time.Second)
	b.observe(3200, clk.t)
	if b.phaseCap != 300 {
		t.Fatalf("cap after 200 spent = %d, want 300", b.phaseCap)
	}
	clk.advance(time.Second)
	b.observe(9999, clk.t)
	if b.phaseCap != 0 {
		t.Fatalf("overspent cap = %d, want 0", b.phaseCap)
	}
}
