// Package telemetry is the repository's dependency-free observability
// layer: an atomic metrics registry (counters, gauges, fixed-bucket
// histograms), a span/trace recorder exportable as Chrome-trace JSON,
// Prometheus-text and JSON snapshot writers, and an optional debug HTTP
// listener (/metrics, /healthz, expvar, net/http/pprof).
//
// Every entry point is nil-receiver-safe: a nil *Registry — telemetry
// disabled, the default everywhere — hands out nil metrics and nil
// spans whose methods are no-ops, so instrumented code needs no guards
// and the disabled path costs one nil check per event. All metric types
// are safe for concurrent use (verified under -race); spans are
// single-goroutine objects, but may be created and ended concurrently
// with other spans of the same registry.
//
// Metric names follow Prometheus conventions (`snake_case`, counters
// suffixed `_total`); labelled series are spelled inline with Label,
// e.g. Label("enum_shard_batches_total", "shard", "3"). DESIGN.md §7
// documents the full name and span taxonomy.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d to the gauge. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts and a
// CAS-maintained float64 sum, in the Prometheus cumulative-`le` model.
type Histogram struct {
	bounds []float64       // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// DurationBuckets spans 1µs .. 1min in decades — the default latency
// bucket layout for phase and shard timings.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 60}

// SizeBuckets spans 1 .. 16M in powers of 8 — the default layout for
// DIP-set and batch-count size distributions (Table I's sets reach
// 8.5M patterns).
var SizeBuckets = []float64{1, 8, 64, 512, 4096, 32768, 262144, 2097152, 16777216}

func newHistogram(buckets []float64) *Histogram {
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Safe on a nil receiver and under
// concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. v ≤ le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra slot for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a get-or-create store of named metrics plus the trace
// recorder. The zero value is not usable; construct with New. A nil
// *Registry is the disabled state: every method is a no-op returning
// nil metrics/spans.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	spans  []SpanRecord

	epoch  time.Time
	nextID atomic.Uint64
}

// New returns an empty live registry; its trace epoch is now.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		epoch:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls keep the original bounds).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Label renders a labelled series name, e.g.
// Label("enum_shard_batches_total", "shard", "3") →
// `enum_shard_batches_total{shard="3"}`. kv must be key/value pairs; an
// odd-length kv returns the bare name.
func Label(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// baseName strips the label block from a series name: the Prometheus
// `# TYPE` family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
