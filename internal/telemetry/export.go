package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in the registry,
// JSON-serializable (the `-metrics-out x.json` form, and the telemetry
// block embedded in BENCH_core.json).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. Nil registries return
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	s.Counters = make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	r.mu.Unlock()
	s.Spans = r.SpanRecords()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, `# TYPE` lines,
// histograms in cumulative-`le` form. Span data is not exported here —
// use WriteChromeTrace. Nil registries write nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var b strings.Builder
	writeFamily(&b, s.Counters, "counter", func(name string, v uint64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	})
	writeFamily(&b, s.Gauges, "gauge", func(name string, v int64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	})
	histNames := sortedKeys(s.Histograms)
	for _, name := range histNames {
		h := s.Histograms[name]
		base := baseName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s %d\n", seriesWithLE(name, formatFloat(bound)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s %d\n", seriesWithLE(name, "+Inf"), cum)
		fmt.Fprintf(&b, "%s %s\n", suffixSeries(name, "_sum"), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", suffixSeries(name, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeFamily emits one metric family kind with a `# TYPE` line per
// distinct base name (labelled series of one family share the line).
func writeFamily[V any](b *strings.Builder, m map[string]V, kind string, line func(name string, v V)) {
	names := sortedKeys(m)
	lastBase := ""
	for _, name := range names {
		if base := baseName(name); base != lastBase {
			fmt.Fprintf(b, "# TYPE %s %s\n", base, kind)
			lastBase = base
		}
		line(name, m[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// seriesWithLE renders a histogram bucket series: the `_bucket` suffix
// lands on the base name and the `le` label merges into any existing
// label block.
func seriesWithLE(name, le string) string {
	base := baseName(name)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels := name[i+1 : len(name)-1]
		return base + `_bucket{` + labels + `,le="` + le + `"}`
	}
	return base + `_bucket{le="` + le + `"}`
}

// suffixSeries appends a suffix to the base name, keeping any label
// block: foo{a="b"} + _sum → foo_sum{a="b"}.
func suffixSeries(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// chromeEvent is one Chrome-trace "complete" event; ts/dur are in
// microseconds from the trace epoch.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes every ended span as Chrome trace format
// "X" (complete) events — one JSON event per line inside a JSON array,
// loadable in chrome://tracing and Perfetto. Lane numbers become tids,
// so the main pipeline is row 0 and shard workers are rows 1..; viewers
// nest same-row events by time containment, which reproduces the span
// tree. Nil registries write an empty trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	recs := r.SpanRecords()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, rec := range recs {
		ev := chromeEvent{
			Name: rec.Name,
			Cat:  "attack",
			Ph:   "X",
			Ts:   float64(rec.Start) / 1e3,
			Dur:  float64(rec.Dur) / 1e3,
			Pid:  1,
			Tid:  rec.Lane,
			Args: rec.Args,
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// WriteChromeTraceFile atomically writes the Chrome trace to path
// (temp file + rename, so a crashed run never leaves a torn trace).
func (r *Registry) WriteChromeTraceFile(path string) error {
	return writeFileAtomic(path, r.WriteChromeTrace)
}

// WriteMetricsFile atomically writes a metrics snapshot to path: JSON
// when the path ends in .json, Prometheus text otherwise.
func (r *Registry) WriteMetricsFile(path string) error {
	if strings.HasSuffix(path, ".json") {
		return writeFileAtomic(path, r.WriteJSON)
	}
	return writeFileAtomic(path, r.WritePrometheus)
}

// writeFileAtomic streams fill into a sibling temp file, fsyncs it,
// and renames it over path, propagating every error (including
// Close's). The temp+fsync+rename sequence means a crash mid-write
// never leaves path torn or empty: readers see the old content or the
// new, complete one.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".telemetry-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Directory fsync is advisory on
	// some filesystems; failure does not un-write the file.
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}
