package lock

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/netlist"
)

// The scheme registry: every locking scheme this repository implements,
// addressable by a flag-friendly name, with its default parameterization,
// host-width requirement, and — crucially — a KeyCheck that accepts any
// functional key rather than one golden key. "On the One-Key Premise of
// Logic Locking" (PAPERS.md) is the motivation: CAS-Lock admits 2^N
// correct keys (any pair of halves applying equal effective masks),
// Mirrored CAS admits every K_inner = K_outer pair, and an attack that
// recovers any of them has broken the scheme, so the harnesses must not
// compare against the canonical key. Experiment matrices, the CLIs and
// the service all enumerate this registry instead of hard-coding scheme
// lists, so adding a scheme is one RegisterScheme call.

// KeyCheck reports whether a key functionally unlocks the instance it
// was issued for. Implementations accept every correct key the scheme
// admits: for multi-key schemes (CAS, Anti-SAT, M-CAS) this is the
// ground-truth mask/mirror predicate; for schemes whose construction
// makes the key unique (RLL, SLL, SARLock, SFLL-HD — every wrong key
// provably corrupts some pattern) it degenerates to golden-key equality.
// Final break verification additionally SAT-proves circuit equivalence,
// so KeyCheck is a fast ground-truth cross-check, not the sole judge.
type KeyCheck func(key []bool) bool

// Scheme is one registered locking scheme with its default benchmark
// parameterization.
type Scheme struct {
	// Name is the stable flag/API identifier (lower-case, no spaces).
	Name string
	// Label is the display name used as a matrix row header.
	Label string
	// Description is a one-line summary for -list output.
	Description string
	// MinHostInputs is the smallest host primary-input count the default
	// parameters fit (CAS chains consume one host input per block bit).
	MinHostInputs int
	// MCAS marks mirrored-CAS key semantics: the DIP-learning attack
	// must route such instances through its M-CAS pipeline.
	MCAS bool
	// Apply locks a copy of the host with the scheme's default
	// parameters, seeded deterministically. The returned KeyCheck is
	// bound to the created instance (nil only if the scheme has no
	// ground-truth predicate beyond golden-key equality — Apply still
	// returns a non-nil check for every built-in).
	Apply func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error)
}

var schemeReg = struct {
	sync.RWMutex
	order  []string
	byName map[string]Scheme
}{byName: make(map[string]Scheme)}

// RegisterScheme adds a scheme to the registry. Names and labels are
// matched case-insensitively by SchemeByName; duplicates are rejected.
func RegisterScheme(s Scheme) error {
	if s.Name == "" || s.Apply == nil {
		return fmt.Errorf("lock: scheme needs a name and an Apply constructor")
	}
	if s.Label == "" {
		s.Label = s.Name
	}
	key := strings.ToLower(s.Name)
	schemeReg.Lock()
	defer schemeReg.Unlock()
	if _, dup := schemeReg.byName[key]; dup {
		return fmt.Errorf("lock: scheme %q already registered", s.Name)
	}
	schemeReg.byName[key] = s
	schemeReg.order = append(schemeReg.order, key)
	return nil
}

// MustRegisterScheme is RegisterScheme, panicking on error — for
// package-init registration of built-ins.
func MustRegisterScheme(s Scheme) {
	if err := RegisterScheme(s); err != nil {
		panic(err)
	}
}

// Schemes returns every registered scheme in registration order.
func Schemes() []Scheme {
	schemeReg.RLock()
	defer schemeReg.RUnlock()
	out := make([]Scheme, 0, len(schemeReg.order))
	for _, k := range schemeReg.order {
		out = append(out, schemeReg.byName[k])
	}
	return out
}

// SchemeLabels returns the display labels in registration order — the
// matrix row order.
func SchemeLabels() []string {
	ss := Schemes()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Label
	}
	return out
}

// SchemeNames returns the stable flag names in registration order.
func SchemeNames() []string {
	ss := Schemes()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// SchemeByName resolves a scheme by Name or Label, case-insensitively.
func SchemeByName(name string) (Scheme, bool) {
	key := strings.ToLower(name)
	schemeReg.RLock()
	defer schemeReg.RUnlock()
	if s, ok := schemeReg.byName[key]; ok {
		return s, true
	}
	for _, s := range schemeReg.byName {
		if strings.EqualFold(s.Label, name) {
			return s, true
		}
	}
	return Scheme{}, false
}

// SchemeUniverse renders the valid names for error messages, sorted.
func SchemeUniverse() string {
	names := SchemeNames()
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// goldenKeyCheck is the KeyCheck for schemes whose correct key is
// unique by construction.
func goldenKeyCheck(golden []bool) KeyCheck {
	g := append([]bool(nil), golden...)
	return func(key []bool) bool {
		if len(key) != len(g) {
			return false
		}
		for i := range g {
			if key[i] != g[i] {
				return false
			}
		}
		return true
	}
}

func init() {
	MustRegisterScheme(Scheme{
		Name:          "rll",
		Label:         "RLL",
		Description:   "random XOR/XNOR key-gate insertion (EPIC), 10 keys",
		MinHostInputs: 1,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, _, err := ApplyRLL(host, 10, seed)
			if err != nil {
				return nil, nil, err
			}
			return l, goldenKeyCheck(l.Key), nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "antisat",
		Label:         "Anti-SAT",
		Description:   "Anti-SAT one-point flip block, n=10 (2^10 correct keys)",
		MinHostInputs: 10,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, inst, err := ApplyAntiSAT(host, 10, seed)
			if err != nil {
				return nil, nil, err
			}
			return l, inst.IsCorrectCASKey, nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "sarlock",
		Label:         "SARLock",
		Description:   "SARLock comparator flip, n=10",
		MinHostInputs: 10,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, _, err := ApplySARLock(host, 10, seed)
			if err != nil {
				return nil, nil, err
			}
			return l, goldenKeyCheck(l.Key), nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "sfll",
		Label:         "SFLL-HD",
		Description:   "SFLL-HD strip-and-restore, n=8 h=2",
		MinHostInputs: 8,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, _, err := ApplySFLLHD(host, 8, 2, seed)
			if err != nil {
				return nil, nil, err
			}
			return l, goldenKeyCheck(l.Key), nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "cas",
		Label:         "CAS-Lock",
		Description:   "CAS-Lock cascade 2A-O-4A-O-2A (the paper's target; 2^11 correct keys)",
		MinHostInputs: MustParseChain("2A-O-4A-O-2A").NumInputs(),
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, inst, err := ApplyCAS(host, CASOptions{Chain: MustParseChain("2A-O-4A-O-2A"), Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return l, inst.IsCorrectCASKey, nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "mcas",
		Label:         "M-CAS",
		Description:   "Mirrored CAS-Lock cascade 3A-O-A (flips cancel when K_in = K_out)",
		MinHostInputs: MustParseChain("3A-O-A").NumInputs(),
		MCAS:          true,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, inst, err := ApplyMCAS(host, CASOptions{Chain: MustParseChain("3A-O-A"), Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return l, inst.IsCorrectMCASKey, nil
		},
	})
	MustRegisterScheme(Scheme{
		Name:          "sll",
		Label:         "SLL",
		Description:   "strong (interference-aware) key-gate insertion, 10 keys",
		MinHostInputs: 1,
		Apply: func(host *netlist.Circuit, seed int64) (*Locked, KeyCheck, error) {
			l, _, err := ApplySLL(host, 10, seed)
			if err != nil {
				return nil, nil, err
			}
			return l, goldenKeyCheck(l.Key), nil
		},
	})
}
