package synth

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func TestGenerateBasicProperties(t *testing.T) {
	cfg := Config{Name: "t", Inputs: 12, Outputs: 4, Gates: 80, Seed: 1}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 12 || c.NumOutputs() != 4 {
		t.Fatalf("shape: %s", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every input must reach some output.
	mask := c.TransitiveFanin(c.Outputs()...)
	for _, id := range c.Inputs() {
		if !mask[id] {
			t.Errorf("input %s unreachable from outputs", c.Gate(id).Name)
		}
	}
	// Outputs must be distinct gates.
	seen := map[netlist.ID]bool{}
	for _, o := range c.Outputs() {
		if seen[o] {
			t.Error("duplicate output gate")
		}
		seen[o] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Inputs: 8, Outputs: 2, Gates: 50, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := bench.WriteString(a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := bench.WriteString(b)
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Error("same seed produced different circuits")
	}
	cfg.Seed = 43
	c, _ := Generate(cfg)
	tc, _ := bench.WriteString(c)
	if ta == tc {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Inputs: 0, Outputs: 1, Gates: 10},
		{Inputs: 4, Outputs: 0, Gates: 10},
		{Inputs: 4, Outputs: 8, Gates: 4},  // fewer gates than outputs
		{Inputs: 40, Outputs: 1, Gates: 2}, // cannot consume 40 inputs
	} {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestISCAS85Profiles(t *testing.T) {
	want := map[string][2]int{
		"c432": {36, 7}, "c880": {60, 26}, "c1908": {33, 25},
		"c2670": {233, 140}, "c3540": {50, 22}, "c5315": {178, 123},
		"c6288": {32, 32}, "c7552": {207, 108},
	}
	if len(ISCAS85) != len(want) {
		t.Fatalf("expected %d profiles, got %d", len(want), len(ISCAS85))
	}
	for _, p := range ISCAS85 {
		io, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.Inputs != io[0] || p.Outputs != io[1] {
			t.Errorf("%s: %d/%d, want %d/%d", p.Name, p.Inputs, p.Outputs, io[0], io[1])
		}
	}
	if _, err := ProfileByName("c880"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("c999"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateAllISCAS85Profiles(t *testing.T) {
	for _, p := range ISCAS85 {
		c, err := Generate(FromProfile(p, 7))
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if c.NumInputs() != p.Inputs || c.NumOutputs() != p.Outputs {
			t.Errorf("%s: I/O profile not honored: %s", p.Name, c)
		}
		stats, err := c.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.LogicGates < p.Gates {
			t.Errorf("%s: %d logic gates, want ≥ %d", p.Name, stats.LogicGates, p.Gates)
		}
		if stats.Depth < 3 {
			t.Errorf("%s: suspiciously shallow (depth %d)", p.Name, stats.Depth)
		}
	}
}

func TestGeneratedCircuitIsNotConstant(t *testing.T) {
	// Sanity: outputs actually vary with the input for a sample circuit.
	c := MustGenerate(Config{Name: "t", Inputs: 10, Outputs: 3, Gates: 60, Seed: 3})
	sim := netlist.MustNewSimulator(c)
	in := make([]uint64, c.NumInputs())
	for i := range in {
		// Walsh-like patterns: input i alternates with period 2^i.
		in[i] = walsh(i)
	}
	out, err := sim.Run64(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	varies := false
	for _, w := range out {
		if w != 0 && w != ^uint64(0) {
			varies = true
		}
	}
	if !varies {
		t.Error("all outputs constant over 64 structured patterns")
	}
}

func walsh(i int) uint64 {
	if i >= 6 {
		return 0xAAAAAAAAAAAAAAAA
	}
	var w uint64
	period := uint(1) << uint(i)
	for b := uint(0); b < 64; b++ {
		if (b/period)%2 == 1 {
			w |= 1 << b
		}
	}
	return w
}
