package experiments

import (
	"strings"
	"testing"
)

// TestMatrixStory asserts the scheme-vs-attack cells that carry the
// paper's narrative. One matrix run covers 36 attack mounts, so this is
// the broadest integration test in the repository.
func TestMatrixStory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 36 attack instances")
	}
	cells, err := RunMatrix(14, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(scheme, attack string) MatrixCell {
		for _, c := range cells {
			if c.Scheme == scheme && c.Attack == attack {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing", scheme, attack)
		return MatrixCell{}
	}
	// The SAT attack breaks traditional locking…
	if !get("RLL", "SAT").Broken {
		t.Error("SAT attack should break RLL")
	}
	// …but not the point-function schemes within the iteration cap.
	for _, s := range []string{"Anti-SAT", "SARLock", "CAS-Lock"} {
		if get(s, "SAT").Broken {
			t.Errorf("SAT attack should be capped on %s", s)
		}
		if get(s, "AppSAT").Broken {
			t.Errorf("AppSAT should only reach an approximate key on %s", s)
		}
	}
	// Removal defeats unmirrored flip-based schemes; M-CAS resists it.
	for _, s := range []string{"Anti-SAT", "SARLock", "CAS-Lock"} {
		if !get(s, "SPS-removal").Broken {
			t.Errorf("SPS removal should break %s", s)
		}
	}
	if get("M-CAS", "SPS-removal").Broken {
		t.Error("SPS removal alone should NOT break M-CAS")
	}
	// Bypass corrects one-point functions but blows up on CAS-Lock.
	if !get("Anti-SAT", "bypass").Broken || !get("SARLock", "bypass").Broken {
		t.Error("bypass should break the one-point-function schemes")
	}
	if get("CAS-Lock", "bypass").Broken {
		t.Error("bypass should exceed its budget on CAS-Lock")
	}
	// CAS-Unlock fails on CAS-Lock (mixed polarities)…
	if get("CAS-Lock", "CAS-Unlock").Broken {
		t.Error("CAS-Unlock should fail on CAS-Lock")
	}
	// …but the nested M-CAS construction accepts any mirrored key, so
	// uniform keys (and the plain SAT attack) break it — the emergent
	// observation EXPERIMENTS.md documents.
	if !get("M-CAS", "CAS-Unlock").Broken {
		t.Error("mirrored uniform keys should unlock nested M-CAS")
	}
	// The paper's attack breaks CAS-Lock and M-CAS exactly.
	if !get("CAS-Lock", "DIP-learning").Broken {
		t.Error("DIP learning should break CAS-Lock")
	}
	if !get("M-CAS", "DIP-learning").Broken {
		t.Error("DIP learning should break M-CAS")
	}
}

func TestPrintMatrix(t *testing.T) {
	var sb strings.Builder
	PrintMatrix(&sb, []MatrixCell{
		{Scheme: "CAS-Lock", Attack: "DIP-learning", Broken: true, Detail: "exact key"},
	})
	out := sb.String()
	if !strings.Contains(out, "BROKEN") || !strings.Contains(out, "exact key") {
		t.Errorf("matrix output malformed:\n%s", out)
	}
}
