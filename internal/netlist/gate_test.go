package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGateTypeString(t *testing.T) {
	cases := map[GateType]string{
		Input: "INPUT", Const0: "CONST0", Const1: "CONST1",
		Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
		Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := GateType(200).String(); got != "GateType(200)" {
		t.Errorf("invalid type String() = %q", got)
	}
}

func TestGateTypeValid(t *testing.T) {
	for typ := GateType(0); typ < numGateTypes; typ++ {
		if !typ.Valid() {
			t.Errorf("%s should be valid", typ)
		}
	}
	if GateType(numGateTypes).Valid() {
		t.Error("out-of-range type reported valid")
	}
}

func TestFaninBounds(t *testing.T) {
	cases := []struct {
		t        GateType
		min, max int
	}{
		{Input, 0, 0}, {Const0, 0, 0}, {Const1, 0, 0},
		{Buf, 1, 1}, {Not, 1, 1},
		{And, 2, -1}, {Nand, 2, -1}, {Or, 2, -1}, {Nor, 2, -1},
		{Xor, 2, -1}, {Xnor, 2, -1},
	}
	for _, c := range cases {
		if got := c.t.MinFanin(); got != c.min {
			t.Errorf("%s.MinFanin() = %d, want %d", c.t, got, c.min)
		}
		if got := c.t.MaxFanin(); got != c.max {
			t.Errorf("%s.MaxFanin() = %d, want %d", c.t, got, c.max)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := [][2]GateType{
		{And, Nand}, {Or, Nor}, {Xor, Xnor}, {Buf, Not}, {Const0, Const1},
	}
	for _, p := range pairs {
		if p[0].Complement() != p[1] || p[1].Complement() != p[0] {
			t.Errorf("complement pair %s/%s broken", p[0], p[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Input.Complement() should panic")
		}
	}()
	Input.Complement()
}

func TestControllingValue(t *testing.T) {
	for _, c := range []struct {
		t  GateType
		v  bool
		ok bool
	}{
		{And, false, true}, {Nand, false, true},
		{Or, true, true}, {Nor, true, true},
		{Xor, false, false}, {Xnor, false, false},
		{Buf, false, false}, {Not, false, false},
	} {
		v, ok := c.t.ControllingValue()
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("%s.ControllingValue() = (%v,%v), want (%v,%v)", c.t, v, ok, c.v, c.ok)
		}
	}
}

func TestControllingValueForcesOutput(t *testing.T) {
	// Applying the controlling value on any single input must fix the
	// output regardless of the remaining inputs.
	for _, typ := range []GateType{And, Nand, Or, Nor} {
		cv, _ := typ.ControllingValue()
		forced := typ.EvalBool([]bool{cv, false})
		for other := 0; other < 4; other++ {
			in := []bool{cv, other&1 != 0, other&2 != 0}
			if got := typ.EvalBool(in); got != forced {
				t.Errorf("%s with controlling input: output %v then %v", typ, forced, got)
			}
		}
	}
}

func TestEvalBoolTruthTables(t *testing.T) {
	type row struct {
		in   []bool
		want bool
	}
	cases := map[GateType][]row{
		And:  {{[]bool{false, false}, false}, {[]bool{true, false}, false}, {[]bool{true, true}, true}},
		Nand: {{[]bool{false, false}, true}, {[]bool{true, true}, false}},
		Or:   {{[]bool{false, false}, false}, {[]bool{true, false}, true}},
		Nor:  {{[]bool{false, false}, true}, {[]bool{false, true}, false}},
		Xor:  {{[]bool{true, false}, true}, {[]bool{true, true}, false}, {[]bool{true, true, true}, true}},
		Xnor: {{[]bool{true, false}, false}, {[]bool{true, true}, true}},
		Not:  {{[]bool{true}, false}, {[]bool{false}, true}},
		Buf:  {{[]bool{true}, true}, {[]bool{false}, false}},
	}
	for typ, rows := range cases {
		for _, r := range rows {
			if got := typ.EvalBool(r.in); got != r.want {
				t.Errorf("%s.EvalBool(%v) = %v, want %v", typ, r.in, got, r.want)
			}
		}
	}
	if Const0.EvalBool(nil) != false || Const1.EvalBool(nil) != true {
		t.Error("constant gates broken")
	}
}

// TestEval64MatchesEvalBool is the core bit-parallel/scalar agreement
// property: every bit lane of Eval64 must equal EvalBool on the
// corresponding pattern.
func TestEval64MatchesEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	types := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Const0, Const1}
	for trial := 0; trial < 200; trial++ {
		typ := types[rng.Intn(len(types))]
		n := typ.MinFanin()
		if typ.MaxFanin() < 0 {
			n = 2 + rng.Intn(4)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		got := typ.Eval64(words)
		for bit := 0; bit < 64; bit++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = words[i]&(1<<uint(bit)) != 0
			}
			want := typ.EvalBool(in)
			if (got&(1<<uint(bit)) != 0) != want {
				t.Fatalf("%s: lane %d disagrees (scalar %v)", typ, bit, want)
			}
		}
	}
}

func TestWordPatternRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		p := PatternFromUint(x, 64)
		return UintFromPattern(p) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Truncation keeps only the low bits.
	p := PatternFromUint(0b1011, 3)
	if len(p) != 3 || !p[0] || !p[1] || p[2] {
		t.Errorf("PatternFromUint truncation wrong: %v", p)
	}
}
