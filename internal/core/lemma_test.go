package core

import (
	"math/rand"
	"testing"

	"repro/internal/lock"
)

func TestMaxDIPsKnownConfigs(t *testing.T) {
	cases := map[string]uint64{
		// Table I configurations and the paper's printed DIP counts
		// (12 809 corrects the paper's 12 089 digit transposition; the
		// OR-terminated 14A-O is handled in Case 2 where the structured
		// count is computed on the dual chain — see EXPERIMENTS.md).
		"A-O-2A-O-2A-O-2A-O-2A-O-A": 18725,
		"2A-O-5A-O-2A-2O-2A":        12809,
		"O-6A-O-5A-O-A":             16643,
		"3A-2O-3A-2O-3A-O-A":        17969,
		"2A-O-2(4A-O)-2(2A-O)-12A":  598281,
		"4A-O-3(5A-O)-8A":           8521761,
		// The paper prints "2A-O-9A-O-4A-O-3A-O-9A" next to 2 367 497,
		// but that config yields 4 464 649; the printed count matches the
		// chain below (a one-gate shift in the fourth segment).
		"2A-O-9A-O-4A-O-2A-O-10A": 2367497,
		// Degenerate cases.
		"5A":  1, // Anti-SAT: one DIP
		"A-O": 5, // OR at gate 1 → 1 + 2^2
	}
	for s, want := range cases {
		chain := lock.MustParseChain(s)
		if got := MaxDIPs(chain); got != want {
			t.Errorf("MaxDIPs(%s) = %d, want %d", s, got, want)
		}
	}
}

func TestMaxDIPsAlwaysOdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		chain := make(lock.ChainConfig, n-1)
		for i := range chain {
			if rng.Intn(2) == 0 {
				chain[i] = lock.ChainOr
			}
		}
		if MaxDIPs(chain)%2 != 1 {
			t.Fatalf("even DIP count for %s", chain)
		}
	}
}

func TestChainFromDIPCountRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(14)
		chain := make(lock.ChainConfig, n-1)
		for i := range chain {
			// Keep the terminator AND: the reduced space always is.
			if i < n-2 && rng.Intn(2) == 0 {
				chain[i] = lock.ChainOr
			}
		}
		back, err := ChainFromDIPCount(MaxDIPs(chain), n)
		if err != nil {
			t.Fatalf("%s: %v", chain, err)
		}
		if !back.Equal(chain) {
			t.Fatalf("%s round-trips to %s", chain, back)
		}
	}
}

func TestChainFromDIPCountErrors(t *testing.T) {
	if _, err := ChainFromDIPCount(4, 4); err == nil {
		t.Error("even count accepted")
	}
	if _, err := ChainFromDIPCount(0, 4); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := ChainFromDIPCount(1<<5, 4); err == nil {
		t.Error("oversized count accepted")
	}
	if _, err := ChainFromDIPCount(3, 1); err == nil {
		t.Error("tiny block accepted")
	}
}

func TestNonControllingPattern(t *testing.T) {
	// A-O-A: bit0 = 1 (always), bit1 = 1 (gate0 AND), bit2 = 0 (gate1
	// OR), bit3 = 1 (gate2 AND).
	if got := NonControllingPattern(lock.MustParseChain("A-O-A")); got != 0b1011 {
		t.Errorf("w_nc(A-O-A) = %04b", got)
	}
	// O-A: bit0 = 1, bit1 = 0 (gate0 OR), bit2 = 1.
	if got := NonControllingPattern(lock.MustParseChain("O-A")); got != 0b101 {
		t.Errorf("w_nc(O-A) = %03b", got)
	}
}

// TestOnePointsMatchChainFunction is the load-bearing structural check:
// OnePoints must be exactly the 1-points of the AND-terminated chain
// function, for random chains, verified by direct evaluation.
func TestOnePointsMatchChainFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(11)
		chain := make(lock.ChainConfig, n-1)
		for i := range chain {
			if i < n-2 && rng.Intn(2) == 0 {
				chain[i] = lock.ChainOr
			}
		}
		want := map[uint64]bool{}
		for v := uint64(0); v < 1<<uint(n); v++ {
			if evalChain(chain, v) {
				want[v] = true
			}
		}
		got := OnePoints(chain)
		if uint64(len(got)) != MaxDIPs(chain) {
			t.Fatalf("%s: OnePoints size %d != MaxDIPs %d", chain, len(got), MaxDIPs(chain))
		}
		seen := map[uint64]bool{}
		for _, w := range got {
			if seen[w] {
				t.Fatalf("%s: duplicate one-point %b", chain, w)
			}
			seen[w] = true
			if !want[w] {
				t.Fatalf("%s: %b is not a 1-point", chain, w)
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("%s: %d one-points enumerated, %d exist", chain, len(seen), len(want))
		}
	}
}

// evalChain evaluates the plain chain function (no key gates).
func evalChain(chain lock.ChainConfig, v uint64) bool {
	acc := v&1 != 0
	for j, g := range chain {
		in := v&(1<<uint(j+1)) != 0
		if g == lock.ChainAnd {
			acc = acc && in
		} else {
			acc = acc || in
		}
	}
	return acc
}
