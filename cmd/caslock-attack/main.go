// Command caslock-attack mounts the paper's DIP-learning attack on a
// CAS-locked bench netlist, using a second netlist as the activated-chip
// oracle, and reports the recovered key and structure.
//
//	caslock-attack -locked locked.bench -oracle orig.bench
//	caslock-attack -locked mcas.bench -oracle orig.bench -mcas
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked netlist (.bench, key inputs named keyinput*)")
		oraclePath = flag.String("oracle", "", "original/activated netlist used as the oracle (.bench)")
		mcas       = flag.Bool("mcas", false, "treat the design as Mirrored CAS-Lock (SPS-strip the outer instance first)")
		seed       = flag.Int64("seed", 1, "attack sampling seed")
		prove      = flag.Bool("prove", true, "SAT-prove the recovered key against the oracle netlist")
	)
	flag.Parse()
	if *lockedPath == "" || *oraclePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	locked := readBench(*lockedPath)
	original := readBench(*oraclePath)
	orc, err := oracle.NewSim(original)
	fatalIf(err)

	start := time.Now()
	var (
		res     *core.Result
		fullKey []bool
	)
	if *mcas {
		mres, err := core.RunMCAS(locked, orc, core.Options{Seed: *seed})
		fatalIf(err)
		res = mres.Inner
		fullKey = mres.Key
		fmt.Printf("outer instance removed (flip probability %.4g)\n", mres.RemovedFlipProb)
	} else {
		res, err = core.Run(core.Options{Locked: locked, Oracle: orc, Seed: *seed})
		fatalIf(err)
		fullKey = res.Key
	}
	elapsed := time.Since(start)

	fmt.Printf("attack succeeded in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  case:            %d (%s-terminated)\n", res.Case, map[int]string{1: "AND/NAND", 2: "OR/NOR"}[res.Case])
	fmt.Printf("  chain:           %s\n", res.Chain)
	fmt.Printf("  key gates g:     %s\n", kgString(res.KeyGates1))
	fmt.Printf("  key gates ḡ:     %s\n", kgString(res.KeyGates2))
	fmt.Printf("  |I_l| (DIPs):    %d\n", res.TotalDIPs)
	fmt.Printf("  structured |A|:  %d\n", res.AlignedDIPs)
	fmt.Printf("  oracle queries:  %d\n", res.OracleQueries)
	fmt.Printf("  key:             %s\n", keyString(fullKey))

	if *prove {
		ok, err := miter.ProveUnlockedHashed(locked, fullKey, original)
		fatalIf(err)
		if ok {
			fmt.Println("  verification:    SAT-PROVEN equivalent to the oracle netlist")
		} else {
			fmt.Println("  verification:    FAILED — key does not unlock the design")
			os.Exit(1)
		}
	}
}

func kgString(kg []netlist.GateType) string {
	parts := make([]string, len(kg))
	for i, t := range kg {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

func keyString(key []bool) string {
	var sb strings.Builder
	for _, b := range key {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func readBench(path string) *netlist.Circuit {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	c, err := bench.Read(f, bench.ReadOptions{Name: path, KeyPrefix: bench.DefaultKeyPrefix})
	fatalIf(err)
	return c
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "caslock-attack:", err)
		os.Exit(1)
	}
}
