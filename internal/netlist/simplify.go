package netlist

import "fmt"

// Simplify returns a functionally equivalent circuit with constants
// propagated, unary reductions applied, structurally duplicate gates
// merged, and logic outside the output cones dropped. Inputs and keys
// are preserved (even if unused) so port shapes stay stable; outputs
// keep their order.
//
// The pass is the standard netlist cleanup used after key activation or
// removal-attack surgery, and a precondition-free peephole optimizer:
//
//   - AND(x,0)=0, AND(x,1..1,x)=AND(x,…), OR(x,1)=1, XOR(x,0)=x, …
//   - single-fanin reductions: AND(x)=x, NAND(x)=¬x, XOR(x)=x, …
//   - NOT(NOT(x))=x, BUF chains collapsed
//   - identical (type, fanin) gates share one instance
func Simplify(c *Circuit) (*Circuit, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := New(c.Name)

	// Node representation during rewriting: either a literal over an
	// output-circuit gate (id, negated) or a constant.
	type node struct {
		id      ID
		neg     bool
		isConst bool
		cval    bool
	}
	constNode := func(v bool) node { return node{isConst: true, cval: v} }

	var zero, one ID = InvalidID, InvalidID
	negCache := map[ID]ID{}
	materialize := func(nd node) (ID, error) {
		if !nd.isConst {
			if !nd.neg {
				return nd.id, nil
			}
			if cached, ok := negCache[nd.id]; ok {
				return cached, nil
			}
			nid, err := out.AddGate(Not, fmt.Sprintf("_n%d", nd.id), nd.id)
			if err != nil {
				return InvalidID, err
			}
			negCache[nd.id] = nid
			return nid, nil
		}
		if nd.cval {
			if one == InvalidID {
				var err error
				one, err = out.AddGate(Const1, "_const1")
				if err != nil {
					return InvalidID, err
				}
			}
			return one, nil
		}
		if zero == InvalidID {
			var err error
			zero, err = out.AddGate(Const0, "_const0")
			if err != nil {
				return InvalidID, err
			}
		}
		return zero, nil
	}

	// Structural hash for gate sharing: key on type + materialized fanin.
	type sig struct {
		t GateType
		a ID
		b ID
	}
	shared := map[sig]ID{}
	nodes := make([]node, c.NumGates())

	for i, id := range c.Inputs() {
		nid, err := out.AddInput(c.Gate(id).Name)
		if err != nil {
			return nil, err
		}
		nodes[id] = node{id: nid}
		_ = i
	}
	for _, id := range c.Keys() {
		nid, err := out.AddKey(c.Gate(id).Name)
		if err != nil {
			return nil, err
		}
		nodes[id] = node{id: nid}
	}

	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case Input:
			continue
		case Const0:
			nodes[id] = constNode(false)
			continue
		case Const1:
			nodes[id] = constNode(true)
			continue
		case Buf:
			nodes[id] = nodes[g.Fanin[0]]
			continue
		case Not:
			nd := nodes[g.Fanin[0]]
			if nd.isConst {
				nodes[id] = constNode(!nd.cval)
			} else {
				nd.neg = !nd.neg
				nodes[id] = nd
			}
			continue
		}

		// n-ary gates: split into base function + output inversion.
		base, inverted := g.Type, false
		switch g.Type {
		case Nand:
			base, inverted = And, true
		case Nor:
			base, inverted = Or, true
		case Xnor:
			base, inverted = Xor, true
		}

		var ops []node
		dead := false // controlling constant seen
		switch base {
		case And, Or:
			ctrl := base == Or // controlling value: 1 for OR, 0 for AND
			seen := map[node]bool{}
			for _, f := range g.Fanin {
				nd := nodes[f]
				if nd.isConst {
					if nd.cval == ctrl {
						dead = true
						break
					}
					continue // non-controlling constant: drop
				}
				inv := nd
				inv.neg = !inv.neg
				if seen[inv] {
					// x op ¬x: controlling outcome for AND (0) / OR (1).
					dead = true
					break
				}
				if !seen[nd] {
					seen[nd] = true
					ops = append(ops, nd)
				}
			}
			if dead {
				nodes[id] = constNode(ctrl != inverted)
				continue
			}
			if len(ops) == 0 {
				// All fanins were non-controlling constants.
				nodes[id] = constNode((base == And) != inverted)
				continue
			}
		case Xor:
			parity := inverted
			count := map[node]int{}
			var orderKeep []node
			for _, f := range g.Fanin {
				nd := nodes[f]
				if nd.isConst {
					if nd.cval {
						parity = !parity
					}
					continue
				}
				if nd.neg {
					parity = !parity
					nd.neg = false
				}
				count[nd]++
				if count[nd] == 1 {
					orderKeep = append(orderKeep, nd)
				}
			}
			for _, nd := range orderKeep {
				if count[nd]%2 == 1 {
					ops = append(ops, nd)
				}
			}
			if len(ops) == 0 {
				nodes[id] = constNode(parity)
				continue
			}
			inverted = parity
		}

		if len(ops) == 1 {
			nd := ops[0]
			if inverted {
				nd.neg = !nd.neg
			}
			nodes[id] = nd
			continue
		}

		// Materialize a left-to-right chain of shared binary gates.
		acc, err := materialize(ops[0])
		if err != nil {
			return nil, err
		}
		for k := 1; k < len(ops); k++ {
			rhs, err := materialize(ops[k])
			if err != nil {
				return nil, err
			}
			a, b := acc, rhs
			if b < a {
				a, b = b, a
			}
			key := sig{base, a, b}
			if cached, ok := shared[key]; ok {
				acc = cached
				continue
			}
			nid, err := out.AddGate(base, fmt.Sprintf("_s%d_%d", id, k), a, b)
			if err != nil {
				return nil, err
			}
			shared[key] = nid
			acc = nid
		}
		nodes[id] = node{id: acc, neg: inverted}
	}

	for _, o := range c.Outputs() {
		oid, err := materialize(nodes[o])
		if err != nil {
			return nil, err
		}
		// MarkOutput rejects duplicates; route repeats through a buffer.
		if err := out.MarkOutput(oid); err != nil {
			buf, berr := out.AddGate(Buf, fmt.Sprintf("_ob%d", o), oid)
			if berr != nil {
				return nil, berr
			}
			if err := out.MarkOutput(buf); err != nil {
				return nil, err
			}
		}
	}
	cone, err := out.ExtractCone(c.Name, out.Outputs()...)
	if err != nil {
		return nil, err
	}
	// ExtractCone drops unused inputs/keys; rebuild with the full port
	// list to keep shapes stable.
	final, err := withFullPorts(cone, c)
	if err != nil {
		return nil, err
	}
	if err := final.Validate(); err != nil {
		return nil, err
	}
	return final, nil
}

// withFullPorts re-adds any input/key ports dropped by cone extraction,
// preserving the original declaration order.
func withFullPorts(cone *Circuit, ref *Circuit) (*Circuit, error) {
	full := New(ref.Name)
	remap := make(map[string]ID)
	for _, id := range ref.Inputs() {
		name := ref.Gate(id).Name
		nid, err := full.AddInput(name)
		if err != nil {
			return nil, err
		}
		remap[name] = nid
	}
	for _, id := range ref.Keys() {
		name := ref.Gate(id).Name
		nid, err := full.AddKey(name)
		if err != nil {
			return nil, err
		}
		remap[name] = nid
	}
	inputMap := make([]ID, cone.NumInputs())
	for i, id := range cone.Inputs() {
		nid, ok := remap[cone.Gate(id).Name]
		if !ok {
			return nil, fmt.Errorf("netlist: Simplify lost track of input %q", cone.Gate(id).Name)
		}
		inputMap[i] = nid
	}
	// Cone keys are a subset of full's keys; Import declares its own key
	// inputs, so instead re-walk the cone manually mapping keys by name.
	order, err := cone.TopoOrder()
	if err != nil {
		return nil, err
	}
	gmap := make([]ID, cone.NumGates())
	for i := range gmap {
		gmap[i] = InvalidID
	}
	for i, id := range cone.Inputs() {
		gmap[id] = inputMap[i]
	}
	for _, id := range cone.Keys() {
		nid, ok := remap[cone.Gate(id).Name]
		if !ok {
			return nil, fmt.Errorf("netlist: Simplify lost track of key %q", cone.Gate(id).Name)
		}
		gmap[id] = nid
	}
	for _, id := range order {
		g := cone.Gate(id)
		if g.Type == Input {
			continue
		}
		fanin := make([]ID, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = gmap[f]
		}
		nid, err := full.AddGate(g.Type, g.Name, fanin...)
		if err != nil {
			return nil, err
		}
		gmap[id] = nid
	}
	for _, o := range cone.Outputs() {
		if err := full.MarkOutput(gmap[o]); err != nil {
			return nil, err
		}
	}
	return full, nil
}
