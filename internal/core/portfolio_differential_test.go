package core

import (
	"strings"
	"testing"

	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// runPortfolioPath mounts one full attack with the racing-portfolio
// backend on a fresh lock instance.
func runPortfolioPath(t *testing.T, inputs int, chain string, lockSeed, attackSeed int64, size int) (*Result, *lock.CASInstance) {
	t.Helper()
	h := host(t, inputs)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain(chain), Seed: lockSeed})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Seed: attackSeed, Portfolio: size})
	if err != nil {
		t.Fatalf("attack (portfolio=%d) failed: %v", size, err)
	}
	return res, inst
}

// TestPortfolioSingleEngineKeyDifferential proves the portfolio backend
// recovers byte-identical results to the single persistent engine
// across chain schemes, terminator cases, and key widths — including a
// 32-bit-key SAT-regime instance and a sim-regime instance where the
// portfolio only engages for distinguishing. This is the end-to-end
// soundness check for clause sharing: an unsound import would corrupt
// a member's DIP sets or verdicts, and any divergence lands here.
func TestPortfolioSingleEngineKeyDifferential(t *testing.T) {
	cases := []struct {
		name   string
		chain  string
		inputs int
		seeds  []int64
	}{
		{"and-term-n5", "2A-O-A", 8, []int64{1, 2}},
		{"or-term-n5", "A-O-A-O", 8, []int64{1, 2}},
		{"and-heavy-n8", "3A-O-3A", 10, []int64{3}},
		{"or-heavy-n8", "2O-A-2O-2A", 10, []int64{3}},
		{"sim-n13", "6A-O-5A", 14, []int64{5}},
		{"key32-n16", "7A-O-7A", 18, []int64{7}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range tc.seeds {
				resetProbeMemo() // portfolio and single runs must each probe their own config
				singleRes, inst := runPath(t, tc.inputs, tc.chain, seed, seed^0xbeef, false)
				portRes, _ := runPortfolioPath(t, tc.inputs, tc.chain, seed, seed^0xbeef, 3)
				if !inst.IsCorrectCASKey(singleRes.Key) {
					t.Fatalf("seed %d: single-engine path recovered a wrong key", seed)
				}
				if len(portRes.Key) != len(singleRes.Key) {
					t.Fatalf("seed %d: key lengths differ: %d vs %d", seed, len(portRes.Key), len(singleRes.Key))
				}
				for i := range portRes.Key {
					if portRes.Key[i] != singleRes.Key[i] {
						t.Fatalf("seed %d: keys diverge at bit %d", seed, i)
					}
				}
				if portRes.Chain.String() != singleRes.Chain.String() {
					t.Fatalf("seed %d: chains diverge: %s vs %s", seed, portRes.Chain, singleRes.Chain)
				}
				if portRes.Case != singleRes.Case {
					t.Fatalf("seed %d: cases diverge: %d vs %d", seed, portRes.Case, singleRes.Case)
				}
				if portRes.AlignedDIPs != singleRes.AlignedDIPs || portRes.TotalDIPs != singleRes.TotalDIPs {
					t.Fatalf("seed %d: DIP accounting diverges: %d/%d vs %d/%d", seed,
						portRes.AlignedDIPs, portRes.TotalDIPs, singleRes.AlignedDIPs, singleRes.TotalDIPs)
				}
			}
		})
	}
}

// TestPortfolioEncodesOnceAcrossAttack pins the shared-encoding
// contract on the portfolio path: one Tseitin encode feeds all members
// for the whole attack, the legacy compile path never runs, and the
// portfolio counter families (wins, disagreement alarm) are live.
func TestPortfolioEncodesOnceAcrossAttack(t *testing.T) {
	h := host(t, 10)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-2A-O"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.NewSim(h)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Telemetry: tel,
		SATWidthLimit: 12, Portfolio: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Fatal("recovered key incorrect")
	}
	snap := tel.Snapshot()
	if got := snap.Counters["engine_encodings_total"]; got != 1 {
		t.Fatalf("engine_encodings_total = %d, want exactly 1 shared encode", got)
	}
	if got := snap.Counters["sat_encode_cache_misses_total"]; got != 0 {
		t.Fatalf("legacy compile path ran %d times on the portfolio path", got)
	}
	if snap.Counters["portfolio_disagreements_total"] != 0 {
		t.Fatal("soundness alarm: portfolio members disagreed on a verdict")
	}
	var wins uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "portfolio_wins_total") {
			wins += v
		}
	}
	if wins == 0 {
		t.Fatal("no portfolio race wins recorded: the portfolio backend did not run")
	}
}
