package sat

// varHeap is an indexed max-heap of variables ordered by VSIDS activity.
// It supports decrease/increase-key by tracking each variable's position.
type varHeap struct {
	heap     []int // heap of variable indices
	position []int // position[v] = index in heap, or -1
	activity *[]float64
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

// grow ensures position tracking covers variables [0, n).
func (h *varHeap) grow(n int) {
	for len(h.position) < n {
		h.position = append(h.position, -1)
	}
}

func (h *varHeap) contains(v int) bool {
	return v < len(h.position) && h.position[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v int) {
	h.grow(v + 1)
	if h.contains(v) {
		return
	}
	h.position[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.siftUp(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.position[v] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return v
}

// update restores heap order after v's activity increased.
// remove deletes v from the heap if present (aux-var exclusion).
func (h *varHeap) remove(v int) {
	if !h.contains(v) {
		return
	}
	i := h.position[v]
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.position[v] = -1
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.siftUp(h.position[v])
	}
}

// rebuild re-heapifies after a global activity rescale.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.position[h.heap[i]] = i
	h.position[h.heap[j]] = j
}

func (h *varHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < n && h.less(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
