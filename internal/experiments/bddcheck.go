package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/bdd"
	"repro/internal/lock"
	"repro/internal/netlist"
)

// BDD cross-check: the DIP count is computed by a third independent
// engine — symbolic model counting — and compared against Lemma 2 and
// the concrete extraction engines. Cascade functions have linear-size
// BDDs, so this scales to the paper's 32-input blocks where exhaustive
// enumeration takes minutes.

// BDDDIPCount computes the exact Lemma-1 miter DIP count of a CAS block
// pair symbolically.
func BDDDIPCount(chain lock.ChainConfig, kg1, kg2 []netlist.GateType, k1A, k2A, k1B, k2B []bool) (*big.Int, error) {
	n := chain.NumInputs()
	if len(kg1) != n || len(kg2) != n {
		return nil, fmt.Errorf("experiments: key-gate vectors must have %d entries", n)
	}
	m := bdd.New(n)
	yA, err := casPairFlip(m, chain, kg1, kg2, k1A, k2A)
	if err != nil {
		return nil, err
	}
	yB, err := casPairFlip(m, chain, kg1, kg2, k1B, k2B)
	if err != nil {
		return nil, err
	}
	return m.SatCount(m.Xor(yA, yB)), nil
}

// casPairFlip builds Y = g ∧ ḡ symbolically for one key assignment.
func casPairFlip(m *bdd.Manager, chain lock.ChainConfig, kg1, kg2 []netlist.GateType, k1, k2 []bool) (bdd.Ref, error) {
	g, err := casChain(m, chain, kg1, k1, false)
	if err != nil {
		return bdd.False, err
	}
	gb, err := casChain(m, chain, kg2, k2, true)
	if err != nil {
		return bdd.False, err
	}
	return m.And(g, gb), nil
}

func casChain(m *bdd.Manager, chain lock.ChainConfig, kg []netlist.GateType, k []bool, complemented bool) (bdd.Ref, error) {
	n := chain.NumInputs()
	if len(kg) != n || len(k) != n {
		return bdd.False, fmt.Errorf("experiments: chain wants %d key gates/bits", n)
	}
	v := func(i int) bdd.Ref {
		x := m.Var(i)
		inv := k[i] != (kg[i] == netlist.Xnor)
		if inv {
			return m.Not(x)
		}
		return x
	}
	acc := v(0)
	for j := 0; j < n-1; j++ {
		in := v(j + 1)
		if chain[j] == lock.ChainAnd {
			acc = m.And(acc, in)
		} else {
			acc = m.Or(acc, in)
		}
		if complemented && j == n-2 {
			acc = m.Not(acc)
		}
	}
	return acc, nil
}

// BDDLemma1Assignment returns the Lemma-1 key vectors for a chain
// (Case 1 for AND/NAND-terminated, Case 2 otherwise) as the four block
// key vectors (k1A, k2A, k1B, k2B).
func BDDLemma1Assignment(chain lock.ChainConfig) (k1A, k2A, k1B, k2B []bool) {
	n := chain.NumInputs()
	mk := func(v bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	if chain.Terminator() == lock.ChainAnd {
		return mk(true), mk(false), mk(false), mk(false)
	}
	return mk(false), mk(true), mk(false), mk(false)
}

// bddManagerForChain returns a fresh manager sized for a chain's block.
func bddManagerForChain(chain lock.ChainConfig) *bdd.Manager {
	return bdd.New(chain.NumInputs())
}
