#!/bin/sh
# crash-smoke: chaos harness for crash-safe attacks.
#
# Scenario A — caslock-attack: run a reference attack to completion,
# then SIGKILL a checkpointing run at a seeded-random point mid-attack
# (injected oracle latency keeps the query phases slow enough to hit),
# resume from the snapshot, and assert the resumed run recovers the
# byte-identical key while asking the chip strictly fewer patterns than
# the reference (the snapshot's response bank replays paid-for answers).
# The resumed trace must validate with the "resume" span present.
#
# Scenario B — caslock-served: start the daemon with -journal-dir,
# submit a long job, SIGKILL the daemon mid-attack, restart it on the
# same journal, and assert the job survives — GET /v1/attacks/{id}
# still resolves under the original ID, the job resumes from its
# checkpoint blob (daemon metrics), and completes with a key.
#
# The kill points are randomized but seeded: set CRASH_SEED to explore
# different crash timings, default 7 for reproducible CI.
#
# Usage: crash_smoke.sh <workdir>
set -eu

DIR=${1:?usage: crash_smoke.sh workdir}
GO=${GO:-go}
CRASH_SEED=${CRASH_SEED:-7}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-attack ./cmd/caslock-served ./cmd/casgen ./cmd/tracecheck

fail() {
	echo "crash-smoke: $1" >&2
	shift
	for f in "$@"; do cat "$f" >&2 || true; done
	exit 1
}

# ---------------------------------------------------------------- A --
# Width-17 block (131072 patterns): fast without latency, seconds with
# 2ms injected per oracle call — a wide window for the SIGKILL.
"$DIR/bin/casgen" -inputs 18 -gates 80 -scheme cas -chain "4A-O-6A-O-2A-O-A" \
	-out "$DIR/locked.bench" -orig "$DIR/orig.bench"

"$DIR/bin/caslock-attack" -locked "$DIR/locked.bench" -oracle "$DIR/orig.bench" \
	>"$DIR/ref.out" 2>&1 || fail "reference attack failed" "$DIR/ref.out"
ref_key=$(awk '$1 == "key:" {print $2}' "$DIR/ref.out")
ref_chip=$(awk '/chip queries:/ {print $3}' "$DIR/ref.out")
[ -n "$ref_key" ] && [ -n "$ref_chip" ] || fail "reference run printed no key/chip-query lines" "$DIR/ref.out"

kill_delay=$(awk -v seed="$CRASH_SEED" 'BEGIN { srand(seed); printf "%.2f", 1.2 + 1.2 * rand() }')
"$DIR/bin/caslock-attack" -locked "$DIR/locked.bench" -oracle "$DIR/orig.bench" \
	-checkpoint "$DIR/run.ckpt" -checkpoint-every 100 -oracle-latency 2ms \
	>"$DIR/crash.out" 2>&1 &
PID=$!
trap 'kill -KILL "$PID" 2>/dev/null || true' EXIT
sleep "$kill_delay"
if ! kill -KILL "$PID" 2>/dev/null; then
	fail "attack finished before the SIGKILL at ${kill_delay}s; slow it down" "$DIR/crash.out"
fi
wait "$PID" 2>/dev/null || true
trap - EXIT
[ -s "$DIR/run.ckpt" ] || fail "SIGKILLed run (killed at ${kill_delay}s) left no checkpoint" "$DIR/crash.out"

"$DIR/bin/caslock-attack" -locked "$DIR/locked.bench" -oracle "$DIR/orig.bench" \
	-resume-from "$DIR/run.ckpt" -progress -trace "$DIR/resume-trace.json" \
	>"$DIR/resume.out" 2>"$DIR/resume.err" ||
	fail "resumed attack failed" "$DIR/resume.out" "$DIR/resume.err"
grep -q "resuming from checkpoint" "$DIR/resume.err" ||
	fail "resumed run never reported the snapshot" "$DIR/resume.err"
res_key=$(awk '$1 == "key:" {print $2}' "$DIR/resume.out")
res_chip=$(awk '/chip queries:/ {print $3}' "$DIR/resume.out")
[ "$res_key" = "$ref_key" ] ||
	fail "resumed key $res_key differs from uninterrupted key $ref_key" "$DIR/resume.out"
[ "$res_chip" -lt "$ref_chip" ] ||
	fail "resumed run asked the chip $res_chip patterns, scratch asked $ref_chip — resume saved nothing" "$DIR/resume.out"
# The resume span must be visible; phase spans count toward coverage but
# are conditional (a complete-snapshot resume skips re-enumeration).
"$DIR/bin/tracecheck" -in "$DIR/resume-trace.json" -require attack,resume \
	-coverage-extra enumerate,decode,algo1,algo2,verify,calibrate

echo "crash-smoke: scenario A OK (killed at ${kill_delay}s, key identical, chip queries $res_chip < $ref_chip)"

# ---------------------------------------------------------------- B --
# Width-23 block (~8.4M patterns, ~10s of work): long enough that the
# daemon dies mid-attack with checkpoints already on disk, short enough
# for the resumed job to complete inside the poll budget.
"$DIR/bin/casgen" -inputs 24 -gates 80 -scheme cas -chain "4A-O-6A-O-8A-O-A" \
	-out "$DIR/locked2.bench" -orig "$DIR/orig2.bench"
jq -n --rawfile locked "$DIR/locked2.bench" --rawfile oracle "$DIR/orig2.bench" \
	'{locked: $locked, oracle: $oracle, seed: 7}' >"$DIR/req.json"

wait_port() { # wait_port <stdout-file> → base URL
	base=""
	for _ in $(seq 1 100); do
		base=$(sed -n 's/^listening on \(http:[^ ]*\)$/\1/p' "$1" || true)
		[ -n "$base" ] && break
		sleep 0.1
	done
	[ -n "$base" ] || fail "daemon never announced its port" "$1"
}

"$DIR/bin/caslock-served" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -workers 1 \
	-journal-dir "$DIR/journal" >"$DIR/served1.out" 2>"$DIR/served1.err" &
SRV=$!
trap 'kill -KILL "$SRV" 2>/dev/null || true' EXIT
wait_port "$DIR/served1.out"

curl -fsS -X POST "$base/v1/attacks" --data-binary @"$DIR/req.json" >"$DIR/submit.json"
id=$(jq -r .id "$DIR/submit.json")
[ -n "$id" ] && [ "$id" != null ] || fail "submission returned no job id" "$DIR/submit.json"

# Let the attack run long enough to journal its start and land at least
# one checkpoint (event-quota cadence fires well before this), then
# murder the daemon.
kill_delay2=$(awk -v seed="$CRASH_SEED" 'BEGIN { srand(seed + 1); printf "%.2f", 2.2 + 0.8 * rand() }')
sleep "$kill_delay2"
state=$(curl -fsS "$base/v1/attacks/$id" | jq -r .state)
[ "$state" = running ] || fail "job was $state (not running) at the kill point ${kill_delay2}s" "$DIR/served1.err"
kill -KILL "$SRV"
wait "$SRV" 2>/dev/null || true
trap - EXIT
ls "$DIR/journal/cas/"ck-*.bin >/dev/null 2>&1 || fail "daemon died without a checkpoint blob" "$DIR/served1.err"

"$DIR/bin/caslock-served" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -workers 1 \
	-journal-dir "$DIR/journal" >"$DIR/served2.out" 2>"$DIR/served2.err" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT
wait_port "$DIR/served2.out"
dbg=""
for _ in $(seq 1 100); do
	dbg=$(sed -n 's/.*debug server listening on \(http:[^ ]*\) .*/\1/p' "$DIR/served2.err" || true)
	[ -n "$dbg" ] && break
	sleep 0.1
done
[ -n "$dbg" ] || fail "restarted daemon has no debug server" "$DIR/served2.err"

# The job must have survived the crash under its original ID.
state=$(curl -fsS "$base/v1/attacks/$id" | jq -r .state) ||
	fail "GET /v1/attacks/$id failed after restart" "$DIR/served2.err"
for _ in $(seq 1 1200); do
	state=$(curl -fsS "$base/v1/attacks/$id" | jq -r .state)
	case "$state" in done | partial | failed | canceled) break ;; esac
	sleep 0.1
done
[ "$state" = done ] || fail "replayed job $id ended in state $state" "$DIR/served2.err"
key=$(curl -fsS "$base/v1/attacks/$id/result" | jq -r .result.key)
[ -n "$key" ] && [ "$key" != null ] || fail "replayed job has no key" "$DIR/served2.err"

metrics=$(curl -fsS "$dbg/metrics")
echo "$metrics" | awk '$1 ~ /^journal_replayed_total/ && $2 > 0 { found = 1 } END { exit !found }' ||
	fail "restarted daemon replayed no journal records" "$DIR/served2.err"
resumed=$(echo "$metrics" | awk '$1 == "journal_resumed_from_checkpoint_total" {print $2}')
[ -n "$resumed" ] && [ "$resumed" -ge 1 ] ||
	fail "job did not resume from its checkpoint blob (journal_resumed_from_checkpoint_total=$resumed)" "$DIR/served2.err"

kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
[ "$rc" = 0 ] || fail "restarted daemon exited $rc on graceful shutdown" "$DIR/served2.err"

echo "crash-smoke: scenario B OK (daemon killed at ${kill_delay2}s, job $id survived restart, resumed from checkpoint, key recovered)"
rm -rf "$DIR"
