package core

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/events"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// bankCap bounds the banked oracle-response entries a single attack will
// hold (and therefore serialize into every snapshot). Entries are a few
// hundred bytes each, so the cap keeps the bank around tens of MiB even
// on query-heavy instances; once full, new answers simply stop being
// banked — correctness never depends on a hit.
const bankCap = 1 << 15

// optionsSig fingerprints the options that change the attack's query
// stream or decisions; a snapshot is only resumable under identical
// semantics (mirrors the service cache key's options component).
func optionsSig(o *Options) string {
	return fmt.Sprintf("v1 seed=%d retries=%d satwidth=%d legacy=%t",
		o.Seed, o.MismatchRetries, o.SATWidthLimit, o.LegacyEncoding)
}

// lockedHash returns the content hash of the circuit's canonical
// serialization — the identity a snapshot is pinned to.
func lockedHash(o *Options) (string, error) {
	canon, err := bench.Canonical(o.Locked)
	if err != nil {
		return "", fmt.Errorf("core: hashing locked netlist for checkpointing: %w", err)
	}
	return cache.SumParts(canon), nil
}

// ckptState is the attack-side half of checkpointing: the identity
// stamped into every snapshot plus the latest progress observed by the
// extraction hooks. All fields are owned by the attack goroutine; only
// fully built Snapshot values cross into the writer goroutine.
type ckptState struct {
	w          *checkpoint.Writer
	lockedHash string
	sig        string

	active   int
	calib    uint64
	phase    string
	set      *DIPSet
	complete bool
}

// armDurability wires Options.Checkpointer and Options.ResumeFrom into
// the attack: the resume snapshot is validated against this instance
// (typed refusal on mismatch), the oracle is wrapped with the response
// bank, the engine budgeter inherits the snapshot's EWMA rate, and the
// extractor's progress hook starts feeding the checkpoint cadence.
func (a *attack) armDurability() error {
	opts := &a.opts
	if opts.Checkpointer == nil && opts.ResumeFrom == nil {
		return nil
	}
	hash, err := lockedHash(opts)
	if err != nil {
		return err
	}
	sig := optionsSig(opts)

	bank := newBankedOracle(opts.Oracle, a.tel)
	if rs := opts.ResumeFrom; rs != nil {
		sp := a.root.Child("resume")
		if err := validateResume(rs, hash, sig, a.layout.N()); err != nil {
			sp.SetArg("refused", err.Error())
			sp.End()
			return err
		}
		bank.load(rs.Responses, rs.Scalar)
		a.resume = rs
		a.tel.Counter("resume_loads_total").Inc()
		a.tel.Counter("resume_responses_loaded_total").Add(uint64(len(rs.Responses) + len(rs.Scalar)))
		sp.SetArg("active", strconv.Itoa(rs.Active))
		sp.SetArg("phase", rs.Phase)
		sp.SetArg("complete", strconv.FormatBool(rs.EnumComplete))
		sp.SetArg("banked", strconv.Itoa(len(rs.Responses)+len(rs.Scalar)))
		sp.End()
		a.logf("resuming from checkpoint: active=%d phase=%s complete=%t banked=%d",
			rs.Active, rs.Phase, rs.EnumComplete, len(rs.Responses)+len(rs.Scalar))
		if a.bus != nil {
			a.bus.Publish(events.Event{
				Type:  events.TypeResume,
				Phase: rs.Phase,
				Count: rs.OracleQueries,
				Fields: map[string]string{
					"active":   strconv.Itoa(rs.Active),
					"complete": strconv.FormatBool(rs.EnumComplete),
					"banked":   strconv.Itoa(len(rs.Responses) + len(rs.Scalar)),
				},
			})
		}
	}
	a.bank = bank
	opts.Oracle = bank

	if w := opts.Checkpointer; w != nil {
		a.ck = &ckptState{w: w, lockedHash: hash, sig: sig}
	}
	// Materialize the shared engine only when resuming: the snapshot's
	// budgeter EWMA must be restored before the first enumeration sizes
	// its solve slices. A checkpoint-only run reads BudgetRate lazily in
	// buildSnapshot (guarded on engTried), so forcing the miter encoding
	// here would tax pure-sim attacks that never touch the SAT path; a
	// snapshot taken before the engine's first use carries rate 0, which
	// SetBudgetRate ignores on the resuming side.
	if a.resume != nil {
		if eng := a.engine(); eng != nil {
			eng.SetBudgetRate(a.resume.BudgetRate)
		}
	}
	// The extractor's per-DIP progress hook (checkpoint cadence + event
	// publishing) is installed by installProgress after this returns,
	// so a bus-only run gets it without durability armed.
	return nil
}

// validateResume refuses snapshots taken from a different instance.
func validateResume(rs *checkpoint.Snapshot, hash, sig string, width int) error {
	if rs.LockedHash != hash {
		return fmt.Errorf("%w: locked netlist hash %.12s…, snapshot has %.12s…", ErrResumeMismatch, hash, rs.LockedHash)
	}
	if rs.OptionsSig != sig {
		return fmt.Errorf("%w: options %q, snapshot has %q", ErrResumeMismatch, sig, rs.OptionsSig)
	}
	if rs.DIPWidth != width {
		return fmt.Errorf("%w: block width %d, snapshot has %d", ErrResumeMismatch, width, rs.DIPWidth)
	}
	return nil
}

// ckptMark records which extraction is in flight, so snapshots taken
// during it name the right (hypothesis, calibration) cell.
func (a *attack) ckptMark(active int, calib uint64) {
	if a.ck == nil {
		return
	}
	a.ck.active, a.ck.calib = active, calib
	a.ck.set, a.ck.complete = nil, false
}

// ckptPhase mirrors the pipeline phase into the checkpoint state and
// gives the timer cadence a chance to fire at the boundary.
func (a *attack) ckptPhase(name string) {
	if a.ck == nil {
		return
	}
	a.ck.phase = name
	a.ckptPump(0)
}

// ckptPump advances the checkpoint cadence by n progress events (DIPs
// enumerated or oracle patterns answered) and hands the writer a fresh
// snapshot when one is due. Disabled-checkpoint cost: one nil check.
func (a *attack) ckptPump(n uint64) {
	if a.ck == nil {
		return
	}
	if !a.ck.w.Tick(n) {
		return
	}
	a.ck.w.Offer(a.buildSnapshot())
}

// buildSnapshot assembles a Snapshot from the attack's current state.
// It runs on the attack goroutine (the only mutator of that state); the
// DIP words and response bank are copied so the writer goroutine owns
// its data outright.
func (a *attack) buildSnapshot() *checkpoint.Snapshot {
	ck := a.ck
	s := &checkpoint.Snapshot{
		LockedHash:    ck.lockedHash,
		OracleHash:    ck.w.OracleHash(),
		OptionsSig:    ck.sig,
		Active:        ck.active,
		Calib:         ck.calib,
		Phase:         ck.phase,
		EnumComplete:  ck.complete,
		OracleQueries: a.queries,
	}
	if s.Active == 0 {
		s.Active = 1
	}
	if ck.set != nil {
		s.DIPWidth = ck.set.BlockWidth()
		s.DIPWords = ck.set.CloneWords()
	} else {
		s.DIPWidth = a.layout.N()
		empty, err := NewDIPSet(s.DIPWidth)
		if err == nil {
			s.DIPWords = empty.CloneWords()
		}
	}
	if a.engTried && a.eng != nil {
		s.BudgetRate = a.eng.BudgetRate()
	}
	if a.bank != nil {
		s.Responses, s.Scalar = a.bank.export()
	}
	return s
}

// resumeSkip reports whether the resume snapshot proves this hypothesis
// already failed deterministically before the crash, letting the
// resumed run jump straight to the hypothesis that was in flight.
func (a *attack) resumeSkip(active int) bool {
	if a.resume == nil || a.resume.Active <= active {
		return false
	}
	a.tel.Counter("resume_hypotheses_skipped_total").Inc()
	a.logf("resume: hypothesis active=%d already failed before the checkpoint; skipping", active)
	return true
}

// extractDIPs runs one DIP-set extraction with checkpoint bookkeeping:
// it consumes the resume snapshot when it matches this (hypothesis,
// calibration) cell — restoring a complete set outright, or replaying a
// partial one into the extractor as blocking-clause seeds — and falls
// through to a normal extraction otherwise.
func (a *attack) extractDIPs(active int, calib uint64) (*DIPSet, error) {
	a.ckptMark(active, calib)
	rs := a.resume
	if rs == nil || rs.Active != active || rs.Calib != calib {
		return a.ext.DIPs(a.assign(active, calib))
	}
	a.resume = nil // one-shot: later extractions start fresh
	set, err := NewDIPSetFromWords(rs.DIPWidth, rs.DIPWords)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrResumeMismatch, err)
	}
	restored := set.Count()
	a.tel.Counter("resume_dips_restored_total").Add(restored)
	if rs.EnumComplete {
		a.tel.Counter("resume_enum_skipped_total").Inc()
		a.logf("resume: restored complete DIP set (%d DIPs), skipping re-enumeration", restored)
		if a.ck != nil {
			a.ck.set, a.ck.complete = set, true
		}
		return set, nil
	}
	if sa, ok := a.ext.(interface{ SeedDIPs(*DIPSet) }); ok {
		sa.SeedDIPs(set)
		a.tel.Counter("resume_dips_replayed_total").Add(restored)
		a.logf("resume: replaying %d DIPs as blocking clauses, continuing enumeration", restored)
	} else {
		a.logf("resume: extractor cannot seed partial sets; re-enumerating %d DIPs", restored)
	}
	return a.ext.DIPs(a.assign(active, calib))
}

// bankedOracle decorates the oracle with a response bank: answers are
// recorded as they arrive and replayed from memory when the identical
// pattern is asked again. Snapshots persist the bank, so a resumed
// attack's deterministic re-walk of the probe/verify query stream is
// served locally up to the crash point — the chip only sees queries the
// crashed run never got answered. Implements BatchOracle so the wide
// verify path keeps its shape (batches fall back to per-batch Query64
// when the inner oracle is not batched, exactly like oracle.Resilient).
//
// With a noisy oracle the bank intentionally freezes the first answer
// per pattern — deterministic replay is the point; denoising belongs to
// oracle.Resilient underneath the bank.
type bankedOracle struct {
	inner oracle.Oracle
	batch oracle.BatchOracle // nil when inner is not batched
	words map[string][]uint64
	bits  map[string][]byte
	hits  uint64
	cHits *telemetry.Counter
}

func newBankedOracle(inner oracle.Oracle, tel *telemetry.Registry) *bankedOracle {
	b := &bankedOracle{
		inner: inner,
		words: make(map[string][]uint64),
		bits:  make(map[string][]byte),
		cHits: tel.Counter("resume_oracle_hits_total"),
	}
	b.batch, _ = inner.(oracle.BatchOracle)
	return b
}

// load seeds the bank from snapshot responses.
func (b *bankedOracle) load(resp []checkpoint.Response, scalar []checkpoint.ScalarResponse) {
	for _, r := range resp {
		b.words[wordKey(r.In)] = r.Out
	}
	for _, r := range scalar {
		b.bits[string(r.In)] = r.Out
	}
}

// export copies the bank for a snapshot. Entry order is map-random,
// which is fine: the resumed run looks entries up by key, and snapshots
// are not required to be byte-canonical.
func (b *bankedOracle) export() ([]checkpoint.Response, []checkpoint.ScalarResponse) {
	resp := make([]checkpoint.Response, 0, len(b.words))
	for k, out := range b.words {
		resp = append(resp, checkpoint.Response{In: wordsFromKey(k), Out: append([]uint64(nil), out...)})
	}
	scalar := make([]checkpoint.ScalarResponse, 0, len(b.bits))
	for k, out := range b.bits {
		scalar = append(scalar, checkpoint.ScalarResponse{In: []byte(k), Out: append([]byte(nil), out...)})
	}
	return resp, scalar
}

func (b *bankedOracle) full() bool { return len(b.words)+len(b.bits) >= bankCap }

// Hits returns the number of oracle calls served from the bank.
func (b *bankedOracle) Hits() uint64 { return b.hits }

func (b *bankedOracle) NumInputs() int  { return b.inner.NumInputs() }
func (b *bankedOracle) NumOutputs() int { return b.inner.NumOutputs() }

// Query implements oracle.Oracle.
func (b *bankedOracle) Query(in []bool) ([]bool, error) {
	key := string(packBits(in))
	if out, ok := b.bits[key]; ok {
		b.hits++
		b.cHits.Inc()
		return unpackBits(out, b.inner.NumOutputs()), nil
	}
	out, err := b.inner.Query(in)
	if err != nil {
		return nil, err
	}
	if !b.full() {
		b.bits[key] = packBits(out)
	}
	return out, nil
}

// Query64 implements oracle.Oracle.
func (b *bankedOracle) Query64(in []uint64) ([]uint64, error) {
	key := wordKey(in)
	if out, ok := b.words[key]; ok {
		b.hits++
		b.cHits.Inc()
		return append([]uint64(nil), out...), nil
	}
	out, err := b.inner.Query64(in)
	if err != nil {
		return nil, err
	}
	if !b.full() {
		b.words[key] = append([]uint64(nil), out...)
	}
	return out, nil
}

// EvalMany implements oracle.BatchOracle: banked batches are answered
// locally, the misses forwarded in one (order-preserving) inner call.
func (b *bankedOracle) EvalMany(ins [][]uint64) ([][]uint64, error) {
	outs := make([][]uint64, len(ins))
	var missIdx []int
	var miss [][]uint64
	for i, in := range ins {
		if out, ok := b.words[wordKey(in)]; ok {
			b.hits++
			b.cHits.Inc()
			outs[i] = append([]uint64(nil), out...)
			continue
		}
		missIdx = append(missIdx, i)
		miss = append(miss, in)
	}
	if len(miss) == 0 {
		return outs, nil
	}
	var got [][]uint64
	var err error
	if b.batch != nil {
		got, err = b.batch.EvalMany(miss)
	} else {
		got = make([][]uint64, len(miss))
		for i, in := range miss {
			got[i], err = b.inner.Query64(in)
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	for i, idx := range missIdx {
		outs[idx] = got[i]
		if !b.full() {
			b.words[wordKey(ins[idx])] = append([]uint64(nil), got[i]...)
		}
	}
	return outs, nil
}

// wordKey packs a word vector into a map key.
func wordKey(ws []uint64) string {
	buf := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}

func wordsFromKey(k string) []uint64 {
	out := make([]uint64, len(k)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64([]byte(k[8*i : 8*i+8]))
	}
	return out
}

// packBits packs a bool vector 8 per byte (LSB first).
func packBits(v []bool) []byte {
	out := make([]byte, (len(v)+7)/8)
	for i, b := range v {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

func unpackBits(p []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if i/8 < len(p) && p[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = true
		}
	}
	return out
}
