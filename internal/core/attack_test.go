package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/lock"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func host(t *testing.T, inputs int) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: inputs, Outputs: 3, Gates: 50, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomChain(rng *rand.Rand, n int) lock.ChainConfig {
	chain := make(lock.ChainConfig, n-1)
	for i := range chain {
		if rng.Intn(2) == 0 {
			chain[i] = lock.ChainOr
		}
	}
	return chain
}

func TestDiscoverLayout(t *testing.T) {
	h := host(t, 10)
	locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{
		Chain:    lock.MustParseChain("A-O-2A"),
		InputSel: []int{7, 2, 5, 0, 9},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DiscoverLayout(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if layout.N() != 5 {
		t.Fatalf("N = %d", layout.N())
	}
	for i, want := range inst.InputSel {
		if layout.InputPos[i] != want {
			t.Errorf("InputPos[%d] = %d, want %d", i, layout.InputPos[i], want)
		}
	}
	for i := 0; i < 5; i++ {
		if layout.Key1Pos[i] != i || layout.Key2Pos[i] != 5+i {
			t.Errorf("key positions scrambled at %d: %d/%d", i, layout.Key1Pos[i], layout.Key2Pos[i])
		}
	}
	if err := layout.Validate(locked.Circuit); err != nil {
		t.Error(err)
	}
}

func TestDiscoverLayoutRejectsNonCAS(t *testing.T) {
	h := host(t, 10)
	if _, err := DiscoverLayout(h); err == nil {
		t.Error("key-free circuit accepted")
	}
	rll, _, err := lock.ApplyRLL(h, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverLayout(rll.Circuit); err == nil {
		t.Error("RLL circuit accepted as CAS layout")
	}
}

// keyGatesMatch reports whether recovered key-gate vectors equal the
// instance's, allowing the inherent joint complement of both blocks.
func keyGatesMatch(inst *lock.CASInstance, kg1, kg2 []netlist.GateType) bool {
	direct := true
	flipped := true
	for i := range kg1 {
		if kg1[i] != inst.KeyGates1[i] || kg2[i] != inst.KeyGates2[i] {
			direct = false
		}
		if kg1[i] == inst.KeyGates1[i] || kg2[i] == inst.KeyGates2[i] {
			flipped = false
		}
	}
	return direct || flipped
}

// TestAttackRandomInstances is the paper's headline claim: 100% key
// recovery across random chain configurations and random, independent
// XOR/XNOR key gates in both blocks — including OR-terminated chains
// (Case 2) and random input selections.
func TestAttackRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		chain := randomChain(rng, n)
		h := host(t, n+3)
		sel := rng.Perm(h.NumInputs())[:n]
		locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{
			Chain:    chain,
			InputSel: sel,
			Seed:     rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.MustNewSim(h)
		res, err := Run(Options{Locked: locked.Circuit, Oracle: orc, Seed: rng.Int63()})
		if err != nil {
			t.Fatalf("trial %d (chain %s): %v", trial, chain, err)
		}
		if !inst.IsCorrectCASKey(res.Key) {
			t.Fatalf("trial %d (chain %s): recovered key is wrong", trial, chain)
		}
		ok, err := miter.ProveUnlocked(locked.Circuit, res.Key, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: key not SAT-proven", trial)
		}
		// Every CAS instance has two exact black-box descriptions: the
		// primal chain and its De Morgan dual with the blocks' roles
		// exchanged. Accept either.
		if !res.Chain.Equal(chain) && !res.Chain.Equal(dualChain(chain)) {
			t.Fatalf("trial %d: chain %s recovered as %s", trial, chain, res.Chain)
		}
		if res.Chain.Equal(chain) && !keyGatesMatch(inst, res.KeyGates1, res.KeyGates2) {
			t.Fatalf("trial %d: key gates misidentified", trial)
		}
		if res.Case != 1 && res.Case != 2 {
			t.Fatalf("trial %d: case %d", trial, res.Case)
		}
	}
}

// TestAttackAlignedMatchesLemma2 reproduces the regime of the paper's
// Table I: with both blocks using the same key-gate polarities, the
// extracted DIP count equals Lemma 2's closed form exactly.
func TestAttackAlignedMatchesLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		chain := randomChain(rng, n)
		chain[n-2] = lock.ChainAnd
		kg := make([]netlist.GateType, n)
		for i := range kg {
			kg[i] = netlist.Xor
			if rng.Intn(2) == 0 {
				kg[i] = netlist.Xnor
			}
		}
		h := host(t, n+2)
		locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{
			Chain: chain, KeyGates1: kg, KeyGates2: append([]netlist.GateType(nil), kg...), Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.AlignedDIPs != MaxDIPs(chain) {
			t.Errorf("trial %d: AlignedDIPs %d, MaxDIPs %d", trial, res.AlignedDIPs, MaxDIPs(chain))
		}
		if res.TotalDIPs != res.AlignedDIPs {
			t.Errorf("trial %d: aligned instance but |I_l|=%d ≠ |A|=%d", trial, res.TotalDIPs, res.AlignedDIPs)
		}
		if !inst.IsCorrectCASKey(res.Key) {
			t.Errorf("trial %d: wrong key", trial)
		}
	}
}

// TestExtractorsAgree cross-checks the extraction engines on the same
// instances and assignments for every chain width n ≤ 16: the sharded
// parallel simulation extractor must return a DIPSet bit-identical to
// the sequential (workers = 1) extractor at every width, and both must
// match the SAT engine where full SAT enumeration is affordable.
func TestExtractorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const satWidthMax = 10 // SAT enumerates one model per DIP; cap its share
	for n := 3; n <= 16; n++ {
		h := host(t, n+2)
		locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: randomChain(rng, n), Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		layout, err := DiscoverLayout(locked.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		var satEx *SATExtractor
		if n <= satWidthMax {
			satEx, err = NewSATExtractor(locked.Circuit, layout)
			if err != nil {
				t.Fatal(err)
			}
		}
		seqEx, err := NewSimExtractor(locked.Circuit, layout, 3)
		if err != nil {
			t.Fatal(err)
		}
		seqEx.SetWorkers(1)
		parEx, err := NewSimExtractor(locked.Circuit, layout, 3)
		if err != nil {
			t.Fatal(err)
		}
		workers := runtime.NumCPU()
		if workers < 3 {
			workers = 3 // exercise real sharding even on small machines
		}
		parEx.SetWorkers(workers)
		nk := locked.Circuit.NumKeys()
		for round := 0; round < 2; round++ {
			assign := PairAssign{A: make([]bool, nk), B: make([]bool, nk)}
			for i := 0; i < nk; i++ {
				assign.A[i] = rng.Intn(2) == 1
				assign.B[i] = rng.Intn(2) == 1
			}
			seq, err := seqEx.DIPs(assign)
			if err != nil {
				t.Fatal(err)
			}
			par, err := parEx.DIPs(assign)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Equal(par) {
				t.Fatalf("n=%d: parallel DIP set differs from sequential (%d vs %d DIPs)",
					n, par.Count(), seq.Count())
			}
			cseq, err := seqEx.Classes(assign)
			if err != nil {
				t.Fatal(err)
			}
			cpar, err := parEx.Classes(assign)
			if err != nil {
				t.Fatal(err)
			}
			if cseq != cpar {
				t.Fatalf("n=%d: parallel class sizes differ: %+v vs %+v", n, cpar, cseq)
			}
			if satEx == nil {
				continue
			}
			a, err := satEx.DIPs(assign)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(seq) {
				t.Fatalf("n=%d: SAT %d DIPs, sim %d, sets differ", n, a.Count(), seq.Count())
			}
			ca, err := satEx.Classes(assign)
			if err != nil {
				t.Fatal(err)
			}
			if ca.Big != cseq.Big || ca.Small != cseq.Small {
				t.Fatalf("n=%d: class sizes differ: %+v vs %+v", n, ca, cseq)
			}
		}
	}
}

// TestLemma1NoUndetectableDIPs verifies Lemma 1: under the paper's miter
// key assignment no input pattern flips both copies simultaneously, so
// every DIP of the copy-A key is miter-visible.
func TestLemma1NoUndetectableDIPs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		chain := randomChain(rng, n)
		kg1 := make([]netlist.GateType, n)
		kg2 := make([]netlist.GateType, n)
		k1A := make([]bool, n)
		k1B := make([]bool, n)
		k2A := make([]bool, n)
		k2B := make([]bool, n)
		for i := 0; i < n; i++ {
			kg1[i], kg2[i] = netlist.Xor, netlist.Xor
			if rng.Intn(2) == 0 {
				kg1[i] = netlist.Xnor
			}
			if rng.Intn(2) == 0 {
				kg2[i] = netlist.Xnor
			}
		}
		// Case 1 or Case 2 assignment depending on the terminator.
		if chain.Terminator() == lock.ChainAnd {
			for i := range k1A {
				k1A[i] = true
			}
		} else {
			for i := range k2A {
				k2A[i] = true
			}
		}
		x := make([]uint64, n)
		for base := uint64(0); base < 1<<uint(n); base += 64 {
			for i := 0; i < n; i++ {
				if i < 6 {
					x[i] = lanePattern(i)
				} else if base&(1<<uint(i)) != 0 {
					x[i] = ^uint64(0)
				} else {
					x[i] = 0
				}
			}
			gA, gbA := lock.EvalCASPair(chain, kg1, kg2, k1A, k2A, x)
			gB, gbB := lock.EvalCASPair(chain, kg1, kg2, k1B, k2B, x)
			if (gA&gbA)&(gB&gbB) != 0 {
				t.Fatalf("trial %d chain %s: pattern flips both copies (undetectable DIP)", trial, chain)
			}
			if uint64(1)<<uint(n) <= 64 {
				break
			}
		}
	}
}

func TestAttackAntiSATDegenerate(t *testing.T) {
	// Anti-SAT = all-AND chain: a single DIP; the calibration sweep is
	// the exponential part, so keep the block small.
	h := host(t, 9)
	locked, inst, err := lock.ApplyAntiSAT(h, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCorrectCASKey(res.Key) {
		t.Fatal("wrong Anti-SAT key")
	}
	if res.AlignedDIPs != 1 {
		t.Errorf("AlignedDIPs = %d, want 1", res.AlignedDIPs)
	}
}

func TestAttackComplexityScalesWithDIPs(t *testing.T) {
	// O(m): oracle cost tracks the DIP-set size, not the key space.
	h := host(t, 12)
	counts := map[string]uint64{}
	for _, cfg := range []string{"6A-O-A", "2A-O-3A-O-A", "A-O-A-O-A-O-A-O"} {
		chain := lock.MustParseChain(cfg)
		locked, inst, err := lock.ApplyCAS(h, lock.CASOptions{Chain: chain, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(h), Seed: 10})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if !inst.IsCorrectCASKey(res.Key) {
			t.Fatalf("%s: wrong key", cfg)
		}
		counts[cfg] = res.OracleQueries
		if res.OracleQueries > 8*res.TotalDIPs+1024 {
			t.Errorf("%s: %d oracle queries for %d DIPs — not O(m)", cfg, res.OracleQueries, res.TotalDIPs)
		}
	}
}

func TestMCASPipeline(t *testing.T) {
	h := host(t, 10)
	locked, inst, err := lock.ApplyMCAS(h, lock.CASOptions{Chain: lock.MustParseChain("2A-O-A"), Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.MustNewSim(h)
	res, err := RunMCAS(locked.Circuit, orc, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Inner.IsCorrectCASKey(res.Inner.Key) {
		t.Fatal("inner key wrong")
	}
	if !inst.IsCorrectMCASKey(res.Key) {
		t.Fatal("full M-CAS key wrong")
	}
	ok, err := miter.ProveUnlocked(locked.Circuit, res.Key, h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M-CAS key not SAT-proven")
	}
}

func TestRunValidation(t *testing.T) {
	h := host(t, 8)
	if _, err := Run(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-A"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Locked: locked.Circuit}); err == nil {
		t.Error("missing oracle accepted")
	}
}
