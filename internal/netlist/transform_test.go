package netlist

import (
	"math/rand"
	"testing"
)

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	c := randomCircuit(7, 6, 30)
	cl := c.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not touch the original.
	cl.MustAddGate(Not, "extra", cl.Inputs()[0])
	if c.HasName("extra") {
		t.Error("clone shares name table")
	}
	// Functional equivalence on random patterns.
	s1 := MustNewSimulator(c)
	s2 := MustNewSimulator(cl)
	rng := rand.New(rand.NewSource(9))
	in := make([]uint64, c.NumInputs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	o1, _ := s1.Run64(in, nil)
	o2, _ := s2.Run64(in, nil)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("clone output %d differs", i)
		}
	}
}

func TestImportSplicesSubcircuit(t *testing.T) {
	// Source: f(x,y) = x NAND y.
	src := New("src")
	x := src.MustAddInput("x")
	y := src.MustAddInput("y")
	f := src.MustAddGate(Nand, "f", x, y)
	src.MustMarkOutput(f)

	dst := New("dst")
	a := dst.MustAddInput("a")
	b := dst.MustAddInput("b")
	outs, err := dst.Import(src, ImportOptions{Prefix: "sub_", InputMap: []ID{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	dst.MustMarkOutput(outs[0])
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	if !dst.HasName("sub_f") {
		t.Error("imported gate not prefixed")
	}
	for xv := 0; xv < 2; xv++ {
		for yv := 0; yv < 2; yv++ {
			out, err := dst.Eval([]bool{xv == 1, yv == 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := !(xv == 1 && yv == 1)
			if out[0] != want {
				t.Errorf("NAND(%d,%d) = %v", xv, yv, out[0])
			}
		}
	}
}

func TestImportKeys(t *testing.T) {
	src := New("src")
	x := src.MustAddInput("x")
	k := src.MustAddKey("k0")
	g := src.MustAddGate(Xor, "g", x, k)
	src.MustMarkOutput(g)

	dst := New("dst")
	a := dst.MustAddInput("a")

	// Without ImportKeysAsKeys the import must fail.
	if _, err := dst.Import(src, ImportOptions{InputMap: []ID{a}}); err == nil {
		t.Fatal("import with unhandled keys accepted")
	}

	outs, err := dst.Import(src, ImportOptions{Prefix: "l_", InputMap: []ID{a}, ImportKeysAsKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	dst.MustMarkOutput(outs[0])
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	if dst.NumKeys() != 1 {
		t.Fatalf("NumKeys = %d", dst.NumKeys())
	}
	out, err := dst.Eval([]bool{true}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] {
		t.Error("x XOR k with both 1 should be 0")
	}
}

func TestImportErrors(t *testing.T) {
	src := New("src")
	src.MustAddInput("x")
	dst := New("dst")
	if _, err := dst.Import(src, ImportOptions{InputMap: nil}); err == nil {
		t.Error("short InputMap accepted")
	}
	if _, err := dst.Import(src, ImportOptions{InputMap: []ID{42}}); err == nil {
		t.Error("dangling InputMap entry accepted")
	}
}

func TestExtractCone(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	d := c.MustAddInput("d")
	k := c.MustAddKey("k")
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Xor, "g2", g1, k)
	g3 := c.MustAddGate(Or, "g3", d, d) // unrelated
	c.MustMarkOutput(g2)
	c.MustMarkOutput(g3)

	cone, err := c.ExtractCone("cone", g2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cone.Validate(); err != nil {
		t.Fatal(err)
	}
	if cone.NumInputs() != 2 || cone.NumKeys() != 1 || cone.NumOutputs() != 1 {
		t.Fatalf("cone shape: %s", cone)
	}
	if cone.HasName("g3") || cone.HasName("d") {
		t.Error("cone includes unrelated logic")
	}
	out, err := cone.Eval([]bool{true, true}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("(a AND b) XOR 0 with a=b=1 should be 1")
	}
	if _, err := c.ExtractCone("bad", ID(99)); err == nil {
		t.Error("missing root accepted")
	}
}

func TestComputeStats(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	k := c.MustAddKey("k")
	g1 := c.MustAddGate(Xor, "g1", a, k)
	g2 := c.MustAddGate(Not, "g2", g1)
	c.MustMarkOutput(g2)

	s, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Inputs != 1 || s.Keys != 1 || s.Outputs != 1 {
		t.Errorf("io stats wrong: %+v", s)
	}
	if s.LogicGates != 2 || s.Depth != 2 {
		t.Errorf("logic stats wrong: %+v", s)
	}
	if s.GatesByType[Xor] != 1 || s.GatesByType[Input] != 2 {
		t.Errorf("type histogram wrong: %+v", s.GatesByType)
	}
}
