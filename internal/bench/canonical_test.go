package bench

import (
	"bytes"
	"strings"
	"testing"
)

const canonSrc = `# a comment
INPUT(a)
INPUT(b)
INPUT(keyinput0)
OUTPUT(y)
t = XOR(a, keyinput0)
y = AND(t, b)
`

func TestCanonicalDeterministic(t *testing.T) {
	c1, err := ReadString("one", canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadString("two", canonSrc) // different circuit name
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Canonical(c1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Canonical(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical bytes depend on the circuit name:\n%s\nvs\n%s", b1, b2)
	}
	if !bytes.HasPrefix(b1, []byte("v1 2 1 1 ")) {
		t.Fatalf("missing section-count header: %q", b1[:20])
	}
}

func TestCanonicalDistinguishesContent(t *testing.T) {
	base, err := ReadString("c", canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{
		strings.Replace(canonSrc, "AND(t, b)", "OR(t, b)", 1), // gate type
		strings.Replace(canonSrc, "XOR(a,", "XOR(b,", 1),      // wiring
		// key port removed entirely
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = XOR(a, b)\ny = AND(t, b)\n",
	}
	baseBytes, err := Canonical(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range variants {
		c, err := ReadString("c", src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got, err := Canonical(c)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if bytes.Equal(got, baseBytes) {
			t.Errorf("variant %d canonicalizes identically to the base circuit", i)
		}
	}
}

func TestCanonicalRoundTripStable(t *testing.T) {
	c, err := ReadString("c", canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	// bench.Write → bench.Read → Canonical must equal direct Canonical:
	// the service receives netlists as serialized text, so the hash must
	// be stable across a round trip.
	text, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadString("c", text)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := Canonical(c)
	b2, _ := Canonical(c2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip changed canonical form:\n%s\nvs\n%s", b1, b2)
	}
}
