#!/bin/sh
# serve-smoke: end-to-end check of the attack-as-a-service daemon.
#
# Generates a CAS-locked instance, starts caslock-served on ephemeral
# ports, submits the job over HTTP, polls it to completion, validates
# the per-job Chrome trace with tracecheck, then resubmits the
# byte-identical job and asserts — via the daemon's /metrics — that it
# was answered from the content-addressed cache with zero additional
# attack runs and zero additional oracle queries.
#
# Usage: serve_smoke.sh <workdir>
set -eu

DIR=${1:?usage: serve_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-served ./cmd/casgen ./cmd/tracecheck

"$DIR/bin/casgen" -inputs 12 -gates 60 -scheme cas -chain "2A-O-3A" \
	-out "$DIR/locked.bench" -orig "$DIR/orig.bench"

"$DIR/bin/caslock-served" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -workers 2 \
	>"$DIR/served.out" 2>"$DIR/served.err" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

base=""
for _ in $(seq 1 100); do
	base=$(sed -n 's/^listening on \(http:[^ ]*\)$/\1/p' "$DIR/served.out" || true)
	dbg=$(sed -n 's/.*debug server listening on \(http:[^ ]*\) .*/\1/p' "$DIR/served.err" || true)
	[ -n "$base" ] && [ -n "$dbg" ] && break
	sleep 0.1
done
if [ -z "$base" ] || [ -z "$dbg" ]; then
	echo "serve-smoke: daemon never announced its ports" >&2
	cat "$DIR/served.err" >&2
	exit 1
fi

jq -n --rawfile locked "$DIR/locked.bench" --rawfile oracle "$DIR/orig.bench" \
	'{locked: $locked, oracle: $oracle, seed: 7}' >"$DIR/req.json"

# Submit and poll to a terminal state.
curl -fsS -X POST "$base/v1/attacks" --data-binary @"$DIR/req.json" >"$DIR/submit1.json"
id=$(jq -r .id "$DIR/submit1.json")
state=queued
for _ in $(seq 1 600); do
	state=$(curl -fsS "$base/v1/attacks/$id" | jq -r .state)
	case "$state" in done | partial | failed | canceled) break ;; esac
	sleep 0.1
done
if [ "$state" != done ]; then
	echo "serve-smoke: job $id ended in state $state" >&2
	curl -fsS "$base/v1/attacks/$id" >&2
	exit 1
fi

key=$(curl -fsS "$base/v1/attacks/$id/result" | jq -r .result.key)
[ -n "$key" ] && [ "$key" != null ] || { echo "serve-smoke: no key in result" >&2; exit 1; }

# The per-job span tree must be a valid, phase-complete attack trace.
curl -fsS "$base/v1/attacks/$id/trace" >"$DIR/trace.json"
"$DIR/bin/tracecheck" -in "$DIR/trace.json"

runs_before=$(curl -fsS "$dbg/metrics" | awk '$1 == "service_attack_runs_total" {print $2}')
queries_before=$(curl -fsS "$dbg/metrics" | awk '$1 == "service_oracle_queries_total" {print $2}')

# Byte-identical resubmission: must arrive already terminal, flagged
# cached, with zero additional attack runs or oracle queries.
curl -fsS -X POST "$base/v1/attacks" --data-binary @"$DIR/req.json" >"$DIR/submit2.json"
cached=$(jq -r .cached "$DIR/submit2.json")
state2=$(jq -r .state "$DIR/submit2.json")
if [ "$cached" != true ] || [ "$state2" != done ]; then
	echo "serve-smoke: resubmission not served from cache (cached=$cached state=$state2)" >&2
	exit 1
fi
id2=$(jq -r .id "$DIR/submit2.json")
key2=$(curl -fsS "$base/v1/attacks/$id2/result" | jq -r .result.key)
if [ "$key2" != "$key" ]; then
	echo "serve-smoke: cached key $key2 differs from original $key" >&2
	exit 1
fi

runs_after=$(curl -fsS "$dbg/metrics" | awk '$1 == "service_attack_runs_total" {print $2}')
queries_after=$(curl -fsS "$dbg/metrics" | awk '$1 == "service_oracle_queries_total" {print $2}')
if [ "$runs_after" != "$runs_before" ] || [ "$queries_after" != "$queries_before" ]; then
	echo "serve-smoke: cache hit spent work: runs $runs_before -> $runs_after, queries $queries_before -> $queries_after" >&2
	exit 1
fi

# Graceful shutdown: first SIGTERM drains; the process must exit 0.
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
if [ "$rc" != 0 ]; then
	echo "serve-smoke: daemon exited $rc on graceful shutdown" >&2
	cat "$DIR/served.err" >&2
	exit 1
fi

echo "serve-smoke: OK (job $id done, key $key, cache hit verified, clean shutdown)"
rm -rf "$DIR"
