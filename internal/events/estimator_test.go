package events

import (
	"testing"
	"time"
)

// script feeds a deterministic event sequence with explicit timestamps.
func script(e *Estimator, evs ...Event) {
	for _, ev := range evs {
		e.Observe(ev)
	}
}

func TestEstimatorPhaseLadderIsMonotone(t *testing.T) {
	e := NewEstimator()
	var prev float64
	steps := []Event{
		{Type: TypePhaseEnter, Phase: "calibrate", TS: 1000},
		{Type: TypePhaseExit, Phase: "calibrate", TS: 1100},
		{Type: TypePhaseEnter, Phase: "enumerate", TS: 1100},
		{Type: TypeDIPProgress, Done: 25, Total: 100, TS: 1500},
		{Type: TypeDIPProgress, Done: 80, Total: 100, TS: 2000},
		{Type: TypePhaseExit, Phase: "enumerate", TS: 2300},
		{Type: TypePhaseEnter, Phase: "decode", TS: 2300},
		{Type: TypePhaseEnter, Phase: "algo1", TS: 2400},
		{Type: TypePhaseEnter, Phase: "algo2", TS: 2500},
		{Type: TypePhaseEnter, Phase: "verify", TS: 2600},
		// Hypothesis retry: re-entering enumerate must not regress.
		{Type: TypePhaseEnter, Phase: "enumerate", TS: 2700},
		{Type: TypeDone, TS: 3000},
	}
	for i, ev := range steps {
		e.Observe(ev)
		p := e.Snapshot()
		if p.Fraction < prev {
			t.Fatalf("step %d (%s %s): fraction regressed %.3f -> %.3f", i, ev.Type, ev.Phase, prev, p.Fraction)
		}
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Fatalf("step %d: fraction %.3f outside [0,1]", i, p.Fraction)
		}
		prev = p.Fraction
	}
	final := e.Snapshot()
	if final.Fraction != 1 {
		t.Fatalf("final fraction %.3f, want 1", final.Fraction)
	}
	if final.ETA != 0 {
		t.Fatalf("final ETA %v, want 0", final.ETA)
	}
}

func TestEstimatorUsesDIPSpaceFraction(t *testing.T) {
	e := NewEstimator()
	script(e,
		Event{Type: TypePhaseEnter, Phase: "enumerate", TS: 1000},
		Event{Type: TypeDIPProgress, Done: 50, Total: 100, TS: 2000},
	)
	p := e.Snapshot()
	sp := phaseSpans["enumerate"]
	want := sp.base + sp.width*0.5
	if diff := p.Fraction - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("fraction %.4f, want %.4f (half the enumerate span)", p.Fraction, want)
	}
	if p.Phase != "enumerate" {
		t.Fatalf("phase %q, want enumerate", p.Phase)
	}
	if p.ETA <= 0 {
		t.Fatalf("ETA %v, want positive extrapolation", p.ETA)
	}
}

func TestEstimatorFallsBackToCrossoverWalkCost(t *testing.T) {
	e := NewEstimator()
	script(e,
		Event{Type: TypeCrossover, Fields: map[string]string{"sim_est_ns": "4000000000"}, TS: 900},
		Event{Type: TypePhaseEnter, Phase: "enumerate", TS: 1000},
	)
	// No DIP-space fraction yet: ETA must come from the probe's
	// extrapolated walk cost (4s enumerate scaled by the phase prior).
	p := e.Snapshot()
	if p.ETA <= 0 {
		t.Fatalf("ETA %v, want probe-derived estimate", p.ETA)
	}
	// Count-only progress then leans on the probe for intra-phase fraction.
	e.Observe(Event{Type: TypeDIPProgress, Count: 10, TS: 3000})
	if got := e.Snapshot().Fraction; got <= phaseSpans["enumerate"].base {
		t.Fatalf("count-only progress did not advance fraction: %.4f", got)
	}
}

func TestEstimatorSuppressesETAWhileCrawling(t *testing.T) {
	e := NewEstimator()
	script(e,
		Event{Type: TypePhaseEnter, Phase: "enumerate", TS: 1000},
		Event{Type: TypeDIPProgress, Done: 10, Total: 100, TS: 2000},
	)
	if e.Snapshot().ETA <= 0 {
		t.Fatal("precondition: ETA should extrapolate before crawling")
	}
	e.Observe(Event{Type: TypeBudgetSlice, Fields: map[string]string{"grant": "256", "exhausted": "true"}, TS: 2100})
	if eta := e.Snapshot().ETA; eta != 0 {
		t.Fatalf("crawling ETA %v, want suppressed (0)", eta)
	}
}

func TestNilEstimator(t *testing.T) {
	var e *Estimator
	e.Observe(Event{Type: TypeDone})
	if p := e.Snapshot(); p.Fraction != 0 || p.ETA != 0 {
		t.Fatalf("nil estimator snapshot = %+v", p)
	}
}

func TestTrackerRepublishesProgress(t *testing.T) {
	b := New(Options{})
	var mu chan Progress = make(chan Progress, 64)
	tr := Track(b, time.Millisecond, func(p Progress) { mu <- p })
	sub := b.Subscribe(0)
	b.Publish(Event{Type: TypePhaseEnter, Phase: "enumerate"})
	b.Publish(Event{Type: TypeDIPProgress, Done: 50, Total: 100})
	time.Sleep(20 * time.Millisecond)
	b.Publish(Event{Type: TypeDone})

	// The terminal digest is always republished; wait for fraction 1.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case p := <-mu:
			if p.Fraction >= 1 {
				goto drained
			}
		case <-deadline:
			t.Fatal("tracker never republished the terminal digest")
		}
	}
drained:
	b.Close()
	tr.Close()
	// The raw subscription must have seen at least one progress event
	// among the originals, with fraction ultimately reaching 1.
	var sawProgress bool
	var finalFrac float64
	for _, ev := range collectAll(sub) {
		if ev.Type == TypeProgress {
			sawProgress = true
			finalFrac = ev.Fraction
		}
	}
	if !sawProgress {
		t.Fatal("no progress events republished onto the bus")
	}
	if finalFrac < 1 {
		t.Fatalf("final progress fraction %.3f, want 1", finalFrac)
	}
	// Tracker APIs are nil-safe.
	var nilT *Tracker
	nilT.Close()
	_ = nilT.Snapshot()
	if Track(nil, 0, nil) != nil {
		t.Fatal("Track(nil) should return nil")
	}
}

func collectAll(s *Subscription) []Event {
	var out []Event
	for {
		evs := s.Poll()
		out = append(out, evs...)
		if len(evs) == 0 && s.Closed() {
			return out
		}
		if len(evs) == 0 {
			<-s.Wait()
		}
	}
}
