package netlist

import "testing"

func TestTopoOrderRespectsEdges(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Or, "g2", g1, b)
	g3 := c.MustAddGate(Xor, "g3", g2, g1)
	c.MustMarkOutput(g3)

	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[ID]int)
	for i, id := range order {
		pos[id] = i
	}
	for id := 0; id < c.NumGates(); id++ {
		for _, f := range c.Gate(ID(id)).Fanin {
			if pos[f] >= pos[ID(id)] {
				t.Errorf("fanin %d of gate %d not before it", f, id)
			}
		}
	}
}

func TestTopoOrderCached(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	o1, _ := c.TopoOrder()
	o2, _ := c.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("topo order not cached")
	}
	c.MustAddGate(Not, "n", a)
	o3, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o3) != 2 {
		t.Error("cache not invalidated by AddGate")
	}
}

func TestCycleDetection(t *testing.T) {
	// Build a cycle by mutating fanin directly (the builder API cannot
	// create one).
	c := New("t")
	a := c.MustAddInput("a")
	g1 := c.MustAddGate(Buf, "g1", a)
	g2 := c.MustAddGate(Buf, "g2", g1)
	c.Gate(g1).Fanin[0] = g2
	c.topoValid = false
	if _, err := c.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate missed the cycle")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Not, "g2", g1)
	g3 := c.MustAddGate(Or, "g3", g2, a)
	c.MustMarkOutput(g3)

	levels, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[ID]int{a: 0, b: 0, g1: 1, g2: 2, g3: 3}
	for id, lv := range want {
		if levels[id] != lv {
			t.Errorf("level(%d) = %d, want %d", id, levels[id], lv)
		}
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestTransitiveFanin(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	cc := c.MustAddInput("c")
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Or, "g2", cc, cc)
	c.MustMarkOutput(g1)
	c.MustMarkOutput(g2)

	mask := c.TransitiveFanin(g1)
	if !mask[a] || !mask[b] || !mask[g1] {
		t.Error("cone of g1 incomplete")
	}
	if mask[cc] || mask[g2] {
		t.Error("cone of g1 includes unrelated logic")
	}
}

func TestTransitiveFanout(t *testing.T) {
	c := New("t")
	a := c.MustAddInput("a")
	b := c.MustAddInput("b")
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Not, "g2", g1)
	g3 := c.MustAddGate(Buf, "g3", b)
	c.MustMarkOutput(g2)
	c.MustMarkOutput(g3)

	mask := c.TransitiveFanout(a)
	if !mask[a] || !mask[g1] || !mask[g2] {
		t.Error("fanout of a incomplete")
	}
	if mask[b] || mask[g3] {
		t.Error("fanout of a includes unrelated logic")
	}
}
