// Attack comparison: why CAS-Lock needs the DIP-learning attack. On the
// same instances, the baseline SAT attack needs exponentially many
// iterations (and is capped), CAS-Unlock's uniform keys fail, AppSAT
// settles for an approximate (wrong) key, and the DIP-learning attack
// recovers the exact key from the DIP set directly.
//
//	go run ./examples/attackcomparison
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/experiments"
)

func main() {
	configs := []string{"4A-O-A", "2A-O-3A-O-A", "A-O-2A-O-2A-O-A"}
	const satCap = 600

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "chain\t|K|\tSAT attack\tCAS-Unlock\tAppSAT\tDIP-learning\t#DIPs\tDIP time")
	for i, cfg := range configs {
		res, err := experiments.RunComparison(14, cfg, satCap, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		satCell := fmt.Sprintf("broke in %d iters", res.SATIterations)
		if !res.SATCompleted {
			satCell = fmt.Sprintf("capped at %d iters", res.SATIterations)
		}
		cuCell := "fails"
		if res.CASUnlockSucceeded {
			cuCell = "succeeds"
		}
		asCell := fmt.Sprintf("approx (err≈%.3f)", res.AppSATError)
		if res.AppSATExact || res.AppSATKeyCorrect {
			asCell = "exact"
		}
		dipCell := "key recovered"
		if !res.DIPKeyRecovered {
			dipCell = "FAILED"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%d\t%v\n",
			cfg, 2*res.BlockWidth, satCell, cuCell, asCell, dipCell, res.DIPCount,
			res.DIPTime.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Println("\nThe SAT attack column shows the defense working as designed;")
	fmt.Println("the DIP-learning column shows the paper's attack defeating it.")
}
