package telemetry

// dashboardHTML is the self-contained live dashboard served at
// /dashboard by the debug server. It is deliberately dependency-free:
// no external scripts, stylesheets, fonts, or build step — one HTML
// document that polls /metrics/history.json (same origin) every two
// seconds and renders inline-SVG sparklines for the attack's headline
// series plus per-job progress bars from service_job_progress gauges.
//
// Palette: one categorical slot (blue #2a78d6 light / #3987e5 dark on
// surfaces #fcfcfb / #1a1a19), validated for lightness band, chroma
// floor, and ≥3:1 surface contrast in both modes. Every chart is a
// single series, so identity is carried by the card title — no legend —
// and all text wears text tokens, never the series color.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>CAS-Lock attack dashboard</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --surface-2: #f0efec;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #8a897f;
    --series-1: #2a78d6;
    --grid: #e3e2dd;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --surface-2: #262625;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #87867c;
      --series-1: #3987e5;
      --grid: #33332f;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px;
    background: var(--surface-1); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--text-muted); font-size: 12px; margin: 0 0 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile {
    background: var(--surface-2); border-radius: 8px;
    padding: 10px 16px; min-width: 140px;
  }
  .tile .k { color: var(--text-secondary); font-size: 11px;
    text-transform: uppercase; letter-spacing: 0.04em; }
  .tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); gap: 12px; }
  .card {
    background: var(--surface-2); border-radius: 8px; padding: 12px 16px;
    position: relative;
  }
  .card .k { color: var(--text-secondary); font-size: 12px; }
  .card .v { font-size: 20px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .card svg { display: block; width: 100%; height: 64px; margin-top: 6px; }
  .card .range { display: flex; justify-content: space-between;
    color: var(--text-muted); font-size: 11px; font-variant-numeric: tabular-nums; }
  #jobs { margin-top: 20px; }
  #jobs h2 { font-size: 13px; font-weight: 600; color: var(--text-secondary); margin: 0 0 8px; }
  .job { display: flex; align-items: center; gap: 12px; margin-bottom: 6px; }
  .job .name { width: 220px; overflow: hidden; text-overflow: ellipsis;
    white-space: nowrap; font-family: ui-monospace, monospace; font-size: 12px; }
  .job .track { flex: 1; height: 10px; border-radius: 5px; background: var(--surface-2);
    overflow: hidden; }
  .job .fill { height: 100%; border-radius: 5px; background: var(--series-1);
    transition: width 0.5s ease; }
  .job .pct { width: 56px; text-align: right; font-variant-numeric: tabular-nums; font-size: 12px; }
  #tip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--surface-1); color: var(--text-primary);
    border: 1px solid var(--grid); border-radius: 6px;
    padding: 4px 8px; font-size: 12px; font-variant-numeric: tabular-nums;
    box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  }
  #err { color: var(--text-muted); font-size: 12px; margin-top: 16px; }
</style>
</head>
<body>
<h1>CAS-Lock attack dashboard</h1>
<p class="sub">polling <code>/metrics/history.json</code> every 2&thinsp;s &mdash; last 10 minutes</p>
<div class="tiles" id="tiles"></div>
<div class="grid" id="charts"></div>
<div id="jobs"></div>
<div id="tip"></div>
<p id="err"></p>
<script>
"use strict";
var CHARTS = [
  {id: "qps",   title: "Oracle queries / s",  src: "counters", name: "oracle_queries_total",  kind: "rate"},
  {id: "dips",  title: "DIPs / s",            src: "gauges",   name: "attack_dips_found",     kind: "rate"},
  {id: "confl", title: "SAT conflicts / s",   src: "counters", name: "sat_conflicts_total",   kind: "rate"},
  {id: "queue", title: "Queue depth",         src: "gauges",   name: "service_queue_depth",   kind: "value"}
];
var TILES = [
  {title: "Jobs running",      src: "gauges",   name: "service_jobs_running"},
  {title: "Events dropped",    src: "counters", name: "events_dropped_total"},
  {title: "Checkpoint writes", src: "counters", name: "checkpoint_writes_total"}
];
var W = 600, H = 64, PAD = 3;
var tip = document.getElementById("tip");

function fmt(v) {
  if (v >= 1e9) return (v / 1e9).toFixed(1) + "G";
  if (v >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
  if (v >= 100) return v.toFixed(0);
  if (v >= 1 || v === 0) return (Math.round(v * 10) / 10).toString();
  return v.toFixed(2);
}
function clock(ms) {
  var d = new Date(ms);
  function p(n) { return (n < 10 ? "0" : "") + n; }
  return p(d.getHours()) + ":" + p(d.getMinutes()) + ":" + p(d.getSeconds());
}
// rate turns a monotone counter (or non-decreasing gauge) into per-second
// deltas; dips below zero (process restart) clamp to 0.
function rate(t, vals) {
  var out = {t: [], v: []};
  for (var i = 1; i < vals.length; i++) {
    var dt = (t[i] - t[i - 1]) / 1000;
    if (dt <= 0) continue;
    out.t.push(t[i]);
    out.v.push(Math.max(0, (vals[i] - vals[i - 1]) / dt));
  }
  return out;
}
function pathFor(vals, min, max) {
  var span = max - min || 1;
  var d = "";
  for (var i = 0; i < vals.length; i++) {
    var x = vals.length === 1 ? W / 2 : PAD + (W - 2 * PAD) * i / (vals.length - 1);
    var y = H - PAD - (H - 2 * PAD) * (vals[i] - min) / span;
    d += (i === 0 ? "M" : "L") + x.toFixed(1) + " " + y.toFixed(1);
  }
  return d;
}
function card(c) {
  var el = document.createElement("div");
  el.className = "card";
  el.innerHTML = '<div class="k">' + c.title + '</div>' +
    '<div class="v" id="v-' + c.id + '">&mdash;</div>' +
    '<svg id="svg-' + c.id + '" viewBox="0 0 ' + W + ' ' + H + '" preserveAspectRatio="none">' +
    '<line x1="0" y1="' + (H - PAD) + '" x2="' + W + '" y2="' + (H - PAD) + '" stroke="var(--grid)" stroke-width="1"/>' +
    '<path id="p-' + c.id + '" fill="none" stroke="var(--series-1)" stroke-width="2" ' +
    'stroke-linejoin="round" stroke-linecap="round" vector-effect="non-scaling-stroke" d=""/>' +
    '<line id="x-' + c.id + '" y1="0" y2="' + H + '" stroke="var(--text-muted)" ' +
    'stroke-width="1" vector-effect="non-scaling-stroke" visibility="hidden"/>' +
    '</svg>' +
    '<div class="range"><span id="lo-' + c.id + '"></span><span id="hi-' + c.id + '"></span></div>';
  document.getElementById("charts").appendChild(el);
  var svg = el.querySelector("svg");
  svg.addEventListener("mousemove", function (ev) { hover(c, svg, ev); });
  svg.addEventListener("mouseleave", function () {
    tip.style.display = "none";
    document.getElementById("x-" + c.id).setAttribute("visibility", "hidden");
  });
}
var seriesData = {}; // id -> {t:[], v:[]}
function hover(c, svg, ev) {
  var s = seriesData[c.id];
  if (!s || !s.v.length) return;
  var box = svg.getBoundingClientRect();
  var frac = (ev.clientX - box.left) / box.width;
  var i = Math.round(frac * (s.v.length - 1));
  i = Math.max(0, Math.min(s.v.length - 1, i));
  var x = s.v.length === 1 ? W / 2 : PAD + (W - 2 * PAD) * i / (s.v.length - 1);
  var cross = document.getElementById("x-" + c.id);
  cross.setAttribute("x1", x); cross.setAttribute("x2", x);
  cross.setAttribute("visibility", "visible");
  tip.textContent = clock(s.t[i]) + "  " + fmt(s.v[i]);
  tip.style.display = "block";
  tip.style.left = (ev.clientX + 12) + "px";
  tip.style.top = (ev.clientY - 10) + "px";
}
function tile(t0) {
  var el = document.createElement("div");
  el.className = "tile";
  el.innerHTML = '<div class="k">' + t0.title + '</div>' +
    '<div class="v" id="t-' + t0.name + '">&mdash;</div>';
  document.getElementById("tiles").appendChild(el);
}
CHARTS.forEach(card);
TILES.forEach(tile);

function last(arr) { return arr && arr.length ? arr[arr.length - 1] : null; }
function render(doc) {
  TILES.forEach(function (t0) {
    var v = last((doc[t0.src] || {})[t0.name]);
    document.getElementById("t-" + t0.name).textContent = v === null ? "0" : fmt(v);
  });
  CHARTS.forEach(function (c) {
    var raw = (doc[c.src] || {})[c.name];
    var s;
    if (!raw || !raw.length) s = {t: [], v: []};
    else if (c.kind === "rate") s = rate(doc.t, raw);
    else s = {t: doc.t.slice(), v: raw.slice()};
    seriesData[c.id] = s;
    var vEl = document.getElementById("v-" + c.id);
    vEl.textContent = s.v.length ? fmt(s.v[s.v.length - 1]) : "—";
    var min = 0, max = 1;
    if (s.v.length) {
      min = Math.min.apply(null, s.v); max = Math.max.apply(null, s.v);
      if (min > 0) min = 0; // anchor rate/value sparklines at zero
    }
    document.getElementById("p-" + c.id).setAttribute("d", pathFor(s.v, min, max));
    document.getElementById("lo-" + c.id).textContent = s.t.length ? clock(s.t[0]) : "";
    document.getElementById("hi-" + c.id).textContent = "max " + fmt(max);
  });
  // Per-job progress bars from service_job_progress{job="..."} gauges
  // (basis points: 10000 = done).
  var jobs = [];
  Object.keys(doc.gauges || {}).forEach(function (name) {
    var m = name.match(/^service_job_progress\{job="([^"]*)"\}$/);
    if (m) jobs.push({id: m[1], bp: last(doc.gauges[name]) || 0});
  });
  jobs.sort(function (a, b) { return a.id < b.id ? -1 : 1; });
  var host = document.getElementById("jobs");
  if (!jobs.length) { host.innerHTML = ""; return; }
  var html = "<h2>Jobs</h2>";
  jobs.forEach(function (j) {
    var pct = Math.max(0, Math.min(100, j.bp / 100));
    html += '<div class="job"><span class="name">' + j.id.replace(/[<>&]/g, "") + "</span>" +
      '<span class="track"><span class="fill" style="width:' + pct.toFixed(1) + '%"></span></span>' +
      '<span class="pct">' + pct.toFixed(1) + "%</span></div>";
  });
  host.innerHTML = html;
}
function poll() {
  fetch("/metrics/history.json", {cache: "no-store"})
    .then(function (r) {
      if (!r.ok) throw new Error("HTTP " + r.status);
      return r.json();
    })
    .then(function (doc) {
      document.getElementById("err").textContent = "";
      render(doc);
    })
    .catch(function (e) {
      document.getElementById("err").textContent = "fetch failed: " + e.message;
    });
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
`
