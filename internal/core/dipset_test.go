package core

import (
	"math/rand"
	"testing"
)

func TestDIPSetWidthBounds(t *testing.T) {
	for _, n := range []int{0, -1, maxDenseBits + 1} {
		if _, err := NewDIPSet(n); err == nil {
			t.Errorf("width %d accepted", n)
		}
	}
	s, err := NewDIPSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Universe() != 8 || s.NumWords() != 1 {
		t.Errorf("n=3: universe=%d words=%d", s.Universe(), s.NumWords())
	}
	s10, err := NewDIPSet(10)
	if err != nil {
		t.Fatal(err)
	}
	if s10.Universe() != 1024 || s10.NumWords() != 16 {
		t.Errorf("n=10: universe=%d words=%d", s10.Universe(), s10.NumWords())
	}
}

// TestDIPSetAgainstMap drives the bitset and a reference map with the
// same random inserts and checks every read-out surface agrees.
func TestDIPSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 3, 6, 7, 12} {
		s, err := NewDIPSet(n)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]struct{}{}
		u := s.Universe()
		for i := 0; i < 200; i++ {
			p := rng.Uint64() % u
			s.Add(p)
			ref[p] = struct{}{}
		}
		if s.Count() != uint64(len(ref)) {
			t.Fatalf("n=%d: Count=%d, map has %d", n, s.Count(), len(ref))
		}
		for p := uint64(0); p < u; p++ {
			_, in := ref[p]
			if s.Contains(p) != in {
				t.Fatalf("n=%d: Contains(%d)=%v, map says %v", n, p, s.Contains(p), in)
			}
		}
		if s.Contains(u) || s.Contains(u+17) {
			t.Errorf("n=%d: out-of-universe pattern reported present", n)
		}
		// Elements is ascending and matches the map.
		prev := int64(-1)
		for _, p := range s.Elements() {
			if int64(p) <= prev {
				t.Fatalf("n=%d: Elements not ascending", n)
			}
			prev = int64(p)
			if _, in := ref[p]; !in {
				t.Fatalf("n=%d: Elements reported %d not in map", n, p)
			}
		}
		// Range walks and counts agree on random sub-ranges.
		for i := 0; i < 20; i++ {
			lo := rng.Uint64() % u
			hi := lo + rng.Uint64()%(u-lo) + 1
			var want uint64
			for p := range ref {
				if p >= lo && p < hi {
					want++
				}
			}
			if got := s.CountRange(lo, hi); got != want {
				t.Fatalf("n=%d: CountRange(%d,%d)=%d, want %d", n, lo, hi, got, want)
			}
			var walked uint64
			s.ForEachRange(lo, hi, func(p uint64) bool {
				if p < lo || p >= hi {
					t.Fatalf("n=%d: ForEachRange(%d,%d) visited %d", n, lo, hi, p)
				}
				walked++
				return true
			})
			if walked != want {
				t.Fatalf("n=%d: ForEachRange visited %d, want %d", n, walked, want)
			}
		}
	}
}

func TestDIPSetAddOutOfUniversePanics(t *testing.T) {
	s, err := NewDIPSet(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add beyond the universe did not panic")
		}
	}()
	s.Add(8)
}

func TestDIPSetForEachEarlyStop(t *testing.T) {
	s, _ := NewDIPSet(8)
	for p := uint64(0); p < 256; p += 3 {
		s.Add(p)
	}
	visited := 0
	s.ForEach(func(p uint64) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("early stop visited %d patterns, want 5", visited)
	}
}

func TestDIPSetOrAndEqual(t *testing.T) {
	a, _ := NewDIPSet(9)
	b, _ := NewDIPSet(9)
	a.Add(1)
	a.Add(300)
	b.Add(300)
	b.Add(511)
	if a.Equal(b) {
		t.Error("distinct sets reported equal")
	}
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	for _, p := range []uint64{1, 300, 511} {
		if !a.Contains(p) {
			t.Errorf("after Or, %d missing", p)
		}
	}
	if a.Count() != 3 {
		t.Errorf("after Or, Count=%d", a.Count())
	}
	c, _ := NewDIPSet(8)
	if err := a.Or(c); err == nil {
		t.Error("width-mismatched Or accepted")
	}
	if a.Equal(c) {
		t.Error("width-mismatched sets reported equal")
	}
}
