# Tier-1 flow: `make ci` is what a PR must keep green.
#
#   make build       compile everything
#   make test        unit + integration tests
#   make test-race   the test suite under the race detector (the
#                    enumeration engine and experiment runners are
#                    concurrent; data races are correctness bugs here)
#   make vet         go vet
#   make fmt-check   fail if any file needs gofmt
#   make fuzz-smoke  short coverage-guided fuzz of the bench parser
#   make trace-smoke end-to-end telemetry check: lock a seed circuit,
#                    attack it with -trace, and validate the Chrome
#                    trace (all five phase spans, wall-clock coverage)
#   make serve-smoke end-to-end service check: start caslock-served,
#                    submit over HTTP, poll, tracecheck the per-job
#                    trace, assert the resubmission is a zero-work
#                    cache hit, SIGTERM-drain cleanly
#   make signal-smoke SIGINT a running caslock-attack: exit code 3,
#                    partial structure printed, trace flushed and valid
#   make ci          build + vet + fmt-check + test + test-race +
#                    fuzz-smoke + trace-smoke + serve-smoke +
#                    signal-smoke
#   make bench       tier-1 benchmarks with allocation reporting
#   make benchjson   refresh BENCH_core.json (the perf trajectory file)

GO ?= go
FUZZTIME ?= 5s
SMOKEDIR ?= .trace-smoke
SERVEDIR ?= .serve-smoke
SIGDIR ?= .signal-smoke

.PHONY: build test test-race vet fmt-check fuzz-smoke trace-smoke serve-smoke signal-smoke ci bench benchjson

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBenchRead -fuzztime $(FUZZTIME) ./internal/bench/

trace-smoke:
	@rm -rf $(SMOKEDIR) && mkdir -p $(SMOKEDIR)
	$(GO) run ./cmd/casgen -inputs 12 -gates 60 -scheme cas -chain "2A-O-3A-O-A" \
		-out $(SMOKEDIR)/locked.bench -orig $(SMOKEDIR)/orig.bench
	$(GO) run ./cmd/caslock-attack -locked $(SMOKEDIR)/locked.bench -oracle $(SMOKEDIR)/orig.bench \
		-trace $(SMOKEDIR)/trace.json -metrics-out $(SMOKEDIR)/metrics.prom
	$(GO) run ./cmd/tracecheck -in $(SMOKEDIR)/trace.json
	@rm -rf $(SMOKEDIR)

serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh $(SERVEDIR)

signal-smoke:
	GO="$(GO)" sh scripts/signal_smoke.sh $(SIGDIR)

ci: build vet fmt-check test test-race fuzz-smoke trace-smoke serve-smoke signal-smoke

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/core/ .

benchjson:
	$(GO) run ./cmd/benchjson -o BENCH_core.json
