// Package sensitization implements the key-sensitization attack
// (Rajendran et al., DAC 2012): for each key bit, find an input pattern
// that propagates that bit's value to a primary output while muting the
// influence of every other key bit; one oracle query then reveals the
// bit. The attack dissolves randomly inserted key gates (RLL) but is
// blocked by interfering insertions (SLL) — the evolution step the
// paper's introduction recounts before the SAT attack changed the game.
//
// Candidate patterns come from a SAT query (∃ pattern and background key
// making the target bit observable); the muting requirement is then
// verified by simulation across random background keys, which keeps the
// procedure sound: a bit is only reported when its output image is
// invariant, so the oracle read-out cannot be misattributed.
package sensitization

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/engine"
	"repro/internal/miter"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// Options bounds the attack.
type Options struct {
	// CandidatesPerBit is how many SAT-proposed patterns to test per key
	// bit before declaring it non-sensitizable (default 8).
	CandidatesPerBit int
	// MuteSamples is the number of random background keys used to verify
	// muting (default 24).
	MuteSamples int
	// Seed drives sampling.
	Seed int64
	// LegacySolver builds one throwaway solver per key bit instead of
	// streaming candidates from the persistent engine — the pre-engine
	// behavior, kept as an escape hatch and as the differential-test
	// baseline.
	LegacySolver bool
	// Backend, when non-nil, is the engine the attack drives; nil builds
	// a fresh engine for the run. Ignored under LegacySolver.
	Backend engine.Backend
	// Context, when non-nil, bounds the engine path.
	Context context.Context
	// Telemetry instruments the run (attack_* span + engine families).
	Telemetry *telemetry.Registry
}

// Result reports which key bits leaked.
type Result struct {
	// Known[i] is true when bit i was resolved; Key[i] then holds its
	// value.
	Known []bool
	Key   []bool
	// Resolved counts the known bits.
	Resolved int
	// OracleQueries counts oracle patterns consumed.
	OracleQueries uint64
}

// Run mounts the sensitization attack.
func Run(locked *netlist.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if opts.CandidatesPerBit <= 0 {
		opts.CandidatesPerBit = 8
	}
	if opts.MuteSamples <= 0 {
		opts.MuteSamples = 24
	}
	nk := locked.NumKeys()
	if nk == 0 {
		return nil, fmt.Errorf("sensitization: circuit has no key inputs")
	}
	if locked.NumInputs() != orc.NumInputs() {
		return nil, fmt.Errorf("sensitization: oracle input width mismatch")
	}
	sp := opts.Telemetry.StartSpan("attack_sensitization")
	defer sp.End()
	rng := rand.New(rand.NewSource(opts.Seed))
	sim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	res := &Result{Known: make([]bool, nk), Key: make([]bool, nk)}

	// propose streams up to CandidatesPerBit sensitization candidates for
	// one key bit, muting-checking each; the engine path shares one
	// persistent encoding across all bits, the legacy path rebuilds a
	// solver per bit.
	var propose func(bit int) (pattern []bool, outIdx int, v0, v1, found bool, err error)
	if opts.LegacySolver {
		propose = func(bit int) ([]bool, int, bool, bool, bool, error) {
			return findSensitizingPattern(locked, sim, bit, opts, rng)
		}
	} else {
		be := opts.Backend
		if be == nil {
			eng, err := engine.New(locked, nil)
			if err != nil {
				return nil, err
			}
			be = eng
		}
		if opts.Context != nil {
			be.SetContext(opts.Context)
		}
		if opts.Telemetry != nil {
			be.SetTelemetry(opts.Telemetry)
		}
		be.SetPhase("sensitization")
		propose = func(bit int) (pattern []bool, outIdx int, v0, v1, found bool, err error) {
			cand := 0
			var innerErr error
			enumErr := be.EnumerateSensitizations(bit, func(pat []bool) bool {
				cand++
				idx, b0, b1, muted, err := checkMuting(locked, sim, pat, bit, opts, rng)
				if err != nil {
					innerErr = err
					return false
				}
				if muted {
					pattern = append([]bool(nil), pat...)
					outIdx, v0, v1, found = idx, b0, b1, true
					return false
				}
				return cand < opts.CandidatesPerBit
			})
			if innerErr != nil {
				return nil, 0, false, false, false, innerErr
			}
			if enumErr != nil {
				return nil, 0, false, false, false, enumErr
			}
			return pattern, outIdx, v0, v1, found, nil
		}
	}

	for bit := 0; bit < nk; bit++ {
		pattern, outIdx, v0, v1, found, err := propose(bit)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		want, err := orc.Query(pattern)
		if err != nil {
			return nil, err
		}
		res.OracleQueries++
		switch want[outIdx] {
		case v0:
			res.Known[bit] = true
			res.Key[bit] = false
			res.Resolved++
		case v1:
			res.Known[bit] = true
			res.Key[bit] = true
			res.Resolved++
		}
	}
	return res, nil
}

// findSensitizingPattern proposes patterns via a key-differential miter
// restricted to the target bit and verifies the muting property by
// simulation. On success it returns the pattern, the output position
// carrying the bit, and that output's two invariant values (for bit=0
// and bit=1).
func findSensitizingPattern(locked *netlist.Circuit, sim *netlist.Simulator, bit int,
	opts Options, rng *rand.Rand) (pattern []bool, outIdx int, v0, v1 bool, found bool, err error) {

	kd, err := miter.NewKeyDiff(locked)
	if err != nil {
		return nil, 0, false, false, false, err
	}
	solver := sat.New()
	enc, err := cnf.EncodeInto(kd.Circuit, solver)
	if err != nil {
		return nil, 0, false, false, false, err
	}
	keyLits := enc.KeyLits(kd.Circuit)
	keysA := keyLits[:kd.NKeys]
	keysB := keyLits[kd.NKeys:]
	// Both copies share every key bit except the target, which is 0 in
	// copy A and 1 in copy B.
	for i := 0; i < kd.NKeys; i++ {
		if i == bit {
			solver.Add(keysA[i].Neg())
			solver.Add(keysB[i])
			continue
		}
		solver.Add(keysA[i].Neg(), keysB[i])
		solver.Add(keysA[i], keysB[i].Neg())
	}
	diff := enc.OutputLits(kd.Circuit)[0]
	inLits := enc.InputLits(kd.Circuit)

	for cand := 0; cand < opts.CandidatesPerBit; cand++ {
		if solver.Solve(diff) != sat.Sat {
			return nil, 0, false, false, false, nil
		}
		pat := make([]bool, len(inLits))
		blocking := make([]cnf.Lit, len(inLits))
		for i, l := range inLits {
			pat[i] = solver.ModelValue(l)
			if pat[i] {
				blocking[i] = l.Neg()
			} else {
				blocking[i] = l
			}
		}
		solver.Add(blocking...)

		idx, b0, b1, muted, err := checkMuting(locked, sim, pat, bit, opts, rng)
		if err != nil {
			return nil, 0, false, false, false, err
		}
		if muted {
			return pat, idx, b0, b1, true, nil
		}
	}
	return nil, 0, false, false, false, nil
}

// checkMuting simulates the pattern under random background keys,
// looking for an output position whose value depends only on the target
// bit: it must differ between the bit's two values and stay constant
// across backgrounds on each side.
func checkMuting(locked *netlist.Circuit, sim *netlist.Simulator, pat []bool, bit int,
	opts Options, rng *rand.Rand) (outIdx int, v0, v1 bool, muted bool, err error) {

	nk := locked.NumKeys()
	no := locked.NumOutputs()
	key := make([]bool, nk)
	alive := make([]bool, no)
	base0 := make([]bool, no)
	base1 := make([]bool, no)
	g0 := make([]bool, no)
	for s := 0; s < opts.MuteSamples; s++ {
		for i := range key {
			key[i] = rng.Intn(2) == 1
		}
		key[bit] = false
		r0, err := sim.Run(pat, key)
		if err != nil {
			return 0, false, false, false, err
		}
		// Copy: the simulator owns its output buffer, so r0 would alias
		// the second Run's result below.
		copy(g0, r0)
		key[bit] = true
		g1, err := sim.Run(pat, key)
		if err != nil {
			return 0, false, false, false, err
		}
		if s == 0 {
			for o := 0; o < no; o++ {
				alive[o] = g0[o] != g1[o]
				base0[o] = g0[o]
				base1[o] = g1[o]
			}
			continue
		}
		for o := 0; o < no; o++ {
			if alive[o] && (g0[o] != base0[o] || g1[o] != base1[o] || g0[o] == g1[o]) {
				alive[o] = false
			}
		}
	}
	for o := 0; o < no; o++ {
		if alive[o] {
			return o, base0[o], base1[o], true, nil
		}
	}
	return 0, false, false, false, nil
}
