package core

import (
	"errors"
	"fmt"

	"repro/internal/lock"
	"repro/internal/netlist"
)

// ErrLemma2 classifies decode failures where the extracted DIP set does
// not carry the popcount structure Lemma 2 guarantees for a genuine
// CAS-Lock instance: the structured-class size must be odd, its binary
// representation must name valid OR-gate positions, and the class must
// equal the recovered chain's one-point set up to a shift. A clean
// extraction on a real instance can only fail these checks under a
// wrong hypothesis; a run that fails them under BOTH hypotheses is
// looking at corrupted data.
var ErrLemma2 = errors.New("core: DIP set inconsistent with Lemma 2")

// ErrOracleInconsistent reports the complementary diagnosis: the DIP
// structure passed every Lemma-2 check (so the locked netlist is a
// well-formed CAS instance and the decode is trustworthy) yet no
// candidate key survived oracle adjudication. Candidates are only ever
// eliminated on a concrete oracle disagreement, and the true key is
// always among the candidates of a consistent decode — so this outcome
// means the oracle's answers are self-inconsistent: a noisy or faulty
// activated chip. Retrying through a denoising oracle (majority vote,
// Options.MismatchRetries) is the remedy; emitting a key is not.
var ErrOracleInconsistent = errors.New("core: oracle disagreements eliminated every candidate of a Lemma-2-consistent DIP structure (noisy oracle?)")

// ErrPartial classifies interrupted attacks: errors.Is(err, ErrPartial)
// holds exactly when err carries a *PartialError with the partially
// recovered structure.
var ErrPartial = errors.New("core: attack interrupted before key recovery")

// ErrBlockWidth classifies width-validation failures: a block width
// outside the range this package can represent (see MaxBlockWidth).
// Admission boundaries — the attack service in particular — match on it
// to reject malformed or oversized instances before any work is queued.
var ErrBlockWidth = errors.New("core: block width outside supported range")

// ErrResumeMismatch classifies resume refusals: the checkpoint snapshot
// passed to Options.ResumeFrom was taken from a different attack — a
// different locked netlist (canonical hash mismatch), different
// semantics options, or a different block width. Resuming anyway would
// silently blend two instances' progress, so the attack refuses before
// touching the oracle.
var ErrResumeMismatch = errors.New("core: checkpoint does not match this attack instance")

// PanicError is a panic converted into an error by RunSafe (or any
// other panic-to-error boundary): long-running callers — the attack
// daemon above all — must not die because one malformed netlist drove
// an internal invariant (such as DIPSet.Add's universe check) into a
// panic. Value is the recovered panic value; Stack the goroutine stack
// captured at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: attack panicked: %v", e.Value)
}

// PartialError is the graceful-degradation result: the attack ran out
// of deadline or budget (or the oracle failed permanently) after
// recovering part of the structure. Everything learned up to the
// interruption is preserved so a caller can resume, report, or widen
// the budget instead of rerunning from scratch.
type PartialError struct {
	// Stage names the pipeline stage that was interrupted: "extract",
	// "decode", "calibrate" or "verify".
	Stage string
	// Case is the block-role hypothesis in progress (1 or 2; 0 when the
	// interruption predates the hypothesis loop).
	Case int
	// Chain is the decoded cascade configuration, nil if the decode
	// stage was not reached.
	Chain lock.ChainConfig
	// KeyGates is the recovered key-gate polarity vector of the active
	// block (exact up to the inherent complement), nil if not reached.
	KeyGates []netlist.GateType
	// DIPs counts the distinguishing input patterns enumerated before
	// the interruption (a lower bound on |I_l|).
	DIPs uint64
	// Extractions counts DIP-set extractions performed.
	Extractions int
	// Err is the underlying cause: context.DeadlineExceeded,
	// context.Canceled, a budget-exhaustion error, or a permanent
	// oracle failure.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	msg := fmt.Sprintf("core: attack interrupted during %s (case=%d, %d DIPs so far", e.Stage, e.Case, e.DIPs)
	if e.Chain != nil {
		msg += fmt.Sprintf(", chain=%s", e.Chain)
	}
	return msg + "): " + e.Err.Error()
}

// Unwrap exposes ErrPartial for classification plus the concrete cause.
func (e *PartialError) Unwrap() []error { return []error{ErrPartial, e.Err} }

// partial builds a PartialError from the attack's current progress.
func (a *attack) partial(stage string, active int, st *structured, err error) *PartialError {
	pe := &PartialError{Stage: stage, Case: active, Extractions: a.ext.Extractions(), Err: err}
	if st != nil {
		pe.Chain = st.chainH
		pe.DIPs = st.total
		pe.KeyGates = kgFromMask(st.s&blockMask(a.layout.N()), a.layout.N())
	}
	return pe
}
