package events

import (
	"strconv"
	"sync"
	"time"
)

// Progress is the estimator's digest of an attack's event stream: how
// far along the run is, which phase it is in, and how long it is
// expected to keep going. Fraction is monotone non-decreasing over the
// life of a job; ETA is 0 when unknown (too early to extrapolate).
type Progress struct {
	Fraction float64       `json:"fraction"`
	Phase    string        `json:"phase"`
	ETA      time.Duration `json:"-"`
	ETAMS    int64         `json:"eta_ms"`
}

// phaseSpan maps a phase name to its slice of the overall [0,1)
// progress scale. The widths are priors from the benchmark matrix: DIP
// enumeration dominates, verification is the next heaviest, and the
// bookkeeping phases (decode, algo1) are thin. A hypothesis retry
// re-enters earlier phases; monotonicity is enforced by clamping, so a
// retry holds progress flat rather than walking it backwards.
type phaseSpan struct{ base, width float64 }

var phaseSpans = map[string]phaseSpan{
	"calibrate": {0.00, 0.05},
	"enumerate": {0.05, 0.55},
	"decode":    {0.60, 0.05},
	"algo1":     {0.65, 0.05},
	"algo2":     {0.70, 0.10},
	"verify":    {0.80, 0.20},
}

// Estimator folds a stream of bus events into a Progress snapshot. It
// combines three signals:
//
//   - the enumerated-DIP-space fraction (dip_progress Done/Total — sim
//     batches walked, or DIPs found against the block universe) drives
//     intra-phase progress during enumeration;
//   - the crossover probe's extrapolated walk cost (crossover
//     sim_est_ns) anchors the enumerate phase's expected duration
//     before any in-phase signal exists;
//   - the budgeter's EWMA conflict rate (budget_slice rate/grant)
//     marks deadline-bound crawling, which suppresses optimistic ETA
//     extrapolation.
//
// Observe and Snapshot are safe for concurrent use. A nil *Estimator
// ignores Observe and reports a zero Progress.
type Estimator struct {
	mu       sync.Mutex
	phase    string
	frac     float64
	done     bool
	lastTS   int64   // ms timestamp of the last fraction advance
	rate     float64 // EWMA of fraction per millisecond
	enumEst  float64 // expected enumerate duration, ms (crossover probe)
	enumFrom int64   // ms timestamp of the last enumerate phase_enter
	crawling bool    // budgeter granting floor slices: share exhausted
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator { return &Estimator{} }

// Observe folds one event in. Progress events are ignored (they are
// this estimator's own output echoed through the bus).
func (e *Estimator) Observe(ev Event) {
	if e == nil || ev.Type == TypeProgress {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch ev.Type {
	case TypePhaseEnter:
		if _, known := phaseSpans[ev.Phase]; known || e.phase == "" {
			e.phase = ev.Phase
		}
		if sp, ok := phaseSpans[ev.Phase]; ok {
			e.advance(sp.base, ev.TS)
			if ev.Phase == "enumerate" {
				e.enumFrom = ev.TS
			}
		}
	case TypePhaseExit:
		if sp, ok := phaseSpans[ev.Phase]; ok {
			e.advance(sp.base+sp.width, ev.TS)
		}
	case TypeDIPProgress:
		sp, ok := phaseSpans[e.phase]
		if !ok {
			sp = phaseSpans["enumerate"]
		}
		if ev.Total > 0 {
			intra := float64(ev.Done) / float64(ev.Total)
			if intra > 1 {
				intra = 1
			}
			e.advance(sp.base+sp.width*intra, ev.TS)
		} else if e.enumEst > 0 && e.enumFrom > 0 && ev.TS > e.enumFrom {
			// No universe fraction: lean on the crossover probe's
			// extrapolated walk cost, capped short of phase end so the
			// real exit event still owns the boundary.
			intra := float64(ev.TS-e.enumFrom) / e.enumEst
			if intra > 0.95 {
				intra = 0.95
			}
			e.advance(sp.base+sp.width*intra, ev.TS)
		}
	case TypeCrossover:
		if ns, err := strconv.ParseFloat(ev.Fields["sim_est_ns"], 64); err == nil && ns > 0 {
			e.enumEst = ns / 1e6
		}
	case TypeBudgetSlice:
		grant, _ := strconv.ParseUint(ev.Fields["grant"], 10, 64)
		e.crawling = ev.Fields["exhausted"] == "true" || (grant > 0 && grant <= 256)
	case TypeDone:
		e.done = true
		e.advance(1, ev.TS)
	}
}

// advance moves the monotone fraction toward f and updates the EWMA
// fraction rate using the event-timestamp clock, so replayed histories
// estimate identically to live streams.
func (e *Estimator) advance(f float64, ts int64) {
	if f > 1 {
		f = 1
	}
	if f <= e.frac {
		return
	}
	if e.lastTS > 0 && ts > e.lastTS {
		inst := (f - e.frac) / float64(ts-e.lastTS)
		if e.rate == 0 {
			e.rate = inst
		} else {
			e.rate = 0.7*e.rate + 0.3*inst
		}
	}
	e.frac = f
	if ts > e.lastTS {
		e.lastTS = ts
	}
}

// Snapshot returns the current digest. ETA extrapolates the EWMA
// fraction rate over the remaining fraction; while the budgeter is
// crawling (phase share exhausted) the extrapolation is suppressed
// rather than reported as false precision.
func (e *Estimator) Snapshot() Progress {
	if e == nil {
		return Progress{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p := Progress{Fraction: e.frac, Phase: e.phase}
	if e.done {
		p.Fraction = 1
		return p
	}
	remaining := 1 - e.frac
	switch {
	case remaining <= 0 || e.crawling:
	case e.rate > 0:
		p.ETA = time.Duration(remaining/e.rate) * time.Millisecond
	case e.enumEst > 0:
		// Pre-signal fallback: scale the probe's enumerate estimate to
		// the whole run through the phase-width prior.
		if sp, ok := phaseSpans["enumerate"]; ok && sp.width > 0 {
			p.ETA = time.Duration(e.enumEst/sp.width) * time.Millisecond
		}
	}
	p.ETAMS = p.ETA.Milliseconds()
	return p
}

// ProgressEvent renders a Progress as a bus event.
func ProgressEvent(p Progress) Event {
	return Event{
		Type:      TypeProgress,
		Phase:     p.Phase,
		Fraction:  p.Fraction,
		ETAMillis: p.ETAMS,
	}
}

// Tracker pumps a bus subscription through an Estimator in the
// background and republishes digests as progress events on a bounded
// cadence, so every consumer of the stream (SSE clients, the NDJSON
// log) sees fraction/ETA without running its own estimator. Close
// detaches; the tracker also winds down by itself when the bus closes.
type Tracker struct {
	bus    *Bus
	sub    *Subscription
	est    *Estimator
	minGap time.Duration
	onProg func(Progress)
	done   chan struct{}
}

// Track attaches a Tracker to bus. minGap bounds how often progress
// events are republished (<=0 selects 250ms); onProgress, when
// non-nil, observes each republished digest (gauge mirroring, CLI
// printing). Track on a nil bus returns nil, and a nil *Tracker is
// safe to query and close.
func Track(bus *Bus, minGap time.Duration, onProgress func(Progress)) *Tracker {
	if bus == nil {
		return nil
	}
	if minGap <= 0 {
		minGap = 250 * time.Millisecond
	}
	t := &Tracker{
		bus:    bus,
		sub:    bus.Subscribe(0),
		est:    NewEstimator(),
		minGap: minGap,
		onProg: onProgress,
		done:   make(chan struct{}),
	}
	go t.run()
	return t
}

// Snapshot returns the estimator's current digest.
func (t *Tracker) Snapshot() Progress {
	if t == nil {
		return Progress{}
	}
	return t.est.Snapshot()
}

// Close detaches the tracker and waits for its goroutine to exit.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	t.sub.Close()
	<-t.done
}

func (t *Tracker) run() {
	defer close(t.done)
	var lastPub time.Time
	var last Progress
	for {
		events := t.sub.Poll()
		for _, ev := range events {
			t.est.Observe(ev)
		}
		if len(events) > 0 {
			p := t.est.Snapshot()
			final := p.Fraction >= 1
			advanced := p.Fraction > last.Fraction || p.Phase != last.Phase
			if advanced && (final || time.Since(lastPub) >= t.minGap) {
				t.bus.Publish(ProgressEvent(p))
				if t.onProg != nil {
					t.onProg(p)
				}
				last, lastPub = p, time.Now()
			}
			continue
		}
		if t.sub.Closed() {
			return
		}
		<-t.sub.Wait()
	}
}
