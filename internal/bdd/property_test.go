package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// expr is a random boolean expression over k variables, used to compare
// BDD evaluation against direct evaluation.
type expr struct {
	op       byte // 'v' var, '&', '|', '^', '!'
	varIdx   int
	lhs, rhs *expr
}

func randExpr(rng *rand.Rand, vars, depth int) *expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return &expr{op: 'v', varIdx: rng.Intn(vars)}
	}
	ops := []byte{'&', '|', '^', '!'}
	op := ops[rng.Intn(len(ops))]
	e := &expr{op: op, lhs: randExpr(rng, vars, depth-1)}
	if op != '!' {
		e.rhs = randExpr(rng, vars, depth-1)
	}
	return e
}

func (e *expr) eval(assign []bool) bool {
	switch e.op {
	case 'v':
		return assign[e.varIdx]
	case '!':
		return !e.lhs.eval(assign)
	case '&':
		return e.lhs.eval(assign) && e.rhs.eval(assign)
	case '|':
		return e.lhs.eval(assign) || e.rhs.eval(assign)
	default:
		return e.lhs.eval(assign) != e.rhs.eval(assign)
	}
}

func (e *expr) build(m *Manager) Ref {
	switch e.op {
	case 'v':
		return m.Var(e.varIdx)
	case '!':
		return m.Not(e.lhs.build(m))
	case '&':
		return m.And(e.lhs.build(m), e.rhs.build(m))
	case '|':
		return m.Or(e.lhs.build(m), e.rhs.build(m))
	default:
		return m.Xor(e.lhs.build(m), e.rhs.build(m))
	}
}

// TestRandomExpressionsExhaustive: for random expressions, the BDD agrees
// with direct evaluation on the whole assignment space, SatCount is
// exact, and AnySat is sound.
func TestRandomExpressionsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	const vars = 7
	for trial := 0; trial < 120; trial++ {
		e := randExpr(rng, vars, 5)
		m := New(vars)
		f := e.build(m)
		count := int64(0)
		assign := make([]bool, vars)
		for x := 0; x < 1<<vars; x++ {
			for i := range assign {
				assign[i] = x&(1<<uint(i)) != 0
			}
			want := e.eval(assign)
			if m.Eval(f, assign) != want {
				t.Fatalf("trial %d: eval mismatch at %d", trial, x)
			}
			if want {
				count++
			}
		}
		if m.SatCount(f).Int64() != count {
			t.Fatalf("trial %d: SatCount %v, brute force %d", trial, m.SatCount(f), count)
		}
		if w, ok := m.AnySat(f); ok {
			if !m.Eval(f, w) {
				t.Fatalf("trial %d: AnySat witness invalid", trial)
			}
		} else if count != 0 {
			t.Fatalf("trial %d: AnySat missed %d solutions", trial, count)
		}
	}
}

// Property: canonicity — two structurally different constructions of the
// same function yield the identical Ref.
func TestCanonicityProperty(t *testing.T) {
	m := New(6)
	f := func(aIdx, bIdx, cIdx uint8) bool {
		a := m.Var(int(aIdx % 6))
		b := m.Var(int(bIdx % 6))
		c := m.Var(int(cIdx % 6))
		// (a∧b)∨(a∧c) == a∧(b∨c)  — distributivity as ref equality.
		lhs := m.Or(m.And(a, b), m.And(a, c))
		rhs := m.And(a, m.Or(b, c))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: double negation and XOR self-inverse as ref identities.
func TestInvolutionProperties(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 80; trial++ {
		e := randExpr(rng, 8, 4)
		f := e.build(m)
		if m.Not(m.Not(f)) != f {
			t.Fatal("¬¬f ≠ f")
		}
		g := randExpr(rng, 8, 4).build(m)
		if m.Xor(m.Xor(f, g), g) != f {
			t.Fatal("(f⊕g)⊕g ≠ f")
		}
	}
}
