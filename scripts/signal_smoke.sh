#!/bin/sh
# signal-smoke: SIGINT safety of caslock-attack.
#
# Launches an attack on a deliberately wide CAS instance (large DIP
# enumeration) with -trace armed, interrupts it mid-run with SIGINT,
# and asserts the contract of the signal handler: exit code 3 (the
# partial-structure path), and a trace file that exists and validates —
# an interrupted run only guarantees the root "attack" span, so
# tracecheck runs with -require attack.
#
# Usage: signal_smoke.sh <workdir>
set -eu

DIR=${1:?usage: signal_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/caslock-attack ./cmd/casgen ./cmd/tracecheck

# Width-24 block: ~16.7M patterns to enumerate, seconds of work — wide
# enough that the SIGINT below lands while the attack is still running.
"$DIR/bin/casgen" -inputs 26 -gates 80 -scheme cas \
	-chain "4A-O-6A-O-8A-O-4A" \
	-out "$DIR/locked.bench" -orig "$DIR/orig.bench"

"$DIR/bin/caslock-attack" -locked "$DIR/locked.bench" -oracle "$DIR/orig.bench" \
	-trace "$DIR/trace.json" >"$DIR/attack.out" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

sleep 1
if ! kill -INT "$PID" 2>/dev/null; then
	echo "signal-smoke: attack finished before the signal; widen the instance" >&2
	cat "$DIR/attack.out" >&2
	exit 1
fi
rc=0
wait "$PID" || rc=$?
trap - EXIT

if [ "$rc" != 3 ]; then
	echo "signal-smoke: interrupted attack exited $rc, want 3" >&2
	cat "$DIR/attack.out" >&2
	exit 1
fi
if ! grep -q "attack interrupted during" "$DIR/attack.out"; then
	echo "signal-smoke: no partial-structure report in output" >&2
	cat "$DIR/attack.out" >&2
	exit 1
fi
if [ ! -s "$DIR/trace.json" ]; then
	echo "signal-smoke: interrupted run left no trace file" >&2
	exit 1
fi
"$DIR/bin/tracecheck" -in "$DIR/trace.json" -require attack

echo "signal-smoke: OK (exit 3, partial structure reported, trace valid)"
rm -rf "$DIR"
