// Package service is the attack-as-a-service layer: a long-running
// front end over internal/core that accepts locked-netlist attack jobs,
// runs them on a bounded worker pool with admission control, and
// amortizes work across requests through a content-addressed result
// cache with singleflight deduplication — N identical submissions run
// the attack once, and a byte-identical resubmission of a completed job
// costs zero oracle or SAT queries.
//
// The boundary is hardened for shared use: requests are validated
// before admission (block width against core.MaxBlockWidth, oracle
// arity against the locked netlist), worker panics are recovered into
// typed JobErrors instead of taking the daemon down, and every job runs
// under its own telemetry registry whose span tree is served back over
// the job API. DESIGN.md §8 documents the cache key derivation, the
// singleflight semantics and the job state machine.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent attack executions (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started
	// executions; a full queue rejects submissions with KindQueueFull
	// (default 16).
	QueueDepth int
	// CacheSize bounds the content-addressed result cache, in completed
	// jobs (default 128).
	CacheSize int
	// MaxBlockWidth caps the admitted CAS block width. 0 defaults to
	// core.MaxBlockWidth; values above it are clamped to it.
	MaxBlockWidth int
	// MaxTimeout caps (and DefaultTimeout fills in) the per-job attack
	// deadline. Zero means no cap / no default.
	MaxTimeout, DefaultTimeout time.Duration
	// Registry receives service-level metrics and per-job lifecycle
	// spans; nil disables them. Per-job attack span trees always exist —
	// they live in the job's own registry regardless.
	Registry *telemetry.Registry
	// Log, when non-nil, receives operational messages.
	Log func(format string, args ...any)
	// JournalDir, when non-empty, arms crash durability: every job
	// transition is appended to a WAL in this directory, executions
	// checkpoint their attack progress into a content-addressed blob
	// store beside it, and New replays the journal on boot — terminal
	// jobs are reconstructed from their sealed outcomes and unfinished
	// ones re-admitted, resuming from their latest checkpoint. Empty
	// disables durability (the pre-journal in-memory behavior).
	JournalDir string
	// WarmEngines, when > 0, keeps up to that many idle SAT backends
	// (engines or portfolios) warm across jobs in an LRU pool keyed by
	// the canonical hashes of both netlists plus the portfolio size: a
	// repeat attack over the same instance adopts a parked backend —
	// encoding, learned clauses and budgeter rate intact — instead of
	// re-encoding from scratch. Jobs over distinct netlists never share
	// members. 0 disables the pool.
	WarmEngines int
}

// AttackRequest is one job submission. Locked and Oracle are
// bench-format netlist texts (the oracle is the activated/original
// circuit; it is simulated server-side).
type AttackRequest struct {
	Locked string `json:"locked"`
	Oracle string `json:"oracle"`
	// Attack names the attack to mount, resolved against the attack
	// registry (internal/attack). Empty means "dip". Only attacks the
	// registry marks Servable are admitted — currently the DIP-learning
	// pipeline, the one attack with checkpoint/resume and event-stream
	// support; the rest are rejected at validation with the servable
	// universe in the error.
	Attack string `json:"attack,omitempty"`
	// MCAS routes the job through the Mirrored-CAS pipeline (SPS strip,
	// then the DIP-learning attack).
	MCAS bool `json:"mcas,omitempty"`
	// Seed drives the attack's probe sampling (part of the cache key).
	Seed int64 `json:"seed,omitempty"`
	// Retries arms targeted re-querying for noisy oracles.
	Retries int `json:"retries,omitempty"`
	// SATWidthLimit overrides the SAT/simulation engine crossover.
	SATWidthLimit int `json:"sat_width_limit,omitempty"`
	// LegacyEncoding disables the persistent incremental-SAT engine for
	// this job (the per-assignment re-encode escape hatch). Part of the
	// cache key: although results are identical, the escape hatch exists
	// precisely for suspected engine misbehavior, so a legacy run must
	// not be answered from an engine-path cache entry.
	LegacyEncoding bool `json:"legacy_encoding,omitempty"`
	// Portfolio, when > 0, races a portfolio of that many diversified
	// SAT engines for this job (see core.Options.Portfolio). Part of the
	// cache key for the same reason LegacyEncoding is: results are
	// bit-identical by contract, but the knob exists to compare engine
	// configurations, so runs must not alias in the cache.
	Portfolio int `json:"portfolio,omitempty"`
	// TimeoutMS bounds the attack; expiry yields a partial outcome.
	// Not part of the cache key (a budget, not a problem statement).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers overrides the enumeration shard count (0 = all cores).
	// Not part of the cache key (results are bit-identical regardless).
	Workers int `json:"workers,omitempty"`
}

// JobState is the job lifecycle state exposed by the API.
type JobState string

const (
	StateQueued     JobState = "queued"
	StateRunning    JobState = "running"
	StateCancelling JobState = "cancelling"
	StateDone       JobState = "done"
	StatePartial    JobState = "partial"
	StateFailed     JobState = "failed"
	StateCanceled   JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StatePartial, StateFailed, StateCanceled:
		return true
	}
	return false
}

// JobResult is a successful recovery, JSON-shaped for the API.
type JobResult struct {
	Key             string  `json:"key"`
	Chain           string  `json:"chain"`
	Case            int     `json:"case"`
	KeyGates1       string  `json:"key_gates_1"`
	KeyGates2       string  `json:"key_gates_2"`
	AlignedDIPs     uint64  `json:"aligned_dips"`
	TotalDIPs       uint64  `json:"total_dips"`
	OracleQueries   uint64  `json:"oracle_queries"`
	Extractions     int     `json:"extractions"`
	Calibrations    int     `json:"calibrations"`
	CandidatesTried int     `json:"candidates_tried"`
	MCAS            bool    `json:"mcas,omitempty"`
	RemovedFlipProb float64 `json:"removed_flip_prob,omitempty"`
	ElapsedMS       int64   `json:"elapsed_ms"`
}

// PartialInfo is the structure recovered before an interruption.
type PartialInfo struct {
	Stage       string `json:"stage"`
	Case        int    `json:"case"`
	Chain       string `json:"chain,omitempty"`
	KeyGates    string `json:"key_gates,omitempty"`
	DIPs        uint64 `json:"dips"`
	Extractions int    `json:"extractions"`
	Cause       string `json:"cause"`
}

// outcome is one execution's immutable final record, shared by every
// job that deduplicated onto it (and by cache hits afterwards).
type outcome struct {
	result  *JobResult
	partial *PartialInfo
	jobErr  *JobError
	trace   []byte         // Chrome-trace JSON of the job's span tree
	events  []events.Event // sealed lifecycle event history, ending in done
}

func (o *outcome) state() JobState {
	switch {
	case o.result != nil:
		return StateDone
	case o.partial != nil:
		return StatePartial
	case o.jobErr != nil && o.jobErr.Kind == KindCanceled:
		return StateCanceled
	default:
		return StateFailed
	}
}

// parsedRequest is an admission-validated request.
type parsedRequest struct {
	req    AttackRequest
	locked *netlist.Circuit
	orig   *netlist.Circuit
	width  int
}

// execution is one in-flight attack shared by all jobs with its hash.
type execution struct {
	hash   string
	parsed *parsedRequest
	flight *cache.Flight[*outcome]
	ctx    context.Context
	cancel context.CancelFunc
	tel    *telemetry.Registry // per-job registry (attack span tree)
	bus    *events.Bus         // per-execution lifecycle event stream (SSE source)
	track  *events.Tracker     // progress/ETA estimator feeding the bus

	mu         sync.Mutex
	running    bool
	startedAt  time.Time
	finishedAt time.Time
}

func (e *execution) phase() JobState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return StateRunning
	}
	return StateQueued
}

// Job is one submission's handle. Jobs sharing a content hash share an
// execution; each job still has its own ID, timestamps and cancel
// state.
type Job struct {
	id          string
	hash        string
	submittedAt time.Time
	cached      bool       // admitted as a cache hit
	exec        *execution // nil on the cached fast path
	done        *outcome   // set immediately on the cached fast path

	cancelOnce sync.Once
	cancelled  atomic.Bool
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the job's content-address (the cache key digest).
func (j *Job) Hash() string { return j.hash }

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID              string       `json:"id"`
	Hash            string       `json:"hash"`
	State           JobState     `json:"state"`
	Cached          bool         `json:"cached"`
	CancelRequested bool         `json:"cancel_requested,omitempty"`
	SubmittedAt     time.Time    `json:"submitted_at"`
	StartedAt       *time.Time   `json:"started_at,omitempty"`
	FinishedAt      *time.Time   `json:"finished_at,omitempty"`
	Error           string       `json:"error,omitempty"`
	ErrorKind       ErrorKind    `json:"error_kind,omitempty"`
	Partial         *PartialInfo `json:"partial,omitempty"`
	// Progress is the estimator's live digest while the job runs
	// (fraction, phase, ETA); a successfully finished job reports
	// fraction 1.
	Progress *events.Progress `json:"progress,omitempty"`
}

// Service is the attack-as-a-service front end. Construct with New,
// stop with Close.
type Service struct {
	cfg   Config
	tel   *telemetry.Registry
	store *cache.Store[*outcome]
	group *cache.Group[*outcome]
	queue chan *execution

	mu     sync.Mutex
	jobs   map[string]*Job
	active map[string]*execution // hash → in-flight execution
	closed bool

	nextID atomic.Uint64
	wg     sync.WaitGroup

	baseCtx   context.Context
	cancelAll context.CancelFunc

	// sseHeartbeat overrides the idle keep-alive cadence on event
	// streams (0 = defaultSSEHeartbeat); tests shorten it.
	sseHeartbeat time.Duration

	// beforeRun, when non-nil, runs on the worker goroutine just before
	// the attack starts — a test seam for deterministic cancellation and
	// fault injection. A panic inside it exercises the worker's
	// panic-to-JobError boundary.
	beforeRun func(ctx context.Context, hash string) error

	journal *journal
	warm    *engine.Pool // nil = warm-engine reuse disabled

	cSubmitted      *telemetry.Counter
	cCacheHits      *telemetry.Counter
	cDeduped        *telemetry.Counter
	cAttackRuns     *telemetry.Counter
	cQueries        *telemetry.Counter
	cPanics         *telemetry.Counter
	cJournalRecords *telemetry.Counter
	gRunning        *telemetry.Gauge
	gQueued         *telemetry.Gauge
}

// New starts a service with cfg's worker pool. With Config.JournalDir
// set it first replays the job journal found there; a corrupt journal
// fails the boot with an error wrapping ErrJournalCorrupt rather than
// silently dropping jobs.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.MaxBlockWidth <= 0 || cfg.MaxBlockWidth > core.MaxBlockWidth {
		cfg.MaxBlockWidth = core.MaxBlockWidth
	}
	var (
		jnl  *journal
		recs []record
	)
	if cfg.JournalDir != "" {
		var err error
		jnl, recs, err = openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
	}
	replayJobs, doneHashes := buildReplay(recs)
	// The queue must hold every re-admitted job before the workers start,
	// so replay can never deadlock on a full channel.
	pending := 0
	for _, rj := range replayJobs {
		if _, done := doneHashes[rj.hash]; !done && !rj.canceled {
			pending++
		}
	}
	queueCap := cfg.QueueDepth
	if pending > queueCap {
		queueCap = pending
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		tel:       cfg.Registry,
		store:     cache.NewStore[*outcome](cfg.CacheSize),
		group:     cache.NewGroup[*outcome](),
		queue:     make(chan *execution, queueCap),
		jobs:      make(map[string]*Job),
		active:    make(map[string]*execution),
		baseCtx:   ctx,
		cancelAll: cancel,
		journal:   jnl,
	}
	if cfg.WarmEngines > 0 {
		s.warm = engine.NewPool(cfg.WarmEngines)
		s.warm.SetTelemetry(cfg.Registry)
	}
	s.cSubmitted = s.tel.Counter("service_jobs_submitted_total")
	s.cCacheHits = s.tel.Counter("service_cache_hits_total")
	s.cDeduped = s.tel.Counter("service_singleflight_joins_total")
	s.cAttackRuns = s.tel.Counter("service_attack_runs_total")
	s.cQueries = s.tel.Counter("service_oracle_queries_total")
	s.cPanics = s.tel.Counter("service_worker_panics_total")
	s.cJournalRecords = s.tel.Counter("journal_records_total")
	s.gRunning = s.tel.Gauge("service_jobs_running")
	s.gQueued = s.tel.Gauge("service_queue_depth")
	if jnl != nil {
		s.replay(replayJobs, doneHashes)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay rebuilds the job ledger from the journal before the workers
// start: no locks needed, nothing else is running yet. Jobs keep their
// original IDs; re-admission writes no new journal records, so replay
// is idempotent across repeated crashes.
func (s *Service) replay(jobs []*replayJob, doneHashes map[string]string) {
	var maxID uint64
	for _, rj := range jobs {
		if n := idSuffix(rj.id); n > maxID {
			maxID = n
		}
		job := &Job{id: rj.id, hash: rj.hash, submittedAt: time.Now()}
		state := "pending"
		switch {
		case rj.canceled:
			job.cancelled.Store(true)
			job.done = &outcome{jobErr: &JobError{Kind: KindCanceled, Err: errors.New("job canceled before restart")}}
			state = "canceled"
		case doneHashes[rj.hash] == string(StateCanceled):
			job.done = &outcome{jobErr: &JobError{Kind: KindCanceled, Err: errors.New("execution canceled before restart")}}
			state = "done"
		case doneHashes[rj.hash] != "":
			if out, err := s.journal.loadOutcome(rj.hash); err == nil {
				job.done = out
				job.cached = true
				if out.result != nil {
					s.store.Put(rj.hash, out)
				}
				state = "done"
			} else {
				// The done record landed but its blob did not survive:
				// re-run rather than lose the job.
				s.logf("replay: outcome blob for %s unreadable (%v), re-running", shortHash(rj.hash), err)
				s.readmit(job, rj)
			}
		default:
			s.readmit(job, rj)
		}
		s.jobs[job.id] = job
		s.tel.Counter(telemetry.Label("journal_replayed_total", "state", state)).Inc()
		s.logf("replay: job %s (%s) restored as %s", rj.id, shortHash(rj.hash), state)
	}
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}
}

// readmit re-validates a journaled request and queues its execution,
// deduplicating multiple replayed jobs with the same hash onto one
// flight exactly like live submissions.
func (s *Service) readmit(job *Job, rj *replayJob) {
	var req AttackRequest
	parsed, err := func() (*parsedRequest, error) {
		if err := json.Unmarshal(rj.reqJSON, &req); err != nil {
			return nil, err
		}
		return s.validate(req)
	}()
	if err != nil {
		job.done = &outcome{jobErr: &JobError{Kind: KindAttackFailed,
			Err: fmt.Errorf("journaled request no longer admissible: %w", err)}}
		return
	}
	flight, leader := s.group.Join(rj.hash)
	if leader {
		exec := s.newExecution(rj.hash, parsed, flight)
		s.queue <- exec // capacity sized to hold every pending replay
		s.active[rj.hash] = exec
	}
	job.exec = s.active[rj.hash]
}

func idSuffix(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "j-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Close stops admission, cancels every queued and running execution and
// waits for the workers to drain. Safe to call twice.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
	if s.journal != nil {
		s.journal.close()
	}
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// hashRequest derives the content address: SHA-256 over the canonical
// serializations of both netlists plus the attack-semantics options.
// Budget/parallelism knobs (TimeoutMS, Workers) are deliberately
// excluded — they change how long the computation may take, not what it
// computes.
func hashRequest(p *parsedRequest) (string, error) {
	lockedBytes, err := bench.Canonical(p.locked)
	if err != nil {
		return "", err
	}
	origBytes, err := bench.Canonical(p.orig)
	if err != nil {
		return "", err
	}
	opts := fmt.Sprintf("v4 attack=%s mcas=%t seed=%d retries=%d satwidth=%d legacy=%t portfolio=%d",
		p.req.Attack, p.req.MCAS, p.req.Seed, p.req.Retries, p.req.SATWidthLimit, p.req.LegacyEncoding, p.req.Portfolio)
	return cache.SumParts(lockedBytes, origBytes, []byte(opts)), nil
}

// servableUniverse renders the attacks the service admits as jobs.
func servableUniverse() string {
	var names []string
	for _, a := range attack.Attacks() {
		if a.Servable {
			names = append(names, a.Name)
		}
	}
	return strings.Join(names, ", ")
}

// validate is the admission boundary: it parses both netlists, checks
// the oracle's arity against the locked circuit, and validates the
// block width BEFORE the job is queued — out-of-universe widths are
// rejected here with a typed error instead of being discovered as a
// panic deep inside a worker.
func (s *Service) validate(req AttackRequest) (*parsedRequest, error) {
	if strings.TrimSpace(req.Locked) == "" || strings.TrimSpace(req.Oracle) == "" {
		return nil, errInvalid("locked and oracle netlists are required")
	}
	if req.Retries < 0 || req.SATWidthLimit < 0 || req.Workers < 0 || req.TimeoutMS < 0 || req.Portfolio < 0 {
		return nil, errInvalid("negative option values")
	}
	attackName := req.Attack
	if attackName == "" {
		attackName = "dip"
	}
	atk, ok := attack.AttackByName(attackName)
	if !ok {
		return nil, errInvalid("unknown attack %q (have: %s)", req.Attack, attack.Universe())
	}
	if !atk.Servable {
		return nil, errInvalid("attack %q is not servable as a job (servable: %s)", atk.Name, servableUniverse())
	}
	locked, err := bench.ReadString("locked", req.Locked)
	if err != nil {
		return nil, errInvalid("locked netlist: %v", err)
	}
	orig, err := bench.ReadString("oracle", req.Oracle)
	if err != nil {
		return nil, errInvalid("oracle netlist: %v", err)
	}
	if orig.NumKeys() != 0 {
		return nil, errInvalid("oracle netlist has %d key inputs, want 0 (submit the activated/original circuit)", orig.NumKeys())
	}
	if orig.NumInputs() != locked.NumInputs() || orig.NumOutputs() != locked.NumOutputs() {
		return nil, errInvalid("oracle arity %d→%d does not match locked %d→%d",
			orig.NumInputs(), orig.NumOutputs(), locked.NumInputs(), locked.NumOutputs())
	}
	if locked.NumKeys() == 0 {
		return nil, errInvalid("locked netlist has no key inputs")
	}
	// Normalize the attack name so equivalent spellings ("", "dip",
	// "DIP-learning") content-address identically.
	req.Attack = atk.Name
	p := &parsedRequest{req: req, locked: locked, orig: orig}
	if req.MCAS {
		// The M-CAS pipeline discovers the inner layout only after the
		// SPS strip; bound the width by what the key count implies.
		p.width = locked.NumKeys() / 4
		if locked.NumKeys()%4 != 0 || p.width < 1 {
			return nil, errInvalid("M-CAS key count %d is not 4×block width", locked.NumKeys())
		}
	} else {
		layout, err := core.DiscoverLayout(locked)
		if err != nil {
			return nil, errInvalid("locked netlist is not a recognizable CAS instance: %v", err)
		}
		p.width = layout.N()
		if layout.N()*2 != locked.NumKeys() {
			return nil, errInvalid("layout covers %d key bits, circuit has %d", layout.N()*2, locked.NumKeys())
		}
	}
	if p.width < 1 || p.width > s.cfg.MaxBlockWidth {
		return nil, &JobError{Kind: KindInvalid, Err: fmt.Errorf("%w: block width %d outside [1, %d]",
			core.ErrBlockWidth, p.width, s.cfg.MaxBlockWidth)}
	}
	return p, nil
}

// Submit validates and admits one job. Identical in-flight submissions
// deduplicate onto one execution; identical completed submissions are
// answered from the cache without running anything. A full queue is a
// typed KindQueueFull rejection (HTTP 429 at the API layer).
func (s *Service) Submit(req AttackRequest) (*Job, error) {
	parsed, err := s.validate(req)
	if err != nil {
		s.tel.Counter(telemetry.Label("service_jobs_rejected_total", "reason", "invalid")).Inc()
		return nil, err
	}
	hash, err := hashRequest(parsed)
	if err != nil {
		return nil, errInvalid("canonicalizing request: %v", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &JobError{Kind: KindUnavailable, Err: errors.New("service is shutting down")}
	}
	job := &Job{
		id:          fmt.Sprintf("j-%06d", s.nextID.Add(1)),
		hash:        hash,
		submittedAt: time.Now(),
	}
	if out, ok := s.store.Lookup(hash); ok {
		job.cached = true
		job.done = out
		s.jobs[job.id] = job
		s.cSubmitted.Inc()
		s.cCacheHits.Inc()
		s.journalSubmit(job, req)
		s.logf("job %s: cache hit for %s", job.id, shortHash(hash))
		return job, nil
	}
	flight, leader := s.group.Join(hash)
	if leader {
		exec := s.newExecution(hash, parsed, flight)
		select {
		case s.queue <- exec:
			s.active[hash] = exec
			s.gQueued.Set(int64(len(s.queue)))
		default:
			// Undo the join: finish the flight with the rejection so the
			// group entry is removed (no follower can exist yet — Submit
			// runs under s.mu).
			exec.cancel()
			rejection := &outcome{jobErr: &JobError{Kind: KindQueueFull, Err: errors.New("admission queue full")}}
			flight.Finish(rejection, nil)
			s.tel.Counter(telemetry.Label("service_jobs_rejected_total", "reason", "queue_full")).Inc()
			return nil, rejection.jobErr
		}
	} else {
		s.cDeduped.Inc()
	}
	job.exec = s.active[hash]
	if job.exec == nil {
		// The flight predates our lock but its execution already left the
		// active map: it is finishing concurrently; treat it like a join
		// on a completed flight (snapshot will read the outcome).
		job.exec = &execution{hash: hash, flight: flight, tel: telemetry.New()}
	}
	s.jobs[job.id] = job
	s.cSubmitted.Inc()
	s.journalSubmit(job, req)
	return job, nil
}

// newExecution builds a leader execution with the service's deadline
// policy applied.
func (s *Service) newExecution(hash string, parsed *parsedRequest, flight *cache.Flight[*outcome]) *execution {
	ctx, cancel := context.WithCancel(s.baseCtx)
	timeout := time.Duration(parsed.req.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	exec := &execution{
		hash:   hash,
		parsed: parsed,
		flight: flight,
		ctx:    ctx,
		cancel: cancel,
		tel:    telemetry.New(),
	}
	// Every execution carries its own event bus: the attack publishes
	// lifecycle events into it, the tracker distills them into progress
	// digests (republished on the same bus for SSE readers), and the
	// progress gauge mirror feeds the dashboard's per-job bars.
	exec.bus = events.New(events.Options{Telemetry: s.tel})
	short := shortHash(hash)
	gProgress := s.tel.Gauge(telemetry.Label("service_job_progress", "job", short))
	exec.track = events.Track(exec.bus, progressRepublishGap, func(p events.Progress) {
		gProgress.Set(int64(p.Fraction * 10000)) // basis points
	})
	flight.SetCancel(cancel)
	return exec
}

// progressRepublishGap throttles the tracker's progress events; SSE
// clients see at most a few digests per second per job.
const progressRepublishGap = 250 * time.Millisecond

// sealEvents ends an execution's event stream: the tracker is drained,
// a terminal done event carrying the job state is published, and the
// closed bus's full history is copied into the outcome so cache hits
// and restarts can replay the stream to late subscribers. Closing the
// tracker before publishing done keeps done the stream's last event.
func (s *Service) sealEvents(exec *execution, out *outcome) {
	if exec.bus == nil {
		return
	}
	exec.track.Close()
	exec.bus.Publish(events.Event{
		Type:     events.TypeDone,
		Fraction: 1,
		Fields:   map[string]string{"state": string(out.state())},
	})
	exec.bus.Close()
	out.events = exec.bus.History(0)
	s.tel.Gauge(telemetry.Label("service_job_progress", "job", shortHash(exec.hash))).Set(10000)
}

// journalAppend records one WAL entry, counting failures instead of
// failing the caller: durability degrades, admission does not.
func (s *Service) journalAppend(typ byte, fields ...[]byte) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(typ, fields...); err != nil {
		s.tel.Counter("journal_append_errors_total").Inc()
		s.logf("journal append failed: %v", err)
		return
	}
	s.cJournalRecords.Inc()
}

// journalSubmit appends a job's admission record (including cache hits
// and singleflight followers — each job must survive a restart under
// its own ID).
func (s *Service) journalSubmit(job *Job, req AttackRequest) {
	if s.journal == nil {
		return
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		s.logf("journal: marshaling request for %s: %v", job.id, err)
		return
	}
	s.journalAppend(recSubmit, []byte(job.id), []byte(job.hash), reqJSON)
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// Get returns a job's status snapshot.
func (s *Service) Get(id string) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.snapshot(), nil
}

// Outcome returns a job's terminal outcome, or an error when the job is
// unknown or still in progress (the boolean distinguishes: false means
// not finished yet).
func (s *Service) Outcome(id string) (*JobStatus, *JobResult, bool, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, nil, false, err
	}
	st := j.snapshot()
	out := j.outcome()
	if out == nil {
		return &st, nil, false, nil
	}
	return &st, out.result, true, nil
}

// Trace returns the Chrome-trace JSON of a job's span tree. For a job
// still in progress it snapshots the spans ended so far.
func (s *Service) Trace(id string) ([]byte, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if out := j.outcome(); out != nil && out.trace != nil {
		return out.trace, nil
	}
	if j.exec == nil || j.exec.tel == nil {
		return []byte("[]"), nil
	}
	var buf bytes.Buffer
	if err := j.exec.tel.WriteChromeTrace(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Cancel withdraws one job's interest in its execution. The execution
// itself is only aborted when its last interested job cancels — that is
// the refcounted singleflight contract — after which the in-flight
// attack winds down into a partial outcome.
func (s *Service) Cancel(id string) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	if j.exec != nil && j.outcome() == nil {
		j.cancelOnce.Do(func() {
			j.cancelled.Store(true)
			s.journalAppend(recCancel, []byte(j.id))
			j.exec.flight.Leave()
		})
	}
	return j.snapshot(), nil
}

// List returns a snapshot of every known job, newest first.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sortStatuses(out)
	return out
}

func sortStatuses(xs []JobStatus) {
	// Newest first: IDs are monotonic, so reverse-lexicographic on the
	// zero-padded numeric suffix is submission order reversed.
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[j].ID > xs[i].ID {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
}

func (s *Service) lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &JobError{Kind: KindNotFound, Err: fmt.Errorf("unknown job %q", id)}
	}
	return j, nil
}

// outcome returns the job's terminal outcome, nil while in progress.
func (j *Job) outcome() *outcome {
	if j.done != nil {
		return j.done
	}
	if j.exec == nil {
		return nil
	}
	select {
	case <-j.exec.flight.Done:
		out, _ := j.exec.flight.Result()
		return out
	default:
		return nil
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (j *Job) Wait(ctx context.Context) (*JobStatus, error) {
	if j.done == nil && j.exec != nil {
		select {
		case <-j.exec.flight.Done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	st := j.snapshot()
	return &st, nil
}

func (j *Job) snapshot() JobStatus {
	st := JobStatus{
		ID:              j.id,
		Hash:            j.hash,
		Cached:          j.cached,
		CancelRequested: j.cancelled.Load(),
		SubmittedAt:     j.submittedAt,
	}
	out := j.outcome()
	if out == nil {
		st.State = j.exec.phase()
		if st.CancelRequested {
			st.State = StateCancelling
		}
		if st.State == StateRunning {
			j.exec.mu.Lock()
			t := j.exec.startedAt
			j.exec.mu.Unlock()
			st.StartedAt = &t
			if j.exec.track != nil {
				p := j.exec.track.Snapshot()
				st.Progress = &p
			}
		}
		return st
	}
	st.State = out.state()
	if st.State == StateDone {
		st.Progress = &events.Progress{Fraction: 1, Phase: "done"}
	}
	st.Partial = out.partial
	if out.jobErr != nil {
		st.Error = out.jobErr.Error()
		st.ErrorKind = out.jobErr.Kind
	}
	if out.partial != nil {
		st.Error = out.partial.Cause
	}
	if j.exec != nil {
		j.exec.mu.Lock()
		if !j.exec.startedAt.IsZero() {
			t := j.exec.startedAt
			st.StartedAt = &t
		}
		if !j.exec.finishedAt.IsZero() {
			t := j.exec.finishedAt
			st.FinishedAt = &t
		}
		j.exec.mu.Unlock()
	}
	return st
}

// maxPanicAttempts bounds the journal-armed panic retry loop: the
// first run plus this many retries from the last checkpoint.
const maxPanicAttempts = 3

// worker drains the execution queue.
func (s *Service) worker() {
	defer s.wg.Done()
	for exec := range s.queue {
		s.gQueued.Set(int64(len(s.queue)))
		s.journalAppend(recStart, []byte(exec.hash))
		out := s.runProtected(exec)
		// A snapshot the attack refuses (format or option drift across
		// releases) must not wedge the job: drop it and run fresh once.
		if s.journal != nil && out.jobErr != nil && errors.Is(out.jobErr.Err, core.ErrResumeMismatch) {
			s.journal.removeCheckpoint(exec.hash)
			s.logf("job %s: stale checkpoint refused, restarting fresh", shortHash(exec.hash))
			out = s.runProtected(exec)
		}
		// With durability armed a panicking attack retries from its last
		// checkpoint with backoff instead of failing outright.
		for attempt := 1; s.journal != nil && attempt < maxPanicAttempts &&
			out.jobErr != nil && out.jobErr.Kind == KindPanic && exec.ctx.Err() == nil; attempt++ {
			s.tel.Counter("service_panic_retries_total").Inc()
			s.logf("job %s: panicked, retrying from last checkpoint (attempt %d/%d)",
				shortHash(exec.hash), attempt+1, maxPanicAttempts)
			select {
			case <-time.After(time.Duration(1<<uint(attempt-1)) * 100 * time.Millisecond):
			case <-exec.ctx.Done():
			}
			out = s.runProtected(exec)
		}
		// Seal the event stream before the outcome becomes visible
		// anywhere: the cache, the journal blob and the flight all carry
		// the finished history.
		s.sealEvents(exec, out)
		if out.result != nil {
			s.store.Put(exec.hash, out)
		}
		s.sealDurable(exec, out)
		s.mu.Lock()
		delete(s.active, exec.hash)
		s.mu.Unlock()
		exec.mu.Lock()
		exec.finishedAt = time.Now()
		exec.mu.Unlock()
		exec.cancel() // release the context's timer; the outcome is sealed
		exec.flight.Finish(out, nil)
	}
}

// sealDurable persists a terminal outcome: blob first, then the done
// record (a crash between the two replays as pending, which only costs
// a re-run). During shutdown only completed results are sealed — a job
// canceled or cut to a partial by the daemon winding down must replay
// as pending and resume from its checkpoint after restart.
func (s *Service) sealDurable(exec *execution, out *outcome) {
	if s.journal == nil {
		return
	}
	if s.baseCtx.Err() != nil && out.result == nil {
		return
	}
	if err := s.journal.writeOutcome(exec.hash, out); err != nil {
		s.logf("job %s: persisting outcome: %v", shortHash(exec.hash), err)
		return
	}
	s.journalAppend(recDone, []byte(exec.hash), []byte(out.state()))
	s.journal.removeCheckpoint(exec.hash)
}

// runProtected executes one attack with the worker's panic boundary:
// core.RunSafe already converts attack-internal panics, and this outer
// recover catches everything else (hooks, option plumbing), so a worker
// goroutine can never take the daemon down.
func (s *Service) runProtected(exec *execution) (out *outcome) {
	defer func() {
		if r := recover(); r != nil {
			s.cPanics.Inc()
			s.logf("job %s: worker panic recovered: %v", shortHash(exec.hash), r)
			out = &outcome{jobErr: &JobError{Kind: KindPanic, Err: fmt.Errorf("worker panic: %v", r)}}
		}
	}()

	jobSpan := s.tel.StartSpan("job")
	jobSpan.SetArg("hash", shortHash(exec.hash))
	defer jobSpan.End()

	exec.mu.Lock()
	exec.running = true
	exec.startedAt = time.Now()
	exec.mu.Unlock()
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)

	if hook := s.beforeRun; hook != nil {
		if err := hook(exec.ctx, exec.hash); err != nil {
			return s.finishOutcome(exec, nil, err, time.Time{})
		}
	}
	if err := exec.ctx.Err(); err != nil {
		// Every submitter left (or the deadline passed) while the job was
		// still queued: nothing ran, nothing partial to report.
		jobSpan.SetArg("state", string(StateCanceled))
		return &outcome{jobErr: &JobError{Kind: KindCanceled, Err: err}}
	}

	req := exec.parsed.req
	sim, err := oracle.NewSim(exec.parsed.orig)
	if err != nil {
		return &outcome{jobErr: &JobError{Kind: KindAttackFailed, Err: err}}
	}
	opts := core.Options{
		Oracle:          sim,
		Context:         exec.ctx,
		Seed:            req.Seed,
		MismatchRetries: req.Retries,
		SATWidthLimit:   req.SATWidthLimit,
		LegacyEncoding:  req.LegacyEncoding,
		Portfolio:       req.Portfolio,
		Workers:         req.Workers,
		Telemetry:       exec.tel,
		Events:          exec.bus,
	}
	if s.warm != nil {
		if key := warmKey(exec); key != "" {
			opts.EnginePool = s.warm
			opts.EngineKey = key
		}
	}
	if w := s.armDurability(exec, &opts); w != nil {
		defer w.Close()
	}
	s.cAttackRuns.Inc()
	start := time.Now()
	var (
		res     *core.Result
		fullKey []bool
		flip    float64
		runErr  error
	)
	if req.MCAS {
		var mres *core.MCASResult
		mres, runErr = core.RunMCASSafe(exec.parsed.locked, sim, opts)
		if runErr == nil {
			res, fullKey, flip = mres.Inner, mres.Key, mres.RemovedFlipProb
		}
	} else {
		opts.Locked = exec.parsed.locked
		res, runErr = core.RunSafe(opts)
		if runErr == nil {
			fullKey = res.Key
		}
	}
	out = s.buildOutcome(exec, req, res, fullKey, flip, runErr, start)
	s.cQueries.Add(queriesOf(res, exec.tel))
	jobSpan.SetArg("state", string(out.state()))
	return s.sealTrace(exec, out)
}

// warmKey scopes a job's warm-pool entries. Canonical hashes of BOTH
// netlists: the backend's literal layout only depends on the locked
// circuit, but keying the oracle too keeps jobs against different
// oracles on fresh members (conservative isolation, and the property
// the pool regression test pins). The MCAS flag is included because
// the mirrored pipeline attacks the SPS-stripped inner circuit, not
// the submitted one. Empty (no pooling) when canonicalization fails —
// the attack will surface that error itself.
func warmKey(exec *execution) string {
	lockedBytes, err := bench.Canonical(exec.parsed.locked)
	if err != nil {
		return ""
	}
	origBytes, err := bench.Canonical(exec.parsed.orig)
	if err != nil {
		return ""
	}
	return cache.SumParts(lockedBytes, origBytes, []byte(fmt.Sprintf("mcas=%t", exec.parsed.req.MCAS)))
}

// armDurability points a journal-armed job at its checkpoint slot in
// the blob store: resume from an existing snapshot when its oracle
// identity matches, and arm a writer so progress survives the next
// crash. Returns nil (no durability) when the journal is off or the
// writer cannot start — the attack still runs, just non-resumably.
func (s *Service) armDurability(exec *execution, opts *core.Options) *checkpoint.Writer {
	if s.journal == nil {
		return nil
	}
	origBytes, err := bench.Canonical(exec.parsed.orig)
	if err != nil {
		return nil
	}
	oracleHash := cache.SumParts(origBytes)
	path := s.journal.checkpointPath(exec.hash)
	if snap, err := checkpoint.Load(path); err == nil {
		if snap.OracleHash == "" || snap.OracleHash == oracleHash {
			opts.ResumeFrom = snap
			s.tel.Counter("journal_resumed_from_checkpoint_total").Inc()
			s.logf("job %s: resuming from checkpoint (phase=%s, %d banked responses)",
				shortHash(exec.hash), snap.Phase, len(snap.Responses)+len(snap.Scalar))
		} else {
			s.logf("job %s: checkpoint oracle hash mismatch, starting fresh", shortHash(exec.hash))
		}
	}
	w, err := checkpoint.NewWriter(checkpoint.WriterConfig{
		Path:       path,
		OracleHash: oracleHash,
		Telemetry:  exec.tel,
	})
	if err != nil {
		s.logf("job %s: checkpoint writer: %v", shortHash(exec.hash), err)
		return nil
	}
	opts.Checkpointer = w
	s.journalAppend(recCheckpointRef, []byte(exec.hash), []byte(filepath.Join("cas", "ck-"+exec.hash+".bin")))
	return w
}

// finishOutcome wraps a pre-attack failure (hook error) uniformly.
func (s *Service) finishOutcome(exec *execution, res *core.Result, err error, _ time.Time) *outcome {
	out := s.buildOutcome(exec, exec.parsed.req, res, nil, 0, err, time.Now())
	return s.sealTrace(exec, out)
}

// buildOutcome classifies an attack error into the job state machine.
func (s *Service) buildOutcome(exec *execution, req AttackRequest, res *core.Result, fullKey []bool, flip float64, runErr error, start time.Time) *outcome {
	if runErr == nil && res != nil {
		return &outcome{result: &JobResult{
			Key:             bitString(fullKey),
			Chain:           res.Chain.String(),
			Case:            res.Case,
			KeyGates1:       gateString(res.KeyGates1),
			KeyGates2:       gateString(res.KeyGates2),
			AlignedDIPs:     res.AlignedDIPs,
			TotalDIPs:       res.TotalDIPs,
			OracleQueries:   res.OracleQueries,
			Extractions:     res.Extractions,
			Calibrations:    res.Calibrations,
			CandidatesTried: res.CandidatesTried,
			MCAS:            req.MCAS,
			RemovedFlipProb: flip,
			ElapsedMS:       time.Since(start).Milliseconds(),
		}}
	}
	var pe *core.PartialError
	if errors.As(runErr, &pe) {
		return &outcome{partial: &PartialInfo{
			Stage:       pe.Stage,
			Case:        pe.Case,
			Chain:       chainString(pe.Chain),
			KeyGates:    gateString(pe.KeyGates),
			DIPs:        pe.DIPs,
			Extractions: pe.Extractions,
			Cause:       pe.Err.Error(),
		}}
	}
	var panicErr *core.PanicError
	if errors.As(runErr, &panicErr) {
		s.cPanics.Inc()
		s.logf("job %s: attack panic recovered: %v", shortHash(exec.hash), panicErr.Value)
		return &outcome{jobErr: &JobError{Kind: KindPanic, Err: panicErr}}
	}
	return &outcome{jobErr: &JobError{Kind: KindAttackFailed, Err: runErr}}
}

// sealTrace snapshots the per-job span tree into the outcome so cache
// hits and late readers see the trace without holding the registry.
func (s *Service) sealTrace(exec *execution, out *outcome) *outcome {
	var buf bytes.Buffer
	if err := exec.tel.WriteChromeTrace(&buf); err == nil {
		out.trace = buf.Bytes()
	}
	return out
}

// queriesOf reads the execution's oracle-query spend for the service
// counter: the Result's tally when the attack finished, the registry's
// counter when it was interrupted midway.
func queriesOf(res *core.Result, tel *telemetry.Registry) uint64 {
	if res != nil {
		return res.OracleQueries
	}
	return tel.Counter("attack_oracle_queries_total").Value()
}

func bitString(key []bool) string {
	var sb strings.Builder
	for _, b := range key {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func gateString(kg []netlist.GateType) string {
	if kg == nil {
		return ""
	}
	parts := make([]string, len(kg))
	for i, t := range kg {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

func chainString(c fmt.Stringer) string {
	if c == nil {
		return ""
	}
	return c.String()
}
