// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-watched-literal propagation, 1UIP conflict analysis
// with clause minimization, VSIDS decision ordering, phase saving, Luby
// restarts, learned-clause database reduction, and incremental solving
// under assumptions. A reference DPLL solver is provided for differential
// testing.
//
// The public API speaks cnf.Lit (DIMACS-style signed literals); the
// internal representation packs literals as 2*var+sign.
package sat

import "repro/internal/cnf"

// lit is the internal literal encoding: variable index v (0-based)
// becomes 2v (positive) or 2v+1 (negative).
type lit uint32

const litUndef lit = ^lit(0)

func mkLit(v int, neg bool) lit {
	l := lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

func (l lit) vari() int    { return int(l >> 1) }
func (l lit) neg() lit     { return l ^ 1 }
func (l lit) signed() bool { return l&1 == 1 } // true when negated

// fromCNF converts a DIMACS literal to internal form.
func fromCNF(l cnf.Lit) lit { return mkLit(l.Var()-1, !l.Sign()) }

// toCNF converts an internal literal to DIMACS form.
func toCNF(l lit) cnf.Lit {
	v := cnf.Lit(l.vari() + 1)
	if l.signed() {
		return -v
	}
	return v
}

// lbool is a three-valued boolean.
type lbool uint8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

func (b lbool) flip() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}
