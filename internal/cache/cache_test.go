package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSumPartsBoundaries(t *testing.T) {
	a := SumParts([]byte("ab"), []byte("c"))
	b := SumParts([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("part boundaries must be hashed")
	}
	if a != SumParts([]byte("ab"), []byte("c")) {
		t.Fatal("digest not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(a))
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLRU[int, string](2)
	l.Put(1, "a")
	l.Put(2, "b")
	if _, ok := l.Get(1); !ok { // touch 1: 2 becomes LRU
		t.Fatal("1 missing")
	}
	l.Put(3, "c") // evicts 2
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should be evicted")
	}
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("1 = %q,%v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("len %d", l.Len())
	}
	l.Put(1, "a2") // update keeps size
	if v, _ := l.Get(1); v != "a2" {
		t.Fatal("update lost")
	}
	if l.Len() != 2 {
		t.Fatalf("len %d after update", l.Len())
	}
}

func TestLRUUnbounded(t *testing.T) {
	l := NewLRU[int, int](0)
	for i := 0; i < 100; i++ {
		l.Put(i, i)
	}
	if l.Len() != 100 {
		t.Fatalf("unbounded LRU evicted: len %d", l.Len())
	}
}

func TestStore(t *testing.T) {
	s := NewStore[int](4)
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("empty store hit")
	}
	s.Put("x", 7)
	if v, ok := s.Lookup("x"); !ok || v != 7 {
		t.Fatalf("x = %d,%v", v, ok)
	}
}

// TestGroupCollapses runs many concurrent joiners of one key and checks
// the computation executed once and everyone saw its result.
func TestGroupCollapses(t *testing.T) {
	g := NewGroup[int]()
	lead, leader := g.Join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	var followers atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, isLeader := g.Join("k")
			if isLeader {
				t.Error("follower became leader while the flight is open")
				return
			}
			followers.Add(1)
			<-f.Done
			v, err := f.Result()
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Finish only after every follower attached: the flight stays in the
	// group until Finish, so all 16 collapse onto it.
	for followers.Load() != 16 {
		runtime.Gosched()
	}
	lead.Finish(42, nil)
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Fatalf("joiner %d saw %d", i, v)
		}
	}
	// After Finish the key starts a fresh flight.
	if _, leader := g.Join("k"); !leader {
		t.Fatal("finished flight still joinable")
	}
}

// TestGroupCancelOnLastLeave verifies the refcounted abort: when every
// joiner leaves before Finish, the cancel hook fires exactly once.
func TestGroupCancelOnLastLeave(t *testing.T) {
	g := NewGroup[int]()
	f, leader := g.Join("k")
	if !leader {
		t.Fatal("want leader")
	}
	f2, leader2 := g.Join("k")
	if leader2 || f2 != f {
		t.Fatal("second join must follow the first flight")
	}
	var cancels atomic.Int32
	f.SetCancel(func() { cancels.Add(1) })
	f.Leave()
	if cancels.Load() != 0 {
		t.Fatal("cancelled while a joiner remains")
	}
	f.Leave()
	if cancels.Load() != 1 {
		t.Fatalf("cancel fired %d times, want 1", cancels.Load())
	}
	// The leader still finishes (with its context's error); waiters see it.
	f.Finish(0, errors.New("cancelled"))
	<-f.Done
	if _, err := f.Result(); err == nil {
		t.Fatal("want recorded error")
	}
}

// TestGroupCancelHookInstalledLate covers the race where all joiners
// leave before the leader installed the hook.
func TestGroupCancelHookInstalledLate(t *testing.T) {
	g := NewGroup[int]()
	f, _ := g.Join("k")
	f.Leave() // refcount hits zero with no hook yet
	var fired atomic.Bool
	f.SetCancel(func() { fired.Store(true) })
	if !fired.Load() {
		t.Fatal("late-installed hook must fire immediately")
	}
}

// TestGroupDistinctKeysIndependent checks no cross-key interference.
func TestGroupDistinctKeysIndependent(t *testing.T) {
	g := NewGroup[string]()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			f, leader := g.Join(key)
			if !leader {
				t.Errorf("key %s: not leader", key)
				return
			}
			f.Finish(key, nil)
			<-f.Done
			if v, _ := f.Result(); v != key {
				t.Errorf("key %s saw %q", key, v)
			}
		}(i)
	}
	wg.Wait()
}
