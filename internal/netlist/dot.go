package netlist

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the circuit as a Graphviz digraph for visual
// inspection of locked netlists and attack surgery. Inputs are boxes,
// key inputs red boxes, outputs double circles, logic gates ellipses
// labelled with their function.
func WriteDOT(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", c.Name)
	isOut := make(map[ID]bool, c.NumOutputs())
	for _, o := range c.Outputs() {
		isOut[o] = true
	}
	isKey := make(map[ID]bool, c.NumKeys())
	for _, k := range c.Keys() {
		isKey[k] = true
	}
	for id := 0; id < c.NumGates(); id++ {
		g := c.Gate(ID(id))
		attrs := ""
		switch {
		case g.Type == Input && isKey[ID(id)]:
			attrs = `shape=box,color=red,fontcolor=red`
		case g.Type == Input:
			attrs = `shape=box`
		case isOut[ID(id)]:
			attrs = `shape=doublecircle`
		default:
			attrs = `shape=ellipse`
		}
		label := g.Name
		if g.Type != Input {
			label = fmt.Sprintf("%s\\n%s", g.Name, g.Type)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\",%s];\n", id, label, attrs)
	}
	for id := 0; id < c.NumGates(); id++ {
		for _, f := range c.Gate(ID(id)).Fanin {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", f, id)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
