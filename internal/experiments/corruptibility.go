package experiments

import (
	"math/rand"

	"repro/internal/lock"
	"repro/internal/netlist"
)

// Output corruptibility is the defender-side metric CAS-Lock trades
// against SAT resilience (Shakya et al., CHES'20): for a wrong key, what
// fraction of the block-input space does the flip signal corrupt? The
// paper's Table I discussion ("row 6 verifies that a cascaded chain of
// AND gates terminated by an OR gate produces the maximum output
// corruption") is reproduced here by direct bit-parallel measurement
// over sampled wrong keys.

// CorruptibilityResult summarizes the corruption of one chain config.
type CorruptibilityResult struct {
	Chain string
	// Mean and Max are the corrupted fraction of the block-input space
	// over the sampled wrong keys.
	Mean, Max float64
	// DIPFormula is Lemma 2's count for the same chain — the attack-side
	// cost the corruption trades against.
	DIPFormula uint64
}

// MeasureCorruptibility samples wrong keys for a CAS instance of the
// given chain (random key-gate polarities) and measures the flip rate
// exactly over the whole block space (chain width ≤ 22).
func MeasureCorruptibility(chainCfg string, samples int, seed int64) (*CorruptibilityResult, error) {
	chain, err := lock.ParseChain(chainCfg)
	if err != nil {
		return nil, err
	}
	n := chain.NumInputs()
	if n > 22 {
		return nil, errTooWide(n)
	}
	rng := rand.New(rand.NewSource(seed))
	kg1 := make([]netlist.GateType, n)
	kg2 := make([]netlist.GateType, n)
	for i := 0; i < n; i++ {
		kg1[i], kg2[i] = netlist.Xor, netlist.Xor
		if rng.Intn(2) == 0 {
			kg1[i] = netlist.Xnor
		}
		if rng.Intn(2) == 0 {
			kg2[i] = netlist.Xnor
		}
	}
	res := &CorruptibilityResult{Chain: chainCfg, DIPFormula: dipFormula(chain)}
	total := float64(uint64(1) << uint(n))
	k1 := make([]bool, n)
	k2 := make([]bool, n)
	x := make([]uint64, n)
	// Wide sweep state (n ≥ 9, where the word count is a multiple of 8):
	// the 8-word banks of the low six inputs never change, so they are
	// filled once outside the sample loop.
	var x8 [][8]uint64
	if n >= 9 {
		x8 = make([][8]uint64, n)
		for i := 0; i < 6; i++ {
			for j := range x8[i] {
				x8[i][j] = lanePatternWord(i)
			}
		}
	}
	for s := 0; s < samples; s++ {
		// A uniformly random wrong key (rejection-sample out the 2^n
		// correct ones, which are a 2^-n fraction).
		for {
			for i := 0; i < n; i++ {
				k1[i] = rng.Intn(2) == 1
				k2[i] = rng.Intn(2) == 1
			}
			if !masksEqual(kg1, kg2, k1, k2) {
				break
			}
		}
		corrupted := 0
		if n >= 9 {
			nWords := uint64(1) << uint(n-6)
			for w0 := uint64(0); w0 < nWords; w0 += 8 {
				for i := 6; i < n; i++ {
					bit := uint64(1) << uint(i-6)
					for j := 0; j < 8; j++ {
						if (w0+uint64(j))&bit != 0 {
							x8[i][j] = ^uint64(0)
						} else {
							x8[i][j] = 0
						}
					}
				}
				g, gb := lock.EvalCASPair512(chain, kg1, kg2, k1, k2, x8)
				for j := 0; j < 8; j++ {
					corrupted += popcount(g[j] & gb[j])
				}
			}
		} else {
			for base := uint64(0); base < 1<<uint(n); base += 64 {
				for i := 0; i < n; i++ {
					if i < 6 {
						x[i] = lanePatternWord(i)
					} else if base&(1<<uint(i)) != 0 {
						x[i] = ^uint64(0)
					} else {
						x[i] = 0
					}
				}
				g, gb := lock.EvalCASPair(chain, kg1, kg2, k1, k2, x)
				flip := g & gb
				if lim := (uint64(1) << uint(n)) - base; lim < 64 {
					flip &= (uint64(1) << lim) - 1
				}
				corrupted += popcount(flip)
				if uint64(1)<<uint(n) <= 64 {
					break
				}
			}
		}
		frac := float64(corrupted) / total
		res.Mean += frac
		if frac > res.Max {
			res.Max = frac
		}
	}
	res.Mean /= float64(samples)
	return res, nil
}

func masksEqual(kg1, kg2 []netlist.GateType, k1, k2 []bool) bool {
	for i := range k1 {
		m1 := k1[i] != (kg1[i] == netlist.Xnor)
		m2 := k2[i] != (kg2[i] == netlist.Xnor)
		if m1 != m2 {
			return false
		}
	}
	return true
}

func dipFormula(chain lock.ChainConfig) uint64 {
	total := uint64(1)
	for j, g := range chain {
		if g == lock.ChainOr {
			total += 1 << uint(j+1)
		}
	}
	return total
}

func lanePatternWord(i int) uint64 {
	switch i {
	case 0:
		return 0xAAAAAAAAAAAAAAAA
	case 1:
		return 0xCCCCCCCCCCCCCCCC
	case 2:
		return 0xF0F0F0F0F0F0F0F0
	case 3:
		return 0xFF00FF00FF00FF00
	case 4:
		return 0xFFFF0000FFFF0000
	default:
		return 0xFFFFFFFF00000000
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

type errTooWide int

func (e errTooWide) Error() string {
	return "experiments: corruptibility measurement limited to 22 chain inputs"
}
