package experiments

import "testing"

// TestCorruptibilityOrdering reproduces the paper's Table I row-6
// observation: an all-AND chain terminated by an OR gate maximizes
// output corruption, while the Anti-SAT-style all-AND chain minimizes
// it, with mixed chains in between.
func TestCorruptibilityOrdering(t *testing.T) {
	configs := []string{
		"9A",      // Anti-SAT degenerate: one corrupted pattern per key
		"4A-O-4A", // OR in the middle
		"8A-O",    // the paper's max-corruption shape
	}
	results := make([]*CorruptibilityResult, len(configs))
	for i, cfg := range configs {
		res, err := MeasureCorruptibility(cfg, 12, int64(50+i))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if !(results[0].Mean < results[1].Mean && results[1].Mean < results[2].Mean) {
		t.Errorf("corruption ordering violated: %v < %v < %v expected",
			results[0].Mean, results[1].Mean, results[2].Mean)
	}
	// Anti-SAT corrupts at most one block pattern per wrong key.
	if results[0].Max > 1.0/512+1e-9 {
		t.Errorf("Anti-SAT corruption %v exceeds one pattern", results[0].Max)
	}
}

// TestCorruptibilityTradesAgainstDIPs: the security-corruptibility
// trade-off — more corruption (later OR gates) means more DIPs for the
// attacker to work with.
func TestCorruptibilityTradesAgainstDIPs(t *testing.T) {
	low, err := MeasureCorruptibility("6A-O-2A", 8, 61)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MeasureCorruptibility("8A-O", 8, 62)
	if err != nil {
		t.Fatal(err)
	}
	if !(high.Mean > low.Mean && high.DIPFormula > low.DIPFormula) {
		t.Errorf("trade-off violated: corruption %v/%v, DIPs %d/%d",
			low.Mean, high.Mean, low.DIPFormula, high.DIPFormula)
	}
}

func TestCorruptibilityValidation(t *testing.T) {
	if _, err := MeasureCorruptibility("30A", 1, 1); err == nil {
		t.Error("over-wide chain accepted")
	}
	if _, err := MeasureCorruptibility("bogus", 1, 1); err == nil {
		t.Error("bad chain accepted")
	}
}
