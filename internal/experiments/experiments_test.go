package experiments

import (
	"strings"
	"testing"
)

// TestTableI32AllRows regenerates the complete 32-bit half of Table I and
// checks every row against the configuration's mathematical DIP count
// (which equals the paper's printed value except for the documented
// typos).
func TestTableI32AllRows(t *testing.T) {
	if testing.Short() {
		t.Skip("table rows take ~1-3s each")
	}
	// Expected measured counts per chain (see DESIGN.md for the
	// paper-vs-config discrepancies).
	wantByChain := map[string]uint64{
		"A-O-2A-O-2A-O-2A-O-2A-O-A": 18725,
		"2A-O-5A-O-2A-2O-2A":        12809,
		"O-6A-O-5A-O-A":             16643,
		"14A-O":                     32767,
		"3A-2O-3A-2O-3A-O-A":        17969,
	}
	for _, row := range TableI32 {
		res, err := RunTableIRow(row, TableIOptions{Seed: 3, Prove: true, MatchPaperRegime: true})
		if err != nil {
			t.Fatalf("%s/%s: %v", row.Benchmark, row.Chain, err)
		}
		if !res.KeyRecovered || !res.KeyProven {
			t.Errorf("%s/%s: key recovered=%v proven=%v", row.Benchmark, row.Chain, res.KeyRecovered, res.KeyProven)
		}
		if !res.ChainOK {
			t.Errorf("%s/%s: chain not recovered", row.Benchmark, row.Chain)
		}
		if want := wantByChain[row.Chain]; res.MeasuredDIPs != want {
			t.Errorf("%s/%s: measured %d DIPs, want %d", row.Benchmark, row.Chain, res.MeasuredDIPs, want)
		}
	}
}

// TestTableIRowIndependentKeyGates exercises the general (unaligned)
// regime on a Table I configuration: the DIP total may exceed the
// closed form, but the key must still fall.
func TestTableIRowIndependentKeyGates(t *testing.T) {
	res, err := RunTableIRow(TableI32[3], TableIOptions{Seed: 5, Prove: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.KeyRecovered || !res.KeyProven {
		t.Fatal("key recovery failed in the independent-polarity regime")
	}
	if res.AlignedDIPs == 0 || res.MeasuredDIPs < res.AlignedDIPs {
		t.Errorf("implausible counts: |I_l|=%d |A|=%d", res.MeasuredDIPs, res.AlignedDIPs)
	}
}

func TestRunTableIRowValidation(t *testing.T) {
	bad := TableIRow{Benchmark: "c880", KeyBits: 32, Chain: "A-O"} // 3 inputs ≠ 16
	if _, err := RunTableIRow(bad, TableIOptions{}); err == nil {
		t.Error("inconsistent row accepted")
	}
	bad = TableIRow{Benchmark: "nope", KeyBits: 6, Chain: "A-O"}
	if _, err := RunTableIRow(bad, TableIOptions{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPrintTableI(t *testing.T) {
	var sb strings.Builder
	PrintTableI(&sb, []*TableIResult{{
		Row:          TableIRow{Benchmark: "c880", KeyBits: 32, Chain: "14A-O", PaperDIPs: 32769},
		MeasuredDIPs: 32767,
		KeyRecovered: true,
		KeyProven:    true,
	}})
	out := sb.String()
	if !strings.Contains(out, "c880") || !strings.Contains(out, "32767") || !strings.Contains(out, "SAT-proven") {
		t.Errorf("unexpected table output:\n%s", out)
	}
}

func TestRunComparison(t *testing.T) {
	res, err := RunComparison(12, "3A-O-A", 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DIPKeyRecovered {
		t.Error("DIP attack failed")
	}
	if res.CASUnlockSucceeded {
		t.Error("CAS-Unlock should fail on random key gates")
	}
	if res.SATCompleted && res.SATIterations < 8 {
		t.Errorf("SAT attack finished suspiciously fast: %d iterations", res.SATIterations)
	}
}

func TestVerifyLemma2(t *testing.T) {
	results, err := VerifyLemma2(8, 9, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("chain %s (%s): measured %d, predicted %d", r.Chain, r.KeyGateMode, r.Measured, r.Predicted)
		}
		if r.KeyGateMode == "aligned" && r.TotalDIPs != r.Measured {
			t.Errorf("chain %s: aligned instance with |I_l|=%d ≠ |A|=%d", r.Chain, r.TotalDIPs, r.Measured)
		}
	}
}

func TestRunScaling(t *testing.T) {
	// Lemma-2 values: 65, 145, 265 — strictly increasing.
	points, err := RunScaling(12, []string{"5A-O-A", "3A-O-2A-O-A", "2A-O-4A-O-A"}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// DIP counts must grow along the sweep and oracle cost must track
	// them within a constant factor (the O(m) claim).
	for i := 1; i < len(points); i++ {
		if points[i].DIPs <= points[i-1].DIPs {
			t.Errorf("sweep not increasing: %v", points)
		}
	}
	for _, p := range points {
		if p.OracleQueries > 8*p.DIPs+2048 {
			t.Errorf("%s: %d queries for %d DIPs", p.Chain, p.OracleQueries, p.DIPs)
		}
	}
}

func TestRunMCASExperiment(t *testing.T) {
	res, err := RunMCASExperiment(12, "2A-O-2A", 29)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InnerKeyOK || !res.FullKeyOK || !res.KeyProven {
		t.Errorf("M-CAS experiment failed: %+v", res)
	}
	if res.RemovedProb > 0.5 {
		t.Errorf("removed flip probability %v not skewed", res.RemovedProb)
	}
}
