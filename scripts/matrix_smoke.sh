#!/bin/sh
# matrix-smoke: end-to-end check of the registry-driven experiment
# matrix through the lockbench CLI.
#
# Exercises the scheme and attack registries end to end: -list must
# enumerate both registries, a -schemes/-attacks sub-grid must run only
# the requested cells, the narrative cells must hold (SAT breaks RLL,
# is capped on CAS-Lock, DIP learning breaks CAS-Lock), an unknown
# registry name must be rejected with the valid universe in the error,
# and the same sub-grid under -legacy-encoding (classic attacks on
# throwaway solvers, DIP learning on the pre-engine encoding) must
# reach the same verdicts — the matrix-level engine-vs-legacy
# differential.
#
# Usage: matrix_smoke.sh <workdir>
set -eu

DIR=${1:?usage: matrix_smoke.sh workdir}
GO=${GO:-go}
rm -rf "$DIR" && mkdir -p "$DIR/bin"

$GO build -o "$DIR/bin/" ./cmd/lockbench

"$DIR/bin/lockbench" -list >"$DIR/list.out"
for name in rll cas mcas sat dip sps-removal bypass; do
	if ! grep -q "^  $name[[:space:]]" "$DIR/list.out"; then
		echo "matrix-smoke: -list is missing registry entry \"$name\"" >&2
		cat "$DIR/list.out" >&2
		exit 1
	fi
done

check_grid() {
	out=$1
	# Narrative cells, from the per-cell detail lines.
	grep -q "^RLL  *× SAT  *exact key" "$out" || {
		echo "matrix-smoke: SAT attack did not break RLL in $out" >&2
		cat "$out" >&2
		exit 1
	}
	grep -q "^CAS-Lock *× SAT  *capped" "$out" || {
		echo "matrix-smoke: SAT attack was not capped on CAS-Lock in $out" >&2
		cat "$out" >&2
		exit 1
	}
	grep -q "^CAS-Lock *× DIP-learning *exact key" "$out" || {
		echo "matrix-smoke: DIP learning did not break CAS-Lock in $out" >&2
		cat "$out" >&2
		exit 1
	}
	# The sub-grid must contain exactly the requested 2x2 = 4 cells.
	cells=$(grep -c "^\(RLL\|CAS-Lock\) *× " "$out")
	if [ "$cells" -ne 4 ]; then
		echo "matrix-smoke: sub-grid has $cells cells, want 4" >&2
		cat "$out" >&2
		exit 1
	fi
}

"$DIR/bin/lockbench" -inputs 12 -satcap 300 -seed 1 \
	-schemes rll,cas -attacks sat,dip >"$DIR/grid.out" 2>&1 || {
	echo "matrix-smoke: sub-grid run failed" >&2
	cat "$DIR/grid.out" >&2
	exit 1
}
check_grid "$DIR/grid.out"

"$DIR/bin/lockbench" -inputs 12 -satcap 300 -seed 1 -legacy-encoding \
	-schemes rll,cas -attacks sat,dip >"$DIR/legacy.out" 2>&1 || {
	echo "matrix-smoke: legacy sub-grid run failed" >&2
	cat "$DIR/legacy.out" >&2
	exit 1
}
check_grid "$DIR/legacy.out"

if "$DIR/bin/lockbench" -schemes nosuchscheme >"$DIR/bad.out" 2>&1; then
	echo "matrix-smoke: unknown scheme name was accepted" >&2
	exit 1
fi
grep -q "unknown scheme" "$DIR/bad.out" || {
	echo "matrix-smoke: unknown-scheme rejection lacks the error message" >&2
	cat "$DIR/bad.out" >&2
	exit 1
}
grep -q "have:" "$DIR/bad.out" || {
	echo "matrix-smoke: unknown-scheme rejection does not list the universe" >&2
	cat "$DIR/bad.out" >&2
	exit 1
}

echo "matrix-smoke: OK (registries listed, sub-grid verdicts hold on engine and legacy paths, unknown names rejected)"
rm -rf "$DIR"
