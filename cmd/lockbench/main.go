// Command lockbench runs the full scheme-versus-attack matrix: every
// locking scheme in the repository against every attack, printing the
// survey table the paper's introduction narrates — with CAS-Lock
// resisting everything until the DIP-learning column.
//
//	lockbench
//	lockbench -inputs 14 -satcap 600
//	lockbench -workers 4          # bound the cell worker pool (0 = all cores)
//	lockbench -timeout 2m         # deadline for the whole grid
//	lockbench -noise 1e-3 -retries 4   # noisy oracles behind the resilient decorator
//	lockbench -trace grid.json -debug-addr :6060   # observe the grid live
//	lockbench -schemes cas,mcas -attacks dip,sat   # sub-grid by registry name
//	lockbench -list               # print the scheme and attack registries
//
// Rows and columns are enumerated from the scheme and attack registries
// (internal/lock, internal/attack); -list shows the valid names.
//
// Exit codes: 0 — grid completed; 3 — deadline hit (partial results are
// not printed: cells are all-or-nothing); 1 — error; 2 — usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lock"
	"repro/internal/telemetry"
)

// splitList turns a comma-separated flag value into a name slice (nil
// when the flag is unset).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printRegistries renders the -list output: both registries with names,
// labels and descriptions.
func printRegistries(w *os.File) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCHEMES (-schemes)")
	for _, s := range lock.Schemes() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", s.Name, s.Label, s.Description)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "ATTACKS (-attacks)")
	for _, a := range attack.Attacks() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", a.Name, a.Label, a.Description)
	}
	tw.Flush()
}

// portfolioSize maps the -portfolio/-portfolio-size flag pair to
// core.Options.Portfolio (0 = single engine).
func portfolioSize(enabled bool, size int) int {
	if !enabled {
		return 0
	}
	return size
}

func main() {
	var (
		inputs    = flag.Int("inputs", 14, "host primary inputs")
		satCap    = flag.Int("satcap", 500, "SAT/AppSAT iteration cap")
		seed      = flag.Int64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "cell worker count (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole grid (0 = none)")
		retries   = flag.Int("retries", 0, "oracle transient-retry budget and attack mismatch re-query count (0 = defaults)")
		legacyEnc = flag.Bool("legacy-encoding", false, "disable the persistent incremental-SAT engine in the DIP-learning cells")
		portfolio = flag.Bool("portfolio", false, "race a portfolio of diversified SAT engines in the DIP-learning cells (shared encoding, exchanged learned clauses)")
		portSize  = flag.Int("portfolio-size", engine.DefaultPortfolioSize, "portfolio member count (with -portfolio)")
		satWidth  = flag.Int("sat-width-limit", 0, "largest block width attacked with the SAT engine in the DIP-learning cells (0 = auto-calibrate per instance)")
		noise     = flag.Float64("noise", 0, "per-output-bit oracle flip rate injected into every cell (arms majority voting)")
		trace     = flag.String("trace", "", "write a Chrome-trace JSON of the grid's attack spans here (open in Perfetto)")
		metrics   = flag.String("metrics-out", "", "write a metrics snapshot on exit (.json = JSON snapshot, anything else = Prometheus text)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof/ on this address for the run's duration (e.g. :6060)")
		schemes   = flag.String("schemes", "", "comma-separated scheme rows (registry names or labels; empty = all)")
		attacks   = flag.String("attacks", "", "comma-separated attack columns (registry names or labels; empty = all)")
		list      = flag.Bool("list", false, "print the scheme and attack registries and exit")
	)
	flag.Parse()
	if *list {
		printRegistries(os.Stdout)
		return
	}
	if *noise < 0 || *noise >= 1 || *timeout < 0 || *satWidth < 0 || *portSize < 1 {
		flag.Usage()
		os.Exit(2)
	}
	var tel *telemetry.Registry
	if *trace != "" || *metrics != "" || *debugAddr != "" {
		tel = telemetry.New()
	}
	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug server listening on %s (/metrics, /healthz, /debug/pprof/)\n", dbg.URL())
	}
	flush := func() {
		if tel == nil {
			return
		}
		if *trace != "" {
			if err := tel.WriteChromeTraceFile(*trace); err != nil {
				fmt.Fprintln(os.Stderr, "lockbench: writing trace:", err)
			}
		}
		if *metrics != "" {
			if err := tel.WriteMetricsFile(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "lockbench: writing metrics:", err)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// First SIGINT/SIGTERM cancels the grid context — the matrix winds
	// down and the deadline exit path (code 3) runs with telemetry
	// flushed. A second signal force-exits after flushing.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "lockbench: received %v, cancelling grid (send again to force-exit)\n", sig)
		cancel()
		<-sigCh
		fmt.Fprintln(os.Stderr, "lockbench: force exit")
		flush()
		os.Exit(130)
	}()
	cells, err := experiments.RunMatrixOptions(experiments.MatrixOptions{
		Context:        ctx,
		HostInputs:     *inputs,
		SATCap:         *satCap,
		Seed:           *seed,
		Workers:        *workers,
		Noise:          *noise,
		Retries:        *retries,
		Telemetry:      tel,
		LegacyEncoding: *legacyEnc,
		SATWidthLimit:  *satWidth,
		Portfolio:      portfolioSize(*portfolio, *portSize),
		Schemes:        splitList(*schemes),
		Attacks:        splitList(*attacks),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockbench:", err)
		flush()
		if errors.Is(err, core.ErrPartial) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	experiments.PrintMatrix(os.Stdout, cells)
	flush()
}
