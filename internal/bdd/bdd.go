// Package bdd implements reduced ordered binary decision diagrams with
// hash-consing and memoized ITE, plus a netlist compiler. In this
// repository BDDs are the third, independent engine for the paper's
// central quantity: exact DIP-set and corruption counts (SAT enumeration
// and bit-parallel simulation being the other two), tractable even for
// wide CAS chains because cascade functions have linear-size BDDs.
package bdd

import (
	"fmt"
	"math/big"

	"repro/internal/netlist"
)

// Ref identifies a BDD node within a Manager. The constants False and
// True are the terminal nodes.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level; terminals use a sentinel
	lo, hi Ref
}

const terminalLevel = int32(1) << 30

// Manager owns a BDD forest over a fixed number of ordered variables.
// Variable i is tested at level i (smaller levels nearer the root). The
// zero Manager is not usable; call New.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	iteMem map[[3]Ref]Ref
	nvars  int
}

// New returns a manager over nvars ordered variables.
func New(nvars int) *Manager {
	m := &Manager{
		unique: make(map[node]Ref),
		iteMem: make(map[[3]Ref]Ref),
		nvars:  nvars,
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // False
		node{level: terminalLevel}, // True
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes returns the number of live nodes (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the BDD of ¬variable i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(int32(i), True, False)
}

// Const returns the terminal for a boolean.
func (m *Manager) Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo==hi and hash-consing.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h) — the universal ternary operator
// all boolean connectives reduce to.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteMem[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteMem[key] = r
	return r
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g).
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Apply folds a gate function over operands.
func (m *Manager) Apply(t netlist.GateType, ops []Ref) (Ref, error) {
	switch t {
	case netlist.Const0:
		return False, nil
	case netlist.Const1:
		return True, nil
	case netlist.Buf:
		return ops[0], nil
	case netlist.Not:
		return m.Not(ops[0]), nil
	}
	if len(ops) == 0 {
		return False, fmt.Errorf("bdd: %s with no operands", t)
	}
	acc := ops[0]
	for _, o := range ops[1:] {
		switch t {
		case netlist.And, netlist.Nand:
			acc = m.And(acc, o)
		case netlist.Or, netlist.Nor:
			acc = m.Or(acc, o)
		case netlist.Xor, netlist.Xnor:
			acc = m.Xor(acc, o)
		default:
			return False, fmt.Errorf("bdd: cannot apply %s", t)
		}
	}
	if t == netlist.Nand || t == netlist.Nor || t == netlist.Xnor {
		acc = m.Not(acc)
	}
	return acc, nil
}

// SatCount returns the number of satisfying assignments of f over the
// manager's variables.
func (m *Manager) SatCount(f Ref) *big.Int {
	memo := make(map[Ref]*big.Int)
	var count func(r Ref, level int32) *big.Int
	count = func(r Ref, level int32) *big.Int {
		// Number of solutions in the subspace of variables ≥ level.
		var base *big.Int
		if r == False {
			base = big.NewInt(0)
		} else if r == True {
			base = big.NewInt(1)
		} else if c, ok := memo[r]; ok {
			base = c
		} else {
			n := m.nodes[r]
			lo := count(n.lo, n.level+1)
			hi := count(n.hi, n.level+1)
			base = new(big.Int).Add(lo, hi)
			memo[r] = base
		}
		// Scale by the variables skipped between level and node level.
		nodeLevel := m.level(r)
		if nodeLevel > int32(m.nvars) {
			nodeLevel = int32(m.nvars)
		}
		skip := uint(nodeLevel - level)
		if skip == 0 {
			return base
		}
		return new(big.Int).Lsh(base, skip)
	}
	return count(f, 0)
}

// Eval evaluates f under a total assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// AnySat returns one satisfying assignment of f (false-filled on don't
// cares), or ok=false for the constant False.
func (m *Manager) AnySat(f Ref) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.nvars)
	for f != True {
		n := m.nodes[f]
		if n.lo != False {
			f = n.lo
		} else {
			assign[n.level] = true
			f = n.hi
		}
	}
	return assign, true
}

// Compile builds BDDs for every output of a circuit. Primary inputs map
// to manager variables 0..NumInputs-1 in declaration order; key inputs
// must be bound to constants via the key argument.
func Compile(m *Manager, c *netlist.Circuit, key []bool) ([]Ref, error) {
	if m.nvars < c.NumInputs() {
		return nil, fmt.Errorf("bdd: manager has %d vars, circuit needs %d", m.nvars, c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("bdd: key length %d, circuit has %d key inputs", len(key), c.NumKeys())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	refs := make([]Ref, c.NumGates())
	for i, id := range c.Inputs() {
		refs[id] = m.Var(i)
	}
	for i, id := range c.Keys() {
		refs[id] = m.Const(key[i])
	}
	for _, id := range order {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		ops := make([]Ref, len(g.Fanin))
		for i, f := range g.Fanin {
			ops[i] = refs[f]
		}
		r, err := m.Apply(g.Type, ops)
		if err != nil {
			return nil, err
		}
		refs[id] = r
	}
	outs := make([]Ref, c.NumOutputs())
	for i, o := range c.Outputs() {
		outs[i] = refs[o]
	}
	return outs, nil
}
