package netlist

import "fmt"

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name)
	out.gates = make([]Gate, len(c.gates))
	for i, g := range c.gates {
		out.gates[i] = Gate{Type: g.Type, Name: g.Name, Fanin: append([]ID(nil), g.Fanin...)}
	}
	out.names = make(map[string]ID, len(c.names))
	for k, v := range c.names {
		out.names[k] = v
	}
	out.inputs = append([]ID(nil), c.inputs...)
	out.keys = append([]ID(nil), c.keys...)
	out.outputs = append([]ID(nil), c.outputs...)
	return out
}

// ImportOptions controls how Import splices one circuit into another.
type ImportOptions struct {
	// Prefix is prepended to every imported gate name to avoid clashes.
	Prefix string
	// InputMap gives, for each primary input of the source (by position),
	// the gate in the destination that drives it. Required: one entry per
	// source input.
	InputMap []ID
	// ImportKeysAsKeys, when true, re-declares the source's key inputs as
	// key inputs of the destination (appended to its key list, in order).
	// When false the source must have no key inputs.
	ImportKeysAsKeys bool
}

// Import splices a copy of src into c. Source primary inputs are replaced
// by the driver gates named in opts.InputMap; all other gates are copied
// with the given name prefix. It returns the destination IDs of the
// source's outputs, in the source's output order. Source output markings
// are not propagated to c's output list (callers decide what to expose).
func (c *Circuit) Import(src *Circuit, opts ImportOptions) ([]ID, error) {
	if len(opts.InputMap) != src.NumInputs() {
		return nil, fmt.Errorf("netlist: Import: InputMap has %d entries, source has %d inputs",
			len(opts.InputMap), src.NumInputs())
	}
	for _, id := range opts.InputMap {
		if id < 0 || int(id) >= len(c.gates) {
			return nil, fmt.Errorf("netlist: Import: InputMap references missing gate %d", id)
		}
	}
	if !opts.ImportKeysAsKeys && src.NumKeys() > 0 {
		return nil, fmt.Errorf("netlist: Import: source has %d key inputs but ImportKeysAsKeys is false", src.NumKeys())
	}
	order, err := src.TopoOrder()
	if err != nil {
		return nil, err
	}
	remap := make([]ID, src.NumGates())
	for i := range remap {
		remap[i] = InvalidID
	}
	for i, id := range src.inputs {
		remap[id] = opts.InputMap[i]
	}
	for _, id := range src.keys {
		kid, err := c.AddKey(opts.Prefix + src.gates[id].Name)
		if err != nil {
			return nil, err
		}
		remap[id] = kid
	}
	for _, id := range order {
		g := &src.gates[id]
		if g.Type == Input {
			if remap[id] == InvalidID {
				return nil, fmt.Errorf("netlist: Import: source input gate %q is neither a primary input nor a key", g.Name)
			}
			continue
		}
		fanin := make([]ID, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = remap[f]
		}
		nid, err := c.AddGate(g.Type, opts.Prefix+g.Name, fanin...)
		if err != nil {
			return nil, err
		}
		remap[id] = nid
	}
	outs := make([]ID, src.NumOutputs())
	for i, o := range src.outputs {
		outs[i] = remap[o]
	}
	return outs, nil
}

// ExtractCone returns a new circuit computing only the logic in the
// transitive fanin of the selected outputs. Inputs/keys that do not feed
// the cone are dropped; the remaining ones keep their relative order and
// names. The cone's outputs are the given roots, in order.
func (c *Circuit) ExtractCone(name string, roots ...ID) (*Circuit, error) {
	for _, r := range roots {
		if r < 0 || int(r) >= len(c.gates) {
			return nil, fmt.Errorf("netlist: ExtractCone: missing gate %d", r)
		}
	}
	mask := c.TransitiveFanin(roots...)
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := New(name)
	remap := make([]ID, len(c.gates))
	for i := range remap {
		remap[i] = InvalidID
	}
	// Declare surviving inputs/keys first to preserve ordering.
	for _, id := range c.inputs {
		if mask[id] {
			remap[id] = out.MustAddInput(c.gates[id].Name)
		}
	}
	for _, id := range c.keys {
		if mask[id] {
			remap[id] = out.MustAddKey(c.gates[id].Name)
		}
	}
	for _, id := range order {
		if !mask[id] {
			continue
		}
		g := &c.gates[id]
		if g.Type == Input {
			if remap[id] == InvalidID {
				// Should be unreachable given Validate's invariant.
				return nil, fmt.Errorf("netlist: ExtractCone: unregistered input %q", g.Name)
			}
			continue
		}
		fanin := make([]ID, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = remap[f]
		}
		nid, err := out.AddGate(g.Type, g.Name, fanin...)
		if err != nil {
			return nil, err
		}
		remap[id] = nid
	}
	for _, r := range roots {
		if err := out.MarkOutput(remap[r]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stats summarizes the structural composition of a circuit.
type Stats struct {
	Inputs, Keys, Outputs int
	GatesByType           map[GateType]int
	LogicGates            int // gates excluding inputs and constants
	Depth                 int
}

// ComputeStats gathers structural statistics. Fails only on cyclic
// circuits.
func (c *Circuit) ComputeStats() (Stats, error) {
	s := Stats{
		Inputs:      c.NumInputs(),
		Keys:        c.NumKeys(),
		Outputs:     c.NumOutputs(),
		GatesByType: make(map[GateType]int),
	}
	for _, g := range c.gates {
		s.GatesByType[g.Type]++
		switch g.Type {
		case Input, Const0, Const1:
		default:
			s.LogicGates++
		}
	}
	d, err := c.Depth()
	if err != nil {
		return Stats{}, err
	}
	s.Depth = d
	return s, nil
}
