package lock

import "repro/internal/netlist"

// ApplyAntiSAT locks a host with Anti-SAT (Xie & Srivastava), which in
// this framework is exactly the CAS-Lock degenerate case with an all-AND
// cascade: g = AND(X⊕K1), ḡ = NAND(X⊕K2). Every wrong key corrupts at
// most one input pattern, which is why Anti-SAT yields exactly one DIP
// and why Lemma 2 reduces to #DIPs = 1 for |C| = 0.
func ApplyAntiSAT(host *netlist.Circuit, n int, seed int64) (*Locked, *CASInstance, error) {
	chain := make(ChainConfig, n-1)
	for i := range chain {
		chain[i] = ChainAnd
	}
	return ApplyCAS(host, CASOptions{Chain: chain, Seed: seed})
}
