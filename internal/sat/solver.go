package sat

import (
	"fmt"

	"repro/internal/cnf"
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes. Unknown is returned only when a conflict budget is set
// and exhausted.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String returns "SAT"/"UNSAT"/"UNKNOWN".
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats counts solver work; useful for attack-cost reporting.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learned      uint64
	Removed      uint64
	SolveCalls   uint64
	// BlockingPushed/BlockingRetired count blocking clauses added through
	// PushBlocking and permanently disabled through ResetBlocking.
	BlockingPushed  uint64
	BlockingRetired uint64
	// Simplified counts clauses removed by Simplify (satisfied at level 0).
	Simplified uint64
	// Imported counts clauses added through ImportClause (portfolio
	// clause sharing).
	Imported uint64
}

// Diff returns the counter-wise difference s - prev; with prev a snapshot
// taken earlier on the same solver it attributes work to the interval
// (the engine uses it for per-phase accounting).
func (s Stats) Diff(prev Stats) Stats {
	return Stats{
		Decisions:       s.Decisions - prev.Decisions,
		Propagations:    s.Propagations - prev.Propagations,
		Conflicts:       s.Conflicts - prev.Conflicts,
		Restarts:        s.Restarts - prev.Restarts,
		Learned:         s.Learned - prev.Learned,
		Removed:         s.Removed - prev.Removed,
		SolveCalls:      s.SolveCalls - prev.SolveCalls,
		BlockingPushed:  s.BlockingPushed - prev.BlockingPushed,
		BlockingRetired: s.BlockingRetired - prev.BlockingRetired,
		Simplified:      s.Simplified - prev.Simplified,
		Imported:        s.Imported - prev.Imported,
	}
}

type clause struct {
	lits     []lit
	activity float64
	learnt   bool
}

type watcher struct {
	c       *clause
	blocker lit
}

// Solver is an incremental CDCL SAT solver. The zero value is not ready;
// use New. A Solver is not safe for concurrent use.
type Solver struct {
	// ConflictBudget, when positive, bounds the number of conflicts a
	// single Solve call may spend before returning Unknown.
	ConflictBudget uint64

	ok      bool // false once the formula is proven unsat at level 0
	clauses []*clause
	learnts []*clause

	watches  [][]watcher // indexed by internal lit
	assigns  []lbool     // per var
	polarity []bool      // saved phase per var (true = last assigned true)
	activity []float64   // VSIDS activity per var
	aux      []bool      // per var: excluded from the decision heap (see NewAuxVar)
	varInc   float64
	claInc   float64
	order    *varHeap

	trail    []lit
	trailLim []int     // trail index at each decision level
	reason   []*clause // antecedent per var
	level    []int     // decision level per var
	qhead    int

	seen      []byte
	analyzeCl []lit // scratch for analyze
	minStack  []lit // scratch for minimization
	clearVars []int // vars whose seen mark must be wiped after analyze

	assumptions []lit
	conflictSet []lit // failed assumptions from the last Unsat-under-assumptions

	blockingAct   cnf.Lit // open blocking scope's activation literal (0 = none)
	blockingCount uint64  // clauses pushed into the open scope
	blockingBytes uint64  // estimated bytes of the open scope's clauses
	retiredBytes  uint64  // estimated bytes retired but not yet simplified away

	maxLearnts float64
	model      []lbool
	solveBase  uint64 // stats.Conflicts at entry to the current Solve

	// Diversification knobs (see Options); the defaults reproduce the
	// classic configuration.
	varDecay     float64
	restart      RestartStrategy
	polaritySeed uint64
	orderSeed    uint64

	interrupt  func() bool     // polled during search; true aborts with Unknown
	learntHook func([]cnf.Lit) // clause-export hook (see SetLearntHook)
	hookMaxVar int
	hookMaxLen int

	stats Stats
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:         true,
		varInc:     1.0,
		claInc:     1.0,
		maxLearnts: 3000,
		varDecay:   defaultVarDecay,
	}
}

// NewFromFormula returns a solver loaded with the formula's clauses.
func NewFromFormula(f *cnf.Formula) *Solver {
	s := New()
	s.AddFormula(f)
	return s
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assigns) }

// EnsureVars grows the variable space to cover DIMACS variables 1..n.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.newVarInternal()
	}
}

// NewVar allocates a fresh variable and returns its positive literal.
func (s *Solver) NewVar() cnf.Lit {
	v := s.newVarInternal()
	return cnf.Lit(v + 1)
}

// NewAuxVar allocates a fresh variable that is permanently excluded from
// the decision heap: the solver never branches on it, so it is assigned
// only by assumptions or unit propagation. Activation and guard literals
// use this so that wrapping a formula in scoped machinery cannot perturb
// the branching order of the problem variables — a prerequisite for the
// engine-vs-legacy differential guarantees.
func (s *Solver) NewAuxVar() cnf.Lit {
	v := s.newVarInternal()
	s.aux[v] = true
	s.order.remove(v)
	return cnf.Lit(v + 1)
}

func (s *Solver) newVarInternal() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, false)
	s.activity = append(s.activity, 0)
	s.aux = append(s.aux, false)
	s.reason = append(s.reason, nil)
	s.level = append(s.level, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	if s.polaritySeed != 0 {
		s.polarity[v] = splitmix64(s.polaritySeed+uint64(v))&1 == 1
	}
	if s.orderSeed != 0 {
		// Jitter below any real activity bump: shuffles only ties.
		s.activity[v] = float64(splitmix64(s.orderSeed+uint64(v))>>11) / (1 << 53) * 1e-6
	}
	if s.order == nil {
		s.order = newVarHeap(&s.activity)
	}
	s.order.push(v)
	return v
}

// Add appends a clause, discarding the satisfiability flag; together with
// NewVar it lets the solver act as a cnf.Sink so circuits can be Tseitin
// encoded directly into a live solver.
func (s *Solver) Add(lits ...cnf.Lit) { s.AddClause(lits...) }

// AddFormula adds every clause of a CNF formula.
func (s *Solver) AddFormula(f *cnf.Formula) {
	s.EnsureVars(f.NumVars)
	for _, cl := range f.Clauses {
		s.AddClause(cl...)
	}
}

// AddClause adds a clause, simplifying out duplicate and tautological
// literals. It returns false if the solver is now (or already was) in an
// unsatisfiable state at level 0. Clauses may only be added between Solve
// calls (the solver backtracks to level 0 after each call).
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Convert, sort-dedupe, drop false lits, detect tautology/satisfied.
	tmp := make([]lit, 0, len(lits))
	for _, l := range lits {
		v := l.Var()
		if v <= 0 {
			panic(fmt.Sprintf("sat: invalid literal %d", int(l)))
		}
		s.EnsureVars(v)
		tmp = append(tmp, fromCNF(l))
	}
	out := tmp[:0]
	for _, l := range tmp {
		switch s.value(l) {
		case lTrue:
			return true // clause already satisfied at level 0
		case lFalse:
			continue // literal permanently false; drop
		}
		dup, taut := false, false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	removeWatcher(&s.watches[c.lits[0].neg()], c)
	removeWatcher(&s.watches[c.lits[1].neg()], c)
}

func removeWatcher(ws *[]watcher, c *clause) {
	list := *ws
	for i := range list {
		if list[i].c == c {
			list[i] = list[len(list)-1]
			*ws = list[:len(list)-1]
			return
		}
	}
}

func (s *Solver) value(l lit) lbool {
	v := s.assigns[l.vari()]
	if v == lUndef {
		return lUndef
	}
	if l.signed() {
		return v.flip()
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) uncheckedEnqueue(l lit, from *clause) {
	v := l.vari()
	if l.signed() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the two-watched-literal lists
// and returns the conflicting clause, or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			falseLit := p.neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Invariant: c.lits[1] == falseLit.
			first := c.lits[0]
			nw := watcher{c, first}
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = nw
				j++
				continue
			}
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], nw)
					found = true
					break
				}
			}
			if found {
				continue // watcher moved; do not keep in this list
			}
			// Unit or conflict.
			ws[j] = nw
			j++
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers and halt.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].vari()
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		if !s.aux[v] && !s.order.contains(v) {
			s.order.push(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, cl := range s.learnts {
			cl.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

const (
	defaultVarDecay = 1.0 / 0.95
	clauseDecay     = 1.0 / 0.999
)

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]lit, int) {
	learnt := s.analyzeCl[:0]
	learnt = append(learnt, litUndef) // slot 0: asserting literal
	pathC := 0
	var p lit = litUndef
	idx := len(s.trail) - 1

	c := confl
	for {
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if p != litUndef && q == p {
				continue
			}
			v := q.vari()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = 1
				s.clearVars = append(s.clearVars, v)
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].vari()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.vari()
		c = s.reason[v]
		s.seen[v] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.neg()

	// Clause minimization: drop literals implied by the rest of the
	// clause through their reason clauses. Literals kept in learnt are
	// still marked seen from the first pass (the trail walk only clears
	// current-level vars, which never enter learnt[1:]).
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reason[l.vari()] == nil || !s.litRedundant(l) {
			out = append(out, l)
		}
	}
	learnt = out

	// Find backtrack level: the second-highest decision level in the
	// clause, and move that literal into slot 1.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].vari()] > s.level[learnt[maxI].vari()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].vari()]
	}

	for _, v := range s.clearVars {
		s.seen[v] = 0
	}
	s.clearVars = s.clearVars[:0]
	s.analyzeCl = learnt
	return learnt, btLevel
}

// litRedundant reports whether literal l (from a learnt clause) is
// implied by the remaining marked literals, walking reason antecedents.
// Uses a conservative check: every antecedent literal must itself be
// marked or recursively redundant, aborting on decision variables.
func (s *Solver) litRedundant(l lit) bool {
	stack := s.minStack[:0]
	stack = append(stack, l)
	var toClear []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[x.vari()]
		if c == nil {
			// Decision variable reached: not redundant; undo temp marks.
			for _, v := range toClear {
				s.seen[v] = 0
			}
			s.minStack = stack
			return false
		}
		for _, q := range c.lits {
			v := q.vari()
			if q == x.neg() {
				continue // the literal c implied
			}
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			toClear = append(toClear, v)
			stack = append(stack, q)
		}
	}
	// Success: temp marks stand as a redundancy cache for the rest of
	// this analyze call; register them for the final wipe.
	s.clearVars = append(s.clearVars, toClear...)
	s.minStack = stack
	return true
}

// analyzeFinal is called with the negation of a falsified assumption
// (i.e. a literal currently true); it collects the subset of assumptions
// that force it, populating conflictSet with those assumption literals.
func (s *Solver) analyzeFinal(p lit) {
	s.conflictSet = s.conflictSet[:0]
	s.conflictSet = append(s.conflictSet, p.neg())
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.vari()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].vari()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			// A decision above level 0 is always an assumption here.
			s.conflictSet = append(s.conflictSet, s.trail[i])
		} else {
			for _, q := range s.reason[v].lits {
				if s.level[q.vari()] > 0 {
					s.seen[q.vari()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.vari()] = 0
}

func (s *Solver) reduceDB() {
	// Sort learnt clauses by activity ascending; drop the lower half,
	// keeping binary and locked clauses.
	learnts := s.learnts
	// Insertion-free partial selection: simple sort.
	sortClausesByActivity(learnts)
	target := len(learnts) / 2
	kept := learnts[:0]
	removed := 0
	for i, c := range learnts {
		locked := s.isLocked(c)
		if (i < target && len(c.lits) > 2 && !locked) && removed < target {
			s.detach(c)
			removed++
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	s.stats.Removed += uint64(removed)
}

func (s *Solver) isLocked(c *clause) bool {
	v := c.lits[0].vari()
	return s.reason[v] == c && s.value(c.lits[0]) == lTrue
}

func sortClausesByActivity(cs []*clause) {
	// Simple bottom-up merge would be overkill; use insertion for small,
	// shell-like gap sort otherwise. Activity ordering is heuristic, so
	// an O(n log n) pattern via sort.Slice would also do, but avoiding
	// the closure allocation keeps reduceDB cheap.
	for gap := len(cs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(cs); i++ {
			c := cs[i]
			j := i
			for j >= gap && cs[j-gap].activity > c.activity {
				cs[j] = cs[j-gap]
				j -= gap
			}
			cs[j] = c
		}
	}
}

func (s *Solver) pickBranchVar() int {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// search runs CDCL until a result is found or budget conflicts pass.
func (s *Solver) search(budget uint64) Status {
	var conflicts uint64
	for {
		confl := s.propagate()
		if confl != nil {
			conflicts++
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: append([]lit(nil), learnt...), learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.stats.Learned++
			}
			s.exportLearnt(learnt)
			s.varInc *= s.varDecay
			s.claInc *= clauseDecay
			if s.interrupt != nil && conflicts&0xFF == 0 && s.interrupt() {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}
		if conflicts >= budget {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
			s.maxLearnts *= 1.05
		}
		// Assumptions first, then heuristic decisions.
		next := litUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level keeps indices aligned
			case lFalse:
				s.analyzeFinal(p.neg())
				return Unsat
			default:
				next = p
			}
			if next != litUndef {
				break
			}
		}
		if next == litUndef {
			v := s.pickBranchVar()
			if v == -1 {
				s.storeModel()
				return Sat
			}
			s.stats.Decisions++
			next = mkLit(v, !s.polarity[v])
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) storeModel() {
	if cap(s.model) < len(s.assigns) {
		s.model = make([]lbool, len(s.assigns))
	}
	s.model = s.model[:len(s.assigns)]
	copy(s.model, s.assigns)
}

// Solve decides satisfiability of the loaded clauses under the given
// assumptions. After Sat, Model/ModelValue expose a satisfying
// assignment; after Unsat under assumptions, FailedAssumptions exposes a
// (not necessarily minimal) subset of assumptions responsible.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	s.stats.SolveCalls++
	if !s.ok {
		return Unsat
	}
	s.assumptions = s.assumptions[:0]
	for _, a := range assumptions {
		v := a.Var()
		if v <= 0 {
			panic(fmt.Sprintf("sat: invalid assumption literal %d", int(a)))
		}
		s.EnsureVars(v)
		s.assumptions = append(s.assumptions, fromCNF(a))
	}
	s.conflictSet = s.conflictSet[:0]
	s.solveBase = s.stats.Conflicts
	defer s.cancelUntil(0)

	var restarts uint64
	for {
		if s.interrupt != nil && s.interrupt() {
			return Unknown
		}
		if s.ConflictBudget > 0 && s.stats.Conflicts >= s.solveBase+s.ConflictBudget {
			return Unknown
		}
		var budget uint64
		if s.restart == RestartGeometric {
			budget = geometricBudget(restarts)
		} else {
			budget = luby(restarts+1) * 100
		}
		if s.ConflictBudget > 0 {
			if remaining := s.solveBase + s.ConflictBudget - s.stats.Conflicts; budget > remaining {
				budget = remaining
			}
		}
		st := s.search(budget)
		if st != Unknown {
			return st
		}
		restarts++
		s.stats.Restarts++
	}
}

// Model returns the satisfying assignment from the last Sat result,
// indexed by DIMACS variable (index 0 unused).
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model)+1)
	for v, val := range s.model {
		out[v+1] = val == lTrue
	}
	return out
}

// ModelValue returns the value of a literal in the last model.
func (s *Solver) ModelValue(l cnf.Lit) bool {
	v := l.Var() - 1
	if v >= len(s.model) {
		return false
	}
	val := s.model[v] == lTrue
	if !l.Sign() {
		return !val
	}
	return val
}

// FailedAssumptions returns the subset of the last Solve call's
// assumptions that drove the Unsat answer (empty when the formula is
// unsatisfiable without assumptions).
func (s *Solver) FailedAssumptions() []cnf.Lit {
	out := make([]cnf.Lit, len(s.conflictSet))
	for i, l := range s.conflictSet {
		out[i] = toCNF(l)
	}
	return out
}

// Stats returns cumulative work counters.
func (s *Solver) Stats() Stats { return s.stats }

// Okay reports whether the clause set is still possibly satisfiable (it
// becomes false permanently once Unsat is derived without assumptions).
func (s *Solver) Okay() bool { return s.ok }
