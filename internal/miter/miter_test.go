package miter

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func host(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := synth.Generate(synth.Config{Name: "h", Inputs: 8, Outputs: 2, Gates: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyDiffShape(t *testing.T) {
	locked, _, err := lock.ApplyRLL(host(t), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := NewKeyDiff(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	c := kd.Circuit
	if c.NumInputs() != 8 || c.NumKeys() != 8 || c.NumOutputs() != 1 {
		t.Fatalf("miter shape: %s", c)
	}
	if len(kd.KeysA()) != 4 || len(kd.KeysB()) != 4 {
		t.Fatal("key split wrong")
	}
	// Same key on both sides → diff always 0.
	sim := netlist.MustNewSimulator(c)
	key := append(append([]bool(nil), locked.Key...), locked.Key...)
	for x := uint64(0); x < 256; x++ {
		out, err := sim.Run(netlist.PatternFromUint(x, 8), key)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] {
			t.Fatalf("identical keys disagree at x=%d", x)
		}
	}
}

func TestKeyDiffDetectsDifference(t *testing.T) {
	locked, _, err := lock.ApplyRLL(host(t), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := NewKeyDiff(locked.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	sim := netlist.MustNewSimulator(kd.Circuit)
	wrong := append([]bool(nil), locked.Key...)
	wrong[0] = !wrong[0]
	key := append(append([]bool(nil), locked.Key...), wrong...)
	found := false
	for x := uint64(0); x < 256; x++ {
		out, _ := sim.Run(netlist.PatternFromUint(x, 8), key)
		if out[0] {
			found = true
			break
		}
	}
	if !found {
		t.Error("no DIP found between correct and corrupting key")
	}
}

func TestNewKeyDiffRejectsUnlocked(t *testing.T) {
	if _, err := NewKeyDiff(host(t)); err == nil {
		t.Error("key-free circuit accepted")
	}
}

func TestFixedKeyMiter(t *testing.T) {
	h := host(t)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-A"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	allOne := make([]bool, 2*n)
	allZero := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		allOne[i] = true // K1 = 1...1, K2 = 0...0 (Lemma 1 copy A)
	}
	fk, err := NewFixedKey(locked.Circuit, allOne, allZero)
	if err != nil {
		t.Fatal(err)
	}
	if fk.NumKeys() != 0 || fk.NumOutputs() != 1 {
		t.Fatalf("fixed-key miter shape: %s", fk)
	}
	// The miter output must be 1 on at least one input (the two keys
	// differ behaviourally) and 0 on at least one.
	sim := netlist.MustNewSimulator(fk)
	ones, zeros := 0, 0
	for x := uint64(0); x < 256; x++ {
		out, _ := sim.Run(netlist.PatternFromUint(x, 8), nil)
		if out[0] {
			ones++
		} else {
			zeros++
		}
	}
	if ones == 0 || zeros == 0 {
		t.Errorf("degenerate fixed-key miter: %d ones, %d zeros", ones, zeros)
	}
	if _, err := NewFixedKey(locked.Circuit, allOne[:3], allZero); err == nil {
		t.Error("short key accepted")
	}
}

func TestProveEquivalent(t *testing.T) {
	h := host(t)
	clone := h.Clone()
	eq, _, err := ProveEquivalent(h, clone)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("circuit not equivalent to its clone")
	}
	// Mutate the clone: invert an output.
	inv := clone.MustAddGate(netlist.Not, "inv", clone.Outputs()[0])
	if err := clone.ReplaceOutput(0, inv); err != nil {
		t.Fatal(err)
	}
	eq, witness, err := ProveEquivalent(h, clone)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("inverted output reported equivalent")
	}
	// The witness must actually distinguish them.
	oa, _ := h.Eval(witness, nil)
	ob, _ := clone.Eval(witness, nil)
	same := true
	for i := range oa {
		if oa[i] != ob[i] {
			same = false
		}
	}
	if same {
		t.Error("witness does not distinguish the circuits")
	}
}

func TestProveUnlocked(t *testing.T) {
	h := host(t)
	locked, _, err := lock.ApplyCAS(h, lock.CASOptions{Chain: lock.MustParseChain("A-O-A"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ProveUnlocked(locked.Circuit, locked.Key, h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("correct key not proven")
	}
	wrong := append([]bool(nil), locked.Key...)
	wrong[0] = !wrong[0]
	ok, err = ProveUnlocked(locked.Circuit, wrong, h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wrong key proven equivalent")
	}
}

func TestEquivalenceShapeChecks(t *testing.T) {
	h := host(t)
	small, _ := synth.Generate(synth.Config{Name: "s", Inputs: 4, Outputs: 1, Gates: 6, Seed: 1})
	if _, err := NewEquivalence(h, small); err == nil {
		t.Error("shape mismatch accepted")
	}
	locked, _, _ := lock.ApplyRLL(h, 2, 1)
	if _, err := NewEquivalence(h, locked.Circuit); err == nil {
		t.Error("keyed circuit accepted")
	}
}
