// Leakage: the paper's future-work direction, carried out. The DIP-set
// *size* is an externally observable side channel; this demo uses it
// twice —
//
//  1. on CAS-Lock, where |DIPs| = 1 + Σ 2^{c_i} spells out the secret
//     chain configuration in binary (the paper's Lemma 2), and
//
//  2. on SFLL-HD, where |DIPs| = 2·C(n,h) between two chosen keys
//     reveals the secret Hamming-distance parameter h.
//
//     go run ./examples/leakage
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lock"
	"repro/internal/netlist"
	"repro/internal/oracle"
	"repro/internal/synth"
)

func main() {
	// Part 1: CAS-Lock chain structure from one DIP count.
	secretChain := lock.MustParseChain("3A-O-2A-O-A")
	host, err := synth.Generate(synth.Config{Name: "h", Inputs: 12, Outputs: 3, Gates: 60, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	kg := make([]netlist.GateType, secretChain.NumInputs())
	for i := range kg {
		kg[i] = netlist.Xor
		if i%3 == 0 {
			kg[i] = netlist.Xnor
		}
	}
	locked, _, err := lock.ApplyCAS(host, lock.CASOptions{
		Chain: secretChain, KeyGates1: kg, KeyGates2: kg, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(core.Options{Locked: locked.Circuit, Oracle: oracle.MustNewSim(host), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CAS-Lock:  |DIPs| = %d = %b₂\n", res.AlignedDIPs, res.AlignedDIPs)
	fmt.Printf("           set bits above bit 0 are the OR-gate input positions\n")
	fmt.Printf("           leaked chain: %s (secret was %s)\n", res.Chain, secretChain)

	// Part 2: SFLL-HD's h from one DIP count.
	fmt.Println()
	for _, h := range []int{1, 2, 3} {
		leak, err := experiments.LeakSFLLH(10, 8, h, int64(20+h))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SFLL-HD:   |DIPs| = %3d = 2·C(8,%d)  →  learned h = %d (secret was %d)\n",
			leak.DIPCount, leak.LearnedH, leak.LearnedH, leak.TrueH)
	}
	fmt.Println("\nThe same observable — how many DIPs a chosen-key miter has —")
	fmt.Println("betrays structural secrets in scheme after scheme.")
}
