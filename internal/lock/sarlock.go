package lock

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// SARLockInstance records the hardcoded pattern of a SARLock instance.
type SARLockInstance struct {
	N          int
	InputSel   []int
	CorrectKey []bool
	FlipGate   netlist.ID
}

// ApplySARLock locks a copy of the host with SARLock (Yasin et al.): the
// flip signal is asserted when the applied key equals the selected input
// word but differs from the hardcoded correct key, so every wrong key
// corrupts exactly one input pattern:
//
//	flip = (X == K) ∧ ¬(X == K*)
//
// The correct key K* is drawn from the seed and hardcoded as constants
// (the scheme's well-known removal weakness is irrelevant to its role
// here as a one-point-function baseline).
func ApplySARLock(host *netlist.Circuit, n int, seed int64) (*Locked, *SARLockInstance, error) {
	if host.NumKeys() != 0 {
		return nil, nil, fmt.Errorf("lock: host %q already has key inputs", host.Name)
	}
	if n < 1 || host.NumInputs() < n {
		return nil, nil, fmt.Errorf("lock: host has %d inputs, SARLock needs %d", host.NumInputs(), n)
	}
	rng := rand.New(rand.NewSource(seed))
	c := host.Clone()
	c.Name = host.Name + "_sar"

	sel := rng.Perm(host.NumInputs())[:n]
	key := make([]bool, n)
	for i := range key {
		key[i] = rng.Intn(2) == 1
	}

	xs := make([]netlist.ID, n)
	ks := make([]netlist.ID, n)
	for i := 0; i < n; i++ {
		xs[i] = c.Inputs()[sel[i]]
		k, err := c.AddKey(keyName(i))
		if err != nil {
			return nil, nil, err
		}
		ks[i] = k
	}

	// eqK = AND_i XNOR(x_i, k_i)
	eqBits := make([]netlist.ID, n)
	for i := 0; i < n; i++ {
		eqBits[i] = c.MustAddGate(netlist.Xnor, fmt.Sprintf("sar_eq%d", i), xs[i], ks[i])
	}
	eqK := andTree(c, "sar_eqk", eqBits)

	// eqStar = AND_i XNOR(x_i, K*_i) with K* as constants.
	starBits := make([]netlist.ID, n)
	for i := 0; i < n; i++ {
		typ := netlist.Const0
		if key[i] {
			typ = netlist.Const1
		}
		kc := c.MustAddGate(typ, fmt.Sprintf("sar_kc%d", i))
		starBits[i] = c.MustAddGate(netlist.Xnor, fmt.Sprintf("sar_seq%d", i), xs[i], kc)
	}
	eqStar := andTree(c, "sar_eqstar", starBits)
	notStar := c.MustAddGate(netlist.Not, "sar_nstar", eqStar)
	flip := c.MustAddGate(netlist.And, "sar_flip", eqK, notStar)

	if err := integrateFlip(c, flip, 0, "sar_out"); err != nil {
		return nil, nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	inst := &SARLockInstance{
		N:          n,
		InputSel:   sel,
		CorrectKey: append([]bool(nil), key...),
		FlipGate:   flip,
	}
	return &Locked{Circuit: c, Key: key}, inst, nil
}

// andTree reduces a list of signals with a balanced tree of 2-input ANDs.
func andTree(c *netlist.Circuit, prefix string, in []netlist.ID) netlist.ID {
	if len(in) == 1 {
		return in[0]
	}
	level := append([]netlist.ID(nil), in...)
	cnt := 0
	for len(level) > 1 {
		var next []netlist.ID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, c.MustAddGate(netlist.And, fmt.Sprintf("%s_t%d", prefix, cnt), level[i], level[i+1]))
			cnt++
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}
