package bench

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// Canonical serializes a circuit into a deterministic, content-
// addressable byte form: the service layer hashes it (together with the
// attack options) to derive cache keys, so two submissions of the same
// logical netlist must produce identical bytes.
//
// The form is a stripped bench dialect: no comment header (the circuit
// name is presentation, not content), inputs/keys/outputs in their
// declared order, gates in deterministic topological order with
// canonical mnemonics, and a leading section-count line so that
// structurally different circuits can never serialize to the same
// bytes by section aliasing. Signal names ARE part of the content —
// key-input naming carries the key-port convention, and a renamed
// netlist legitimately hashes differently.
func Canonical(c *netlist.Circuit) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "v1 %d %d %d %d\n", c.NumInputs(), c.NumKeys(), c.NumOutputs(), c.NumGates())
	for _, id := range c.Inputs() {
		fmt.Fprintf(&b, "i %s\n", c.Gate(id).Name)
	}
	for _, id := range c.Keys() {
		fmt.Fprintf(&b, "k %s\n", c.Gate(id).Name)
	}
	for _, id := range c.Outputs() {
		fmt.Fprintf(&b, "o %s\n", c.Gate(id).Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0:
			fmt.Fprintf(&b, "g %s = CONST0()\n", g.Name)
			continue
		case netlist.Const1:
			fmt.Fprintf(&b, "g %s = CONST1()\n", g.Name)
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gate(f).Name
		}
		fmt.Fprintf(&b, "g %s = %s(%s)\n", g.Name, mnemonicFor(g.Type), strings.Join(names, ","))
	}
	return b.Bytes(), nil
}
